#include "core/statistics.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "etcgen/cvb.hpp"
#include "etcgen/range_based.hpp"

namespace {

using hetero::core::consistency_index;
using hetero::core::etc_statistics;
using hetero::core::EtcMatrix;
using hetero::core::is_consistent;
using hetero::core::machine_heterogeneity_per_task;
using hetero::core::task_heterogeneity_per_machine;
using hetero::linalg::Matrix;

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(Statistics, TaskHeterogeneityIsColumnCov) {
  // Column 1 has values {1, 3}: mean 2, population std 1 -> COV 0.5.
  EtcMatrix etc(Matrix{{1, 5}, {3, 5}});
  const auto th = task_heterogeneity_per_machine(etc);
  EXPECT_NEAR(th[0], 0.5, 1e-12);
  EXPECT_NEAR(th[1], 0.0, 1e-12);
}

TEST(Statistics, MachineHeterogeneityIsRowCov) {
  EtcMatrix etc(Matrix{{1, 3}, {5, 5}});
  const auto mh = machine_heterogeneity_per_task(etc);
  EXPECT_NEAR(mh[0], 0.5, 1e-12);
  EXPECT_NEAR(mh[1], 0.0, 1e-12);
}

TEST(Statistics, InfiniteEntriesExcluded) {
  EtcMatrix etc(Matrix{{1, 3, kInf}, {5, 5, 5}});
  const auto mh = machine_heterogeneity_per_task(etc);
  EXPECT_NEAR(mh[0], 0.5, 1e-12);  // {1, 3} only
}

TEST(Statistics, SingleFiniteEntryGivesZero) {
  EtcMatrix etc(Matrix{{1, kInf}, {kInf, 5}});
  const auto mh = machine_heterogeneity_per_task(etc);
  EXPECT_EQ(mh[0], 0.0);
  EXPECT_EQ(mh[1], 0.0);
}

TEST(Consistency, FullyConsistentMatrix) {
  EtcMatrix etc(Matrix{{1, 2, 3}, {10, 20, 30}});
  EXPECT_TRUE(is_consistent(etc));
  EXPECT_DOUBLE_EQ(consistency_index(etc), 1.0);
}

TEST(Consistency, SingleMachineVacuouslyConsistent) {
  EtcMatrix etc(Matrix{{1}, {2}});
  EXPECT_TRUE(is_consistent(etc));
  EXPECT_DOUBLE_EQ(consistency_index(etc), 1.0);
}

TEST(Consistency, FullyInconsistentPair) {
  // Machines swap order between the two task types: agreement = 1/2.
  EtcMatrix etc(Matrix{{1, 2}, {2, 1}});
  EXPECT_FALSE(is_consistent(etc));
  EXPECT_NEAR(consistency_index(etc), 0.0, 1e-12);
}

TEST(Consistency, TiesCountAsConsistent) {
  EtcMatrix etc(Matrix{{2, 2}, {3, 3}});
  EXPECT_TRUE(is_consistent(etc));
  EXPECT_DOUBLE_EQ(consistency_index(etc), 1.0);
}

TEST(Consistency, PartialAgreement) {
  // 3 of 4 task types prefer machine 1: f = 0.75, index = 0.5.
  EtcMatrix etc(Matrix{{1, 2}, {1, 2}, {1, 2}, {2, 1}});
  EXPECT_FALSE(is_consistent(etc));
  EXPECT_NEAR(consistency_index(etc), 0.5, 1e-12);
}

TEST(Consistency, MakeConsistentRaisesIndexToOne) {
  hetero::etcgen::Rng rng = hetero::etcgen::make_rng(31);
  hetero::etcgen::RangeBasedOptions opts;
  opts.tasks = 12;
  opts.machines = 6;
  const auto raw = hetero::etcgen::generate_range_based(opts, rng);
  const auto sorted = hetero::etcgen::make_consistent(raw);
  EXPECT_LT(consistency_index(raw), 1.0);
  EXPECT_DOUBLE_EQ(consistency_index(sorted), 1.0);
  EXPECT_TRUE(is_consistent(sorted));
}

TEST(Consistency, SemiConsistentInBetween) {
  hetero::etcgen::Rng rng = hetero::etcgen::make_rng(37);
  hetero::etcgen::RangeBasedOptions opts;
  opts.tasks = 30;
  opts.machines = 8;
  const auto raw = hetero::etcgen::generate_range_based(opts, rng);
  hetero::etcgen::Rng rng2 = hetero::etcgen::make_rng(38);
  const auto semi = hetero::etcgen::make_semi_consistent(raw, 0.5, rng2);
  EXPECT_GT(consistency_index(semi), consistency_index(raw));
  EXPECT_LT(consistency_index(semi), 1.0);
}

TEST(Statistics, AggregateStruct) {
  EtcMatrix etc(Matrix{{1, 2}, {3, 4}});
  const auto s = etc_statistics(etc);
  EXPECT_GT(s.mean_task_heterogeneity, 0.0);
  EXPECT_GT(s.mean_machine_heterogeneity, 0.0);
  EXPECT_DOUBLE_EQ(s.consistency, 1.0);
}

TEST(Statistics, CvbCovControlsMeasuredCov) {
  // The CVB generator's V parameters should surface in these statistics.
  hetero::etcgen::Rng rng = hetero::etcgen::make_rng(41);
  hetero::etcgen::CvbOptions low;
  low.tasks = 60;
  low.machines = 10;
  low.task_cov = 0.2;
  low.machine_cov = 0.2;
  hetero::etcgen::CvbOptions high = low;
  high.task_cov = 1.0;
  high.machine_cov = 1.0;
  const auto s_low = etc_statistics(hetero::etcgen::generate_cvb(low, rng));
  const auto s_high = etc_statistics(hetero::etcgen::generate_cvb(high, rng));
  EXPECT_LT(s_low.mean_machine_heterogeneity, s_high.mean_machine_heterogeneity);
  EXPECT_LT(s_low.mean_task_heterogeneity, s_high.mean_task_heterogeneity);
}

}  // namespace
