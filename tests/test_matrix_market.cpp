#include "io/matrix_market.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "spec/spec_data.hpp"

namespace {

using hetero::ValueError;
namespace io = hetero::io;
using hetero::core::EtcMatrix;
using hetero::linalg::Matrix;

TEST(MatrixMarket, RoundTripPreservesEverything) {
  const auto& original = hetero::spec::spec_cfp2006rate();
  const auto parsed = io::read_etc_matrix_market_string(
      io::write_etc_matrix_market_string(original));
  EXPECT_EQ(parsed.task_names(), original.task_names());
  EXPECT_EQ(parsed.machine_names(), original.machine_names());
  for (std::size_t i = 0; i < original.task_count(); ++i)
    for (std::size_t j = 0; j < original.machine_count(); ++j)
      EXPECT_DOUBLE_EQ(parsed(i, j), original(i, j));
}

TEST(MatrixMarket, RoundTripWithInfinity) {
  EtcMatrix etc(Matrix{{1, std::numeric_limits<double>::infinity()}, {2, 3}});
  const auto parsed = io::read_etc_matrix_market_string(
      io::write_etc_matrix_market_string(etc));
  EXPECT_TRUE(std::isinf(parsed(0, 1)));
  EXPECT_DOUBLE_EQ(parsed(1, 0), 2.0);
}

TEST(MatrixMarket, HeaderDeclaresArrayRealGeneral) {
  const EtcMatrix etc(Matrix{{1, 2}});
  const std::string text = io::write_etc_matrix_market_string(etc);
  EXPECT_EQ(text.rfind("%%MatrixMarket matrix array real general", 0), 0u);
}

TEST(MatrixMarket, ColumnMajorOrder) {
  // [[1, 3], [2, 4]] must serialize entries as 1 2 3 4 (columns first).
  const EtcMatrix etc(Matrix{{1, 3}, {2, 4}});
  const std::string text = io::write_etc_matrix_market_string(etc);
  const auto pos1 = text.find("\n1\n");
  const auto pos2 = text.find("\n2\n");
  const auto pos3 = text.find("\n3\n");
  const auto pos4 = text.find("\n4\n");
  EXPECT_LT(pos1, pos2);
  EXPECT_LT(pos2, pos3);
  EXPECT_LT(pos3, pos4);
}

TEST(MatrixMarket, ReadsPlainFilesWithoutLabelComments) {
  const auto etc = io::read_etc_matrix_market_string(
      "%%MatrixMarket matrix array real general\n"
      "2 2\n"
      "1\n2\n3\n4\n");
  EXPECT_EQ(etc.task_names(), (std::vector<std::string>{"t1", "t2"}));
  EXPECT_DOUBLE_EQ(etc(0, 1), 3.0);  // column-major input
  EXPECT_DOUBLE_EQ(etc(1, 0), 2.0);
}

TEST(MatrixMarket, MalformedInputsThrow) {
  EXPECT_THROW(io::read_etc_matrix_market_string(""), ValueError);
  EXPECT_THROW(io::read_etc_matrix_market_string("not a header\n1 1\n1\n"),
               ValueError);
  EXPECT_THROW(io::read_etc_matrix_market_string(
                   "%%MatrixMarket matrix coordinate real general\n1 1 1\n"),
               ValueError);
  EXPECT_THROW(io::read_etc_matrix_market_string(
                   "%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n"),
               ValueError);
  EXPECT_THROW(io::read_etc_matrix_market_string(
                   "%%MatrixMarket matrix array real general\n2 2\n1\nx\n3\n4\n"),
               ValueError);
}

TEST(MatrixMarket, LabelCountMismatchThrows) {
  EXPECT_THROW(io::read_etc_matrix_market_string(
                   "%%MatrixMarket matrix array real general\n"
                   "%%task only-one\n"
                   "2 1\n1\n2\n"),
               ValueError);
}

}  // namespace
