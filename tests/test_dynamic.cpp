#include "sched/dynamic.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "etcgen/range_based.hpp"
#include "sched/heuristics.hpp"

namespace {

using hetero::DimensionError;
using hetero::ValueError;
using hetero::core::EtcMatrix;
using hetero::linalg::Matrix;
namespace sc = hetero::sched;
using sc::Arrival;
using sc::ImmediateMode;

constexpr double kInf = std::numeric_limits<double>::infinity();

EtcMatrix two_machines() {
  // Machine 2 twice as fast.
  return EtcMatrix(Matrix{{4, 2}, {8, 4}});
}

TEST(Dynamic, EmptyArrivals) {
  const auto r = sc::simulate_immediate(two_machines(), {}, ImmediateMode::mct);
  EXPECT_EQ(r.makespan, 0.0);
  EXPECT_EQ(r.mean_flow_time, 0.0);
  EXPECT_TRUE(r.assignment.empty());
}

TEST(Dynamic, ValidatesInputs) {
  EXPECT_THROW(
      sc::simulate_immediate(two_machines(), {{-1.0, 0}}, ImmediateMode::mct),
      ValueError);
  EXPECT_THROW(
      sc::simulate_immediate(two_machines(), {{0.0, 9}}, ImmediateMode::mct),
      DimensionError);
  sc::DynamicOptions bad;
  bad.kpb_fraction = 0.0;
  EXPECT_THROW(sc::simulate_immediate(two_machines(), {{0.0, 0}},
                                      ImmediateMode::kpb, bad),
               ValueError);
}

TEST(Dynamic, SingleTaskMctPicksFastMachine) {
  const auto r = sc::simulate_immediate(two_machines(), {{1.0, 0}},
                                        ImmediateMode::mct);
  EXPECT_EQ(r.assignment[0], 1u);
  EXPECT_DOUBLE_EQ(r.makespan, 3.0);       // starts at 1, runs 2
  EXPECT_DOUBLE_EQ(r.mean_flow_time, 2.0);  // completion - arrival
}

TEST(Dynamic, MctQueuesConsideringBusyMachines) {
  // Two type-0 tasks at t=0: first goes to m2 (CT 2), second compares m1
  // (CT 4) vs m2 queued (CT 4) -> tie, lowest key first found wins: m1 at
  // equal key is evaluated first, so assignment is m1.
  const auto r = sc::simulate_immediate(
      two_machines(), {{0.0, 0}, {0.0, 0}}, ImmediateMode::mct);
  EXPECT_EQ(r.assignment[0], 1u);
  EXPECT_EQ(r.assignment[1], 0u);
  EXPECT_DOUBLE_EQ(r.makespan, 4.0);
}

TEST(Dynamic, MetIgnoresQueues) {
  const auto r = sc::simulate_immediate(
      two_machines(), {{0.0, 0}, {0.0, 0}, {0.0, 0}}, ImmediateMode::met);
  for (std::size_t j : r.assignment) EXPECT_EQ(j, 1u);
  EXPECT_DOUBLE_EQ(r.makespan, 6.0);  // all serialized on m2
}

TEST(Dynamic, OlbBalancesBlindly) {
  const auto r = sc::simulate_immediate(
      two_machines(), {{0.0, 0}, {0.0, 0}}, ImmediateMode::olb);
  // First -> m1 (both free, lowest index), second -> m2.
  EXPECT_EQ(r.assignment[0], 0u);
  EXPECT_EQ(r.assignment[1], 1u);
}

TEST(Dynamic, KpbRestrictsToBestMachines) {
  // Three machines: ETC 10, 1, 1.05 for the only type. With fraction 0.34
  // (keep 1 of 3... ceil(0.34*3)=2) the slow machine is excluded even when
  // idle.
  EtcMatrix etc(Matrix{{10, 1, 1.05}});
  sc::DynamicOptions opts;
  opts.kpb_fraction = 0.34;
  const auto r = sc::simulate_immediate(
      etc, {{0.0, 0}, {0.0, 0}, {0.0, 0}}, ImmediateMode::kpb, opts);
  for (std::size_t j : r.assignment) EXPECT_NE(j, 0u);
}

TEST(Dynamic, KpbFullFractionEqualsMct) {
  hetero::etcgen::Rng rng = hetero::etcgen::make_rng(71);
  hetero::etcgen::RangeBasedOptions gopts;
  gopts.tasks = 6;
  gopts.machines = 4;
  const auto etc = hetero::etcgen::generate_range_based(gopts, rng);
  const auto arrivals = sc::poisson_arrivals(etc, 0.5, 30, rng);
  sc::DynamicOptions opts;
  opts.kpb_fraction = 1.0;
  const auto a = sc::simulate_immediate(etc, arrivals, ImmediateMode::kpb, opts);
  const auto b = sc::simulate_immediate(etc, arrivals, ImmediateMode::mct);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
}

TEST(Dynamic, RespectsIncapableMachines) {
  EtcMatrix etc(Matrix{{1, kInf}, {kInf, 1}});
  for (const auto mode : {ImmediateMode::olb, ImmediateMode::met,
                          ImmediateMode::mct, ImmediateMode::kpb}) {
    const auto r =
        sc::simulate_immediate(etc, {{0.0, 0}, {0.0, 1}}, mode);
    EXPECT_EQ(r.assignment[0], 0u);
    EXPECT_EQ(r.assignment[1], 1u);
    EXPECT_TRUE(std::isfinite(r.makespan));
  }
}

TEST(Dynamic, UnsortedArrivalsHandled) {
  const std::vector<Arrival> shuffled{{5.0, 0}, {0.0, 0}, {2.0, 1}};
  const std::vector<Arrival> sorted{{0.0, 0}, {2.0, 1}, {5.0, 0}};
  const auto a = sc::simulate_immediate(two_machines(), shuffled,
                                        ImmediateMode::mct);
  const auto b = sc::simulate_immediate(two_machines(), sorted,
                                        ImmediateMode::mct);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_DOUBLE_EQ(a.mean_flow_time, b.mean_flow_time);
}

TEST(Dynamic, FlowTimeByHand) {
  // One machine: ETC = 3. Arrivals at 0 and 1. Completions 3 and 6.
  EtcMatrix etc(Matrix{{3}});
  const auto r = sc::simulate_immediate(etc, {{0.0, 0}, {1.0, 0}},
                                        ImmediateMode::mct);
  EXPECT_DOUBLE_EQ(r.makespan, 6.0);
  EXPECT_DOUBLE_EQ(r.mean_flow_time, (3.0 + 5.0) / 2.0);
  EXPECT_DOUBLE_EQ(r.max_flow_time, 5.0);
}

TEST(Dynamic, PoissonArrivalsShape) {
  hetero::etcgen::Rng rng = hetero::etcgen::make_rng(73);
  const auto arrivals = sc::poisson_arrivals(two_machines(), 2.0, 100, rng);
  ASSERT_EQ(arrivals.size(), 100u);
  for (std::size_t k = 1; k < arrivals.size(); ++k)
    EXPECT_GE(arrivals[k].time, arrivals[k - 1].time);
  for (const auto& a : arrivals) EXPECT_LT(a.type, 2u);
  // Mean inter-arrival ~ 1/rate.
  EXPECT_NEAR(arrivals.back().time / 100.0, 0.5, 0.2);
  EXPECT_THROW(sc::poisson_arrivals(two_machines(), 0.0, 1, rng), ValueError);
}

TEST(Dynamic, SwitchingValidatesThresholds) {
  sc::DynamicOptions bad;
  bad.switch_low = 0.8;
  bad.switch_high = 0.4;
  EXPECT_THROW(sc::simulate_immediate(two_machines(), {{0.0, 0}},
                                      ImmediateMode::switching, bad),
               ValueError);
}

TEST(Dynamic, SwitchingStartsBalancedInMet) {
  // An empty system is perfectly balanced (index 1 > high threshold), so
  // the first task is mapped by MET: fastest machine regardless of queues.
  const auto r = sc::simulate_immediate(two_machines(), {{0.0, 0}},
                                        ImmediateMode::switching);
  EXPECT_EQ(r.assignment[0], 1u);
}

TEST(Dynamic, SwitchingFallsBackToMctUnderImbalance) {
  // Burst of identical tasks: pure MET serializes everything on m2
  // (makespan 2 * n), while switching must flip to MCT once m2's backlog
  // grows and spread the load.
  std::vector<Arrival> burst;
  for (int k = 0; k < 10; ++k) burst.push_back({0.0, 0});
  const auto sw = sc::simulate_immediate(two_machines(), burst,
                                         ImmediateMode::switching);
  const auto met = sc::simulate_immediate(two_machines(), burst,
                                          ImmediateMode::met);
  EXPECT_LT(sw.makespan, met.makespan);
  // Both machines must have been used.
  bool used0 = false, used1 = false;
  for (std::size_t j : sw.assignment) (j == 0 ? used0 : used1) = true;
  EXPECT_TRUE(used0);
  EXPECT_TRUE(used1);
}

TEST(Dynamic, SwitchingBetweenMetAndMctEnvelope) {
  // Switching can never beat the best of MET/MCT by definition of its
  // per-arrival choices, but it must stay within the envelope on makespan
  // for a sparse arrival pattern where all three coincide.
  const std::vector<Arrival> sparse{{0.0, 0}, {100.0, 1}, {200.0, 0}};
  const auto sw = sc::simulate_immediate(two_machines(), sparse,
                                         ImmediateMode::switching);
  const auto mct = sc::simulate_immediate(two_machines(), sparse,
                                          ImmediateMode::mct);
  EXPECT_DOUBLE_EQ(sw.makespan, mct.makespan);
}

TEST(DynamicBatch, SingleArrivalMatchesImmediate) {
  const auto a = sc::simulate_batch_min_min(two_machines(), {{0.5, 1}});
  const auto b = sc::simulate_immediate(two_machines(), {{0.5, 1}},
                                        ImmediateMode::mct);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
}

TEST(DynamicBatch, RemapsQueuedWork) {
  // t=0: a long type-1 task -> m2 (CT 4 vs 8). t=0.5: a type-0 arrives.
  // The long task has started on m2? No: it started at 0 (start < 0.5), so
  // it cannot be remapped; the new task must weave around it.
  const auto r = sc::simulate_batch_min_min(
      two_machines(), {{0.0, 1}, {0.5, 0}});
  EXPECT_EQ(r.assignment[0], 1u);
  // Type-0: m1 idle (CT 0.5+4=4.5) vs m2 busy until 4 (CT 6): m1 wins.
  EXPECT_EQ(r.assignment[1], 0u);
  EXPECT_DOUBLE_EQ(r.makespan, 4.5);
}

TEST(DynamicBatch, BeatsImmediateMetOnBursts) {
  hetero::etcgen::Rng rng = hetero::etcgen::make_rng(79);
  hetero::etcgen::RangeBasedOptions gopts;
  gopts.tasks = 8;
  gopts.machines = 4;
  gopts.machine_range = 10.0;
  const auto etc = hetero::etcgen::generate_range_based(gopts, rng);
  // A burst: everything arrives at once.
  std::vector<Arrival> burst;
  for (std::size_t k = 0; k < 24; ++k)
    burst.push_back({0.0, k % etc.task_count()});
  const auto batch = sc::simulate_batch_min_min(etc, burst);
  const auto met = sc::simulate_immediate(etc, burst, ImmediateMode::met);
  EXPECT_LE(batch.makespan, met.makespan + 1e-9);
}

TEST(DynamicBatch, BurstEquivalentToStaticMinMinMakespan) {
  // With all arrivals at t=0 and no task started before the last arrival,
  // batch-mode Min-Min equals the static Min-Min mapping.
  EtcMatrix etc(Matrix{{10, 2}, {1, 9}});
  const std::vector<Arrival> burst{{0.0, 0}, {0.0, 1}};
  const auto dynamic = sc::simulate_batch_min_min(etc, burst);
  const auto static_ms = sc::makespan(
      etc, {0, 1}, sc::map_min_min(etc, {0, 1}));
  EXPECT_DOUBLE_EQ(dynamic.makespan, static_ms);
}

TEST(DynamicBatch, DrainsEverything) {
  hetero::etcgen::Rng rng = hetero::etcgen::make_rng(83);
  const auto etc = two_machines();
  const auto arrivals = sc::poisson_arrivals(etc, 1.0, 50, rng);
  const auto r = sc::simulate_batch_min_min(etc, arrivals);
  ASSERT_EQ(r.assignment.size(), 50u);
  EXPECT_GT(r.makespan, 0.0);
  EXPECT_GT(r.mean_flow_time, 0.0);
  EXPECT_GE(r.max_flow_time, r.mean_flow_time);
}

TEST(DynamicBatch, SufferageMatchesMinMinOnTrivialCases) {
  const std::vector<Arrival> one{{0.0, 0}};
  const auto a = sc::simulate_batch(two_machines(), one,
                                    sc::BatchHeuristic::sufferage);
  const auto b = sc::simulate_batch(two_machines(), one,
                                    sc::BatchHeuristic::min_min);
  EXPECT_EQ(a.assignment, b.assignment);
}

TEST(DynamicBatch, SufferagePrioritizesHighSufferageTask) {
  // Type 0 barely cares (5 vs 4); type 1 suffers hugely (1 vs 20). In a
  // burst, sufferage must give machine 1 to the type-1 task.
  EtcMatrix etc(Matrix{{5, 4}, {1, 20}});
  const std::vector<Arrival> burst{{0.0, 0}, {0.0, 1}};
  const auto r = sc::simulate_batch(etc, burst, sc::BatchHeuristic::sufferage);
  EXPECT_EQ(r.assignment[1], 0u);
  EXPECT_EQ(r.assignment[0], 1u);
  EXPECT_DOUBLE_EQ(r.makespan, 4.0);
}

TEST(DynamicBatch, SufferageDrainsPoissonLoad) {
  hetero::etcgen::Rng rng = hetero::etcgen::make_rng(91);
  const auto etc = two_machines();
  const auto arrivals = sc::poisson_arrivals(etc, 0.5, 40, rng);
  const auto r = sc::simulate_batch(etc, arrivals,
                                    sc::BatchHeuristic::sufferage);
  ASSERT_EQ(r.assignment.size(), 40u);
  EXPECT_TRUE(std::isfinite(r.makespan));
  EXPECT_GT(r.mean_flow_time, 0.0);
}

// ---------------------------------------------------------------------------
// Warm-start equivalence (ctest label: sched_equiv). simulate_batch keeps
// the BatchEngine's cached decisions across scheduling events; it must be
// bit-identical to simulate_batch_reference, which re-runs the heuristic
// cold at every arrival.

void expect_warm_matches_cold(const EtcMatrix& etc,
                              const std::vector<Arrival>& arrivals) {
  for (const auto h :
       {sc::BatchHeuristic::min_min, sc::BatchHeuristic::sufferage}) {
    const auto fast = sc::simulate_batch(etc, arrivals, h);
    const auto ref = sc::simulate_batch_reference(etc, arrivals, h);
    const char* name = h == sc::BatchHeuristic::min_min ? "min_min"
                                                        : "sufferage";
    EXPECT_EQ(fast.assignment, ref.assignment) << name;
    EXPECT_DOUBLE_EQ(fast.makespan, ref.makespan) << name;
    EXPECT_DOUBLE_EQ(fast.mean_flow_time, ref.mean_flow_time) << name;
    EXPECT_DOUBLE_EQ(fast.max_flow_time, ref.max_flow_time) << name;
  }
}

TEST(DynamicBatchEquivalence, PoissonLoadMatchesColdReference) {
  hetero::etcgen::Rng rng = hetero::etcgen::make_rng(101);
  hetero::etcgen::RangeBasedOptions gopts;
  gopts.tasks = 10;
  gopts.machines = 6;
  const auto etc = hetero::etcgen::generate_range_based(gopts, rng);
  expect_warm_matches_cold(etc, sc::poisson_arrivals(etc, 1.5, 200, rng));
}

TEST(DynamicBatchEquivalence, BurstyArrivalsMatchColdReference) {
  // Simultaneous arrivals keep large pending sets alive across events —
  // the regime where the warm cache does the most work.
  hetero::etcgen::Rng rng = hetero::etcgen::make_rng(103);
  hetero::etcgen::RangeBasedOptions gopts;
  gopts.tasks = 8;
  gopts.machines = 4;
  const auto etc = hetero::etcgen::generate_range_based(gopts, rng);
  std::vector<Arrival> arrivals;
  for (std::size_t wave = 0; wave < 6; ++wave)
    for (std::size_t k = 0; k < 20; ++k)
      arrivals.push_back({static_cast<double>(wave) * 3.0, k % 8});
  expect_warm_matches_cold(etc, arrivals);
}

TEST(DynamicBatchEquivalence, IncapableMachinesMatchColdReference) {
  EtcMatrix etc(Matrix{{1, kInf, 4}, {kInf, 1, 5}, {2, 2, kInf}});
  std::vector<Arrival> arrivals;
  hetero::etcgen::Rng rng = hetero::etcgen::make_rng(107);
  for (std::size_t k = 0; k < 60; ++k)
    arrivals.push_back(
        {static_cast<double>(k) * 0.3, k % etc.task_count()});
  expect_warm_matches_cold(etc, arrivals);
}

TEST(DynamicBatch, LighterLoadLowersFlowTime) {
  hetero::etcgen::Rng rng1 = hetero::etcgen::make_rng(89);
  hetero::etcgen::Rng rng2 = hetero::etcgen::make_rng(89);
  const auto etc = two_machines();
  const auto heavy = sc::poisson_arrivals(etc, 2.0, 60, rng1);
  const auto light = sc::poisson_arrivals(etc, 0.1, 60, rng2);
  const auto r_heavy = sc::simulate_batch_min_min(etc, heavy);
  const auto r_light = sc::simulate_batch_min_min(etc, light);
  EXPECT_LT(r_light.mean_flow_time, r_heavy.mean_flow_time);
}

}  // namespace
