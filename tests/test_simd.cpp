// Tests for the SIMD kernel layer: runtime dispatch plumbing, bit-identity
// of every dispatched backend against the scalar reference twin (including
// NaN/inf "incapable" entries, ties, signed zeros, and denormals), agreement
// of the fused scans with plain sequential reference scans, and degenerate
// shapes (1xN, Nx1, single entry, non-multiple-of-lane widths) through the
// public APIs that sit on top of the kernels.
//
// The whole binary is also re-run by ctest under HETERO_SIMD=scalar and
// HETERO_SIMD=avx2 (simd_equiv label), which exercises the env-forced
// dispatch path end to end.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/etc_matrix.hpp"
#include "core/standard_form.hpp"
#include "linalg/matrix.hpp"
#include "linalg/svd.hpp"
#include "sched/heuristics.hpp"
#include "sched/makespan.hpp"
#include "simd/simd.hpp"

namespace {

using hetero::simd::Backend;
using hetero::simd::Kernels;

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kDenorm = std::numeric_limits<double>::denorm_min();

std::uint64_t bits(double x) { return std::bit_cast<std::uint64_t>(x); }

// Deterministic value battery: pseudo-random magnitudes with special values
// (zeros, signed zeros, denormals, huge/tiny) interleaved at fixed offsets.
std::vector<double> battery(std::size_t n, std::uint64_t seed) {
  std::vector<double> v(n);
  std::uint64_t s = seed * 6364136223846793005ULL + 1442695040888963407ULL;
  for (std::size_t i = 0; i < n; ++i) {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    const double u =
        static_cast<double>(s >> 11) / static_cast<double>(1ULL << 53);
    v[i] = (u - 0.5) * 2000.0;
    switch (i % 11) {
      case 3: v[i] = 0.0; break;
      case 5: v[i] = -0.0; break;
      case 7: v[i] = kDenorm * static_cast<double>(1 + i); break;
      case 9: v[i] = v[i] * 1e300; break;
      default: break;
    }
  }
  return v;
}

const std::vector<std::size_t>& lengths() {
  // Below, at, and well above the 4-lane width, odd tails included.
  static const std::vector<std::size_t> n = {0, 1,  2,  3,  4,  5,   7,
                                             8, 13, 16, 31, 64, 100, 127};
  return n;
}

std::vector<const Kernels*> dispatched_backends() {
  std::vector<const Kernels*> out;
  for (Backend b : {Backend::avx2, Backend::neon})
    if (const Kernels* k = hetero::simd::kernels_for(b)) out.push_back(k);
  return out;
}

const Kernels& scalar() {
  return *hetero::simd::kernels_for(Backend::scalar);
}

// ---------------------------------------------------------------- dispatch

TEST(SimdDispatch, BackendNames) {
  EXPECT_STREQ(hetero::simd::backend_name(Backend::scalar), "scalar");
  EXPECT_STREQ(hetero::simd::backend_name(Backend::avx2), "avx2");
  EXPECT_STREQ(hetero::simd::backend_name(Backend::neon), "neon");
}

TEST(SimdDispatch, ScalarAlwaysAvailable) {
  EXPECT_TRUE(hetero::simd::backend_available(Backend::scalar));
  EXPECT_NE(hetero::simd::kernels_for(Backend::scalar), nullptr);
}

TEST(SimdDispatch, UnavailableBackendsReturnNull) {
  for (Backend b : {Backend::avx2, Backend::neon}) {
    if (!hetero::simd::backend_available(b)) {
      EXPECT_EQ(hetero::simd::kernels_for(b), nullptr);
    }
  }
}

TEST(SimdDispatch, ActiveBackendIsAvailable) {
  EXPECT_TRUE(hetero::simd::backend_available(hetero::simd::active_backend()));
  // kernels() must be the table of the active backend.
  EXPECT_EQ(&hetero::simd::kernels(),
            hetero::simd::kernels_for(hetero::simd::active_backend()));
}

// ------------------------------------------- cross-backend bit identity

TEST(SimdEquivalence, Reductions) {
  const auto& sk = scalar();
  for (const Kernels* vk : dispatched_backends()) {
    for (std::size_t n : lengths()) {
      const auto x = battery(n, 17 + n);
      const auto y = battery(n, 991 + n);
      EXPECT_EQ(bits(sk.sum(x.data(), n)), bits(vk->sum(x.data(), n))) << n;
      EXPECT_EQ(bits(sk.dot(x.data(), y.data(), n)),
                bits(vk->dot(x.data(), y.data(), n)))
          << n;
      EXPECT_EQ(bits(sk.reduce_min(x.data(), n)),
                bits(vk->reduce_min(x.data(), n)))
          << n;
      EXPECT_EQ(bits(sk.reduce_max(x.data(), n)),
                bits(vk->reduce_max(x.data(), n)))
          << n;
      EXPECT_EQ(bits(sk.reduce_max_abs(x.data(), n)),
                bits(vk->reduce_max_abs(x.data(), n)))
          << n;
    }
  }
}

TEST(SimdEquivalence, PairedKernelsMatchTwoSingleCalls) {
  // dot2 / axpy2 promise bit-identity to two independent dot / axpy calls
  // — the blocked Gram and tridiagonalization paths rely on that to keep
  // tiled results equal to their unpaired reference order.
  const auto& sk = scalar();
  std::vector<const Kernels*> all = {&sk};
  for (const Kernels* vk : dispatched_backends()) all.push_back(vk);
  for (const Kernels* k : all) {
    for (std::size_t n : lengths()) {
      const auto a = battery(n, 101 + n);
      const auto b0 = battery(n, 103 + n);
      const auto b1 = battery(n, 107 + n);

      double d0 = 0, d1 = 0;
      k->dot2(a.data(), b0.data(), b1.data(), n, &d0, &d1);
      EXPECT_EQ(bits(d0), bits(k->dot(a.data(), b0.data(), n))) << n;
      EXPECT_EQ(bits(d1), bits(k->dot(a.data(), b1.data(), n))) << n;

      auto acc2 = battery(n, 109 + n);
      auto acc_ref = acc2;
      k->axpy2(acc2.data(), b0.data(), b1.data(), n, 0.3, -1.7);
      k->axpy(acc_ref.data(), b0.data(), n, 0.3);
      k->axpy(acc_ref.data(), b1.data(), n, -1.7);
      for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(bits(acc2[i]), bits(acc_ref[i])) << n << ":" << i;
    }
  }
}

TEST(SimdEquivalence, ElementwiseTransforms) {
  const auto& sk = scalar();
  for (const Kernels* vk : dispatched_backends()) {
    for (std::size_t n : lengths()) {
      const auto x0 = battery(n, 23 + n);
      const auto a0 = battery(n, 71 + n);

      auto xs = x0, xv = x0;
      sk.scale(xs.data(), n, 1.0 / 3.0);
      vk->scale(xv.data(), n, 1.0 / 3.0);
      for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(bits(xs[i]), bits(xv[i])) << n << ":" << i;

      auto as = a0, av = a0;
      sk.add_into(x0.data(), as.data(), n);
      vk->add_into(x0.data(), av.data(), n);
      for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(bits(as[i]), bits(av[i])) << n << ":" << i;

      as = a0;
      av = a0;
      sk.axpy(as.data(), x0.data(), n, -0.7);
      vk->axpy(av.data(), x0.data(), n, -0.7);
      for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(bits(as[i]), bits(av[i])) << n << ":" << i;

      auto ps = x0, pv = x0;
      auto qs = a0, qv = a0;
      const double c = 0.8, s = 0.6;
      sk.rotate_pair(ps.data(), qs.data(), n, c, s);
      vk->rotate_pair(pv.data(), qv.data(), n, c, s);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(bits(ps[i]), bits(pv[i])) << n << ":" << i;
        EXPECT_EQ(bits(qs[i]), bits(qv[i])) << n << ":" << i;
      }
    }
  }
}

TEST(SimdEquivalence, ReciprocalsWithIncapableEntries) {
  const auto& sk = scalar();
  for (const Kernels* vk : dispatched_backends()) {
    for (std::size_t n : lengths()) {
      auto x = battery(n, 5 + n);
      for (std::size_t i = 0; i < n; ++i) {
        x[i] = std::fabs(x[i]);
        if (i % 6 == 2) x[i] = kInf;   // incapable machine
        if (i % 9 == 4) x[i] = 0.0;    // zero speed
      }
      std::vector<double> os(n), ov(n);
      sk.reciprocal_or_zero(x.data(), os.data(), n);
      vk->reciprocal_or_zero(x.data(), ov.data(), n);
      for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(bits(os[i]), bits(ov[i])) << n << ":" << i;
      sk.reciprocal_or_inf(x.data(), os.data(), n);
      vk->reciprocal_or_inf(x.data(), ov.data(), n);
      for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(bits(os[i]), bits(ov[i])) << n << ":" << i;
    }
  }
}

TEST(SimdEquivalence, FusedSinkhornKernels) {
  const auto& sk = scalar();
  for (const Kernels* vk : dispatched_backends()) {
    for (std::size_t n : lengths()) {
      const auto r0 = battery(n, 37 + n);
      const auto f = battery(n, 41 + n);
      const auto acc0 = battery(n, 43 + n);

      auto rs = r0, rv = r0, as = acc0, av = acc0;
      const double ss = sk.scale_accum(rs.data(), n, 1.7, as.data());
      const double sv = vk->scale_accum(rv.data(), n, 1.7, av.data());
      EXPECT_EQ(bits(ss), bits(sv)) << n;
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(bits(rs[i]), bits(rv[i])) << n << ":" << i;
        EXPECT_EQ(bits(as[i]), bits(av[i])) << n << ":" << i;
      }

      rs = r0; rv = r0; as = acc0; av = acc0;
      EXPECT_EQ(bits(sk.scale_vec_accum(rs.data(), f.data(), n, as.data())),
                bits(vk->scale_vec_accum(rv.data(), f.data(), n, av.data())))
          << n;
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(bits(rs[i]), bits(rv[i])) << n << ":" << i;
        EXPECT_EQ(bits(as[i]), bits(av[i])) << n << ":" << i;
      }

      std::vector<double> ds(n), dv(n);
      as = acc0; av = acc0;
      EXPECT_EQ(bits(sk.copy_accum(r0.data(), ds.data(), n, as.data())),
                bits(vk->copy_accum(r0.data(), dv.data(), n, av.data())))
          << n;
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(bits(ds[i]), bits(dv[i])) << n << ":" << i;
        EXPECT_EQ(bits(as[i]), bits(av[i])) << n << ":" << i;
      }

      as = acc0; av = acc0;
      EXPECT_EQ(bits(sk.copy_scale_accum(r0.data(), ds.data(), n, 0.9,
                                         f.data(), as.data())),
                bits(vk->copy_scale_accum(r0.data(), dv.data(), n, 0.9,
                                          f.data(), av.data())))
          << n;
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(bits(ds[i]), bits(dv[i])) << n << ":" << i;
        EXPECT_EQ(bits(as[i]), bits(av[i])) << n << ":" << i;
      }
    }
  }
}

TEST(SimdEquivalence, SchedulerScansWithTiesAndIncapableEntries) {
  const auto& sk = scalar();
  for (const Kernels* vk : dispatched_backends()) {
    for (std::size_t n : lengths()) {
      auto etc = battery(n, 53 + n);
      auto ready = battery(n, 59 + n);
      for (std::size_t i = 0; i < n; ++i) {
        etc[i] = 1.0 + std::fabs(etc[i]);
        if (i % 5 == 1) etc[i] = kInf;          // incapable machine
        if (i % 7 == 3 && i > 0) etc[i] = etc[i - 1];  // duplicate → tie
        ready[i] = std::fabs(ready[i]);
        if (i % 6 == 2 && i > 0) ready[i] = ready[i - 1];
      }

      double b1 = 0, s1 = 0, b2 = 0, s2 = 0;
      std::size_t j1 = 0, j2 = 0;
      sk.best_second_scan(etc.data(), ready.data(), n, &b1, &s1, &j1);
      vk->best_second_scan(etc.data(), ready.data(), n, &b2, &s2, &j2);
      EXPECT_EQ(bits(b1), bits(b2)) << n;
      EXPECT_EQ(bits(s1), bits(s2)) << n;
      EXPECT_EQ(j1, j2) << n;

      sk.argmin_first(etc.data(), n, &b1, &j1);
      vk->argmin_first(etc.data(), n, &b2, &j2);
      EXPECT_EQ(bits(b1), bits(b2)) << n;
      EXPECT_EQ(j1, j2) << n;

      sk.argmin_masked_first(ready.data(), etc.data(), n, &b1, &j1);
      vk->argmin_masked_first(ready.data(), etc.data(), n, &b2, &j2);
      EXPECT_EQ(bits(b1), bits(b2)) << n;
      EXPECT_EQ(j1, j2) << n;

      // Priority vector with NaN (planned slots), ties, and -inf entries.
      auto prio = battery(n, 61 + n);
      for (std::size_t i = 0; i < n; ++i) {
        if (i % 4 == 1) prio[i] = kNan;
        if (i % 8 == 6) prio[i] = -kInf;
        if (i % 5 == 4 && i > 1) prio[i] = prio[i - 2];
      }
      EXPECT_EQ(sk.argmax_first(prio.data(), n),
                vk->argmax_first(prio.data(), n))
          << n;
    }
  }
}

// ------------------------------ fused scans vs naive sequential references

TEST(SimdScans, BestSecondMatchesSequentialSkipScan) {
  const auto& k = hetero::simd::kernels();
  for (std::size_t n : lengths()) {
    auto etc = battery(n, 67 + n);
    auto ready = battery(n, 73 + n);
    for (std::size_t i = 0; i < n; ++i) {
      etc[i] = 0.5 + std::fabs(etc[i]);
      if (i % 3 == 1) etc[i] = kInf;
      if (i % 4 == 2 && i > 0) etc[i] = etc[i - 1];
      ready[i] = std::fabs(ready[i]);
    }
    // The pre-SIMD BatchEngine::rescan loop, verbatim.
    double best = kInf, second = kInf;
    std::size_t bj = 0;
    for (std::size_t j = 0; j < n; ++j) {
      if (std::isinf(etc[j])) continue;
      const double ct = ready[j] + etc[j];
      if (ct < best) {
        second = best;
        best = ct;
        bj = j;
      } else {
        second = std::min(second, ct);
      }
    }
    double kb = 0, ks = 0;
    std::size_t kj = 0;
    k.best_second_scan(etc.data(), ready.data(), n, &kb, &ks, &kj);
    EXPECT_EQ(bits(best), bits(kb)) << n;
    EXPECT_EQ(bits(second), bits(ks)) << n;
    EXPECT_EQ(bj, kj) << n;
  }
}

TEST(SimdScans, ArgmaxMatchesSequentialStrictScan) {
  const auto& k = hetero::simd::kernels();
  for (std::size_t n : lengths()) {
    auto v = battery(n, 79 + n);
    for (std::size_t i = 0; i < n; ++i) {
      if (i % 5 == 2) v[i] = kNan;
      if (i % 6 == 4 && i > 0) v[i] = v[i - 1];
    }
    double best = -kInf;
    std::size_t at = static_cast<std::size_t>(-1);
    bool won = false;
    for (std::size_t i = 0; i < n; ++i)
      if (v[i] > best) {
        best = v[i];
        at = i;
        won = true;
      }
    const std::size_t kat = k.argmax_first(v.data(), n);
    if (won)
      EXPECT_EQ(at, kat) << n;
    else
      EXPECT_EQ(kat, static_cast<std::size_t>(-1)) << n;
  }
}

TEST(SimdScans, AllInfiniteBestSecondDegradesLikeReference) {
  const auto& k = hetero::simd::kernels();
  const std::vector<double> etc = {kInf, kInf, kInf, kInf, kInf, kInf};
  const std::vector<double> ready = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  double b = 0, s = 0;
  std::size_t j = 99;
  k.best_second_scan(etc.data(), ready.data(), etc.size(), &b, &s, &j);
  EXPECT_TRUE(std::isinf(b));
  EXPECT_TRUE(std::isinf(s));
  EXPECT_EQ(j, 0u);  // the untouched best-index of the sequential scan
}

TEST(SimdScans, SingleFiniteCompletionTimeLeavesSecondInfinite) {
  const auto& k = hetero::simd::kernels();
  const std::vector<double> etc = {kInf, 3.0, kInf, kInf, kInf};
  const std::vector<double> ready = {0.0, 1.0, 0.0, 0.0, 0.0};
  double b = 0, s = 0;
  std::size_t j = 99;
  k.best_second_scan(etc.data(), ready.data(), etc.size(), &b, &s, &j);
  EXPECT_EQ(b, 4.0);
  EXPECT_TRUE(std::isinf(s));
  EXPECT_EQ(j, 1u);
}

TEST(SimdScans, ArgminMaskedAllExcludedReportsInfinity) {
  const auto& k = hetero::simd::kernels();
  const std::vector<double> load = {1.0, 2.0, 3.0};
  const std::vector<double> mask = {kInf, kInf, kInf};
  double m = 0;
  std::size_t at = 99;
  k.argmin_masked_first(load.data(), mask.data(), 3, &m, &at);
  EXPECT_TRUE(std::isinf(m));
}

TEST(SimdScans, EmptyInputs) {
  const auto& k = hetero::simd::kernels();
  EXPECT_EQ(k.sum(nullptr, 0), 0.0);
  EXPECT_EQ(k.reduce_min(nullptr, 0), kInf);
  EXPECT_EQ(k.reduce_max(nullptr, 0), -kInf);
  EXPECT_EQ(k.reduce_max_abs(nullptr, 0), 0.0);
  EXPECT_EQ(k.argmax_first(nullptr, 0), static_cast<std::size_t>(-1));
}

// ------------------------------------------ degenerate shapes, end to end

TEST(SimdDegenerateShapes, SinkhornOneRowMatrix) {
  // 1xN: a single row pass must hit the target exactly; widths straddle the
  // lane boundary.
  for (std::size_t cols : {1u, 2u, 3u, 4u, 5u, 7u, 9u}) {
    hetero::linalg::Matrix m(1, cols, 0.0);
    for (std::size_t j = 0; j < cols; ++j)
      m(0, j) = 1.0 + static_cast<double>(j);
    const auto r = hetero::core::standardize(m);
    EXPECT_TRUE(r.converged) << cols;
    EXPECT_NEAR(r.standard.row_sum(0), r.target_row_sum, 1e-12) << cols;
  }
}

TEST(SimdDegenerateShapes, SinkhornOneColumnMatrix) {
  for (std::size_t rows : {1u, 3u, 5u, 8u}) {
    hetero::linalg::Matrix m(rows, 1, 0.0);
    for (std::size_t i = 0; i < rows; ++i)
      m(i, 0) = 2.0 + static_cast<double>(i);
    const auto r = hetero::core::standardize(m);
    EXPECT_TRUE(r.converged) << rows;
  }
}

TEST(SimdDegenerateShapes, SinkhornSingleEntry) {
  hetero::linalg::Matrix m(1, 1, 42.0);
  const auto r = hetero::core::standardize(m);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.standard(0, 0), 1.0, 1e-12);
}

TEST(SimdDegenerateShapes, SinkhornDenormalEntries) {
  // Denormal entries mixed into normal-scale rows must flow through the
  // kernel sums without poisoning the result (they only perturb the row
  // sums at the 1e-308 level).
  hetero::linalg::Matrix m = {{1.0, kDenorm * 2, 2.0},
                              {kDenorm * 3, 2.0, 1.0},
                              {2.0, 1.0, kDenorm * 5}};
  const auto r = hetero::core::standardize(m);
  EXPECT_TRUE(r.converged);
  EXPECT_FALSE(r.standard.has_nonfinite());
}

TEST(SimdDegenerateShapes, SinkhornZeroEntriesNormalizablePattern) {
  hetero::linalg::Matrix m = {{1.0, 2.0, 0.0},
                              {0.0, 1.0, 3.0},
                              {2.0, 0.0, 1.0}};
  const auto r = hetero::core::standardize(m);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.standard.zero_count(), 3u);
}

TEST(SimdDegenerateShapes, SvdSingleColumnAndSingleRow) {
  hetero::linalg::Matrix col(5, 1, 0.0);
  for (std::size_t i = 0; i < 5; ++i) col(i, 0) = static_cast<double>(i + 1);
  const auto sc = hetero::linalg::singular_values(col);
  ASSERT_EQ(sc.size(), 1u);
  EXPECT_NEAR(sc[0], std::sqrt(55.0), 1e-12);

  hetero::linalg::Matrix row(1, 5, 0.0);
  for (std::size_t j = 0; j < 5; ++j) row(0, j) = static_cast<double>(j + 1);
  const auto sr = hetero::linalg::singular_values(row);
  ASSERT_EQ(sr.size(), 1u);
  EXPECT_NEAR(sr[0], std::sqrt(55.0), 1e-12);
}

TEST(SimdDegenerateShapes, SchedulerSingleMachineAndSingleTask) {
  using hetero::core::EtcMatrix;
  using hetero::linalg::Matrix;
  // N x 1: every task must map to the only machine.
  EtcMatrix one_machine(Matrix{{3.0}, {5.0}, {2.0}});
  const auto tasks = hetero::sched::one_of_each(one_machine);
  for (const auto& h : hetero::sched::standard_heuristics()) {
    const auto a = h.map(one_machine, tasks);
    for (std::size_t j : a) EXPECT_EQ(j, 0u) << h.name;
  }

  // A task with an incapable machine and a tie: first finite minimum wins.
  // (Row 1 keeps machine 0 useful so the EtcMatrix invariant holds.)
  EtcMatrix pair(Matrix{{kInf, 4.0, 4.0, 9.0, 5.0},
                        {1.0, 8.0, 8.0, 8.0, 8.0}});
  const auto a = hetero::sched::map_min_min(pair, {0});
  EXPECT_EQ(a[0], 1u);
  EXPECT_EQ(hetero::sched::met_fastest_machine(pair.values(), 0), 1u);
}

TEST(SimdDegenerateShapes, SchedulerNonLaneMultipleMachineCounts) {
  using hetero::core::EtcMatrix;
  using hetero::linalg::Matrix;
  // Machine counts 3, 5, 7 (never a multiple of 4): fast vs reference
  // batch heuristics must agree exactly, infinities included.
  for (std::size_t mc : {3u, 5u, 7u}) {
    Matrix v(6, mc, 0.0);
    double x = 1.0;
    for (std::size_t i = 0; i < 6; ++i)
      for (std::size_t j = 0; j < mc; ++j) {
        v(i, j) = 1.0 + std::fmod(x, 17.0);
        x *= 1.618;
        if ((i * mc + j) % 5 == 4) v(i, j) = kInf;
      }
    for (std::size_t i = 0; i < 6; ++i) v(i, 0) = 2.0;  // keep rows runnable
    for (std::size_t j = 0; j < mc; ++j) v(0, j) = 3.0;
    EtcMatrix etc(std::move(v));
    const auto tasks = hetero::sched::one_of_each(etc);
    EXPECT_EQ(hetero::sched::map_min_min(etc, tasks),
              hetero::sched::map_min_min_reference(etc, tasks))
        << mc;
    EXPECT_EQ(hetero::sched::map_max_min(etc, tasks),
              hetero::sched::map_max_min_reference(etc, tasks))
        << mc;
    EXPECT_EQ(hetero::sched::map_sufferage(etc, tasks),
              hetero::sched::map_sufferage_reference(etc, tasks))
        << mc;
  }
}

TEST(SimdDegenerateShapes, EtcEcsRoundTripWithIncapableEntries) {
  using hetero::core::EtcMatrix;
  using hetero::linalg::Matrix;
  Matrix v = {{2.0, kInf, 0.5}, {kInf, 4.0, 1.0}, {8.0, 0.25, kInf}};
  const EtcMatrix etc(v);
  const auto ecs = etc.to_ecs();
  EXPECT_EQ(ecs.values()(0, 1), 0.0);
  EXPECT_EQ(ecs.values()(0, 0), 0.5);
  const auto back = ecs.to_etc();
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j)
      EXPECT_EQ(bits(back.values()(i, j)), bits(v(i, j))) << i << "," << j;
}

}  // namespace
