// Service-layer tests: sharded result cache, admission-control queue,
// protocol, metrics, and the server pipeline — including the contention
// suites the `svc_equiv` ctest label runs under HETERO_SANITIZE=thread,
// and the bit-identity contract between cached and cold responses.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "etcgen/range_based.hpp"
#include "etcgen/rng.hpp"
#include "io/json.hpp"
#include "sched/heuristics.hpp"
#include "svc/metrics.hpp"
#include "svc/protocol.hpp"
#include "svc/request_queue.hpp"
#include "svc/result_cache.hpp"
#include "svc/server.hpp"

namespace {

namespace svc = hetero::svc;
namespace io = hetero::io;
using hetero::core::EtcMatrix;
using hetero::linalg::Matrix;

EtcMatrix test_matrix(std::size_t tasks, std::size_t machines,
                      std::uint64_t seed) {
  hetero::etcgen::Rng rng(seed);
  hetero::etcgen::RangeBasedOptions options;
  options.tasks = tasks;
  options.machines = machines;
  return hetero::etcgen::generate_range_based(options, rng);
}

std::string request_line(const EtcMatrix& etc, const std::string& kind,
                         const std::string& extra = {}) {
  return "{\"kind\":\"" + kind + "\"" + extra +
         ",\"etc\":" + io::to_json(etc) + "}";
}

/// Synchronous submit: blocks until the response callback fires.
std::string call(svc::Server& server, const std::string& line) {
  std::mutex m;
  std::condition_variable cv;
  std::string response;
  bool done = false;
  server.submit(line, [&](std::string r) {
    // Notify under the lock: the caller destroys cv as soon as done flips.
    const std::scoped_lock lock(m);
    response = std::move(r);
    done = true;
    cv.notify_one();
  });
  std::unique_lock lock(m);
  cv.wait(lock, [&] { return done; });
  return response;
}

// ---------------------------------------------------------------------------
// ContentHasher / cache keys.

TEST(SvcCacheKey, DistinguishesContent) {
  const auto etc_a = test_matrix(8, 4, 1);
  const auto etc_b = test_matrix(8, 4, 2);
  svc::Request a, b;
  a.kind = b.kind = svc::RequestKind::characterize;
  a.etc = etc_a;
  b.etc = etc_b;
  EXPECT_NE(svc::cache_key(a), svc::cache_key(b));
  b.etc = etc_a;
  EXPECT_EQ(svc::cache_key(a), svc::cache_key(b));
  // Kind participates: a measures request on the same matrix is distinct.
  b.kind = svc::RequestKind::measures;
  EXPECT_NE(svc::cache_key(a), svc::cache_key(b));
}

TEST(SvcCacheKey, ScheduleOptionsParticipate) {
  const auto etc = test_matrix(6, 3, 3);
  svc::Request a;
  a.kind = svc::RequestKind::schedule;
  a.etc = etc;
  a.heuristic = "min_min";
  svc::Request b = a;
  b.heuristic = "max_min";
  EXPECT_NE(svc::cache_key(a), svc::cache_key(b));
  b = a;
  b.tasks = {0, 1, 2};
  EXPECT_NE(svc::cache_key(a), svc::cache_key(b));
  b = a;
  b.seed = 99;
  EXPECT_NE(svc::cache_key(a), svc::cache_key(b));
}

TEST(SvcCacheKey, LabelsParticipate) {
  Matrix values{{1, 2}, {3, 4}};
  svc::Request a, b;
  a.kind = b.kind = svc::RequestKind::characterize;
  a.etc = EtcMatrix(values, {"a", "b"}, {"x", "y"});
  b.etc = EtcMatrix(values, {"a", "b"}, {"x", "z"});
  EXPECT_NE(svc::cache_key(a), svc::cache_key(b));
}

// ---------------------------------------------------------------------------
// ResultCache.

TEST(SvcResultCache, HitMissAndStats) {
  svc::ResultCache cache(4, 8);
  EXPECT_FALSE(cache.get(1).has_value());
  cache.put(1, "one");
  ASSERT_TRUE(cache.get(1).has_value());
  EXPECT_EQ(*cache.get(1), "one");
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(SvcResultCache, EvictsLeastRecentlyUsed) {
  svc::ResultCache cache(1, 2);  // one shard, two entries
  cache.put(1, "one");
  cache.put(2, "two");
  ASSERT_TRUE(cache.get(1).has_value());  // refresh 1; 2 is now LRU
  cache.put(3, "three");                  // evicts 2
  EXPECT_TRUE(cache.get(1).has_value());
  EXPECT_FALSE(cache.get(2).has_value());
  EXPECT_TRUE(cache.get(3).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(SvcResultCache, PutOfExistingKeyRefreshesRecency) {
  svc::ResultCache cache(1, 2);
  cache.put(1, "one");
  cache.put(2, "two");
  cache.put(1, "one");   // refresh, not duplicate
  cache.put(3, "three"); // evicts 2 (LRU), not 1
  EXPECT_TRUE(cache.get(1).has_value());
  EXPECT_FALSE(cache.get(2).has_value());
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(SvcResultCache, ShardCountRoundsToPowerOfTwo) {
  svc::ResultCache cache(5, 1);
  EXPECT_EQ(cache.shard_count(), 8u);
  svc::ResultCache one(0, 0);
  EXPECT_EQ(one.shard_count(), 1u);
  one.put(42, "x");  // capacity clamped to 1
  EXPECT_TRUE(one.get(42).has_value());
}

// Multi-threaded hit/miss storm: readers and writers race over a small
// keyspace; under TSan this is the data-race check for the sharded lock
// scheme, and the final state must be coherent (values match their keys).
TEST(SvcResultCache, ConcurrentStormIsCoherent) {
  svc::ResultCache cache(8, 4);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 2000;
  std::atomic<bool> mismatch{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::uint64_t x = static_cast<std::uint64_t>(t) + 1;
      for (int i = 0; i < kOpsPerThread; ++i) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        const std::uint64_t key = (x >> 33) % 64;
        if (x & 1) {
          cache.put(key, std::to_string(key));
        } else if (const auto hit = cache.get(key)) {
          if (*hit != std::to_string(key)) mismatch.store(true);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_FALSE(mismatch.load());
  const auto stats = cache.stats();
  EXPECT_EQ(stats.entries + stats.evictions,
            stats.misses == 0 ? stats.entries : stats.entries + stats.evictions);
  EXPECT_LE(stats.entries, 8u * 4u);
}

// ---------------------------------------------------------------------------
// RequestQueue.

svc::QueuedItem make_item(std::string id = "null") {
  svc::QueuedItem item;
  item.request.kind = svc::RequestKind::stats;
  item.request.id_json = std::move(id);
  item.respond = [](std::string) {};
  item.enqueued = std::chrono::steady_clock::now();
  return item;
}

TEST(SvcRequestQueue, RejectsWhenFull) {
  svc::RequestQueue queue(2);
  EXPECT_TRUE(queue.try_push(make_item()));
  EXPECT_TRUE(queue.try_push(make_item()));
  svc::QueuedItem overflow = make_item("\"overflow\"");
  EXPECT_FALSE(queue.try_push(std::move(overflow)));
  // Rejection leaves the item intact so the caller can respond.
  EXPECT_EQ(overflow.request.id_json, "\"overflow\"");
  ASSERT_TRUE(queue.pop().has_value());
  EXPECT_TRUE(queue.try_push(make_item()));  // space again
}

TEST(SvcRequestQueue, FifoAndSequence) {
  svc::RequestQueue queue(8);
  ASSERT_TRUE(queue.try_push(make_item("\"a\"")));
  ASSERT_TRUE(queue.try_push(make_item("\"b\"")));
  const auto first = queue.pop();
  const auto second = queue.pop();
  ASSERT_TRUE(first && second);
  EXPECT_EQ(first->request.id_json, "\"a\"");
  EXPECT_EQ(second->request.id_json, "\"b\"");
  EXPECT_LT(first->sequence, second->sequence);
}

TEST(SvcRequestQueue, CloseRejectsPushesButDrains) {
  svc::RequestQueue queue(4);
  ASSERT_TRUE(queue.try_push(make_item()));
  queue.close();
  EXPECT_FALSE(queue.try_push(make_item()));
  EXPECT_TRUE(queue.try_pop().has_value());  // admitted work still drains
  EXPECT_FALSE(queue.pop().has_value());     // then closed-and-empty
}

TEST(SvcRequestQueue, DepthZeroClampsToOne) {
  svc::RequestQueue queue(0);
  EXPECT_EQ(queue.depth(), 1u);
  EXPECT_TRUE(queue.try_push(make_item()));
  EXPECT_FALSE(queue.try_push(make_item()));
}

// Producer/consumer storm across threads: every admitted item is popped
// exactly once, rejected items are counted, nothing is lost.
TEST(SvcRequestQueue, ConcurrentPushPopConserved) {
  svc::RequestQueue queue(16);
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 500;
  std::atomic<int> admitted{0}, rejected{0}, popped{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i) {
        if (queue.try_push(make_item()))
          admitted.fetch_add(1);
        else
          rejected.fetch_add(1);
      }
    });
  }
  std::atomic<bool> stop{false};
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (!stop.load()) {
        if (queue.try_pop())
          popped.fetch_add(1);
        else
          std::this_thread::yield();
      }
      while (queue.try_pop()) popped.fetch_add(1);
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[static_cast<std::size_t>(p)].join();
  stop.store(true);
  for (std::size_t t = kProducers; t < threads.size(); ++t) threads[t].join();
  EXPECT_EQ(admitted.load() + rejected.load(), kProducers * kPerProducer);
  EXPECT_EQ(popped.load(), admitted.load());
}

// ---------------------------------------------------------------------------
// Protocol.

TEST(SvcProtocol, ParsesFullRequest) {
  const auto request = svc::parse_request(
      "{\"id\":7,\"kind\":\"schedule\",\"heuristic\":\"min_min\","
      "\"tasks\":[0,1,1],\"deadline_ms\":250,"
      "\"etc\":{\"tasks\":[\"a\",\"b\"],\"machines\":[\"x\",\"y\"],"
      "\"etc\":[[1,2],[3,null]]}}");
  EXPECT_EQ(request.kind, svc::RequestKind::schedule);
  EXPECT_EQ(request.id_json, "7");
  EXPECT_EQ(request.heuristic, "min_min");
  EXPECT_EQ(request.tasks, (hetero::sched::TaskList{0, 1, 1}));
  ASSERT_TRUE(request.deadline.has_value());
  EXPECT_EQ(request.deadline->count(), 250);
  ASSERT_TRUE(request.etc.has_value());
  EXPECT_EQ(request.etc->task_count(), 2u);
  EXPECT_TRUE(std::isinf((*request.etc)(1, 1)));  // null -> cannot run
}

TEST(SvcProtocol, RejectsMalformedRequests) {
  EXPECT_THROW(svc::parse_request("not json"), hetero::Error);
  EXPECT_THROW(svc::parse_request("[1,2,3]"), hetero::Error);
  EXPECT_THROW(svc::parse_request("{\"kind\":\"nope\"}"), hetero::Error);
  EXPECT_THROW(svc::parse_request("{\"kind\":\"measures\"}"),
               hetero::Error);  // matrix missing
  EXPECT_THROW(
      svc::parse_request(
          "{\"kind\":\"schedule\",\"etc\":[[1,2],[3,4]]}"),
      hetero::Error);  // heuristic missing
  EXPECT_THROW(
      svc::parse_request("{\"kind\":\"schedule\",\"heuristic\":\"bogus\","
                         "\"etc\":[[1,2],[3,4]]}"),
      hetero::Error);
  EXPECT_THROW(
      svc::parse_request("{\"kind\":\"schedule\",\"heuristic\":\"min_min\","
                         "\"tasks\":[5],\"etc\":[[1,2],[3,4]]}"),
      hetero::Error);  // task index out of range
  EXPECT_THROW(
      svc::parse_request("{\"kind\":\"measures\",\"deadline_ms\":-1,"
                         "\"etc\":[[1,2],[3,4]]}"),
      hetero::Error);
}

TEST(SvcProtocol, ComputeSchedulesMatchDirectHeuristics) {
  const auto etc = test_matrix(12, 4, 11);
  for (const char* token : {"min_min", "max_min", "sufferage"}) {
    svc::Request request;
    request.kind = svc::RequestKind::schedule;
    request.etc = etc;
    request.heuristic = token;
    const auto parsed = io::parse_json(svc::compute_result(request));
    const auto summary = io::schedule_summary_from_json(parsed);
    const auto expected = hetero::sched::find_heuristic(token)->map(
        etc, hetero::sched::one_of_each(etc));
    EXPECT_EQ(summary.assignment, expected) << token;
  }
}

TEST(SvcProtocol, GaScheduleIsDeterministicPerSeed) {
  const auto etc = test_matrix(10, 3, 13);
  svc::Request request;
  request.kind = svc::RequestKind::schedule;
  request.etc = etc;
  request.heuristic = "ga";
  request.seed = 5;
  const std::string a = svc::compute_result(request);
  const std::string b = svc::compute_result(request);
  EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------------------
// Metrics.

TEST(SvcMetrics, HistogramBucketsAndQuantiles) {
  svc::LatencyHistogram h;
  h.record(0);
  h.record(1);
  h.record(100);
  h.record(1000);
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.sum_us, 1101u);
  EXPECT_EQ(s.max_us, 1000u);
  EXPECT_DOUBLE_EQ(s.mean_us(), 1101.0 / 4.0);
  // p50 falls in the bucket containing the second sample (1 us -> [1,2)).
  EXPECT_LE(s.quantile_upper_us(0.5), 128u);
  EXPECT_GE(s.quantile_upper_us(1.0), 1000u);
}

TEST(SvcMetrics, KindNamesRoundTrip) {
  for (const auto kind :
       {svc::RequestKind::characterize, svc::RequestKind::measures,
        svc::RequestKind::schedule, svc::RequestKind::whatif,
        svc::RequestKind::stats}) {
    EXPECT_EQ(svc::parse_kind(svc::kind_name(kind)), kind);
  }
  EXPECT_EQ(svc::parse_kind("bogus"), svc::RequestKind::invalid);
  // "invalid" is not a wire kind.
  EXPECT_EQ(svc::parse_kind("invalid"), svc::RequestKind::invalid);
}

TEST(SvcMetrics, SnapshotJsonIsParseable) {
  svc::Metrics metrics;
  metrics.kind(svc::RequestKind::measures)
      .received.fetch_add(3, std::memory_order_relaxed);
  metrics.kind(svc::RequestKind::measures).compute.record(42);
  metrics.count_rejected_full();
  const auto parsed = io::parse_json(svc::to_json(metrics.snapshot()));
  EXPECT_EQ(parsed.at("rejected_full").as_number(), 1.0);
  const auto& measures = parsed.at("kinds").at("measures");
  EXPECT_EQ(measures.at("received").as_number(), 3.0);
  EXPECT_EQ(measures.at("compute").at("count").as_number(), 1.0);
}

// Concurrent recording storm — the lock-free counters must add up exactly.
TEST(SvcMetrics, ConcurrentRecordingIsLossless) {
  svc::Metrics metrics;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      auto& k = metrics.kind(svc::RequestKind::characterize);
      for (int i = 0; i < kPerThread; ++i) {
        k.received.fetch_add(1, std::memory_order_relaxed);
        k.compute.record(static_cast<std::uint64_t>(i % 1000));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const auto s = metrics.snapshot();
  EXPECT_EQ(s.kinds[0].received,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(s.kinds[0].compute.count,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

// ---------------------------------------------------------------------------
// Server pipeline.

TEST(SvcServer, CachedResponseBitIdenticalToCold) {
  svc::Server server;
  const auto etc = test_matrix(16, 4, 21);
  for (const std::string kind : {"characterize", "measures", "whatif"}) {
    const std::string line =
        request_line(etc, kind, ",\"id\":1");
    const std::string cold = server.handle(line);
    const std::string cached = server.handle(line);
    EXPECT_EQ(cold, cached) << kind;
    EXPECT_NE(cold.find("\"ok\":true"), std::string::npos) << cold;
  }
  const auto schedule =
      request_line(etc, "schedule", ",\"id\":1,\"heuristic\":\"sufferage\"");
  EXPECT_EQ(server.handle(schedule), server.handle(schedule));
  // Every kind above hit the cache exactly once.
  const auto stats = server.cache().stats();
  EXPECT_EQ(stats.hits, 4u);
  EXPECT_EQ(stats.misses, 4u);
}

TEST(SvcServer, SubmitStormEveryRequestAnsweredAndIdentical) {
  svc::ServerOptions options;
  options.threads = 4;
  options.queue_depth = 4096;  // no admission rejections in this test
  svc::Server server(options);
  std::vector<EtcMatrix> matrices;
  for (std::uint64_t s = 0; s < 4; ++s)
    matrices.push_back(test_matrix(12, 4, 100 + s));
  std::vector<std::string> lines;
  for (const auto& etc : matrices)
    lines.push_back(request_line(etc, "characterize", ",\"id\":0"));

  constexpr int kClients = 8;
  constexpr int kPerClient = 25;
  std::mutex m;
  std::vector<std::vector<std::string>> responses(lines.size());
  std::condition_variable done_cv;
  int outstanding = kClients * kPerClient;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        const std::size_t which =
            (static_cast<std::size_t>(c) + static_cast<std::size_t>(i)) %
            lines.size();
        server.submit(lines[which], [&, which](std::string response) {
          const std::scoped_lock lock(m);
          responses[which].push_back(std::move(response));
          --outstanding;
          done_cv.notify_one();
        });
      }
    });
  }
  for (auto& client : clients) client.join();
  std::unique_lock lock(m);
  done_cv.wait(lock, [&] { return outstanding == 0; });

  std::size_t total = 0;
  for (std::size_t w = 0; w < responses.size(); ++w) {
    total += responses[w].size();
    ASSERT_FALSE(responses[w].empty());
    for (const auto& r : responses[w]) {
      EXPECT_EQ(r, responses[w].front())
          << "response for matrix " << w << " not bit-identical";
    }
  }
  EXPECT_EQ(total, static_cast<std::size_t>(kClients) * kPerClient);
  const auto stats = server.cache().stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<std::uint64_t>(kClients) * kPerClient);
  EXPECT_GE(stats.hits, stats.misses);  // 4 distinct matrices, 200 requests
}

TEST(SvcServer, FullQueueRejectsExplicitly) {
  // Deterministic overload: the single worker is parked inside the first
  // request's respond callback, so every subsequent submit lands in the
  // 2-deep queue — two admitted, the rest rejected with 429, no timing
  // dependence.
  svc::ServerOptions options;
  options.threads = 1;
  options.queue_depth = 2;
  svc::Server server(options);
  const std::string line =
      request_line(test_matrix(8, 4, 31), "characterize", ",\"id\":3");

  std::mutex m;
  std::condition_variable cv;
  bool worker_parked = false;
  bool release_worker = false;
  server.submit(line, [&](std::string) {
    std::unique_lock lock(m);
    worker_parked = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release_worker; });
  });
  {
    std::unique_lock lock(m);
    cv.wait(lock, [&] { return worker_parked; });
  }

  constexpr int kFlood = 8;
  int outstanding = kFlood;
  int ok = 0, rejected = 0, other = 0;
  for (int i = 0; i < kFlood; ++i) {
    server.submit(line, [&](std::string response) {
      const std::scoped_lock lock(m);
      if (response.find("\"ok\":true") != std::string::npos)
        ++ok;
      else if (response.find("\"code\":429") != std::string::npos)
        ++rejected;
      else
        ++other;
      --outstanding;
      cv.notify_all();
    });
  }
  {
    // Rejections are synchronous, so the flood loop above already counted
    // them; the two admitted requests complete once the worker resumes.
    const std::scoped_lock lock(m);
    EXPECT_EQ(rejected, kFlood - 2);
    release_worker = true;
    cv.notify_all();
  }
  std::unique_lock lock(m);
  cv.wait(lock, [&] { return outstanding == 0; });
  // Never dropped silently: every request got exactly one response, and
  // overload surfaced as explicit 429s.
  EXPECT_EQ(ok + rejected + other, kFlood);
  EXPECT_EQ(other, 0);
  EXPECT_EQ(ok, 2);
  EXPECT_EQ(rejected, kFlood - 2);
  EXPECT_EQ(server.metrics().snapshot().rejected_full,
            static_cast<std::uint64_t>(rejected));
}

TEST(SvcServer, ExpiredDeadlineRejectedBeforeDispatch) {
  svc::Server server;
  const std::string line = request_line(
      test_matrix(8, 4, 41), "characterize", ",\"id\":9,\"deadline_ms\":0");
  const std::string response = call(server, line);
  EXPECT_NE(response.find("\"ok\":false"), std::string::npos) << response;
  EXPECT_NE(response.find("\"code\":408"), std::string::npos) << response;
  EXPECT_NE(response.find("\"id\":9"), std::string::npos) << response;
  EXPECT_EQ(server.metrics().snapshot().rejected_deadline, 1u);
}

TEST(SvcServer, BadRequestsGetErrorResponses) {
  svc::Server server;
  EXPECT_NE(call(server, "this is not json").find("\"code\":400"),
            std::string::npos);
  EXPECT_NE(call(server, "{\"kind\":\"bogus\"}").find("\"code\":400"),
            std::string::npos);
  const auto snapshot = server.metrics().snapshot();
  EXPECT_EQ(snapshot.kinds.back().errors, 2u);  // the `invalid` slot
}

TEST(SvcServer, StatsRequestReportsTraffic) {
  svc::Server server;
  const auto etc = test_matrix(6, 3, 51);
  call(server, request_line(etc, "measures", ",\"id\":1"));
  call(server, request_line(etc, "measures", ",\"id\":2"));
  const std::string response = call(server, "{\"kind\":\"stats\",\"id\":3}");
  ASSERT_NE(response.find("\"ok\":true"), std::string::npos) << response;
  const auto parsed = io::parse_json(response);
  const auto& measures = parsed.at("result").at("kinds").at("measures");
  EXPECT_EQ(measures.at("received").as_number(), 2.0);
  EXPECT_EQ(measures.at("completed").as_number(), 2.0);
  EXPECT_EQ(measures.at("cache_hits").as_number(), 1.0);
  EXPECT_EQ(measures.at("cache_misses").as_number(), 1.0);
}

TEST(SvcServer, ServeStreamAnswersEveryLine) {
  std::istringstream in(
      request_line(test_matrix(5, 3, 61), "measures", ",\"id\":1") + "\n" +
      "garbage\n" +
      request_line(test_matrix(5, 3, 62), "measures", ",\"id\":2") + "\n" +
      "{\"kind\":\"stats\",\"id\":3}\n");
  std::ostringstream out;
  svc::Server server;
  server.serve_stream(in, out);
  std::istringstream lines(out.str());
  std::string line;
  std::size_t count = 0, ok = 0;
  std::set<std::string> seen;
  while (std::getline(lines, line)) {
    ++count;
    const auto parsed = io::parse_json(line);  // every line well-formed
    if (parsed.at("ok").as_bool()) ++ok;
    seen.insert(io::to_json(parsed.at("id")));
  }
  EXPECT_EQ(count, 4u);
  EXPECT_EQ(ok, 3u);  // the garbage line got a 400
  EXPECT_TRUE(seen.count("1") && seen.count("2") && seen.count("3"));
}

// Destruction with admitted-but-unprocessed work: every response still
// arrives before the destructor returns.
TEST(SvcServer, DestructorDrainsAdmittedWork) {
  std::atomic<int> answered{0};
  {
    svc::ServerOptions options;
    options.threads = 2;
    svc::Server server(options);
    const std::string line =
        request_line(test_matrix(24, 6, 71), "characterize", "");
    for (int i = 0; i < 16; ++i)
      server.submit(line, [&](std::string) { answered.fetch_add(1); });
  }
  EXPECT_EQ(answered.load(), 16);
}

}  // namespace
