#include "core/extracts.hpp"

#include <gtest/gtest.h>

#include "spec/spec_data.hpp"

namespace {

using hetero::ValueError;
using hetero::core::EcsMatrix;
using hetero::core::extract_atlas;
using hetero::core::ExtractAtlasOptions;
using hetero::core::score_extract;
using hetero::linalg::Matrix;

TEST(Extracts, ScoreMatchesDirectSubmatrix) {
  const EcsMatrix ecs(Matrix{{1, 5, 2}, {3, 1, 4}, {2, 2, 2}});
  const auto e = score_extract(ecs, {0, 2}, {1, 2});
  const auto direct = hetero::core::measure_set(
      ecs.submatrix(std::vector<std::size_t>{0, 2},
                    std::vector<std::size_t>{1, 2}));
  EXPECT_DOUBLE_EQ(e.measures.mph, direct.mph);
  EXPECT_DOUBLE_EQ(e.measures.tma, direct.tma);
  EXPECT_EQ(e.tasks, (std::vector<std::size_t>{0, 2}));
}

TEST(Extracts, ExhaustiveAtlasOnSmallEnvironment) {
  const EcsMatrix ecs(Matrix{{10, 1, 1}, {1, 10, 1}, {1, 1, 10}});
  ExtractAtlasOptions opts;
  const auto atlas = extract_atlas(ecs, opts);
  EXPECT_TRUE(atlas.exhaustive);
  // 3 choose 2 squared = 9 extracts, all valid (all positive).
  EXPECT_EQ(atlas.scored, 9u);
  // Any extract containing two specialized pairs hits high TMA.
  EXPECT_GT(atlas.max_tma.measures.tma, 0.5);
  EXPECT_LT(atlas.min_tma.measures.tma, atlas.max_tma.measures.tma);
}

TEST(Extracts, AtlasExtremesBracketEveryExtract) {
  const EcsMatrix ecs(Matrix{{1, 5, 2, 7}, {3, 1, 4, 2}, {2, 2, 2, 1}});
  const auto atlas = extract_atlas(ecs);
  ASSERT_TRUE(atlas.exhaustive);
  // Re-enumerate manually and check the bounds hold.
  for (std::size_t a = 0; a < 3; ++a)
    for (std::size_t b = a + 1; b < 3; ++b)
      for (std::size_t c = 0; c < 4; ++c)
        for (std::size_t d = c + 1; d < 4; ++d) {
          const auto e = score_extract(ecs, {a, b}, {c, d});
          EXPECT_GE(e.measures.mph, atlas.min_mph.measures.mph - 1e-12);
          EXPECT_LE(e.measures.mph, atlas.max_mph.measures.mph + 1e-12);
          EXPECT_GE(e.measures.tma, atlas.min_tma.measures.tma - 1e-7);
          EXPECT_LE(e.measures.tma, atlas.max_tma.measures.tma + 1e-7);
        }
}

TEST(Extracts, SpecAtlasContainsFig8Extremes) {
  // The paper hand-picked Fig. 8(b) with TMA = 0.60 out of the CFP data;
  // the exhaustive 2x2 atlas over CFP must find something at least as
  // extreme.
  const auto atlas =
      extract_atlas(hetero::spec::spec_cfp2006rate().to_ecs());
  EXPECT_TRUE(atlas.exhaustive);  // C(17,2)*C(5,2) = 1360
  EXPECT_GE(atlas.max_tma.measures.tma, 0.59);
  EXPECT_LE(atlas.min_tma.measures.tma, 0.06);
}

TEST(Extracts, SamplingPathOnLargeShape) {
  const auto& cfp = hetero::spec::spec_cfp2006rate().to_ecs();
  ExtractAtlasOptions opts;
  opts.tasks = 8;
  opts.machines = 3;
  opts.max_exhaustive = 100;  // force sampling
  opts.samples = 500;
  const auto atlas = extract_atlas(cfp, opts);
  EXPECT_FALSE(atlas.exhaustive);
  EXPECT_EQ(atlas.scored, 500u);
  EXPECT_LE(atlas.min_mph.measures.mph, atlas.max_mph.measures.mph);
}

TEST(Extracts, SamplingIsReproducible) {
  const auto& cfp = hetero::spec::spec_cfp2006rate().to_ecs();
  ExtractAtlasOptions opts;
  opts.tasks = 5;
  opts.machines = 3;
  opts.max_exhaustive = 10;
  opts.samples = 200;
  opts.seed = 99;
  const auto a = extract_atlas(cfp, opts);
  const auto b = extract_atlas(cfp, opts);
  EXPECT_EQ(a.max_tma.tasks, b.max_tma.tasks);
  EXPECT_EQ(a.max_tma.machines, b.max_tma.machines);
}

TEST(Extracts, InvalidShapesThrow) {
  const EcsMatrix ecs(Matrix{{1, 2}, {3, 4}});
  ExtractAtlasOptions opts;
  opts.tasks = 3;
  EXPECT_THROW(extract_atlas(ecs, opts), ValueError);
  opts.tasks = 0;
  EXPECT_THROW(extract_atlas(ecs, opts), ValueError);
}

TEST(Extracts, SkipsInvalidZeroPatterns) {
  // Column 3 is only served by task 2: the {task 1, task 3} x {m3, m1}
  // extract has an all-zero row and must be skipped, not crash.
  const EcsMatrix ecs(Matrix{{1, 1, 0}, {1, 1, 5}, {1, 1, 0}});
  const auto atlas = extract_atlas(ecs);
  EXPECT_GT(atlas.scored, 0u);
  EXPECT_LT(atlas.scored, 9u);  // some extracts skipped
}

}  // namespace
