#include "core/whatif.hpp"

#include <gtest/gtest.h>

#include <set>

namespace {

using hetero::DimensionError;
using hetero::ValueError;
using hetero::core::add_machine;
using hetero::core::add_task;
using hetero::core::EcsMatrix;
using hetero::core::measure_set;
using hetero::core::remove_machine;
using hetero::core::remove_task;
using hetero::core::Weights;
using hetero::core::whatif_remove_each_machine;
using hetero::core::whatif_remove_each_task;
using hetero::linalg::Matrix;

EcsMatrix sample() {
  return EcsMatrix(Matrix{{1, 5, 2}, {3, 1, 4}, {2, 2, 2}},
                   {"a", "b", "c"}, {"x", "y", "z"});
}

TEST(WhatIf, RemoveTask) {
  const auto out = remove_task(sample(), 1);
  EXPECT_EQ(out.task_count(), 2u);
  EXPECT_EQ(out.task_names(), (std::vector<std::string>{"a", "c"}));
  EXPECT_EQ(out(1, 0), 2);
  EXPECT_THROW(remove_task(sample(), 3), DimensionError);
}

TEST(WhatIf, RemoveMachine) {
  const auto out = remove_machine(sample(), 0);
  EXPECT_EQ(out.machine_count(), 2u);
  EXPECT_EQ(out.machine_names(), (std::vector<std::string>{"y", "z"}));
  EXPECT_THROW(remove_machine(sample(), 9), DimensionError);
}

TEST(WhatIf, CannotRemoveLastTaskOrMachine) {
  EcsMatrix tiny(Matrix{{1}});
  EXPECT_THROW(remove_task(tiny, 0), ValueError);
  EXPECT_THROW(remove_machine(tiny, 0), ValueError);
}

TEST(WhatIf, RemovalThatInvalidatesThrows) {
  // Task b only runs on machine y; removing y leaves an all-zero row.
  EcsMatrix ecs(Matrix{{1, 1}, {0, 1}});
  EXPECT_THROW(remove_machine(ecs, 1), ValueError);
}

TEST(WhatIf, AddTask) {
  const double speeds[] = {1.0, 2.0, 3.0};
  const auto out = add_task(sample(), speeds, "new");
  EXPECT_EQ(out.task_count(), 4u);
  EXPECT_EQ(out.task_names().back(), "new");
  EXPECT_EQ(out(3, 2), 3.0);
  const double wrong[] = {1.0};
  EXPECT_THROW(add_task(sample(), wrong), DimensionError);
}

TEST(WhatIf, AddTaskDefaultName) {
  const double speeds[] = {1.0, 2.0, 3.0};
  EXPECT_EQ(add_task(sample(), speeds).task_names().back(), "t4");
}

TEST(WhatIf, AddMachine) {
  const double speeds[] = {9.0, 8.0, 7.0};
  const auto out = add_machine(sample(), speeds, "gpu");
  EXPECT_EQ(out.machine_count(), 4u);
  EXPECT_EQ(out.machine_names().back(), "gpu");
  EXPECT_EQ(out(0, 3), 9.0);
  const double wrong[] = {1.0};
  EXPECT_THROW(add_machine(sample(), wrong), DimensionError);
}

TEST(WhatIf, AddThenRemoveRoundTrip) {
  const double speeds[] = {9.0, 8.0, 7.0};
  const auto grown = add_machine(sample(), speeds);
  const auto back = remove_machine(grown, 3);
  EXPECT_EQ(back.values(), sample().values());
}

TEST(WhatIf, RemoveEachMachineProducesDeltas) {
  const auto deltas = whatif_remove_each_machine(sample());
  ASSERT_EQ(deltas.size(), 3u);
  const auto base = measure_set(sample());
  for (const auto& d : deltas) {
    EXPECT_DOUBLE_EQ(d.before.mph, base.mph);
    EXPECT_NE(d.description.find("remove machine"), std::string::npos);
  }
  // Removing a machine from a 3-machine environment must change something.
  EXPECT_NE(deltas[0].after.mph, deltas[1].after.mph);
}

TEST(WhatIf, RemoveEachTaskProducesDeltas) {
  const auto deltas = whatif_remove_each_task(sample());
  ASSERT_EQ(deltas.size(), 3u);
  for (const auto& d : deltas)
    EXPECT_NE(d.description.find("remove task"), std::string::npos);
}

TEST(WhatIf, SkipsInvalidRemovals) {
  // Machine y is the only one running task b: its removal is skipped.
  EcsMatrix ecs(Matrix{{1, 1, 1}, {0, 1, 0}});
  const auto deltas = whatif_remove_each_machine(ecs);
  EXPECT_EQ(deltas.size(), 2u);
  for (const auto& d : deltas)
    EXPECT_EQ(d.description.find("remove machine m2"), std::string::npos);
}

TEST(WhatIf, DeltaAccessors) {
  hetero::core::WhatIfDelta d;
  d.before = {0.5, 0.6, 0.1};
  d.after = {0.7, 0.5, 0.3};
  EXPECT_NEAR(d.mph_delta(), 0.2, 1e-12);
  EXPECT_NEAR(d.tdh_delta(), -0.1, 1e-12);
  EXPECT_NEAR(d.tma_delta(), 0.2, 1e-12);
}

TEST(WhatIf, WeightedDeltasSliceWeights) {
  Weights w;
  w.machine = {1.0, 2.0, 3.0};
  const auto deltas = whatif_remove_each_machine(sample(), w);
  EXPECT_EQ(deltas.size(), 3u);  // weights sliced per removal, no throw
}

TEST(WhatIf, HomogenizingRemoval) {
  // Machine z is the outlier; removing it must raise MPH.
  EcsMatrix ecs(Matrix{{1, 1, 8}, {1, 1, 8}});
  const auto deltas = whatif_remove_each_machine(ecs);
  ASSERT_EQ(deltas.size(), 3u);
  EXPECT_GT(deltas[2].mph_delta(), 0.0);
}

TEST(GreedyHomogenize, RemovesTheOutlierFirst) {
  EcsMatrix ecs(Matrix{{1, 1.1, 8}, {1, 0.9, 8}});
  const auto r = hetero::core::greedy_homogenize(ecs, 1);
  ASSERT_EQ(r.removed_machines.size(), 1u);
  EXPECT_EQ(r.removed_machines[0], 2u);  // the 8x machine
  EXPECT_GT(r.mph_after, r.mph_before);
  EXPECT_EQ(r.result.machine_count(), 2u);
}

TEST(GreedyHomogenize, StopsWhenNoImprovement) {
  // Perfectly homogeneous: no removal can raise MPH above 1.
  EcsMatrix ecs(Matrix{{1, 1, 1}, {2, 2, 2}});
  const auto r = hetero::core::greedy_homogenize(ecs, 2);
  EXPECT_TRUE(r.removed_machines.empty());
  EXPECT_DOUBLE_EQ(r.mph_before, 1.0);
  EXPECT_DOUBLE_EQ(r.mph_after, 1.0);
}

TEST(GreedyHomogenize, TracksOriginalIndicesAcrossRounds) {
  // Outliers at original columns 0 (speed 16) and 3 (speed 8); both must be
  // reported with their *original* indices.
  EcsMatrix ecs(Matrix{{16, 1, 1.1, 8}, {16, 1, 0.9, 8}});
  const auto r = hetero::core::greedy_homogenize(ecs, 2);
  ASSERT_EQ(r.removed_machines.size(), 2u);
  const std::set<std::size_t> removed(r.removed_machines.begin(),
                                      r.removed_machines.end());
  EXPECT_TRUE(removed.count(0));
  EXPECT_TRUE(removed.count(3));
  EXPECT_EQ(r.result.machine_count(), 2u);
}

TEST(GreedyHomogenize, CannotRemoveEverything) {
  EcsMatrix ecs(Matrix{{1, 2}, {3, 4}});
  EXPECT_THROW(hetero::core::greedy_homogenize(ecs, 2), ValueError);
  EXPECT_NO_THROW(hetero::core::greedy_homogenize(ecs, 1));
}

TEST(GreedyHomogenize, MonotoneInMph) {
  EcsMatrix ecs(Matrix{{1, 2, 5, 20}, {2, 3, 4, 18}, {1, 1, 6, 22}});
  double last = hetero::core::mph(ecs);
  for (std::size_t k = 1; k <= 3; ++k) {
    const auto r = hetero::core::greedy_homogenize(ecs, k);
    EXPECT_GE(r.mph_after, last - 1e-12);
    last = r.mph_after;
  }
}

}  // namespace
