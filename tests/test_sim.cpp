#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "sim/scenario.hpp"
#include "sim/scheduler.hpp"

namespace {

using hetero::ValueError;
using hetero::par::parallel_for;
using hetero::par::ThreadPool;
using hetero::sim::Engine;
using hetero::sim::make_scheduler;
using hetero::sim::parse_scenario;
using hetero::sim::Scenario;
using hetero::sim::scheduler_tokens;
using hetero::sim::SimOptions;
using hetero::sim::SimReport;
using hetero::sim::SlaTier;

SimReport run_once(const Scenario& scenario, const std::string& token,
                   SimOptions options = {}) {
  const auto scheduler = make_scheduler(token);
  Engine engine(scenario, options);
  return engine.run(*scheduler);
}

// One machine, one core: energy is hand-computable.
constexpr const char* kSingle = R"(
machine class:
{
        Number of machines: 1
        CPU type: X86
        Number of cores: 1
        Memory: 1024
        S-States: [100, 5, 0]
        P-States: [10]
        C-States: [10, 2]
        MIPS: [1000]
        GPUs: no
}

task class:
{
        Start time: 0
        End time: 1
        Inter arrival: 10
        Expected runtime: 100000
        Memory: 512
        SLA type: SLA3
        CPU type: X86
        Seed: 0
}
)";

TEST(SimEngine, EnergyMatchesHandComputation) {
  const Scenario s = parse_scenario(kSingle);
  const SimReport r = run_once(s, "greedy_mct");
  EXPECT_EQ(r.tasks, 1u);
  EXPECT_EQ(r.completed, 1u);
  // The single task runs [0, 100000] us on the 1000-MIPS core at
  // P = S[0] + 1 * Pstate[0] + 0 * C[1] = 110 W for 0.1 s.
  EXPECT_DOUBLE_EQ(r.end_time, 100000.0);
  EXPECT_DOUBLE_EQ(r.total_energy_j, 11.0);
  EXPECT_DOUBLE_EQ(r.mean_flow_time, 100000.0);
  EXPECT_EQ(r.sla_completed[3], 1u);
  EXPECT_EQ(r.sla_violated[3], 0u);
  EXPECT_NE(r.trace_hash, 0u);
}

TEST(SimEngine, SlaViolationAgainstExpectedRuntimeMultiple) {
  // A 500-MIPS machine runs the 100000-us class in 200000 us: past the
  // 1.2x SLA0 deadline but within the 2.0x SLA2 one.
  std::string body(kSingle);
  body.replace(body.find("MIPS: [1000]"), 12, "MIPS: [500]");
  body.replace(body.find("SLA type: SLA3"), 14, "SLA type: SLA0");
  const SimReport r0 = run_once(parse_scenario(body), "greedy_mct");
  EXPECT_DOUBLE_EQ(r0.violation_rate(SlaTier::sla0), 1.0);

  body.replace(body.find("SLA type: SLA0"), 14, "SLA type: SLA2");
  const SimReport r2 = run_once(parse_scenario(body), "greedy_mct");
  EXPECT_DOUBLE_EQ(r2.violation_rate(SlaTier::sla2), 0.0);
  EXPECT_DOUBLE_EQ(r2.end_time, 200000.0);
}

TEST(SimEngine, PowerGatingSleepsIdleMachinesAndWakesOnDemand) {
  // Two arrivals 2 s apart; the idle window between them is harvested.
  std::string body(kSingle);
  body.replace(body.find("End time: 1\n"), 12, "End time: 2000001\n");
  body.replace(body.find("Inter arrival: 10\n"), 18,
               "Inter arrival: 2000000\n");
  body.replace(body.find("Expected runtime: 100000"), 24,
               "Expected runtime: 10000");
  const Scenario s = parse_scenario(body);

  const SimReport on = run_once(s, "greedy_mct",
                                {.power_gating = true});
  const SimReport off = run_once(s, "greedy_mct");
  ASSERT_EQ(on.completed, 2u);
  EXPECT_GE(on.sleep_transitions, 2u);  // one sleep, one wake
  EXPECT_GT(on.asleep_machine_seconds, 1.0);
  EXPECT_LT(on.total_energy_j, off.total_energy_j);
  // The second task pays the wake latency: it starts wake_latency after
  // its arrival and still completes.
  EXPECT_DOUBLE_EQ(on.end_time, 2000000.0 + 100000.0 + 10000.0);
  EXPECT_DOUBLE_EQ(off.end_time, 2000000.0 + 10000.0);
}

TEST(SimEngine, DvfsStepsDownUnderloadedMachines) {
  // One long task on a 4-core machine with a deep P-state ladder: DVFS
  // steps down each tick, stretching the completion.
  constexpr const char* kDvfs = R"(
machine class:
{
        Number of machines: 1
        CPU type: X86
        Number of cores: 4
        Memory: 1024
        S-States: [100, 5, 0]
        P-States: [10, 6, 3]
        C-States: [10, 2, 1]
        MIPS: [1000, 800, 500]
        GPUs: no
}

task class:
{
        Start time: 0
        End time: 1
        Inter arrival: 10
        Expected runtime: 200000
        Memory: 512
        SLA type: SLA3
        CPU type: X86
        Seed: 0
}
)";
  const Scenario s = parse_scenario(kDvfs);
  const SimReport dvfs = run_once(s, "greedy_mct", {.dvfs = true});
  const SimReport plain = run_once(s, "greedy_mct");
  EXPECT_GE(dvfs.p_state_changes, 2u);  // stepped to the deepest state
  EXPECT_GT(dvfs.end_time, plain.end_time);
  EXPECT_EQ(dvfs.completed, 1u);
}

TEST(SimEngine, EnginesAreOneShotAndTokensValidated) {
  const Scenario s = parse_scenario(kSingle);
  const auto scheduler = make_scheduler("greedy_mct");
  Engine engine(s);
  engine.run(*scheduler);
  const auto again = make_scheduler("greedy_mct");
  EXPECT_THROW(engine.run(*again), ValueError);
  EXPECT_THROW(make_scheduler("fastest_first"), ValueError);
  // Controllers need a tick to run at.
  EXPECT_THROW(Engine(s, {.tick_period = 0.0, .power_gating = true}),
               ValueError);
}

// ---------------------------------------------------------------------------
// Equivalence-twin discipline (the sim_equiv label): repeated runs,
// thread counts, and the BatchEngine-backed adapters must all reproduce
// the cold schedulers' event traces bit for bit, on every shipped
// scenario.

std::vector<std::string> scenario_files() {
  const std::string dir = HETERO_SCENARIO_DIR;
  return {dir + "/burst_cycle.sim", dir + "/starvation.sim",
          dir + "/memory_overload.sim", dir + "/heterogeneous_mix.sim"};
}

void expect_same_run(const SimReport& a, const SimReport& b,
                     const std::string& what) {
  EXPECT_EQ(a.trace_hash, b.trace_hash) << what;
  EXPECT_EQ(a.events, b.events) << what;
  EXPECT_EQ(a.total_energy_j, b.total_energy_j) << what;  // bitwise
  EXPECT_EQ(a.end_time, b.end_time) << what;
  EXPECT_EQ(a.mean_flow_time, b.mean_flow_time) << what;
  for (std::size_t t = 0; t < hetero::sim::kSlaTierCount; ++t) {
    EXPECT_EQ(a.sla_violated[t], b.sla_violated[t]) << what;
  }
}

TEST(SimEquiv, RepeatedRunsReplayBitIdentically) {
  for (const std::string& path : scenario_files()) {
    const Scenario s = hetero::sim::load_scenario(path);
    for (const std::string_view token : scheduler_tokens()) {
      const SimReport a = run_once(s, std::string(token));
      const SimReport b = run_once(s, std::string(token));
      ASSERT_EQ(a.completed, a.tasks);
      EXPECT_GT(a.total_energy_j, 0.0);
      expect_same_run(a, b, path + " / " + std::string(token));
    }
  }
}

TEST(SimEquiv, BatchEngineAdaptersMatchColdTwins) {
  // The controllers change callback timing; the twins must agree with
  // them enabled too.
  const SimOptions plain;
  const SimOptions dynamic{.power_gating = true, .dvfs = true,
                           .migration = true};
  for (const std::string& path : scenario_files()) {
    const Scenario s = hetero::sim::load_scenario(path);
    for (const SimOptions& options : {plain, dynamic}) {
      const std::string tag =
          path + (options.power_gating ? " (controllers)" : "");
      expect_same_run(run_once(s, "min_min", options),
                      run_once(s, "batch_min_min", options), tag);
      expect_same_run(run_once(s, "max_min", options),
                      run_once(s, "batch_max_min", options), tag);
    }
  }
}

TEST(SimEquiv, ThreadCountDoesNotChangeResults) {
  // The engine is single-threaded by design; this asserts that N
  // concurrent simulations racing on a pool do not perturb each other
  // (no hidden shared state), for 1 vs 4 worker threads.
  const std::vector<std::string> files = scenario_files();
  const auto run_all = [&](std::size_t threads) {
    std::vector<SimReport> reports(files.size());
    ThreadPool pool(threads);
    parallel_for(pool, 0, files.size(), [&](std::size_t i) {
      const Scenario s = hetero::sim::load_scenario(files[i]);
      reports[i] = run_once(s, "batch_min_min", {.migration = true});
    });
    return reports;
  };
  const std::vector<SimReport> one = run_all(1);
  const std::vector<SimReport> four = run_all(4);
  ASSERT_EQ(one.size(), four.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    expect_same_run(one[i], four[i], files[i]);
  }
}

TEST(SimEquiv, MigrationControllerIsDeterministic) {
  // heterogeneous_mix under aggressive migration: the controller must
  // fire and the trace must still replay.
  const Scenario s =
      hetero::sim::load_scenario(scenario_files()[3]);
  const SimOptions options{.migration = true, .migration_gap = 2};
  const SimReport a = run_once(s, "greedy_mct", options);
  const SimReport b = run_once(s, "greedy_mct", options);
  EXPECT_GT(a.migrations, 0u);
  expect_same_run(a, b, "heterogeneous_mix migration");
}

}  // namespace
