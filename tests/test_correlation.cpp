#include "etcgen/correlation.hpp"

#include <gtest/gtest.h>

#include "core/measures.hpp"

namespace {

using hetero::ValueError;
using hetero::core::EtcMatrix;
using hetero::linalg::Matrix;
namespace eg = hetero::etcgen;

TEST(Correlation, PerfectlyProportionalColumnsGiveOne) {
  EtcMatrix etc(Matrix{{1, 2}, {2, 4}, {3, 6}});
  EXPECT_NEAR(eg::mean_column_correlation(etc), 1.0, 1e-12);
}

TEST(Correlation, AnticorrelatedColumns) {
  EtcMatrix etc(Matrix{{1, 3}, {2, 2}, {3, 1}});
  EXPECT_NEAR(eg::mean_column_correlation(etc), -1.0, 1e-12);
}

TEST(Correlation, RowVariantIsTransposedColumnVariant) {
  EtcMatrix etc(Matrix{{1, 5, 2}, {3, 1, 4}, {2, 2, 2}});
  EtcMatrix transposed(etc.values().transposed());
  EXPECT_NEAR(eg::mean_row_correlation(etc),
              eg::mean_column_correlation(transposed), 1e-12);
}

TEST(Correlation, RequiresTwoByTwo) {
  EXPECT_THROW(eg::mean_column_correlation(EtcMatrix(Matrix{{1}, {2}})),
               ValueError);
}

class CorrelationSweep : public ::testing::TestWithParam<double> {};

TEST_P(CorrelationSweep, GeneratorHitsTargetOnAverage) {
  const double target = GetParam();
  eg::Rng rng = eg::make_rng(static_cast<std::uint64_t>(target * 1000) + 5);
  eg::CorrelationOptions opts;
  opts.tasks = 200;  // large so the sample correlation concentrates
  opts.machines = 8;
  opts.column_correlation = target;
  const auto etc = eg::generate_correlated(opts, rng);
  EXPECT_TRUE(etc.values().all_positive());
  EXPECT_NEAR(eg::mean_column_correlation(etc), target, 0.08);
}

INSTANTIATE_TEST_SUITE_P(Targets, CorrelationSweep,
                         ::testing::Values(0.0, 0.2, 0.5, 0.7, 0.9));

TEST(Correlation, MeanRuntimeScale) {
  eg::Rng rng = eg::make_rng(9);
  eg::CorrelationOptions opts;
  opts.tasks = 300;
  opts.machines = 6;
  opts.mean_runtime = 1234.0;
  const auto etc = eg::generate_correlated(opts, rng);
  const double mean = etc.values().total() /
                      static_cast<double>(etc.values().size());
  EXPECT_NEAR(mean, 1234.0, 60.0);
}

TEST(Correlation, HigherCorrelationLowersTma) {
  // Correlated columns are near-proportional: less affinity. Averaged over
  // seeds, TMA must fall monotonically-ish from r = 0 to r = 0.9.
  const auto mean_tma = [](double r) {
    double acc = 0.0;
    for (unsigned seed = 0; seed < 5; ++seed) {
      eg::Rng rng = eg::make_rng(100 + seed);
      eg::CorrelationOptions opts;
      opts.tasks = 30;
      opts.machines = 6;
      opts.column_correlation = r;
      acc += hetero::core::tma(eg::generate_correlated(opts, rng).to_ecs());
    }
    return acc / 5.0;
  };
  const double low_corr = mean_tma(0.0);
  const double high_corr = mean_tma(0.9);
  EXPECT_GT(low_corr, 1.5 * high_corr);
}

TEST(Correlation, RejectsBadOptions) {
  eg::Rng rng = eg::make_rng(10);
  eg::CorrelationOptions opts;
  opts.tasks = 1;
  opts.machines = 4;
  EXPECT_THROW(eg::generate_correlated(opts, rng), ValueError);
  opts.tasks = 4;
  opts.column_correlation = 1.0;
  EXPECT_THROW(eg::generate_correlated(opts, rng), ValueError);
  opts.column_correlation = 0.5;
  opts.mean_runtime = 0.0;
  EXPECT_THROW(eg::generate_correlated(opts, rng), ValueError);
}

}  // namespace
