#include "linalg/jacobi_eigen.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include "linalg/matrix.hpp"

namespace {

using hetero::ValueError;
namespace lin = hetero::linalg;
using lin::Matrix;

Matrix random_symmetric(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i; j < n; ++j) m(i, j) = m(j, i) = dist(rng);
  return m;
}

TEST(JacobiEigen, DiagonalMatrix) {
  const auto r = lin::jacobi_eigen(Matrix{{2, 0}, {0, 5}});
  EXPECT_NEAR(r.values[0], 5.0, 1e-12);
  EXPECT_NEAR(r.values[1], 2.0, 1e-12);
}

TEST(JacobiEigen, Known2x2) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  const auto vals = lin::symmetric_eigenvalues(Matrix{{2, 1}, {1, 2}});
  EXPECT_NEAR(vals[0], 3.0, 1e-12);
  EXPECT_NEAR(vals[1], 1.0, 1e-12);
}

TEST(JacobiEigen, RejectsNonSquareAndNonSymmetric) {
  EXPECT_THROW(lin::jacobi_eigen(Matrix{{1, 2, 3}, {4, 5, 6}}), ValueError);
  EXPECT_THROW(lin::jacobi_eigen(Matrix{{1, 2}, {3, 4}}), ValueError);
}

class JacobiEigenRandom : public ::testing::TestWithParam<std::size_t> {};

TEST_P(JacobiEigenRandom, DecompositionReconstructs) {
  const std::size_t n = GetParam();
  const Matrix a = random_symmetric(n, static_cast<unsigned>(n));
  const auto r = lin::jacobi_eigen(a);
  ASSERT_EQ(r.values.size(), n);
  EXPECT_TRUE(std::is_sorted(r.values.rbegin(), r.values.rend()));
  // V diag(values) V^T == A
  Matrix vd = r.vectors;
  for (std::size_t j = 0; j < n; ++j) vd.scale_col(j, r.values[j]);
  EXPECT_LT(lin::max_abs_diff(lin::matmul(vd, r.vectors.transposed()), a),
            1e-9);
  // V orthonormal.
  EXPECT_LT(lin::max_abs_diff(lin::gram(r.vectors), Matrix::identity(n)),
            1e-9);
}

TEST_P(JacobiEigenRandom, TraceEqualsEigenvalueSum) {
  const std::size_t n = GetParam();
  const Matrix a = random_symmetric(n, static_cast<unsigned>(n) + 99);
  double trace = 0.0;
  for (std::size_t i = 0; i < n; ++i) trace += a(i, i);
  const auto vals = lin::symmetric_eigenvalues(a);
  double sum = 0.0;
  for (double v : vals) sum += v;
  EXPECT_NEAR(sum, trace, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, JacobiEigenRandom,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21));

// ---- In-place and warm-started eigenvalue paths ----

TEST(JacobiEigenInto, MatchesPublicSolver) {
  const Matrix a = random_symmetric(9, 41);
  const auto expected = lin::symmetric_eigenvalues(a);
  Matrix work = a;
  std::vector<double> values;
  lin::symmetric_eigenvalues_into(work, values);
  EXPECT_EQ(values, expected);  // same rotations, bit-identical
}

TEST(JacobiEigenWarm, IdentityBasisMatchesCold) {
  const Matrix a = random_symmetric(8, 19);
  const auto expected = lin::symmetric_eigenvalues(a);
  Matrix basis = Matrix::identity(8);
  lin::WarmEigenWorkspace ws;
  std::vector<double> values;
  lin::symmetric_eigenvalues_warm(a, basis, values, ws);
  ASSERT_EQ(values.size(), expected.size());
  double scale = std::abs(expected[0]);
  for (std::size_t i = 0; i < values.size(); ++i)
    EXPECT_NEAR(values[i], expected[i], 1e-10 * scale);
  // The refined basis is an orthonormal eigenbasis of a.
  EXPECT_LE(lin::max_abs_diff(lin::gram(basis), Matrix::identity(8)), 1e-10);
}

TEST(JacobiEigenWarm, ConvergedBasisAbsorbsSmallPerturbations) {
  const Matrix a = random_symmetric(10, 23);
  const auto er = lin::jacobi_eigen(a);
  Matrix perturbed = a;
  perturbed(2, 7) += 1e-5;
  perturbed(7, 2) += 1e-5;
  Matrix basis = er.vectors;
  lin::WarmEigenWorkspace ws;
  std::vector<double> values;
  lin::symmetric_eigenvalues_warm(perturbed, basis, values, ws);
  const auto expected = lin::symmetric_eigenvalues(perturbed);
  const double scale = std::abs(expected[0]);
  for (std::size_t i = 0; i < values.size(); ++i)
    EXPECT_NEAR(values[i], expected[i], 1e-10 * scale);
  EXPECT_LE(lin::max_abs_diff(lin::gram(basis), Matrix::identity(10)), 1e-10);
}

TEST(JacobiEigenWarm, RejectsShapeMismatch) {
  const Matrix a = random_symmetric(4, 3);
  Matrix basis = Matrix::identity(5);
  lin::WarmEigenWorkspace ws;
  std::vector<double> values;
  EXPECT_THROW(lin::symmetric_eigenvalues_warm(a, basis, values, ws),
               ValueError);
}

}  // namespace
