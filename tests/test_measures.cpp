#include "core/measures.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "core/performance.hpp"

namespace {

using hetero::ValueError;
using hetero::core::adjacent_ratio_geometric_mean;
using hetero::core::adjacent_ratio_homogeneity;
using hetero::core::characterize;
using hetero::core::EcsMatrix;
using hetero::core::measure_set;
using hetero::core::min_max_ratio;
using hetero::core::mph;
using hetero::core::tdh;
using hetero::core::tma;
using hetero::core::tma_column_normalized;
using hetero::core::tma_detailed;
using hetero::core::TmaOptions;
using hetero::core::value_cov;
using hetero::core::Weights;
using hetero::linalg::Matrix;

// ---------------------------------------------------------------------------
// Figure 2 of the paper: exact values for MPH, R, G, COV on four
// five-machine environments.

struct Fig2Case {
  std::vector<double> performances;
  double mph, r, g, cov;
};

class Fig2 : public ::testing::TestWithParam<Fig2Case> {};

TEST_P(Fig2, MatchesPaperValues) {
  const auto& c = GetParam();
  EXPECT_NEAR(adjacent_ratio_homogeneity(c.performances), c.mph, 0.005);
  EXPECT_NEAR(min_max_ratio(c.performances), c.r, 0.005);
  EXPECT_NEAR(adjacent_ratio_geometric_mean(c.performances), c.g, 0.005);
  EXPECT_NEAR(value_cov(c.performances), c.cov, 0.005);
}

INSTANTIATE_TEST_SUITE_P(
    PaperEnvironments, Fig2,
    ::testing::Values(Fig2Case{{1, 2, 4, 8, 16}, 0.5, 0.0625, 0.5, 0.88},
                      Fig2Case{{1, 1, 1, 1, 16}, 0.766, 0.0625, 0.5, 1.5},
                      Fig2Case{{1, 16, 16, 16, 16}, 0.766, 0.0625, 0.5, 0.462},
                      Fig2Case{{1, 4, 4, 4, 16}, 0.625, 0.0625, 0.5, 0.902}));

TEST(Fig2Intuition, MphOrdersEnvironmentsAsThePaperArgues) {
  // Environment 1 most heterogeneous; 2 and 3 tie; 4 in between.
  const double e1 = adjacent_ratio_homogeneity(std::vector<double>{1, 2, 4, 8, 16});
  const double e2 = adjacent_ratio_homogeneity(std::vector<double>{1, 1, 1, 1, 16});
  const double e3 = adjacent_ratio_homogeneity(std::vector<double>{1, 16, 16, 16, 16});
  const double e4 = adjacent_ratio_homogeneity(std::vector<double>{1, 4, 4, 4, 16});
  EXPECT_DOUBLE_EQ(e2, e3);
  EXPECT_LT(e1, e4);
  EXPECT_LT(e4, e2);
  // R and G fail to distinguish any of them; COV mis-orders env 3 vs env 1.
  const double cov1 = value_cov(std::vector<double>{1, 2, 4, 8, 16});
  const double cov3 = value_cov(std::vector<double>{1, 16, 16, 16, 16});
  EXPECT_LT(cov3, cov1);  // COV calls env 3 *less* heterogeneous than env 1
}

// ---------------------------------------------------------------------------
// Homogeneity basics.

TEST(AdjacentRatioHomogeneity, EqualValuesGiveOne) {
  EXPECT_DOUBLE_EQ(adjacent_ratio_homogeneity(std::vector<double>{3, 3, 3}), 1.0);
}

TEST(AdjacentRatioHomogeneity, SingleValueIsOne) {
  EXPECT_DOUBLE_EQ(adjacent_ratio_homogeneity(std::vector<double>{5}), 1.0);
}

TEST(AdjacentRatioHomogeneity, ScaleInvariant) {
  const std::vector<double> v{1, 3, 9};
  std::vector<double> scaled;
  for (double x : v) scaled.push_back(42 * x);
  EXPECT_DOUBLE_EQ(adjacent_ratio_homogeneity(v),
                   adjacent_ratio_homogeneity(scaled));
}

TEST(AdjacentRatioHomogeneity, OrderInvariant) {
  EXPECT_DOUBLE_EQ(adjacent_ratio_homogeneity(std::vector<double>{4, 1, 2}),
                   adjacent_ratio_homogeneity(std::vector<double>{1, 2, 4}));
}

TEST(AdjacentRatioHomogeneity, InUnitInterval) {
  std::mt19937 rng(11);
  std::uniform_real_distribution<double> dist(0.01, 100.0);
  for (int rep = 0; rep < 50; ++rep) {
    std::vector<double> v(5);
    for (double& x : v) x = dist(rng);
    const double h = adjacent_ratio_homogeneity(v);
    EXPECT_GT(h, 0.0);
    EXPECT_LE(h, 1.0);
  }
}

TEST(AdjacentRatioHomogeneity, RejectsNonPositive) {
  EXPECT_THROW(adjacent_ratio_homogeneity(std::vector<double>{1, 0}),
               ValueError);
  EXPECT_THROW(adjacent_ratio_homogeneity(std::vector<double>{}), ValueError);
}

// ---------------------------------------------------------------------------
// MPH / TDH on matrices.

TEST(Mph, HomogeneousMatrixIsOne) {
  EXPECT_DOUBLE_EQ(mph(EcsMatrix(Matrix{{1, 1}, {2, 2}})), 1.0);
}

TEST(Tdh, HomogeneousTasksIsOne) {
  EXPECT_DOUBLE_EQ(tdh(EcsMatrix(Matrix{{1, 2}, {1, 2}})), 1.0);
}

TEST(MphTdh, IndependentAxes) {
  // Fig. 3 style: equal column sums but different row sums and vice versa.
  EcsMatrix machine_hetero(Matrix{{1, 10}, {1, 10}});
  EXPECT_LT(mph(machine_hetero), 1.0);
  EXPECT_DOUBLE_EQ(tdh(machine_hetero), 1.0);

  EcsMatrix task_hetero(Matrix{{1, 1}, {10, 10}});
  EXPECT_DOUBLE_EQ(mph(task_hetero), 1.0);
  EXPECT_LT(tdh(task_hetero), 1.0);
}

TEST(MphTdh, TransposeDuality) {
  // TDH of E equals MPH of E^T.
  const Matrix m{{1, 5, 2}, {3, 1, 4}};
  EXPECT_DOUBLE_EQ(tdh(EcsMatrix(m)), mph(EcsMatrix(m.transposed())));
}

TEST(Mph, WeightsShiftPerformance) {
  EcsMatrix ecs(Matrix{{1, 2}, {1, 2}});
  Weights w;
  w.machine = {2.0, 1.0};  // equalizes the column sums
  EXPECT_DOUBLE_EQ(mph(ecs, w), 1.0);
}

TEST(Tdh, WeightsShiftDifficulty) {
  EcsMatrix ecs(Matrix{{1, 1}, {2, 2}});
  Weights w;
  w.task = {2.0, 1.0};
  EXPECT_DOUBLE_EQ(tdh(ecs, w), 1.0);
}

// ---------------------------------------------------------------------------
// TMA.

TEST(Tma, RankOneIsZero) {
  // Columns proportional -> no affinity (paper Fig. 3(a)).
  EXPECT_NEAR(tma(EcsMatrix(Matrix{{1, 2}, {2, 4}, {3, 6}})), 0.0, 1e-9);
}

TEST(Tma, ExchangeMatrixIsOne) {
  EXPECT_NEAR(tma(EcsMatrix(Matrix{{0, 1}, {1, 0}})), 1.0, 1e-9);
}

TEST(Tma, DiagonalBlocksGiveHighAffinity) {
  // Fig. 3(b) style: machines specialized to task groups.
  EcsMatrix specialized(Matrix{{10, 1, 1}, {1, 10, 1}, {1, 1, 10}});
  EcsMatrix uniform(Matrix(3, 3, 1.0));
  EXPECT_GT(tma(specialized), 0.4);
  EXPECT_NEAR(tma(uniform), 0.0, 1e-9);
}

TEST(Tma, ScaleInvariant) {
  const Matrix m{{1, 5, 2}, {3, 1, 4}, {2, 2, 2}};
  EXPECT_NEAR(tma(EcsMatrix(m)), tma(EcsMatrix(m * 1000.0)), 1e-9);
}

TEST(Tma, SingleMachineOrTaskIsZero) {
  EXPECT_DOUBLE_EQ(tma(EcsMatrix(Matrix{{1}, {2}, {3}})), 0.0);
  EXPECT_DOUBLE_EQ(tma(EcsMatrix(Matrix{{1, 2, 3}})), 0.0);
}

TEST(Tma, InUnitInterval) {
  std::mt19937 rng(17);
  std::uniform_real_distribution<double> dist(0.1, 10.0);
  for (int rep = 0; rep < 25; ++rep) {
    Matrix m(4, 3);
    for (double& x : m.data()) x = dist(rng);
    const double v = tma(EcsMatrix(m));
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0 + 1e-12);
  }
}

TEST(Tma, DetailedReportsStandardForm) {
  const auto detail = tma_detailed(EcsMatrix(Matrix{{1, 5}, {4, 2}}));
  EXPECT_TRUE(detail.used_standard_form);
  EXPECT_TRUE(detail.standard_form.converged);
  ASSERT_EQ(detail.singular_values.size(), 2u);
  EXPECT_NEAR(detail.singular_values.front(), 1.0, 1e-7);  // Theorem 2
  EXPECT_NEAR(detail.value, detail.singular_values[1], 1e-12);
}

TEST(Tma, FallbackForNonNormalizablePattern) {
  // No support: standard form cannot exist; eq. 5 fallback must engage.
  const Matrix m{{1, 1, 0, 0}, {1, 1, 0, 0}, {1, 1, 0, 0}, {0, 0, 1, 1}};
  const auto detail = tma_detailed(EcsMatrix(m));
  EXPECT_FALSE(detail.used_standard_form);
  EXPECT_GE(detail.value, 0.0);
  EXPECT_LE(detail.value, 1.0);
}

TEST(Tma, FallbackDisabledThrows) {
  const Matrix m{{1, 1, 0, 0}, {1, 1, 0, 0}, {1, 1, 0, 0}, {0, 0, 1, 1}};
  TmaOptions opts;
  opts.allow_column_normalized_fallback = false;
  opts.sinkhorn.max_iterations = 100;
  EXPECT_THROW(tma_detailed(EcsMatrix(m), {}, opts), ValueError);
}

TEST(TmaColumnNormalized, MatchesEq5OnSimpleCase) {
  // For the exchange matrix columns are already normalized; sigma = {1, 1}.
  EXPECT_NEAR(tma_column_normalized(EcsMatrix(Matrix{{0, 1}, {1, 0}})), 1.0,
              1e-9);
  EXPECT_NEAR(tma_column_normalized(EcsMatrix(Matrix(2, 2, 1.0))), 0.0, 1e-9);
}

TEST(TmaColumnNormalized, DiffersFromStandardFormWhenRowsSkewed) {
  // The eq. 5 measure is contaminated by task-difficulty heterogeneity;
  // the standard form isolates it (the motivation for this paper's TMA).
  const Matrix skew{{100, 90}, {1, 2}};
  const double eq5 = tma_column_normalized(EcsMatrix(skew));
  const double eq8 = tma(EcsMatrix(skew));
  EXPECT_GT(std::abs(eq5 - eq8), 1e-3);
}

// ---------------------------------------------------------------------------
// Independence of the three measures (the paper's third property).

TEST(Independence, TmaInvariantUnderRowColumnScaling) {
  // Scaling rows/columns changes MPH and TDH arbitrarily but must not move
  // TMA (it is a function of the standard form, which is scaling-invariant).
  const Matrix base{{5, 1, 2}, {1, 6, 1}, {2, 1, 7}};
  const double t0 = tma(EcsMatrix(base));
  Matrix scaled = base;
  scaled.scale_row(0, 13.0);
  scaled.scale_row(2, 0.25);
  scaled.scale_col(1, 7.0);
  const double t1 = tma(EcsMatrix(scaled));
  EXPECT_NEAR(t0, t1, 1e-7);
  // Sanity: the scalings did move MPH/TDH.
  EXPECT_GT(std::abs(mph(EcsMatrix(base)) - mph(EcsMatrix(scaled))), 1e-3);
  EXPECT_GT(std::abs(tdh(EcsMatrix(base)) - tdh(EcsMatrix(scaled))), 1e-3);
}

TEST(Independence, MphMovesWithoutTdhOrTma) {
  const Matrix base{{5, 1, 2}, {1, 6, 1}, {2, 1, 7}};
  Matrix scaled = base;
  scaled.scale_col(0, 3.0);  // column scaling: TDH changes? no — row sums do.
  // Column scaling changes MP profile; TMA must stay put.
  EXPECT_NEAR(tma(EcsMatrix(base)), tma(EcsMatrix(scaled)), 1e-7);
}

// ---------------------------------------------------------------------------
// Aggregates.

TEST(MeasureSetAggregate, MatchesIndividualCalls) {
  EcsMatrix ecs(Matrix{{1, 5, 2}, {3, 1, 4}});
  const auto set = measure_set(ecs);
  EXPECT_DOUBLE_EQ(set.mph, mph(ecs));
  EXPECT_DOUBLE_EQ(set.tdh, tdh(ecs));
  EXPECT_DOUBLE_EQ(set.tma, tma(ecs));
}

TEST(Characterize, FullReport) {
  EcsMatrix ecs(Matrix{{1, 5, 2}, {3, 1, 4}});
  const auto report = characterize(ecs);
  EXPECT_EQ(report.machine_performances.size(), 3u);
  EXPECT_EQ(report.task_difficulties.size(), 2u);
  EXPECT_DOUBLE_EQ(report.measures.mph, mph(ecs));
  EXPECT_GT(report.mph_alt_ratio, 0.0);
  EXPECT_GT(report.mph_alt_geometric, 0.0);
  EXPECT_GE(report.mph_alt_cov, 0.0);
  EXPECT_DOUBLE_EQ(report.measures.tma, report.tma_detail.value);
}

}  // namespace
