#include "parallel/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "base/error.hpp"

namespace {

using hetero::ValueError;
using hetero::par::parallel_for;
using hetero::par::ThreadPool;

TEST(ThreadPool, DefaultsToHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesException) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ManyTasksAllRun) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i)
    futures.push_back(pool.submit([&counter] { ++counter; }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i)
      pool.submit([&counter] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ++counter;
      });
  }  // destructor must wait for all 50
  EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelFor, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, 0, hits.size(),
               [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  parallel_for(pool, 5, 5, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelFor, GrainBatching) {
  ThreadPool pool(2);
  std::atomic<long> sum{0};
  parallel_for(pool, 0, 100,
               [&](std::size_t i) { sum += static_cast<long>(i); }, 7);
  EXPECT_EQ(sum.load(), 99L * 100 / 2);
}

TEST(ParallelFor, ZeroGrainRejected) {
  ThreadPool pool(1);
  EXPECT_THROW(parallel_for(pool, 0, 1, [](std::size_t) {}, 0), ValueError);
}

TEST(ParallelFor, ExceptionPropagates) {
  ThreadPool pool(2);
  EXPECT_THROW(parallel_for(pool, 0, 10,
                            [](std::size_t i) {
                              if (i == 5) throw std::runtime_error("bad");
                            }),
               std::runtime_error);
}

TEST(ParallelFor, ResultsMatchSerial) {
  ThreadPool pool(3);
  std::vector<double> parallel_out(500), serial_out(500);
  const auto f = [](std::size_t i) {
    return std::sin(static_cast<double>(i)) * 2.0;
  };
  parallel_for(pool, 0, parallel_out.size(),
               [&](std::size_t i) { parallel_out[i] = f(i); }, 13);
  for (std::size_t i = 0; i < serial_out.size(); ++i) serial_out[i] = f(i);
  EXPECT_EQ(parallel_out, serial_out);
}

TEST(ParallelFor, FirstExceptionWinsDeterministically) {
  // Chunks are claimed dynamically, but the implementation keeps only the
  // failure with the lowest iteration index, so when several iterations
  // throw, that one is rethrown — regardless of which worker finished
  // first.
  ThreadPool pool(4);
  try {
    parallel_for(pool, 0, 8, [](std::size_t i) {
      if (i == 0) throw ValueError("lowest-index failure");
      if (i == 7) throw std::runtime_error("late failure");
    });
    FAIL() << "expected parallel_for to rethrow";
  } catch (const ValueError& e) {
    EXPECT_STREQ(e.what(), "lowest-index failure");
  }
  // The pool stays usable after a failed run.
  std::atomic<int> ran{0};
  parallel_for(pool, 0, 16, [&](std::size_t) { ++ran; });
  EXPECT_EQ(ran.load(), 16);
}

TEST(ParallelFor, RepeatedRunsClaimEveryChunkExactlyOnce) {
  // Stress the atomic work-claiming fast path: many back-to-back runs with
  // a range that does not divide evenly by the grain. Every iteration must
  // execute exactly once per run (checked via the exact sum), and the pool
  // must be reusable immediately after the caller returns.
  ThreadPool pool(4);
  constexpr std::size_t kN = 257;
  for (int rep = 0; rep < 50; ++rep) {
    std::atomic<long> sum{0};
    parallel_for(pool, 0, kN,
                 [&](std::size_t i) { sum += static_cast<long>(i); }, 3);
    ASSERT_EQ(sum.load(), static_cast<long>(kN) * (kN - 1) / 2);
  }
}

TEST(ParallelFor, StatefulBodyIsNotCopied) {
  // The fast path passes the caller's functor by address (no per-chunk
  // std::function copies), so mutable state observed through a reference
  // capture reflects every iteration.
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(64);
  auto body = [&hits](std::size_t i) { ++hits[i]; };
  parallel_for(pool, 0, hits.size(), body, 5);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, GrainLargerThanRange) {
  ThreadPool pool(2);
  std::vector<int> hits(5, 0);
  parallel_for(pool, 0, hits.size(),
               [&](std::size_t i) { ++hits[i]; }, 1000);
  EXPECT_EQ(hits, std::vector<int>(5, 1));
}

TEST(ParallelFor, EmptyRangeWithLargeGrainIsNoop) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  parallel_for(pool, 3, 3, [&](std::size_t) { ++ran; }, 64);
  parallel_for(pool, 5, 2, [&](std::size_t) { ++ran; }, 64);
  EXPECT_EQ(ran.load(), 0);
}

}  // namespace
