#include "io/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "core/measures.hpp"
#include "sched/heuristics.hpp"
#include "spec/spec_data.hpp"

namespace {

namespace io = hetero::io;
using hetero::core::EcsMatrix;
using hetero::core::EtcMatrix;
using hetero::linalg::Matrix;

TEST(Json, EscapeSpecialCharacters) {
  EXPECT_EQ(io::json_escape("plain"), "plain");
  EXPECT_EQ(io::json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(io::json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(io::json_escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(io::json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Json, Numbers) {
  EXPECT_EQ(io::json_number(1.5), "1.5");
  EXPECT_EQ(io::json_number(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(io::json_number(std::nan("")), "null");
  // Round-trip precision: 17 significant digits.
  EXPECT_EQ(io::json_number(0.1), "0.10000000000000001");
}

TEST(Json, MeasureSet) {
  const hetero::core::MeasureSet m{0.5, 0.25, 0.125};
  EXPECT_EQ(io::to_json(m), "{\"mph\":0.5,\"tdh\":0.25,\"tma\":0.125}");
}

TEST(Json, EtcMatrixWithInfinity) {
  EtcMatrix etc(Matrix{{1, std::numeric_limits<double>::infinity()}, {2, 3}},
                {"a", "b"}, {"x", "y"});
  const std::string json = io::to_json(etc);
  EXPECT_NE(json.find("\"tasks\":[\"a\",\"b\"]"), std::string::npos);
  EXPECT_NE(json.find("\"machines\":[\"x\",\"y\"]"), std::string::npos);
  EXPECT_NE(json.find("[1,null]"), std::string::npos);
  EXPECT_NE(json.find("[2,3]"), std::string::npos);
}

TEST(Json, EnvironmentReportStructure) {
  const auto ecs = hetero::spec::spec_cint2006rate().to_ecs();
  const auto report = hetero::core::characterize(ecs);
  const std::string json = io::to_json(report, ecs);
  for (const char* key :
       {"\"measures\"", "\"alternatives\"", "\"machine_performances\"",
        "\"task_difficulties\"", "\"tma_detail\"", "\"sinkhorn_iterations\"",
        "\"singular_values\"", "\"400.perlbench\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  // Balanced braces and brackets (cheap well-formedness check).
  long braces = 0, brackets = 0;
  for (char c : json) {
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(Json, ReportBooleansRenderAsJson) {
  const EcsMatrix ecs(Matrix{{1, 2}, {3, 4}});
  const auto report = hetero::core::characterize(ecs);
  const std::string json = io::to_json(report, ecs);
  EXPECT_NE(json.find("\"used_standard_form\":true"), std::string::npos);
  EXPECT_NE(json.find("\"used_blocked_path\":false"), std::string::npos);
  EXPECT_NE(json.find("\"converged\":true"), std::string::npos);
}

TEST(Json, BlockedPathFlagRendersTrue) {
  const EcsMatrix ecs(Matrix{{1, 2, 3}, {4, 5, 6}, {7, 8, 9.5}});
  hetero::core::TmaOptions opts;
  opts.large.min_elements = 1;  // force the blocked path at toy size
  const auto report = hetero::core::characterize(ecs, {}, opts);
  const std::string json = io::to_json(report, ecs);
  EXPECT_NE(json.find("\"used_blocked_path\":true"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Parser.

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(io::parse_json("null").is_null());
  EXPECT_EQ(io::parse_json("true").as_bool(), true);
  EXPECT_EQ(io::parse_json("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(io::parse_json("-1.5e2").as_number(), -150.0);
  EXPECT_EQ(io::parse_json("\"hi\"").as_string(), "hi");
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(io::parse_json("\"a\\\"b\\\\c\\n\\t\"").as_string(),
            "a\"b\\c\n\t");
  // \u0041 = 'A'; surrogate pair U+1F600 -> 4-byte UTF-8.
  EXPECT_EQ(io::parse_json("\"\\u0041\"").as_string(), "A");
  EXPECT_EQ(io::parse_json("\"\\uD83D\\uDE00\"").as_string(),
            "\xF0\x9F\x98\x80");
}

TEST(JsonParse, ObjectsAndArrays) {
  const auto v = io::parse_json("{\"a\":[1,2,3],\"b\":{\"c\":null}}");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.at("a").as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(v.at("a").as_array()[1].as_number(), 2.0);
  EXPECT_TRUE(v.at("b").at("c").is_null());
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonParse, RejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\":}", "tru", "1.2.3", "\"unterminated",
        "{\"a\":1}extra", "[1 2]", "\"\\q\"", "nan", "infinity", "01"}) {
    EXPECT_THROW(io::parse_json(bad), hetero::ValueError) << bad;
  }
}

TEST(JsonParse, RejectsExcessiveNesting) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_THROW(io::parse_json(deep), hetero::ValueError);
}

TEST(JsonParse, ValueWriterRoundTripsExactly) {
  const std::string doc =
      "{\"s\":\"a\\\"b\",\"n\":0.10000000000000001,\"z\":null,"
      "\"t\":true,\"l\":[1,2],\"o\":{}}";
  EXPECT_EQ(io::to_json(io::parse_json(doc)), doc);
}

// ---------------------------------------------------------------------------
// Writer -> parser round trips for every report type the writer emits.

TEST(JsonRoundTrip, MeasureSet) {
  const hetero::core::MeasureSet m{0.5, 0.25, 0.125};
  const auto back = io::measure_set_from_json(io::parse_json(io::to_json(m)));
  EXPECT_DOUBLE_EQ(back.mph, m.mph);
  EXPECT_DOUBLE_EQ(back.tdh, m.tdh);
  EXPECT_DOUBLE_EQ(back.tma, m.tma);
}

TEST(JsonRoundTrip, MeasureSetNanPolicy) {
  // The writer emits null for non-finite numbers; the reader surfaces that
  // as NaN rather than failing.
  const hetero::core::MeasureSet m{std::nan(""), 0.25,
                                   std::numeric_limits<double>::infinity()};
  const std::string json = io::to_json(m);
  EXPECT_EQ(json, "{\"mph\":null,\"tdh\":0.25,\"tma\":null}");
  const auto back = io::measure_set_from_json(io::parse_json(json));
  EXPECT_TRUE(std::isnan(back.mph));
  EXPECT_DOUBLE_EQ(back.tdh, 0.25);
  EXPECT_TRUE(std::isnan(back.tma));
}

TEST(JsonRoundTrip, EtcMatrixWithInfinityPolicy) {
  // ETC infinity ("machine cannot run task") becomes null on the wire and
  // comes back as infinity.
  EtcMatrix etc(Matrix{{1, std::numeric_limits<double>::infinity()},
                       {2, 0.1}},
                {"a", "b"}, {"x", "y"});
  const auto back = io::etc_from_json(io::parse_json(io::to_json(etc)));
  EXPECT_EQ(back.task_count(), 2u);
  EXPECT_EQ(back.machine_count(), 2u);
  EXPECT_EQ(back.task_names(), etc.task_names());
  EXPECT_EQ(back.machine_names(), etc.machine_names());
  EXPECT_DOUBLE_EQ(back(0, 0), 1.0);
  EXPECT_TRUE(std::isinf(back(0, 1)));
  // Bit-exact doubles survive the 17-digit number format.
  EXPECT_EQ(back(1, 1), 0.1);
}

TEST(JsonRoundTrip, EtcMatrixBareRows) {
  const auto etc = io::etc_from_json(io::parse_json("[[1,2],[3,4],[5,6]]"));
  EXPECT_EQ(etc.task_count(), 3u);
  EXPECT_EQ(etc.machine_count(), 2u);
  EXPECT_DOUBLE_EQ(etc(2, 1), 6.0);
}

TEST(JsonRoundTrip, EnvironmentReportMeasuresSurvive) {
  const EcsMatrix ecs(Matrix{{1, 2, 3}, {4, 5, 6}, {7, 8, 10}});
  const auto report = hetero::core::characterize(ecs);
  const auto parsed = io::parse_json(io::to_json(report, ecs));
  const auto back = io::measure_set_from_json(parsed.at("measures"));
  EXPECT_DOUBLE_EQ(back.mph, report.measures.mph);
  EXPECT_DOUBLE_EQ(back.tdh, report.measures.tdh);
  EXPECT_DOUBLE_EQ(back.tma, report.measures.tma);
  EXPECT_EQ(parsed.at("machine_performances").as_array().size(), 3u);
  EXPECT_EQ(parsed.at("task_difficulties").as_array().size(), 3u);
}

TEST(JsonRoundTrip, ScheduleSummary) {
  EtcMatrix etc(Matrix{{1, 4}, {3, 2}, {5, 6}});
  const auto tasks = hetero::sched::one_of_each(etc);
  auto summary = hetero::sched::summarize_schedule(
      etc, tasks, "min_min", hetero::sched::map_min_min(etc, tasks));
  const auto back =
      io::schedule_summary_from_json(io::parse_json(io::to_json(summary)));
  EXPECT_EQ(back.heuristic, summary.heuristic);
  EXPECT_EQ(back.assignment, summary.assignment);
  EXPECT_DOUBLE_EQ(back.makespan, summary.makespan);
  ASSERT_EQ(back.machine_loads.size(), summary.machine_loads.size());
  for (std::size_t m = 0; m < back.machine_loads.size(); ++m)
    EXPECT_EQ(back.machine_loads[m], summary.machine_loads[m]);
}

}  // namespace
