#include "io/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/measures.hpp"
#include "spec/spec_data.hpp"

namespace {

namespace io = hetero::io;
using hetero::core::EcsMatrix;
using hetero::core::EtcMatrix;
using hetero::linalg::Matrix;

TEST(Json, EscapeSpecialCharacters) {
  EXPECT_EQ(io::json_escape("plain"), "plain");
  EXPECT_EQ(io::json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(io::json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(io::json_escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(io::json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Json, Numbers) {
  EXPECT_EQ(io::json_number(1.5), "1.5");
  EXPECT_EQ(io::json_number(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(io::json_number(std::nan("")), "null");
  // Round-trip precision: 17 significant digits.
  EXPECT_EQ(io::json_number(0.1), "0.10000000000000001");
}

TEST(Json, MeasureSet) {
  const hetero::core::MeasureSet m{0.5, 0.25, 0.125};
  EXPECT_EQ(io::to_json(m), "{\"mph\":0.5,\"tdh\":0.25,\"tma\":0.125}");
}

TEST(Json, EtcMatrixWithInfinity) {
  EtcMatrix etc(Matrix{{1, std::numeric_limits<double>::infinity()}, {2, 3}},
                {"a", "b"}, {"x", "y"});
  const std::string json = io::to_json(etc);
  EXPECT_NE(json.find("\"tasks\":[\"a\",\"b\"]"), std::string::npos);
  EXPECT_NE(json.find("\"machines\":[\"x\",\"y\"]"), std::string::npos);
  EXPECT_NE(json.find("[1,null]"), std::string::npos);
  EXPECT_NE(json.find("[2,3]"), std::string::npos);
}

TEST(Json, EnvironmentReportStructure) {
  const auto ecs = hetero::spec::spec_cint2006rate().to_ecs();
  const auto report = hetero::core::characterize(ecs);
  const std::string json = io::to_json(report, ecs);
  for (const char* key :
       {"\"measures\"", "\"alternatives\"", "\"machine_performances\"",
        "\"task_difficulties\"", "\"tma_detail\"", "\"sinkhorn_iterations\"",
        "\"singular_values\"", "\"400.perlbench\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  // Balanced braces and brackets (cheap well-formedness check).
  long braces = 0, brackets = 0;
  for (char c : json) {
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(Json, ReportBooleansRenderAsJson) {
  const EcsMatrix ecs(Matrix{{1, 2}, {3, 4}});
  const auto report = hetero::core::characterize(ecs);
  const std::string json = io::to_json(report, ecs);
  EXPECT_NE(json.find("\"used_standard_form\":true"), std::string::npos);
  EXPECT_NE(json.find("\"converged\":true"), std::string::npos);
}

}  // namespace
