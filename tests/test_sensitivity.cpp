#include "core/sensitivity.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "spec/spec_data.hpp"

namespace {

using hetero::ValueError;
using hetero::core::EtcMatrix;
using hetero::core::measure_sensitivity;
using hetero::core::most_sensitive;
using hetero::linalg::Matrix;

TEST(Sensitivity, ShapesMatchEnvironment) {
  EtcMatrix etc(Matrix{{1, 2, 3}, {4, 5, 6}});
  const auto map = measure_sensitivity(etc);
  EXPECT_EQ(map.mph.rows(), 2u);
  EXPECT_EQ(map.mph.cols(), 3u);
  EXPECT_EQ(map.tma.rows(), 2u);
}

TEST(Sensitivity, HomogeneousPointIsStationary) {
  // The all-equal environment maximizes every measure's homogeneity, so
  // the first derivative with respect to any entry is ~0 (any perturbation
  // decreases MPH/TDH in *both* directions).
  EtcMatrix etc(Matrix(3, 3, 10.0));
  const auto map = measure_sensitivity(etc);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(map.mph(i, j), 0.0, 0.01) << i << "," << j;
      EXPECT_NEAR(map.tdh(i, j), 0.0, 0.01) << i << "," << j;
    }
}

TEST(Sensitivity, MphSignsFollowTheSlowFastSplit) {
  // Machine 2 is the slow one (MPH = 0.5). Slowing a fast-machine entry
  // homogenizes (positive elasticity); slowing a slow-machine entry makes
  // it worse (negative).
  EtcMatrix etc(Matrix{{1, 2}, {1, 2}});
  const auto map = measure_sensitivity(etc);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_GT(map.mph(i, 0), 0.0) << i;
    EXPECT_LT(map.mph(i, 1), 0.0) << i;
  }
}

TEST(Sensitivity, TdhSignsFollowTheEasyHardSplit) {
  // Task 2 is the hard one. Slowing an easy-task entry homogenizes TDH.
  EtcMatrix etc(Matrix{{1, 1}, {2, 2}});
  const auto map = measure_sensitivity(etc);
  for (std::size_t j = 0; j < 2; ++j) {
    EXPECT_GT(map.tdh(0, j), 0.0) << j;
    EXPECT_LT(map.tdh(1, j), 0.0) << j;
  }
}

TEST(Sensitivity, ScaleInvarianceMakesGlobalShiftsCancel) {
  // The measures are scale-invariant, so the *sum* of elasticities over
  // all entries (a uniform relative change) must be ~0.
  EtcMatrix etc(Matrix{{1, 5, 2}, {3, 1, 4}, {2, 2, 2}});
  const auto map = measure_sensitivity(etc);
  EXPECT_NEAR(map.mph.total(), 0.0, 0.02);
  EXPECT_NEAR(map.tdh.total(), 0.0, 0.02);
  EXPECT_NEAR(map.tma.total(), 0.0, 0.05);
}

TEST(Sensitivity, InfiniteEntriesHaveZeroElasticity) {
  EtcMatrix etc(Matrix{{1, std::numeric_limits<double>::infinity()}, {2, 3}});
  const auto map = measure_sensitivity(etc);
  EXPECT_EQ(map.mph(0, 1), 0.0);
  EXPECT_EQ(map.tma(0, 1), 0.0);
}

TEST(Sensitivity, TmaMapHighlightsTheAffinityEntry) {
  // One specialized entry drives the affinity of an otherwise uniform
  // environment: the TMA map's most sensitive entry must be it.
  Matrix values(4, 4, 100.0);
  values(2, 1) = 5.0;  // task 3 loves machine 2
  EtcMatrix etc(values);
  const auto map = measure_sensitivity(etc);
  const auto top = most_sensitive(map.tma);
  EXPECT_EQ(top.task, 2u);
  EXPECT_EQ(top.machine, 1u);
  // Slowing that entry destroys the affinity: negative elasticity... the
  // sign depends on direction; the magnitude is what must dominate.
  EXPECT_GT(std::abs(top.elasticity), 0.01);
}

TEST(Sensitivity, ValidatesStep) {
  EtcMatrix etc(Matrix{{1, 2}, {3, 4}});
  hetero::core::SensitivityOptions bad;
  bad.relative_step = 0.0;
  EXPECT_THROW(measure_sensitivity(etc, bad), ValueError);
  bad.relative_step = 1.0;
  EXPECT_THROW(measure_sensitivity(etc, bad), ValueError);
}

TEST(Sensitivity, MostSensitiveFindsMaxAbs) {
  Matrix s{{0.1, -0.5}, {0.2, 0.3}};
  const auto top = most_sensitive(s);
  EXPECT_EQ(top.task, 0u);
  EXPECT_EQ(top.machine, 1u);
  EXPECT_DOUBLE_EQ(top.elasticity, -0.5);
}

TEST(Sensitivity, RunsOnSpecScale) {
  const auto map =
      measure_sensitivity(hetero::spec::spec_fig8b());
  const auto top = most_sensitive(map.tma);
  EXPECT_GT(std::abs(top.elasticity), 0.0);
}

}  // namespace
