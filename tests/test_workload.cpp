#include "sched/workload.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "linalg/vector_ops.hpp"

namespace {

using hetero::DimensionError;
using hetero::ValueError;
using hetero::core::EtcMatrix;
using hetero::linalg::Matrix;
namespace sc = hetero::sched;

EtcMatrix env() {
  return EtcMatrix(Matrix{{1, 2}, {3, 4}, {5, 6}}, {"a", "b", "c"},
                   {"m1", "m2"});
}

TEST(Workload, ConstantRateMatchesExpectation) {
  hetero::etcgen::Rng rng = hetero::etcgen::make_rng(1);
  sc::WorkloadOptions opts;
  opts.base_rate = 4.0;
  const auto arrivals = sc::generate_workload(env(), opts, 2000, rng);
  ASSERT_EQ(arrivals.size(), 2000u);
  EXPECT_TRUE(std::is_sorted(arrivals.begin(), arrivals.end(),
                             [](const sc::Arrival& x, const sc::Arrival& y) {
                               return x.time < y.time;
                             }));
  // Mean inter-arrival ~ 1/4.
  EXPECT_NEAR(arrivals.back().time / 2000.0, 0.25, 0.03);
}

TEST(Workload, MixControlsTypeFrequencies) {
  hetero::etcgen::Rng rng = hetero::etcgen::make_rng(2);
  sc::WorkloadOptions opts;
  opts.task_mix = {8.0, 1.0, 1.0};
  const auto arrivals = sc::generate_workload(env(), opts, 3000, rng);
  std::size_t type0 = 0;
  for (const auto& a : arrivals)
    if (a.type == 0) ++type0;
  EXPECT_NEAR(static_cast<double>(type0) / 3000.0, 0.8, 0.05);
}

TEST(Workload, ZeroMixWeightExcludesType) {
  hetero::etcgen::Rng rng = hetero::etcgen::make_rng(3);
  sc::WorkloadOptions opts;
  opts.task_mix = {1.0, 0.0, 1.0};
  const auto arrivals = sc::generate_workload(env(), opts, 500, rng);
  for (const auto& a : arrivals) EXPECT_NE(a.type, 1u);
}

TEST(Workload, DiurnalModulatesDensity) {
  hetero::etcgen::Rng rng = hetero::etcgen::make_rng(4);
  sc::WorkloadOptions opts;
  opts.base_rate = 10.0;
  opts.shape = sc::RateShape::diurnal;
  opts.diurnal_amplitude = 0.9;
  opts.diurnal_period = 10.0;
  const auto arrivals = sc::generate_workload(env(), opts, 5000, rng);
  // Count arrivals in the rising half-period vs the falling one: sin > 0
  // for t mod 10 in (0, 5), < 0 in (5, 10).
  std::size_t peak = 0, trough = 0;
  for (const auto& a : arrivals) {
    const double phase = std::fmod(a.time, 10.0);
    (phase < 5.0 ? peak : trough) += 1;
  }
  EXPECT_GT(static_cast<double>(peak), 1.5 * static_cast<double>(trough));
}

TEST(Workload, BurstyHasHeavierTailGaps) {
  // Bursty traffic: same mean-ish rate but far more variable inter-arrival
  // gaps than constant-rate Poisson.
  const auto gap_cov = [](const std::vector<sc::Arrival>& arrivals) {
    std::vector<double> gaps;
    for (std::size_t k = 1; k < arrivals.size(); ++k)
      gaps.push_back(arrivals[k].time - arrivals[k - 1].time);
    return hetero::linalg::coefficient_of_variation(gaps);
  };
  hetero::etcgen::Rng rng1 = hetero::etcgen::make_rng(5);
  hetero::etcgen::Rng rng2 = hetero::etcgen::make_rng(5);
  sc::WorkloadOptions flat;
  flat.base_rate = 2.0;
  sc::WorkloadOptions bursty = flat;
  bursty.shape = sc::RateShape::bursty;
  bursty.burst_factor = 20.0;
  bursty.mean_normal_duration = 50.0;
  bursty.mean_burst_duration = 5.0;
  const auto a = sc::generate_workload(env(), flat, 3000, rng1);
  const auto b = sc::generate_workload(env(), bursty, 3000, rng2);
  EXPECT_GT(gap_cov(b), 1.2 * gap_cov(a));
}

TEST(Workload, ValidatesOptions) {
  hetero::etcgen::Rng rng = hetero::etcgen::make_rng(6);
  sc::WorkloadOptions bad;
  bad.base_rate = 0.0;
  EXPECT_THROW(sc::generate_workload(env(), bad, 1, rng), ValueError);
  bad = {};
  bad.diurnal_amplitude = 1.0;
  EXPECT_THROW(sc::generate_workload(env(), bad, 1, rng), ValueError);
  bad = {};
  bad.burst_factor = 0.5;
  EXPECT_THROW(sc::generate_workload(env(), bad, 1, rng), ValueError);
  bad = {};
  bad.task_mix = {1.0};  // wrong arity
  EXPECT_THROW(sc::generate_workload(env(), bad, 1, rng), DimensionError);
  bad = {};
  bad.task_mix = {0.0, 0.0, 0.0};
  EXPECT_THROW(sc::generate_workload(env(), bad, 1, rng), ValueError);
}

TEST(Workload, TraceCsvRoundTrip) {
  hetero::etcgen::Rng rng = hetero::etcgen::make_rng(7);
  const auto arrivals = sc::generate_workload(env(), {}, 50, rng);
  const auto text = sc::write_trace_csv_string(env(), arrivals);
  const auto parsed = sc::read_trace_csv_string(text, env());
  ASSERT_EQ(parsed.size(), arrivals.size());
  for (std::size_t k = 0; k < arrivals.size(); ++k) {
    EXPECT_DOUBLE_EQ(parsed[k].time, arrivals[k].time);
    EXPECT_EQ(parsed[k].type, arrivals[k].type);
  }
}

TEST(Workload, TraceCsvAcceptsNumericTypes) {
  const auto parsed = sc::read_trace_csv_string("time,task\n1.5,2\n", env());
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].type, 2u);
}

TEST(Workload, TraceCsvRejectsBadInput) {
  EXPECT_THROW(sc::read_trace_csv_string("garbage-no-comma\n", env()),
               ValueError);
  EXPECT_THROW(sc::read_trace_csv_string("x,a\n", env()), ValueError);
  EXPECT_THROW(sc::read_trace_csv_string("-1,a\n", env()), ValueError);
  EXPECT_THROW(sc::read_trace_csv_string("1,unknown-task\n", env()),
               ValueError);
  EXPECT_THROW(sc::read_trace_csv_string("1,9\n", env()), DimensionError);
}

TEST(Workload, FeedsDynamicSimulator) {
  hetero::etcgen::Rng rng = hetero::etcgen::make_rng(8);
  sc::WorkloadOptions opts;
  opts.shape = sc::RateShape::bursty;
  opts.base_rate = 0.5;
  const auto arrivals = sc::generate_workload(env(), opts, 100, rng);
  const auto r = sc::simulate_immediate(env(), arrivals,
                                        sc::ImmediateMode::mct);
  EXPECT_EQ(r.assignment.size(), 100u);
  EXPECT_TRUE(std::isfinite(r.makespan));
}

}  // namespace
