#include "core/performance.hpp"

#include <gtest/gtest.h>

#include "linalg/vector_ops.hpp"

namespace {

using hetero::core::canonical_form;
using hetero::core::EcsMatrix;
using hetero::core::is_canonical;
using hetero::core::machine_performance;
using hetero::core::machine_performances;
using hetero::core::task_difficulties;
using hetero::core::task_difficulty;
using hetero::core::Weights;
using hetero::linalg::Matrix;

// Figure 1 of the paper: a 4x3 ECS matrix whose machine 1 performance
// (column sum) is 17. The printed entries are lost to OCR; this instance
// satisfies the stated property.
EcsMatrix fig1_like() {
  return EcsMatrix(Matrix{{2, 4, 6}, {3, 5, 7}, {4, 6, 8}, {8, 2, 1}});
}

TEST(MachinePerformance, ColumnSums) {
  const auto mp = machine_performances(fig1_like());
  ASSERT_EQ(mp.size(), 3u);
  EXPECT_DOUBLE_EQ(mp[0], 17.0);  // paper Fig. 1: machine 1 performance = 17
  EXPECT_DOUBLE_EQ(mp[1], 17.0);
  EXPECT_DOUBLE_EQ(mp[2], 22.0);
}

TEST(MachinePerformance, SingleAccessor) {
  EXPECT_DOUBLE_EQ(machine_performance(fig1_like(), 2), 22.0);
  EXPECT_THROW(machine_performance(fig1_like(), 3), hetero::DimensionError);
}

TEST(TaskDifficulty, RowSums) {
  const auto td = task_difficulties(fig1_like());
  ASSERT_EQ(td.size(), 4u);
  EXPECT_DOUBLE_EQ(td[0], 12.0);
  EXPECT_DOUBLE_EQ(td[3], 11.0);
  EXPECT_DOUBLE_EQ(task_difficulty(fig1_like(), 1), 15.0);
}

TEST(MachinePerformance, WeightedForm) {
  // Eq. 4: MP_j = w_mj * sum_i w_ti ECS(i, j).
  EcsMatrix ecs(Matrix{{1, 2}, {3, 4}});
  Weights w;
  w.task = {2.0, 1.0};
  w.machine = {1.0, 10.0};
  const auto mp = machine_performances(ecs, w);
  EXPECT_DOUBLE_EQ(mp[0], 1.0 * (2 * 1 + 1 * 3));
  EXPECT_DOUBLE_EQ(mp[1], 10.0 * (2 * 2 + 1 * 4));
}

TEST(TaskDifficulty, WeightedForm) {
  // Eq. 6: TD_i = w_ti * sum_j w_mj ECS(i, j).
  EcsMatrix ecs(Matrix{{1, 2}, {3, 4}});
  Weights w;
  w.task = {2.0, 1.0};
  w.machine = {1.0, 10.0};
  const auto td = task_difficulties(ecs, w);
  EXPECT_DOUBLE_EQ(td[0], 2.0 * (1 + 20));
  EXPECT_DOUBLE_EQ(td[1], 1.0 * (3 + 40));
}

TEST(CanonicalForm, SortsAscending) {
  EcsMatrix ecs(Matrix{{5, 1}, {1, 1}}, {"hard", "easy"}, {"fast", "slow"});
  const auto canonical = canonical_form(ecs);
  EXPECT_TRUE(is_canonical(canonical.matrix));
  // Machine order: slow (sum 2) before fast (sum 6).
  EXPECT_EQ(canonical.machine_order, (std::vector<std::size_t>{1, 0}));
  // Task order: easy (sum 2) before hard (sum 6).
  EXPECT_EQ(canonical.task_order, (std::vector<std::size_t>{1, 0}));
  EXPECT_EQ(canonical.matrix.task_names().front(), "easy");
  EXPECT_EQ(canonical.matrix.machine_names().front(), "slow");
}

TEST(CanonicalForm, PermutationConsistency) {
  EcsMatrix ecs(Matrix{{3, 1, 2}, {6, 2, 4}, {1, 1, 1}});
  const auto canonical = canonical_form(ecs);
  for (std::size_t i = 0; i < ecs.task_count(); ++i)
    for (std::size_t j = 0; j < ecs.machine_count(); ++j)
      EXPECT_DOUBLE_EQ(
          canonical.matrix(i, j),
          ecs(canonical.task_order[i], canonical.machine_order[j]));
}

TEST(CanonicalForm, AlreadyCanonicalIsIdentityPermutation) {
  EcsMatrix ecs(Matrix{{1, 2}, {2, 4}});
  EXPECT_TRUE(is_canonical(ecs));
  const auto canonical = canonical_form(ecs);
  EXPECT_EQ(canonical.task_order, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(canonical.machine_order, (std::vector<std::size_t>{0, 1}));
}

TEST(CanonicalForm, MeasurePreservingUnderWeights) {
  EcsMatrix ecs(Matrix{{1, 5}, {4, 2}});
  Weights w;
  w.machine = {10.0, 1.0};
  const auto canonical = canonical_form(ecs, w);
  // With machine 1 upweighted, machine order flips relative to unweighted.
  const auto mp_unweighted = machine_performances(ecs);
  EXPECT_LT(mp_unweighted[0], mp_unweighted[1]);
  EXPECT_EQ(canonical.machine_order.front(), 1u);
}

TEST(IsCanonical, DetectsUnsorted) {
  EXPECT_FALSE(is_canonical(EcsMatrix(Matrix{{5, 1}, {5, 1}})));
  EXPECT_FALSE(is_canonical(EcsMatrix(Matrix{{5, 5}, {1, 1}})));
}

}  // namespace
