#include "etcgen/target_measures.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/measures.hpp"

namespace {

using hetero::ConvergenceError;
using hetero::ValueError;
using hetero::core::EcsMatrix;
namespace eg = hetero::etcgen;

TEST(MeasureSetRaw, MatchesEcsMeasures) {
  const hetero::linalg::Matrix m{{1, 5, 2}, {3, 1, 4}};
  const auto raw = eg::measure_set_raw(m);
  const auto typed = hetero::core::measure_set(EcsMatrix(m));
  EXPECT_NEAR(raw.mph, typed.mph, 1e-12);
  EXPECT_NEAR(raw.tdh, typed.tdh, 1e-12);
  EXPECT_NEAR(raw.tma, typed.tma, 1e-7);
}

TEST(Rank1Seed, AchievesExactMphTdhZeroTma) {
  const eg::TargetMeasures target{0.7, 0.85, 0.0};
  const auto seed = eg::rank1_seed(target, 6, 4);
  const auto m = eg::measure_set_raw(seed);
  EXPECT_NEAR(m.mph, 0.7, 1e-9);
  EXPECT_NEAR(m.tdh, 0.85, 1e-9);
  EXPECT_NEAR(m.tma, 0.0, 1e-7);
}

TEST(Rank1Seed, FullyHomogeneousTarget) {
  const auto seed = eg::rank1_seed({1.0, 1.0, 0.0}, 3, 3);
  for (double x : seed.data()) EXPECT_DOUBLE_EQ(x, 1.0);
}

TEST(GenerateWithMeasures, ValidatesInputs) {
  eg::TargetGenOptions opts;
  opts.tasks = 0;
  opts.machines = 3;
  EXPECT_THROW(eg::generate_with_measures({0.5, 0.5, 0.1}, opts), ValueError);
  opts.tasks = 3;
  EXPECT_THROW(eg::generate_with_measures({1.5, 0.5, 0.1}, opts), ValueError);
  EXPECT_THROW(eg::generate_with_measures({0.5, 0.0, 0.1}, opts), ValueError);
  EXPECT_THROW(eg::generate_with_measures({0.5, 0.5, 1.0}, opts), ValueError);
  // TMA > 0 impossible with a single machine.
  opts.machines = 1;
  EXPECT_THROW(eg::generate_with_measures({1.0, 0.5, 0.2}, opts), ValueError);
  // MPH < 1 impossible with a single machine.
  EXPECT_THROW(eg::generate_with_measures({0.5, 0.5, 0.0}, opts), ValueError);
}

struct TargetCase {
  double mph, tdh, tma;
  std::size_t tasks, machines;
};

class TargetSweep : public ::testing::TestWithParam<TargetCase> {};

TEST_P(TargetSweep, HitsTargetsWithinTolerance) {
  const auto& c = GetParam();
  eg::TargetGenOptions opts;
  opts.tasks = c.tasks;
  opts.machines = c.machines;
  opts.seed = 42;
  opts.anneal_iterations = 12000;
  opts.restarts = 2;
  opts.tolerance = 0.01;
  const auto result =
      eg::generate_with_measures({c.mph, c.tdh, c.tma}, opts);
  EXPECT_LE(result.error, 0.01);
  // Re-measure through the public API to confirm the result object.
  const auto check = hetero::core::measure_set(result.ecs);
  EXPECT_NEAR(check.mph, c.mph, 0.015);
  EXPECT_NEAR(check.tdh, c.tdh, 0.015);
  EXPECT_NEAR(check.tma, c.tma, 0.015);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TargetSweep,
    ::testing::Values(TargetCase{0.9, 0.9, 0.05, 6, 4},
                      TargetCase{0.5, 0.9, 0.2, 6, 4},
                      TargetCase{0.9, 0.5, 0.2, 6, 4},
                      TargetCase{0.3, 0.3, 0.1, 5, 5},
                      TargetCase{0.7, 0.8, 0.4, 8, 8},
                      TargetCase{1.0, 1.0, 0.0, 4, 4}));

TEST(GenerateWithMeasures, ScaleOptionSetsMeanEntry) {
  eg::TargetGenOptions opts;
  opts.tasks = 4;
  opts.machines = 4;
  opts.scale = 250.0;
  opts.anneal_iterations = 5000;
  opts.restarts = 1;
  opts.tolerance = 0.05;
  const auto result = eg::generate_with_measures({0.8, 0.8, 0.1}, opts);
  const double mean = result.ecs.values().total() /
                      static_cast<double>(result.ecs.values().size());
  EXPECT_NEAR(mean, 250.0, 1e-6);
}

TEST(GenerateWithMeasures, ParallelRestartsMatchQuality) {
  hetero::par::ThreadPool pool(2);
  eg::TargetGenOptions opts;
  opts.tasks = 5;
  opts.machines = 4;
  opts.anneal_iterations = 8000;
  opts.restarts = 4;
  opts.tolerance = 0.02;
  opts.pool = &pool;
  const auto result = eg::generate_with_measures({0.6, 0.7, 0.15}, opts);
  EXPECT_LE(result.error, 0.02);
}

TEST(GenerateWithMeasures, UnreachableTargetThrows) {
  eg::TargetGenOptions opts;
  opts.tasks = 2;
  opts.machines = 2;
  opts.anneal_iterations = 300;  // starved budget
  opts.restarts = 1;
  opts.tolerance = 1e-9;         // unreachably tight
  EXPECT_THROW(eg::generate_with_measures({0.33, 0.77, 0.41}, opts),
               ConvergenceError);
}

}  // namespace
