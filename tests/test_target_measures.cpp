#include "etcgen/target_measures.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "core/measures.hpp"

namespace {

using hetero::ConvergenceError;
using hetero::ValueError;
using hetero::core::EcsMatrix;
namespace eg = hetero::etcgen;

TEST(MeasureSetRaw, MatchesEcsMeasures) {
  const hetero::linalg::Matrix m{{1, 5, 2}, {3, 1, 4}};
  const auto raw = eg::measure_set_raw(m);
  const auto typed = hetero::core::measure_set(EcsMatrix(m));
  EXPECT_NEAR(raw.mph, typed.mph, 1e-12);
  EXPECT_NEAR(raw.tdh, typed.tdh, 1e-12);
  EXPECT_NEAR(raw.tma, typed.tma, 1e-7);
}

TEST(Rank1Seed, AchievesExactMphTdhZeroTma) {
  const eg::TargetMeasures target{0.7, 0.85, 0.0};
  const auto seed = eg::rank1_seed(target, 6, 4);
  const auto m = eg::measure_set_raw(seed);
  EXPECT_NEAR(m.mph, 0.7, 1e-9);
  EXPECT_NEAR(m.tdh, 0.85, 1e-9);
  EXPECT_NEAR(m.tma, 0.0, 1e-7);
}

TEST(Rank1Seed, FullyHomogeneousTarget) {
  const auto seed = eg::rank1_seed({1.0, 1.0, 0.0}, 3, 3);
  for (double x : seed.data()) EXPECT_DOUBLE_EQ(x, 1.0);
}

TEST(GenerateWithMeasures, ValidatesInputs) {
  eg::TargetGenOptions opts;
  opts.tasks = 0;
  opts.machines = 3;
  EXPECT_THROW(eg::generate_with_measures({0.5, 0.5, 0.1}, opts), ValueError);
  opts.tasks = 3;
  EXPECT_THROW(eg::generate_with_measures({1.5, 0.5, 0.1}, opts), ValueError);
  EXPECT_THROW(eg::generate_with_measures({0.5, 0.0, 0.1}, opts), ValueError);
  EXPECT_THROW(eg::generate_with_measures({0.5, 0.5, 1.0}, opts), ValueError);
  // TMA > 0 impossible with a single machine.
  opts.machines = 1;
  EXPECT_THROW(eg::generate_with_measures({1.0, 0.5, 0.2}, opts), ValueError);
  // MPH < 1 impossible with a single machine.
  EXPECT_THROW(eg::generate_with_measures({0.5, 0.5, 0.0}, opts), ValueError);
}

struct TargetCase {
  double mph, tdh, tma;
  std::size_t tasks, machines;
};

class TargetSweep : public ::testing::TestWithParam<TargetCase> {};

TEST_P(TargetSweep, HitsTargetsWithinTolerance) {
  const auto& c = GetParam();
  eg::TargetGenOptions opts;
  opts.tasks = c.tasks;
  opts.machines = c.machines;
  opts.seed = 42;
  opts.anneal_iterations = 12000;
  opts.restarts = 2;
  opts.tolerance = 0.01;
  const auto result =
      eg::generate_with_measures({c.mph, c.tdh, c.tma}, opts);
  EXPECT_LE(result.error, 0.01);
  // Re-measure through the public API to confirm the result object.
  const auto check = hetero::core::measure_set(result.ecs);
  EXPECT_NEAR(check.mph, c.mph, 0.015);
  EXPECT_NEAR(check.tdh, c.tdh, 0.015);
  EXPECT_NEAR(check.tma, c.tma, 0.015);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TargetSweep,
    ::testing::Values(TargetCase{0.9, 0.9, 0.05, 6, 4},
                      TargetCase{0.5, 0.9, 0.2, 6, 4},
                      TargetCase{0.9, 0.5, 0.2, 6, 4},
                      TargetCase{0.3, 0.3, 0.1, 5, 5},
                      TargetCase{0.7, 0.8, 0.4, 8, 8},
                      TargetCase{1.0, 1.0, 0.0, 4, 4}));

TEST(GenerateWithMeasures, ScaleOptionSetsMeanEntry) {
  eg::TargetGenOptions opts;
  opts.tasks = 4;
  opts.machines = 4;
  opts.scale = 250.0;
  opts.anneal_iterations = 5000;
  opts.restarts = 1;
  opts.tolerance = 0.05;
  const auto result = eg::generate_with_measures({0.8, 0.8, 0.1}, opts);
  const double mean = result.ecs.values().total() /
                      static_cast<double>(result.ecs.values().size());
  EXPECT_NEAR(mean, 250.0, 1e-6);
}

TEST(GenerateWithMeasures, ParallelRestartsMatchQuality) {
  hetero::par::ThreadPool pool(2);
  eg::TargetGenOptions opts;
  opts.tasks = 5;
  opts.machines = 4;
  opts.anneal_iterations = 8000;
  opts.restarts = 4;
  opts.tolerance = 0.02;
  opts.pool = &pool;
  const auto result = eg::generate_with_measures({0.6, 0.7, 0.15}, opts);
  EXPECT_LE(result.error, 0.02);
}

TEST(GenerateWithMeasures, UnreachableTargetThrows) {
  eg::TargetGenOptions opts;
  opts.tasks = 2;
  opts.machines = 2;
  opts.anneal_iterations = 300;  // starved budget
  opts.restarts = 1;
  opts.tolerance = 1e-9;         // unreachably tight
  EXPECT_THROW(eg::generate_with_measures({0.33, 0.77, 0.41}, opts),
               ConvergenceError);
}

// ---- Incremental proposal-chain evaluator ----

hetero::linalg::Matrix chain_seed(std::size_t rows, std::size_t cols,
                                  unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(0.2, 8.0);
  hetero::linalg::Matrix m(rows, cols);
  for (double& x : m.data()) x = dist(rng);
  return m;
}

TEST(IncrementalMeasures, MatchesFreshRecomputeAfterLongChain) {
  // Drive the evaluator through enough commits to cross the automatic
  // rebuild interval, with a mix of accepts and rejects, then compare the
  // maintained state against a cold evaluation of the final matrix.
  hetero::core::SinkhornOptions opts;
  opts.tolerance = 1e-9;
  opts.max_iterations = 500;
  eg::IncrementalMeasures inc(chain_seed(9, 6, 1234), opts);
  std::mt19937 rng(99);
  std::uniform_int_distribution<std::size_t> pick(0, 9 * 6 - 1);
  std::uniform_real_distribution<double> step(-0.3, 0.3);
  for (int p = 0; p < 600; ++p) {
    const std::size_t k = pick(rng);
    const double value = inc.matrix().data()[k] * std::exp(step(rng));
    inc.propose(k, value);
    if (p % 3 != 0)
      inc.accept();
    else
      inc.reject();
  }
  eg::IncrementalMeasures fresh(inc.matrix(), opts);
  // MPH/TDH ride on incrementally maintained sums (drift bounded by the
  // periodic rebuild); TMA additionally tolerates the warm-vs-cold Sinkhorn
  // and eigensolve difference at their 1e-8/1e-9 budgets.
  EXPECT_NEAR(inc.current().mph, fresh.current().mph, 1e-9);
  EXPECT_NEAR(inc.current().tdh, fresh.current().tdh, 1e-9);
  EXPECT_NEAR(inc.current().tma, fresh.current().tma, 1e-6);
  const auto raw = eg::measure_set_raw(inc.matrix());
  EXPECT_NEAR(inc.current().mph, raw.mph, 1e-9);
  EXPECT_NEAR(inc.current().tdh, raw.tdh, 1e-9);
  EXPECT_NEAR(inc.current().tma, raw.tma, 1e-6);
}

TEST(IncrementalMeasures, RejectRestoresState) {
  const auto seed = chain_seed(6, 4, 7);
  eg::IncrementalMeasures inc(seed);
  const auto before = inc.current();
  const auto first = inc.propose(5, 3.25);
  const double first_mph = first.mph, first_tdh = first.tdh,
               first_tma = first.tma;
  inc.reject();
  EXPECT_EQ(inc.matrix(), seed);
  EXPECT_EQ(inc.current().mph, before.mph);
  EXPECT_EQ(inc.current().tdh, before.tdh);
  EXPECT_EQ(inc.current().tma, before.tma);
  // Re-proposing the identical change must reproduce the evaluation exactly
  // (the committed warm state was untouched by the reject).
  const auto second = inc.propose(5, 3.25);
  EXPECT_EQ(second.mph, first_mph);
  EXPECT_EQ(second.tdh, first_tdh);
  EXPECT_EQ(second.tma, first_tma);
  inc.accept();
}

TEST(IncrementalMeasures, ValidatesProtocolAndInputs) {
  eg::IncrementalMeasures inc(chain_seed(4, 3, 3));
  EXPECT_THROW(inc.accept(), ValueError);  // nothing proposed
  EXPECT_THROW(inc.reject(), ValueError);
  inc.propose(0, 1.5);
  EXPECT_THROW(inc.propose(1, 2.0), ValueError);  // outstanding proposal
  EXPECT_THROW(inc.rebuild(), ValueError);
  inc.reject();
  EXPECT_THROW(inc.propose(12, 1.0), hetero::DimensionError);
  EXPECT_THROW(inc.propose(0, 0.0), ValueError);
  EXPECT_THROW(inc.propose(0, -1.0), ValueError);

  hetero::linalg::Matrix zero(2, 2, 1.0);
  zero(1, 1) = 0.0;
  EXPECT_THROW(eg::IncrementalMeasures bad(zero), ValueError);
}

TEST(SearchSinkhornOptions, ClampsTwoOrdersBelowGeneratorTolerance) {
  EXPECT_DOUBLE_EQ(eg::search_sinkhorn_options(0.02).tolerance, 1e-4);
  EXPECT_DOUBLE_EQ(eg::search_sinkhorn_options(1e-3).tolerance, 1e-5);
  EXPECT_DOUBLE_EQ(eg::search_sinkhorn_options(1e-7).tolerance, 1e-8);
}

}  // namespace
