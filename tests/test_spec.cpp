#include "spec/spec_data.hpp"

#include <gtest/gtest.h>

#include "core/measures.hpp"
#include "core/standard_form.hpp"

namespace {

using hetero::core::measure_set;
namespace sp = hetero::spec;

TEST(SpecData, MachineListMatchesFig5) {
  const auto& machines = sp::spec_machines();
  ASSERT_EQ(machines.size(), 5u);
  EXPECT_EQ(machines[0].id, "m1");
  EXPECT_NE(machines[0].description.find("Xeon X3470"), std::string::npos);
  EXPECT_NE(machines[1].description.find("SPARC"), std::string::npos);
  EXPECT_NE(machines[3].description.find("Opteron 6174"), std::string::npos);
  EXPECT_NE(machines[4].description.find("Power 750"), std::string::npos);
}

TEST(SpecData, CintShape) {
  const auto& cint = sp::spec_cint2006rate();
  EXPECT_EQ(cint.task_count(), 12u);   // 12 CINT2006 task types
  EXPECT_EQ(cint.machine_count(), 5u);
  EXPECT_EQ(cint.task_names().front(), "400.perlbench");
  EXPECT_EQ(cint.task_names().back(), "483.xalancbmk");
}

TEST(SpecData, CfpShape) {
  const auto& cfp = sp::spec_cfp2006rate();
  EXPECT_EQ(cfp.task_count(), 17u);    // 17 CFP2006 task types
  EXPECT_EQ(cfp.machine_count(), 5u);
  EXPECT_EQ(cfp.task_names().front(), "410.bwaves");
  EXPECT_EQ(cfp.task_names().back(), "482.sphinx3");
}

TEST(SpecData, RuntimesArePlausible) {
  for (const auto* etc : {&sp::spec_cint2006rate(), &sp::spec_cfp2006rate()}) {
    EXPECT_GT(etc->values().min(), 30.0);    // seconds
    EXPECT_LT(etc->values().max(), 10000.0);
  }
}

TEST(SpecData, CintMeasuresMatchFig6) {
  const auto m = measure_set(sp::spec_cint2006rate().to_ecs());
  EXPECT_NEAR(m.tdh, 0.90, 0.005);
  EXPECT_NEAR(m.mph, 0.82, 0.005);
  EXPECT_NEAR(m.tma, 0.07, 0.005);
}

TEST(SpecData, CfpMeasuresMatchFig7) {
  const auto m = measure_set(sp::spec_cfp2006rate().to_ecs());
  EXPECT_NEAR(m.tdh, 0.91, 0.005);
  EXPECT_NEAR(m.mph, 0.83, 0.005);
  // The paper's TMA digits are partially lost to OCR; the prose requires
  // CFP affinity to exceed CINT affinity. Calibrated to 0.11.
  EXPECT_NEAR(m.tma, 0.11, 0.01);
}

TEST(SpecData, CfpHasMoreAffinityThanCint) {
  // Paper Section V: "for the floating point applications ... task types
  // have more affinity to machines than that of the integer applications".
  const auto cint = measure_set(sp::spec_cint2006rate().to_ecs());
  const auto cfp = measure_set(sp::spec_cfp2006rate().to_ecs());
  EXPECT_GT(cfp.tma, cint.tma);
}

TEST(SpecData, SinkhornConvergesInFewIterations) {
  // Paper Section V: CINT converged in 6 iterations, CFP in 7 (tolerance
  // 1e-8). The calibrated data must stay in that small-iteration regime.
  const auto cint = hetero::core::standardize(
      sp::spec_cint2006rate().to_ecs().values());
  const auto cfp = hetero::core::standardize(
      sp::spec_cfp2006rate().to_ecs().values());
  EXPECT_TRUE(cint.converged);
  EXPECT_TRUE(cfp.converged);
  EXPECT_LE(cint.iterations, 12u);
  EXPECT_LE(cfp.iterations, 12u);
}

TEST(SpecData, Fig8aMeasures) {
  const auto m = measure_set(sp::spec_fig8a().to_ecs());
  EXPECT_NEAR(m.tdh, 0.16, 0.01);
  EXPECT_NEAR(m.mph, 0.31, 0.01);
  EXPECT_NEAR(m.tma, 0.05, 0.01);
}

TEST(SpecData, Fig8bHighAffinity) {
  const auto m = measure_set(sp::spec_fig8b().to_ecs());
  EXPECT_NEAR(m.tma, 0.60, 0.01);
  // Fig. 8(b) exists to show a high-TMA extract vs the low-TMA (a).
  EXPECT_GT(m.tma, measure_set(sp::spec_fig8a().to_ecs()).tma);
}

TEST(SpecData, Fig8LabelsAndProvenance) {
  const auto a = sp::spec_fig8a();
  EXPECT_EQ(a.task_names(),
            (std::vector<std::string>{"471.omnetpp", "436.cactusADM"}));
  EXPECT_EQ(a.machine_names(), (std::vector<std::string>{"m4", "m5"}));
  // Entries must be drawn from the parent matrices.
  const auto& cint = sp::spec_cint2006rate();
  EXPECT_DOUBLE_EQ(a(0, 0), cint(cint.task_index("471.omnetpp"), 3));
  const auto b = sp::spec_fig8b();
  const auto& cfp = sp::spec_cfp2006rate();
  EXPECT_DOUBLE_EQ(b(1, 1), cfp(cfp.task_index("450.soplex"), 3));
}

TEST(SpecData, SingletonAccessorsAreStable) {
  EXPECT_EQ(&sp::spec_cint2006rate(), &sp::spec_cint2006rate());
  EXPECT_EQ(&sp::spec_cfp2006rate(), &sp::spec_cfp2006rate());
}

}  // namespace
