#include "core/report.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "spec/spec_data.hpp"

namespace {

using hetero::core::EtcMatrix;
using hetero::core::markdown_report;
using hetero::core::ReportOptions;
using hetero::linalg::Matrix;

TEST(Report, ContainsAllSectionsForSpec) {
  ReportOptions opts;
  opts.title = "SPEC CFP";
  const auto md = markdown_report(hetero::spec::spec_cfp2006rate(), opts);
  for (const char* needle :
       {"# SPEC CFP", "## Measures", "## Region and mapping advice",
        "## Affinity structure", "## Machine classes",
        "## Extreme 2×2 sub-environments",
        "## Stability under 10% estimate noise", "MPH", "TMA",
        "Sinkhorn iterations"}) {
    EXPECT_NE(md.find(needle), std::string::npos) << needle;
  }
}

TEST(Report, SectionsCanBeDisabled) {
  ReportOptions opts;
  opts.with_confidence = false;
  opts.with_atlas = false;
  opts.machine_classes = 0;
  const auto md = markdown_report(hetero::spec::spec_fig8a(), opts);
  EXPECT_EQ(md.find("## Stability"), std::string::npos);
  EXPECT_EQ(md.find("## Extreme"), std::string::npos);
  EXPECT_EQ(md.find("## Machine classes"), std::string::npos);
  EXPECT_NE(md.find("## Measures"), std::string::npos);
}

TEST(Report, NoAffinitySectionForRankOne) {
  // Proportional columns: TMA ~ 0, affinity section omitted.
  EtcMatrix rank1(Matrix{{1, 2}, {2, 4}, {3, 6}});
  ReportOptions opts;
  opts.with_confidence = false;
  const auto md = markdown_report(rank1, opts);
  EXPECT_EQ(md.find("## Affinity structure"), std::string::npos);
}

TEST(Report, FallbackNotedForNonNormalizablePattern) {
  // A no-support zero pattern (built with true "cannot run" entries).
  EtcMatrix etc(Matrix{{1, 1, std::numeric_limits<double>::infinity(),
                        std::numeric_limits<double>::infinity()},
                       {1, 1, std::numeric_limits<double>::infinity(),
                        std::numeric_limits<double>::infinity()},
                       {1, 1, std::numeric_limits<double>::infinity(),
                        std::numeric_limits<double>::infinity()},
                       {std::numeric_limits<double>::infinity(),
                        std::numeric_limits<double>::infinity(), 1, 1}});
  ReportOptions opts;
  opts.with_confidence = false;
  opts.with_atlas = false;
  const auto md = markdown_report(etc, opts);
  EXPECT_NE(md.find("No standard form exists"), std::string::npos);
}

TEST(Report, TinyEnvironmentDoesNotCrash) {
  const auto md = markdown_report(EtcMatrix(Matrix{{5}}),
                                  ReportOptions{"tiny", false, false, 0});
  EXPECT_NE(md.find("1 task types"), std::string::npos);
}

}  // namespace
