#include "core/etc_matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace {

using hetero::DimensionError;
using hetero::ValueError;
using hetero::core::EcsMatrix;
using hetero::core::EtcMatrix;
using hetero::core::Weights;
using hetero::linalg::Matrix;

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(EtcMatrix, BasicConstruction) {
  EtcMatrix etc(Matrix{{1, 2}, {3, 4}});
  EXPECT_EQ(etc.task_count(), 2u);
  EXPECT_EQ(etc.machine_count(), 2u);
  EXPECT_EQ(etc(1, 0), 3);
  EXPECT_EQ(etc.task_names(), (std::vector<std::string>{"t1", "t2"}));
  EXPECT_EQ(etc.machine_names(), (std::vector<std::string>{"m1", "m2"}));
}

TEST(EtcMatrix, CustomLabels) {
  EtcMatrix etc(Matrix{{1, 2}}, {"gcc"}, {"xeon", "power"});
  EXPECT_EQ(etc.task_index("gcc"), 0u);
  EXPECT_EQ(etc.machine_index("power"), 1u);
  EXPECT_THROW(etc.task_index("missing"), ValueError);
  EXPECT_THROW(etc.machine_index("missing"), ValueError);
}

TEST(EtcMatrix, LabelCountMismatchThrows) {
  EXPECT_THROW(EtcMatrix(Matrix{{1, 2}}, {"a", "b"}, {}), DimensionError);
  EXPECT_THROW(EtcMatrix(Matrix{{1, 2}}, {}, {"x"}), DimensionError);
}

TEST(EtcMatrix, RejectsNonPositive) {
  EXPECT_THROW(EtcMatrix(Matrix{{0, 1}, {1, 1}}), ValueError);
  EXPECT_THROW(EtcMatrix(Matrix{{-1, 1}, {1, 1}}), ValueError);
  EXPECT_THROW(EtcMatrix(Matrix{{std::nan(""), 1}, {1, 1}}), ValueError);
}

TEST(EtcMatrix, RejectsEmptyMatrix) {
  EXPECT_THROW(EtcMatrix(Matrix{}), DimensionError);
}

TEST(EtcMatrix, InfinityMeansCannotRun) {
  EtcMatrix etc(Matrix{{1, kInf}, {kInf, 2}});
  EXPECT_TRUE(std::isinf(etc(0, 1)));
}

TEST(EtcMatrix, RejectsAllInfRowOrColumn) {
  EXPECT_THROW(EtcMatrix(Matrix{{kInf, kInf}, {1, 2}}), ValueError);
  EXPECT_THROW(EtcMatrix(Matrix{{kInf, 1}, {kInf, 2}}), ValueError);
}

TEST(EtcMatrix, ToEcsReciprocal) {
  EtcMatrix etc(Matrix{{2, kInf}, {4, 5}});
  EcsMatrix ecs = etc.to_ecs();
  EXPECT_DOUBLE_EQ(ecs(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(ecs(0, 1), 0.0);  // eq. 1: infinity -> 0
  EXPECT_DOUBLE_EQ(ecs(1, 1), 0.2);
  EXPECT_EQ(ecs.task_names(), etc.task_names());
}

TEST(EtcMatrix, EcsRoundTrip) {
  EtcMatrix etc(Matrix{{2, kInf}, {4, 5}});
  EtcMatrix back = etc.to_ecs().to_etc();
  EXPECT_DOUBLE_EQ(back(0, 0), 2.0);
  EXPECT_TRUE(std::isinf(back(0, 1)));
  EXPECT_DOUBLE_EQ(back(1, 1), 5.0);
}

TEST(EtcMatrix, SubmatrixKeepsLabels) {
  EtcMatrix etc(Matrix{{1, 2, 3}, {4, 5, 6}}, {"a", "b"}, {"x", "y", "z"});
  const std::size_t tasks[] = {1};
  const std::size_t machines[] = {2, 0};
  EtcMatrix sub = etc.submatrix(tasks, machines);
  EXPECT_EQ(sub.task_names(), (std::vector<std::string>{"b"}));
  EXPECT_EQ(sub.machine_names(), (std::vector<std::string>{"z", "x"}));
  EXPECT_EQ(sub(0, 0), 6);
  EXPECT_EQ(sub(0, 1), 4);
}

TEST(EcsMatrix, BasicConstruction) {
  EcsMatrix ecs(Matrix{{1, 0}, {0.5, 2}});
  EXPECT_EQ(ecs.task_count(), 2u);
  EXPECT_DOUBLE_EQ(ecs(0, 1), 0.0);
}

TEST(EcsMatrix, RejectsInvalid) {
  EXPECT_THROW(EcsMatrix(Matrix{{-1, 1}, {1, 1}}), ValueError);
  EXPECT_THROW(EcsMatrix(Matrix{{kInf, 1}, {1, 1}}), ValueError);
  // All-zero row: a task type no machine can execute (paper Section II-B).
  EXPECT_THROW(EcsMatrix(Matrix{{0, 0}, {1, 1}}), ValueError);
  // All-zero column: a machine that executes nothing.
  EXPECT_THROW(EcsMatrix(Matrix{{0, 1}, {0, 1}}), ValueError);
}

TEST(EcsMatrix, WeightedValues) {
  EcsMatrix ecs(Matrix{{1, 2}, {3, 4}});
  Weights w;
  w.task = {2.0, 1.0};
  w.machine = {1.0, 10.0};
  const Matrix v = ecs.weighted_values(w);
  EXPECT_DOUBLE_EQ(v(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(v(0, 1), 40.0);
  EXPECT_DOUBLE_EQ(v(1, 1), 40.0);
}

TEST(EcsMatrix, UniformWeightsAreIdentity) {
  EcsMatrix ecs(Matrix{{1, 2}, {3, 4}});
  EXPECT_EQ(ecs.weighted_values(Weights::uniform()), ecs.values());
}

TEST(EcsMatrix, WeightValidation) {
  EcsMatrix ecs(Matrix{{1, 2}, {3, 4}});
  Weights bad_size;
  bad_size.task = {1.0};
  EXPECT_THROW(ecs.weighted_values(bad_size), DimensionError);
  Weights bad_value;
  bad_value.machine = {1.0, -1.0};
  EXPECT_THROW(ecs.weighted_values(bad_value), ValueError);
}

TEST(EcsMatrix, PermutedValidatesPermutation) {
  EcsMatrix ecs(Matrix{{1, 2}, {3, 4}}, {"a", "b"}, {"x", "y"});
  const std::size_t tp[] = {1, 0};
  const std::size_t mp[] = {0, 1};
  EcsMatrix p = ecs.permuted(tp, mp);
  EXPECT_EQ(p.task_names(), (std::vector<std::string>{"b", "a"}));
  EXPECT_EQ(p(0, 0), 3);
  const std::size_t bad[] = {0, 0};
  EXPECT_THROW(ecs.permuted(bad, mp), ValueError);
}

TEST(DefaultLabels, Format) {
  const auto labels = hetero::core::default_labels(3, 'm');
  EXPECT_EQ(labels, (std::vector<std::string>{"m1", "m2", "m3"}));
}

}  // namespace
