#include "linalg/svd.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "linalg/jacobi_eigen.hpp"
#include "linalg/matrix.hpp"

namespace {

using hetero::ConvergenceError;
using hetero::DimensionError;
using hetero::ValueError;
namespace lin = hetero::linalg;
using lin::Matrix;

Matrix random_matrix(std::size_t rows, std::size_t cols, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-2.0, 2.0);
  Matrix m(rows, cols);
  for (double& x : m.data()) x = dist(rng);
  return m;
}

// || U diag(S) V^T - A ||_max
double reconstruction_error(const Matrix& a, const lin::SvdResult& r) {
  Matrix us = r.u;
  for (std::size_t j = 0; j < r.singular_values.size(); ++j)
    us.scale_col(j, r.singular_values[j]);
  return lin::max_abs_diff(lin::matmul(us, r.v.transposed()), a);
}

double orthonormality_error(const Matrix& q) {
  const Matrix g = lin::gram(q);
  return lin::max_abs_diff(g, Matrix::identity(q.cols()));
}

TEST(Svd, DiagonalMatrix) {
  const auto sv = lin::singular_values(Matrix{{3, 0}, {0, 7}});
  ASSERT_EQ(sv.size(), 2u);
  EXPECT_NEAR(sv[0], 7.0, 1e-12);
  EXPECT_NEAR(sv[1], 3.0, 1e-12);
}

TEST(Svd, KnownRectangular) {
  // Singular values of [[1,2,3],[4,5,6]] are 9.50803200..., 0.77286964...
  const auto sv = lin::singular_values(Matrix{{1, 2, 3}, {4, 5, 6}});
  ASSERT_EQ(sv.size(), 2u);
  EXPECT_NEAR(sv[0], 9.508032000695726, 1e-10);
  EXPECT_NEAR(sv[1], 0.7728696356734838, 1e-10);
}

TEST(Svd, RankOneMatrixHasOneNonzeroSingularValue) {
  Matrix m{{1, 2}, {2, 4}, {3, 6}};
  const auto sv = lin::singular_values(m);
  EXPECT_GT(sv[0], 0.0);
  EXPECT_NEAR(sv[1], 0.0, 1e-10);
  EXPECT_EQ(lin::numerical_rank(m), 1u);
}

TEST(Svd, ZeroColumnsHandled) {
  Matrix m{{1, 0}, {1, 0}};
  const auto sv = lin::singular_values(m);
  EXPECT_NEAR(sv[0], std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(sv[1], 0.0, 1e-12);
}

TEST(Svd, EmptyAndNonFiniteRejected) {
  EXPECT_THROW(lin::singular_values(Matrix{}), DimensionError);
  EXPECT_THROW(lin::singular_values(Matrix{{1.0, std::nan("")}}), ValueError);
}

TEST(Svd, SpectralNormOfOrthogonalIsOne) {
  const double s = std::sqrt(0.5);
  Matrix q{{s, -s}, {s, s}};
  EXPECT_NEAR(lin::spectral_norm(q), 1.0, 1e-12);
}

TEST(Svd, SingularValuesInvariantUnderTranspose) {
  const Matrix m = random_matrix(5, 3, 42);
  const auto a = lin::singular_values(m);
  const auto b = lin::singular_values(m.transposed());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-10);
}

TEST(Svd, ScalingScalesSingularValues) {
  const Matrix m = random_matrix(4, 4, 7);
  const auto a = lin::singular_values(m);
  const auto b = lin::singular_values(m * 3.0);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(b[i], 3 * a[i], 1e-9);
}

struct SvdShape {
  std::size_t rows, cols;
  unsigned seed;
};

class SvdRandomized : public ::testing::TestWithParam<SvdShape> {};

TEST_P(SvdRandomized, FactorsReconstructAndAreOrthonormal) {
  const auto [rows, cols, seed] = GetParam();
  const Matrix m = random_matrix(rows, cols, seed);
  const auto r = lin::svd(m);
  const std::size_t k = std::min(rows, cols);
  ASSERT_EQ(r.singular_values.size(), k);
  ASSERT_EQ(r.u.rows(), rows);
  ASSERT_EQ(r.u.cols(), k);
  ASSERT_EQ(r.v.rows(), cols);
  ASSERT_EQ(r.v.cols(), k);
  EXPECT_TRUE(std::is_sorted(r.singular_values.rbegin(),
                             r.singular_values.rend()));
  EXPECT_LT(reconstruction_error(m, r), 1e-9);
  EXPECT_LT(orthonormality_error(r.v), 1e-9);
  // U columns for nonzero singular values must be orthonormal.
  EXPECT_LT(orthonormality_error(r.u), 1e-9);
}

TEST_P(SvdRandomized, SquaredSingularValuesMatchGramEigenvalues) {
  const auto [rows, cols, seed] = GetParam();
  const Matrix m = random_matrix(rows, cols, seed + 1000);
  const Matrix g = m.rows() >= m.cols() ? lin::gram(m)
                                        : lin::gram(m.transposed());
  const auto eig = lin::symmetric_eigenvalues(g);
  const auto sv = lin::singular_values(m);
  ASSERT_EQ(eig.size(), sv.size());
  for (std::size_t i = 0; i < sv.size(); ++i)
    EXPECT_NEAR(sv[i] * sv[i], eig[i], 1e-8 * std::max(1.0, eig[0]));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SvdRandomized,
    ::testing::Values(SvdShape{1, 1, 1}, SvdShape{2, 2, 2}, SvdShape{3, 2, 3},
                      SvdShape{2, 3, 4}, SvdShape{5, 5, 5}, SvdShape{8, 3, 6},
                      SvdShape{3, 8, 7}, SvdShape{12, 5, 8},
                      SvdShape{17, 5, 9}, SvdShape{20, 20, 10}));

TEST(Svd, FullDecompositionOfWideMatrix) {
  Matrix m{{1, 2, 3, 4}, {5, 6, 7, 8}};
  const auto r = lin::svd(m);
  EXPECT_LT(reconstruction_error(m, r), 1e-10);
}

TEST(Svd, ExactlyDuplicatedColumnsConverge) {
  // Regression: exactly rank-deficient inputs (duplicated columns) used to
  // cycle forever — rotations left round-off residual columns that
  // re-correlated every sweep. The absolute norm floor must terminate them
  // with exact zero singular values.
  const Matrix base = random_matrix(6, 4, 400);
  Matrix wide(6, 8);
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t j = 0; j < 4; ++j)
      wide(i, j) = wide(i, j + 4) = base(i, j);
  const auto sv = lin::singular_values(wide);
  ASSERT_EQ(sv.size(), 6u);
  EXPECT_EQ(sv[4], 0.0);
  EXPECT_EQ(sv[5], 0.0);
  // The nonzero singular values are sqrt(2) times the base's.
  const auto base_sv = lin::singular_values(base);
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_NEAR(sv[i], std::sqrt(2.0) * base_sv[i], 1e-9);
}

TEST(Svd, DuplicatedRowsConverge) {
  const Matrix base = random_matrix(3, 5, 401);
  Matrix tall(6, 5);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 5; ++j)
      tall(i, j) = tall(i + 3, j) = base(i, j);
  const auto sv = lin::singular_values(tall);
  const auto base_sv = lin::singular_values(base);
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_NEAR(sv[i], std::sqrt(2.0) * base_sv[i], 1e-9);
}

TEST(NumericalRank, DetectsRankDeficiency) {
  Matrix m{{1, 2, 3}, {2, 4, 6}, {1, 1, 1}};
  EXPECT_EQ(lin::numerical_rank(m), 2u);
  EXPECT_EQ(lin::numerical_rank(Matrix::identity(3)), 3u);
}

// ---- Incremental kernel vs pre-optimization reference ----

TEST(SvdEquivalence, IncrementalMatchesReference) {
  for (auto [r, c] : {std::pair<std::size_t, std::size_t>{5, 3},
                      std::pair<std::size_t, std::size_t>{12, 5},
                      std::pair<std::size_t, std::size_t>{16, 16},
                      std::pair<std::size_t, std::size_t>{9, 33}}) {
    const Matrix a = random_matrix(r, c, static_cast<unsigned>(13 * r + c));
    const auto fast = lin::singular_values(a);
    const auto ref = lin::singular_values_reference(a);
    ASSERT_EQ(fast.size(), ref.size());
    for (std::size_t i = 0; i < fast.size(); ++i)
      EXPECT_NEAR(fast[i], ref[i], 1e-12 * ref[0]) << r << "x" << c;
  }
}

TEST(SvdEquivalence, IncrementalMatchesReferenceOnRankDeficient) {
  Matrix a = random_matrix(8, 5, 77);
  for (std::size_t i = 0; i < 8; ++i) a(i, 4) = a(i, 2);  // duplicate column
  const auto fast = lin::singular_values(a);
  const auto ref = lin::singular_values_reference(a);
  ASSERT_EQ(fast.size(), ref.size());
  for (std::size_t i = 0; i < fast.size(); ++i)
    EXPECT_NEAR(fast[i], ref[i], 1e-12 * ref[0]);
  EXPECT_NEAR(fast.back(), 0.0, 1e-12 * ref[0]);
}

TEST(SvdEquivalence, GramPathNearCanonical) {
  // The Gram path squares the condition number: tiny singular values carry
  // up to ~sqrt(eps) * sigma_max absolute error, which is the documented
  // contract for search loops. Dominant values agree much tighter.
  for (auto [r, c] : {std::pair<std::size_t, std::size_t>{8, 5},
                      std::pair<std::size_t, std::size_t>{6, 14},
                      std::pair<std::size_t, std::size_t>{20, 10}}) {
    const Matrix a = random_matrix(r, c, static_cast<unsigned>(5 * r + c));
    const auto gram_sv = lin::singular_values_gram(a);
    const auto canonical = lin::singular_values(a);
    ASSERT_EQ(gram_sv.size(), canonical.size());
    for (std::size_t i = 0; i < gram_sv.size(); ++i)
      EXPECT_NEAR(gram_sv[i], canonical[i], 1e-7 * canonical[0]);
  }
}

}  // namespace
