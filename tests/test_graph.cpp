#include <gtest/gtest.h>

#include <numeric>

#include "base/error.hpp"
#include "graph/bipartite_matching.hpp"
#include "graph/scc.hpp"

namespace {

using hetero::DimensionError;
namespace g = hetero::graph;

TEST(BipartiteMatching, EmptyGraph) {
  g::BipartiteGraph bg(3, 3);
  const auto r = g::maximum_matching(bg);
  EXPECT_EQ(r.size, 0u);
  EXPECT_FALSE(g::perfect_matching(bg).has_value());
}

TEST(BipartiteMatching, OutOfRangeEdgeThrows) {
  g::BipartiteGraph bg(2, 2);
  EXPECT_THROW(bg.add_edge(2, 0), DimensionError);
  EXPECT_THROW(bg.add_edge(0, 2), DimensionError);
}

TEST(BipartiteMatching, PerfectOnCompleteGraph) {
  g::BipartiteGraph bg(4, 4);
  for (std::size_t u = 0; u < 4; ++u)
    for (std::size_t v = 0; v < 4; ++v) bg.add_edge(u, v);
  const auto pm = g::perfect_matching(bg);
  ASSERT_TRUE(pm.has_value());
  // Must be a permutation.
  std::vector<bool> used(4, false);
  for (std::size_t v : *pm) {
    EXPECT_LT(v, 4u);
    EXPECT_FALSE(used[v]);
    used[v] = true;
  }
}

TEST(BipartiteMatching, DiagonalOnlyGraph) {
  g::BipartiteGraph bg(3, 3);
  for (std::size_t u = 0; u < 3; ++u) bg.add_edge(u, u);
  const auto pm = g::perfect_matching(bg);
  ASSERT_TRUE(pm.has_value());
  EXPECT_EQ(*pm, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(BipartiteMatching, HallViolationNoPerfectMatching) {
  // Rows 0 and 1 both connect only to column 0.
  g::BipartiteGraph bg(2, 2);
  bg.add_edge(0, 0);
  bg.add_edge(1, 0);
  const auto r = g::maximum_matching(bg);
  EXPECT_EQ(r.size, 1u);
  EXPECT_FALSE(g::perfect_matching(bg).has_value());
}

TEST(BipartiteMatching, AugmentingPathFound) {
  // Greedy could match 0-0 and block 1; Hopcroft-Karp must augment.
  g::BipartiteGraph bg(2, 2);
  bg.add_edge(0, 0);
  bg.add_edge(0, 1);
  bg.add_edge(1, 0);
  const auto pm = g::perfect_matching(bg);
  ASSERT_TRUE(pm.has_value());
  EXPECT_EQ((*pm)[0], 1u);
  EXPECT_EQ((*pm)[1], 0u);
}

TEST(BipartiteMatching, RectangularMaximum) {
  g::BipartiteGraph bg(2, 4);
  bg.add_edge(0, 2);
  bg.add_edge(1, 2);
  bg.add_edge(1, 3);
  const auto r = g::maximum_matching(bg);
  EXPECT_EQ(r.size, 2u);
  EXPECT_FALSE(g::perfect_matching(bg).has_value());  // not square
}

TEST(BipartiteMatching, MatchConsistency) {
  g::BipartiteGraph bg(3, 3);
  bg.add_edge(0, 1);
  bg.add_edge(1, 0);
  bg.add_edge(2, 2);
  bg.add_edge(0, 0);
  const auto r = g::maximum_matching(bg);
  EXPECT_EQ(r.size, 3u);
  for (std::size_t u = 0; u < 3; ++u) {
    ASSERT_NE(r.match_left[u], g::MatchingResult::npos);
    EXPECT_EQ(r.match_right[r.match_left[u]], u);
  }
}

TEST(BipartiteMatching, LargeCycleGraph) {
  // Left i connects to right i and i+1 (mod n): perfect matching exists.
  constexpr std::size_t n = 50;
  g::BipartiteGraph bg(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    bg.add_edge(i, i);
    bg.add_edge(i, (i + 1) % n);
  }
  EXPECT_TRUE(g::perfect_matching(bg).has_value());
}

TEST(Scc, OutOfRangeEdgeThrows) {
  g::Digraph d(2);
  EXPECT_THROW(d.add_edge(0, 5), DimensionError);
}

TEST(Scc, SingleVertexIsStronglyConnected) {
  g::Digraph d(1);
  EXPECT_TRUE(g::is_strongly_connected(d));
  const auto r = g::strongly_connected_components(d);
  EXPECT_EQ(r.component_count, 1u);
}

TEST(Scc, TwoIsolatedVertices) {
  g::Digraph d(2);
  const auto r = g::strongly_connected_components(d);
  EXPECT_EQ(r.component_count, 2u);
  EXPECT_FALSE(g::is_strongly_connected(d));
}

TEST(Scc, DirectedCycle) {
  g::Digraph d(4);
  for (std::size_t i = 0; i < 4; ++i) d.add_edge(i, (i + 1) % 4);
  EXPECT_TRUE(g::is_strongly_connected(d));
}

TEST(Scc, ChainHasOneComponentPerVertex) {
  g::Digraph d(4);
  d.add_edge(0, 1);
  d.add_edge(1, 2);
  d.add_edge(2, 3);
  const auto r = g::strongly_connected_components(d);
  EXPECT_EQ(r.component_count, 4u);
  // Component ids must be a topological order: edges go low -> high.
  EXPECT_LT(r.component[0], r.component[1]);
  EXPECT_LT(r.component[1], r.component[2]);
  EXPECT_LT(r.component[2], r.component[3]);
}

TEST(Scc, TwoCyclesJoinedByEdge) {
  // 0<->1  ->  2<->3
  g::Digraph d(4);
  d.add_edge(0, 1);
  d.add_edge(1, 0);
  d.add_edge(1, 2);
  d.add_edge(2, 3);
  d.add_edge(3, 2);
  const auto r = g::strongly_connected_components(d);
  EXPECT_EQ(r.component_count, 2u);
  EXPECT_EQ(r.component[0], r.component[1]);
  EXPECT_EQ(r.component[2], r.component[3]);
  EXPECT_LT(r.component[0], r.component[2]);  // topological order
}

TEST(Scc, SelfLoopsDoNotMergeComponents) {
  g::Digraph d(2);
  d.add_edge(0, 0);
  d.add_edge(1, 1);
  const auto r = g::strongly_connected_components(d);
  EXPECT_EQ(r.component_count, 2u);
}

TEST(Scc, DeepChainNoStackOverflow) {
  // Iterative Tarjan must handle depth far beyond the call-stack limit.
  constexpr std::size_t n = 200000;
  g::Digraph d(n);
  for (std::size_t i = 0; i + 1 < n; ++i) d.add_edge(i, i + 1);
  const auto r = g::strongly_connected_components(d);
  EXPECT_EQ(r.component_count, n);
}

TEST(Scc, DeepCycleIsOneComponent) {
  constexpr std::size_t n = 100000;
  g::Digraph d(n);
  for (std::size_t i = 0; i < n; ++i) d.add_edge(i, (i + 1) % n);
  EXPECT_TRUE(g::is_strongly_connected(d));
}

}  // namespace
