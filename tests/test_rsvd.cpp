// Tests for the large-matrix characterization path: randomized top-k SVD
// (linalg::rsvd), the blocked Gram spectrum (blocked_singular_values), the
// tiled pool-parallel Sinkhorn (core::standardize_tiled), and the size
// dispatch in core::tma_detailed / core::affinity_analysis. The suites pin
// three properties the blocked path promises:
//
//   1. equivalence — small/medium sizes agree with the dense twins to
//      far tighter than the 1e-6 budget (dense-twin parity);
//   2. error bound — at the dispatch-threshold size (4096 x 256) the
//      blocked TMA stays within 1e-3 relative of the dense value;
//   3. determinism — the seeded sketch and fixed-order tile folds make
//      every result bitwise identical across worker-pool sizes.
//
// The whole binary runs under the rsvd_equiv ctest label (CI runs it in the
// sanitizer jobs too); the heavyweight threshold-size checks shrink under
// sanitizers, where each FLOP costs ~10-40x.
#include "linalg/rsvd.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <random>

#include "core/measures.hpp"
#include "core/standard_form.hpp"
#include "core/svd_analysis.hpp"
#include "linalg/matrix.hpp"
#include "linalg/qr.hpp"
#include "linalg/svd.hpp"
#include "parallel/thread_pool.hpp"

#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define HETERO_UNDER_SANITIZER 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define HETERO_UNDER_SANITIZER 1
#endif
#endif

namespace {

using hetero::ValueError;
using hetero::core::EcsMatrix;
using hetero::core::LargePathOptions;
using hetero::core::standardize;
using hetero::core::standardize_tiled;
using hetero::core::TmaOptions;
using hetero::linalg::blocked_singular_values;
using hetero::linalg::Matrix;
using hetero::linalg::max_abs_diff;
using hetero::linalg::rsvd;
using hetero::linalg::RsvdOptions;
using hetero::linalg::singular_values;
using hetero::par::ThreadPool;

Matrix random_positive(std::size_t rows, std::size_t cols, unsigned seed) {
  std::mt19937_64 rng(seed);
  std::lognormal_distribution<double> dist(0.0, 0.7);
  Matrix m(rows, cols, 0.0);
  for (double& x : m.data()) x = dist(rng);
  return m;
}

// A matrix with a planted exponentially decaying spectrum: rebuilt from the
// SVD of a random matrix with sigma_k = decay^k. Randomized SVD with power
// iterations recovers the head of such a spectrum to near machine
// precision, which is what the affinity-mode path relies on.
Matrix planted_decay(std::size_t rows, std::size_t cols, double decay,
                     unsigned seed) {
  const auto f = hetero::linalg::svd(random_positive(rows, cols, seed));
  Matrix scaled = f.u;
  for (std::size_t k = 0; k < f.singular_values.size(); ++k)
    scaled.scale_col(k, std::pow(decay, static_cast<double>(k)));
  return hetero::linalg::matmul(scaled, f.v.transposed());
}

double max_sigma_diff(const std::vector<double>& a,
                      const std::vector<double>& b, std::size_t count) {
  double err = 0.0;
  for (std::size_t i = 0; i < count; ++i)
    err = std::max(err, std::abs(a[i] - b[i]));
  return err;
}

// ------------------------------------------------------------------- rsvd

TEST(Rsvd, ExactWhenSketchSpansTheSpace) {
  // l = rank + oversample >= n: the sketch spans the whole row space, so
  // the "randomized" factorization is exact up to roundoff.
  const Matrix a = random_positive(64, 20, 1);
  RsvdOptions opts;
  opts.rank = 20;
  opts.oversample = 8;
  const auto rs = rsvd(a, opts);
  const auto dense = singular_values(a);
  ASSERT_EQ(rs.singular_values.size(), 20u);
  EXPECT_LT(max_sigma_diff(rs.singular_values, dense, 20), 1e-10);

  // Orthonormal factors and exact reconstruction.
  EXPECT_LT(max_abs_diff(hetero::linalg::matmul(rs.u.transposed(), rs.u),
                         Matrix::identity(20)),
            1e-12);
  EXPECT_LT(max_abs_diff(hetero::linalg::matmul(rs.v.transposed(), rs.v),
                         Matrix::identity(20)),
            1e-12);
  Matrix us = rs.u;
  for (std::size_t k = 0; k < 20; ++k)
    us.scale_col(k, rs.singular_values[k]);
  EXPECT_LT(max_abs_diff(hetero::linalg::matmul(us, rs.v.transposed()), a),
            1e-10);
}

TEST(Rsvd, WideInputIsTransposedInternally) {
  // Wide inputs run as the transposed tall problem with u/v swapped; both
  // orientations must report the same spectrum and reconstruct.
  const Matrix tall = random_positive(48, 16, 2);
  const Matrix wide = tall.transposed();
  RsvdOptions opts;
  opts.rank = 16;
  const auto rt = rsvd(tall, opts);
  const auto rw = rsvd(wide, opts);
  ASSERT_EQ(rt.singular_values.size(), rw.singular_values.size());
  EXPECT_LT(max_sigma_diff(rt.singular_values, rw.singular_values, 16),
            1e-10);
  EXPECT_EQ(rw.u.rows(), 16u);
  EXPECT_EQ(rw.v.rows(), 48u);
  Matrix us = rw.u;
  for (std::size_t k = 0; k < 16; ++k)
    us.scale_col(k, rw.singular_values[k]);
  EXPECT_LT(max_abs_diff(hetero::linalg::matmul(us, rw.v.transposed()), wide),
            1e-10);
}

TEST(Rsvd, HeadAccurateOnDecayingSpectrum) {
  // The truncated case (l < n): with a decaying spectrum and two power
  // iterations the head singular values are recovered to ~1e-9 relative.
  const Matrix a = planted_decay(120, 40, 0.6, 3);
  const auto dense = singular_values(a);
  RsvdOptions opts;
  opts.rank = 8;
  opts.oversample = 8;
  const auto rs = rsvd(a, opts);
  ASSERT_EQ(rs.singular_values.size(), 8u);
  for (std::size_t k = 0; k < 8; ++k)
    EXPECT_NEAR(rs.singular_values[k] / dense[k], 1.0, 1e-8) << "mode " << k;
}

TEST(Rsvd, BitwiseDeterministicAcrossThreadCounts) {
  const Matrix a = random_positive(300, 80, 4);
  ThreadPool p1(1), p2(2), p4(4);
  RsvdOptions o1, o2, o4;
  o1.rank = o2.rank = o4.rank = 8;
  o1.pool = &p1;
  o2.pool = &p2;
  o4.pool = &p4;
  const auto r1 = rsvd(a, o1);
  const auto r2 = rsvd(a, o2);
  const auto r4 = rsvd(a, o4);
  EXPECT_EQ(r1.singular_values, r2.singular_values);
  EXPECT_EQ(r1.singular_values, r4.singular_values);
  EXPECT_EQ(r1.u, r2.u);  // bit-identical factors, not just close
  EXPECT_EQ(r1.u, r4.u);
  EXPECT_EQ(r1.v, r2.v);
  EXPECT_EQ(r1.v, r4.v);
}

TEST(Rsvd, SeedSelectsTheSketch) {
  // Different seeds draw different Gaussian sketches; in the truncated
  // regime the results differ in the last bits while agreeing numerically.
  const Matrix a = planted_decay(120, 40, 0.6, 5);
  RsvdOptions oa, ob;
  oa.rank = ob.rank = 6;
  ob.seed = 0x9e3779b97f4a7c15ull;
  const auto ra = rsvd(a, oa);
  const auto rb = rsvd(a, ob);
  EXPECT_NE(ra.u, rb.u);
  for (std::size_t k = 0; k < 6; ++k)
    EXPECT_NEAR(ra.singular_values[k] / rb.singular_values[k], 1.0, 1e-7);
}

TEST(Rsvd, ValidatesInput) {
  EXPECT_THROW(rsvd(Matrix{}), ValueError);
  EXPECT_THROW(rsvd(Matrix{{1.0, std::nan("")}, {1.0, 1.0}}), ValueError);
  RsvdOptions zero_rank;
  zero_rank.rank = 0;
  EXPECT_THROW(rsvd(Matrix{{1.0, 2.0}, {3.0, 4.0}}, zero_rank), ValueError);
}

TEST(ThinQr, FactorsAreThinAndExact) {
  const Matrix a = random_positive(50, 12, 6);
  const auto f = hetero::linalg::thin_qr(a);
  EXPECT_EQ(f.q.rows(), 50u);
  EXPECT_EQ(f.q.cols(), 12u);
  EXPECT_EQ(f.r.rows(), 12u);
  EXPECT_LT(max_abs_diff(hetero::linalg::matmul(f.q.transposed(), f.q),
                         Matrix::identity(12)),
            1e-13);
  EXPECT_LT(max_abs_diff(hetero::linalg::matmul(f.q, f.r), a), 1e-12);
}

// ------------------------------------------------- blocked Gram spectrum

TEST(BlockedSpectrum, MatchesDenseOnStandardForms) {
  for (auto [t, m] : {std::pair<std::size_t, std::size_t>{96, 40},
                      std::pair<std::size_t, std::size_t>{40, 96},
                      std::pair<std::size_t, std::size_t>{200, 64}}) {
    const auto sf = standardize(random_positive(t, m, 7));
    ASSERT_TRUE(sf.converged);
    const auto blocked = blocked_singular_values(sf.standard);
    const auto dense = singular_values(sf.standard);
    ASSERT_EQ(blocked.size(), dense.size()) << t << "x" << m;
    // The PR's budget is 1e-6; the Gram route actually lands ~1e-13 on
    // standard forms (sigma_1 = 1 keeps the squaring loss harmless).
    EXPECT_LT(max_sigma_diff(blocked, dense, dense.size()), 1e-6)
        << t << "x" << m;
    EXPECT_NEAR(blocked.front(), 1.0, 1e-7) << t << "x" << m;
  }
}

TEST(BlockedSpectrum, BitwiseDeterministicAcrossThreadCounts) {
  const auto sf = standardize(random_positive(256, 96, 8));
  ThreadPool p1(1), p3(3), p6(6);
  const auto s1 = blocked_singular_values(sf.standard, {48, &p1});
  const auto s3 = blocked_singular_values(sf.standard, {48, &p3});
  const auto s6 = blocked_singular_values(sf.standard, {48, &p6});
  EXPECT_EQ(s1, s3);
  EXPECT_EQ(s1, s6);
}

TEST(BlockedSpectrum, ValidatesInput) {
  EXPECT_THROW(blocked_singular_values(Matrix{}), ValueError);
  EXPECT_THROW(blocked_singular_values(Matrix{{1.0, std::nan("")}}),
               ValueError);
}

// --------------------------------------------------------- tiled Sinkhorn

TEST(TiledSinkhorn, MatchesFusedStandardForm) {
  const Matrix ecs = random_positive(512, 96, 9);
  const auto fused = standardize(ecs);
  ThreadPool pool(4);
  const auto tiled = standardize_tiled(ecs, {}, pool);
  ASSERT_TRUE(fused.converged);
  ASSERT_TRUE(tiled.converged);
  // Tiled accumulation orders differ from the fused serial sweep, so the
  // forms agree to the Sinkhorn fixed point, not bitwise.
  EXPECT_LT(max_abs_diff(tiled.standard, fused.standard), 1e-8);
  EXPECT_EQ(tiled.iterations, fused.iterations);
}

TEST(TiledSinkhorn, BitwiseDeterministicAcrossThreadCountsAndTiles) {
  const Matrix ecs = random_positive(300, 70, 10);
  ThreadPool p1(1), p2(2), p5(5);
  const auto a = standardize_tiled(ecs, {}, p1);
  const auto b = standardize_tiled(ecs, {}, p2);
  const auto c = standardize_tiled(ecs, {}, p5);
  EXPECT_EQ(a.standard, b.standard);
  EXPECT_EQ(a.standard, c.standard);
  EXPECT_EQ(a.row_scale, b.row_scale);
  EXPECT_EQ(a.col_scale, c.col_scale);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.residual, c.residual);
}

TEST(TiledSinkhorn, HonorsTileHeight) {
  // Tile height changes the fold grouping but not the fixed point; a
  // degenerate 1-row tile and an everything-in-one tile both converge.
  const Matrix ecs = random_positive(64, 24, 11);
  ThreadPool pool(3);
  const auto whole = standardize_tiled(ecs, {}, pool, 1024);
  const auto rows = standardize_tiled(ecs, {}, pool, 1);
  ASSERT_TRUE(whole.converged);
  ASSERT_TRUE(rows.converged);
  EXPECT_LT(max_abs_diff(whole.standard, rows.standard), 1e-8);
}

// ------------------------------------------------------- dispatch parity

TEST(LargePathDispatch, SmallInputsKeepTheDensePathBitwise) {
  // Below the threshold nothing may change: the default-dispatch result is
  // bit-identical to a run with the blocked path disabled outright.
  const EcsMatrix ecs(random_positive(48, 16, 12));
  TmaOptions off;
  off.large.min_elements = 0;
  const auto dense = hetero::core::tma_detailed(ecs, {}, off);
  const auto dispatched = hetero::core::tma_detailed(ecs, {});
  EXPECT_FALSE(dispatched.used_blocked_path);
  EXPECT_EQ(dense.value, dispatched.value);
  EXPECT_EQ(dense.singular_values, dispatched.singular_values);
  EXPECT_EQ(dense.standard_form.standard, dispatched.standard_form.standard);
}

TEST(LargePathDispatch, BlockedTmaMatchesDenseAtMediumSize) {
  const EcsMatrix ecs(random_positive(1024, 96, 13));
  TmaOptions dense_opts;
  dense_opts.large.min_elements = 0;
  TmaOptions blocked_opts;
  blocked_opts.large.min_elements = 1;
  const auto dense = hetero::core::tma_detailed(ecs, {}, dense_opts);
  const auto blocked = hetero::core::tma_detailed(ecs, {}, blocked_opts);
  EXPECT_TRUE(blocked.used_blocked_path);
  EXPECT_TRUE(blocked.used_standard_form);
  ASSERT_EQ(blocked.singular_values.size(), dense.singular_values.size());
  EXPECT_NEAR(blocked.value / dense.value, 1.0, 1e-9);
}

TEST(LargePathDispatch, BlockedTmaWithinBudgetAtThresholdSize) {
  // The acceptance bound from the issue: at the dispatch-threshold size the
  // blocked TMA must stay within 1e-3 relative of the dense twin. Sanitizer
  // builds shrink the size (same code paths, ~20x cheaper).
#ifdef HETERO_UNDER_SANITIZER
  const std::size_t t = 1024, m = 128;
#else
  const std::size_t t = 4096, m = 256;
#endif
  const EcsMatrix ecs(random_positive(t, m, 14));
  TmaOptions dense_opts;
  dense_opts.large.min_elements = 0;
  const auto dense = hetero::core::tma_detailed(ecs, {}, dense_opts);
  const auto blocked = hetero::core::tma_detailed(ecs, {});
  EXPECT_EQ(blocked.used_blocked_path, t * m >= (std::size_t{1} << 20));
  if (!blocked.used_blocked_path) {
    TmaOptions force;
    force.large.min_elements = 1;
    const auto forced = hetero::core::tma_detailed(ecs, {}, force);
    EXPECT_NEAR(forced.value / dense.value, 1.0, 1e-3);
    return;
  }
  EXPECT_NEAR(blocked.value / dense.value, 1.0, 1e-3);
  EXPECT_NEAR(blocked.singular_values.front(), 1.0, 1e-7);
}

TEST(LargePathDispatch, BlockedCharacterizeDeterministicAcrossThreadCounts) {
  const EcsMatrix ecs(random_positive(512, 64, 15));
  ThreadPool p1(1), p4(4);
  TmaOptions a, b;
  a.large.min_elements = b.large.min_elements = 1;
  a.large.pool = &p1;
  b.large.pool = &p4;
  const auto ra = hetero::core::characterize(ecs, {}, a);
  const auto rb = hetero::core::characterize(ecs, {}, b);
  EXPECT_TRUE(ra.tma_detail.used_blocked_path);
  EXPECT_EQ(ra.tma_detail.value, rb.tma_detail.value);
  EXPECT_EQ(ra.tma_detail.singular_values, rb.tma_detail.singular_values);
  EXPECT_EQ(ra.tma_detail.standard_form.standard,
            rb.tma_detail.standard_form.standard);
}

TEST(LargePathDispatch, AffinityModesMatchDenseOnDecayingSpectrum) {
  // Mode sigmas and subspaces from the rsvd path vs the dense analysis, on
  // an environment with a genuine spectral gap (where modes are
  // well-defined; on a gapless random matrix the trailing modes mix).
  Matrix a = planted_decay(384, 48, 0.55, 16);
  for (double& x : a.data()) x = std::abs(x) + 0.05;  // ECS must be positive
  const EcsMatrix ecs(a);
  const auto dense = hetero::core::affinity_analysis(ecs, {}, 3);
  LargePathOptions lp;
  lp.min_elements = 1;
  const auto blocked = hetero::core::affinity_analysis(ecs, {}, 3, {}, lp);
  EXPECT_NEAR(blocked.tma / dense.tma, 1.0, 1e-9);
  ASSERT_EQ(blocked.modes.size(), dense.modes.size());
  for (std::size_t k = 0; k < dense.modes.size(); ++k) {
    EXPECT_NEAR(blocked.modes[k].sigma / dense.modes[k].sigma, 1.0, 1e-6)
        << "mode " << k;
    // Subspace agreement up to sign: |<u_dense, u_blocked>| ~= 1.
    double dot = 0.0;
    for (std::size_t i = 0; i < ecs.task_count(); ++i)
      dot += dense.modes[k].task_component[i] *
             blocked.modes[k].task_component[i];
    EXPECT_NEAR(std::abs(dot), 1.0, 1e-5) << "mode " << k;
  }
}

TEST(LargePathDispatch, AffinityAllModesRequestKeepsStrongest16) {
  const EcsMatrix ecs(random_positive(128, 48, 17));
  LargePathOptions lp;
  lp.min_elements = 1;
  const auto blocked = hetero::core::affinity_analysis(ecs, {}, 0, {}, lp);
  EXPECT_EQ(blocked.modes.size(), 16u);
  // The TMA still averages the whole spectrum, not just the kept modes.
  const auto dense = hetero::core::affinity_analysis(ecs, {}, 0);
  EXPECT_EQ(dense.modes.size(), 47u);
  EXPECT_NEAR(blocked.tma / dense.tma, 1.0, 1e-9);
}

// -------------------------------------------------- size-frontier smoke

TEST(SizeFrontier, BlockedCharacterizeAtThresholdScale) {
  // CI smoke (HETERO_SIZE_FRONTIER=1): one 4096 x 256 characterize through
  // the blocked path end to end, bounded wall clock. Skipped by default to
  // keep the everyday suite fast.
  if (std::getenv("HETERO_SIZE_FRONTIER") == nullptr)
    GTEST_SKIP() << "set HETERO_SIZE_FRONTIER=1 to run";
  const EcsMatrix ecs(random_positive(4096, 256, 18));
  const auto start = std::chrono::steady_clock::now();
  const auto report = hetero::core::characterize(ecs);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_TRUE(report.tma_detail.used_blocked_path);
  EXPECT_TRUE(report.tma_detail.used_standard_form);
  EXPECT_NEAR(report.tma_detail.singular_values.front(), 1.0, 1e-7);
  EXPECT_GT(report.tma_detail.value, 0.0);
  EXPECT_LT(seconds, 30.0) << "blocked characterize too slow";
}

}  // namespace
