#include "linalg/matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

namespace {

using hetero::DimensionError;
using hetero::ValueError;
using hetero::linalg::Matrix;

TEST(Matrix, DefaultIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(Matrix, FillConstructor) {
  Matrix m(2, 3, 7.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 3; ++j) EXPECT_EQ(m(i, j), 7.5);
}

TEST(Matrix, MixedZeroDimensionThrows) {
  EXPECT_THROW(Matrix(0, 3), DimensionError);
  EXPECT_THROW(Matrix(3, 0), DimensionError);
}

TEST(Matrix, InitializerList) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m(0, 0), 1);
  EXPECT_EQ(m(1, 2), 6);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1, 2}, {3}}), DimensionError);
}

TEST(Matrix, FromRowMajor) {
  const double data[] = {1, 2, 3, 4, 5, 6};
  Matrix m = Matrix::from_row_major(3, 2, data);
  EXPECT_EQ(m(0, 0), 1);
  EXPECT_EQ(m(2, 1), 6);
  EXPECT_THROW(Matrix::from_row_major(2, 2, data), DimensionError);
}

TEST(Matrix, Identity) {
  Matrix i = Matrix::identity(3);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c)
      EXPECT_EQ(i(r, c), r == c ? 1.0 : 0.0);
}

TEST(Matrix, Diagonal) {
  const double d[] = {2, 5};
  Matrix m = Matrix::diagonal(d);
  EXPECT_EQ(m(0, 0), 2);
  EXPECT_EQ(m(1, 1), 5);
  EXPECT_EQ(m(0, 1), 0);
}

TEST(Matrix, AtBoundsChecked) {
  Matrix m(2, 2, 0.0);
  EXPECT_NO_THROW(m.at(1, 1));
  EXPECT_THROW(m.at(2, 0), DimensionError);
  EXPECT_THROW(m.at(0, 2), DimensionError);
}

TEST(Matrix, RowSpanMutation) {
  Matrix m{{1, 2}, {3, 4}};
  auto r = m.row(1);
  r[0] = 9;
  EXPECT_EQ(m(1, 0), 9);
  EXPECT_THROW(m.row(2), DimensionError);
}

TEST(Matrix, ColCopy) {
  Matrix m{{1, 2}, {3, 4}};
  const auto c = m.col(1);
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c[0], 2);
  EXPECT_EQ(c[1], 4);
}

TEST(Matrix, RowAndColSums) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  EXPECT_DOUBLE_EQ(m.row_sum(0), 6);
  EXPECT_DOUBLE_EQ(m.col_sum(2), 9);
  const auto rs = m.row_sums();
  const auto cs = m.col_sums();
  EXPECT_DOUBLE_EQ(rs[1], 15);
  EXPECT_DOUBLE_EQ(cs[0], 5);
  EXPECT_DOUBLE_EQ(m.total(), 21);
}

TEST(Matrix, MinMax) {
  Matrix m{{3, -1}, {2, 8}};
  EXPECT_EQ(m.min(), -1);
  EXPECT_EQ(m.max(), 8);
  EXPECT_THROW(Matrix().min(), ValueError);
}

TEST(Matrix, Transposed) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t(2, 1), 6);
  EXPECT_EQ(t.transposed(), m);
}

TEST(Matrix, Submatrix) {
  Matrix m{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}};
  const std::size_t rows[] = {2, 0};
  const std::size_t cols[] = {1};
  Matrix s = m.submatrix(rows, cols);
  EXPECT_EQ(s.rows(), 2u);
  EXPECT_EQ(s.cols(), 1u);
  EXPECT_EQ(s(0, 0), 8);
  EXPECT_EQ(s(1, 0), 2);
  const std::size_t bad[] = {5};
  EXPECT_THROW(m.submatrix(bad, cols), DimensionError);
}

TEST(Matrix, Permuted) {
  Matrix m{{1, 2}, {3, 4}};
  const std::size_t rp[] = {1, 0};
  const std::size_t cp[] = {0, 1};
  Matrix p = m.permuted(rp, cp);
  EXPECT_EQ(p(0, 0), 3);
  EXPECT_EQ(p(1, 1), 2);
  const std::size_t wrong[] = {0};
  EXPECT_THROW(m.permuted(wrong, cp), DimensionError);
}

TEST(Matrix, TransformAndScale) {
  Matrix m{{1, 2}, {3, 4}};
  m.transform([](double x) { return 2 * x; });
  EXPECT_EQ(m(1, 1), 8);
  m.scale_row(0, 10);
  EXPECT_EQ(m(0, 1), 40);
  EXPECT_EQ(m(1, 0), 6);
  m.scale_col(0, 0.5);
  EXPECT_EQ(m(0, 0), 10);
  EXPECT_EQ(m(1, 0), 3);
}

TEST(Matrix, Predicates) {
  EXPECT_TRUE((Matrix{{1, 2}, {3, 4}}).all_positive());
  EXPECT_FALSE((Matrix{{1, 0}, {3, 4}}).all_positive());
  EXPECT_TRUE((Matrix{{1, 0}, {3, 4}}).all_nonnegative());
  EXPECT_FALSE((Matrix{{1, -1}, {3, 4}}).all_nonnegative());
  EXPECT_EQ((Matrix{{1, 0}, {0, 4}}).zero_count(), 2u);
  Matrix inf{{1, std::numeric_limits<double>::infinity()}};
  EXPECT_TRUE(inf.has_nonfinite());
  Matrix nan{{1, std::nan("")}};
  EXPECT_TRUE(nan.has_nonfinite());
  EXPECT_FALSE((Matrix{{1, 2}}).has_nonfinite());
}

TEST(Matrix, Arithmetic) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{10, 20}, {30, 40}};
  EXPECT_EQ((a + b)(1, 1), 44);
  EXPECT_EQ((b - a)(0, 0), 9);
  EXPECT_EQ((a * 2.0)(0, 1), 4);
  EXPECT_EQ((2.0 * a)(0, 1), 4);
  EXPECT_EQ((b / 10.0)(1, 0), 3);
  EXPECT_THROW(a += Matrix(3, 3), DimensionError);
  EXPECT_THROW(a /= 0.0, ValueError);
}

TEST(Matrix, Matmul) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5, 6}, {7, 8}};
  Matrix c = matmul(a, b);
  EXPECT_EQ(c(0, 0), 19);
  EXPECT_EQ(c(0, 1), 22);
  EXPECT_EQ(c(1, 0), 43);
  EXPECT_EQ(c(1, 1), 50);
  EXPECT_THROW(matmul(a, Matrix(3, 2)), DimensionError);
}

TEST(Matrix, MatmulRectangular) {
  Matrix a{{1, 0, 2}};           // 1x3
  Matrix b{{1}, {2}, {3}};       // 3x1
  Matrix c = matmul(a, b);       // 1x1
  EXPECT_EQ(c(0, 0), 7);
  Matrix d = matmul(b, a);       // 3x3
  EXPECT_EQ(d(2, 2), 6);
}

TEST(Matrix, Matvec) {
  Matrix a{{1, 2}, {3, 4}};
  const double x[] = {1, -1};
  const auto y = matvec(a, x);
  EXPECT_EQ(y[0], -1);
  EXPECT_EQ(y[1], -1);
  const double bad[] = {1, 2, 3};
  EXPECT_THROW(matvec(a, bad), DimensionError);
}

TEST(Matrix, GramMatchesExplicitProduct) {
  Matrix a{{1, 2, 0}, {3, 4, 5}};
  Matrix g = gram(a);
  Matrix expected = matmul(a.transposed(), a);
  EXPECT_TRUE(approx_equal(g, expected, 1e-12));
}

TEST(Matrix, MaxAbsDiffAndApproxEqual) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{1, 2.25}, {3, 4}};
  EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 0.25);
  EXPECT_TRUE(approx_equal(a, b, 0.3));
  EXPECT_FALSE(approx_equal(a, b, 0.2));
  EXPECT_FALSE(approx_equal(a, Matrix(3, 3), 10.0));
}

TEST(Matrix, FrobeniusNorm) {
  Matrix m{{3, 4}};
  EXPECT_DOUBLE_EQ(frobenius_norm(m), 5.0);
}

TEST(Matrix, StreamOutput) {
  std::ostringstream os;
  os << Matrix{{1, 2}};
  EXPECT_NE(os.str().find("1x2"), std::string::npos);
}

TEST(Matrix, EqualityIsValueBased) {
  Matrix a{{1, 2}};
  Matrix b{{1, 2}};
  Matrix c{{1, 3}};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

}  // namespace
