#include "sched/robustness.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "etcgen/range_based.hpp"
#include "sched/heuristics.hpp"

namespace {

using hetero::ValueError;
using hetero::core::EtcMatrix;
using hetero::linalg::Matrix;
namespace sc = hetero::sched;

TEST(Robustness, RadiusFormulaByHand) {
  // Machine 1: two tasks totalling 6; machine 2: one task of 4. tau = 10.
  // r_1 = (10 - 6)/sqrt(2); r_2 = (10 - 4)/sqrt(1).
  EtcMatrix etc(Matrix{{2, 9}, {4, 9}, {9, 4}});
  const sc::TaskList tasks{0, 1, 2};
  const sc::Assignment assignment{0, 0, 1};
  const auto r = sc::makespan_robustness(etc, tasks, assignment, 10.0);
  EXPECT_NEAR(r.radius[0], 4.0 / std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(r.radius[1], 6.0, 1e-12);
  EXPECT_EQ(r.critical_machine, 0u);
  EXPECT_NEAR(r.metric, 4.0 / std::sqrt(2.0), 1e-12);
}

TEST(Robustness, EmptyMachineGetsTau) {
  EtcMatrix etc(Matrix{{1, 1}, {1, 1}});
  const auto r =
      sc::makespan_robustness(etc, {0, 1}, {0, 0}, 5.0);
  EXPECT_NEAR(r.radius[1], 5.0, 1e-12);
}

TEST(Robustness, TauMustExceedMakespan) {
  EtcMatrix etc(Matrix{{3, 3}});
  EXPECT_THROW(sc::makespan_robustness(etc, {0}, {0}, 3.0), ValueError);
  EXPECT_NO_THROW(sc::makespan_robustness(etc, {0}, {0}, 3.1));
}

TEST(Robustness, TauWithSlack) {
  EtcMatrix etc(Matrix{{4, 8}});
  EXPECT_NEAR(sc::tau_with_slack(etc, {0}, {0}, 0.25), 5.0, 1e-12);
  EXPECT_THROW(sc::tau_with_slack(etc, {0}, {0}, 0.0), ValueError);
}

TEST(Robustness, BalancedAllocationIsMoreRobust) {
  // Same tau: spreading the load leaves more slack everywhere.
  EtcMatrix etc(Matrix{{2, 2}, {2, 2}});
  const sc::TaskList tasks{0, 1};
  const double tau = 6.0;
  const auto balanced = sc::makespan_robustness(etc, tasks, {0, 1}, tau);
  const auto piled = sc::makespan_robustness(etc, tasks, {0, 0}, tau);
  EXPECT_GT(balanced.metric, piled.metric);
}

TEST(Robustness, ScalesWithSlack) {
  hetero::etcgen::Rng rng = hetero::etcgen::make_rng(3);
  hetero::etcgen::RangeBasedOptions opts;
  opts.tasks = 10;
  opts.machines = 4;
  const auto etc = hetero::etcgen::generate_range_based(opts, rng);
  const auto tasks = sc::one_of_each(etc);
  const auto a = sc::map_min_min(etc, tasks);
  const double t1 = sc::tau_with_slack(etc, tasks, a, 0.1);
  const double t2 = sc::tau_with_slack(etc, tasks, a, 0.5);
  EXPECT_LT(sc::makespan_robustness(etc, tasks, a, t1).metric,
            sc::makespan_robustness(etc, tasks, a, t2).metric);
}

TEST(Metrics, UtilizationBounds) {
  EtcMatrix etc(Matrix{{2, 2}, {2, 2}});
  // Perfectly balanced: utilization 1.
  EXPECT_NEAR(sc::utilization(etc, {0, 1}, {0, 1}), 1.0, 1e-12);
  // Everything on one machine of two: utilization 1/2.
  EXPECT_NEAR(sc::utilization(etc, {0, 1}, {0, 0}), 0.5, 1e-12);
}

TEST(Metrics, LoadImbalance) {
  EtcMatrix etc(Matrix{{2, 2}, {2, 2}});
  EXPECT_NEAR(sc::load_imbalance(etc, {0, 1}, {0, 1}), 0.0, 1e-12);
  // Loads {4, 0}: mean 2, max 4 -> imbalance 1.
  EXPECT_NEAR(sc::load_imbalance(etc, {0, 1}, {0, 0}), 1.0, 1e-12);
}

TEST(MaxRobustnessMapper, BeatsMinMinOnRobustness) {
  hetero::etcgen::Rng rng = hetero::etcgen::make_rng(11);
  hetero::etcgen::RangeBasedOptions opts;
  opts.tasks = 12;
  opts.machines = 4;
  const auto etc = hetero::etcgen::generate_range_based(opts, rng);
  const auto tasks = sc::one_of_each(etc);
  const auto minmin = sc::map_min_min(etc, tasks);
  const double tau = sc::tau_with_slack(etc, tasks, minmin, 0.5);
  const auto robust = sc::map_max_robustness(etc, tasks, tau);
  EXPECT_GE(sc::makespan_robustness(etc, tasks, robust, tau).metric,
            sc::makespan_robustness(etc, tasks, minmin, tau).metric - 1e-9);
  // Makespan must stay under tau by construction.
  EXPECT_LT(sc::makespan(etc, tasks, robust), tau);
}

TEST(MaxRobustnessMapper, RespectsTau) {
  EtcMatrix etc(Matrix{{3, 3}, {3, 3}});
  // tau = 4: only one task fits per machine.
  const auto a = sc::map_max_robustness(etc, {0, 1}, 4.0);
  EXPECT_NE(a[0], a[1]);
  // tau = 5 cannot host 4 tasks of size 3 on 2 machines.
  EXPECT_THROW(sc::map_max_robustness(etc, {0, 0, 1, 1}, 5.0),
               hetero::ValueError);
}

TEST(MaxRobustnessMapper, SkipsIncapableMachines) {
  EtcMatrix etc(
      Matrix{{1, std::numeric_limits<double>::infinity()}, {1, 1}});
  const auto a = sc::map_max_robustness(etc, {0, 1}, 10.0);
  EXPECT_EQ(a[0], 0u);
  EXPECT_FALSE(std::isinf(sc::makespan(etc, {0, 1}, a)));
}

TEST(MaxRobustnessMapper, ValidatesTau) {
  EtcMatrix etc(Matrix{{1, 1}});
  EXPECT_THROW(sc::map_max_robustness(etc, {0}, 0.0), ValueError);
  EXPECT_THROW(sc::map_max_robustness(
                   etc, {0}, std::numeric_limits<double>::infinity()),
               ValueError);
}

TEST(Metrics, MinMinBeatsMetOnUtilization) {
  hetero::etcgen::Rng rng = hetero::etcgen::make_rng(5);
  hetero::etcgen::RangeBasedOptions opts;
  opts.tasks = 20;
  opts.machines = 5;
  opts.consistency = hetero::etcgen::Consistency::consistent;
  const auto etc = hetero::etcgen::generate_range_based(opts, rng);
  const auto tasks = sc::one_of_each(etc);
  // On consistent matrices MET piles everything onto one machine.
  EXPECT_GT(sc::utilization(etc, tasks, sc::map_min_min(etc, tasks)),
            sc::utilization(etc, tasks, sc::map_met(etc, tasks)));
}

}  // namespace
