#include "graph/structure.hpp"

#include <gtest/gtest.h>

#include "linalg/matrix.hpp"

namespace {

using hetero::ValueError;
namespace g = hetero::graph;
using hetero::linalg::Matrix;

// The paper's eq. 10 matrix, reconstructed from its textual properties:
// four nonzero entries, second row and third column sum to 2, others to 1,
// decomposable by moving the last column to the front (eq. 12).
Matrix eq10() { return Matrix{{0, 0, 1}, {1, 0, 1}, {0, 1, 0}}; }

TEST(Support, PositiveMatrixHasEverything) {
  const Matrix m{{1, 2}, {3, 4}};
  EXPECT_TRUE(g::has_support(m));
  EXPECT_TRUE(g::has_total_support(m));
  EXPECT_TRUE(g::is_fully_indecomposable(m));
  EXPECT_TRUE(g::is_sinkhorn_normalizable(m));
}

TEST(Support, IdentityHasTotalSupportButIsDecomposable) {
  const Matrix i = Matrix::identity(3);
  EXPECT_TRUE(g::has_support(i));
  EXPECT_TRUE(g::has_total_support(i));
  // The paper notes diagonal matrices are decomposable (block form of
  // eq. 11) yet still normalizable: indecomposability is sufficient, not
  // necessary.
  EXPECT_FALSE(g::is_fully_indecomposable(i));
  EXPECT_TRUE(g::is_sinkhorn_normalizable(i));
}

TEST(Support, TriangularHasSupportOnly) {
  const Matrix t{{1, 1}, {0, 1}};
  EXPECT_TRUE(g::has_support(t));
  EXPECT_FALSE(g::has_total_support(t));
  EXPECT_FALSE(g::is_fully_indecomposable(t));
  EXPECT_FALSE(g::is_sinkhorn_normalizable(t));
}

TEST(Support, NoSupportWithoutZeroLines) {
  // Rows 0-2 live entirely in columns 0-1: Hall violation, yet no all-zero
  // row or column.
  const Matrix m{{1, 1, 0, 0}, {1, 1, 0, 0}, {1, 1, 0, 0}, {0, 0, 1, 1}};
  EXPECT_FALSE(g::has_support(m));
  EXPECT_FALSE(g::has_total_support(m));
  EXPECT_FALSE(g::is_fully_indecomposable(m));
  EXPECT_FALSE(g::is_sinkhorn_normalizable(m));
  EXPECT_FALSE(g::support_core(m).has_value());
}

TEST(Support, Eq10MatrixClassification) {
  const Matrix m = eq10();
  EXPECT_TRUE(g::has_support(m));
  EXPECT_FALSE(g::has_total_support(m));
  EXPECT_FALSE(g::is_fully_indecomposable(m));
  EXPECT_FALSE(g::is_sinkhorn_normalizable(m));
}

TEST(Support, Eq10SupportCoreIsPermutation) {
  const auto core = g::support_core(eq10());
  ASSERT_TRUE(core.has_value());
  // Entry (1, 2) is the only one off every positive diagonal.
  EXPECT_EQ((*core)(1, 2), 0.0);
  EXPECT_EQ((*core)(0, 2), 1.0);
  EXPECT_EQ((*core)(1, 0), 1.0);
  EXPECT_EQ((*core)(2, 1), 1.0);
  EXPECT_TRUE(g::has_total_support(*core));
}

TEST(Support, SupportCoreOfTotalSupportMatrixIsUnchanged) {
  const Matrix m{{1, 2}, {3, 4}};
  const auto core = g::support_core(m);
  ASSERT_TRUE(core.has_value());
  EXPECT_EQ(*core, m);
}

TEST(Support, RejectsNonSquare) {
  const Matrix r{{1, 2, 3}, {4, 5, 6}};
  EXPECT_THROW(g::has_support(r), ValueError);
  EXPECT_THROW(g::has_total_support(r), ValueError);
  EXPECT_THROW(g::is_fully_indecomposable(r), ValueError);
}

TEST(Support, RejectsNegativeEntries) {
  EXPECT_THROW(g::has_support(Matrix{{1, -1}, {1, 1}}), ValueError);
}

TEST(FullIndecomposability, AllOnesIsFullyIndecomposable) {
  EXPECT_TRUE(g::is_fully_indecomposable(Matrix(3, 3, 1.0)));
}

TEST(FullIndecomposability, OneByOne) {
  EXPECT_TRUE(g::is_fully_indecomposable(Matrix{{2}}));
  EXPECT_FALSE(g::is_fully_indecomposable(Matrix{{0}}));
}

TEST(FullIndecomposability, BlockDiagonalIsDecomposable) {
  const Matrix m{{1, 1, 0}, {1, 1, 0}, {0, 0, 1}};
  EXPECT_TRUE(g::has_total_support(m));
  EXPECT_FALSE(g::is_fully_indecomposable(m));
  EXPECT_TRUE(g::is_sinkhorn_normalizable(m));  // total support suffices
}

TEST(FullIndecomposability, CirculantIsFullyIndecomposable) {
  // Each row has two adjacent ones: strongly connected pattern.
  const Matrix m{{1, 1, 0}, {0, 1, 1}, {1, 0, 1}};
  EXPECT_TRUE(g::is_fully_indecomposable(m));
}

TEST(FullIndecomposability, RectangularAllPositive) {
  EXPECT_TRUE(g::is_fully_indecomposable_rect(Matrix(2, 4, 1.0)));
  EXPECT_TRUE(g::is_fully_indecomposable_rect(Matrix(4, 2, 1.0)));
}

TEST(FullIndecomposability, RectangularWithBadSubmatrix) {
  // The 2x2 submatrix of columns {1, 2} is [[1,0],[0,1]]: decomposable.
  const Matrix m{{1, 1, 0}, {1, 0, 1}};
  EXPECT_FALSE(g::is_fully_indecomposable_rect(m));
}

TEST(FullIndecomposability, RectangularGuardThrows) {
  const Matrix wide(2, 30, 1.0);
  EXPECT_THROW(g::is_fully_indecomposable_rect(wide, 10), ValueError);
}

TEST(SinkhornNormalizable, RectangularPositive) {
  EXPECT_TRUE(g::is_sinkhorn_normalizable(Matrix(3, 5, 2.0)));
}

TEST(SinkhornNormalizable, RectangularWithBlockedPattern) {
  // Tiled square of this pattern lacks total support: entry (0,1) is off
  // every positive diagonal in the 2x2 case already.
  const Matrix m{{1, 1}, {0, 1}};
  EXPECT_FALSE(g::is_sinkhorn_normalizable(m));
  // In the 4x4 tiling of this 2x4 pattern, entry (0,1) lies on no positive
  // diagonal (both copies of row 2 compete for column 3), so no exact
  // standard form exists.
  const Matrix r{{1, 1, 1, 1}, {0, 1, 0, 1}};
  EXPECT_FALSE(g::is_sinkhorn_normalizable(r));
  // Its support core exists, though: the limit of the iteration is defined.
  EXPECT_TRUE(g::support_core(r).has_value());
}

TEST(BlockTriangularForm, FullyIndecomposableIsOneBlock) {
  const auto form = g::block_triangular_form(Matrix(3, 3, 1.0));
  ASSERT_TRUE(form.has_value());
  EXPECT_EQ(form->block_sizes, (std::vector<std::size_t>{3}));
}

TEST(BlockTriangularForm, NoSupportReturnsNullopt) {
  const Matrix m{{1, 1, 0, 0}, {1, 1, 0, 0}, {1, 1, 0, 0}, {0, 0, 1, 1}};
  EXPECT_FALSE(g::block_triangular_form(m).has_value());
}

TEST(BlockTriangularForm, ExposesLowerTriangularBlocks) {
  const Matrix m = eq10();
  const auto form = g::block_triangular_form(m);
  ASSERT_TRUE(form.has_value());
  const Matrix p = m.permuted(form->row_perm, form->col_perm);

  // Every diagonal entry positive, and zero block above the diagonal blocks.
  std::size_t offset = 0;
  for (const std::size_t size : form->block_sizes) {
    for (std::size_t i = offset; i < offset + size; ++i) {
      EXPECT_GT(p(i, i), 0.0);
      for (std::size_t j = offset + size; j < p.cols(); ++j)
        EXPECT_EQ(p(i, j), 0.0) << "nonzero above block at (" << i << "," << j
                                << ")";
    }
    offset += size;
  }
  EXPECT_GT(form->block_sizes.size(), 1u);  // eq. 10 is decomposable
}

TEST(BlockTriangularForm, BlockDiagonalInput) {
  const Matrix m{{0, 0, 1}, {1, 1, 0}, {1, 1, 0}};
  const auto form = g::block_triangular_form(m);
  ASSERT_TRUE(form.has_value());
  std::size_t total = 0;
  for (std::size_t s : form->block_sizes) total += s;
  EXPECT_EQ(total, 3u);
  EXPECT_EQ(form->block_sizes.size(), 2u);
}

}  // namespace
