// Streaming service tests: the subscribe/update request kinds end to end —
// session state machine, equivalence with a directly-driven
// core::MeasureView, 400s for sessionless front ends, byte-identical
// responses across worker thread counts, and memo/cache bypass through the
// epoll event loop over a real socket. Runs under the `stream_equiv` ctest
// label (TSan in CI).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "core/measure_view.hpp"
#include "etcgen/range_based.hpp"
#include "etcgen/rng.hpp"
#include "io/json.hpp"
#include "svc/event_loop.hpp"
#include "svc/server.hpp"
#include "svc/session.hpp"

namespace {

namespace svc = hetero::svc;
namespace io = hetero::io;
using hetero::core::EtcMatrix;

EtcMatrix test_matrix(std::size_t tasks, std::size_t machines,
                      std::uint64_t seed) {
  hetero::etcgen::Rng rng(seed);
  hetero::etcgen::RangeBasedOptions options;
  options.tasks = tasks;
  options.machines = machines;
  return hetero::etcgen::generate_range_based(options, rng);
}

std::string subscribe_line(const EtcMatrix& etc,
                           const std::string& extra = {}) {
  return "{\"kind\":\"subscribe\"" + extra + ",\"etc\":" + io::to_json(etc) +
         "}";
}

std::string update_line(const std::string& deltas) {
  return "{\"kind\":\"update\"," + deltas + "}";
}

bool is_ok(const std::string& response) {
  return response.find("\"ok\":true") != std::string::npos;
}

bool is_error(const std::string& response, int code) {
  return response.find("\"ok\":false") != std::string::npos &&
         response.find("\"code\":" + std::to_string(code)) !=
             std::string::npos;
}

/// The scripted session every equivalence test replays: subscribe, entry
/// revisions, structural churn, and noisy observations.
std::vector<std::string> scripted_session(const EtcMatrix& etc) {
  return {
      subscribe_line(etc),
      update_line("\"set\":[{\"task\":0,\"machine\":1,\"etc\":2.5},"
                  "{\"task\":3,\"machine\":2,\"etc\":0.75}]"),
      update_line("\"add_tasks\":[[1.0,2.0,3.0,4.0]]"),
      update_line("\"remove_machines\":[1],"
                  "\"add_machines\":[[0.5,1.5,2.5,3.5,4.5,5.5,6.5,7.5,"
                  "8.5,9.5]]"),
      update_line("\"observe\":[{\"task\":1,\"machine\":0,\"runtime\":9.0},"
                  "{\"task\":1,\"machine\":0,\"runtime\":9.5}]"),
      update_line("\"remove_tasks\":[4]"),
  };
}

TEST(SvcStream, SubscribeThenUpdateMatchesDirectView) {
  svc::Server server;
  svc::StreamSession session;
  const EtcMatrix etc = test_matrix(8, 4, 11);

  const std::string sub = server.handle(subscribe_line(etc), &session);
  ASSERT_TRUE(is_ok(sub)) << sub;
  EXPECT_NE(sub.find("\"version\":0"), std::string::npos) << sub;
  EXPECT_NE(sub.find("\"tasks\":8"), std::string::npos);
  EXPECT_NE(sub.find("\"machines\":4"), std::string::npos);

  // Twin view driven directly through the core API with the same deltas,
  // batched exactly as the session batches a "set" list: the service
  // response must embed its exact measure bytes.
  hetero::core::MeasureView twin(etc.to_ecs().values());
  const std::vector<hetero::core::CellDelta> deltas = {
      {0, 1, 1.0 / 2.5}, {3, 2, 1.0 / 0.75}};
  twin.set_entries(deltas);
  const std::string upd = server.handle(
      update_line("\"set\":[{\"task\":0,\"machine\":1,\"etc\":2.5},"
                  "{\"task\":3,\"machine\":2,\"etc\":0.75}]"),
      &session);
  ASSERT_TRUE(is_ok(upd)) << upd;
  EXPECT_NE(upd.find("\"measures\":" + io::to_json(twin.current())),
            std::string::npos)
      << upd;
  EXPECT_NE(upd.find("\"version\":1"), std::string::npos) << upd;
}

TEST(SvcStream, SessionKindsWithoutSessionAre400) {
  svc::Server server;
  const EtcMatrix etc = test_matrix(4, 3, 7);
  EXPECT_TRUE(is_error(server.handle(subscribe_line(etc)), 400));
  EXPECT_TRUE(is_error(
      server.handle(update_line("\"set\":[{\"task\":0,\"machine\":0,"
                                "\"etc\":1.0}]")),
      400));
}

TEST(SvcStream, UpdateBeforeSubscribeIs400) {
  svc::Server server;
  svc::StreamSession session;
  EXPECT_FALSE(session.active());
  const std::string got = server.handle(
      update_line("\"set\":[{\"task\":0,\"machine\":0,\"etc\":1.0}]"),
      &session);
  EXPECT_TRUE(is_error(got, 400)) << got;
  EXPECT_NE(got.find("subscribe"), std::string::npos) << got;
}

TEST(SvcStream, InvalidDeltasAre400AndSessionSurvives) {
  svc::Server server;
  svc::StreamSession session;
  const EtcMatrix etc = test_matrix(4, 3, 19);
  ASSERT_TRUE(is_ok(server.handle(subscribe_line(etc), &session)));

  // Out-of-range index, non-positive value, non-finite subscribe matrix.
  EXPECT_TRUE(is_error(
      server.handle(update_line("\"set\":[{\"task\":9,\"machine\":0,"
                                "\"etc\":1.0}]"),
                    &session),
      400));
  EXPECT_TRUE(is_error(
      server.handle(update_line("\"set\":[{\"task\":0,\"machine\":0,"
                                "\"etc\":-1.0}]"),
                    &session),
      400));
  // Removing the last rows one past the end.
  EXPECT_TRUE(is_error(
      server.handle(update_line("\"remove_tasks\":[0,0,0,0]"), &session),
      400));

  // The session is still alive and consistent after every rejection.
  const std::string ok = server.handle(
      update_line("\"set\":[{\"task\":0,\"machine\":0,\"etc\":1.25}]"),
      &session);
  EXPECT_TRUE(is_ok(ok)) << ok;
}

TEST(SvcStream, ByteIdenticalAcrossThreadCounts) {
  const EtcMatrix etc = test_matrix(9, 4, 42);
  const std::vector<std::string> script = scripted_session(etc);
  std::vector<std::vector<std::string>> runs;
  for (const std::size_t threads : {1u, 2u, 4u}) {
    svc::ServerOptions options;
    options.threads = threads;
    svc::Server server(options);
    svc::StreamSession session;
    std::vector<std::string> responses;
    for (const std::string& line : script)
      responses.push_back(server.handle(line, &session));
    for (const std::string& r : responses) ASSERT_TRUE(is_ok(r)) << r;
    runs.push_back(std::move(responses));
  }
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(runs[0], runs[2]);
}

TEST(SvcStream, ServeStreamKeepsOneSession) {
  svc::Server server;
  const EtcMatrix etc = test_matrix(6, 3, 23);
  std::istringstream in(
      subscribe_line(etc) + "\n" +
      update_line("\"set\":[{\"task\":1,\"machine\":1,\"etc\":3.0}]") + "\n" +
      update_line("\"observe\":[{\"task\":0,\"machine\":0,"
                  "\"runtime\":5.0}]") +
      "\n");
  std::ostringstream out;
  server.serve_stream(in, out);

  std::istringstream lines(out.str());
  std::string line;
  std::vector<std::string> responses;
  while (std::getline(lines, line)) responses.push_back(line);
  ASSERT_EQ(responses.size(), 3u);
  for (const std::string& r : responses) EXPECT_TRUE(is_ok(r)) << r;
  EXPECT_NE(responses[1].find("\"version\":1"), std::string::npos);
  EXPECT_NE(responses[2].find("\"version\":2"), std::string::npos);
}

// --- Event-loop (epoll) front end over real sockets ---------------------

/// Minimal blocking NDJSON client (same shape as the async suite's).
class TestClient {
 public:
  explicit TestClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ = fd_ >= 0 &&
                 ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                           sizeof addr) == 0;
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  TestClient(const TestClient&) = delete;
  TestClient& operator=(const TestClient&) = delete;

  bool connected() const { return connected_; }

  bool send_all(std::string_view data) {
    std::size_t off = 0;
    while (off < data.size()) {
      const auto n = ::send(fd_, data.data() + off, data.size() - off,
                            MSG_NOSIGNAL);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  std::optional<std::string> recv_line() {
    while (true) {
      const auto pos = buffer_.find('\n');
      if (pos != std::string::npos) {
        std::string line = buffer_.substr(0, pos);
        buffer_.erase(0, pos + 1);
        return line;
      }
      char chunk[4096];
      const auto n = ::recv(fd_, chunk, sizeof chunk, 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return std::nullopt;
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  std::string buffer_;
};

std::optional<std::string> roundtrip(TestClient& client,
                                     const std::string& line) {
  if (!client.send_all(line + "\n")) return std::nullopt;
  return client.recv_line();
}

TEST(SvcStream, EventLoopSessionBypassesMemoAndCache) {
  svc::Server server;
  svc::EventLoopServer loop(server);
  std::ostringstream log;
  ASSERT_TRUE(loop.start(log));

  TestClient client(loop.port());
  ASSERT_TRUE(client.connected());
  const EtcMatrix etc = test_matrix(6, 3, 29);
  const auto sub = roundtrip(client, subscribe_line(etc));
  ASSERT_TRUE(sub.has_value());
  EXPECT_TRUE(is_ok(*sub)) << *sub;

  // Two byte-identical observe updates: a memoizing front end would replay
  // the first response, but session responses must never be memoized — the
  // estimator mean moves on each observation, so the responses differ.
  const std::string line = update_line(
      "\"observe\":[{\"task\":0,\"machine\":0,\"runtime\":50.0}]");
  const auto first = roundtrip(client, line);
  const auto second = roundtrip(client, line);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_TRUE(is_ok(*first)) << *first;
  EXPECT_TRUE(is_ok(*second)) << *second;
  EXPECT_NE(*first, *second);
  EXPECT_NE(first->find("\"version\":1"), std::string::npos) << *first;
  EXPECT_NE(second->find("\"version\":2"), std::string::npos) << *second;

  // A stateless cacheable request still flows normally on the same
  // connection, twice (cold then memo/cache hit), byte-identically.
  const std::string measures =
      "{\"kind\":\"measures\",\"etc\":" + io::to_json(etc) + "}";
  const auto cold = roundtrip(client, measures);
  const auto warm = roundtrip(client, measures);
  ASSERT_TRUE(cold.has_value());
  ASSERT_TRUE(warm.has_value());
  EXPECT_TRUE(is_ok(*cold));
  EXPECT_EQ(*cold, *warm);
}

TEST(SvcStream, EventLoopSessionsArePerConnection) {
  svc::Server server;
  svc::EventLoopServer loop(server);
  std::ostringstream log;
  ASSERT_TRUE(loop.start(log));

  TestClient subscribed(loop.port());
  TestClient fresh(loop.port());
  ASSERT_TRUE(subscribed.connected());
  ASSERT_TRUE(fresh.connected());

  const EtcMatrix etc = test_matrix(5, 3, 31);
  const auto sub = roundtrip(subscribed, subscribe_line(etc));
  ASSERT_TRUE(sub.has_value());
  EXPECT_TRUE(is_ok(*sub));

  const std::string line = update_line(
      "\"set\":[{\"task\":0,\"machine\":0,\"etc\":2.0}]");
  const auto ok = roundtrip(subscribed, line);
  ASSERT_TRUE(ok.has_value());
  EXPECT_TRUE(is_ok(*ok)) << *ok;

  // The other connection never subscribed: its session is independent.
  const auto rejected = roundtrip(fresh, line);
  ASSERT_TRUE(rejected.has_value());
  EXPECT_TRUE(is_error(*rejected, 400)) << *rejected;
}

TEST(SvcStream, ResubscribeReplacesView) {
  svc::Server server;
  svc::StreamSession session;
  const EtcMatrix first = test_matrix(6, 3, 51);
  const EtcMatrix second = test_matrix(10, 5, 52);
  ASSERT_TRUE(is_ok(server.handle(subscribe_line(first), &session)));
  const std::string got = server.handle(subscribe_line(second), &session);
  ASSERT_TRUE(is_ok(got)) << got;
  EXPECT_NE(got.find("\"tasks\":10"), std::string::npos) << got;
  EXPECT_NE(got.find("\"machines\":5"), std::string::npos) << got;
  EXPECT_NE(got.find("\"version\":0"), std::string::npos) << got;
}

}  // namespace
