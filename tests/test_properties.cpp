// Property-based sweeps over randomly generated environments: the library's
// invariants must hold for every shape/seed combination, not just the
// hand-picked examples.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>

#include "core/measures.hpp"
#include "core/performance.hpp"
#include "core/standard_form.hpp"
#include "etcgen/range_based.hpp"
#include "linalg/svd.hpp"
#include "linalg/vector_ops.hpp"

namespace {

using hetero::core::canonical_form;
using hetero::core::EcsMatrix;
using hetero::core::measure_set;
using hetero::core::standardize;
using hetero::linalg::Matrix;

struct Env {
  std::size_t tasks, machines;
  unsigned seed;
};

Matrix random_positive(const Env& e) {
  std::mt19937 rng(e.seed);
  std::lognormal_distribution<double> dist(0.0, 1.0);
  Matrix m(e.tasks, e.machines);
  for (double& x : m.data()) x = dist(rng);
  return m;
}

class EnvSweep : public ::testing::TestWithParam<Env> {};

TEST_P(EnvSweep, MeasuresLieInTheirRanges) {
  const auto m = measure_set(EcsMatrix(random_positive(GetParam())));
  EXPECT_GT(m.mph, 0.0);
  EXPECT_LE(m.mph, 1.0);
  EXPECT_GT(m.tdh, 0.0);
  EXPECT_LE(m.tdh, 1.0);
  EXPECT_GE(m.tma, -1e-12);
  EXPECT_LE(m.tma, 1.0 + 1e-12);
}

TEST_P(EnvSweep, MeasuresScaleInvariant) {
  // Property 2 of the paper: multiplying the ECS matrix by a scalar (time
  // unit change) must not move any measure.
  const Matrix base = random_positive(GetParam());
  const auto a = measure_set(EcsMatrix(base));
  const auto b = measure_set(EcsMatrix(base * 3600.0));
  EXPECT_NEAR(a.mph, b.mph, 1e-10);
  EXPECT_NEAR(a.tdh, b.tdh, 1e-10);
  EXPECT_NEAR(a.tma, b.tma, 1e-7);
}

TEST_P(EnvSweep, MeasuresPermutationInvariant) {
  // Relabeling tasks/machines is physically meaningless and must not move
  // the measures.
  const Matrix base = random_positive(GetParam());
  std::mt19937 rng(GetParam().seed + 7);
  std::vector<std::size_t> tp(base.rows()), mp(base.cols());
  std::iota(tp.begin(), tp.end(), std::size_t{0});
  std::iota(mp.begin(), mp.end(), std::size_t{0});
  std::shuffle(tp.begin(), tp.end(), rng);
  std::shuffle(mp.begin(), mp.end(), rng);
  const auto a = measure_set(EcsMatrix(base));
  const auto b = measure_set(EcsMatrix(base).permuted(tp, mp));
  EXPECT_NEAR(a.mph, b.mph, 1e-10);
  EXPECT_NEAR(a.tdh, b.tdh, 1e-10);
  EXPECT_NEAR(a.tma, b.tma, 1e-7);
}

TEST_P(EnvSweep, TmaIndependentOfRowColumnScaling) {
  // The standard form strips diag(d1) * E * diag(d2): TMA must not move
  // while MPH/TDH do (the independence the paper engineers).
  const Matrix base = random_positive(GetParam());
  std::mt19937 rng(GetParam().seed + 13);
  std::uniform_real_distribution<double> dist(0.2, 5.0);
  Matrix scaled = base;
  for (std::size_t i = 0; i < scaled.rows(); ++i)
    scaled.scale_row(i, dist(rng));
  for (std::size_t j = 0; j < scaled.cols(); ++j)
    scaled.scale_col(j, dist(rng));
  EXPECT_NEAR(measure_set(EcsMatrix(base)).tma,
              measure_set(EcsMatrix(scaled)).tma, 1e-6);
}

TEST_P(EnvSweep, StandardFormSumsAndTopSingularValue) {
  const auto r = standardize(random_positive(GetParam()));
  ASSERT_TRUE(r.converged);
  for (std::size_t i = 0; i < r.standard.rows(); ++i)
    EXPECT_NEAR(r.standard.row_sum(i), r.target_row_sum, 1e-7);
  for (std::size_t j = 0; j < r.standard.cols(); ++j)
    EXPECT_NEAR(r.standard.col_sum(j), r.target_col_sum, 1e-7);
  EXPECT_NEAR(hetero::linalg::singular_values(r.standard).front(), 1.0, 1e-7);
}

TEST_P(EnvSweep, StandardFormIdempotent) {
  const auto once = standardize(random_positive(GetParam()));
  const auto twice = standardize(once.standard);
  EXPECT_LE(twice.iterations, 2u);
  EXPECT_LT(hetero::linalg::max_abs_diff(once.standard, twice.standard),
            1e-7);
}

TEST_P(EnvSweep, CanonicalFormPreservesMeasures) {
  const EcsMatrix ecs(random_positive(GetParam()));
  const auto canonical = canonical_form(ecs);
  const auto a = measure_set(ecs);
  const auto b = measure_set(canonical.matrix);
  EXPECT_NEAR(a.mph, b.mph, 1e-10);
  EXPECT_NEAR(a.tdh, b.tdh, 1e-10);
  EXPECT_NEAR(a.tma, b.tma, 1e-7);
}

TEST_P(EnvSweep, EtcEcsRoundTrip) {
  const EcsMatrix ecs(random_positive(GetParam()));
  const EcsMatrix back = ecs.to_etc().to_ecs();
  EXPECT_LT(hetero::linalg::max_abs_diff(back.values(), ecs.values()), 1e-12);
}

TEST_P(EnvSweep, WeightedMeasuresEqualPreScaledMatrix) {
  // Applying weights must equal measuring the explicitly weighted matrix.
  const Env e = GetParam();
  const Matrix base = random_positive(e);
  std::mt19937 rng(e.seed + 23);
  std::uniform_real_distribution<double> dist(0.5, 2.0);
  hetero::core::Weights w;
  w.task.resize(e.tasks);
  w.machine.resize(e.machines);
  for (double& x : w.task) x = dist(rng);
  for (double& x : w.machine) x = dist(rng);

  const EcsMatrix ecs(base);
  const EcsMatrix prescaled(ecs.weighted_values(w));
  EXPECT_NEAR(hetero::core::mph(ecs, w), hetero::core::mph(prescaled), 1e-10);
  EXPECT_NEAR(hetero::core::tdh(ecs, w), hetero::core::tdh(prescaled), 1e-10);
  EXPECT_NEAR(hetero::core::tma(ecs, w), hetero::core::tma(prescaled), 1e-7);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, EnvSweep,
    ::testing::Values(Env{2, 2, 1}, Env{2, 2, 2}, Env{3, 2, 3}, Env{2, 3, 4},
                      Env{5, 5, 5}, Env{12, 5, 6}, Env{17, 5, 7},
                      Env{4, 9, 8}, Env{9, 4, 9}, Env{10, 10, 10},
                      Env{16, 3, 11}, Env{3, 16, 12}));

// ---------------------------------------------------------------------------
// Sparse environments (zero entries) keep the measures well defined.

class SparseSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(SparseSweep, MeasuresDefinedWithZeroEntries) {
  std::mt19937 rng(GetParam());
  std::uniform_real_distribution<double> dist(0.1, 10.0);
  std::bernoulli_distribution zero(0.25);
  Matrix m(6, 4);
  for (double& x : m.data()) x = zero(rng) ? 0.0 : dist(rng);
  // Repair all-zero rows/columns so the EcsMatrix invariant holds.
  for (std::size_t i = 0; i < m.rows(); ++i)
    if (m.row_sum(i) == 0.0) m(i, i % m.cols()) = dist(rng);
  for (std::size_t j = 0; j < m.cols(); ++j)
    if (m.col_sum(j) == 0.0) m(j % m.rows(), j) = dist(rng);

  const auto ms = measure_set(EcsMatrix(m));
  EXPECT_GT(ms.mph, 0.0);
  EXPECT_LE(ms.mph, 1.0);
  EXPECT_GT(ms.tdh, 0.0);
  EXPECT_LE(ms.tdh, 1.0);
  EXPECT_GE(ms.tma, -1e-12);
  EXPECT_LE(ms.tma, 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparseSweep,
                         ::testing::Range(100u, 120u));

// ---------------------------------------------------------------------------
// Generated environments from the range-based method: full pipeline.

class PipelineSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(PipelineSweep, GenerateCharacterizeRoundTrip) {
  hetero::etcgen::Rng rng = hetero::etcgen::make_rng(GetParam());
  hetero::etcgen::RangeBasedOptions opts;
  opts.tasks = 10;
  opts.machines = 6;
  opts.task_range = 40.0;
  opts.machine_range = 12.0;
  const auto etc = hetero::etcgen::generate_range_based(opts, rng);
  const auto report = hetero::core::characterize(etc.to_ecs());
  EXPECT_EQ(report.machine_performances.size(), 6u);
  EXPECT_EQ(report.task_difficulties.size(), 10u);
  EXPECT_TRUE(report.tma_detail.standard_form.converged);
  // MPH upper-bounds the min/max ratio... they at least share (0, 1].
  EXPECT_GE(report.measures.mph, report.mph_alt_ratio - 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineSweep, ::testing::Range(200u, 212u));

// ---------------------------------------------------------------------------
// Sparse patterns built as unions of random permutations have total support
// by construction (every positive entry lies on one of the generating
// permutations' diagonals), so the standard form must always exist and the
// Sinkhorn iteration must converge geometrically.

class PermutationUnionSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(PermutationUnionSweep, UnionOfPermutationsAlwaysStandardizes) {
  std::mt19937 rng(GetParam());
  constexpr std::size_t n = 8;
  Matrix m(n, n, 0.0);
  std::uniform_real_distribution<double> weight(0.5, 5.0);
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  const std::size_t generators = 2 + GetParam() % 3;
  for (std::size_t g = 0; g < generators; ++g) {
    std::shuffle(perm.begin(), perm.end(), rng);
    for (std::size_t i = 0; i < n; ++i) m(i, perm[i]) += weight(rng);
  }

  EXPECT_EQ(hetero::core::classify_pattern(m),
            hetero::core::NormalizabilityClass::normalizable_pattern);
  const auto r = standardize(m);
  EXPECT_TRUE(r.converged);
  EXPECT_FALSE(r.projected_to_core);
  EXPECT_LE(r.iterations, 1000u);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(r.standard.row_sum(i), 1.0, 1e-7);
  // TMA of the limit is well defined and in range.
  const auto sigma = hetero::linalg::singular_values(r.standard);
  EXPECT_NEAR(sigma.front(), 1.0, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PermutationUnionSweep,
                         ::testing::Range(300u, 312u));

// ---------------------------------------------------------------------------
// Weighted-measure sweep: weights equal to an unweighted duplication.
// Doubling task i's weight must give the same MP vector as physically
// duplicating row i (eq. 4's semantics).

TEST(WeightSemantics, IntegerTaskWeightEqualsRowDuplication) {
  const Matrix base{{1, 5, 2}, {3, 1, 4}};
  hetero::core::Weights w;
  w.task = {2.0, 1.0};
  const auto weighted_mp = hetero::core::machine_performances(
      hetero::core::EcsMatrix(base), w);

  const Matrix duplicated{{1, 5, 2}, {1, 5, 2}, {3, 1, 4}};
  const auto dup_mp = hetero::core::machine_performances(
      hetero::core::EcsMatrix(duplicated));
  ASSERT_EQ(weighted_mp.size(), dup_mp.size());
  for (std::size_t j = 0; j < dup_mp.size(); ++j)
    EXPECT_NEAR(weighted_mp[j], dup_mp[j], 1e-12);
}

TEST(WeightSemantics, IntegerMachineWeightEqualsColumnDuplication) {
  const Matrix base{{1, 5}, {3, 1}};
  hetero::core::Weights w;
  w.machine = {1.0, 3.0};
  const auto weighted_td = hetero::core::task_difficulties(
      hetero::core::EcsMatrix(base), w);

  const Matrix duplicated{{1, 5, 5, 5}, {3, 1, 1, 1}};
  const auto dup_td = hetero::core::task_difficulties(
      hetero::core::EcsMatrix(duplicated));
  for (std::size_t i = 0; i < dup_td.size(); ++i)
    EXPECT_NEAR(weighted_td[i], dup_td[i], 1e-12);
}

}  // namespace
