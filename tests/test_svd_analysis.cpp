#include "core/svd_analysis.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/measures.hpp"

namespace {

using hetero::ConvergenceError;
using hetero::core::affinity_analysis;
using hetero::core::EcsMatrix;
using hetero::core::machine_column_cosines;
using hetero::core::max_column_angle;
using hetero::linalg::Matrix;

EcsMatrix specialized() {
  return EcsMatrix(Matrix{{10, 1, 1}, {1, 10, 1}, {1, 1, 10}},
                   {"ta", "tb", "tc"}, {"ma", "mb", "mc"});
}

TEST(ColumnCosines, RankOneIsAllOnes) {
  const EcsMatrix rank1(Matrix{{1, 2}, {2, 4}, {3, 6}});
  const auto cos = machine_column_cosines(rank1);
  for (std::size_t j = 0; j < 2; ++j)
    for (std::size_t k = 0; k < 2; ++k) EXPECT_NEAR(cos(j, k), 1.0, 1e-12);
  EXPECT_NEAR(max_column_angle(rank1), 0.0, 1e-6);
}

TEST(ColumnCosines, SpecializedMachinesHaveLargeAngles) {
  const auto cos = machine_column_cosines(specialized());
  EXPECT_LT(cos(0, 1), 0.5);
  EXPECT_GT(max_column_angle(specialized()), 1.0);  // > ~57 degrees
}

TEST(ColumnCosines, SymmetricWithUnitDiagonal) {
  const EcsMatrix ecs(Matrix{{1, 5, 2}, {3, 1, 4}});
  const auto cos = machine_column_cosines(ecs);
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_DOUBLE_EQ(cos(j, j), 1.0);
    for (std::size_t k = 0; k < 3; ++k) EXPECT_DOUBLE_EQ(cos(j, k), cos(k, j));
  }
}

TEST(ColumnCosines, OrthogonalColumns) {
  const EcsMatrix ecs(Matrix{{1, 0}, {0, 1}});
  const auto cos = machine_column_cosines(ecs);
  EXPECT_NEAR(cos(0, 1), 0.0, 1e-12);
  EXPECT_NEAR(max_column_angle(ecs), std::acos(0.0), 1e-9);
}

TEST(AffinityAnalysis, TmaMatchesMeasure) {
  const auto analysis = affinity_analysis(specialized());
  EXPECT_NEAR(analysis.tma, hetero::core::tma(specialized()), 1e-9);
}

TEST(AffinityAnalysis, ModeCountAndOrdering) {
  const auto analysis = affinity_analysis(specialized());
  ASSERT_EQ(analysis.modes.size(), 2u);
  EXPECT_GE(analysis.modes[0].sigma, analysis.modes[1].sigma);
  EXPECT_EQ(analysis.modes[0].task_component.size(), 3u);
  EXPECT_EQ(analysis.modes[0].machine_component.size(), 3u);
}

TEST(AffinityAnalysis, MaxModesTruncates) {
  const auto analysis = affinity_analysis(specialized(), {}, 1);
  EXPECT_EQ(analysis.modes.size(), 1u);
  // TMA still uses all modes, not the truncated list.
  EXPECT_NEAR(analysis.tma, hetero::core::tma(specialized()), 1e-9);
}

TEST(AffinityAnalysis, RankOneHasNoSignificantModes) {
  const EcsMatrix rank1(Matrix{{1, 2}, {2, 4}});
  const auto analysis = affinity_analysis(rank1);
  ASSERT_EQ(analysis.modes.size(), 1u);
  EXPECT_NEAR(analysis.modes[0].sigma, 0.0, 1e-9);
}

TEST(AffinityAnalysis, ModePairsTaskWithItsMachine) {
  // In the specialized environment, task i is tied to machine i: within a
  // mode, the sign of task component i must match the sign of machine
  // component i for the dominant pair.
  const auto analysis = affinity_analysis(specialized());
  const auto& mode = analysis.modes.front();
  // Find the dominant machine of the mode.
  std::size_t jmax = 0;
  for (std::size_t j = 1; j < 3; ++j)
    if (std::abs(mode.machine_component[j]) >
        std::abs(mode.machine_component[jmax]))
      jmax = j;
  // Its paired task (same index) must align in sign.
  EXPECT_GT(mode.task_component[jmax] * mode.machine_component[jmax], 0.0);
}

TEST(AffinityAnalysis, ThrowsWhenNoStandardForm) {
  const Matrix no_support{{1, 1, 0, 0}, {1, 1, 0, 0}, {1, 1, 0, 0},
                          {0, 0, 1, 1}};
  EXPECT_THROW(affinity_analysis(EcsMatrix(no_support)), ConvergenceError);
}

TEST(DescribeStrongestMode, MentionsTheSpecializedPair) {
  const auto analysis = affinity_analysis(specialized());
  const auto text = hetero::core::describe_strongest_mode(analysis, 1);
  EXPECT_NE(text.find("sigma"), std::string::npos);
  // The named task/machine must be one of the specialized pairs (ta-ma etc).
  bool found_pair = false;
  for (const char* pair : {"ta", "tb", "tc"}) {
    if (text.find(pair) != std::string::npos) found_pair = true;
  }
  EXPECT_TRUE(found_pair) << text;
}

TEST(DescribeStrongestMode, HandlesNoModes) {
  hetero::core::AffinityAnalysis empty;
  EXPECT_NE(hetero::core::describe_strongest_mode(empty).find("no affinity"),
            std::string::npos);
}

}  // namespace
