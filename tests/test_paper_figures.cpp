// Integration tests pinning every quantitative claim of the paper that the
// figure reproducers in bench/ print. Each test names the figure it checks.
#include <gtest/gtest.h>

#include <cmath>

#include "core/measures.hpp"
#include "core/standard_form.hpp"
#include "core/performance.hpp"
#include "graph/structure.hpp"
#include "linalg/svd.hpp"
#include "linalg/vector_ops.hpp"

namespace {

using hetero::core::EcsMatrix;
using hetero::core::measure_set;
using hetero::core::standardize;
using hetero::linalg::Matrix;

// ---------------------------------------------------------------------------
// Figure 4: eight extreme 2x2 ECS matrices at the corners of the
// (MPH, TDH, TMA) cube. The entries were lost to OCR; these instances are
// reconstructed from the paper's explicit corner description.

struct Fig4Case {
  const char* name;
  Matrix ecs;
  bool high_mph, high_tdh, high_tma;
};

class Fig4 : public ::testing::TestWithParam<Fig4Case> {};

TEST_P(Fig4, MatchesCornerDescription) {
  const auto& c = GetParam();
  const auto m = measure_set(EcsMatrix(c.ecs));
  if (c.high_mph)
    EXPECT_GT(m.mph, 0.9) << c.name;
  else
    EXPECT_LT(m.mph, 0.2) << c.name;
  if (c.high_tdh)
    EXPECT_GT(m.tdh, 0.9) << c.name;
  else
    EXPECT_LT(m.tdh, 0.2) << c.name;
  if (c.high_tma)
    EXPECT_NEAR(m.tma, 1.0, 1e-6) << c.name;
  else
    EXPECT_NEAR(m.tma, 0.0, 1e-6) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Corners, Fig4,
    ::testing::Values(
        Fig4Case{"A", Matrix{{10, 0}, {9, 1}}, false, true, true},
        Fig4Case{"B", Matrix{{1, 0}, {9, 90}}, false, false, true},
        Fig4Case{"C", Matrix{{1, 0}, {0, 1}}, true, true, true},
        Fig4Case{"D", Matrix{{1, 0}, {50, 51}}, true, false, true},
        Fig4Case{"E", Matrix{{1, 10}, {1, 10}}, false, true, false},
        Fig4Case{"F", Matrix{{1, 10}, {10, 100}}, false, false, false},
        Fig4Case{"G", Matrix{{1, 1}, {1, 1}}, true, true, false},
        Fig4Case{"H", Matrix{{1, 1}, {10, 10}}, true, false, false}));

TEST(Fig4, ABDConvergeToStandardFormOfC) {
  // Paper: "When the procedure in Equation 9 is applied to matrices A, B,
  // and D they all converge to the standard form of C."
  const Matrix c_std = standardize(Matrix{{1, 0}, {0, 1}}).standard;
  for (const Matrix& m :
       {Matrix{{10, 0}, {9, 1}}, Matrix{{1, 0}, {9, 90}},
        Matrix{{1, 0}, {50, 51}}}) {
    const auto r = standardize(m);
    EXPECT_TRUE(r.converged);
    EXPECT_LT(hetero::linalg::max_abs_diff(r.standard, c_std), 1e-7);
  }
}

TEST(Fig4, CIsAlreadyStandardWithSecondSingularValueOne) {
  // Paper: "Matrix C is already a standard matrix. The second singular
  // value of that matrix is 1."
  const Matrix c{{1, 0}, {0, 1}};
  const auto r = standardize(c);
  EXPECT_EQ(r.iterations, 1u);
  EXPECT_LT(hetero::linalg::max_abs_diff(r.standard, c), 1e-12);
  const auto sigma = hetero::linalg::singular_values(c);
  EXPECT_DOUBLE_EQ(sigma[1], 1.0);
}

// ---------------------------------------------------------------------------
// Figure 3: machine-performance-homogeneous matrices with and without
// affinity (entries reconstructed; the stated properties hold).

TEST(Fig3, BothMatricesMachineHomogeneous) {
  const EcsMatrix a(Matrix{{4, 4, 4}, {2, 2, 2}, {6, 6, 6}});
  const EcsMatrix b(Matrix{{10, 1, 1}, {1, 10, 1}, {1, 1, 10}});
  EXPECT_DOUBLE_EQ(hetero::core::mph(a), 1.0);
  EXPECT_DOUBLE_EQ(hetero::core::mph(b), 1.0);
}

TEST(Fig3, OnlyBHasAffinity) {
  const EcsMatrix a(Matrix{{4, 4, 4}, {2, 2, 2}, {6, 6, 6}});
  const EcsMatrix b(Matrix{{10, 1, 1}, {1, 10, 1}, {1, 1, 10}});
  EXPECT_NEAR(hetero::core::tma(a), 0.0, 1e-9);
  EXPECT_GT(hetero::core::tma(b), 0.3);
}

TEST(Fig3, ColumnAnglesExplainTma) {
  // Paper: in (a) the angles between columns are 0; in (b) they are > 0.
  const Matrix a{{4, 4, 4}, {2, 2, 2}, {6, 6, 6}};
  const Matrix b{{10, 1, 1}, {1, 10, 1}, {1, 1, 10}};
  const auto cos_angle = [](const Matrix& m, std::size_t i, std::size_t j) {
    const auto ci = m.col(i), cj = m.col(j);
    return hetero::linalg::dot(ci, cj) /
           (hetero::linalg::norm2(ci) * hetero::linalg::norm2(cj));
  };
  EXPECT_NEAR(cos_angle(a, 0, 1), 1.0, 1e-12);
  EXPECT_NEAR(cos_angle(a, 1, 2), 1.0, 1e-12);
  EXPECT_LT(cos_angle(b, 0, 1), 1.0 - 1e-6);
}

// ---------------------------------------------------------------------------
// Section VI: the eq. 10 matrix and its eq. 12 block form.

TEST(Sec6, Eq10PropertiesFromTheText) {
  const Matrix m{{0, 0, 1}, {1, 0, 1}, {0, 1, 0}};
  // "the second row and third column sums are both 2 while the other row
  // and column sums are 1" (all nonzero entries equal 1).
  EXPECT_DOUBLE_EQ(m.row_sum(0), 1);
  EXPECT_DOUBLE_EQ(m.row_sum(1), 2);
  EXPECT_DOUBLE_EQ(m.row_sum(2), 1);
  EXPECT_DOUBLE_EQ(m.col_sum(0), 1);
  EXPECT_DOUBLE_EQ(m.col_sum(1), 1);
  EXPECT_DOUBLE_EQ(m.col_sum(2), 2);
  EXPECT_EQ(m.zero_count(), 5u);  // four nonzero entries
}

TEST(Sec6, Eq12MovingLastColumnToFrontGivesBlockForm) {
  const Matrix m{{0, 0, 1}, {1, 0, 1}, {0, 1, 0}};
  const std::size_t rows[] = {0, 1, 2};
  const std::size_t cols[] = {2, 0, 1};  // last column to the front
  const Matrix p = m.permuted(rows, cols);
  // Block lower-triangular: 1x1 block then 2x2 block, zero upper-right.
  EXPECT_GT(p(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(p(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(p(0, 2), 0.0);
}

TEST(Sec6, Eq10CannotBeNormalizedButDiagonalCan) {
  const Matrix eq10{{0, 0, 1}, {1, 0, 1}, {0, 1, 0}};
  EXPECT_FALSE(hetero::graph::is_sinkhorn_normalizable(eq10));
  // "a diagonal matrix with positive elements ... can be easily converted
  // into the identity matrix": decomposable but normalizable.
  const Matrix diag = Matrix::diagonal(std::vector<double>{2.0, 5.0, 9.0});
  EXPECT_FALSE(hetero::graph::is_fully_indecomposable(diag));
  EXPECT_TRUE(hetero::graph::is_sinkhorn_normalizable(diag));
  const auto r = standardize(diag);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(hetero::linalg::max_abs_diff(r.standard, Matrix::identity(3)),
            1e-8);
}

// ---------------------------------------------------------------------------
// Theorem 2 (Appendix B) on general standard matrices.

TEST(Theorem2, LargestSingularValueSqrtRC) {
  // For row sums r and column sums c, sigma_1 = sqrt(r c).
  // Take the 2x3 all-ones matrix: r = 3, c = 2, sigma_1 = sqrt(6).
  const Matrix ones(2, 3, 1.0);
  EXPECT_NEAR(hetero::linalg::spectral_norm(ones), std::sqrt(6.0), 1e-10);
}

TEST(Theorem2, SingularVectorIsUniform) {
  const Matrix ones(3, 4, 1.0);
  const auto svd = hetero::linalg::svd(ones);
  // Input singular vector v = 1/sqrt(n) * [1 ... 1]^T (up to sign).
  const double expect = 1.0 / std::sqrt(4.0);
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_NEAR(std::abs(svd.v(i, 0)), expect, 1e-10);
}

TEST(Theorem2, MrEqualsNc) {
  // m r = n c (both equal the total); verified on a standard form.
  const auto r = standardize(Matrix{{1, 2, 3}, {4, 5, 6}});
  const double total = r.standard.total();
  EXPECT_NEAR(2.0 * r.target_row_sum, total, 1e-7);
  EXPECT_NEAR(3.0 * r.target_col_sum, total, 1e-7);
}

}  // namespace
