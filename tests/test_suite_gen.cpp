#include "etcgen/suite.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/measures.hpp"
#include "core/statistics.hpp"

namespace {

using hetero::ValueError;
namespace eg = hetero::etcgen;

eg::BraunSuiteOptions small_opts() {
  eg::BraunSuiteOptions opts;
  opts.tasks = 40;
  opts.machines = 8;
  opts.seed = 7;
  return opts;
}

TEST(BraunSuite, TwelveDistinctCategories) {
  const auto suite = eg::braun_suite(small_opts());
  ASSERT_EQ(suite.size(), 12u);
  std::set<std::string> names;
  for (const auto& c : suite) names.insert(c.name);
  EXPECT_EQ(names.size(), 12u);
  // 4 of each consistency class, 6 of each heterogeneity flag.
  std::size_t consistent = 0, hi_task = 0;
  for (const auto& c : suite) {
    if (c.consistency == eg::Consistency::consistent) ++consistent;
    if (c.high_task_heterogeneity) ++hi_task;
  }
  EXPECT_EQ(consistent, 4u);
  EXPECT_EQ(hi_task, 6u);
}

TEST(BraunSuite, ShapesAndPositivity) {
  const auto suite = eg::braun_suite(small_opts());
  for (const auto& c : suite) {
    EXPECT_EQ(c.etc.task_count(), 40u) << c.name;
    EXPECT_EQ(c.etc.machine_count(), 8u) << c.name;
    EXPECT_TRUE(c.etc.values().all_positive()) << c.name;
  }
}

TEST(BraunSuite, ConsistentCasesAreConsistent) {
  for (const auto& c : eg::braun_suite(small_opts())) {
    if (c.consistency == eg::Consistency::consistent)
      EXPECT_TRUE(hetero::core::is_consistent(c.etc)) << c.name;
    if (c.consistency == eg::Consistency::inconsistent)
      EXPECT_FALSE(hetero::core::is_consistent(c.etc)) << c.name;
  }
}

TEST(BraunSuite, HeterogeneityAxesSurfaceInStatistics) {
  const auto suite = eg::braun_suite(small_opts());
  // The machine axis surfaces in the row-COV statistic. (The task axis
  // does NOT surface in the column COV — a uniform range's COV saturates
  // regardless of the range — which is precisely why range statistics use
  // spreads; see the next test.)
  double mach_hi = 0, mach_lo = 0;
  for (const auto& c : suite) {
    const auto s = hetero::core::etc_statistics(c.etc);
    (c.high_machine_heterogeneity ? mach_hi : mach_lo) +=
        s.mean_machine_heterogeneity;
  }
  EXPECT_GT(mach_hi, mach_lo);
}

TEST(BraunSuite, TaskAxisSurfacesInAbsoluteScale) {
  // With uniform ranges, ratio statistics saturate with sample count (the
  // minimum of n U(1, R) samples is ~R/n, so max/min ~ n for any large R);
  // the range-based task axis is an *absolute-scale* axis. Hi-task suites
  // must have runtimes two to three orders of magnitude larger.
  const auto suite = eg::braun_suite(small_opts());
  double scale_hi = 0, scale_lo = 0;
  for (const auto& c : suite) {
    const double mean_runtime = c.etc.values().total() /
                                static_cast<double>(c.etc.values().size());
    (c.high_task_heterogeneity ? scale_hi : scale_lo) += mean_runtime;
  }
  EXPECT_GT(scale_hi, 100.0 * scale_lo);
}

TEST(BraunSuite, TdhIsScaleBlindToTheRangeAxis) {
  // TDH is scale-invariant, and uniform sampling puts the sorted adjacent
  // ratios at ~k/(k+1) regardless of the range: both hi- and lo-task
  // suites land near the same TDH. This is a *documented limitation* of
  // the range-based method that the paper's measure-targeted generation
  // overcomes (it can dial TDH directly).
  const auto suite = eg::braun_suite(small_opts());
  for (const auto& c : suite) {
    const double tdh = hetero::core::tdh(c.etc.to_ecs());
    EXPECT_GT(tdh, 0.85) << c.name;
    EXPECT_LT(tdh, 1.0) << c.name;
  }
}

TEST(BraunSuite, TmaRisesFromConsistentToInconsistent) {
  const auto suite = eg::braun_suite(small_opts());
  double tma_consistent = 0, tma_inconsistent = 0;
  for (const auto& c : suite) {
    const double tma = hetero::core::tma(c.etc.to_ecs());
    if (c.consistency == eg::Consistency::consistent) tma_consistent += tma;
    if (c.consistency == eg::Consistency::inconsistent)
      tma_inconsistent += tma;
  }
  EXPECT_LT(tma_consistent, tma_inconsistent);
}

TEST(BraunSuite, Reproducible) {
  const auto a = eg::braun_suite(small_opts());
  const auto b = eg::braun_suite(small_opts());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a[i].etc.values(), b[i].etc.values());
}

TEST(BraunSuite, RejectsBadOptions) {
  eg::BraunSuiteOptions opts;
  opts.tasks = 0;
  EXPECT_THROW(eg::braun_suite(opts), ValueError);
}

}  // namespace
