#include "linalg/lu.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "linalg/svd.hpp"

namespace {

using hetero::DimensionError;
using hetero::ValueError;
namespace lin = hetero::linalg;
using lin::Matrix;

Matrix random_square(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-2.0, 2.0);
  Matrix m(n, n);
  for (double& x : m.data()) x = dist(rng);
  return m;
}

TEST(Lu, SolveKnownSystem) {
  // x + 2y = 5; 3x + 4y = 11 -> x = 1, y = 2.
  const Matrix a{{1, 2}, {3, 4}};
  const std::vector<double> b{5, 11};
  const auto x = lin::solve(a, b);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Lu, DeterminantKnownValues) {
  EXPECT_NEAR(lin::determinant(Matrix{{1, 2}, {3, 4}}), -2.0, 1e-12);
  EXPECT_NEAR(lin::determinant(Matrix::identity(4)), 1.0, 1e-12);
  EXPECT_NEAR(lin::determinant(Matrix{{2, 0}, {0, 3}}), 6.0, 1e-12);
}

TEST(Lu, SingularDetection) {
  const Matrix singular{{1, 2}, {2, 4}};
  lin::LuDecomposition lu(singular);
  EXPECT_TRUE(lu.is_singular());
  EXPECT_EQ(lu.determinant(), 0.0);
  const std::vector<double> b{1, 2};
  EXPECT_THROW(lu.solve(b), ValueError);
  EXPECT_THROW(lu.inverse(), ValueError);
}

TEST(Lu, PivotingHandlesZeroLeadingEntry) {
  const Matrix a{{0, 1}, {1, 0}};
  const std::vector<double> b{2, 3};
  const auto x = lin::solve(a, b);
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
  EXPECT_NEAR(lin::determinant(a), -1.0, 1e-12);
}

TEST(Lu, RejectsBadInputs) {
  EXPECT_THROW(lin::LuDecomposition(Matrix{{1, 2, 3}, {4, 5, 6}}), ValueError);
  EXPECT_THROW(lin::LuDecomposition(Matrix{{std::nan(""), 1}, {1, 1}}),
               ValueError);
  const Matrix a{{1, 0}, {0, 1}};
  const std::vector<double> wrong{1, 2, 3};
  EXPECT_THROW(lin::LuDecomposition(a).solve(wrong), DimensionError);
}

class LuRandom : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LuRandom, SolveResidualSmall) {
  const std::size_t n = GetParam();
  const Matrix a = random_square(n, static_cast<unsigned>(n));
  std::vector<double> b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = static_cast<double>(i) - 1.5;
  const auto x = lin::solve(a, b);
  const auto ax = lin::matvec(a, x);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(ax[i], b[i], 1e-8);
}

TEST_P(LuRandom, InverseIsTwoSided) {
  const std::size_t n = GetParam();
  const Matrix a = random_square(n, static_cast<unsigned>(n) + 50);
  const Matrix inv = lin::inverse(a);
  EXPECT_LT(lin::max_abs_diff(lin::matmul(a, inv), Matrix::identity(n)), 1e-8);
  EXPECT_LT(lin::max_abs_diff(lin::matmul(inv, a), Matrix::identity(n)), 1e-8);
}

TEST_P(LuRandom, DeterminantMatchesSingularValueProduct) {
  const std::size_t n = GetParam();
  const Matrix a = random_square(n, static_cast<unsigned>(n) + 99);
  // |det| = product of singular values.
  double sv_product = 1.0;
  for (double s : hetero::linalg::singular_values(a)) sv_product *= s;
  EXPECT_NEAR(std::abs(lin::determinant(a)), sv_product,
              1e-8 * std::max(1.0, sv_product));
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuRandom, ::testing::Values(1, 2, 3, 5, 8, 13));

TEST(Lu, MatrixRhsSolve) {
  const Matrix a{{2, 0}, {0, 4}};
  const Matrix b{{2, 4}, {8, 12}};
  const Matrix x = lin::LuDecomposition(a).solve(b);
  EXPECT_NEAR(x(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(x(0, 1), 2.0, 1e-12);
  EXPECT_NEAR(x(1, 0), 2.0, 1e-12);
  EXPECT_NEAR(x(1, 1), 3.0, 1e-12);
}

}  // namespace
