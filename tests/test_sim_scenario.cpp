#include "sim/scenario.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

namespace {

using hetero::sim::generate_arrivals;
using hetero::sim::implied_etc;
using hetero::sim::instance_etc;
using hetero::sim::parse_scenario;
using hetero::sim::Scenario;
using hetero::sim::ScenarioError;
using hetero::sim::SlaTier;

// A minimal valid scenario the edge-case tests perturb.
constexpr const char* kValid = R"(
machine class:
{
        Number of machines: 2
        CPU type: X86
        Number of cores: 4
        Memory: 8192
        S-States: [100, 50, 0]
        P-States: [10, 6]
        C-States: [10, 1]
        MIPS: [2000, 1000]
        GPUs: no
}

task class:
{
        Start time: 0
        End time: 100000
        Inter arrival: 10000
        Expected runtime: 50000
        Memory: 512
        VM type: LINUX
        GPU enabled: no
        SLA type: SLA1
        CPU type: X86
        Task type: WEB
        Seed: 0
}
)";

// The exact one-line message of the ScenarioError `body` throws.
std::string error_of(const std::string& body) {
  try {
    parse_scenario(body);
  } catch (const ScenarioError& e) {
    return e.what();
  }
  return "(no error)";
}

TEST(SimScenario, ParsesTheValidScenario) {
  const Scenario s = parse_scenario(kValid);
  ASSERT_EQ(s.machine_classes.size(), 1u);
  ASSERT_EQ(s.task_classes.size(), 1u);
  EXPECT_EQ(s.machine_classes[0].count, 2u);
  EXPECT_EQ(s.machine_classes[0].cores, 4u);
  EXPECT_EQ(s.machine_classes[0].mips.size(), 2u);
  EXPECT_FALSE(s.machine_classes[0].gpus);
  EXPECT_EQ(s.task_classes[0].sla, SlaTier::sla1);
  EXPECT_EQ(s.task_classes[0].vm_type, "LINUX");
  EXPECT_EQ(s.machine_count(), 2u);
}

TEST(SimScenario, ToleratesCrlfCommentsAndSpacedColons) {
  std::string crlf;
  for (const char* p = kValid; *p; ++p) {
    if (*p == '\n') crlf += "\r\n";
    else crlf += *p;
  }
  crlf += "# trailing comment\r\n// another\r\n";
  const Scenario s = parse_scenario(crlf);
  EXPECT_EQ(s.machine_classes.size(), 1u);

  // "machine class :" and "End time :" (space before colon) still parse.
  std::string spaced(kValid);
  spaced.replace(spaced.find("machine class:"), 14, "machine  class :");
  spaced.replace(spaced.find("End time:"), 9, "End time :");
  EXPECT_EQ(parse_scenario(spaced).task_classes[0].end_time, 100000.0);
}

TEST(SimScenario, UnknownKeyNamesBlockAndKey) {
  std::string body(kValid);
  body.replace(body.find("Memory: 8192"), 12, "Memroy: 8192");
  EXPECT_EQ(error_of(body),
            "scenario line 7: machine class #1: unknown key 'Memroy'");
}

TEST(SimScenario, MissingRequiredKeyNamesIt) {
  std::string body(kValid);
  const std::size_t at = body.find("        MIPS: [2000, 1000]\n");
  body.erase(at, std::string("        MIPS: [2000, 1000]\n").size());
  EXPECT_EQ(error_of(body),
            "scenario line 2: machine class #1: missing required key 'MIPS'");

  body = kValid;
  const std::size_t sla = body.find("        SLA type: SLA1\n");
  body.erase(sla, std::string("        SLA type: SLA1\n").size());
  EXPECT_EQ(error_of(body),
            "scenario line 15: task class #1: missing required key "
            "'SLA type'");
}

TEST(SimScenario, MismatchedPStatesAndMips) {
  std::string body(kValid);
  body.replace(body.find("P-States: [10, 6]"), 17, "P-States: [10, 6, 3]");
  EXPECT_EQ(error_of(body),
            "scenario line 2: machine class #1: P-States and MIPS must have "
            "the same length (3 vs 2)");
}

TEST(SimScenario, UnterminatedBlockIsNamed) {
  // A new header before '}' closes the machine block.
  std::string body(kValid);
  const std::size_t brace = body.find("}\n");
  body.erase(brace, 2);
  EXPECT_EQ(error_of(body),
            "scenario line 14: machine class #1: unterminated block "
            "(missing '}' before 'task class:')");

  // EOF inside a block.
  EXPECT_EQ(error_of("machine class:\n{\nMemory: 1\n"),
            "scenario line 4: machine class #1: unterminated block "
            "(missing '}')");
}

TEST(SimScenario, MalformedValuesAndDuplicates) {
  std::string body(kValid);
  body.replace(body.find("Number of cores: 4"), 18, "Number of cores: 4x");
  EXPECT_EQ(error_of(body),
            "scenario line 6: machine class #1: invalid value for "
            "'Number of cores': '4x'");

  body = kValid;
  body.replace(body.find("Number of cores: 4"), 18, "Number of cores: 2.5");
  EXPECT_EQ(error_of(body),
            "scenario line 6: machine class #1: 'Number of cores' must be a "
            "positive integer, got '2.5'");

  body = kValid;
  body.replace(body.find("GPUs: no"), 8, "GPUs: nope");
  EXPECT_EQ(error_of(body),
            "scenario line 12: machine class #1: 'GPUs' must be 'yes' or "
            "'no', got 'nope'");

  body = kValid;
  body.replace(body.find("SLA type: SLA1"), 14, "SLA type: GOLD");
  EXPECT_EQ(error_of(body),
            "scenario line 24: task class #1: 'SLA type' must be SLA0..SLA3, "
            "got 'GOLD'");

  body = kValid;
  body.replace(body.find("Seed: 0"), 7, "Memory: 9");
  EXPECT_EQ(error_of(body),
            "scenario line 27: task class #1: duplicate key 'Memory'");
}

TEST(SimScenario, StructuralErrors) {
  EXPECT_EQ(error_of("bogus\n"),
            "scenario line 1: expected 'machine class:' or 'task class:', "
            "got 'bogus'");
  EXPECT_EQ(error_of("machine class:\nMemory: 1\n"),
            "scenario line 2: machine class #1: expected '{' after block "
            "header");
  EXPECT_EQ(error_of(""), "scenario: no machine class blocks");

  std::string body(kValid);
  body.replace(body.find("End time: 100000"), 16, "End time: 0");
  EXPECT_EQ(error_of(body),
            "scenario line 15: task class #1: 'End time' must be after "
            "'Start time'");
}

TEST(SimScenario, CompatibilityValidation) {
  // ARM task on an X86-only fleet: named and rejected.
  std::string body(kValid);
  body.replace(body.find("CPU type: X86\n        Task type"), 13,
               "CPU type: ARM");
  EXPECT_EQ(error_of(body),
            "scenario: task class #1 is compatible with no machine class "
            "(CPU type/GPU/memory)");
}

TEST(SimScenario, ImpliedEtcMatchesMipsRatios) {
  const Scenario s = parse_scenario(kValid);
  const auto etc = implied_etc(s);
  ASSERT_EQ(etc.task_count(), 1u);
  ASSERT_EQ(etc.machine_count(), 1u);
  // 50000 us on a 1000-MIPS reference over 2000 MIPS top speed.
  EXPECT_DOUBLE_EQ(etc(0, 0), 25000.0);

  const auto inst = instance_etc(s);
  ASSERT_EQ(inst.machine_count(), 2u);
  EXPECT_DOUBLE_EQ(inst(0, 0), 25000.0);
  EXPECT_DOUBLE_EQ(inst(0, 1), 25000.0);
  EXPECT_EQ(inst.machine_names()[1], "mc0.1");
}

TEST(SimScenario, ArrivalsSeededAndDeterministic) {
  const Scenario s = parse_scenario(kValid);
  // Seed 0: exact spacing.
  const auto arrivals = generate_arrivals(s);
  ASSERT_EQ(arrivals.size(), 10u);
  EXPECT_DOUBLE_EQ(arrivals[3].time, 30000.0);

  // Nonzero seed: exponential gaps, bit-identical across calls.
  std::string body(kValid);
  body.replace(body.find("Seed: 0"), 7, "Seed: 42");
  const Scenario seeded = parse_scenario(body);
  const auto a = generate_arrivals(seeded);
  const auto b = generate_arrivals(seeded);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time, b[i].time);
    EXPECT_EQ(a[i].task_class, b[i].task_class);
  }
  ASSERT_GE(a.size(), 2u);
  EXPECT_NE(a[1].time - a[0].time, 10000.0);  // not the fixed spacing

  // The arrival budget fails loudly, naming the class.
  EXPECT_THROW(generate_arrivals(s, 5), ScenarioError);
}

}  // namespace
