#include "core/standard_form.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "linalg/svd.hpp"

namespace {

using hetero::ConvergenceError;
using hetero::ValueError;
using hetero::core::classify_pattern;
using hetero::core::EcsMatrix;
using hetero::core::NormalizabilityClass;
using hetero::core::SinkhornOptions;
using hetero::core::standard_form_residual;
using hetero::core::standardize;
using hetero::core::Weights;
using hetero::linalg::Matrix;

Matrix random_positive(std::size_t rows, std::size_t cols, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(0.1, 10.0);
  Matrix m(rows, cols);
  for (double& x : m.data()) x = dist(rng);
  return m;
}

TEST(StandardForm, TargetsFollowTheorem1WithK) {
  // k = 1/sqrt(TM): rows sum to sqrt(M/T), columns to sqrt(T/M).
  const auto r = standardize(random_positive(3, 5, 1));
  EXPECT_DOUBLE_EQ(r.target_row_sum, std::sqrt(5.0 / 3.0));
  EXPECT_DOUBLE_EQ(r.target_col_sum, std::sqrt(3.0 / 5.0));
}

TEST(StandardForm, PositiveMatrixConverges) {
  const Matrix m = random_positive(4, 6, 2);
  const auto r = standardize(m);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.pattern, NormalizabilityClass::positive);
  EXPECT_FALSE(r.projected_to_core);
  EXPECT_LT(r.residual, 1e-8);
  EXPECT_LT(standard_form_residual(r.standard, r.target_row_sum,
                                   r.target_col_sum),
            1e-8);
}

TEST(StandardForm, LargestSingularValueIsOneTheorem2) {
  for (unsigned seed : {3u, 4u, 5u}) {
    const auto r = standardize(random_positive(5, 3, seed));
    const auto sigma = hetero::linalg::singular_values(r.standard);
    EXPECT_NEAR(sigma.front(), 1.0, 1e-7) << "seed " << seed;
  }
}

TEST(StandardForm, ScalingConsistency) {
  // standard == diag(row_scale) * input * diag(col_scale) for normalizable
  // patterns.
  const Matrix m = random_positive(4, 4, 6);
  const auto r = standardize(m);
  Matrix rebuilt = m;
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t j = 0; j < m.cols(); ++j)
      rebuilt(i, j) *= r.row_scale[i] * r.col_scale[j];
  EXPECT_LT(hetero::linalg::max_abs_diff(rebuilt, r.standard), 1e-10);
}

TEST(StandardForm, ScaleInvariance) {
  const Matrix m = random_positive(3, 3, 7);
  const auto a = standardize(m);
  const auto b = standardize(m * 123.0);
  EXPECT_LT(hetero::linalg::max_abs_diff(a.standard, b.standard), 1e-7);
}

TEST(StandardForm, AlreadyStandardIsFixedPoint) {
  // The 2x2 exchange matrix is standard for T = M = 2 (row/col sums 1).
  const Matrix c{{0, 1}, {1, 0}};
  const auto r = standardize(c);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.iterations, 1u);
  EXPECT_LT(hetero::linalg::max_abs_diff(r.standard, c), 1e-12);
}

TEST(StandardForm, DoublyStochasticScaledSquare) {
  // For square T = M the targets are row = col = 1.
  const auto r = standardize(random_positive(4, 4, 8));
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_NEAR(r.standard.row_sum(i), 1.0, 1e-8);
  for (std::size_t j = 0; j < 4; ++j)
    EXPECT_NEAR(r.standard.col_sum(j), 1.0, 1e-8);
}

TEST(StandardForm, TotalSupportPatternConverges) {
  // Block diagonal: decomposable but totally supported -> exact standard
  // form exists (the paper's "sufficient, not necessary" remark).
  const Matrix m{{2, 3, 0}, {4, 5, 0}, {0, 0, 7}};
  const auto r = standardize(m);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.pattern, NormalizabilityClass::normalizable_pattern);
  EXPECT_FALSE(r.projected_to_core);
}

TEST(StandardForm, LimitOnlyPatternProjectsToCore) {
  // Support without total support: entry (0,1)'s mass must vanish in the
  // limit; the implementation projects to the core and converges to it.
  const Matrix m{{10, 5}, {0, 1}};
  const auto r = standardize(m);
  EXPECT_EQ(r.pattern, NormalizabilityClass::limit_only);
  EXPECT_TRUE(r.projected_to_core);
  EXPECT_TRUE(r.converged);
  // Limit is the identity pattern scaled to row/col sums 1.
  EXPECT_NEAR(r.standard(0, 0), 1.0, 1e-8);
  EXPECT_NEAR(r.standard(0, 1), 0.0, 1e-8);
  EXPECT_NEAR(r.standard(1, 1), 1.0, 1e-8);
}

TEST(StandardForm, Eq10MatrixHasNoExactStandardForm) {
  const Matrix eq10{{0, 0, 1}, {1, 0, 1}, {0, 1, 0}};
  EXPECT_EQ(classify_pattern(eq10), NormalizabilityClass::limit_only);
  const auto r = standardize(eq10);
  EXPECT_TRUE(r.projected_to_core);
  // The limit is the permutation matrix with (1,2) zeroed.
  EXPECT_NEAR(r.standard(1, 2), 0.0, 1e-12);
  EXPECT_NEAR(r.standard(1, 0), 1.0, 1e-8);
}

TEST(StandardForm, NoSupportDoesNotConverge) {
  const Matrix m{{1, 1, 0, 0}, {1, 1, 0, 0}, {1, 1, 0, 0}, {0, 0, 1, 1}};
  SinkhornOptions opts;
  opts.max_iterations = 200;
  const auto r = standardize(m, opts);
  EXPECT_EQ(r.pattern, NormalizabilityClass::not_normalizable);
  EXPECT_FALSE(r.converged);
  EXPECT_GT(r.residual, 1e-8);
}

TEST(StandardForm, ThrowOnFailureOption) {
  const Matrix m{{1, 1, 0, 0}, {1, 1, 0, 0}, {1, 1, 0, 0}, {0, 0, 1, 1}};
  SinkhornOptions opts;
  opts.max_iterations = 50;
  opts.throw_on_failure = true;
  EXPECT_THROW(standardize(m, opts), ConvergenceError);
}

TEST(StandardForm, InvalidInputsRejected) {
  EXPECT_THROW(standardize(Matrix{}), ValueError);
  EXPECT_THROW(standardize(Matrix{{1, -1}, {1, 1}}), ValueError);
  EXPECT_THROW(standardize(Matrix{{0, 0}, {1, 1}}), ValueError);
  EXPECT_THROW(standardize(Matrix{{0, 1}, {0, 1}}), ValueError);
  EXPECT_THROW(standardize(Matrix{{1.0, std::nan("")}, {1, 1}}), ValueError);
}

TEST(StandardForm, RowFirstOrderingReachesSameForm) {
  // Theorem 1: D1, D2 unique up to a scalar, so the standard form itself
  // is unique — both orderings must converge to it.
  const Matrix m = random_positive(6, 4, 21);
  SinkhornOptions row_first;
  row_first.row_first = true;
  const auto a = standardize(m);
  const auto b = standardize(m, row_first);
  EXPECT_TRUE(a.converged);
  EXPECT_TRUE(b.converged);
  EXPECT_LT(hetero::linalg::max_abs_diff(a.standard, b.standard), 1e-7);
}

TEST(StandardForm, WeightedEcsOverload) {
  EcsMatrix ecs(Matrix{{1, 2}, {3, 4}});
  Weights w;
  w.task = {1.0, 2.0};
  const auto r = standardize(ecs, w);
  EXPECT_TRUE(r.converged);
  // Same as standardizing the weighted view directly.
  const auto direct = standardize(ecs.weighted_values(w));
  EXPECT_LT(hetero::linalg::max_abs_diff(r.standard, direct.standard), 1e-12);
}

TEST(StandardForm, SingleRowMatrix) {
  const auto r = standardize(Matrix{{1, 2, 3}});
  EXPECT_TRUE(r.converged);
  for (std::size_t j = 0; j < 3; ++j)
    EXPECT_NEAR(r.standard.col_sum(j), r.target_col_sum, 1e-9);
}

TEST(StandardForm, SingleColumnMatrix) {
  const auto r = standardize(Matrix{{1}, {2}, {3}});
  EXPECT_TRUE(r.converged);
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_NEAR(r.standard.row_sum(i), r.target_row_sum, 1e-9);
}

class SinkhornShapes
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(SinkhornShapes, ConvergesWithExactSums) {
  const auto [t, m] = GetParam();
  const Matrix input = random_positive(t, m, static_cast<unsigned>(t * 31 + m));
  const auto r = standardize(input);
  ASSERT_TRUE(r.converged);
  for (std::size_t i = 0; i < t; ++i)
    EXPECT_NEAR(r.standard.row_sum(i), r.target_row_sum, 1e-7);
  for (std::size_t j = 0; j < m; ++j)
    EXPECT_NEAR(r.standard.col_sum(j), r.target_col_sum, 1e-7);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SinkhornShapes,
    ::testing::Values(std::pair<std::size_t, std::size_t>{1, 1},
                      std::pair<std::size_t, std::size_t>{2, 2},
                      std::pair<std::size_t, std::size_t>{2, 5},
                      std::pair<std::size_t, std::size_t>{5, 2},
                      std::pair<std::size_t, std::size_t>{12, 5},
                      std::pair<std::size_t, std::size_t>{17, 5},
                      std::pair<std::size_t, std::size_t>{10, 10},
                      std::pair<std::size_t, std::size_t>{31, 7}));

}  // namespace
