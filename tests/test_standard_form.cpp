#include "core/standard_form.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "linalg/svd.hpp"
#include "parallel/thread_pool.hpp"

namespace {

using hetero::ConvergenceError;
using hetero::ValueError;
using hetero::core::classify_pattern;
using hetero::core::EcsMatrix;
using hetero::core::NormalizabilityClass;
using hetero::core::SinkhornOptions;
using hetero::core::standard_form_residual;
using hetero::core::standardize;
using hetero::core::Weights;
using hetero::linalg::Matrix;

Matrix random_positive(std::size_t rows, std::size_t cols, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(0.1, 10.0);
  Matrix m(rows, cols);
  for (double& x : m.data()) x = dist(rng);
  return m;
}

TEST(StandardForm, TargetsFollowTheorem1WithK) {
  // k = 1/sqrt(TM): rows sum to sqrt(M/T), columns to sqrt(T/M).
  const auto r = standardize(random_positive(3, 5, 1));
  EXPECT_DOUBLE_EQ(r.target_row_sum, std::sqrt(5.0 / 3.0));
  EXPECT_DOUBLE_EQ(r.target_col_sum, std::sqrt(3.0 / 5.0));
}

TEST(StandardForm, PositiveMatrixConverges) {
  const Matrix m = random_positive(4, 6, 2);
  const auto r = standardize(m);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.pattern, NormalizabilityClass::positive);
  EXPECT_FALSE(r.projected_to_core);
  EXPECT_LT(r.residual, 1e-8);
  EXPECT_LT(standard_form_residual(r.standard, r.target_row_sum,
                                   r.target_col_sum),
            1e-8);
}

TEST(StandardForm, LargestSingularValueIsOneTheorem2) {
  for (unsigned seed : {3u, 4u, 5u}) {
    const auto r = standardize(random_positive(5, 3, seed));
    const auto sigma = hetero::linalg::singular_values(r.standard);
    EXPECT_NEAR(sigma.front(), 1.0, 1e-7) << "seed " << seed;
  }
}

TEST(StandardForm, ScalingConsistency) {
  // standard == diag(row_scale) * input * diag(col_scale) for normalizable
  // patterns.
  const Matrix m = random_positive(4, 4, 6);
  const auto r = standardize(m);
  Matrix rebuilt = m;
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t j = 0; j < m.cols(); ++j)
      rebuilt(i, j) *= r.row_scale[i] * r.col_scale[j];
  EXPECT_LT(hetero::linalg::max_abs_diff(rebuilt, r.standard), 1e-10);
}

TEST(StandardForm, ScaleInvariance) {
  const Matrix m = random_positive(3, 3, 7);
  const auto a = standardize(m);
  const auto b = standardize(m * 123.0);
  EXPECT_LT(hetero::linalg::max_abs_diff(a.standard, b.standard), 1e-7);
}

TEST(StandardForm, AlreadyStandardIsFixedPoint) {
  // The 2x2 exchange matrix is standard for T = M = 2 (row/col sums 1).
  const Matrix c{{0, 1}, {1, 0}};
  const auto r = standardize(c);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.iterations, 1u);
  EXPECT_LT(hetero::linalg::max_abs_diff(r.standard, c), 1e-12);
}

TEST(StandardForm, DoublyStochasticScaledSquare) {
  // For square T = M the targets are row = col = 1.
  const auto r = standardize(random_positive(4, 4, 8));
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_NEAR(r.standard.row_sum(i), 1.0, 1e-8);
  for (std::size_t j = 0; j < 4; ++j)
    EXPECT_NEAR(r.standard.col_sum(j), 1.0, 1e-8);
}

TEST(StandardForm, TotalSupportPatternConverges) {
  // Block diagonal: decomposable but totally supported -> exact standard
  // form exists (the paper's "sufficient, not necessary" remark).
  const Matrix m{{2, 3, 0}, {4, 5, 0}, {0, 0, 7}};
  const auto r = standardize(m);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.pattern, NormalizabilityClass::normalizable_pattern);
  EXPECT_FALSE(r.projected_to_core);
}

TEST(StandardForm, LimitOnlyPatternProjectsToCore) {
  // Support without total support: entry (0,1)'s mass must vanish in the
  // limit; the implementation projects to the core and converges to it.
  const Matrix m{{10, 5}, {0, 1}};
  const auto r = standardize(m);
  EXPECT_EQ(r.pattern, NormalizabilityClass::limit_only);
  EXPECT_TRUE(r.projected_to_core);
  EXPECT_TRUE(r.converged);
  // Limit is the identity pattern scaled to row/col sums 1.
  EXPECT_NEAR(r.standard(0, 0), 1.0, 1e-8);
  EXPECT_NEAR(r.standard(0, 1), 0.0, 1e-8);
  EXPECT_NEAR(r.standard(1, 1), 1.0, 1e-8);
}

TEST(StandardForm, Eq10MatrixHasNoExactStandardForm) {
  const Matrix eq10{{0, 0, 1}, {1, 0, 1}, {0, 1, 0}};
  EXPECT_EQ(classify_pattern(eq10), NormalizabilityClass::limit_only);
  const auto r = standardize(eq10);
  EXPECT_TRUE(r.projected_to_core);
  // The limit is the permutation matrix with (1,2) zeroed.
  EXPECT_NEAR(r.standard(1, 2), 0.0, 1e-12);
  EXPECT_NEAR(r.standard(1, 0), 1.0, 1e-8);
}

TEST(StandardForm, NoSupportDoesNotConverge) {
  const Matrix m{{1, 1, 0, 0}, {1, 1, 0, 0}, {1, 1, 0, 0}, {0, 0, 1, 1}};
  SinkhornOptions opts;
  opts.max_iterations = 200;
  const auto r = standardize(m, opts);
  EXPECT_EQ(r.pattern, NormalizabilityClass::not_normalizable);
  EXPECT_FALSE(r.converged);
  EXPECT_GT(r.residual, 1e-8);
}

TEST(StandardForm, ThrowOnFailureOption) {
  const Matrix m{{1, 1, 0, 0}, {1, 1, 0, 0}, {1, 1, 0, 0}, {0, 0, 1, 1}};
  SinkhornOptions opts;
  opts.max_iterations = 50;
  opts.throw_on_failure = true;
  EXPECT_THROW(standardize(m, opts), ConvergenceError);
}

TEST(StandardForm, InvalidInputsRejected) {
  EXPECT_THROW(standardize(Matrix{}), ValueError);
  EXPECT_THROW(standardize(Matrix{{1, -1}, {1, 1}}), ValueError);
  EXPECT_THROW(standardize(Matrix{{0, 0}, {1, 1}}), ValueError);
  EXPECT_THROW(standardize(Matrix{{0, 1}, {0, 1}}), ValueError);
  EXPECT_THROW(standardize(Matrix{{1.0, std::nan("")}, {1, 1}}), ValueError);
}

TEST(StandardForm, RowFirstOrderingReachesSameForm) {
  // Theorem 1: D1, D2 unique up to a scalar, so the standard form itself
  // is unique — both orderings must converge to it.
  const Matrix m = random_positive(6, 4, 21);
  SinkhornOptions row_first;
  row_first.row_first = true;
  const auto a = standardize(m);
  const auto b = standardize(m, row_first);
  EXPECT_TRUE(a.converged);
  EXPECT_TRUE(b.converged);
  EXPECT_LT(hetero::linalg::max_abs_diff(a.standard, b.standard), 1e-7);
}

TEST(StandardForm, WeightedEcsOverload) {
  EcsMatrix ecs(Matrix{{1, 2}, {3, 4}});
  Weights w;
  w.task = {1.0, 2.0};
  const auto r = standardize(ecs, w);
  EXPECT_TRUE(r.converged);
  // Same as standardizing the weighted view directly.
  const auto direct = standardize(ecs.weighted_values(w));
  EXPECT_LT(hetero::linalg::max_abs_diff(r.standard, direct.standard), 1e-12);
}

TEST(StandardForm, SingleRowMatrix) {
  const auto r = standardize(Matrix{{1, 2, 3}});
  EXPECT_TRUE(r.converged);
  for (std::size_t j = 0; j < 3; ++j)
    EXPECT_NEAR(r.standard.col_sum(j), r.target_col_sum, 1e-9);
}

TEST(StandardForm, SingleColumnMatrix) {
  const auto r = standardize(Matrix{{1}, {2}, {3}});
  EXPECT_TRUE(r.converged);
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_NEAR(r.standard.row_sum(i), r.target_row_sum, 1e-9);
}

class SinkhornShapes
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(SinkhornShapes, ConvergesWithExactSums) {
  const auto [t, m] = GetParam();
  const Matrix input = random_positive(t, m, static_cast<unsigned>(t * 31 + m));
  const auto r = standardize(input);
  ASSERT_TRUE(r.converged);
  for (std::size_t i = 0; i < t; ++i)
    EXPECT_NEAR(r.standard.row_sum(i), r.target_row_sum, 1e-7);
  for (std::size_t j = 0; j < m; ++j)
    EXPECT_NEAR(r.standard.col_sum(j), r.target_col_sum, 1e-7);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SinkhornShapes,
    ::testing::Values(std::pair<std::size_t, std::size_t>{1, 1},
                      std::pair<std::size_t, std::size_t>{2, 2},
                      std::pair<std::size_t, std::size_t>{2, 5},
                      std::pair<std::size_t, std::size_t>{5, 2},
                      std::pair<std::size_t, std::size_t>{12, 5},
                      std::pair<std::size_t, std::size_t>{17, 5},
                      std::pair<std::size_t, std::size_t>{10, 10},
                      std::pair<std::size_t, std::size_t>{31, 7}));

// ---- Fused-vs-reference and warm-start equivalence ----

using hetero::DimensionError;
using hetero::core::standardize_positive_into;
using hetero::core::standardize_reference;
using hetero::core::StandardFormResult;
using hetero::linalg::max_abs_diff;

TEST(StandardFormEquivalence, FusedMatchesReferenceOnPositive) {
  for (auto [t, m] : {std::pair<std::size_t, std::size_t>{4, 3},
                      std::pair<std::size_t, std::size_t>{12, 5},
                      std::pair<std::size_t, std::size_t>{7, 11},
                      std::pair<std::size_t, std::size_t>{32, 16}}) {
    const Matrix ecs = random_positive(t, m, static_cast<unsigned>(71 + t));
    const auto fused = standardize(ecs);
    const auto ref = standardize_reference(ecs);
    EXPECT_EQ(fused.iterations, ref.iterations) << t << "x" << m;
    EXPECT_EQ(fused.converged, ref.converged);
    EXPECT_LE(max_abs_diff(fused.standard, ref.standard), 1e-12);
    for (std::size_t i = 0; i < t; ++i)
      EXPECT_NEAR(fused.row_scale[i], ref.row_scale[i],
                  1e-12 * std::abs(ref.row_scale[i]));
    for (std::size_t j = 0; j < m; ++j)
      EXPECT_NEAR(fused.col_scale[j], ref.col_scale[j],
                  1e-12 * std::abs(ref.col_scale[j]));
  }
}

TEST(StandardFormEquivalence, FusedMatchesReferenceOnLimitOnly) {
  const Matrix m{{10, 5}, {0, 1}};
  const auto fused = standardize(m);
  const auto ref = standardize_reference(m);
  EXPECT_EQ(fused.pattern, NormalizabilityClass::limit_only);
  EXPECT_EQ(fused.iterations, ref.iterations);
  EXPECT_LE(max_abs_diff(fused.standard, ref.standard), 1e-12);
}

TEST(StandardFormEquivalence, FusedMatchesReferenceOnRankDeficient) {
  // Positive rank-1 input: Sinkhorn converges in one iteration and the
  // standard form is the constant matrix.
  Matrix m(6, 4);
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t j = 0; j < 4; ++j)
      m(i, j) = (1.0 + static_cast<double>(i)) *
                (2.0 + static_cast<double>(j));
  const auto fused = standardize(m);
  const auto ref = standardize_reference(m);
  EXPECT_EQ(fused.iterations, ref.iterations);
  EXPECT_LE(max_abs_diff(fused.standard, ref.standard), 1e-12);
}

TEST(StandardFormWarm, AllOnesSeedEqualsColdStart) {
  const Matrix ecs = random_positive(9, 6, 5);
  const auto cold = standardize(ecs);
  SinkhornOptions warm;
  warm.warm_row_scale.assign(9, 1.0);
  warm.warm_col_scale.assign(6, 1.0);
  const auto seeded = standardize(ecs, warm);
  EXPECT_EQ(seeded.iterations, cold.iterations);
  EXPECT_EQ(seeded.standard, cold.standard);  // bit-identical
  EXPECT_EQ(seeded.row_scale, cold.row_scale);
  EXPECT_EQ(seeded.col_scale, cold.col_scale);
}

TEST(StandardFormWarm, ConvergedScalesReconvergeQuickly) {
  // At a tight tolerance both runs land on the (unique) fixed point, so the
  // warm restart must agree to 1e-12 rather than only to the tolerance.
  const Matrix ecs = random_positive(12, 7, 17);
  SinkhornOptions tight;
  tight.tolerance = 1e-13;
  const auto cold = standardize(ecs, tight);
  SinkhornOptions warm = tight;
  warm.warm_row_scale = cold.row_scale;
  warm.warm_col_scale = cold.col_scale;
  const auto seeded = standardize(ecs, warm);
  // Restarting at the fixed point must cost at most the cold iteration
  // count and land on the same standard form; the seed is folded into the
  // reported scales, so they still map the ORIGINAL input.
  EXPECT_LE(seeded.iterations, cold.iterations);
  EXPECT_LE(max_abs_diff(seeded.standard, cold.standard), 1e-12);
  for (std::size_t i = 0; i < ecs.rows(); ++i)
    EXPECT_NEAR(seeded.row_scale[i] * seeded.col_scale[0] * ecs(i, 0),
                seeded.standard(i, 0), 1e-12);
}

TEST(StandardFormWarm, ValidatesSeedShapeAndSign) {
  const Matrix ecs = random_positive(4, 3, 2);
  SinkhornOptions bad_size;
  bad_size.warm_row_scale.assign(5, 1.0);  // 4 rows
  EXPECT_THROW(standardize(ecs, bad_size), DimensionError);
  SinkhornOptions bad_value;
  bad_value.warm_col_scale.assign(3, 1.0);
  bad_value.warm_col_scale[1] = -2.0;
  EXPECT_THROW(standardize(ecs, bad_value), ValueError);
  StandardFormResult out;
  EXPECT_THROW(standardize_positive_into(ecs, bad_size, out), DimensionError);
  EXPECT_THROW(standardize_positive_into(ecs, bad_value, out), ValueError);
}

TEST(StandardFormLean, PositiveIntoMatchesStandardizeExactly) {
  StandardFormResult out;  // reused across shapes to exercise storage reuse
  for (auto [t, m] : {std::pair<std::size_t, std::size_t>{8, 5},
                      std::pair<std::size_t, std::size_t>{5, 8},
                      std::pair<std::size_t, std::size_t>{16, 16}}) {
    const Matrix ecs = random_positive(t, m, static_cast<unsigned>(3 * t));
    const auto full = standardize(ecs);
    standardize_positive_into(ecs, {}, out);
    EXPECT_EQ(out.standard, full.standard);  // bit-identical
    EXPECT_EQ(out.row_scale, full.row_scale);
    EXPECT_EQ(out.col_scale, full.col_scale);
    EXPECT_EQ(out.iterations, full.iterations);
    EXPECT_EQ(out.residual, full.residual);
    EXPECT_TRUE(out.converged);
    EXPECT_EQ(out.pattern, NormalizabilityClass::positive);

    // Warm-seeded calls must agree with the validating front end too.
    SinkhornOptions warm;
    warm.warm_row_scale = full.row_scale;
    warm.warm_col_scale = full.col_scale;
    const auto full_warm = standardize(ecs, warm);
    standardize_positive_into(ecs, warm, out);
    EXPECT_EQ(out.standard, full_warm.standard);
    EXPECT_EQ(out.iterations, full_warm.iterations);
  }
}

// ---- Scale-factor overflow guards ----

using hetero::ScaleOverflowError;
using hetero::core::standardize_tiled;
using hetero::par::ThreadPool;

TEST(StandardFormOverflow, TinyEntriesConvergeViaClampedFactors) {
  // Row sums near 4e-300 ask for scale factors ~1e299 < clamp: fine. But a
  // uniformly denormal-scale matrix exercises the clamp branch on the way
  // up without ever producing a non-finite entry.
  const Matrix tiny(4, 4, 1e-300);
  const auto r = standardize(tiny);
  EXPECT_TRUE(r.converged);
  EXPECT_FALSE(r.standard.has_nonfinite());
  EXPECT_NEAR(r.standard(0, 0), 0.25, 1e-12);

  const Matrix denorm(3, 3, 5e-324);
  const auto rd = standardize(denorm);
  EXPECT_TRUE(rd.converged);
  EXPECT_FALSE(rd.standard.has_nonfinite());
}

TEST(StandardFormOverflow, NonFiniteSumsThrowTypedError) {
  // 1e308 + 1e308 overflows the row sum to +inf — the guard must surface a
  // ScaleOverflowError (a ValueError) instead of poisoning the iteration
  // with NaNs from inf/inf.
  const Matrix huge{{1e308, 1e308}, {1e308, 1.0}};
  EXPECT_THROW(standardize(huge), ScaleOverflowError);
  EXPECT_THROW(standardize_reference(huge), ScaleOverflowError);
  ThreadPool pool(2);
  EXPECT_THROW(standardize_tiled(huge, {}, pool), ScaleOverflowError);
  // ScaleOverflowError is catchable as the ValueError family.
  EXPECT_THROW(standardize(huge), ValueError);
}

TEST(StandardFormOverflow, MixedMagnitudesStayFinite) {
  // 250 orders of magnitude apart within one matrix: per-pass factors stay
  // below the clamp and the standard form is exact.
  Matrix m{{1e-250, 1.0}, {1.0, 1e250}};
  const auto r = standardize(m);
  EXPECT_TRUE(r.converged);
  EXPECT_FALSE(r.standard.has_nonfinite());
  for (std::size_t i = 0; i < 2; ++i)
    EXPECT_NEAR(r.standard.row_sum(i), r.target_row_sum, 1e-7);
}

TEST(StandardFormTiled, MatchesFusedAcrossShapes) {
  ThreadPool pool(3);
  for (auto [t, m] : {std::pair<std::size_t, std::size_t>{1, 1},
                      std::pair<std::size_t, std::size_t>{5, 2},
                      std::pair<std::size_t, std::size_t>{63, 17},
                      std::pair<std::size_t, std::size_t>{130, 40}}) {
    const Matrix ecs = random_positive(t, m, static_cast<unsigned>(91 + t));
    const auto fused = standardize(ecs);
    const auto tiled = standardize_tiled(ecs, {}, pool);
    EXPECT_EQ(tiled.converged, fused.converged) << t << "x" << m;
    EXPECT_EQ(tiled.iterations, fused.iterations) << t << "x" << m;
    EXPECT_LE(max_abs_diff(tiled.standard, fused.standard), 1e-8)
        << t << "x" << m;
  }
}

TEST(StandardFormTiled, ValidatesLikeTheFusedPath) {
  ThreadPool pool(2);
  EXPECT_THROW(standardize_tiled(Matrix{}, {}, pool), ValueError);
  EXPECT_THROW(standardize_tiled(Matrix{{1.0, -1.0}, {1.0, 1.0}}, {}, pool),
               ValueError);
  SinkhornOptions opts;
  EXPECT_THROW(standardize_tiled(Matrix{{1.0, 2.0}}, opts, pool, 0),
               ValueError);
  // Zero patterns go through the same classification as the fused path:
  // limit_only inputs project to the core and still converge.
  const auto r = standardize_tiled(Matrix{{10.0, 5.0}, {0.0, 1.0}}, {}, pool);
  EXPECT_EQ(r.pattern, NormalizabilityClass::limit_only);
  EXPECT_TRUE(r.projected_to_core);
  EXPECT_TRUE(r.converged);
}

}  // namespace
