// Metamorphic relations: transformations of an environment with provable
// effects on the measures. Each test states the relation it checks.
#include <gtest/gtest.h>

#include <random>

#include "core/measures.hpp"
#include "core/whatif.hpp"
#include "linalg/matrix.hpp"

namespace {

using hetero::core::EcsMatrix;
using hetero::core::measure_set;
using hetero::core::MeasureSet;
using hetero::linalg::Matrix;

Matrix random_positive(std::size_t rows, std::size_t cols, unsigned seed) {
  std::mt19937 rng(seed);
  std::lognormal_distribution<double> dist(0.0, 0.7);
  Matrix m(rows, cols);
  for (double& x : m.data()) x = dist(rng);
  return m;
}

class Metamorphic : public ::testing::TestWithParam<unsigned> {
 protected:
  Matrix base() const { return random_positive(6, 4, GetParam()); }
};

TEST_P(Metamorphic, TransposeSwapsMphTdhAndPreservesTma) {
  // Transposing an environment swaps the roles of tasks and machines: MPH
  // and TDH exchange, TMA (symmetric in the standard form) is unchanged.
  const Matrix m = base();
  const auto a = measure_set(EcsMatrix(m));
  const auto b = measure_set(EcsMatrix(m.transposed()));
  EXPECT_NEAR(a.mph, b.tdh, 1e-10);
  EXPECT_NEAR(a.tdh, b.mph, 1e-10);
  EXPECT_NEAR(a.tma, b.tma, 1e-6);
}

TEST_P(Metamorphic, DuplicatingEveryTaskPreservesAllMeasures) {
  // Two copies of every row: TDs double in count but keep their ratios;
  // MPs double in value (scale-invariance); the standard form's affinity
  // structure is unchanged.
  const Matrix m = base();
  Matrix doubled(m.rows() * 2, m.cols());
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t j = 0; j < m.cols(); ++j)
      doubled(2 * i, j) = doubled(2 * i + 1, j) = m(i, j);
  const auto a = measure_set(EcsMatrix(m));
  const auto b = measure_set(EcsMatrix(doubled));
  EXPECT_NEAR(a.mph, b.mph, 1e-10);
  EXPECT_NEAR(a.tma, b.tma, 1e-6);
  // TDH gains T extra unit ratios (the duplicates tie): it can only move
  // toward 1.
  EXPECT_GE(b.tdh, a.tdh - 1e-10);
}

TEST_P(Metamorphic, AddingAnAverageMachineRaisesOrKeepsMph) {
  // A machine whose column equals the row-wise mean of the environment has
  // MP equal to the mean MP; inserting a value at the mean cannot make the
  // sorted adjacent-ratio profile *more* extreme than appending an
  // outlier would. (Weak form: adding a clone of an existing machine
  // keeps every adjacent ratio and adds a 1-ratio, so MPH cannot drop.)
  const Matrix m = base();
  const EcsMatrix ecs(m);
  const auto clone = m.col(1);
  const auto grown = hetero::core::add_machine(ecs, clone);
  EXPECT_GE(measure_set(grown).mph, measure_set(ecs).mph - 1e-10);
}

TEST_P(Metamorphic, AddingAnExtremeOutlierMachineLowersMph) {
  const Matrix m = base();
  const EcsMatrix ecs(m);
  std::vector<double> monster(m.rows());
  for (std::size_t i = 0; i < m.rows(); ++i) monster[i] = 1000.0 * m(i, 0);
  const auto grown = hetero::core::add_machine(ecs, monster);
  EXPECT_LT(measure_set(grown).mph, measure_set(ecs).mph);
}

TEST_P(Metamorphic, MergingTwoEnvironmentsSideBySide) {
  // Stacking two copies of the machine set side by side (block [E | E])
  // duplicates every MP: MPH cannot drop and TDH is untouched. The
  // duplicated columns add *no new singular directions* — the non-zero
  // non-maximum singular values are identical — but min(T, M) grows from
  // 4 to 6, so eq. 8's denominator dilutes TMA by exactly (4-1)/(6-1).
  const Matrix m = base();  // 6 x 4
  Matrix wide(m.rows(), m.cols() * 2);
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t j = 0; j < m.cols(); ++j)
      wide(i, j) = wide(i, j + m.cols()) = m(i, j);
  const auto a = measure_set(EcsMatrix(m));
  const auto b = measure_set(EcsMatrix(wide));
  EXPECT_GE(b.mph, a.mph - 1e-10);
  EXPECT_NEAR(a.tdh, b.tdh, 1e-10);
  EXPECT_NEAR(b.tma * 5.0, a.tma * 3.0, 1e-6);
}

TEST_P(Metamorphic, SwappingTwoMachinesIsInvisible) {
  const Matrix m = base();
  std::vector<std::size_t> tp(m.rows()), mp{1, 0, 2, 3};
  for (std::size_t i = 0; i < m.rows(); ++i) tp[i] = i;
  const auto a = measure_set(EcsMatrix(m));
  const auto b = measure_set(EcsMatrix(m).permuted(tp, mp));
  EXPECT_NEAR(a.mph, b.mph, 1e-12);
  EXPECT_NEAR(a.tdh, b.tdh, 1e-12);
  EXPECT_NEAR(a.tma, b.tma, 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Metamorphic, ::testing::Range(400u, 410u));

}  // namespace
