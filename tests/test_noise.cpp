#include "etcgen/noise.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/measures.hpp"
#include "spec/spec_data.hpp"

namespace {

using hetero::ValueError;
using hetero::core::EtcMatrix;
using hetero::linalg::Matrix;
namespace eg = hetero::etcgen;

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(Noise, ZeroCovIsIdentity) {
  eg::Rng rng = eg::make_rng(1);
  const auto& etc = hetero::spec::spec_cint2006rate();
  EXPECT_EQ(eg::perturb_lognormal(etc, 0.0, rng).values(), etc.values());
  EXPECT_EQ(eg::perturb_uniform(etc, 0.0, rng).values(), etc.values());
}

TEST(Noise, LognormalKeepsPositivityAndLabels) {
  eg::Rng rng = eg::make_rng(2);
  const auto& etc = hetero::spec::spec_cfp2006rate();
  const auto noisy = eg::perturb_lognormal(etc, 0.3, rng);
  EXPECT_TRUE(noisy.values().all_positive());
  EXPECT_EQ(noisy.task_names(), etc.task_names());
  EXPECT_NE(noisy.values(), etc.values());
}

TEST(Noise, LognormalCovRoughlyCalibrated) {
  // Perturb an all-equal matrix; the sample COV of the result should be
  // close to the requested COV.
  eg::Rng rng = eg::make_rng(3);
  EtcMatrix flat(Matrix(40, 25, 100.0));
  const auto noisy = eg::perturb_lognormal(flat, 0.25, rng);
  std::vector<double> values(noisy.values().data().begin(),
                             noisy.values().data().end());
  double mean = 0.0;
  for (double v : values) mean += v;
  mean /= static_cast<double>(values.size());
  double var = 0.0;
  for (double v : values) var += (v - mean) * (v - mean);
  var /= static_cast<double>(values.size());
  EXPECT_NEAR(std::sqrt(var) / mean, 0.25, 0.04);
}

TEST(Noise, UniformStaysWithinSpread) {
  eg::Rng rng = eg::make_rng(4);
  EtcMatrix flat(Matrix(10, 10, 100.0));
  const auto noisy = eg::perturb_uniform(flat, 0.2, rng);
  EXPECT_GE(noisy.values().min(), 80.0);
  EXPECT_LE(noisy.values().max(), 120.0);
}

TEST(Noise, PreservesInfiniteEntries) {
  eg::Rng rng = eg::make_rng(5);
  EtcMatrix etc(Matrix{{1, kInf}, {2, 3}});
  const auto noisy = eg::perturb_lognormal(etc, 0.5, rng);
  EXPECT_TRUE(std::isinf(noisy(0, 1)));
  EXPECT_TRUE(std::isfinite(noisy(1, 1)));
}

TEST(Noise, RejectsBadParameters) {
  eg::Rng rng = eg::make_rng(6);
  EtcMatrix etc(Matrix{{1, 2}, {3, 4}});
  EXPECT_THROW(eg::perturb_lognormal(etc, -0.1, rng), ValueError);
  EXPECT_THROW(eg::perturb_uniform(etc, 1.0, rng), ValueError);
  EXPECT_THROW(eg::drop_capabilities(etc, 1.0, rng), ValueError);
}

TEST(Noise, DropCapabilitiesKeepsInvariants) {
  eg::Rng rng = eg::make_rng(7);
  EtcMatrix etc(Matrix(6, 4, 10.0));
  const auto dropped = eg::drop_capabilities(etc, 0.5, rng);
  // Constructor would have thrown if a row/column went all-infinite; also
  // verify some capability was actually dropped at p = 0.5.
  std::size_t inf_count = 0;
  for (double v : dropped.values().data())
    if (std::isinf(v)) ++inf_count;
  EXPECT_GT(inf_count, 0u);
  EXPECT_NO_THROW(dropped.to_ecs());
}

TEST(Noise, DropZeroProbabilityIsIdentity) {
  eg::Rng rng = eg::make_rng(8);
  const auto& etc = hetero::spec::spec_cint2006rate();
  EXPECT_EQ(eg::drop_capabilities(etc, 0.0, rng).values(), etc.values());
}

TEST(Noise, SmallNoiseSmallMeasureDrift) {
  // The measures should be stable under small estimation error: 5% noise
  // must not move any measure by more than a few points.
  eg::Rng rng = eg::make_rng(9);
  const auto ecs = hetero::spec::spec_cint2006rate().to_ecs();
  const auto base = hetero::core::measure_set(ecs);
  for (int rep = 0; rep < 5; ++rep) {
    const auto noisy = eg::perturb_lognormal(
        hetero::spec::spec_cint2006rate(), 0.05, rng);
    const auto m = hetero::core::measure_set(noisy.to_ecs());
    EXPECT_NEAR(m.mph, base.mph, 0.05);
    EXPECT_NEAR(m.tdh, base.tdh, 0.05);
    EXPECT_NEAR(m.tma, base.tma, 0.05);
  }
}

}  // namespace
