#include "core/clustering.hpp"

#include <gtest/gtest.h>

#include <set>

#include "spec/spec_data.hpp"

namespace {

using hetero::ValueError;
using hetero::core::cluster_machines;
using hetero::core::cluster_tasks;
using hetero::core::EcsMatrix;
using hetero::linalg::Matrix;

// Two machine classes: columns {0, 1} love tasks {0, 1}; columns {2, 3}
// love tasks {2, 3}.
EcsMatrix two_classes() {
  return EcsMatrix(Matrix{{10, 9, 1, 1},
                          {9, 10, 1, 1},
                          {1, 1, 10, 9},
                          {1, 1, 9, 10}});
}

TEST(Clustering, RecoversPlantedMachineClasses) {
  const auto c = cluster_machines(two_classes(), 2);
  EXPECT_EQ(c.cluster_count, 2u);
  EXPECT_EQ(c.cluster[0], c.cluster[1]);
  EXPECT_EQ(c.cluster[2], c.cluster[3]);
  EXPECT_NE(c.cluster[0], c.cluster[2]);
  EXPECT_GT(c.within_cosine, c.between_cosine);
}

TEST(Clustering, RecoversPlantedTaskClasses) {
  const auto c = cluster_tasks(two_classes(), 2);
  EXPECT_EQ(c.cluster[0], c.cluster[1]);
  EXPECT_EQ(c.cluster[2], c.cluster[3]);
  EXPECT_NE(c.cluster[0], c.cluster[2]);
}

TEST(Clustering, KEqualsOneGroupsEverything) {
  const auto c = cluster_machines(two_classes(), 1);
  for (std::size_t j : c.cluster) EXPECT_EQ(j, 0u);
  EXPECT_DOUBLE_EQ(c.between_cosine, 1.0);  // no between pairs -> default
}

TEST(Clustering, KEqualsCountIsSingletons) {
  const auto c = cluster_machines(two_classes(), 4);
  std::set<std::size_t> distinct(c.cluster.begin(), c.cluster.end());
  EXPECT_EQ(distinct.size(), 4u);
  EXPECT_DOUBLE_EQ(c.within_cosine, 1.0);  // no within pairs -> default
}

TEST(Clustering, ValidatesK) {
  EXPECT_THROW(cluster_machines(two_classes(), 0), ValueError);
  EXPECT_THROW(cluster_machines(two_classes(), 5), ValueError);
}

TEST(Clustering, RankOneEnvironmentIsOneDirection) {
  // Columns proportional: everything in one tight cluster regardless of k=2
  // split; within cosine ~ 1 and between ~ 1 too (all parallel).
  const EcsMatrix rank1(Matrix{{1, 2, 4}, {2, 4, 8}, {3, 6, 12}});
  const auto c = cluster_machines(rank1, 2);
  EXPECT_NEAR(c.within_cosine, 1.0, 1e-9);
  EXPECT_NEAR(c.between_cosine, 1.0, 1e-9);
}

TEST(Clustering, LabelsAreContiguousFromZero) {
  const auto c =
      cluster_machines(hetero::spec::spec_cfp2006rate().to_ecs(), 3);
  std::set<std::size_t> distinct(c.cluster.begin(), c.cluster.end());
  EXPECT_EQ(distinct.size(), 3u);
  for (std::size_t id : distinct) EXPECT_LT(id, 3u);
}

TEST(Clustering, WeightsChangeGeometry) {
  // Upweighting the tasks machine 3 loves rotates its column toward the
  // first class; the clustering metadata must reflect the weighted view
  // (no crash, valid labels).
  hetero::core::Weights w;
  w.task = {5.0, 5.0, 1.0, 1.0};
  const auto c = cluster_machines(two_classes(), 2, w);
  EXPECT_EQ(c.cluster.size(), 4u);
}

}  // namespace
