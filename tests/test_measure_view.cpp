// Streaming characterization equivalence tests: the delta-maintained
// MeasureView must match a cold recompute within its declared error budget
// after any warm update stream, and bit-identically immediately after any
// cold refresh; EtcEstimator must act as the inverse of the etcgen noise
// forward model. Runs under the `stream_equiv` ctest label (TSan in CI).
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "base/error.hpp"
#include "core/etc_estimator.hpp"
#include "core/measure_view.hpp"
#include "etcgen/noise.hpp"
#include "etcgen/rng.hpp"
#include "etcgen/target_measures.hpp"

namespace {

using hetero::core::CellDelta;
using hetero::core::EtcEstimator;
using hetero::core::EtcEstimatorOptions;
using hetero::core::MeasureSet;
using hetero::core::MeasureView;
using hetero::core::MeasureViewOptions;
using hetero::linalg::Matrix;

Matrix random_ecs(std::size_t tasks, std::size_t machines,
                  std::uint64_t seed) {
  hetero::etcgen::Rng rng(seed);
  Matrix m(tasks, machines);
  for (std::size_t i = 0; i < tasks; ++i)
    for (std::size_t j = 0; j < machines; ++j)
      m(i, j) = hetero::etcgen::uniform(rng, 0.05, 4.0);
  return m;
}

std::vector<double> random_vector(std::size_t n, hetero::etcgen::Rng& rng) {
  std::vector<double> v(n);
  for (double& x : v) x = hetero::etcgen::uniform(rng, 0.05, 4.0);
  return v;
}

void expect_bits_equal(const MeasureSet& a, const MeasureSet& b) {
  EXPECT_EQ(a.mph, b.mph);
  EXPECT_EQ(a.tdh, b.tdh);
  EXPECT_EQ(a.tma, b.tma);
}

void expect_close(const MeasureSet& a, const MeasureSet& b, double tol) {
  EXPECT_NEAR(a.mph, b.mph, tol);
  EXPECT_NEAR(a.tdh, b.tdh, tol);
  EXPECT_NEAR(a.tma, b.tma, tol);
}

TEST(MeasureView, WarmUpdatesMatchColdWithinBudget) {
  MeasureView view(random_ecs(24, 12, 101));
  hetero::etcgen::Rng rng(7);
  for (int step = 0; step < 200; ++step) {
    const std::size_t i =
        static_cast<std::size_t>(hetero::etcgen::uniform(rng, 0.0, 24.0)) % 24;
    const std::size_t j =
        static_cast<std::size_t>(hetero::etcgen::uniform(rng, 0.0, 12.0)) % 12;
    view.set_entry(i, j, hetero::etcgen::uniform(rng, 0.05, 4.0));
    const MeasureSet cold =
        MeasureView::cold_measures(view.ecs(), view.options().sinkhorn);
    expect_close(view.current(), cold, view.options().error_budget);
  }
  EXPECT_EQ(view.stats().version, 200u);
  EXPECT_GT(view.stats().warm_updates, 0u);
}

TEST(MeasureView, MatchesRawMeasurePipeline) {
  const Matrix ecs = random_ecs(16, 8, 31);
  MeasureView view(ecs);
  const MeasureSet raw = hetero::etcgen::measure_set_raw(ecs);
  // Different Sinkhorn/SVD tolerances between the pipelines: agree to ~1e-6.
  expect_close(view.current(), raw, 1e-6);
}

TEST(MeasureView, BatchedEntriesMatchCold) {
  MeasureView view(random_ecs(12, 6, 5));
  hetero::etcgen::Rng rng(9);
  for (int round = 0; round < 20; ++round) {
    std::vector<CellDelta> deltas;
    for (int k = 0; k < 5; ++k)
      deltas.push_back(CellDelta{
          static_cast<std::size_t>(hetero::etcgen::uniform(rng, 0.0, 12.0)) %
              12,
          static_cast<std::size_t>(hetero::etcgen::uniform(rng, 0.0, 6.0)) % 6,
          hetero::etcgen::uniform(rng, 0.05, 4.0)});
    view.set_entries(deltas);
    const MeasureSet cold =
        MeasureView::cold_measures(view.ecs(), view.options().sinkhorn);
    expect_close(view.current(), cold, view.options().error_budget);
  }
}

TEST(MeasureView, StructuralDeltasMatchCold) {
  MeasureView view(random_ecs(6, 4, 17));
  hetero::etcgen::Rng rng(23);
  const auto check = [&] {
    const MeasureSet cold =
        MeasureView::cold_measures(view.ecs(), view.options().sinkhorn);
    expect_close(view.current(), cold, view.options().error_budget);
  };
  view.add_task(random_vector(view.machines(), rng));
  check();
  view.add_machine(random_vector(view.tasks(), rng));
  check();
  EXPECT_EQ(view.tasks(), 7u);
  EXPECT_EQ(view.machines(), 5u);
  view.remove_task(2);
  check();
  view.remove_machine(0);
  check();
  EXPECT_EQ(view.tasks(), 6u);
  EXPECT_EQ(view.machines(), 4u);
  // Interleave entry and structural deltas.
  view.set_entry(1, 1, 0.5);
  check();
  view.add_machine(random_vector(view.tasks(), rng));
  check();
}

TEST(MeasureView, RefreshIsBitIdenticalToColdMeasures) {
  MeasureView view(random_ecs(10, 5, 43));
  hetero::etcgen::Rng rng(44);
  for (int step = 0; step < 25; ++step)
    view.set_entry(
        static_cast<std::size_t>(hetero::etcgen::uniform(rng, 0.0, 10.0)) % 10,
        static_cast<std::size_t>(hetero::etcgen::uniform(rng, 0.0, 5.0)) % 5,
        hetero::etcgen::uniform(rng, 0.05, 4.0));
  const MeasureSet refreshed = view.refresh();
  const MeasureSet cold =
      MeasureView::cold_measures(view.ecs(), view.options().sinkhorn);
  expect_bits_equal(refreshed, cold);
  expect_bits_equal(view.current(), cold);
  EXPECT_EQ(view.stats().accumulated_drift, 0.0);
  EXPECT_TRUE(view.stats().last_update_cold);
}

TEST(MeasureView, ColdRefreshTriggersExactlyAtBudget) {
  // Probe the per-update charge, then allow exactly four warm updates: a
  // power-of-two multiple keeps the repeated drift addition exact in
  // floating point, so the fifth update must land exactly on the budget
  // boundary and go cold.
  const Matrix ecs = random_ecs(8, 4, 3);
  const double charge = MeasureView(ecs).drift_charge();
  MeasureViewOptions options;
  options.error_budget = 4.0 * charge;
  MeasureView view(ecs, options);
  for (int step = 0; step < 4; ++step) {
    view.set_entry(0, 0, 1.0 + 0.1 * step);
    EXPECT_FALSE(view.stats().last_update_cold) << "step " << step;
  }
  EXPECT_EQ(view.stats().warm_updates, 4u);
  EXPECT_EQ(view.stats().cold_refreshes, 0u);
  EXPECT_EQ(view.stats().accumulated_drift, options.error_budget);
  const MeasureSet after = view.set_entry(1, 1, 2.0);
  EXPECT_TRUE(view.stats().last_update_cold);
  EXPECT_EQ(view.stats().cold_refreshes, 1u);
  EXPECT_EQ(view.stats().warm_updates, 4u);
  EXPECT_EQ(view.stats().accumulated_drift, 0.0);
  expect_bits_equal(after, MeasureView::cold_measures(view.ecs(),
                                                      options.sinkhorn));
}

TEST(MeasureView, NonPositiveBudgetMakesEveryUpdateCold) {
  MeasureViewOptions options;
  options.error_budget = 0.0;
  MeasureView view(random_ecs(6, 3, 13), options);
  view.set_entry(0, 0, 1.5);
  view.set_entry(1, 2, 0.25);
  EXPECT_EQ(view.stats().cold_refreshes, 2u);
  EXPECT_EQ(view.stats().warm_updates, 0u);
  expect_bits_equal(view.current(), MeasureView::cold_measures(
                                        view.ecs(), options.sinkhorn));
}

TEST(MeasureView, ScaleOverflowUpdateRevertsState) {
  // Converged Sinkhorn scales of an all-tiny matrix are large; warm-seeding
  // a DBL_MAX-magnitude entry through them overflows a column sum, which
  // the scale guard surfaces as ScaleOverflowError. The strong exception
  // guarantee requires the view to be exactly as before the poison update.
  Matrix tiny(4, 4, 1e-6);
  MeasureView view(tiny);
  const MeasureSet before = view.current();
  const std::uint64_t version_before = view.stats().version;

  std::vector<CellDelta> poison;
  for (std::size_t i = 0; i < 4; ++i)
    poison.push_back(CellDelta{i, 0, 1e308});
  EXPECT_THROW(view.set_entries(poison), hetero::ScaleOverflowError);

  expect_bits_equal(view.current(), before);
  EXPECT_EQ(view.stats().version, version_before);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j) EXPECT_EQ(view.ecs()(i, j), 1e-6);

  // The view stays usable: a valid follow-up update succeeds and matches
  // the cold pipeline.
  view.set_entry(0, 0, 2e-6);
  expect_close(view.current(),
               MeasureView::cold_measures(view.ecs(), view.options().sinkhorn),
               view.options().error_budget);
  EXPECT_EQ(view.stats().version, version_before + 1);
}

TEST(MeasureView, RemoveDownToOneMachineAndLastRemovalThrows) {
  MeasureView view(random_ecs(5, 3, 71));
  view.remove_machine(1);
  view.remove_machine(1);
  EXPECT_EQ(view.machines(), 1u);
  // A single-column ECS has a degenerate spectrum: TMA is exactly zero and
  // MPH (one machine performance) is exactly one.
  EXPECT_EQ(view.current().tma, 0.0);
  EXPECT_EQ(view.current().mph, 1.0);
  expect_bits_equal(view.current(), MeasureView::cold_measures(
                                        view.ecs(), view.options().sinkhorn));

  const std::uint64_t version = view.stats().version;
  EXPECT_THROW(view.remove_machine(0), hetero::ValueError);
  EXPECT_EQ(view.machines(), 1u);
  EXPECT_EQ(view.stats().version, version);

  // Growing back out of the degenerate shape works.
  hetero::etcgen::Rng rng(72);
  view.add_machine(random_vector(view.tasks(), rng));
  EXPECT_EQ(view.machines(), 2u);
  expect_close(view.current(),
               MeasureView::cold_measures(view.ecs(), view.options().sinkhorn),
               view.options().error_budget);

  EXPECT_THROW(MeasureView(random_ecs(1, 3, 1)).remove_task(0),
               hetero::ValueError);
}

TEST(MeasureView, InvalidDeltasRejectedWithStateIntact) {
  MeasureView view(random_ecs(4, 3, 55));
  const MeasureSet before = view.current();
  EXPECT_THROW(view.set_entry(4, 0, 1.0), hetero::Error);
  EXPECT_THROW(view.set_entry(0, 3, 1.0), hetero::Error);
  EXPECT_THROW(view.set_entry(0, 0, 0.0), hetero::Error);
  EXPECT_THROW(view.set_entry(0, 0, -1.0), hetero::Error);
  EXPECT_THROW(view.set_entry(0, 0, std::nan("")), hetero::Error);
  EXPECT_THROW(view.add_task(std::vector<double>{1.0, 2.0}), hetero::Error);
  EXPECT_THROW(view.add_machine(std::vector<double>{1.0, 0.0, 2.0, 3.0}),
               hetero::Error);
  EXPECT_THROW(view.remove_task(4), hetero::Error);
  expect_bits_equal(view.current(), before);
  EXPECT_EQ(view.stats().version, 0u);
}

TEST(MeasureView, IdenticalStreamsAreBitIdentical) {
  const Matrix ecs = random_ecs(12, 6, 99);
  MeasureView a(ecs);
  MeasureView b(ecs);
  hetero::etcgen::Rng ra(5), rb(5);
  const auto step = [](MeasureView& v, hetero::etcgen::Rng& rng) {
    const std::size_t i =
        static_cast<std::size_t>(hetero::etcgen::uniform(rng, 0.0, 12.0)) % 12;
    const std::size_t j =
        static_cast<std::size_t>(hetero::etcgen::uniform(rng, 0.0, 6.0)) % 6;
    v.set_entry(i, j, hetero::etcgen::uniform(rng, 0.05, 4.0));
  };
  for (int s = 0; s < 60; ++s) {
    step(a, ra);
    step(b, rb);
    expect_bits_equal(a.current(), b.current());
  }
  EXPECT_EQ(a.stats().cold_refreshes, b.stats().cold_refreshes);
  EXPECT_EQ(a.stats().accumulated_drift, b.stats().accumulated_drift);
}

TEST(EtcEstimator, ExponentialMeanAndMaterialityGate) {
  Matrix etc(2, 2, 10.0);
  EtcEstimatorOptions options;
  options.alpha = 0.5;
  options.min_rel_change = 0.05;
  EtcEstimator est(etc, options);
  EXPECT_EQ(est.mean(0, 0), 10.0);
  EXPECT_EQ(est.last_fed(0, 0), 10.0);

  // One observation at 10.4: mean 10.2, a 2% move — below the 5% gate.
  EXPECT_FALSE(est.observe(0, 0, 10.4).has_value());
  EXPECT_DOUBLE_EQ(est.mean(0, 0), 10.2);
  EXPECT_EQ(est.last_fed(0, 0), 10.0);

  // Next at 12.0: mean 11.1, an 11% move — emitted and marked fed.
  const auto revised = est.observe(0, 0, 12.0);
  ASSERT_TRUE(revised.has_value());
  EXPECT_DOUBLE_EQ(*revised, 11.1);
  EXPECT_DOUBLE_EQ(est.last_fed(0, 0), 11.1);
  EXPECT_EQ(est.count(0, 0), 2u);
  EXPECT_EQ(est.observations(), 2u);

  // Other cells are untouched.
  EXPECT_EQ(est.mean(1, 1), 10.0);
  EXPECT_EQ(est.count(1, 1), 0u);

  // An authoritative set resets the cell's history.
  est.set(0, 0, 20.0);
  EXPECT_EQ(est.mean(0, 0), 20.0);
  EXPECT_EQ(est.last_fed(0, 0), 20.0);
  EXPECT_EQ(est.count(0, 0), 0u);
}

TEST(EtcEstimator, InvertsLognormalRuntimeNoise) {
  // Feed draws of the etcgen forward model; the tracked mean must settle
  // near the true ETC (the lognormal mean bias at cov=0.2 is ~2%).
  const double true_etc = 5.0;
  Matrix etc(1, 1, 8.0);  // deliberately wrong seed
  EtcEstimatorOptions options;
  options.alpha = 0.05;
  options.min_rel_change = 0.0;
  EtcEstimator est(etc, options);
  hetero::etcgen::Rng rng(123);
  for (int i = 0; i < 2000; ++i)
    est.observe(0, 0, hetero::etcgen::sample_runtime_lognormal(true_etc, 0.2,
                                                               rng));
  EXPECT_NEAR(est.mean(0, 0), true_etc, 0.5);
}

TEST(EtcEstimator, StructuralOpsAndValidation) {
  Matrix etc(2, 2, 1.0);
  EtcEstimator est(etc);
  est.add_task(std::vector<double>{3.0, 4.0});
  EXPECT_EQ(est.tasks(), 3u);
  EXPECT_EQ(est.mean(2, 1), 4.0);
  est.add_machine(std::vector<double>{5.0, 6.0, 7.0});
  EXPECT_EQ(est.machines(), 3u);
  EXPECT_EQ(est.mean(2, 2), 7.0);
  est.remove_task(0);
  EXPECT_EQ(est.tasks(), 2u);
  EXPECT_EQ(est.mean(1, 2), 7.0);
  est.remove_machine(1);
  EXPECT_EQ(est.machines(), 2u);
  EXPECT_EQ(est.mean(0, 1), 6.0);

  EXPECT_THROW(est.observe(5, 0, 1.0), hetero::Error);
  EXPECT_THROW(est.observe(0, 0, 0.0), hetero::Error);
  EXPECT_THROW(est.observe(0, 0, std::nan("")), hetero::Error);
  EXPECT_THROW(est.add_task(std::vector<double>{1.0}), hetero::Error);
  EXPECT_THROW(est.set(0, 0, -2.0), hetero::Error);
}

}  // namespace
