#include "core/confidence.hpp"

#include <gtest/gtest.h>

#include "spec/spec_data.hpp"

namespace {

using hetero::ValueError;
using hetero::core::ConfidenceOptions;
using hetero::core::EtcMatrix;
using hetero::core::measure_confidence;
using hetero::linalg::Matrix;

ConfidenceOptions quick() {
  ConfidenceOptions opts;
  opts.replications = 60;
  opts.noise_cov = 0.1;
  return opts;
}

TEST(Confidence, ZeroNoiseCollapsesIntervals) {
  ConfidenceOptions opts = quick();
  opts.noise_cov = 0.0;
  const auto c = measure_confidence(hetero::spec::spec_fig8b(), opts);
  EXPECT_DOUBLE_EQ(c.mph.lower, c.mph.upper);
  EXPECT_NEAR(c.mph.mean, c.mph.point, 1e-12);
  EXPECT_NEAR(c.tma.stddev, 0.0, 1e-12);
}

TEST(Confidence, IntervalsBracketThePointValue) {
  const auto c =
      measure_confidence(hetero::spec::spec_cint2006rate(), quick());
  EXPECT_LE(c.mph.lower, c.mph.upper);
  EXPECT_LE(c.tdh.lower, c.tdh.upper);
  EXPECT_LE(c.tma.lower, c.tma.upper);
  // With 10% noise the true value should sit inside the 95% interval.
  EXPECT_GE(c.mph.point, c.mph.lower - 1e-12);
  EXPECT_LE(c.mph.point, c.mph.upper + 1e-12);
  EXPECT_EQ(c.replications, 60u);
}

TEST(Confidence, MoreNoiseWiderIntervals) {
  ConfidenceOptions narrow = quick();
  narrow.noise_cov = 0.02;
  ConfidenceOptions wide = quick();
  wide.noise_cov = 0.4;
  const auto& etc = hetero::spec::spec_cint2006rate();
  const auto a = measure_confidence(etc, narrow);
  const auto b = measure_confidence(etc, wide);
  EXPECT_LT(a.mph.upper - a.mph.lower, b.mph.upper - b.mph.lower);
  EXPECT_LT(a.tma.stddev, b.tma.stddev);
}

TEST(Confidence, CoverageControlsQuantiles) {
  ConfidenceOptions tight = quick();
  tight.coverage = 0.5;
  ConfidenceOptions broad = quick();
  broad.coverage = 0.99;
  const auto& etc = hetero::spec::spec_fig8b();
  const auto a = measure_confidence(etc, tight);
  const auto b = measure_confidence(etc, broad);
  EXPECT_LE(a.mph.upper - a.mph.lower, b.mph.upper - b.mph.lower + 1e-12);
}

TEST(Confidence, Reproducible) {
  const auto a = measure_confidence(hetero::spec::spec_fig8a(), quick());
  const auto b = measure_confidence(hetero::spec::spec_fig8a(), quick());
  EXPECT_DOUBLE_EQ(a.tma.mean, b.tma.mean);
  EXPECT_DOUBLE_EQ(a.tma.lower, b.tma.lower);
}

TEST(Confidence, ValidatesOptions) {
  const EtcMatrix etc(Matrix{{1, 2}, {3, 4}});
  ConfidenceOptions bad = quick();
  bad.replications = 1;
  EXPECT_THROW(measure_confidence(etc, bad), ValueError);
  bad = quick();
  bad.coverage = 1.0;
  EXPECT_THROW(measure_confidence(etc, bad), ValueError);
  bad = quick();
  bad.noise_cov = -0.5;
  EXPECT_THROW(measure_confidence(etc, bad), ValueError);
}

TEST(Confidence, MeanNearPointForSmallNoise) {
  ConfidenceOptions opts = quick();
  opts.noise_cov = 0.03;
  opts.replications = 100;
  const auto c = measure_confidence(hetero::spec::spec_cfp2006rate(), opts);
  EXPECT_NEAR(c.mph.mean, c.mph.point, 0.02);
  EXPECT_NEAR(c.tdh.mean, c.tdh.point, 0.02);
  EXPECT_NEAR(c.tma.mean, c.tma.point, 0.02);
}

}  // namespace
