#include "sched/heuristics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "etcgen/range_based.hpp"
#include "sched/makespan.hpp"

namespace {

using hetero::DimensionError;
using hetero::core::EtcMatrix;
using hetero::linalg::Matrix;
namespace sc = hetero::sched;

constexpr double kInf = std::numeric_limits<double>::infinity();

EtcMatrix simple() {
  // Two machines, machine 2 twice as fast for everything.
  return EtcMatrix(Matrix{{4, 2}, {8, 4}, {2, 1}});
}

TEST(Makespan, OneOfEach) {
  EXPECT_EQ(sc::one_of_each(simple()),
            (sc::TaskList{0, 1, 2}));
}

TEST(Makespan, LoadsAndMakespan) {
  const sc::TaskList tasks{0, 1, 2};
  const sc::Assignment a{0, 1, 0};
  const auto loads = sc::machine_loads(simple(), tasks, a);
  EXPECT_DOUBLE_EQ(loads[0], 6.0);
  EXPECT_DOUBLE_EQ(loads[1], 4.0);
  EXPECT_DOUBLE_EQ(sc::makespan(simple(), tasks, a), 6.0);
}

TEST(Makespan, ValidatesSizesAndRanges) {
  const sc::TaskList tasks{0, 1};
  EXPECT_THROW(sc::machine_loads(simple(), tasks, sc::Assignment{0}),
               DimensionError);
  EXPECT_THROW(sc::machine_loads(simple(), tasks, sc::Assignment{0, 9}),
               DimensionError);
  EXPECT_THROW(sc::machine_loads(simple(), sc::TaskList{7}, sc::Assignment{0}),
               DimensionError);
}

TEST(Makespan, InfiniteWhenAssignedToIncapableMachine) {
  EtcMatrix etc(Matrix{{1, kInf}, {1, 1}});
  const sc::TaskList tasks{0};
  EXPECT_TRUE(std::isinf(sc::makespan(etc, tasks, sc::Assignment{1})));
}

TEST(Makespan, LowerBoundHolds) {
  const sc::TaskList tasks = sc::one_of_each(simple());
  const double lb = sc::makespan_lower_bound(simple(), tasks);
  for (const auto& h : sc::standard_heuristics()) {
    const auto a = h.map(simple(), tasks);
    EXPECT_GE(sc::makespan(simple(), tasks, a) + 1e-12, lb) << h.name;
  }
}

TEST(Heuristics, MetPicksFastestMachine) {
  const sc::TaskList tasks{0, 1, 2};
  const auto a = sc::map_met(simple(), tasks);
  EXPECT_EQ(a, (sc::Assignment{1, 1, 1}));  // machine 2 always fastest
}

TEST(Heuristics, MctBalancesLoad) {
  // MCT on task order 0,1,2: t0 -> m2 (2 < 4); t1 -> m2 (2+4=6) vs m1 (8):
  // m2; t2 -> m1 (2) vs m2 (7): m1.
  const sc::TaskList tasks{0, 1, 2};
  const auto a = sc::map_mct(simple(), tasks);
  EXPECT_EQ(a, (sc::Assignment{1, 1, 0}));
}

TEST(Heuristics, OlbIgnoresSpeed) {
  const sc::TaskList tasks{0, 1};
  const auto a = sc::map_olb(simple(), tasks);
  // First task to m1 (both idle, lowest index), second to m2.
  EXPECT_EQ(a, (sc::Assignment{0, 1}));
}

TEST(Heuristics, MinMinKnownExample) {
  // Classic example where Min-Min beats MCT's arrival-order greed.
  EtcMatrix etc(Matrix{{10, 2}, {1, 9}});
  const sc::TaskList tasks{0, 1};
  const auto a = sc::map_min_min(etc, tasks);
  EXPECT_EQ(a, (sc::Assignment{1, 0}));
  EXPECT_DOUBLE_EQ(sc::makespan(etc, tasks, a), 2.0);
}

TEST(Heuristics, MaxMinMapsLongTaskFirst) {
  EtcMatrix etc(Matrix{{100, 110}, {1, 2}, {1, 2}});
  const sc::TaskList tasks{0, 1, 2};
  const auto a = sc::map_max_min(etc, tasks);
  // Long task 0 claims m1 first; the short tasks then avoid queueing on it.
  EXPECT_EQ(a[0], 0u);
  EXPECT_DOUBLE_EQ(sc::makespan(etc, tasks, a), 100.0);
}

TEST(Heuristics, SufferageClassicCase) {
  // Task 0 suffers little (4 vs 5); task 1 suffers a lot (1 vs 20). With
  // both competing for machine 1, sufferage gives it to task 1 and task 0
  // falls back to machine 2.
  EtcMatrix etc(Matrix{{5, 4}, {1, 20}});
  const sc::TaskList tasks{0, 1};
  const auto a = sc::map_sufferage(etc, tasks);
  EXPECT_EQ(a[1], 0u);
  EXPECT_EQ(a[0], 1u);
}

TEST(Heuristics, DuplexNeverWorseThanEither) {
  hetero::etcgen::Rng rng = hetero::etcgen::make_rng(21);
  hetero::etcgen::RangeBasedOptions opts;
  opts.tasks = 30;
  opts.machines = 6;
  for (int rep = 0; rep < 5; ++rep) {
    const auto etc = hetero::etcgen::generate_range_based(opts, rng);
    const auto tasks = sc::one_of_each(etc);
    const double dup = sc::makespan(etc, tasks, sc::map_duplex(etc, tasks));
    const double mn = sc::makespan(etc, tasks, sc::map_min_min(etc, tasks));
    const double mx = sc::makespan(etc, tasks, sc::map_max_min(etc, tasks));
    EXPECT_LE(dup, std::min(mn, mx) + 1e-9);
  }
}

TEST(Heuristics, AllRespectCannotRunEntries) {
  EtcMatrix etc(Matrix{{1, kInf}, {kInf, 1}, {2, 2}});
  const sc::TaskList tasks{0, 1, 2};
  for (const auto& h : sc::standard_heuristics()) {
    const auto a = h.map(etc, tasks);
    EXPECT_FALSE(std::isinf(sc::makespan(etc, tasks, a))) << h.name;
    EXPECT_EQ(a[0], 0u) << h.name;
    EXPECT_EQ(a[1], 1u) << h.name;
  }
}

TEST(Heuristics, RandomIsValid) {
  EtcMatrix etc(Matrix{{1, kInf}, {kInf, 1}});
  hetero::etcgen::Rng rng = hetero::etcgen::make_rng(5);
  for (int rep = 0; rep < 20; ++rep) {
    const auto a = sc::map_random(etc, {0, 1}, rng);
    EXPECT_EQ(a[0], 0u);
    EXPECT_EQ(a[1], 1u);
  }
}

TEST(Heuristics, RepeatedTaskInstances) {
  // Four instances of task 0 on two equal machines: any load-aware
  // heuristic must split 2/2.
  EtcMatrix etc(Matrix{{3, 3}, {1, 1}});
  const sc::TaskList tasks{0, 0, 0, 0};
  for (const auto& h : {sc::Heuristic{"MCT", sc::map_mct},
                        sc::Heuristic{"Min-Min", sc::map_min_min},
                        sc::Heuristic{"Sufferage", sc::map_sufferage}}) {
    const auto a = h.map(etc, tasks);
    EXPECT_DOUBLE_EQ(sc::makespan(etc, tasks, a), 6.0) << h.name;
  }
}

TEST(Heuristics, EmptyTaskListYieldsEmptyAssignment) {
  for (const auto& h : sc::standard_heuristics())
    EXPECT_TRUE(h.map(simple(), {}).empty()) << h.name;
}

TEST(Heuristics, RegistryNamesAndOrder) {
  const auto& hs = sc::standard_heuristics();
  ASSERT_EQ(hs.size(), 7u);
  EXPECT_EQ(hs[0].name, "OLB");
  EXPECT_EQ(hs[3].name, "Min-Min");
  EXPECT_EQ(hs[6].name, "Duplex");
}

TEST(Heuristics, MinMinNoWorseThanRandomOnAverage) {
  hetero::etcgen::Rng rng = hetero::etcgen::make_rng(33);
  hetero::etcgen::RangeBasedOptions opts;
  opts.tasks = 40;
  opts.machines = 8;
  double minmin = 0.0, rand = 0.0;
  for (int rep = 0; rep < 5; ++rep) {
    const auto etc = hetero::etcgen::generate_range_based(opts, rng);
    const auto tasks = sc::one_of_each(etc);
    minmin += sc::makespan(etc, tasks, sc::map_min_min(etc, tasks));
    rand += sc::makespan(etc, tasks, sc::map_random(etc, tasks, rng));
  }
  EXPECT_LT(minmin, rand);
}

}  // namespace
