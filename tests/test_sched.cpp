#include "sched/heuristics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "etcgen/range_based.hpp"
#include "etcgen/suite.hpp"
#include "sched/makespan.hpp"

namespace {

using hetero::DimensionError;
using hetero::ValueError;
using hetero::core::EtcMatrix;
using hetero::linalg::Matrix;
namespace sc = hetero::sched;

constexpr double kInf = std::numeric_limits<double>::infinity();

EtcMatrix simple() {
  // Two machines, machine 2 twice as fast for everything.
  return EtcMatrix(Matrix{{4, 2}, {8, 4}, {2, 1}});
}

TEST(Makespan, OneOfEach) {
  EXPECT_EQ(sc::one_of_each(simple()),
            (sc::TaskList{0, 1, 2}));
}

TEST(Makespan, LoadsAndMakespan) {
  const sc::TaskList tasks{0, 1, 2};
  const sc::Assignment a{0, 1, 0};
  const auto loads = sc::machine_loads(simple(), tasks, a);
  EXPECT_DOUBLE_EQ(loads[0], 6.0);
  EXPECT_DOUBLE_EQ(loads[1], 4.0);
  EXPECT_DOUBLE_EQ(sc::makespan(simple(), tasks, a), 6.0);
}

TEST(Makespan, ValidatesSizesAndRanges) {
  const sc::TaskList tasks{0, 1};
  EXPECT_THROW(sc::machine_loads(simple(), tasks, sc::Assignment{0}),
               DimensionError);
  EXPECT_THROW(sc::machine_loads(simple(), tasks, sc::Assignment{0, 9}),
               DimensionError);
  EXPECT_THROW(sc::machine_loads(simple(), sc::TaskList{7}, sc::Assignment{0}),
               DimensionError);
}

TEST(Makespan, InfiniteWhenAssignedToIncapableMachine) {
  EtcMatrix etc(Matrix{{1, kInf}, {1, 1}});
  const sc::TaskList tasks{0};
  EXPECT_TRUE(std::isinf(sc::makespan(etc, tasks, sc::Assignment{1})));
}

TEST(Makespan, LowerBoundHolds) {
  const sc::TaskList tasks = sc::one_of_each(simple());
  const double lb = sc::makespan_lower_bound(simple(), tasks);
  for (const auto& h : sc::standard_heuristics()) {
    const auto a = h.map(simple(), tasks);
    EXPECT_GE(sc::makespan(simple(), tasks, a) + 1e-12, lb) << h.name;
  }
}

TEST(Heuristics, MetPicksFastestMachine) {
  const sc::TaskList tasks{0, 1, 2};
  const auto a = sc::map_met(simple(), tasks);
  EXPECT_EQ(a, (sc::Assignment{1, 1, 1}));  // machine 2 always fastest
}

TEST(Heuristics, MctBalancesLoad) {
  // MCT on task order 0,1,2: t0 -> m2 (2 < 4); t1 -> m2 (2+4=6) vs m1 (8):
  // m2; t2 -> m1 (2) vs m2 (7): m1.
  const sc::TaskList tasks{0, 1, 2};
  const auto a = sc::map_mct(simple(), tasks);
  EXPECT_EQ(a, (sc::Assignment{1, 1, 0}));
}

TEST(Heuristics, OlbIgnoresSpeed) {
  const sc::TaskList tasks{0, 1};
  const auto a = sc::map_olb(simple(), tasks);
  // First task to m1 (both idle, lowest index), second to m2.
  EXPECT_EQ(a, (sc::Assignment{0, 1}));
}

TEST(Heuristics, MinMinKnownExample) {
  // Classic example where Min-Min beats MCT's arrival-order greed.
  EtcMatrix etc(Matrix{{10, 2}, {1, 9}});
  const sc::TaskList tasks{0, 1};
  const auto a = sc::map_min_min(etc, tasks);
  EXPECT_EQ(a, (sc::Assignment{1, 0}));
  EXPECT_DOUBLE_EQ(sc::makespan(etc, tasks, a), 2.0);
}

TEST(Heuristics, MaxMinMapsLongTaskFirst) {
  EtcMatrix etc(Matrix{{100, 110}, {1, 2}, {1, 2}});
  const sc::TaskList tasks{0, 1, 2};
  const auto a = sc::map_max_min(etc, tasks);
  // Long task 0 claims m1 first; the short tasks then avoid queueing on it.
  EXPECT_EQ(a[0], 0u);
  EXPECT_DOUBLE_EQ(sc::makespan(etc, tasks, a), 100.0);
}

TEST(Heuristics, SufferageClassicCase) {
  // Task 0 suffers little (4 vs 5); task 1 suffers a lot (1 vs 20). With
  // both competing for machine 1, sufferage gives it to task 1 and task 0
  // falls back to machine 2.
  EtcMatrix etc(Matrix{{5, 4}, {1, 20}});
  const sc::TaskList tasks{0, 1};
  const auto a = sc::map_sufferage(etc, tasks);
  EXPECT_EQ(a[1], 0u);
  EXPECT_EQ(a[0], 1u);
}

TEST(Heuristics, DuplexNeverWorseThanEither) {
  hetero::etcgen::Rng rng = hetero::etcgen::make_rng(21);
  hetero::etcgen::RangeBasedOptions opts;
  opts.tasks = 30;
  opts.machines = 6;
  for (int rep = 0; rep < 5; ++rep) {
    const auto etc = hetero::etcgen::generate_range_based(opts, rng);
    const auto tasks = sc::one_of_each(etc);
    const double dup = sc::makespan(etc, tasks, sc::map_duplex(etc, tasks));
    const double mn = sc::makespan(etc, tasks, sc::map_min_min(etc, tasks));
    const double mx = sc::makespan(etc, tasks, sc::map_max_min(etc, tasks));
    EXPECT_LE(dup, std::min(mn, mx) + 1e-9);
  }
}

TEST(Heuristics, AllRespectCannotRunEntries) {
  EtcMatrix etc(Matrix{{1, kInf}, {kInf, 1}, {2, 2}});
  const sc::TaskList tasks{0, 1, 2};
  for (const auto& h : sc::standard_heuristics()) {
    const auto a = h.map(etc, tasks);
    EXPECT_FALSE(std::isinf(sc::makespan(etc, tasks, a))) << h.name;
    EXPECT_EQ(a[0], 0u) << h.name;
    EXPECT_EQ(a[1], 1u) << h.name;
  }
}

TEST(Heuristics, RandomIsValid) {
  EtcMatrix etc(Matrix{{1, kInf}, {kInf, 1}});
  hetero::etcgen::Rng rng = hetero::etcgen::make_rng(5);
  for (int rep = 0; rep < 20; ++rep) {
    const auto a = sc::map_random(etc, {0, 1}, rng);
    EXPECT_EQ(a[0], 0u);
    EXPECT_EQ(a[1], 1u);
  }
}

TEST(Heuristics, RepeatedTaskInstances) {
  // Four instances of task 0 on two equal machines: any load-aware
  // heuristic must split 2/2.
  EtcMatrix etc(Matrix{{3, 3}, {1, 1}});
  const sc::TaskList tasks{0, 0, 0, 0};
  for (const auto& h : {sc::Heuristic{"MCT", sc::map_mct},
                        sc::Heuristic{"Min-Min", sc::map_min_min},
                        sc::Heuristic{"Sufferage", sc::map_sufferage}}) {
    const auto a = h.map(etc, tasks);
    EXPECT_DOUBLE_EQ(sc::makespan(etc, tasks, a), 6.0) << h.name;
  }
}

TEST(Heuristics, EmptyTaskListYieldsEmptyAssignment) {
  for (const auto& h : sc::standard_heuristics())
    EXPECT_TRUE(h.map(simple(), {}).empty()) << h.name;
}

TEST(Heuristics, RegistryNamesAndOrder) {
  const auto& hs = sc::standard_heuristics();
  ASSERT_EQ(hs.size(), 7u);
  EXPECT_EQ(hs[0].name, "OLB");
  EXPECT_EQ(hs[3].name, "Min-Min");
  EXPECT_EQ(hs[6].name, "Duplex");
}

// ---------------------------------------------------------------------------
// Incremental-engine equivalence (ctest label: sched_equiv). The fast batch
// heuristics run on the cached BatchEngine; they must produce bit-identical
// assignments to the O(T^2 M) references — tie-breaking included.

struct FastRefPair {
  const char* name;
  sc::Assignment (*fast)(const EtcMatrix&, const sc::TaskList&);
  sc::Assignment (*reference)(const EtcMatrix&, const sc::TaskList&);
};

const FastRefPair kBatchPairs[] = {
    {"Min-Min", sc::map_min_min, sc::map_min_min_reference},
    {"Max-Min", sc::map_max_min, sc::map_max_min_reference},
    {"Sufferage", sc::map_sufferage, sc::map_sufferage_reference},
};

TEST(BatchEquivalence, MatchesReferenceAcrossBraunSuite) {
  hetero::etcgen::BraunSuiteOptions opts;
  opts.tasks = 128;
  opts.machines = 16;
  opts.seed = 17;
  for (const auto& c : hetero::etcgen::braun_suite(opts)) {
    const auto tasks = sc::one_of_each(c.etc);
    for (const auto& p : kBatchPairs)
      EXPECT_EQ(p.fast(c.etc, tasks), p.reference(c.etc, tasks))
          << p.name << " diverged on " << c.name;
  }
}

TEST(BatchEquivalence, MatchesReferenceAtBraunScale) {
  // One full-size 512x16 instance per heuristic (the benchmark shape).
  hetero::etcgen::BraunSuiteOptions opts;
  opts.seed = 23;
  const auto suite = hetero::etcgen::braun_suite(opts);
  const auto& c = suite.front();  // hi-hi consistent
  const auto tasks = sc::one_of_each(c.etc);
  for (const auto& p : kBatchPairs)
    EXPECT_EQ(p.fast(c.etc, tasks), p.reference(c.etc, tasks)) << p.name;
}

TEST(BatchEquivalence, TieStressOnSmallIntegerEtc) {
  // Small-integer entries force massive completion-time ties; any deviation
  // from the reference's first-minimum / first-maximum scan order shows up
  // as a different (still optimal-looking) assignment.
  Matrix m(12, 5);
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t j = 0; j < m.cols(); ++j)
      m(i, j) = static_cast<double>((i + 2 * j) % 3 + 1);
  EtcMatrix etc(m);
  sc::TaskList tasks;
  for (std::size_t rep = 0; rep < 4; ++rep)
    for (std::size_t t = 0; t < etc.task_count(); ++t) tasks.push_back(t);
  for (const auto& p : kBatchPairs)
    EXPECT_EQ(p.fast(etc, tasks), p.reference(etc, tasks)) << p.name;
}

TEST(BatchEquivalence, MatchesReferenceWithInfiniteEntries) {
  // Scattered cannot-run entries: the affected-set rescan must skip them
  // exactly like the reference scan, including sufferage's "no second
  // machine" convention.
  Matrix m(8, 4);
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t j = 0; j < m.cols(); ++j)
      m(i, j) = static_cast<double>(1 + ((3 * i + j) % 7));
  m(0, 1) = kInf;
  m(0, 2) = kInf;
  m(0, 3) = kInf;  // task 0 runs only on machine 0
  m(3, 0) = kInf;
  m(5, 2) = kInf;
  m(5, 3) = kInf;
  EtcMatrix etc(m);
  const auto tasks = sc::one_of_each(etc);
  for (const auto& p : kBatchPairs) {
    const auto a = p.fast(etc, tasks);
    EXPECT_EQ(a, p.reference(etc, tasks)) << p.name;
    EXPECT_TRUE(std::isfinite(sc::makespan(etc, tasks, a))) << p.name;
  }
}

TEST(BatchEquivalence, RepeatedInstancesAndDuplexAgree) {
  hetero::etcgen::Rng rng = hetero::etcgen::make_rng(41);
  hetero::etcgen::RangeBasedOptions gopts;
  gopts.tasks = 10;
  gopts.machines = 4;
  const auto etc = hetero::etcgen::generate_range_based(gopts, rng);
  sc::TaskList tasks;
  for (std::size_t k = 0; k < 60; ++k) tasks.push_back(k % etc.task_count());
  for (const auto& p : kBatchPairs)
    EXPECT_EQ(p.fast(etc, tasks), p.reference(etc, tasks)) << p.name;
}

// ---------------------------------------------------------------------------
// Guard regression: `best` used to be initialized to machine_count() and was
// indexed/written unguarded when a task could run nowhere. The helpers take a
// raw matrix because EtcMatrix construction rejects all-infinite rows.

TEST(HeuristicGuards, OlbThrowsWhenTaskRunsNowhere) {
  const Matrix raw{{1.0, 2.0}, {kInf, kInf}};
  const std::vector<double> load{0.0, 0.0};
  EXPECT_EQ(sc::olb_earliest_capable(raw, load, 0), 0u);
  EXPECT_THROW(sc::olb_earliest_capable(raw, load, 1), ValueError);
}

TEST(HeuristicGuards, MetThrowsWhenTaskRunsNowhere) {
  const Matrix raw{{3.0, 1.0}, {kInf, kInf}};
  EXPECT_EQ(sc::met_fastest_machine(raw, 0), 1u);
  EXPECT_THROW(sc::met_fastest_machine(raw, 1), ValueError);
}

TEST(HeuristicGuards, EtcMatrixRejectsAllInfiniteRowUpfront) {
  EXPECT_THROW(EtcMatrix(Matrix{{1.0, 2.0}, {kInf, kInf}}), ValueError);
}

TEST(Heuristics, MinMinNoWorseThanRandomOnAverage) {
  hetero::etcgen::Rng rng = hetero::etcgen::make_rng(33);
  hetero::etcgen::RangeBasedOptions opts;
  opts.tasks = 40;
  opts.machines = 8;
  double minmin = 0.0, rand = 0.0;
  for (int rep = 0; rep < 5; ++rep) {
    const auto etc = hetero::etcgen::generate_range_based(opts, rng);
    const auto tasks = sc::one_of_each(etc);
    minmin += sc::makespan(etc, tasks, sc::map_min_min(etc, tasks));
    rand += sc::makespan(etc, tasks, sc::map_random(etc, tasks, rng));
  }
  EXPECT_LT(minmin, rand);
}

}  // namespace
