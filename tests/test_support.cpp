// Tests for the support layer: the lock-rank checker (ordered acquisition
// passes, inversions are reported, release builds compile the checks out
// of Mutex), the annotated Mutex/MutexLock/CondVar wrappers, and the
// violation policy plumbing.
//
// The checker's entry points (lock_rank::note_*) are compiled in every
// build, so the detection tests run regardless of NDEBUG; only the tests
// that go through support::Mutex itself condition on rank_checks_enabled().

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "support/lock_rank.hpp"
#include "support/lock_ranks.hpp"
#include "support/mutex.hpp"
#include "support/thread_annotations.hpp"

namespace support = hetero::support;
namespace lock_rank = hetero::support::lock_rank;

namespace {

// Switches the process-wide policy to throw_exception for one test and
// restores the previous policy on exit, so a failing test cannot leak the
// test policy into later ones.
class ThrowPolicyScope {
 public:
  ThrowPolicyScope()
      : previous_(support::set_rank_violation_policy(
            support::RankViolationPolicy::throw_exception)) {}
  ~ThrowPolicyScope() { support::set_rank_violation_policy(previous_); }

 private:
  support::RankViolationPolicy previous_;
};

// Distinct identity tokens for checker-level tests (the checker only uses
// the address, never dereferences).
int token_a, token_b, token_c;

// Pops any sites a failed expectation may have left on the thread-local
// stack, so one test's residue cannot fail its neighbors.
void release_all_tokens() {
  lock_rank::note_release(&token_a);
  lock_rank::note_release(&token_b);
  lock_rank::note_release(&token_c);
}

TEST(LockRankChecker, OrderedAcquisitionPasses) {
  ThrowPolicyScope policy;
  EXPECT_EQ(lock_rank::held_count(), 0u);
  EXPECT_EQ(lock_rank::max_held_rank(), lock_rank::kNoRank);

  EXPECT_NO_THROW(lock_rank::note_acquire(&token_a, 100, "a"));
  EXPECT_EQ(lock_rank::held_count(), 1u);
  EXPECT_EQ(lock_rank::max_held_rank(), 100);

  EXPECT_NO_THROW(lock_rank::note_acquire(&token_b, 200, "b"));
  EXPECT_EQ(lock_rank::held_count(), 2u);
  EXPECT_EQ(lock_rank::max_held_rank(), 200);

  lock_rank::note_release(&token_b);
  EXPECT_EQ(lock_rank::max_held_rank(), 100);
  lock_rank::note_release(&token_a);
  EXPECT_EQ(lock_rank::held_count(), 0u);
}

TEST(LockRankChecker, InversionIsReported) {
  ThrowPolicyScope policy;
  lock_rank::note_acquire(&token_b, 200, "b");
  EXPECT_THROW(lock_rank::note_acquire(&token_a, 100, "a"),
               support::RankViolationError);
  // The failed acquisition must not have joined the held set.
  EXPECT_EQ(lock_rank::held_count(), 1u);
  release_all_tokens();
}

TEST(LockRankChecker, EqualRankIsReported) {
  // Sideways acquisition (two mutexes of one rank class, e.g. two cache
  // shards) is a potential ABBA deadlock and must be flagged like a
  // downward one.
  ThrowPolicyScope policy;
  lock_rank::note_acquire(&token_a, 200, "shard-1");
  EXPECT_THROW(lock_rank::note_acquire(&token_b, 200, "shard-2"),
               support::RankViolationError);
  release_all_tokens();
}

TEST(LockRankChecker, ReacquisitionIsReported) {
  ThrowPolicyScope policy;
  lock_rank::note_acquire(&token_a, 100, "a");
  EXPECT_THROW(lock_rank::note_acquire(&token_a, 100, "a"),
               support::RankViolationError);
  release_all_tokens();
}

TEST(LockRankChecker, UncheckedAcquireSkipsOrderingButJoinsHeldSet) {
  ThrowPolicyScope policy;
  lock_rank::note_acquire(&token_b, 200, "b");
  // A try_lock-style acquisition may go downward...
  EXPECT_NO_THROW(lock_rank::note_acquire_unchecked(&token_a, 100, "a"));
  EXPECT_EQ(lock_rank::held_count(), 2u);
  // ...but later blocking acquisitions are checked against everything
  // held, including it.
  EXPECT_THROW(lock_rank::note_acquire(&token_c, 150, "c"),
               support::RankViolationError);
  release_all_tokens();
}

TEST(LockRankChecker, OverflowIsReported) {
  ThrowPolicyScope policy;
  std::vector<int> tokens(lock_rank::kMaxHeld + 1);
  std::size_t acquired = 0;
  EXPECT_THROW(
      {
        for (std::size_t i = 0; i < tokens.size(); ++i) {
          lock_rank::note_acquire(&tokens[i], static_cast<int>(i), "deep");
          ++acquired;
        }
      },
      support::RankViolationError);
  EXPECT_EQ(acquired, lock_rank::kMaxHeld);
  for (std::size_t i = 0; i < acquired; ++i)
    lock_rank::note_release(&tokens[i]);
  EXPECT_EQ(lock_rank::held_count(), 0u);
}

TEST(LockRankChecker, StateIsPerThread) {
  ThrowPolicyScope policy;
  lock_rank::note_acquire(&token_b, 200, "b");
  // Another thread holds nothing, so a lower-rank acquisition there is
  // perfectly ordered.
  std::thread other([] {
    EXPECT_EQ(lock_rank::held_count(), 0u);
    EXPECT_NO_THROW(lock_rank::note_acquire(&token_a, 100, "a"));
    lock_rank::note_release(&token_a);
  });
  other.join();
  release_all_tokens();
}

TEST(LockRankChecker, ReleaseOfUnknownSiteIsIgnored) {
  EXPECT_EQ(lock_rank::held_count(), 0u);
  lock_rank::note_release(&token_a);  // must be a harmless no-op
  EXPECT_EQ(lock_rank::held_count(), 0u);
}

TEST(Mutex, ChecksCompiledPerBuildType) {
  // In release builds (NDEBUG, no HETERO_FORCE_LOCK_RANK_CHECKS) the Mutex
  // fast path must not call the checker at all; in debug builds it must.
#if defined(NDEBUG) && !defined(HETERO_FORCE_LOCK_RANK_CHECKS)
  EXPECT_FALSE(support::Mutex::rank_checks_enabled());
#else
  EXPECT_TRUE(support::Mutex::rank_checks_enabled());
#endif
}

TEST(Mutex, LockUnlockRoundTrip) {
  support::Mutex m(100, "test");
  EXPECT_EQ(m.rank(), 100);
  EXPECT_STREQ(m.name(), "test");
  m.lock();
  if (support::Mutex::rank_checks_enabled()) {
    EXPECT_EQ(lock_rank::held_count(), 1u);
  }
  m.unlock();
  EXPECT_EQ(lock_rank::held_count(), 0u);
}

TEST(Mutex, DetectsInversionWhenChecksEnabled) {
  if (!support::Mutex::rank_checks_enabled())
    GTEST_SKIP() << "rank checks compiled out (release build)";
  ThrowPolicyScope policy;
  support::Mutex low(100, "low");
  support::Mutex high(200, "high");

  // In order: fine.
  {
    const support::MutexLock outer(low);
    const support::MutexLock inner(high);
  }
  EXPECT_EQ(lock_rank::held_count(), 0u);

  // Inverted: the second acquisition must throw *before* taking the lock,
  // leaving only the outer mutex held.
  high.lock();
  EXPECT_THROW(low.lock(), support::RankViolationError);
  high.unlock();
  EXPECT_EQ(lock_rank::held_count(), 0u);
  // The rejected mutex must still be acquirable (it was never locked).
  low.lock();
  low.unlock();
}

TEST(Mutex, TryLockIsExemptFromOrderingButTracked) {
  if (!support::Mutex::rank_checks_enabled())
    GTEST_SKIP() << "rank checks compiled out (release build)";
  ThrowPolicyScope policy;
  support::Mutex low(100, "low");
  support::Mutex high(200, "high");

  high.lock();
  ASSERT_TRUE(low.try_lock());  // downward, but non-blocking: allowed
  EXPECT_EQ(lock_rank::held_count(), 2u);
  low.unlock();
  high.unlock();

  // A try_lock that fails must leave no trace.
  low.lock();
  std::thread other([&] { EXPECT_FALSE(low.try_lock()); });
  other.join();
  low.unlock();
  EXPECT_EQ(lock_rank::held_count(), 0u);
}

TEST(Mutex, RegistryRanksAreStrictlyLayered) {
  // The registry encodes pipeline -> compute -> delivery; a refactor that
  // reorders it should have to update this test deliberately.
  EXPECT_LT(support::kRankRequestQueue, support::kRankCacheShard);
  EXPECT_LT(support::kRankCacheShard, support::kRankPoolQueue);
  EXPECT_LT(support::kRankPoolQueue, support::kRankParallelForState);
  EXPECT_LT(support::kRankParallelForState, support::kRankStreamOut);
  EXPECT_LT(support::kRankStreamOut, support::kRankStreamFlight);
  EXPECT_LT(support::kRankStreamFlight, support::kRankConnectionWrite);
  EXPECT_LT(support::kRankConnectionWrite, support::kRankWorkerChannel);
}

// A minimal producer/consumer over Mutex+CondVar, annotated the way the
// production code is: guarded state accessed only under the lock, waits in
// explicit predicate loops.
class Mailbox {
 public:
  void put(int v) {
    {
      support::MutexLock lock(mutex_);
      while (full_) cv_.wait(lock);  // one-slot box: wait for the consumer
      value_ = v;
      full_ = true;
    }
    cv_.notify_all();
  }

  int take() {
    int v;
    {
      support::MutexLock lock(mutex_);
      while (!full_) cv_.wait(lock);
      v = value_;
      full_ = false;
    }
    cv_.notify_all();
    return v;
  }

 private:
  support::Mutex mutex_{100, "mailbox"};
  support::CondVar cv_;
  int value_ HETERO_GUARDED_BY(mutex_) = 0;
  bool full_ HETERO_GUARDED_BY(mutex_) = false;
};

TEST(CondVar, WaitNotifyAcrossThreads) {
  Mailbox box;
  std::thread producer([&] {
    for (int i = 1; i <= 100; ++i) box.put(i);
  });
  int last = 0;
  for (int i = 1; i <= 100; ++i) last = box.take();
  producer.join();
  EXPECT_EQ(last, 100);
  EXPECT_EQ(lock_rank::held_count(), 0u);
}

}  // namespace
