#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <random>
#include <sstream>

#include "io/csv.hpp"
#include "io/table.hpp"
#include "spec/spec_data.hpp"

namespace {

using hetero::DimensionError;
using hetero::ValueError;
namespace io = hetero::io;

TEST(Csv, ParseWithHeaderAndLabels) {
  const auto etc = io::read_etc_csv_string(
      "task,m1,m2\n"
      "gcc,100,200\n"
      "mcf,50,75\n");
  EXPECT_EQ(etc.task_count(), 2u);
  EXPECT_EQ(etc.machine_count(), 2u);
  EXPECT_EQ(etc.task_names(), (std::vector<std::string>{"gcc", "mcf"}));
  EXPECT_EQ(etc.machine_names(), (std::vector<std::string>{"m1", "m2"}));
  EXPECT_DOUBLE_EQ(etc(1, 1), 75.0);
}

TEST(Csv, ParseBareNumericMatrix) {
  const auto etc = io::read_etc_csv_string("1,2\n3,4\n");
  EXPECT_EQ(etc.task_count(), 2u);
  EXPECT_EQ(etc.task_names(), (std::vector<std::string>{"t1", "t2"}));
  EXPECT_DOUBLE_EQ(etc(0, 1), 2.0);
}

TEST(Csv, ParseLabelsWithoutHeader) {
  const auto etc = io::read_etc_csv_string("gcc,1,2\nmcf,3,4\n");
  EXPECT_EQ(etc.task_names(), (std::vector<std::string>{"gcc", "mcf"}));
  EXPECT_EQ(etc.machine_names(), (std::vector<std::string>{"m1", "m2"}));
}

TEST(Csv, InfinityMarkers) {
  const auto etc = io::read_etc_csv_string("1,inf\nInf,2\n");
  EXPECT_TRUE(std::isinf(etc(0, 1)));
  EXPECT_TRUE(std::isinf(etc(1, 0)));
}

TEST(Csv, WhitespaceAndBlankLinesTolerated) {
  const auto etc = io::read_etc_csv_string(
      "task, m1 , m2\n"
      "\n"
      " a , 1 , 2 \n");
  EXPECT_EQ(etc.machine_names(), (std::vector<std::string>{"m1", "m2"}));
  EXPECT_DOUBLE_EQ(etc(0, 0), 1.0);
}

TEST(Csv, MalformedInputsThrow) {
  EXPECT_THROW(io::read_etc_csv_string(""), ValueError);
  EXPECT_THROW(io::read_etc_csv_string("task,m1\n"), ValueError);
  EXPECT_THROW(io::read_etc_csv_string("a,1,2\nb,3\n"), ValueError);
  EXPECT_THROW(io::read_etc_csv_string("a,1,x\n"), ValueError);
  EXPECT_THROW(io::read_etc_csv_string("task,m1,m2\na,1\n"), ValueError);
}

TEST(Csv, MissingFileThrows) {
  EXPECT_THROW(io::read_etc_csv_file("/nonexistent/path.csv"), ValueError);
}

TEST(Csv, RoundTripPreservesEverything) {
  const auto& original = hetero::spec::spec_cint2006rate();
  const auto parsed =
      io::read_etc_csv_string(io::write_etc_csv_string(original));
  EXPECT_EQ(parsed.task_names(), original.task_names());
  EXPECT_EQ(parsed.machine_names(), original.machine_names());
  for (std::size_t i = 0; i < original.task_count(); ++i)
    for (std::size_t j = 0; j < original.machine_count(); ++j)
      EXPECT_DOUBLE_EQ(parsed(i, j), original(i, j));
}

TEST(Csv, RoundTripWithInfinity) {
  const auto etc = io::read_etc_csv_string("1,inf\n2,3\n");
  const auto again = io::read_etc_csv_string(io::write_etc_csv_string(etc));
  EXPECT_TRUE(std::isinf(again(0, 1)));
  EXPECT_DOUBLE_EQ(again(1, 0), 2.0);
}

TEST(Table, RendersHeaderRuleAndRows) {
  io::Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"bb", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, ArityMismatchThrows) {
  io::Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), DimensionError);
  EXPECT_THROW(io::Table({}), ValueError);
}

TEST(Format, FixedAndGeneral) {
  EXPECT_EQ(io::format_fixed(0.8196, 2), "0.82");
  EXPECT_EQ(io::format_fixed(1.0, 3), "1.000");
  EXPECT_EQ(io::format_general(std::numeric_limits<double>::infinity()),
            "inf");
  EXPECT_EQ(io::format_general(1234.5678, 4), "1235");
}

TEST(PrintMatrix, IncludesLabelsAndValues) {
  std::ostringstream os;
  io::print_etc(os, hetero::spec::spec_fig8b(), 1);
  const std::string out = os.str();
  EXPECT_NE(out.find("436.cactusADM"), std::string::npos);
  EXPECT_NE(out.find("m4"), std::string::npos);
}

TEST(PrintMatrix, LabelMismatchThrows) {
  std::ostringstream os;
  EXPECT_THROW(io::print_matrix(os, hetero::linalg::Matrix{{1, 2}}, {"a", "b"},
                                {"x", "y"}),
               DimensionError);
}

// ---------------------------------------------------------------------------
// Randomized round-trip sweep: arbitrary positive matrices with occasional
// "cannot run" entries must survive CSV serialization bit-for-bit (CSV
// writes 17 significant digits).

class CsvFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(CsvFuzz, RandomEtcRoundTripsExactly) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<std::size_t> dim(1, 9);
  std::lognormal_distribution<double> value(2.0, 2.0);
  std::bernoulli_distribution cannot_run(0.15);

  const std::size_t t = dim(rng), m = dim(rng);
  hetero::linalg::Matrix values(t, m);
  for (double& x : values.data())
    x = cannot_run(rng) ? std::numeric_limits<double>::infinity()
                        : value(rng);
  // Repair all-infinite rows/columns to satisfy the invariants.
  for (std::size_t i = 0; i < t; ++i) {
    bool finite = false;
    for (std::size_t j = 0; j < m; ++j)
      if (std::isfinite(values(i, j))) finite = true;
    if (!finite) values(i, i % m) = value(rng);
  }
  for (std::size_t j = 0; j < m; ++j) {
    bool finite = false;
    for (std::size_t i = 0; i < t; ++i)
      if (std::isfinite(values(i, j))) finite = true;
    if (!finite) values(j % t, j) = value(rng);
  }

  const hetero::core::EtcMatrix etc(values);
  const auto parsed = io::read_etc_csv_string(io::write_etc_csv_string(etc));
  ASSERT_EQ(parsed.task_count(), t);
  ASSERT_EQ(parsed.machine_count(), m);
  for (std::size_t i = 0; i < t; ++i)
    for (std::size_t j = 0; j < m; ++j)
      EXPECT_DOUBLE_EQ(parsed(i, j), etc(i, j)) << i << "," << j;
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvFuzz, ::testing::Range(500u, 525u));

}  // namespace
