#include "core/region.hpp"

#include <gtest/gtest.h>

namespace {

using hetero::ValueError;
using hetero::core::classify_region;
using hetero::core::EcsMatrix;
using hetero::core::HeterogeneityRegion;
using hetero::core::Level;
using hetero::core::MeasureSet;
using hetero::core::recommend_heuristic;
using hetero::core::region_name;
using hetero::core::RegionThresholds;
using hetero::linalg::Matrix;

TEST(Region, DefaultThresholdSplits) {
  const auto r = classify_region(MeasureSet{0.9, 0.5, 0.05});
  EXPECT_EQ(r.mph, Level::high);
  EXPECT_EQ(r.tdh, Level::medium);
  EXPECT_EQ(r.tma, Level::low);
}

TEST(Region, BoundaryValuesGoUp) {
  // Threshold values belong to the upper bucket (half-open intervals).
  RegionThresholds t;
  const auto r = classify_region(MeasureSet{t.homogeneity_low,
                                            t.homogeneity_high, t.tma_high});
  EXPECT_EQ(r.mph, Level::medium);
  EXPECT_EQ(r.tdh, Level::high);
  EXPECT_EQ(r.tma, Level::high);
}

TEST(Region, CustomThresholds) {
  RegionThresholds t;
  t.tma_low = 0.01;
  t.tma_high = 0.02;
  EXPECT_EQ(classify_region(MeasureSet{1, 1, 0.015}, t).tma, Level::medium);
}

TEST(Region, InvalidThresholdsThrow) {
  RegionThresholds t;
  t.homogeneity_low = 0.9;  // > high
  EXPECT_THROW(classify_region(MeasureSet{1, 1, 0}, t), ValueError);
}

TEST(Region, NameRendersAllThreeAxes) {
  HeterogeneityRegion r;
  r.mph = Level::low;
  r.tdh = Level::medium;
  r.tma = Level::high;
  EXPECT_EQ(region_name(r), "low MPH / medium TDH / high TMA");
}

TEST(Recommendation, HighAffinityGetsSufferage) {
  HeterogeneityRegion r;
  r.tma = Level::high;
  EXPECT_EQ(recommend_heuristic(r).heuristic, "Sufferage");
}

TEST(Recommendation, HomogeneousLowAffinityGetsMct) {
  HeterogeneityRegion r;  // defaults: high/high/low
  EXPECT_EQ(recommend_heuristic(r).heuristic, "MCT");
}

TEST(Recommendation, HeterogeneousGetsBatchHeuristic) {
  HeterogeneityRegion r;
  r.mph = Level::low;
  r.tma = Level::medium;
  EXPECT_NE(recommend_heuristic(r).heuristic.find("Min-Min"),
            std::string::npos);
}

TEST(Recommendation, EveryRegionHasARationale) {
  for (const Level mph : {Level::low, Level::medium, Level::high})
    for (const Level tma : {Level::low, Level::medium, Level::high}) {
      HeterogeneityRegion r;
      r.mph = mph;
      r.tma = tma;
      const auto rec = recommend_heuristic(r);
      EXPECT_FALSE(rec.heuristic.empty());
      EXPECT_FALSE(rec.rationale.empty());
    }
}

TEST(Recommendation, FromEnvironmentEndToEnd) {
  // Specialized environment -> high TMA -> Sufferage.
  const EcsMatrix specialized(Matrix{{10, 1, 1}, {1, 10, 1}, {1, 1, 10}});
  EXPECT_EQ(recommend_heuristic(specialized).heuristic, "Sufferage");
  // Uniform environment -> MCT.
  const EcsMatrix uniform(Matrix(3, 3, 1.0));
  EXPECT_EQ(recommend_heuristic(uniform).heuristic, "MCT");
}

}  // namespace
