#include "linalg/vector_ops.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "base/error.hpp"

namespace {

using hetero::DimensionError;
using hetero::ValueError;
namespace lin = hetero::linalg;

TEST(VectorOps, Dot) {
  const std::vector<double> a{1, 2, 3}, b{4, 5, 6};
  EXPECT_DOUBLE_EQ(lin::dot(a, b), 32.0);
  const std::vector<double> c{1};
  EXPECT_THROW(lin::dot(a, c), DimensionError);
}

TEST(VectorOps, Norm2) {
  const std::vector<double> v{3, 4};
  EXPECT_DOUBLE_EQ(lin::norm2(v), 5.0);
}

TEST(VectorOps, SumAndMean) {
  const std::vector<double> v{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(lin::sum(v), 10.0);
  EXPECT_DOUBLE_EQ(lin::mean(v), 2.5);
  EXPECT_THROW(lin::mean(std::vector<double>{}), ValueError);
}

TEST(VectorOps, PopulationStddevMatchesPaperFig2) {
  // Paper Fig. 2 environment 1 reports COV = 0.88 for (1,2,4,8,16), which
  // requires the population (divide-by-n) standard deviation.
  const std::vector<double> v{1, 2, 4, 8, 16};
  EXPECT_NEAR(lin::stddev_population(v) / lin::mean(v), 0.88, 0.005);
}

TEST(VectorOps, SampleStddev) {
  const std::vector<double> v{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_NEAR(lin::stddev_population(v), 2.0, 1e-12);
  EXPECT_GT(lin::stddev_sample(v), lin::stddev_population(v));
  EXPECT_THROW(lin::stddev_sample(std::vector<double>{1.0}), ValueError);
}

TEST(VectorOps, GeometricMean) {
  const std::vector<double> v{1, 4, 16};
  EXPECT_DOUBLE_EQ(lin::geometric_mean(v), 4.0);
  EXPECT_THROW(lin::geometric_mean(std::vector<double>{1, 0}), ValueError);
  EXPECT_THROW(lin::geometric_mean(std::vector<double>{}), ValueError);
}

TEST(VectorOps, CoefficientOfVariation) {
  const std::vector<double> flat{5, 5, 5};
  EXPECT_DOUBLE_EQ(lin::coefficient_of_variation(flat), 0.0);
  const std::vector<double> zero_mean{-1, 1};
  EXPECT_THROW(lin::coefficient_of_variation(zero_mean), ValueError);
}

TEST(VectorOps, AscendingOrder) {
  const std::vector<double> v{3.0, 1.0, 2.0};
  const auto idx = lin::ascending_order(v);
  EXPECT_EQ(idx, (std::vector<std::size_t>{1, 2, 0}));
}

TEST(VectorOps, AscendingOrderIsStableOnTies) {
  const std::vector<double> v{2.0, 1.0, 2.0, 1.0};
  const auto idx = lin::ascending_order(v);
  EXPECT_EQ(idx, (std::vector<std::size_t>{1, 3, 0, 2}));
}

TEST(VectorOps, SortedAscendingAndIsAscending) {
  const std::vector<double> v{3, 1, 2};
  EXPECT_EQ(lin::sorted_ascending(v), (std::vector<double>{1, 2, 3}));
  EXPECT_FALSE(lin::is_ascending(v));
  EXPECT_TRUE(lin::is_ascending(lin::sorted_ascending(v)));
  EXPECT_TRUE(lin::is_ascending(std::vector<double>{1, 1, 2}));
}

TEST(VectorOps, Permutations) {
  const auto id = lin::identity_permutation(4);
  EXPECT_EQ(id, (std::vector<std::size_t>{0, 1, 2, 3}));
  const std::vector<std::size_t> p{2, 0, 1};
  EXPECT_TRUE(lin::is_permutation_vector(p));
  EXPECT_EQ(lin::inverse_permutation(p), (std::vector<std::size_t>{1, 2, 0}));
  const std::vector<std::size_t> dup{0, 0, 1};
  EXPECT_FALSE(lin::is_permutation_vector(dup));
  EXPECT_THROW(lin::inverse_permutation(dup), ValueError);
  const std::vector<std::size_t> oob{0, 3};
  EXPECT_FALSE(lin::is_permutation_vector(oob));
}

TEST(VectorOps, InversePermutationRoundTrip) {
  const std::vector<std::size_t> p{3, 1, 0, 2};
  const auto inv = lin::inverse_permutation(p);
  for (std::size_t i = 0; i < p.size(); ++i) EXPECT_EQ(inv[p[i]], i);
}

}  // namespace
