#include "sched/evolutionary.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "etcgen/range_based.hpp"
#include "parallel/thread_pool.hpp"
#include "sched/heuristics.hpp"

namespace {

using hetero::core::EtcMatrix;
using hetero::linalg::Matrix;
namespace sc = hetero::sched;

constexpr double kInf = std::numeric_limits<double>::infinity();

EtcMatrix random_env(unsigned seed, std::size_t tasks = 20,
                     std::size_t machines = 5) {
  hetero::etcgen::Rng rng = hetero::etcgen::make_rng(seed);
  hetero::etcgen::RangeBasedOptions opts;
  opts.tasks = tasks;
  opts.machines = machines;
  return hetero::etcgen::generate_range_based(opts, rng);
}

TEST(SaMapper, NeverWorseThanItsSeed) {
  const auto etc = random_env(1);
  const auto tasks = sc::one_of_each(etc);
  const double seed_ms =
      sc::makespan(etc, tasks, sc::map_min_min(etc, tasks));
  sc::SaMapperOptions opts;
  opts.iterations = 5000;
  const auto a = sc::map_simulated_annealing(etc, tasks, opts);
  EXPECT_LE(sc::makespan(etc, tasks, a), seed_ms + 1e-9);
}

TEST(SaMapper, ImprovesRandomSeed) {
  const auto etc = random_env(2);
  const auto tasks = sc::one_of_each(etc);
  sc::SaMapperOptions opts;
  opts.seed_with_min_min = false;
  opts.iterations = 8000;
  opts.seed = 7;
  const auto a = sc::map_simulated_annealing(etc, tasks, opts);
  // Must beat an untouched random assignment by a comfortable margin.
  hetero::etcgen::Rng rng = hetero::etcgen::make_rng(7);
  const auto r = sc::map_random(etc, tasks, rng);
  EXPECT_LT(sc::makespan(etc, tasks, a), sc::makespan(etc, tasks, r));
}

TEST(SaMapper, EmptyTaskList) {
  const auto etc = random_env(3);
  EXPECT_TRUE(sc::map_simulated_annealing(etc, {}, {}).empty());
}

TEST(SaMapper, RespectsIncapableMachines) {
  EtcMatrix etc(Matrix{{1, kInf}, {kInf, 1}, {3, 3}});
  const sc::TaskList tasks{0, 1, 2, 2};
  sc::SaMapperOptions opts;
  opts.iterations = 2000;
  const auto a = sc::map_simulated_annealing(etc, tasks, opts);
  EXPECT_FALSE(std::isinf(sc::makespan(etc, tasks, a)));
}

TEST(SaMapper, Reproducible) {
  const auto etc = random_env(4);
  const auto tasks = sc::one_of_each(etc);
  sc::SaMapperOptions opts;
  opts.iterations = 1000;
  opts.seed = 11;
  EXPECT_EQ(sc::map_simulated_annealing(etc, tasks, opts),
            sc::map_simulated_annealing(etc, tasks, opts));
}

TEST(GaMapper, NeverWorseThanMinMinSeed) {
  const auto etc = random_env(5);
  const auto tasks = sc::one_of_each(etc);
  const double seed_ms =
      sc::makespan(etc, tasks, sc::map_min_min(etc, tasks));
  sc::GaMapperOptions opts;
  opts.generations = 50;
  opts.population = 40;
  const auto a = sc::map_genetic(etc, tasks, opts);
  EXPECT_LE(sc::makespan(etc, tasks, a), seed_ms + 1e-9);
}

TEST(GaMapper, ElitismMonotone) {
  // With elitism the result can only improve as generations grow.
  const auto etc = random_env(6);
  const auto tasks = sc::one_of_each(etc);
  sc::GaMapperOptions short_run;
  short_run.generations = 5;
  short_run.seed = 3;
  sc::GaMapperOptions long_run = short_run;
  long_run.generations = 60;
  EXPECT_LE(sc::makespan(etc, tasks, sc::map_genetic(etc, tasks, long_run)),
            sc::makespan(etc, tasks, sc::map_genetic(etc, tasks, short_run)) +
                1e-9);
}

TEST(GaMapper, EmptyTaskList) {
  EXPECT_TRUE(sc::map_genetic(random_env(7), {}, {}).empty());
}

TEST(GaMapper, RespectsIncapableMachines) {
  EtcMatrix etc(Matrix{{1, kInf}, {kInf, 1}});
  sc::GaMapperOptions opts;
  opts.generations = 10;
  opts.population = 10;
  const auto a = sc::map_genetic(etc, {0, 1, 0, 1}, opts);
  EXPECT_FALSE(std::isinf(sc::makespan(etc, {0, 1, 0, 1}, a)));
}

TEST(GaMapper, Reproducible) {
  const auto etc = random_env(8, 10, 3);
  const auto tasks = sc::one_of_each(etc);
  sc::GaMapperOptions opts;
  opts.generations = 15;
  opts.seed = 9;
  EXPECT_EQ(sc::map_genetic(etc, tasks, opts),
            sc::map_genetic(etc, tasks, opts));
}

TEST(GaMapper, ParallelBitIdenticalToSerial) {
  // Per-slot RNG substreams make the GA deterministic in the thread count:
  // 1, 2, and 4 pool threads must all reproduce the serial (pool == nullptr)
  // run exactly (ctest label: sched_equiv).
  const auto etc = random_env(12, 24, 6);
  const auto tasks = sc::one_of_each(etc);
  sc::GaMapperOptions opts;
  opts.generations = 20;
  opts.population = 16;
  opts.seed = 5;
  const auto serial = sc::map_genetic(etc, tasks, opts);
  for (const std::size_t threads : {1u, 2u, 4u}) {
    hetero::par::ThreadPool pool(threads);
    sc::GaMapperOptions popts = opts;
    popts.pool = &pool;
    EXPECT_EQ(sc::map_genetic(etc, tasks, popts), serial)
        << threads << " threads";
  }
}

TEST(GaMapper, ParallelRespectsIncapableMachines) {
  EtcMatrix etc(Matrix{{1, kInf}, {kInf, 1}});
  hetero::par::ThreadPool pool(2);
  sc::GaMapperOptions opts;
  opts.generations = 10;
  opts.population = 10;
  opts.pool = &pool;
  const auto a = sc::map_genetic(etc, {0, 1, 0, 1}, opts);
  EXPECT_FALSE(std::isinf(sc::makespan(etc, {0, 1, 0, 1}, a)));
}

TEST(SearchMappers, BeatGreedyOnHardInstance) {
  // Larger instance: SA with a real budget should at least match MCT.
  const auto etc = random_env(9, 40, 8);
  const auto tasks = sc::one_of_each(etc);
  sc::SaMapperOptions opts;
  opts.iterations = 15000;
  const double sa = sc::makespan(
      etc, tasks, sc::map_simulated_annealing(etc, tasks, opts));
  const double mct = sc::makespan(etc, tasks, sc::map_mct(etc, tasks));
  EXPECT_LE(sa, mct + 1e-9);
}

}  // namespace
