// Async service front-end tests: resumable NDJSON framing (byte-at-a-time
// and random splits must decode byte-identically to whole-buffer
// splitting), consistent-hash shard ownership, the submit_fast inline
// path, and the epoll event loop end to end over real sockets — including
// bit-identity against the PR 5 blocking submit path, oversized-frame
// resync, idle timeouts, write backpressure, graceful-shutdown flushing,
// and the non-blocking load-generator harness. Runs under the svc_equiv
// ctest label (TSan in CI).
#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <random>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "etcgen/range_based.hpp"
#include "etcgen/rng.hpp"
#include "io/json.hpp"
#include "svc/event_loop.hpp"
#include "svc/loadgen.hpp"
#include "svc/result_cache.hpp"
#include "svc/server.hpp"

namespace {

namespace svc = hetero::svc;
namespace io = hetero::io;
using hetero::core::EtcMatrix;

EtcMatrix test_matrix(std::size_t tasks, std::size_t machines,
                      std::uint64_t seed) {
  hetero::etcgen::Rng rng(seed);
  hetero::etcgen::RangeBasedOptions options;
  options.tasks = tasks;
  options.machines = machines;
  return hetero::etcgen::generate_range_based(options, rng);
}

std::string request_line(const EtcMatrix& etc, const std::string& kind,
                         const std::string& extra = {}) {
  return "{\"kind\":\"" + kind + "\"" + extra +
         ",\"etc\":" + io::to_json(etc) + "}";
}

/// The request fixture set every framing/equivalence suite runs through:
/// one of each kind, a malformed line, and a small matrix for speed.
std::vector<std::string> fixture_lines() {
  const auto etc = test_matrix(8, 4, 11);
  return {
      request_line(etc, "characterize"),
      request_line(etc, "measures"),
      request_line(etc, "schedule", ",\"heuristic\":\"min_min\""),
      request_line(etc, "whatif"),
      request_line(test_matrix(6, 3, 12), "characterize", ",\"id\":42"),
      "{\"kind\":\"nonsense\"}",
      "not json at all",
  };
}

/// Synchronous submit through the blocking (PR 5) path.
std::string call(svc::Server& server, const std::string& line) {
  std::mutex m;
  std::condition_variable cv;
  std::string response;
  bool done = false;
  server.submit(line, [&](std::string r) {
    // Notify under the lock: the caller destroys cv as soon as done flips.
    const std::scoped_lock lock(m);
    response = std::move(r);
    done = true;
    cv.notify_one();
  });
  std::unique_lock lock(m);
  cv.wait(lock, [&] { return done; });
  return response;
}

// ---------------------------------------------------------------------------
// LineFramer: resumable framing.

std::vector<std::string> frames_of(io::LineFramer& framer) {
  std::vector<std::string> out;
  while (auto frame = framer.next()) out.push_back(std::move(frame->line));
  return out;
}

/// Reference decoding: split the whole stream at '\n'.
std::vector<std::string> split_lines(const std::string& stream) {
  std::vector<std::string> out;
  std::size_t start = 0;
  std::size_t pos;
  while ((pos = stream.find('\n', start)) != std::string::npos) {
    out.push_back(stream.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string fixture_stream() {
  std::string stream;
  for (const auto& line : fixture_lines()) {
    stream += line;
    stream += '\n';
  }
  return stream;
}

TEST(SvcLineFramer, ByteAtATimeMatchesWholeBuffer) {
  const std::string stream = fixture_stream();
  const auto expected = split_lines(stream);

  io::LineFramer framer;
  std::vector<std::string> got;
  for (const char byte : stream) {
    framer.feed(std::string_view(&byte, 1));
    for (auto& line : frames_of(framer)) got.push_back(std::move(line));
  }
  EXPECT_EQ(got, expected);
  EXPECT_FALSE(framer.mid_frame());
  EXPECT_EQ(framer.pending_bytes(), 0u);
}

TEST(SvcLineFramer, RandomSplitsMatchWholeBuffer) {
  const std::string stream = fixture_stream();
  const auto expected = split_lines(stream);

  std::mt19937 rng(1234);
  for (int round = 0; round < 50; ++round) {
    io::LineFramer framer;
    std::vector<std::string> got;
    std::size_t offset = 0;
    while (offset < stream.size()) {
      std::uniform_int_distribution<std::size_t> chunk_size(
          1, 1 + (stream.size() - offset) / 3 + 7);
      const std::size_t n =
          std::min(chunk_size(rng), stream.size() - offset);
      framer.feed(std::string_view(stream).substr(offset, n));
      offset += n;
      for (auto& line : frames_of(framer)) got.push_back(std::move(line));
    }
    ASSERT_EQ(got, expected) << "round " << round;
    EXPECT_FALSE(framer.mid_frame());
  }
}

TEST(SvcLineFramer, KeepsCarriageReturnAndEmptyLines) {
  io::LineFramer framer;
  framer.feed("a\r\n\nb\n");
  auto a = framer.next();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->line, "a\r");
  auto blank = framer.next();
  ASSERT_TRUE(blank.has_value());
  EXPECT_EQ(blank->line, "");
  auto b = framer.next();
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->line, "b");
  EXPECT_FALSE(framer.next().has_value());
}

TEST(SvcLineFramer, MidFrameState) {
  io::LineFramer framer;
  EXPECT_FALSE(framer.mid_frame());
  framer.feed("partial");
  EXPECT_TRUE(framer.mid_frame());
  EXPECT_EQ(framer.pending_bytes(), 7u);
  framer.feed(" line\n");
  auto frame = framer.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->line, "partial line");
  EXPECT_FALSE(framer.mid_frame());
}

TEST(SvcLineFramer, OversizedLineIsTruncatedAndResyncs) {
  io::LineFramer framer(16);
  const std::string garbage(100, 'x');
  framer.feed(garbage);
  // The cap is exceeded mid-line: nothing to emit yet, memory bounded.
  EXPECT_FALSE(framer.next().has_value());
  EXPECT_LE(framer.pending_bytes(), 16u);
  framer.feed("tail\nvalid\n");
  auto oversized = framer.next();
  ASSERT_TRUE(oversized.has_value());
  EXPECT_TRUE(oversized->oversized);
  EXPECT_EQ(oversized->line, garbage.substr(0, 16));
  auto valid = framer.next();
  ASSERT_TRUE(valid.has_value());
  EXPECT_FALSE(valid->oversized);
  EXPECT_EQ(valid->line, "valid");
  EXPECT_FALSE(framer.next().has_value());
}

TEST(SvcLineFramer, OversizedByteAtATime) {
  io::LineFramer framer(8);
  const std::string stream = std::string(40, 'y') + "\nok\n";
  std::vector<io::LineFramer::Frame> got;
  for (const char byte : stream) {
    framer.feed(std::string_view(&byte, 1));
    while (auto frame = framer.next()) got.push_back(std::move(*frame));
  }
  ASSERT_EQ(got.size(), 2u);
  EXPECT_TRUE(got[0].oversized);
  EXPECT_EQ(got[0].line, std::string(8, 'y'));
  EXPECT_FALSE(got[1].oversized);
  EXPECT_EQ(got[1].line, "ok");
}

TEST(SvcLineFramer, GarbageThenValidThroughServer) {
  // An oversized garbage line must not poison the following request: the
  // decoded valid frame's response is byte-identical to the direct path.
  svc::Server server;
  const std::string valid = fixture_lines()[1];
  io::LineFramer framer(4096);
  framer.feed(std::string(10000, '{'));
  framer.feed("\n");
  framer.feed(valid + "\n");
  auto first = framer.next();
  ASSERT_TRUE(first.has_value());
  EXPECT_TRUE(first->oversized);
  auto second = framer.next();
  ASSERT_TRUE(second.has_value());
  EXPECT_FALSE(second->oversized);
  EXPECT_EQ(server.handle(second->line), server.handle(valid));
}

// ---------------------------------------------------------------------------
// ShardMap: consistent-hash shard ownership.

TEST(SvcShardMap, OwnersAreValidAndDeterministic) {
  const svc::ShardMap a(16, 4);
  const svc::ShardMap b(16, 4);
  EXPECT_EQ(a.shard_count(), 16u);
  EXPECT_EQ(a.worker_count(), 4u);
  for (std::size_t s = 0; s < a.shard_count(); ++s) {
    EXPECT_LT(a.owner(s), 4u);
    EXPECT_EQ(a.owner(s), b.owner(s));  // same geometry => same map
  }
}

TEST(SvcShardMap, SingleWorkerOwnsEverything) {
  const svc::ShardMap map(16, 1);
  for (std::size_t s = 0; s < map.shard_count(); ++s)
    EXPECT_EQ(map.owner(s), 0u);
}

TEST(SvcShardMap, SpreadsShardsAcrossWorkers) {
  const svc::ShardMap map(64, 4);
  std::set<std::size_t> owners;
  for (std::size_t s = 0; s < map.shard_count(); ++s)
    owners.insert(map.owner(s));
  // 64 shards over 4 workers: every worker should win some shards.
  EXPECT_EQ(owners.size(), 4u);
}

TEST(SvcShardMap, GrowingWorkersMovesOnlySomeShards) {
  const svc::ShardMap before(64, 4);
  const svc::ShardMap after(64, 5);
  std::size_t moved = 0;
  for (std::size_t s = 0; s < before.shard_count(); ++s)
    if (before.owner(s) != after.owner(s)) ++moved;
  // Consistent hashing: adding a worker reassigns roughly 1/5 of the
  // shards, not all of them (a modulo map would move ~4/5).
  EXPECT_GT(moved, 0u);
  EXPECT_LT(moved, 32u);
}

TEST(SvcShardMap, ZeroGeometryClamps) {
  const svc::ShardMap map(0, 0);
  EXPECT_EQ(map.shard_count(), 1u);
  EXPECT_EQ(map.worker_count(), 1u);
  EXPECT_EQ(map.owner(0), 0u);
}

// ---------------------------------------------------------------------------
// Server::submit_fast: the event-loop entry point.

TEST(SvcSubmitFast, ParseErrorReturnsInline) {
  svc::Server server;
  svc::Server::FastPathInfo info;
  const auto response = server.submit_fast(
      "garbage", [](std::string) { FAIL() << "respond must not fire"; },
      nullptr, 0, &info);
  ASSERT_TRUE(response.has_value());
  EXPECT_NE(response->find("\"code\":400"), std::string::npos);
  EXPECT_EQ(info.kind, svc::RequestKind::invalid);
  EXPECT_FALSE(info.inline_hit);
}

TEST(SvcSubmitFast, ColdMissGoesAsyncThenWarmHitInline) {
  svc::Server server;
  const std::string line = fixture_lines()[0];

  std::mutex m;
  std::condition_variable cv;
  std::string async_response;
  bool done = false;
  svc::Server::FastPathInfo info;
  const auto cold = server.submit_fast(
      line,
      [&](std::string r) {
        const std::scoped_lock lock(m);
        async_response = std::move(r);
        done = true;
        cv.notify_one();
      },
      nullptr, 0, &info);
  EXPECT_FALSE(cold.has_value());  // miss: the pool answers
  EXPECT_EQ(info.kind, svc::RequestKind::characterize);
  EXPECT_FALSE(info.had_deadline);
  {
    std::unique_lock lock(m);
    cv.wait(lock, [&] { return done; });
  }

  const auto warm = server.submit_fast(
      line, [](std::string) { FAIL() << "warm hit must answer inline"; },
      nullptr, 0, &info);
  ASSERT_TRUE(warm.has_value());
  EXPECT_TRUE(info.inline_hit);
  EXPECT_EQ(*warm, async_response);  // bit-identical to the cold response
  EXPECT_EQ(*warm, call(server, line));  // and to the blocking path
}

TEST(SvcSubmitFast, NonOwnedShardTakesTheQueuePath) {
  svc::Server server;
  const std::string line = fixture_lines()[0];
  call(server, line);  // warm the cache

  // A map whose single worker index is 0: claiming index 1 owns nothing,
  // so even a warm hit must go through the queue (and still answer with
  // the identical cached bytes).
  const svc::ShardMap map(server.cache().shard_count(), 1);
  std::mutex m;
  std::condition_variable cv;
  std::string async_response;
  bool done = false;
  const auto result = server.submit_fast(
      line,
      [&](std::string r) {
        const std::scoped_lock lock(m);
        async_response = std::move(r);
        done = true;
        cv.notify_one();
      },
      &map, /*worker_index=*/1);
  EXPECT_FALSE(result.has_value());
  std::unique_lock lock(m);
  cv.wait(lock, [&] { return done; });
  EXPECT_EQ(async_response, call(server, line));
}

TEST(SvcSubmitFast, DeadlineMarksInfo) {
  svc::Server server;
  const std::string line =
      request_line(test_matrix(4, 2, 3), "measures", ",\"deadline_ms\":5000");
  svc::Server::FastPathInfo info;
  std::mutex m;
  std::condition_variable cv;
  bool done = false;
  const auto result = server.submit_fast(
      line,
      [&](std::string) {
        const std::scoped_lock lock(m);
        done = true;
        cv.notify_one();
      },
      nullptr, 0, &info);
  EXPECT_TRUE(info.had_deadline);
  if (!result.has_value()) {
    std::unique_lock lock(m);
    cv.wait(lock, [&] { return done; });
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Event loop end to end (real sockets; Linux only).

#if defined(__linux__)

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

namespace {

/// Minimal blocking NDJSON client for driving the event loop in tests.
class TestClient {
 public:
  /// `rcvbuf` > 0 pins SO_RCVBUF before connecting, so the advertised TCP
  /// window stays small for backpressure tests.
  explicit TestClient(std::uint16_t port, int rcvbuf = 0) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ >= 0 && rcvbuf > 0)
      ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof rcvbuf);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ = fd_ >= 0 &&
                 ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                           sizeof addr) == 0;
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  TestClient(const TestClient&) = delete;
  TestClient& operator=(const TestClient&) = delete;

  bool connected() const { return connected_; }
  int fd() const { return fd_; }

  bool send_all(std::string_view data) {
    std::size_t off = 0;
    while (off < data.size()) {
      const auto n = ::send(fd_, data.data() + off, data.size() - off,
                            MSG_NOSIGNAL);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// Next response line (without '\n'); nullopt on EOF.
  std::optional<std::string> recv_line() {
    while (true) {
      const auto pos = buffer_.find('\n');
      if (pos != std::string::npos) {
        std::string line = buffer_.substr(0, pos);
        buffer_.erase(0, pos + 1);
        return line;
      }
      char chunk[4096];
      const auto n = ::recv(fd_, chunk, sizeof chunk, 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return std::nullopt;
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  /// True when the peer has closed (EOF observed).
  bool at_eof() {
    char byte;
    const auto n = ::recv(fd_, &byte, 1, 0);
    return n == 0;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  std::string buffer_;
};

/// One request/response round trip over an established connection.
std::optional<std::string> roundtrip(TestClient& client,
                                     const std::string& line) {
  if (!client.send_all(line + "\n")) return std::nullopt;
  return client.recv_line();
}

TEST(SvcEventLoop, BitIdenticalToBlockingPath) {
  svc::Server server;
  svc::Server twin;  // the PR 5 blocking reference
  svc::EventLoopServer loop(server);
  std::ostringstream log;
  ASSERT_TRUE(loop.start(log));

  TestClient client(loop.port());
  ASSERT_TRUE(client.connected());
  for (const auto& line : fixture_lines()) {
    // Twice each: cold then warm (cache path), plus a third pass for the
    // raw-line memo — every response must match the blocking twin.
    for (int pass = 0; pass < 3; ++pass) {
      const auto got = roundtrip(client, line);
      ASSERT_TRUE(got.has_value()) << line;
      EXPECT_EQ(*got, call(twin, line)) << line << " pass " << pass;
    }
  }
}

TEST(SvcEventLoop, MultiWorkerBitIdentical) {
  svc::EventLoopOptions options;
  options.workers = 3;
  svc::Server server;
  svc::Server twin;
  svc::EventLoopServer loop(server, options);
  std::ostringstream log;
  ASSERT_TRUE(loop.start(log));
  EXPECT_EQ(loop.worker_count(), 3u);

  const auto lines = fixture_lines();
  // Several short-lived connections so the kernel spreads them across the
  // per-worker listeners.
  for (int c = 0; c < 8; ++c) {
    TestClient client(loop.port());
    ASSERT_TRUE(client.connected());
    for (const auto& line : lines) {
      const auto got = roundtrip(client, line);
      ASSERT_TRUE(got.has_value());
      EXPECT_EQ(*got, call(twin, line));
    }
  }
}

TEST(SvcEventLoop, SplitWritesDecodeIdentically) {
  svc::Server server;
  svc::Server twin;
  svc::EventLoopServer loop(server);
  std::ostringstream log;
  ASSERT_TRUE(loop.start(log));

  TestClient client(loop.port());
  ASSERT_TRUE(client.connected());
  const std::string line = fixture_lines()[0];
  const std::string framed = line + "\n";
  // Drip the request in small uneven chunks; the resumable framer must
  // reassemble it bit-for-bit.
  std::mt19937 rng(7);
  std::size_t off = 0;
  while (off < framed.size()) {
    std::uniform_int_distribution<std::size_t> chunk_size(1, 9);
    const std::size_t n = std::min(chunk_size(rng), framed.size() - off);
    ASSERT_TRUE(client.send_all(std::string_view(framed).substr(off, n)));
    off += n;
  }
  const auto got = client.recv_line();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, call(twin, line));
}

TEST(SvcEventLoop, PipelinedBurstAnswersEverything) {
  svc::Server server;
  svc::Server twin;
  svc::EventLoopServer loop(server);
  std::ostringstream log;
  ASSERT_TRUE(loop.start(log));

  TestClient client(loop.port());
  ASSERT_TRUE(client.connected());
  const std::string line = fixture_lines()[1];
  const std::string expected = call(twin, line);
  constexpr int kBurst = 32;
  std::string burst;
  for (int i = 0; i < kBurst; ++i) burst += line + "\n";
  ASSERT_TRUE(client.send_all(burst));
  for (int i = 0; i < kBurst; ++i) {
    const auto got = client.recv_line();
    ASSERT_TRUE(got.has_value()) << "response " << i;
    EXPECT_EQ(*got, expected);
  }
}

TEST(SvcEventLoop, OversizedFrameGets400AndStreamResyncs) {
  svc::EventLoopOptions options;
  options.max_frame_bytes = 4096;
  svc::Server server;
  svc::Server twin;
  svc::EventLoopServer loop(server, options);
  std::ostringstream log;
  ASSERT_TRUE(loop.start(log));

  TestClient client(loop.port());
  ASSERT_TRUE(client.connected());
  const std::string valid = fixture_lines()[1];
  ASSERT_TRUE(client.send_all(std::string(10000, '{') + "\n" + valid + "\n"));
  const auto first = client.recv_line();
  ASSERT_TRUE(first.has_value());
  EXPECT_NE(first->find("\"code\":400"), std::string::npos);
  EXPECT_NE(first->find("frame exceeds"), std::string::npos);
  const auto second = client.recv_line();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*second, call(twin, valid));
  EXPECT_GE(server.metrics().connections().oversized_frames.load(), 1u);
}

TEST(SvcEventLoop, StatsReportsConnectionGauges) {
  svc::Server server;
  svc::EventLoopServer loop(server);
  std::ostringstream log;
  ASSERT_TRUE(loop.start(log));

  TestClient client(loop.port());
  ASSERT_TRUE(client.connected());
  roundtrip(client, fixture_lines()[0]);
  const auto stats = roundtrip(client, "{\"kind\":\"stats\"}");
  ASSERT_TRUE(stats.has_value());
  EXPECT_NE(stats->find("\"connections\""), std::string::npos);
  EXPECT_NE(stats->find("\"accepted\":1"), std::string::npos);
  EXPECT_NE(stats->find("\"active\":1"), std::string::npos);
}

TEST(SvcEventLoop, IdleConnectionsAreReaped) {
  svc::EventLoopOptions options;
  options.idle_timeout = std::chrono::milliseconds(150);
  svc::Server server;
  svc::EventLoopServer loop(server, options);
  std::ostringstream log;
  ASSERT_TRUE(loop.start(log));

  TestClient client(loop.port());
  ASSERT_TRUE(client.connected());
  // Never send anything: the sweep must close the half-open peer.
  EXPECT_TRUE(client.at_eof());  // blocks until the server closes
  EXPECT_GE(server.metrics().connections().timed_out.load(), 1u);
}

TEST(SvcEventLoop, BackpressureClosesUnresponsivePeer) {
  // The read-pause at the high-water mark normally keeps a connection
  // under the close limit (by design), so to pin down the close path
  // deterministically the high water is parked above the close limit and
  // the kernel-side buffering is bounded on both sides: SO_SNDBUF on the
  // server, SO_RCVBUF pinned before connect on the client. A peer that
  // never reads then drives the unsent-response buffer straight through
  // the limit.
  svc::EventLoopOptions options;
  options.write_high_water = 1 << 20;
  options.write_close_limit = 32 << 10;
  options.send_buffer_bytes = 16 << 10;
  options.idle_timeout = std::chrono::milliseconds(5000);  // failure backstop
  svc::Server server;
  svc::EventLoopServer loop(server, options);
  std::ostringstream log;
  ASSERT_TRUE(loop.start(log));

  // Warm the cache so responses are generated faster than the peer could
  // ever drain them; whatif has the fattest response per request byte.
  const std::string line = request_line(test_matrix(8, 4, 5), "whatif");
  {
    TestClient warmup(loop.port());
    ASSERT_TRUE(warmup.connected());
    ASSERT_TRUE(roundtrip(warmup, line).has_value());
  }

  TestClient client(loop.port(), /*rcvbuf=*/4096);
  ASSERT_TRUE(client.connected());
  // Never read; the responses owed (~128 x 2.5 KB) exceed the close limit
  // plus everything both kernels can absorb.
  std::string burst;
  for (int i = 0; i < 128; ++i) burst += line + "\n";
  client.send_all(burst);  // may partially fail once the server closes

  // The server must close us; reading everything left ends in EOF.
  while (client.recv_line().has_value()) {
  }
  EXPECT_GE(server.metrics().connections().backpressure_closed.load(), 1u);
}

TEST(SvcEventLoop, GracefulShutdownFlushesInFlight) {
  svc::Server server;
  svc::EventLoopServer loop(server);
  std::ostringstream log;
  ASSERT_TRUE(loop.start(log));

  TestClient client(loop.port());
  ASSERT_TRUE(client.connected());
  // A cold characterize large enough that shutdown lands mid-compute.
  const std::string line = request_line(test_matrix(96, 12, 77),
                                        "characterize");
  ASSERT_TRUE(client.send_all(line + "\n"));
  // Let the loop read and admit the frame before the drain begins.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  loop.request_shutdown();

  const auto got = client.recv_line();
  ASSERT_TRUE(got.has_value()) << "in-flight response was dropped";
  svc::Server twin;
  EXPECT_EQ(*got, call(twin, line));
  EXPECT_FALSE(client.recv_line().has_value());  // then EOF
  loop.wait();
}

TEST(SvcEventLoop, LoadGenClosedLoopSmoke) {
  svc::Server server;
  svc::EventLoopServer loop(server);
  std::ostringstream log;
  ASSERT_TRUE(loop.start(log));

  svc::LoadGenOptions gen;
  gen.port = loop.port();
  gen.clients = 16;
  gen.requests_per_client = 10;
  gen.pipeline = 2;
  const auto report = svc::run_load(fixture_lines(), gen);
  EXPECT_TRUE(report.ok) << report.to_json();
  EXPECT_EQ(report.received, 160u);
  EXPECT_EQ(report.malformed, 0u);
  EXPECT_EQ(report.dropped, 0u);
  // The fixture set includes malformed requests: their 400s are
  // well-formed protocol errors, not malformed responses.
  EXPECT_GT(report.ok_false, 0u);
  EXPECT_GT(report.latency.count, 0u);
}

TEST(SvcEventLoop, LoadGenOpenLoopSmoke) {
  svc::EventLoopOptions options;
  options.workers = 2;
  svc::Server server;
  svc::EventLoopServer loop(server, options);
  std::ostringstream log;
  ASSERT_TRUE(loop.start(log));

  svc::LoadGenOptions gen;
  gen.port = loop.port();
  gen.clients = 4;
  gen.requests_per_client = 8;
  gen.open_loop_rps = 400.0;
  const auto report =
      svc::run_load({request_line(test_matrix(6, 3, 2), "measures")}, gen);
  EXPECT_TRUE(report.ok) << report.to_json();
  EXPECT_EQ(report.received, 32u);
}

}  // namespace

#endif  // __linux__
