#include "linalg/qr.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "linalg/svd.hpp"
#include "linalg/vector_ops.hpp"

namespace {

using hetero::DimensionError;
using hetero::ValueError;
namespace lin = hetero::linalg;
using lin::Matrix;

Matrix random_matrix(std::size_t rows, std::size_t cols, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-2.0, 2.0);
  Matrix m(rows, cols);
  for (double& x : m.data()) x = dist(rng);
  return m;
}

TEST(Qr, RejectsWideAndNonFinite) {
  EXPECT_THROW(lin::qr(Matrix{{1, 2, 3}, {4, 5, 6}}), ValueError);
  EXPECT_THROW(lin::qr(Matrix{{std::nan("")}, {1.0}}), ValueError);
}

class QrRandom
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(QrRandom, FactorsReconstructAndQIsOrthonormal) {
  const auto [m, n] = GetParam();
  const Matrix a = random_matrix(m, n, static_cast<unsigned>(m * 13 + n));
  const auto f = lin::qr(a);
  ASSERT_EQ(f.q.rows(), m);
  ASSERT_EQ(f.q.cols(), n);
  ASSERT_EQ(f.r.rows(), n);
  ASSERT_EQ(f.r.cols(), n);
  EXPECT_LT(lin::max_abs_diff(lin::matmul(f.q, f.r), a), 1e-10);
  EXPECT_LT(lin::max_abs_diff(lin::gram(f.q), Matrix::identity(n)), 1e-10);
  // R strictly upper triangular below the diagonal.
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < i; ++j) EXPECT_EQ(f.r(i, j), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, QrRandom,
    ::testing::Values(std::pair<std::size_t, std::size_t>{1, 1},
                      std::pair<std::size_t, std::size_t>{3, 3},
                      std::pair<std::size_t, std::size_t>{5, 2},
                      std::pair<std::size_t, std::size_t>{10, 4},
                      std::pair<std::size_t, std::size_t>{20, 20}));

TEST(LeastSquares, ExactSystemRecovered) {
  const Matrix a{{1, 0}, {0, 1}, {1, 1}};
  // b generated from x = (2, -1): residual 0.
  const std::vector<double> b{2, -1, 1};
  const auto x = lin::least_squares(a, b);
  EXPECT_NEAR(x[0], 2.0, 1e-12);
  EXPECT_NEAR(x[1], -1.0, 1e-12);
}

TEST(LeastSquares, OverdeterminedProjects) {
  // Fit a constant to {1, 2, 3}: the mean.
  const Matrix a{{1}, {1}, {1}};
  const std::vector<double> b{1, 2, 3};
  const auto x = lin::least_squares(a, b);
  EXPECT_NEAR(x[0], 2.0, 1e-12);
}

TEST(LeastSquares, ResidualOrthogonalToColumns) {
  const Matrix a = random_matrix(12, 3, 7);
  std::vector<double> b(12);
  for (std::size_t i = 0; i < b.size(); ++i)
    b[i] = std::sin(static_cast<double>(i));
  const auto x = lin::least_squares(a, b);
  const auto ax = lin::matvec(a, x);
  std::vector<double> resid(b.size());
  for (std::size_t i = 0; i < b.size(); ++i) resid[i] = b[i] - ax[i];
  for (std::size_t j = 0; j < 3; ++j)
    EXPECT_NEAR(lin::dot(a.col(j), resid), 0.0, 1e-9);
}

TEST(LeastSquares, RankDeficientThrows) {
  const Matrix a{{1, 2}, {2, 4}, {3, 6}};
  const std::vector<double> b{1, 2, 3};
  EXPECT_THROW(lin::least_squares(a, b), ValueError);
}

TEST(FitLinear, RecoversPlantedModel) {
  // y = 3 + 2 x1 - x2, noiseless: R^2 = 1.
  std::mt19937 rng(11);
  std::uniform_real_distribution<double> dist(0.0, 5.0);
  Matrix predictors(30, 2);
  std::vector<double> y(30);
  for (std::size_t i = 0; i < 30; ++i) {
    predictors(i, 0) = dist(rng);
    predictors(i, 1) = dist(rng);
    y[i] = 3.0 + 2.0 * predictors(i, 0) - predictors(i, 1);
  }
  const auto fit = lin::fit_linear(predictors, y);
  EXPECT_NEAR(fit.coefficients[0], 3.0, 1e-9);
  EXPECT_NEAR(fit.coefficients[1], 2.0, 1e-9);
  EXPECT_NEAR(fit.coefficients[2], -1.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(FitLinear, NoiseLowersRSquared) {
  std::mt19937 rng(13);
  std::normal_distribution<double> noise(0.0, 1.0);
  std::uniform_real_distribution<double> dist(0.0, 5.0);
  Matrix predictors(60, 1);
  std::vector<double> y(60);
  for (std::size_t i = 0; i < 60; ++i) {
    predictors(i, 0) = dist(rng);
    y[i] = predictors(i, 0) + noise(rng);
  }
  const auto fit = lin::fit_linear(predictors, y);
  EXPECT_GT(fit.r_squared, 0.4);
  EXPECT_LT(fit.r_squared, 0.99);
}

TEST(FitLinear, ValidatesShapes) {
  Matrix predictors(3, 2);
  const std::vector<double> y{1, 2, 3};
  EXPECT_THROW(lin::fit_linear(predictors, y), ValueError);  // n <= k+1
  const std::vector<double> wrong{1, 2};
  EXPECT_THROW(lin::fit_linear(Matrix(5, 1), wrong), DimensionError);
}

TEST(ConditionNumber, KnownValues) {
  EXPECT_NEAR(lin::condition_number(Matrix::identity(3)), 1.0, 1e-10);
  EXPECT_NEAR(lin::condition_number(Matrix{{10, 0}, {0, 1}}), 10.0, 1e-9);
  EXPECT_TRUE(std::isinf(lin::condition_number(Matrix{{1, 2}, {2, 4}})));
}

TEST(PseudoInverse, InvertibleMatchesInverse) {
  const Matrix a = random_matrix(4, 4, 17);
  const Matrix pinv = lin::pseudo_inverse(a);
  EXPECT_LT(lin::max_abs_diff(lin::matmul(a, pinv), Matrix::identity(4)),
            1e-8);
}

TEST(PseudoInverse, MoorePenroseConditions) {
  const Matrix a = random_matrix(5, 3, 19);
  const Matrix p = lin::pseudo_inverse(a);
  // A P A = A and P A P = P.
  EXPECT_LT(lin::max_abs_diff(lin::matmul(lin::matmul(a, p), a), a), 1e-9);
  EXPECT_LT(lin::max_abs_diff(lin::matmul(lin::matmul(p, a), p), p), 1e-9);
}

TEST(PseudoInverse, RankDeficientIsWellDefined) {
  const Matrix rank1{{1, 2}, {2, 4}};
  const Matrix p = lin::pseudo_inverse(rank1);
  // A P A = A still holds.
  EXPECT_LT(lin::max_abs_diff(lin::matmul(lin::matmul(rank1, p), rank1),
                              rank1),
            1e-9);
}

}  // namespace
