#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/measures.hpp"
#include "etcgen/anneal.hpp"
#include "etcgen/cvb.hpp"
#include "etcgen/range_based.hpp"

namespace {

using hetero::ValueError;
using hetero::core::EtcMatrix;
namespace eg = hetero::etcgen;

bool rows_sorted_ascending(const EtcMatrix& etc) {
  for (std::size_t i = 0; i < etc.task_count(); ++i)
    for (std::size_t j = 0; j + 1 < etc.machine_count(); ++j)
      if (etc(i, j) > etc(i, j + 1)) return false;
  return true;
}

TEST(RangeBased, DimensionsAndPositivity) {
  eg::Rng rng = eg::make_rng(1);
  eg::RangeBasedOptions opts;
  opts.tasks = 10;
  opts.machines = 4;
  const auto etc = eg::generate_range_based(opts, rng);
  EXPECT_EQ(etc.task_count(), 10u);
  EXPECT_EQ(etc.machine_count(), 4u);
  EXPECT_TRUE(etc.values().all_positive());
}

TEST(RangeBased, EntriesWithinRangeProduct) {
  eg::Rng rng = eg::make_rng(2);
  eg::RangeBasedOptions opts;
  opts.tasks = 20;
  opts.machines = 5;
  opts.task_range = 50.0;
  opts.machine_range = 8.0;
  const auto etc = eg::generate_range_based(opts, rng);
  EXPECT_GE(etc.values().min(), 1.0);
  EXPECT_LE(etc.values().max(), 50.0 * 8.0);
}

TEST(RangeBased, Reproducible) {
  eg::RangeBasedOptions opts;
  opts.tasks = 5;
  opts.machines = 3;
  eg::Rng a = eg::make_rng(99), b = eg::make_rng(99);
  EXPECT_EQ(eg::generate_range_based(opts, a).values(),
            eg::generate_range_based(opts, b).values());
}

TEST(RangeBased, ConsistentMatrixHasSortedRows) {
  eg::Rng rng = eg::make_rng(3);
  eg::RangeBasedOptions opts;
  opts.tasks = 8;
  opts.machines = 6;
  opts.consistency = eg::Consistency::consistent;
  EXPECT_TRUE(rows_sorted_ascending(eg::generate_range_based(opts, rng)));
}

TEST(RangeBased, InconsistentMatrixUsuallyUnsorted) {
  eg::Rng rng = eg::make_rng(4);
  eg::RangeBasedOptions opts;
  opts.tasks = 8;
  opts.machines = 6;
  EXPECT_FALSE(rows_sorted_ascending(eg::generate_range_based(opts, rng)));
}

TEST(RangeBased, RejectsBadOptions) {
  eg::Rng rng = eg::make_rng(5);
  eg::RangeBasedOptions opts;  // zero dims
  EXPECT_THROW(eg::generate_range_based(opts, rng), ValueError);
  opts.tasks = 2;
  opts.machines = 2;
  opts.task_range = 0.5;
  EXPECT_THROW(eg::generate_range_based(opts, rng), ValueError);
}

TEST(RangeBased, HigherMachineRangeLowersMph) {
  // Averaged over tasks, wider machine ranges produce more heterogeneous
  // machine performances -> lower MPH.
  double mph_narrow = 0.0, mph_wide = 0.0;
  for (unsigned seed = 0; seed < 10; ++seed) {
    eg::RangeBasedOptions narrow;
    narrow.tasks = 30;
    narrow.machines = 6;
    narrow.machine_range = 1.5;
    eg::RangeBasedOptions wide = narrow;
    wide.machine_range = 100.0;
    eg::Rng r1 = eg::make_rng(100 + seed), r2 = eg::make_rng(200 + seed);
    mph_narrow += hetero::core::mph(eg::generate_range_based(narrow, r1).to_ecs());
    mph_wide += hetero::core::mph(eg::generate_range_based(wide, r2).to_ecs());
  }
  EXPECT_GT(mph_narrow, mph_wide);
}

TEST(MakeConsistent, Idempotent) {
  eg::Rng rng = eg::make_rng(6);
  eg::RangeBasedOptions opts;
  opts.tasks = 4;
  opts.machines = 4;
  const auto etc = eg::generate_range_based(opts, rng);
  const auto once = eg::make_consistent(etc);
  const auto twice = eg::make_consistent(once);
  EXPECT_EQ(once.values(), twice.values());
}

TEST(MakeConsistent, PreservesRowMultisets) {
  eg::Rng rng = eg::make_rng(7);
  eg::RangeBasedOptions opts;
  opts.tasks = 3;
  opts.machines = 5;
  const auto etc = eg::generate_range_based(opts, rng);
  const auto sorted = eg::make_consistent(etc);
  for (std::size_t i = 0; i < 3; ++i) {
    auto a = etc.values().row(i);
    auto b = sorted.values().row(i);
    std::vector<double> va(a.begin(), a.end()), vb(b.begin(), b.end());
    std::sort(va.begin(), va.end());
    EXPECT_EQ(va, vb);
  }
}

TEST(MakeSemiConsistent, SortsChosenColumnsOnly) {
  eg::Rng rng = eg::make_rng(8);
  eg::RangeBasedOptions opts;
  opts.tasks = 6;
  opts.machines = 8;
  const auto etc = eg::generate_range_based(opts, rng);
  eg::Rng rng2 = eg::make_rng(9);
  const auto semi = eg::make_semi_consistent(etc, 1.0, rng2);
  EXPECT_TRUE(rows_sorted_ascending(semi));  // fraction 1.0 == consistent
  eg::Rng rng3 = eg::make_rng(10);
  const auto none = eg::make_semi_consistent(etc, 0.0, rng3);
  EXPECT_EQ(none.values(), etc.values());
  EXPECT_THROW(eg::make_semi_consistent(etc, 1.5, rng3), ValueError);
}

TEST(Cvb, DimensionsAndPositivity) {
  eg::Rng rng = eg::make_rng(11);
  eg::CvbOptions opts;
  opts.tasks = 12;
  opts.machines = 5;
  const auto etc = eg::generate_cvb(opts, rng);
  EXPECT_EQ(etc.task_count(), 12u);
  EXPECT_EQ(etc.machine_count(), 5u);
  EXPECT_TRUE(etc.values().all_positive());
}

TEST(Cvb, MeanRoughlyMatchesTaskMean) {
  eg::Rng rng = eg::make_rng(12);
  eg::CvbOptions opts;
  opts.tasks = 200;
  opts.machines = 10;
  opts.task_mean = 500.0;
  opts.task_cov = 0.3;
  opts.machine_cov = 0.3;
  const auto etc = eg::generate_cvb(opts, rng);
  const double mean = etc.values().total() /
                      static_cast<double>(etc.values().size());
  EXPECT_NEAR(mean, 500.0, 50.0);
}

TEST(Cvb, HigherCovMoreSpread) {
  const auto spread = [](double cov, unsigned seed) {
    eg::Rng rng = eg::make_rng(seed);
    eg::CvbOptions opts;
    opts.tasks = 100;
    opts.machines = 8;
    opts.task_cov = cov;
    opts.machine_cov = cov;
    const auto etc = eg::generate_cvb(opts, rng);
    return etc.values().max() / etc.values().min();
  };
  double low = 0.0, high = 0.0;
  for (unsigned s = 0; s < 5; ++s) {
    low += spread(0.1, 100 + s);
    high += spread(1.0, 200 + s);
  }
  EXPECT_LT(low, high);
}

TEST(Cvb, RejectsBadOptions) {
  eg::Rng rng = eg::make_rng(13);
  eg::CvbOptions opts;
  opts.tasks = 2;
  opts.machines = 2;
  opts.task_cov = 0.0;
  EXPECT_THROW(eg::generate_cvb(opts, rng), ValueError);
  opts.task_cov = 0.5;
  opts.task_mean = -5.0;
  EXPECT_THROW(eg::generate_cvb(opts, rng), ValueError);
}

TEST(Cvb, ConsistencyOptionApplies) {
  eg::Rng rng = eg::make_rng(14);
  eg::CvbOptions opts;
  opts.tasks = 6;
  opts.machines = 6;
  opts.consistency = eg::Consistency::consistent;
  EXPECT_TRUE(rows_sorted_ascending(eg::generate_cvb(opts, rng)));
}

TEST(AnnealTemperature, GeometricSchedule) {
  eg::AnnealOptions opts;
  opts.iterations = 101;
  opts.t0 = 1.0;
  opts.t1 = 0.01;
  EXPECT_DOUBLE_EQ(eg::anneal_temperature(opts, 0), 1.0);
  EXPECT_NEAR(eg::anneal_temperature(opts, 100), 0.01, 1e-12);
  EXPECT_NEAR(eg::anneal_temperature(opts, 50), 0.1, 1e-9);
  eg::AnnealOptions bad;
  bad.t0 = 0.0;
  EXPECT_THROW(eg::anneal_temperature(bad, 0), ValueError);
}

TEST(SimulatedAnnealing, MinimizesQuadratic) {
  eg::Rng rng = eg::make_rng(15);
  const std::function<double(const double&)> energy = [](const double& x) {
    return (x - 3.0) * (x - 3.0);
  };
  const std::function<double(const double&, double, eg::Rng&)> neighbor =
      [](const double& x, double temp, eg::Rng& r) {
        return x + eg::normal(r, 0.0, 0.1 + temp);
      };
  eg::AnnealOptions opts;
  opts.iterations = 5000;
  const auto [best, energy_at_best] =
      eg::simulated_annealing<double>(10.0, energy, neighbor, opts, rng);
  EXPECT_NEAR(best, 3.0, 0.05);
  EXPECT_LT(energy_at_best, 0.01);
}

TEST(SimulatedAnnealing, TargetEnergyStopsEarly) {
  eg::Rng rng = eg::make_rng(16);
  int evals = 0;
  const std::function<double(const double&)> energy = [&](const double& x) {
    ++evals;
    return std::abs(x);
  };
  const std::function<double(const double&, double, eg::Rng&)> neighbor =
      [](const double& x, double, eg::Rng& r) {
        return x * eg::uniform(r, 0.0, 0.9);
      };
  eg::AnnealOptions opts;
  opts.iterations = 100000;
  opts.target_energy = 1e-3;
  eg::simulated_annealing<double>(1.0, energy, neighbor, opts, rng);
  EXPECT_LT(evals, 10000);  // stopped long before the budget
}

}  // namespace
