#include "core/batch.hpp"

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "core/etc_matrix.hpp"
#include "core/measures.hpp"
#include "parallel/thread_pool.hpp"

namespace {

using hetero::core::batch_characterize;
using hetero::core::batch_measures;
using hetero::core::BatchOptions;
using hetero::core::characterize;
using hetero::core::EcsMatrix;
using hetero::core::measure_set;
using hetero::linalg::Matrix;
using hetero::par::ThreadPool;

Matrix random_positive(std::size_t rows, std::size_t cols, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(0.5, 20.0);
  Matrix m(rows, cols);
  for (double& x : m.data()) x = dist(rng);
  return m;
}

TEST(BatchMeasures, MatchesSerialEvaluation) {
  ThreadPool pool(3);
  std::vector<EcsMatrix> suite;
  for (unsigned k = 0; k < 9; ++k)
    suite.emplace_back(random_positive(7 + k % 3, 4 + k % 2, 100 + k));
  const auto batch = batch_measures(suite, pool);
  ASSERT_EQ(batch.size(), suite.size());
  for (std::size_t i = 0; i < suite.size(); ++i) {
    const auto serial = measure_set(suite[i]);
    EXPECT_DOUBLE_EQ(batch[i].mph, serial.mph) << "matrix " << i;
    EXPECT_DOUBLE_EQ(batch[i].tdh, serial.tdh) << "matrix " << i;
    EXPECT_DOUBLE_EQ(batch[i].tma, serial.tma) << "matrix " << i;
  }
}

TEST(BatchMeasures, RawMatrixOverloadMatchesEcsOverload) {
  ThreadPool pool(2);
  std::vector<Matrix> raw;
  std::vector<EcsMatrix> wrapped;
  for (unsigned k = 0; k < 5; ++k) {
    raw.push_back(random_positive(6, 5, 40 + k));
    wrapped.emplace_back(raw.back());
  }
  const auto from_raw = batch_measures(std::span<const Matrix>(raw), pool);
  const auto from_ecs =
      batch_measures(std::span<const EcsMatrix>(wrapped), pool);
  ASSERT_EQ(from_raw.size(), from_ecs.size());
  for (std::size_t i = 0; i < from_raw.size(); ++i) {
    EXPECT_DOUBLE_EQ(from_raw[i].mph, from_ecs[i].mph);
    EXPECT_DOUBLE_EQ(from_raw[i].tdh, from_ecs[i].tdh);
    EXPECT_DOUBLE_EQ(from_raw[i].tma, from_ecs[i].tma);
  }
}

TEST(BatchMeasures, EmptyBatchReturnsEmpty) {
  ThreadPool pool(2);
  const std::vector<Matrix> none;
  EXPECT_TRUE(batch_measures(std::span<const Matrix>(none), pool).empty());
}

TEST(BatchMeasures, GrainLargerThanBatch) {
  ThreadPool pool(2);
  std::vector<Matrix> suite;
  for (unsigned k = 0; k < 3; ++k) suite.push_back(random_positive(5, 4, k));
  BatchOptions opts;
  opts.grain = 100;
  const auto batch = batch_measures(std::span<const Matrix>(suite), pool, opts);
  ASSERT_EQ(batch.size(), suite.size());
  for (std::size_t i = 0; i < suite.size(); ++i) {
    const auto serial = measure_set(EcsMatrix(suite[i]));
    EXPECT_DOUBLE_EQ(batch[i].tma, serial.tma);
  }
}

TEST(BatchMeasures, GrainZeroIsClampedToOne) {
  // Regression: grain == 0 used to reach parallel_for, which rejects it.
  ThreadPool pool(2);
  std::vector<Matrix> suite;
  for (unsigned k = 0; k < 4; ++k) suite.push_back(random_positive(5, 4, k));
  BatchOptions opts;
  opts.grain = 0;
  const auto batch = batch_measures(std::span<const Matrix>(suite), pool, opts);
  ASSERT_EQ(batch.size(), suite.size());
  for (std::size_t i = 0; i < suite.size(); ++i) {
    const auto serial = measure_set(EcsMatrix(suite[i]));
    EXPECT_DOUBLE_EQ(batch[i].mph, serial.mph);
    EXPECT_DOUBLE_EQ(batch[i].tdh, serial.tdh);
    EXPECT_DOUBLE_EQ(batch[i].tma, serial.tma);
  }
  std::vector<EcsMatrix> wrapped(suite.begin(), suite.end());
  const auto from_ecs = batch_measures(wrapped, pool, opts);
  ASSERT_EQ(from_ecs.size(), suite.size());
  const auto reports = batch_characterize(wrapped, pool, opts);
  ASSERT_EQ(reports.size(), suite.size());
}

TEST(BatchMeasures, InvalidInputRethrowsItsError) {
  ThreadPool pool(2);
  std::vector<Matrix> suite;
  suite.push_back(random_positive(4, 3, 9));
  Matrix bad(4, 3, 1.0);
  bad(2, 1) = -5.0;  // negative ECS entry is rejected by EcsMatrix
  suite.push_back(bad);
  suite.push_back(random_positive(4, 3, 10));
  EXPECT_THROW(batch_measures(std::span<const Matrix>(suite), pool),
               hetero::ValueError);
}

TEST(BatchMeasures, BlockedLargePathFlowsThroughOptions) {
  // The large-matrix dispatch rides in BatchOptions::tma; forcing it at
  // toy sizes must give every item the blocked path and agree with the
  // serial blocked evaluation bitwise (the batch pool never reorders any
  // per-item arithmetic).
  ThreadPool pool(3);
  hetero::core::BatchOptions opts;
  opts.tma.large.min_elements = 1;
  std::vector<EcsMatrix> suite;
  for (unsigned k = 0; k < 6; ++k)
    suite.emplace_back(random_positive(20 + k, 9, 300 + k));
  const auto reports = batch_characterize(suite, pool, opts);
  ASSERT_EQ(reports.size(), suite.size());
  for (std::size_t i = 0; i < suite.size(); ++i) {
    EXPECT_TRUE(reports[i].tma_detail.used_blocked_path) << "matrix " << i;
    const auto serial = characterize(suite[i], {}, opts.tma);
    EXPECT_EQ(reports[i].measures.tma, serial.measures.tma) << "matrix " << i;
    EXPECT_EQ(reports[i].tma_detail.singular_values,
              serial.tma_detail.singular_values)
        << "matrix " << i;
  }
}

TEST(BatchCharacterize, MatchesSerialReports) {
  ThreadPool pool(2);
  std::vector<EcsMatrix> suite;
  for (unsigned k = 0; k < 4; ++k)
    suite.emplace_back(random_positive(8, 5, 60 + k));
  const auto reports = batch_characterize(suite, pool);
  ASSERT_EQ(reports.size(), suite.size());
  for (std::size_t i = 0; i < suite.size(); ++i) {
    const auto serial = characterize(suite[i]);
    EXPECT_DOUBLE_EQ(reports[i].measures.mph, serial.measures.mph);
    EXPECT_DOUBLE_EQ(reports[i].measures.tdh, serial.measures.tdh);
    EXPECT_DOUBLE_EQ(reports[i].measures.tma, serial.measures.tma);
  }
}

}  // namespace
