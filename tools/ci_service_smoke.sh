#!/usr/bin/env bash
# End-to-end smoke for the epoll service: boots hetero_served with two
# event-loop workers on an ephemeral port, drives it over real sockets
# with a few hundred concurrent closed-loop clients via the perf_service
# harness (which exits non-zero on any malformed or dropped response),
# then checks that SIGTERM produces a graceful drain and a clean exit
# with the connection gauges in the shutdown metrics dump.
#
# Usage, from the repository root (after cmake --build build):
#   tools/ci_service_smoke.sh
# Env knobs: BUILD_DIR (default build), CLIENTS (300), REQUESTS (20),
# WORKERS (2), PORT (0 = ephemeral).
set -euo pipefail

REPO_ROOT=$(cd "$(dirname "$0")/.." && pwd)
BUILD_DIR=${BUILD_DIR:-$REPO_ROOT/build}
CLIENTS=${CLIENTS:-300}
REQUESTS=${REQUESTS:-20}
WORKERS=${WORKERS:-2}
PORT=${PORT:-0}

# Pre-flight for a fixed port: a conflict must be a readable failure up
# front, not a hang waiting for a listening line that never comes.
if [ "$PORT" -ne 0 ]; then
  if command -v ss >/dev/null 2>&1 && ss -Hltn "sport = :$PORT" | grep -q .; then
    echo "port $PORT is already bound:" >&2
    ss -ltnp "sport = :$PORT" >&2 || true
    exit 1
  fi
fi

served="$BUILD_DIR/examples/hetero_served"
harness="$BUILD_DIR/bench/perf_service"
for bin in "$served" "$harness"; do
  [ -x "$bin" ] || { echo "missing binary: $bin (build first)" >&2; exit 1; }
done

log=$(mktemp)
cleanup() {
  [ -n "${pid:-}" ] && kill "$pid" 2>/dev/null || true
  rm -f "$log"
}
trap cleanup EXIT

"$served" --tcp "$PORT" --workers "$WORKERS" 2> "$log" &
pid=$!

# The server prints "svc: listening on port N (M workers)" once bound.
port=
for _ in $(seq 1 100); do
  port=$(sed -n 's/.*listening on port \([0-9][0-9]*\).*/\1/p' "$log" | head -1)
  [ -n "$port" ] && break
  # A bind/listen failure is terminal even if the process lingers: dump
  # the server's own error instead of spinning out the startup budget.
  if grep -qE 'bind\(\)|listen\(\)|socket\(\)' "$log"; then
    echo "server failed during socket setup:" >&2
    cat "$log" >&2
    exit 1
  fi
  kill -0 "$pid" 2>/dev/null || { echo "server died during startup:" >&2
                                  cat "$log" >&2; exit 1; }
  sleep 0.1
done
[ -n "$port" ] || { echo "server never reported its port; stderr was:" >&2
                    cat "$log" >&2; exit 1; }
echo "== smoke: $CLIENTS closed-loop clients x $REQUESTS requests" \
     "against $WORKERS workers on port $port"

# Closed-loop drive; non-zero exit (malformed/dropped/timeout) fails the
# script via set -e.
"$harness" --connect="127.0.0.1:$port" \
           --clients="$CLIENTS" --requests="$REQUESTS"

# Graceful shutdown: SIGTERM must drain and exit 0 within the grace
# budget, and the metrics dump must report the connection gauges.
kill -TERM "$pid"
deadline=$((SECONDS + 30))
while kill -0 "$pid" 2>/dev/null; do
  [ "$SECONDS" -lt "$deadline" ] || { echo "server did not exit after SIGTERM" >&2
                                      cat "$log" >&2; exit 1; }
  sleep 0.1
done
rc=0
wait "$pid" || rc=$?
if [ "$rc" -ne 0 ]; then
  echo "server exited with status $rc:" >&2
  cat "$log" >&2
  exit 1
fi
pid=

grep -q "^connections: " "$log" || {
  echo "shutdown dump is missing the connection gauges:" >&2
  cat "$log" >&2
  exit 1
}
echo "== smoke: OK"
grep "^connections: " "$log"
