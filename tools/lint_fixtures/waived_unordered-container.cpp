// Fixture: waived unordered use (membership-only, never iterated).
#include <unordered_set>

bool seen(const std::unordered_set<int>& s,  // det-waiver: unordered-container -- fixture: membership test only, never iterated
          int key) {
  return s.count(key) != 0;
}
