// Fixture: std::random_device outside etcgen/rng.hpp must trip.
#include <random>

unsigned fresh_seed() { return std::random_device{}(); }
