// Fixture: a waiver naming a rule that does not exist must be reported
// (typo protection — a misspelled waiver must not silently do nothing).
int x = 0;  // det-waiver: no-such-rule -- this name is a typo
