// Fixture: a wall-clock read inside computation must trip.
#include <chrono>

long stamp() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}
