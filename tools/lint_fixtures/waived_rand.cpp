// Fixture: the same call with an inline waiver must stay quiet.
#include <cstdlib>

int noisy_pick() {
  return std::rand() % 7;  // det-waiver: rand -- fixture: exercising waiver
}
