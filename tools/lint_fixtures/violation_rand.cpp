// Fixture: bare rand() must trip the 'rand' rule.
#include <cstdlib>

int noisy_pick() { return std::rand() % 7; }
