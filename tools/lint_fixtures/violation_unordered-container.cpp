// Fixture: an unordered container in a deterministic dir must trip.
#include <unordered_map>

double sum_values(const std::unordered_map<int, double>& m) {
  double sum = 0.0;
  for (const auto& [k, v] : m) sum += v;  // order-dependent accumulation
  return sum;
}
