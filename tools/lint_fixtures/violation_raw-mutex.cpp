// Fixture: a raw std::mutex outside src/support must trip.
#include <mutex>

std::mutex g_lock;

void critical() { const std::scoped_lock lock(g_lock); }
