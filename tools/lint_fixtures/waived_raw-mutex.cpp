// Fixture: waived raw mutex (e.g. interop with a C API demanding one).
#include <mutex>

std::mutex g_lock;  // det-waiver: raw-mutex -- fixture: exercising waiver

void critical() { g_lock.lock(); g_lock.unlock(); }
