// Fixture: a standalone waiver comment covers the following line.
#include <random>

unsigned fresh_seed() {
  // det-waiver: random-device -- fixture: exercising next-line waiver
  return std::random_device{}();
}
