// Fixture: a waived environment read (startup-time backend override; the
// numeric contract holds because all backends are bit-identical).
#include <cstdlib>

const char* backend_override() {
  return std::getenv("HETERO_SIMD");  // det-waiver: wall-clock -- fixture: startup-only override
}
