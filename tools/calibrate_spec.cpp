// Calibrates the embedded SPEC-like ETC matrices (src/spec/spec_data_values.inc)
// so that the library reproduces the measure values the paper reports:
//
//   CINT (12x5): TDH = 0.90, MPH = 0.82, TMA = 0.07           (Fig. 6)
//   CFP  (17x5): TDH = 0.91, MPH = 0.83, TMA = 0.11           (Fig. 7)
//   Fig. 8(a) {omnetpp, cactusADM} x {m4, m5}:
//               TDH = 0.16, MPH = 0.31, TMA = 0.05
//   Fig. 8(b) {cactusADM, soplex} x {m1, m4}: TMA = 0.60
//
// The state is the concatenated log-runtimes of both matrices; energy is the
// max deviation over all constraints plus a soft plausibility penalty keeping
// runtimes within SPEC-like bounds. Run with the output path as argv[1]
// (defaults to printing to stdout).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>
#include <vector>

#include "etcgen/anneal.hpp"
#include "etcgen/target_measures.hpp"
#include "parallel/thread_pool.hpp"
#include "spec/spec_data.hpp"

namespace {

using hetero::core::MeasureSet;
using hetero::linalg::Matrix;

constexpr std::size_t kCintRows = 12, kCfpRows = 17, kMachines = 5;
constexpr std::size_t kCintCount = kCintRows * kMachines;
constexpr std::size_t kCfpCount = kCfpRows * kMachines;

// Row indices in the embedded matrices.
constexpr std::size_t kOmnetpp = 9;    // CINT
constexpr std::size_t kCactusAdm = 5;  // CFP
constexpr std::size_t kSoplex = 9;     // CFP

struct Targets {
  MeasureSet cint{0.82, 0.90, 0.07};
  MeasureSet cfp{0.83, 0.91, 0.11};
  MeasureSet fig8a{0.31, 0.16, 0.05};
  double fig8b_tma = 0.60;
};

using State = std::vector<double>;  // log-runtimes, CINT then CFP

Matrix etc_block(const State& s, std::size_t offset, std::size_t rows) {
  Matrix m(rows, kMachines);
  for (std::size_t k = 0; k < rows * kMachines; ++k)
    m.data()[k] = std::exp(s[offset + k]);
  return m;
}

Matrix ecs_of(const Matrix& etc) {
  Matrix e = etc;
  e.transform([](double x) { return 1.0 / x; });
  return e;
}

Matrix extract(const Matrix& top, std::size_t r0, std::size_t c0,
               const Matrix& bottom, std::size_t r1, std::size_t c1) {
  return Matrix{{top(r0, c0), top(r0, c1)}, {bottom(r1, c0), bottom(r1, c1)}};
}

double dev(const MeasureSet& a, const MeasureSet& b) {
  return std::max({std::abs(a.mph - b.mph), std::abs(a.tdh - b.tdh),
                   std::abs(a.tma - b.tma)});
}

double energy(const State& s, const Targets& t) {
  const Matrix cint = etc_block(s, 0, kCintRows);
  const Matrix cfp = etc_block(s, kCintCount, kCfpRows);

  double e = dev(hetero::etcgen::measure_set_raw(ecs_of(cint)), t.cint);
  e = std::max(e, dev(hetero::etcgen::measure_set_raw(ecs_of(cfp)), t.cfp));

  const Matrix a = extract(cint, kOmnetpp, 3, cfp, kCactusAdm, 4);
  e = std::max(e, dev(hetero::etcgen::measure_set_raw(ecs_of(a)), t.fig8a));
  const Matrix b = extract(cfp, kCactusAdm, 0, cfp, kSoplex, 3);
  e = std::max(e, std::abs(hetero::etcgen::measure_set_raw(ecs_of(b)).tma -
                           t.fig8b_tma));

  // Soft plausibility: peak runtimes should stay within [60, 6000] seconds.
  double penalty = 0.0;
  for (double lx : s) {
    const double x = std::exp(lx);
    if (x < 60.0) penalty += (60.0 - x) / 60.0;
    if (x > 6000.0) penalty += (x - 6000.0) / 6000.0;
  }
  return e + 0.01 * penalty;
}

void report(const State& s) {
  const Matrix cint = etc_block(s, 0, kCintRows);
  const Matrix cfp = etc_block(s, kCintCount, kCfpRows);
  const auto mc = hetero::etcgen::measure_set_raw(ecs_of(cint));
  const auto mf = hetero::etcgen::measure_set_raw(ecs_of(cfp));
  const auto ma = hetero::etcgen::measure_set_raw(
      ecs_of(extract(cint, kOmnetpp, 3, cfp, kCactusAdm, 4)));
  const auto mb = hetero::etcgen::measure_set_raw(
      ecs_of(extract(cfp, kCactusAdm, 0, cfp, kSoplex, 3)));
  std::printf("CINT:  MPH=%.4f TDH=%.4f TMA=%.4f (targets .82 .90 .07)\n",
              mc.mph, mc.tdh, mc.tma);
  std::printf("CFP:   MPH=%.4f TDH=%.4f TMA=%.4f (targets .83 .91 .11)\n",
              mf.mph, mf.tdh, mf.tma);
  std::printf("fig8a: MPH=%.4f TDH=%.4f TMA=%.4f (targets .31 .16 .05)\n",
              ma.mph, ma.tdh, ma.tma);
  std::printf("fig8b: MPH=%.4f TDH=%.4f TMA=%.4f (target TMA .60)\n", mb.mph,
              mb.tdh, mb.tma);
}

void emit(std::ostream& os, const State& s) {
  const char* cint_names[] = {"perlbench", "bzip2", "gcc",        "mcf",
                              "gobmk",     "hmmer", "sjeng",      "libquantum",
                              "h264ref",   "omnetpp", "astar",    "xalancbmk"};
  const char* cfp_names[] = {"bwaves",   "gamess", "milc",      "zeusmp",
                             "gromacs",  "cactusADM", "leslie3d", "namd",
                             "dealII",   "soplex", "povray",    "calculix",
                             "GemsFDTD", "tonto",  "lbm",       "wrf",
                             "sphinx3"};
  os << "// Calibrated SPEC-like peak runtimes in seconds (row-major, task x "
        "machine).\n// REGENERATED by tools/calibrate_spec — do not hand-edit "
        "beyond reseeding.\n// clang-format off\n";
  const auto block = [&](const char* name, std::size_t offset,
                         std::size_t rows, const char* const* names) {
    os << "inline constexpr double " << name << "[" << rows << " * 5] = {\n";
    os << "    // m1        m2        m3        m4        m5\n";
    for (std::size_t i = 0; i < rows; ++i) {
      os << "    ";
      for (std::size_t j = 0; j < kMachines; ++j) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%9.3f,", std::exp(s[offset + i * kMachines + j]));
        os << buf << (j + 1 < kMachines ? " " : "");
      }
      os << "  // " << names[i] << "\n";
    }
    os << "};\n";
  };
  block("kCintValues", 0, kCintRows, cint_names);
  os << "\n";
  block("kCfpValues", kCintCount, kCfpRows, cfp_names);
  os << "// clang-format on\n";
}

}  // namespace

int main(int argc, char** argv) {
  const Targets targets;

  // Seed from the currently-embedded provisional data.
  State seed(kCintCount + kCfpCount);
  {
    const auto& cint = hetero::spec::spec_cint2006rate().values();
    const auto& cfp = hetero::spec::spec_cfp2006rate().values();
    for (std::size_t k = 0; k < kCintCount; ++k)
      seed[k] = std::log(cint.data()[k]);
    for (std::size_t k = 0; k < kCfpCount; ++k)
      seed[kCintCount + k] = std::log(cfp.data()[k]);
  }

  const std::function<double(const State&)> energy_fn = [&](const State& s) {
    return energy(s, targets);
  };
  const std::function<State(const State&, double, hetero::etcgen::Rng&)>
      neighbor = [](const State& s, double temp, hetero::etcgen::Rng& rng) {
        State out = s;
        const double sigma = 0.02 + 0.6 * std::min(temp * 10.0, 1.0);
        const std::size_t k = hetero::etcgen::uniform_index(rng, out.size());
        out[k] += hetero::etcgen::normal(rng, 0.0, sigma);
        return out;
      };

  hetero::etcgen::AnnealOptions opts;
  opts.iterations = argc > 2 ? static_cast<std::size_t>(std::stoul(argv[2]))
                             : 400000;
  opts.t0 = 0.02;
  opts.t1 = 1e-8;
  opts.target_energy = 2e-3;

  hetero::par::ThreadPool pool;
  const std::size_t restarts = std::min<std::size_t>(pool.thread_count(), 8);
  std::vector<std::pair<State, double>> results(restarts);
  hetero::par::parallel_for(pool, 0, restarts, [&](std::size_t r) {
    hetero::etcgen::Rng rng = hetero::etcgen::make_rng(42 + 1000 * r);
    State jittered = seed;
    for (double& x : jittered)
      x += hetero::etcgen::normal(rng, 0.0, 0.10);
    results[r] = hetero::etcgen::simulated_annealing<State>(
        jittered, energy_fn, neighbor, opts, rng);
  });

  const auto best = std::min_element(
      results.begin(), results.end(),
      [](const auto& a, const auto& b) { return a.second < b.second; });
  std::printf("best energy %.6f\n", best->second);
  report(best->first);

  if (argc > 1) {
    std::ofstream out(argv[1]);
    emit(out, best->first);
    std::printf("wrote %s\n", argv[1]);
  } else {
    emit(std::cout, best->first);
  }
  return 0;
}
