#!/usr/bin/env python3
"""clang-tidy over src/ with a content-addressed result cache.

A full clang-tidy pass costs minutes; almost all of it is re-analyzing
translation units that have not changed. This wrapper keys each TU on a
hash of everything that can change its verdict — the compile command, the
TU contents, every header it includes (from the compiler's -MM output),
the .clang-tidy profile, and the clang-tidy version — and skips TUs whose
key already has a clean marker in the cache directory. CI persists the
cache across runs (actions/cache), so a typical PR re-analyzes only the
files it touched.

Only CLEAN results are cached: a TU with findings is re-run every time
until it comes back clean, so a stale cache can hide nothing.

Usage:
  run_clang_tidy_cached.py --build-dir build [--cache-dir .tidy-cache]
                           [--clang-tidy clang-tidy] [--jobs N]
                           [--source-filter ^src/]

Exit codes: 0 clean, 1 findings, 2 setup error.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import hashlib
import json
import os
import pathlib
import re
import shlex
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def fail(message):
    print(f"run_clang_tidy_cached: {message}", file=sys.stderr)
    sys.exit(2)


def load_compile_commands(build_dir):
    path = build_dir / "compile_commands.json"
    if not path.is_file():
        fail(f"{path} not found (configure with "
             "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON)")
    return json.loads(path.read_text(encoding="utf-8"))


def command_argv(entry):
    if "arguments" in entry:
        return list(entry["arguments"])
    return shlex.split(entry["command"])


def header_deps(entry):
    """The TU's include closure via the compiler's -MM preprocessor pass.

    Falls back to just the TU itself if the compiler invocation fails (the
    key is then coarser, never wrong: a header edit would miss the cache
    only through the .clang-tidy/compile-command components, so we warn).
    """
    argv = command_argv(entry)
    out = []
    skip_next = False
    for arg in argv[1:]:
        if skip_next:
            skip_next = False
            continue
        if arg in ("-c", "-o"):
            skip_next = arg == "-o"
            continue
        out.append(arg)
    cmd = [argv[0], "-MM"] + out
    try:
        proc = subprocess.run(
            cmd, cwd=entry["directory"], capture_output=True, text=True,
            timeout=120, check=False)
    except (OSError, subprocess.TimeoutExpired):
        return None
    if proc.returncode != 0:
        return None
    deps = proc.stdout.replace("\\\n", " ")
    # "target.o: dep dep dep" -> the deps.
    deps = deps.split(":", 1)[1] if ":" in deps else deps
    return [d for d in deps.split() if d]


def content_key(entry, extra_parts):
    h = hashlib.sha256()
    for part in extra_parts:
        h.update(part)
        h.update(b"\x00")
    h.update(" ".join(command_argv(entry)).encode())
    h.update(b"\x00")
    directory = pathlib.Path(entry["directory"])
    deps = header_deps(entry)
    if deps is None:
        print(f"warning: -MM failed for {entry['file']}; "
              "caching on TU content only", file=sys.stderr)
        deps = [entry["file"]]
    for dep in sorted(set(deps)):
        dep_path = pathlib.Path(dep)
        if not dep_path.is_absolute():
            dep_path = directory / dep_path
        try:
            h.update(dep_path.read_bytes())
        except OSError:
            h.update(dep.encode())  # vanished dep: still a stable key
        h.update(b"\x00")
    return h.hexdigest()


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", type=pathlib.Path, required=True)
    parser.add_argument("--cache-dir", type=pathlib.Path,
                        default=REPO_ROOT / ".tidy-cache")
    parser.add_argument("--clang-tidy", default="clang-tidy")
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 2)
    parser.add_argument("--source-filter", default=r"/src/.*\.cpp$",
                        help="regex on the absolute TU path")
    args = parser.parse_args(argv)

    build_dir = args.build_dir.resolve()
    entries = [e for e in load_compile_commands(build_dir)
               if re.search(args.source_filter, e["file"])]
    if not entries:
        fail(f"no TUs match --source-filter {args.source_filter!r}")

    try:
        version = subprocess.run(
            [args.clang_tidy, "--version"], capture_output=True, text=True,
            check=True).stdout
    except (OSError, subprocess.CalledProcessError) as e:
        fail(f"cannot run {args.clang_tidy}: {e}")

    profile = (REPO_ROOT / ".clang-tidy").read_bytes()
    args.cache_dir.mkdir(parents=True, exist_ok=True)

    keyed = []
    for entry in entries:
        key = content_key(entry, [version.encode(), profile])
        keyed.append((entry, key))

    todo = [(e, k) for e, k in keyed
            if not (args.cache_dir / k).is_file()]
    hits = len(keyed) - len(todo)
    print(f"clang-tidy: {len(keyed)} TUs, {hits} cached clean, "
          f"{len(todo)} to analyze")

    failures = []

    def run_one(entry, key):
        proc = subprocess.run(
            [args.clang_tidy, "-p", str(build_dir), "--quiet",
             entry["file"]],
            capture_output=True, text=True, check=False)
        return entry, key, proc

    with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        for entry, key, proc in pool.map(lambda t: run_one(*t), todo):
            rel = os.path.relpath(entry["file"], REPO_ROOT)
            if proc.returncode == 0 and "warning:" not in proc.stdout \
                    and "error:" not in proc.stdout:
                (args.cache_dir / key).touch()
                print(f"  clean: {rel}")
            else:
                failures.append((rel, proc.stdout.strip(),
                                 proc.stderr.strip()))

    for rel, out, err in failures:
        print(f"\n=== findings in {rel} ===")
        if out:
            print(out)
        if err:
            print(err, file=sys.stderr)
    if failures:
        print(f"\nclang-tidy: {len(failures)} TU(s) with findings")
        return 1
    print("clang-tidy: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
