#!/usr/bin/env bash
# Scenario-suite smoke for the discrete-event simulator: replays every
# shipped scenarios/*.sim through examples/hetero_sim with two schedulers
# (immediate-mode greedy_mct and the BatchEngine-backed batch_min_min),
# runs the whole sweep twice, and asserts
#   (a) the machine-parsable RESULT lines — trace hash included — are
#       bit-identical between the two passes, and
#   (b) every run reports non-zero energy (a zero means the P/C/S-state
#       accounting fell over silently).
#
# Usage, from the repository root (after cmake --build build):
#   tools/ci_sim_smoke.sh
# Env knobs: BUILD_DIR (default build), SCHEDULERS (comma list, default
# greedy_mct,batch_min_min).
set -euo pipefail

REPO_ROOT=$(cd "$(dirname "$0")/.." && pwd)
BUILD_DIR=${BUILD_DIR:-$REPO_ROOT/build}
SCHEDULERS=${SCHEDULERS:-greedy_mct,batch_min_min}

sim="$BUILD_DIR/examples/hetero_sim"
[ -x "$sim" ] || { echo "missing binary: $sim (build first)" >&2; exit 1; }

scenarios=("$REPO_ROOT"/scenarios/*.sim)
[ -e "${scenarios[0]}" ] || {
  echo "no scenario files under $REPO_ROOT/scenarios" >&2
  exit 1
}

run_pass() {
  "$sim" --schedulers="$SCHEDULERS" --power-gate "${scenarios[@]}" \
    | grep '^RESULT '
}

echo "== sim smoke: ${#scenarios[@]} scenarios x {$SCHEDULERS}, two passes"
pass1=$(run_pass)
pass2=$(run_pass)

if [ "$pass1" != "$pass2" ]; then
  echo "RESULT lines differ between passes (determinism violation):" >&2
  diff <(printf '%s\n' "$pass1") <(printf '%s\n' "$pass2") >&2 || true
  exit 1
fi

bad=$(printf '%s\n' "$pass1" | grep -E 'energy_j=0(\.0*)?( |$)' || true)
if [ -n "$bad" ]; then
  echo "zero-energy RESULT rows:" >&2
  printf '%s\n' "$bad" >&2
  exit 1
fi

count=$(printf '%s\n' "$pass1" | wc -l)
expected=$((${#scenarios[@]} * $(echo "$SCHEDULERS" | tr ',' '\n' | wc -l)))
if [ "$count" -ne "$expected" ]; then
  echo "expected $expected RESULT rows, got $count:" >&2
  printf '%s\n' "$pass1" >&2
  exit 1
fi

echo "== sim smoke: OK ($count deterministic runs, all energy > 0)"
printf '%s\n' "$pass1"
