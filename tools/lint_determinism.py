#!/usr/bin/env python3
"""Determinism lint for the heterolib tree.

The characterization library promises bit-identical results across runs,
thread counts, and SIMD backends. That contract is easy to break with one
innocuous line — an unseeded rand(), an unordered-container iteration
feeding a sum, a wall-clock read inside a kernel. This lint scans the
deterministic directories (src/core, src/linalg, src/simd, src/sched,
src/etcgen, src/sim) for the known footguns, plus one tree-wide rule: raw standard
mutexes outside src/support (everything else must use support::Mutex so it
participates in lock-rank checking and thread-safety analysis).

A finding can be waived in place when it is deliberate:

    std::getenv("HETERO_SIMD")  // det-waiver: wall-clock -- justification

The waiver names the rule it silences and must carry a justification after
`--`; it applies to its own line, or to the next line when it stands alone.

Exit codes: 0 clean, 1 findings, 2 internal/usage error.

Self-test: `lint_determinism.py --self-test` runs every rule against the
fixtures in tools/lint_fixtures/ (violation_<rule>.cpp must trip exactly
that rule; waived_<rule>.cpp must be clean).
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

# Directories whose numeric output must be a pure function of their inputs.
DETERMINISTIC_DIRS = (
    "src/core",
    "src/linalg",
    "src/simd",
    "src/sched",
    "src/etcgen",
    "src/sim",
)

SOURCE_SUFFIXES = {".cpp", ".hpp", ".h", ".cc", ".cxx"}

WAIVER_RE = re.compile(
    r"//\s*det-waiver:\s*(?P<rule>[a-z0-9-]+)\s*--\s*(?P<why>\S.*)$"
)


class Rule:
    """One banned pattern: where it applies and what to say about it."""

    def __init__(self, name, pattern, message, dirs, exempt_files=()):
        self.name = name
        self.pattern = re.compile(pattern)
        self.message = message
        self.dirs = dirs  # relative prefixes the rule applies to
        self.exempt_files = frozenset(exempt_files)

    def applies_to(self, rel_path: str) -> bool:
        if rel_path in self.exempt_files:
            return False
        return any(rel_path.startswith(d + "/") for d in self.dirs)


RULES = [
    Rule(
        "rand",
        r"\b(?:std::)?s?rand\s*\(",
        "rand()/srand() is hidden global state; use etcgen::Rng with an "
        "explicit seed",
        DETERMINISTIC_DIRS,
    ),
    Rule(
        "random-device",
        r"\bstd::random_device\b",
        "std::random_device is nondeterministic by construction; thread a "
        "seed through etcgen/rng.hpp instead",
        DETERMINISTIC_DIRS,
        exempt_files=("src/etcgen/rng.hpp",),
    ),
    Rule(
        "unordered-container",
        r"\bstd::unordered_(?:multi)?(?:map|set)\b",
        "unordered-container iteration order varies with libstdc++ version "
        "and hash seeding; use a sorted container or waive with proof that "
        "iteration order never feeds a numeric result",
        DETERMINISTIC_DIRS,
    ),
    Rule(
        "wall-clock",
        r"\b(?:std::chrono::)?(?:system_clock|high_resolution_clock|"
        r"steady_clock)\b|\bstd::time\s*\(|\bclock\s*\(\s*\)|"
        r"\bgettimeofday\s*\(|\bclock_gettime\s*\(|\bstd::getenv\s*\(",
        "clocks and environment reads make results depend on when/where the "
        "code runs; compute from explicit inputs only",
        DETERMINISTIC_DIRS,
    ),
    Rule(
        "raw-mutex",
        r"\bstd::(?:mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|"
        r"shared_mutex|shared_timed_mutex|condition_variable(?:_any)?)\b",
        "raw standard mutexes bypass lock-rank checking and thread-safety "
        "annotations; use support::Mutex / support::CondVar",
        ("src",),
        exempt_files=(),
    ),
]

# src/support implements the wrappers, so it is the one place allowed to
# name the standard primitives.
RAW_MUTEX_EXEMPT_PREFIX = "src/support/"


def strip_comments_and_strings(lines):
    """Per-line code text with comments and string/char literals blanked.

    Keeps line count and column positions stable (everything removed is
    replaced by spaces) so findings can report real locations. A lightweight
    scanner, not a lexer: raw strings are treated like plain strings, which
    is fine for pattern matching (their contents are blanked either way).
    """
    out = []
    in_block = False
    for line in lines:
        buf = []
        i = 0
        in_string = None  # the quote char when inside a literal
        while i < len(line):
            c = line[i]
            nxt = line[i + 1] if i + 1 < len(line) else ""
            if in_block:
                if c == "*" and nxt == "/":
                    in_block = False
                    buf.append("  ")
                    i += 2
                    continue
                buf.append(" ")
                i += 1
                continue
            if in_string:
                if c == "\\":
                    buf.append("  ")
                    i += 2
                    continue
                if c == in_string:
                    in_string = None
                buf.append(" ")
                i += 1
                continue
            if c == "/" and nxt == "/":
                buf.append(" " * (len(line) - i))
                break
            if c == "/" and nxt == "*":
                in_block = True
                buf.append("  ")
                i += 2
                continue
            if c in "\"'":
                in_string = c
                buf.append(" ")
                i += 1
                continue
            buf.append(c)
            i += 1
        out.append("".join(buf))
    return out


def collect_waivers(lines):
    """Maps 1-based line number -> set of waived rule names."""
    waivers = {}
    for idx, line in enumerate(lines, start=1):
        m = WAIVER_RE.search(line)
        if not m:
            continue
        target = idx
        # A standalone waiver comment covers the next code line (skipping
        # the rest of its own comment block, so justifications may wrap).
        if line.lstrip().startswith("//"):
            target = idx + 1
            while (target <= len(lines)
                   and lines[target - 1].lstrip().startswith("//")):
                target += 1
        waivers.setdefault(target, set()).add(m.group("rule"))
    return waivers


def scan_file(path, rel_path, rules):
    """Returns (findings, waiver_errors) for one file.

    findings: list of (rel_path, line_number, rule, code_line).
    waiver_errors: waivers naming unknown rules (typo protection).
    """
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as e:
        raise SystemExit(f"lint_determinism: cannot read {path}: {e}")
    lines = text.splitlines()
    code = strip_comments_and_strings(lines)
    waivers = collect_waivers(lines)

    known = {r.name for r in RULES}
    waiver_errors = []
    for lineno, names in waivers.items():
        for name in names - known:
            waiver_errors.append(
                (rel_path, min(lineno, len(lines)),
                 f"waiver names unknown rule '{name}'")
            )

    findings = []
    for rule in rules:
        for idx, stripped in enumerate(code, start=1):
            if not rule.pattern.search(stripped):
                continue
            if rule.name in waivers.get(idx, set()):
                continue
            findings.append((rel_path, idx, rule, lines[idx - 1].strip()))
    return findings, waiver_errors


def iter_source_files(root):
    for rel_dir in ("src",):
        base = root / rel_dir
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in SOURCE_SUFFIXES and path.is_file():
                yield path


def rules_for(rel_path):
    selected = []
    for rule in RULES:
        if rule.name == "raw-mutex":
            if rel_path.startswith(RAW_MUTEX_EXEMPT_PREFIX):
                continue
            if rel_path.startswith("src/"):
                selected.append(rule)
            continue
        if rule.applies_to(rel_path):
            selected.append(rule)
    return selected


def run_lint(root):
    findings = []
    errors = []
    for path in iter_source_files(root):
        rel_path = path.relative_to(root).as_posix()
        selected = rules_for(rel_path)
        got, waiver_errors = scan_file(path, rel_path, selected)
        findings.extend(got)
        errors.extend(waiver_errors)

    for rel_path, lineno, rule, code_line in findings:
        print(f"{rel_path}:{lineno}: [{rule.name}] {rule.message}")
        print(f"    {code_line}")
    for rel_path, lineno, message in errors:
        print(f"{rel_path}:{lineno}: [waiver] {message}")
    total = len(findings) + len(errors)
    if total:
        print(f"lint_determinism: {total} finding(s)")
        return 1
    print("lint_determinism: clean")
    return 0


def run_self_test(root):
    """Every rule must trip on its violation fixture and stay quiet on the
    waived twin; a missing fixture is itself a failure."""
    fixture_dir = root / "tools" / "lint_fixtures"
    failures = []
    for rule in RULES:
        for kind, expect_hit in (("violation", True), ("waived", False)):
            name = f"{kind}_{rule.name}.cpp"
            path = fixture_dir / name
            if not path.is_file():
                failures.append(f"missing fixture {name}")
                continue
            findings, waiver_errors = scan_file(path, name, [rule])
            if waiver_errors:
                failures.append(f"{name}: {waiver_errors}")
            hit = bool(findings)
            if hit != expect_hit:
                state = "tripped" if hit else "stayed quiet"
                failures.append(
                    f"{name}: rule '{rule.name}' {state}, expected the "
                    f"opposite"
                )
    # The waiver parser itself: an unknown rule name must be reported.
    bogus = fixture_dir / "bad_waiver.cpp"
    if bogus.is_file():
        _, waiver_errors = scan_file(bogus, "bad_waiver.cpp", [])
        if not waiver_errors:
            failures.append("bad_waiver.cpp: unknown-rule waiver not caught")
    else:
        failures.append("missing fixture bad_waiver.cpp")

    if failures:
        for f in failures:
            print(f"self-test FAIL: {f}")
        return 1
    print(f"self-test: {len(RULES) * 2 + 1} fixture checks passed")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repo-root", type=pathlib.Path, default=REPO_ROOT)
    parser.add_argument(
        "--self-test", action="store_true",
        help="check the rules against tools/lint_fixtures/ and exit",
    )
    args = parser.parse_args(argv)
    root = args.repo_root.resolve()
    if args.self_test:
        return run_self_test(root)
    return run_lint(root)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
