#!/usr/bin/env python3
"""Inject host metadata into benchmark result JSON files.

run_benchmarks.sh pipes every BENCH_*.json it writes through this script so
numbers recorded on different machines carry enough context to be compared:
core count, CPU model, compiler, OS, and the HETERO_SIMD backend override
in effect for the run.

Usage:
    tools/bench_meta.py FILE [FILE ...]

Each FILE is rewritten in place with a top-level "host" object added (or
replaced). google-benchmark output files (a JSON object) gain the key
directly; single-line harness reports (the perf_service --clients /
--stream mode) are wrapped as {"host": ..., "report": ...}.
"""

import json
import os
import platform
import subprocess
import sys


def cpu_model():
    try:
        with open("/proc/cpuinfo", encoding="utf-8") as f:
            for line in f:
                if line.startswith("model name"):
                    return line.split(":", 1)[1].strip()
    except OSError:
        pass
    return platform.processor() or "unknown"


def compiler_version():
    for cc in (os.environ.get("CXX"), "c++", "g++", "clang++"):
        if not cc:
            continue
        try:
            out = subprocess.run(
                [cc, "--version"], capture_output=True, text=True, check=True
            )
            return out.stdout.splitlines()[0].strip()
        except (OSError, subprocess.CalledProcessError, IndexError):
            continue
    return "unknown"


def host_metadata():
    return {
        "cores": os.cpu_count() or 0,
        "cpu": cpu_model(),
        "compiler": compiler_version(),
        "os": f"{platform.system()} {platform.release()}",
        "machine": platform.machine(),
        "hetero_simd": os.environ.get("HETERO_SIMD", "auto"),
    }


def inject(path, host):
    with open(path, encoding="utf-8") as f:
        text = f.read()
    try:
        doc = json.loads(text)
    except json.JSONDecodeError:
        print(f"bench_meta: {path}: not valid JSON, skipped", file=sys.stderr)
        return False
    if isinstance(doc, dict) and "benchmarks" in doc:
        doc["host"] = host
    elif isinstance(doc, dict) and set(doc) == {"host", "report"}:
        doc["host"] = host  # re-run over an already-wrapped harness report
    else:
        doc = {"host": host, "report": doc}
    with open(path, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=1)
        f.write("\n")
    return True


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    host = host_metadata()
    ok = True
    for path in argv[1:]:
        ok = inject(path, host) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
