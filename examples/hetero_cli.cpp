// Command-line analyzer: characterize any ETC matrix stored as CSV.
//
//   hetero_cli analyze <file.csv>         full characterization report
//   hetero_cli measures <file.csv>        one-line MPH/TDH/TMA
//   hetero_cli json <file.csv>            machine-readable report (JSON)
//   hetero_cli whatif <file.csv>          per-machine removal deltas
//   hetero_cli report <file.csv>          full markdown report
//   hetero_cli atlas <file.csv>           extreme 2x2 sub-environments
//   hetero_cli cluster <file.csv> <k>     machine classes by column angle
//   hetero_cli confidence <file.csv>      bootstrap intervals (10% noise)
//   hetero_cli generate <mph> <tdh> <tma> <tasks> <machines>
//                                         emit a CSV hitting the targets
//   hetero_cli demo                       run on the embedded SPEC CINT data
//
// Any command may add --stats: after the run, the metrics-registry
// snapshot (the same svc::Metrics the server keeps) is printed to stderr,
// so one-shot CLI runs and hetero_served report through one
// instrumentation path.
//
// CSV format: optional header "task,m1,m2,...", one row per task type with
// an optional leading name; "inf" marks machines that cannot run a task.
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "core/clustering.hpp"
#include "core/confidence.hpp"
#include "core/extracts.hpp"
#include "core/measures.hpp"
#include "core/region.hpp"
#include "core/report.hpp"
#include "core/standard_form.hpp"
#include "core/whatif.hpp"
#include "etcgen/target_measures.hpp"
#include "io/csv.hpp"
#include "io/json.hpp"
#include "io/table.hpp"
#include "spec/spec_data.hpp"
#include "svc/metrics.hpp"

namespace {

using hetero::io::format_fixed;

int usage() {
  std::cerr
      << "usage: hetero_cli {analyze|measures|json|whatif|atlas|confidence} "
         "<file.csv>\n"
         "       hetero_cli cluster <file.csv> <k>\n"
         "       hetero_cli generate <mph> <tdh> <tma> <tasks> <machines>\n"
         "       hetero_cli demo\n";
  return 2;
}

void atlas(const hetero::core::EtcMatrix& etc) {
  const auto ecs = etc.to_ecs();
  const auto result = hetero::core::extract_atlas(ecs);
  const auto name = [&](const hetero::core::Extract& e) {
    std::string s = "{";
    for (std::size_t i = 0; i < e.tasks.size(); ++i)
      s += (i ? "," : "") + ecs.task_names()[e.tasks[i]];
    s += "}x{";
    for (std::size_t j = 0; j < e.machines.size(); ++j)
      s += (j ? "," : "") + ecs.machine_names()[e.machines[j]];
    return s + "}";
  };
  hetero::io::Table t({"extreme", "value", "extract"});
  t.add_row({"min MPH", format_fixed(result.min_mph.measures.mph, 3),
             name(result.min_mph)});
  t.add_row({"max MPH", format_fixed(result.max_mph.measures.mph, 3),
             name(result.max_mph)});
  t.add_row({"min TDH", format_fixed(result.min_tdh.measures.tdh, 3),
             name(result.min_tdh)});
  t.add_row({"max TDH", format_fixed(result.max_tdh.measures.tdh, 3),
             name(result.max_tdh)});
  t.add_row({"min TMA", format_fixed(result.min_tma.measures.tma, 3),
             name(result.min_tma)});
  t.add_row({"max TMA", format_fixed(result.max_tma.measures.tma, 3),
             name(result.max_tma)});
  t.print(std::cout);
  std::cout << "(" << result.scored << " extracts scored, "
            << (result.exhaustive ? "exhaustive" : "sampled") << ")\n";
}

void cluster(const hetero::core::EtcMatrix& etc, std::size_t k) {
  const auto ecs = etc.to_ecs();
  const auto c = hetero::core::cluster_machines(ecs, k);
  for (std::size_t id = 0; id < c.cluster_count; ++id) {
    std::cout << "class " << id << ":";
    for (std::size_t j = 0; j < ecs.machine_count(); ++j)
      if (c.cluster[j] == id) std::cout << ' ' << ecs.machine_names()[j];
    std::cout << '\n';
  }
  std::cout << "within-class cosine " << format_fixed(c.within_cosine, 3)
            << ", between-class " << format_fixed(c.between_cosine, 3)
            << '\n';
}

void confidence(const hetero::core::EtcMatrix& etc) {
  const auto c = hetero::core::measure_confidence(etc);
  hetero::io::Table t({"measure", "point", "mean", "95% interval"});
  const auto row = [&](const char* label,
                       const hetero::core::MeasureInterval& i) {
    t.add_row({label, format_fixed(i.point, 3), format_fixed(i.mean, 3),
               "[" + format_fixed(i.lower, 3) + ", " +
                   format_fixed(i.upper, 3) + "]"});
  };
  row("MPH", c.mph);
  row("TDH", c.tdh);
  row("TMA", c.tma);
  t.print(std::cout);
}

int generate(const std::vector<std::string>& args) {
  if (args.size() < 7) return usage();
  hetero::etcgen::TargetMeasures target;
  target.mph = std::stod(args[2]);
  target.tdh = std::stod(args[3]);
  target.tma = std::stod(args[4]);
  hetero::etcgen::TargetGenOptions opts;
  opts.tasks = std::stoul(args[5]);
  opts.machines = std::stoul(args[6]);
  opts.scale = 0.01;  // ECS scale -> runtimes in the hundreds
  const auto result = hetero::etcgen::generate_with_measures(target, opts);
  hetero::io::write_etc_csv(std::cout, result.ecs.to_etc());
  std::cerr << "achieved MPH=" << format_fixed(result.achieved.mph, 3)
            << " TDH=" << format_fixed(result.achieved.tdh, 3)
            << " TMA=" << format_fixed(result.achieved.tma, 3)
            << " (max error " << format_fixed(result.error, 4) << ")\n";
  return 0;
}

void print_measures_line(const hetero::core::EcsMatrix& ecs) {
  const auto m = hetero::core::measure_set(ecs);
  std::cout << "MPH=" << format_fixed(m.mph, 4)
            << " TDH=" << format_fixed(m.tdh, 4)
            << " TMA=" << format_fixed(m.tma, 4) << '\n';
}

void analyze(const hetero::core::EtcMatrix& etc) {
  std::cout << "ETC matrix: " << etc.task_count() << " task types x "
            << etc.machine_count() << " machines\n\n";
  hetero::io::print_etc(std::cout, etc, 1);

  const auto ecs = etc.to_ecs();
  const auto report = hetero::core::characterize(ecs);
  std::cout << "\nmeasures:\n  MPH = " << format_fixed(report.measures.mph, 4)
            << "   (alternatives: R=" << format_fixed(report.mph_alt_ratio, 4)
            << " G=" << format_fixed(report.mph_alt_geometric, 4)
            << " COV=" << format_fixed(report.mph_alt_cov, 4) << ")\n  TDH = "
            << format_fixed(report.measures.tdh, 4)
            << "\n  TMA = " << format_fixed(report.measures.tma, 4)
            << (report.tma_detail.used_standard_form
                    ? "   (standard form, eq. 8)"
                    : "   (column-normalized fallback, eq. 5 — no standard "
                      "form exists)")
            << '\n';

  const auto& sf = report.tma_detail.standard_form;
  if (report.tma_detail.used_standard_form) {
    std::cout << "  standard form: " << sf.iterations
              << " Sinkhorn iterations, residual "
              << hetero::io::format_general(sf.residual) << '\n';
  }

  hetero::io::Table mp({"machine", "MP"});
  for (std::size_t j = 0; j < ecs.machine_count(); ++j)
    mp.add_row({ecs.machine_names()[j],
                format_fixed(report.machine_performances[j], 5)});
  std::cout << "\nmachine performances:\n";
  mp.print(std::cout);

  hetero::io::Table td({"task", "TD"});
  for (std::size_t i = 0; i < ecs.task_count(); ++i)
    td.add_row(
        {ecs.task_names()[i], format_fixed(report.task_difficulties[i], 5)});
  std::cout << "\ntask difficulties:\n";
  td.print(std::cout);

  const auto region = hetero::core::classify_region(report.measures);
  const auto rec = hetero::core::recommend_heuristic(region);
  std::cout << "\nregion: " << hetero::core::region_name(region)
            << "\nrecommended mapping heuristic: " << rec.heuristic << "\n  ("
            << rec.rationale << ")\n";
}

void whatif(const hetero::core::EtcMatrix& etc) {
  const auto ecs = etc.to_ecs();
  hetero::io::Table t({"change", "dMPH", "dTDH", "dTMA"});
  for (const auto& d : hetero::core::whatif_remove_each_machine(ecs))
    t.add_row({d.description, format_fixed(d.mph_delta(), 4),
               format_fixed(d.tdh_delta(), 4),
               format_fixed(d.tma_delta(), 4)});
  for (const auto& d : hetero::core::whatif_remove_each_task(ecs))
    t.add_row({d.description, format_fixed(d.mph_delta(), 4),
               format_fixed(d.tdh_delta(), 4),
               format_fixed(d.tma_delta(), 4)});
  t.print(std::cout);
}

// The CLI's metrics slot for a command — one-shot runs instrument through
// the same svc::Metrics type the server keeps, so a `--stats` dump and a
// server `stats` response read identically.
hetero::svc::RequestKind kind_of_command(const std::string& command) {
  if (command == "measures") return hetero::svc::RequestKind::measures;
  if (command == "whatif") return hetero::svc::RequestKind::whatif;
  return hetero::svc::RequestKind::characterize;
}

int run_command(const std::vector<std::string>& args) {
  const std::string& command = args[1];
  if (command == "demo") {
    analyze(hetero::spec::spec_cint2006rate());
    return 0;
  }
  if (command == "generate") return generate(args);
  if (args.size() < 3) return usage();
  const auto etc = hetero::io::read_etc_csv_file(args[2]);
  if (command == "analyze") {
    analyze(etc);
  } else if (command == "measures") {
    print_measures_line(etc.to_ecs());
  } else if (command == "json") {
    const auto ecs = etc.to_ecs();
    std::cout << hetero::io::to_json(hetero::core::characterize(ecs), ecs)
              << '\n';
  } else if (command == "whatif") {
    whatif(etc);
  } else if (command == "report") {
    hetero::core::ReportOptions opts;
    opts.title = "Environment report: " + args[2];
    std::cout << hetero::core::markdown_report(etc, opts);
  } else if (command == "atlas") {
    atlas(etc);
  } else if (command == "cluster") {
    if (args.size() < 4) return usage();
    cluster(etc, std::stoul(args[3]));
  } else if (command == "confidence") {
    confidence(etc);
  } else {
    return usage();
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool stats = false;
  std::vector<std::string> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) == "--stats")
      stats = true;
    else
      args.emplace_back(argv[i]);
  }
  if (args.size() < 2) return usage();

  hetero::svc::Metrics metrics;
  auto& slot = metrics.kind(kind_of_command(args[1]));
  slot.received.fetch_add(1, std::memory_order_relaxed);
  const auto start = std::chrono::steady_clock::now();
  int rc = 0;
  try {
    rc = run_command(args);
    slot.completed.fetch_add(1, std::memory_order_relaxed);
  } catch (const hetero::Error& e) {
    slot.errors.fetch_add(1, std::memory_order_relaxed);
    std::cerr << "error: " << e.what() << '\n';
    rc = 1;
  }
  const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - start);
  slot.compute.record(
      elapsed.count() < 0 ? 0 : static_cast<std::uint64_t>(elapsed.count()));
  if (stats)
    std::cerr << "\n-- metrics --\n"
              << hetero::svc::render_text(metrics.snapshot());
  return rc;
}
