// Quickstart: build an ETC matrix, convert to ECS, and characterize the
// environment with the three heterogeneity measures.
//
//   $ ./quickstart
#include <iostream>

#include "core/etc_matrix.hpp"
#include "core/measures.hpp"
#include "io/table.hpp"

int main() {
  using hetero::core::EtcMatrix;
  using hetero::linalg::Matrix;

  // Estimated time to compute (seconds): 4 task types on 3 machines.
  // "inf" (here: infinity()) would mean a machine cannot run a task type.
  const EtcMatrix etc(
      Matrix{
          {120.0, 60.0, 30.0},   // video-encode
          {45.0, 50.0, 48.0},    // log-parse
          {300.0, 80.0, 240.0},  // fluid-sim (loves machine 2's wide SIMD)
          {80.0, 90.0, 25.0},    // ml-infer (loves machine 3's accelerator)
      },
      {"video-encode", "log-parse", "fluid-sim", "ml-infer"},
      {"xeon", "epyc", "gpu-node"});

  std::cout << "ETC matrix (runtimes in seconds):\n";
  hetero::io::print_etc(std::cout, etc, 0);

  // The ECS matrix (eq. 1) is the entrywise reciprocal: work per second.
  const auto ecs = etc.to_ecs();

  // One call computes everything: MP/TD vectors, MPH, TDH, TMA, and the
  // alternative measures the paper compares against.
  const auto report = hetero::core::characterize(ecs);

  std::cout << "\nMachine performance homogeneity (MPH): "
            << hetero::io::format_fixed(report.measures.mph, 3)
            << "\nTask difficulty homogeneity    (TDH): "
            << hetero::io::format_fixed(report.measures.tdh, 3)
            << "\nTask-machine affinity          (TMA): "
            << hetero::io::format_fixed(report.measures.tma, 3) << "\n\n";

  std::cout << "Interpretation:\n"
               "  MPH < 1  -> machines differ in overall speed\n"
               "  TDH < 1  -> task types differ in overall difficulty\n"
               "  TMA > 0  -> some tasks are *specialized* to some machines\n";

  std::cout << "\nSinkhorn standard form converged in "
            << report.tma_detail.standard_form.iterations
            << " iterations; largest singular value "
            << hetero::io::format_fixed(
                   report.tma_detail.singular_values.front(), 6)
            << " (Theorem 2 says exactly 1).\n";
  return 0;
}
