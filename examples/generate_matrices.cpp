// Example: generate ETC matrices three ways — range-based, CVB, and
// measure-targeted — and verify what each produces. The measure-targeted
// generator is the paper's application (d): spanning the heterogeneity
// space for simulation studies.
#include <iostream>

#include "core/measures.hpp"
#include "etcgen/cvb.hpp"
#include "etcgen/range_based.hpp"
#include "etcgen/target_measures.hpp"
#include "io/csv.hpp"
#include "io/table.hpp"

int main() {
  using hetero::io::format_fixed;
  namespace eg = hetero::etcgen;

  eg::Rng rng = eg::make_rng(123);
  hetero::io::Table t({"generator", "parameters", "MPH", "TDH", "TMA"});

  // 1. Range-based (Ali et al. [4]).
  eg::RangeBasedOptions rb;
  rb.tasks = 12;
  rb.machines = 6;
  rb.task_range = 100.0;
  rb.machine_range = 10.0;
  rb.consistency = eg::Consistency::consistent;
  const auto etc_rb = eg::generate_range_based(rb, rng);
  const auto m_rb = hetero::core::measure_set(etc_rb.to_ecs());
  t.add_row({"range-based", "Rtask=100 Rmach=10 consistent",
             format_fixed(m_rb.mph, 2), format_fixed(m_rb.tdh, 2),
             format_fixed(m_rb.tma, 2)});

  // 2. CVB (coefficient-of-variation based).
  eg::CvbOptions cvb;
  cvb.tasks = 12;
  cvb.machines = 6;
  cvb.task_cov = 0.6;
  cvb.machine_cov = 0.3;
  const auto etc_cvb = eg::generate_cvb(cvb, rng);
  const auto m_cvb = hetero::core::measure_set(etc_cvb.to_ecs());
  t.add_row({"CVB", "Vtask=0.6 Vmach=0.3", format_fixed(m_cvb.mph, 2),
             format_fixed(m_cvb.tdh, 2), format_fixed(m_cvb.tma, 2)});

  // 3. Measure-targeted: hit (MPH, TDH, TMA) = (0.5, 0.8, 0.25) exactly.
  eg::TargetGenOptions tg;
  tg.tasks = 12;
  tg.machines = 6;
  tg.seed = 5;
  tg.anneal_iterations = 15000;
  tg.restarts = 2;
  tg.tolerance = 0.01;
  const auto gen = eg::generate_with_measures({0.5, 0.8, 0.25}, tg);
  t.add_row({"measure-targeted", "targets MPH=.5 TDH=.8 TMA=.25",
             format_fixed(gen.achieved.mph, 2),
             format_fixed(gen.achieved.tdh, 2),
             format_fixed(gen.achieved.tma, 2)});

  t.print(std::cout);

  std::cout << "\nThe classic generators control heterogeneity only "
               "indirectly; the measure-targeted\ngenerator dials in the "
               "paper's coordinates directly (max error "
            << format_fixed(gen.error, 4) << ").\n";

  // Round-trip through CSV so results feed other tools.
  std::cout << "\nCSV of the measure-targeted environment:\n"
            << hetero::io::write_etc_csv_string(gen.ecs.to_etc());
  return 0;
}
