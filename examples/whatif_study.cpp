// Example: what-if study (paper application c) — how does removing each
// machine, or adding an accelerator, change the heterogeneity of the SPEC
// CFP environment?
#include <iostream>
#include <vector>

#include "core/whatif.hpp"
#include "io/table.hpp"
#include "spec/spec_data.hpp"

int main() {
  using hetero::io::format_fixed;
  namespace core = hetero::core;

  const auto ecs = hetero::spec::spec_cfp2006rate().to_ecs();
  const auto base = core::measure_set(ecs);
  std::cout << "SPEC CFP2006Rate baseline: MPH=" << format_fixed(base.mph, 3)
            << " TDH=" << format_fixed(base.tdh, 3)
            << " TMA=" << format_fixed(base.tma, 3) << "\n\n";

  std::cout << "What if we removed one machine?\n";
  hetero::io::Table t({"change", "dMPH", "dTDH", "dTMA"});
  for (const auto& d : core::whatif_remove_each_machine(ecs))
    t.add_row({d.description, format_fixed(d.mph_delta(), 3),
               format_fixed(d.tdh_delta(), 3), format_fixed(d.tma_delta(), 3)});
  t.print(std::cout);

  // Add a hypothetical accelerator: 20x faster on three kernels, average on
  // the rest (the paper's closing remark predicts higher TMA and lower MPH
  // for accelerator-style resources).
  std::vector<double> accel(ecs.task_count());
  for (std::size_t i = 0; i < ecs.task_count(); ++i) {
    double mean = 0.0;
    for (std::size_t j = 0; j < ecs.machine_count(); ++j) mean += ecs(i, j);
    mean /= static_cast<double>(ecs.machine_count());
    const auto& name = ecs.task_names()[i];
    const bool kernel = name.find("lbm") != std::string::npos ||
                        name.find("milc") != std::string::npos ||
                        name.find("GemsFDTD") != std::string::npos;
    accel[i] = kernel ? 20.0 * mean : mean;
  }
  const auto grown = core::add_machine(ecs, accel, "gpgpu");
  const auto after = core::measure_set(grown);
  std::cout << "\nWhat if we added a GPGPU (20x on lbm/milc/GemsFDTD)?\n"
            << "  MPH " << format_fixed(base.mph, 3) << " -> "
            << format_fixed(after.mph, 3) << "\n  TDH "
            << format_fixed(base.tdh, 3) << " -> "
            << format_fixed(after.tdh, 3) << "\n  TMA "
            << format_fixed(base.tma, 3) << " -> "
            << format_fixed(after.tma, 3)
            << "\n(paper Section V: special-purpose resources push TMA up "
               "and MPH down)\n";
  return 0;
}
