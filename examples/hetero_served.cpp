// Long-running characterization service driver.
//
//   hetero_served [options]            serve NDJSON on stdin/stdout
//   hetero_served --tcp PORT [options] serve NDJSON over TCP (epoll event
//                                      loop; PORT 0 = ephemeral)
//
// Options:
//   --threads N        compute worker threads (default: hw concurrency)
//   --workers N        event-loop threads, one SO_REUSEPORT listener each
//                      (default 1; TCP mode only)
//   --queue N          admission-control queue depth (default 256)
//   --shards N         result-cache shards (default 16)
//   --cache N          result-cache entries per shard (default 64)
//   --deadline-ms N    default per-request deadline (default: none)
//   --idle-timeout-ms N  close idle connections after N ms (default 30000)
//   --tcp-blocking     use the thread-per-connection TCP front end instead
//                      of the event loop (the bit-identical equivalence
//                      twin; no --workers, no graceful drain)
//
// Protocol (one JSON object per line; see src/svc/protocol.hpp):
//   {"id":1,"kind":"measures","etc":[[1,2],[3,4]]}
//   {"id":2,"kind":"characterize","etc":{"tasks":["a","b"],
//     "machines":["x","y"],"etc":[[1,2],[3,null]]}}
//   {"id":3,"kind":"schedule","heuristic":"min_min","etc":[[1,2],[3,4]]}
//   {"id":4,"kind":"whatif","remove":"machines","etc":[[1,2],[3,4]]}
//   {"id":5,"kind":"stats"}
//
// In event-loop TCP mode SIGINT/SIGTERM trigger a graceful shutdown: stop
// accepting, flush in-flight responses, then exit. On shutdown (any mode)
// the metrics registry — including connection gauges — is dumped to
// stderr.
#include <csignal>
#include <cstdint>
#include <iostream>
#include <string>

#include "svc/event_loop.hpp"
#include "svc/server.hpp"

namespace {

int usage() {
  std::cerr << "usage: hetero_served [--tcp PORT] [--workers N] "
               "[--tcp-blocking] [--threads N] [--queue N] [--shards N] "
               "[--cache N] [--deadline-ms N] [--idle-timeout-ms N]\n";
  return 2;
}

hetero::svc::EventLoopServer* g_loop = nullptr;

void on_signal(int) {
  if (g_loop != nullptr) g_loop->request_shutdown();
}

}  // namespace

int main(int argc, char** argv) {
  hetero::svc::ServerOptions options;
  hetero::svc::EventLoopOptions loop_options;
  std::uint16_t tcp_port = 0;
  bool tcp = false;
  bool tcp_blocking = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return ++i < argc ? argv[i] : nullptr;
    };
    try {
      if (arg == "--tcp") {
        const char* v = next();
        if (!v) return usage();
        tcp_port = static_cast<std::uint16_t>(std::stoul(v));
        tcp = true;
      } else if (arg == "--workers") {
        const char* v = next();
        if (!v) return usage();
        loop_options.workers = std::stoul(v);
      } else if (arg == "--tcp-blocking") {
        tcp_blocking = true;
      } else if (arg == "--threads") {
        const char* v = next();
        if (!v) return usage();
        options.threads = std::stoul(v);
      } else if (arg == "--queue") {
        const char* v = next();
        if (!v) return usage();
        options.queue_depth = std::stoul(v);
      } else if (arg == "--shards") {
        const char* v = next();
        if (!v) return usage();
        options.cache_shards = std::stoul(v);
      } else if (arg == "--cache") {
        const char* v = next();
        if (!v) return usage();
        options.cache_capacity_per_shard = std::stoul(v);
      } else if (arg == "--deadline-ms") {
        const char* v = next();
        if (!v) return usage();
        options.default_deadline = std::chrono::milliseconds(std::stol(v));
      } else if (arg == "--idle-timeout-ms") {
        const char* v = next();
        if (!v) return usage();
        loop_options.idle_timeout = std::chrono::milliseconds(std::stol(v));
      } else {
        return usage();
      }
    } catch (const std::exception&) {
      return usage();
    }
  }

  hetero::svc::Server server(options);
  int rc = 0;
  if (tcp && tcp_blocking) {
    rc = server.serve_tcp(tcp_port, std::cerr);
  } else if (tcp) {
    loop_options.port = tcp_port;
    hetero::svc::EventLoopServer loop(server, loop_options);
    g_loop = &loop;
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    rc = loop.run(std::cerr);
    g_loop = nullptr;
  } else {
    server.serve_stream(std::cin, std::cout);
  }
  std::cerr << "\n-- service metrics --\n"
            << hetero::svc::render_text(server.metrics().snapshot());
  const auto cache = server.cache().stats();
  std::cerr << "cache: " << cache.hits << " hits, " << cache.misses
            << " misses, " << cache.evictions << " evictions, "
            << cache.entries << " resident\n";
  return rc;
}
