// Example: drive the discrete-event datacenter simulator across one or
// more scenario files and compare online schedulers on energy, SLA
// violations, and flow time — next to the scenario's implied-ETC
// affinity measures (MPH/TDH/TMA), which is the paper's question asked
// under dynamics: do the measures predict which scheduler wins?
//
// Usage:
//   hetero_sim [options] scenario.sim [more.sim ...]
//     --schedulers=a,b,c   comma-separated tokens (default: all)
//     --power-gate         enable the idle power-gating controller
//     --dvfs               enable the DVFS controller
//     --migrate            enable the load-balancing migration controller
//     --trace              print the first trace records of each run
//
// Each run also prints a machine-parsable line:
//   RESULT scenario=<stem> scheduler=<tok> tasks=<n> energy_j=<..>
//          sla_violations=<n> mean_flow_us=<..> trace=<hex>
// which tools/ci_sim_smoke.sh diffs across repeated runs for
// determinism.
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/measures.hpp"
#include "io/table.hpp"
#include "sim/engine.hpp"
#include "sim/scenario.hpp"
#include "sim/scheduler.hpp"

namespace {

std::string stem_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  std::string name = slash == std::string::npos ? path : path.substr(slash + 1);
  const std::size_t dot = name.find_last_of('.');
  if (dot != std::string::npos) name = name.substr(0, dot);
  return name;
}

std::vector<std::string> split_csv(const std::string& list) {
  std::vector<std::string> out;
  std::stringstream ss(list);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

std::string hex64(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xf];
    v >>= 4;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using hetero::io::format_fixed;
  namespace sim = hetero::sim;
  namespace core = hetero::core;

  std::vector<std::string> scenario_paths;
  std::vector<std::string> tokens;
  sim::SimOptions options;
  bool show_trace = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--schedulers=", 0) == 0) {
      tokens = split_csv(arg.substr(std::strlen("--schedulers=")));
    } else if (arg == "--power-gate") {
      options.power_gating = true;
    } else if (arg == "--dvfs") {
      options.dvfs = true;
    } else if (arg == "--migrate") {
      options.migration = true;
    } else if (arg == "--trace") {
      show_trace = true;
      options.record_trace = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "unknown option " << arg << '\n';
      return 2;
    } else {
      scenario_paths.push_back(arg);
    }
  }
  if (scenario_paths.empty()) {
    std::cerr << "usage: hetero_sim [--schedulers=a,b,c] [--power-gate] "
                 "[--dvfs] [--migrate] [--trace] scenario.sim ...\n";
    return 2;
  }
  if (tokens.empty()) {
    for (const std::string_view t : sim::scheduler_tokens())
      tokens.emplace_back(t);
  }

  try {
    for (const std::string& path : scenario_paths) {
      const sim::Scenario scenario = sim::load_scenario(path);
      const auto etc = sim::implied_etc(scenario);
      const auto measures = core::measure_set(etc.to_ecs());

      std::cout << "=== " << stem_of(path) << " ===\n"
                << "  " << scenario.machine_classes.size()
                << " machine classes (" << scenario.machine_count()
                << " machines), " << scenario.task_classes.size()
                << " task classes\n"
                << "  implied-ETC measures: MPH "
                << format_fixed(measures.mph, 3) << "  TDH "
                << format_fixed(measures.tdh, 3) << "  TMA "
                << format_fixed(measures.tma, 3) << "\n\n"
                << "  scheduler       energy(J)   SLA0.viol  SLA1.viol  "
                   "SLA2.viol  mean flow(ms)  migr  sleeps\n";

      for (const std::string& token : tokens) {
        const auto scheduler = sim::make_scheduler(token);
        sim::Engine engine(scenario, options);
        const sim::SimReport report = engine.run(*scheduler);

        std::cout << "  " << report.scheduler
                  << std::string(report.scheduler.size() < 16
                                     ? 16 - report.scheduler.size()
                                     : 1,
                                 ' ')
                  << format_fixed(report.total_energy_j, 1) << "      "
                  << format_fixed(
                         report.violation_rate(sim::SlaTier::sla0), 3)
                  << "      "
                  << format_fixed(
                         report.violation_rate(sim::SlaTier::sla1), 3)
                  << "      "
                  << format_fixed(
                         report.violation_rate(sim::SlaTier::sla2), 3)
                  << "      " << format_fixed(report.mean_flow_time / 1e3, 1)
                  << "        " << report.migrations << "     "
                  << report.sleep_transitions << '\n';

        std::size_t violations = 0;
        for (std::size_t t = 0; t < sim::kSlaTierCount; ++t)
          violations += report.sla_violated[t];
        std::cout << "RESULT scenario=" << stem_of(path) << " scheduler="
                  << report.scheduler << " tasks=" << report.tasks
                  << " energy_j=" << format_fixed(report.total_energy_j, 6)
                  << " sla_violations=" << violations << " mean_flow_us="
                  << format_fixed(report.mean_flow_time, 3) << " trace="
                  << hex64(report.trace_hash) << '\n';

        if (show_trace) {
          const std::size_t n = std::min<std::size_t>(8, report.trace.size());
          for (std::size_t i = 0; i < n; ++i) {
            const auto& r = report.trace[i];
            std::cout << "    t=" << format_fixed(r.time, 0) << " kind="
                      << static_cast<int>(r.kind) << " a=" << r.a << " b="
                      << r.b << '\n';
          }
        }
      }
      std::cout << '\n';
    }
  } catch (const std::exception& e) {
    std::cerr << "hetero_sim: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
