// Example: dig into *where* an environment's affinity lives.
// Combines four analysis tools on the SPEC CFP environment:
//   1. affinity modes (which tasks prefer which machines),
//   2. machine clustering by column angle,
//   3. the extreme-extract atlas (worst/best sub-environments),
//   4. bootstrap confidence intervals (how stable the numbers are).
#include <iostream>

#include "core/clustering.hpp"
#include "core/confidence.hpp"
#include "core/extracts.hpp"
#include "core/svd_analysis.hpp"
#include "io/table.hpp"
#include "spec/spec_data.hpp"

int main() {
  using hetero::io::format_fixed;
  namespace core = hetero::core;

  const auto& etc = hetero::spec::spec_cfp2006rate();
  const auto ecs = etc.to_ecs();

  // 1. Affinity modes.
  const auto analysis = core::affinity_analysis(ecs, {}, 2);
  std::cout << "SPEC CFP2006Rate affinity analysis (TMA = "
            << format_fixed(analysis.tma, 3) << ")\n\n"
            << core::describe_strongest_mode(analysis) << "\n\n";

  // 2. Machine classes by column angle.
  const auto clusters = core::cluster_machines(ecs, 2);
  std::cout << "machine classes (k = 2, cosine linkage):\n";
  for (std::size_t c = 0; c < clusters.cluster_count; ++c) {
    std::cout << "  class " << c << ": ";
    bool first = true;
    for (std::size_t j = 0; j < ecs.machine_count(); ++j)
      if (clusters.cluster[j] == c) {
        std::cout << (first ? "" : ", ") << ecs.machine_names()[j];
        first = false;
      }
    std::cout << '\n';
  }
  std::cout << "  within-class cosine "
            << format_fixed(clusters.within_cosine, 3) << ", between "
            << format_fixed(clusters.between_cosine, 3) << "\n\n";

  // 3. Extreme extracts (Fig. 8, automated).
  const auto atlas = core::extract_atlas(ecs);
  const auto show = [&](const char* what, const core::Extract& e,
                        double value) {
    std::cout << "  " << what << " = " << format_fixed(value, 2) << " at {"
              << ecs.task_names()[e.tasks[0]] << ", "
              << ecs.task_names()[e.tasks[1]] << "} x {"
              << ecs.machine_names()[e.machines[0]] << ", "
              << ecs.machine_names()[e.machines[1]] << "}\n";
  };
  std::cout << "extreme 2x2 extracts (" << atlas.scored << " scored):\n";
  show("max TMA", atlas.max_tma, atlas.max_tma.measures.tma);
  show("min MPH", atlas.min_mph, atlas.min_mph.measures.mph);
  std::cout << '\n';

  // 4. How stable are the headline numbers under 10% estimate noise?
  const auto conf = core::measure_confidence(etc);
  hetero::io::Table t({"measure", "point", "95% interval"});
  const auto row = [&](const char* name, const core::MeasureInterval& i) {
    t.add_row({name, format_fixed(i.point, 3),
               "[" + format_fixed(i.lower, 3) + ", " +
                   format_fixed(i.upper, 3) + "]"});
  };
  row("MPH", conf.mph);
  row("TDH", conf.tdh);
  row("TMA", conf.tma);
  std::cout << "bootstrap under 10% lognormal estimate noise ("
            << conf.replications << " replications):\n";
  t.print(std::cout);
  return 0;
}
