// Example: use the heterogeneity measures to pick a mapping heuristic.
// Characterizes an environment, then shows how the measure values predict
// which scheduling heuristic wins — the decision procedure of paper
// application (b).
#include <iostream>

#include "core/measures.hpp"
#include "etcgen/range_based.hpp"
#include "io/table.hpp"
#include "sched/evolutionary.hpp"
#include "sched/heuristics.hpp"

int main() {
  using hetero::io::format_fixed;
  namespace eg = hetero::etcgen;
  namespace sc = hetero::sched;

  // Two contrasting environments from the range-based generator.
  eg::Rng rng = eg::make_rng(7);
  eg::RangeBasedOptions mild;
  mild.tasks = 16;
  mild.machines = 6;
  mild.task_range = 5.0;
  mild.machine_range = 1.5;  // near-homogeneous machines
  eg::RangeBasedOptions harsh = mild;
  harsh.task_range = 100.0;
  harsh.machine_range = 50.0;  // wildly heterogeneous

  for (const auto& [label, opts] :
       {std::pair{"near-homogeneous", mild}, std::pair{"heterogeneous", harsh}}) {
    const auto etc = eg::generate_range_based(opts, rng);
    const auto m = hetero::core::measure_set(etc.to_ecs());
    std::cout << label << " environment: MPH=" << format_fixed(m.mph, 2)
              << " TDH=" << format_fixed(m.tdh, 2)
              << " TMA=" << format_fixed(m.tma, 2) << "\n";

    // Three instances of every task type.
    sc::TaskList tasks;
    for (int rep = 0; rep < 3; ++rep)
      for (std::size_t i = 0; i < etc.task_count(); ++i) tasks.push_back(i);
    const double lb = sc::makespan_lower_bound(etc, tasks);

    hetero::io::Table t({"heuristic", "makespan / lower bound"});
    for (const auto& h : sc::standard_heuristics()) {
      const double ms = sc::makespan(etc, tasks, h.map(etc, tasks));
      t.add_row({h.name, format_fixed(ms / lb, 3)});
    }
    // A search mapper as the quality yardstick.
    sc::SaMapperOptions sa;
    sa.iterations = 10000;
    const double sa_ms = sc::makespan(
        etc, tasks, sc::map_simulated_annealing(etc, tasks, sa));
    t.add_row({"SA (search)", format_fixed(sa_ms / lb, 3)});
    t.print(std::cout);
    std::cout << '\n';
  }

  std::cout << "Reading the tables: when MPH is high every heuristic is "
               "close; as MPH drops and TMA rises,\nload-blind OLB/MET fall "
               "behind and batch heuristics (Min-Min/Sufferage/Duplex) are "
               "the safe choice.\n";
  return 0;
}
