// Full analysis of the embedded SPEC-derived environments: measures of both
// suites, per-machine performance, and the most interesting 2x2 extracts —
// the workflow of the paper's Section V.
#include <iostream>

#include "core/measures.hpp"
#include "core/performance.hpp"
#include "io/table.hpp"
#include "spec/spec_data.hpp"

int main() {
  using hetero::io::format_fixed;
  namespace core = hetero::core;
  namespace spec = hetero::spec;

  std::cout << "Machines (paper Fig. 5):\n";
  for (const auto& m : spec::spec_machines())
    std::cout << "  " << m.id << "  " << m.description << '\n';

  hetero::io::Table summary(
      {"suite", "tasks", "TDH", "MPH", "TMA", "sinkhorn iters"});
  for (const auto* etc :
       {&spec::spec_cint2006rate(), &spec::spec_cfp2006rate()}) {
    const auto ecs = etc->to_ecs();
    const auto detail = core::tma_detailed(ecs);
    const auto m = core::measure_set(ecs);
    summary.add_row({etc == &spec::spec_cint2006rate() ? "CINT2006Rate"
                                                       : "CFP2006Rate",
                     std::to_string(etc->task_count()),
                     format_fixed(m.tdh, 2), format_fixed(m.mph, 2),
                     format_fixed(m.tma, 2),
                     std::to_string(detail.standard_form.iterations)});
  }
  std::cout << '\n';
  summary.print(std::cout);

  // Per-machine performance on the CFP suite (who is fastest overall?).
  const auto cfp_ecs = spec::spec_cfp2006rate().to_ecs();
  const auto mp = core::machine_performances(cfp_ecs);
  hetero::io::Table perf({"machine", "MP (sum of ECS column)"});
  for (std::size_t j = 0; j < mp.size(); ++j)
    perf.add_row({cfp_ecs.machine_names()[j], format_fixed(mp[j], 5)});
  std::cout << "\nCFP per-machine performance:\n";
  perf.print(std::cout);

  // The paper's two extreme extracts.
  std::cout << "\n2x2 extracts (paper Fig. 8):\n";
  for (const auto& [label, etc] :
       {std::pair{"(a) {omnetpp, cactusADM} x {m4, m5}", spec::spec_fig8a()},
        std::pair{"(b) {cactusADM, soplex} x {m1, m4}", spec::spec_fig8b()}}) {
    const auto m = core::measure_set(etc.to_ecs());
    std::cout << "  " << label << ": TDH=" << format_fixed(m.tdh, 2)
              << " MPH=" << format_fixed(m.mph, 2)
              << " TMA=" << format_fixed(m.tma, 2) << '\n';
  }

  std::cout << "\nConclusion (matches the paper): the two full suites are "
               "nearly identical in MPH and TDH,\nbut floating-point task "
               "types show more task-machine affinity than integer ones.\n";
  return 0;
}
