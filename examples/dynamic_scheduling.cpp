// Example: drive the dynamic (arrival-based) simulator on the SPEC CINT
// environment and inspect how mapping policy affects flow time — then use
// the affinity-mode analysis to explain *why* the smart policies win.
#include <iostream>

#include "core/svd_analysis.hpp"
#include "io/table.hpp"
#include "sched/dynamic.hpp"
#include "spec/spec_data.hpp"

int main() {
  using hetero::io::format_fixed;
  namespace sc = hetero::sched;

  const auto& etc = hetero::spec::spec_cint2006rate();
  hetero::etcgen::Rng rng = hetero::etcgen::make_rng(99);

  // Load the five machines at ~70% of aggregate service capacity.
  const double rate = 5.0 * 0.7 / 500.0;  // runtimes are a few hundred sec
  const auto arrivals = sc::poisson_arrivals(etc, rate, 200, rng);
  std::cout << "200 Poisson arrivals over the SPEC CINT machines ("
            << format_fixed(arrivals.back().time, 0) << " s horizon)\n\n";

  hetero::io::Table t({"policy", "makespan (s)", "mean flow (s)",
                       "max flow (s)"});
  const auto add = [&](const char* name, const sc::DynamicResult& r) {
    t.add_row({name, format_fixed(r.makespan, 0),
               format_fixed(r.mean_flow_time, 0),
               format_fixed(r.max_flow_time, 0)});
  };
  add("OLB (availability only)",
      sc::simulate_immediate(etc, arrivals, sc::ImmediateMode::olb));
  add("MET (speed only)",
      sc::simulate_immediate(etc, arrivals, sc::ImmediateMode::met));
  add("MCT (completion time)",
      sc::simulate_immediate(etc, arrivals, sc::ImmediateMode::mct));
  add("KPB 50%",
      sc::simulate_immediate(etc, arrivals, sc::ImmediateMode::kpb));
  add("batch Min-Min", sc::simulate_batch_min_min(etc, arrivals));
  add("batch Sufferage",
      sc::simulate_batch(etc, arrivals, sc::BatchHeuristic::sufferage));
  t.print(std::cout);

  // Why do execution-time-aware policies matter here? The affinity modes
  // say which benchmarks prefer which machines.
  const auto analysis = hetero::core::affinity_analysis(etc.to_ecs(), {}, 1);
  std::cout << '\n'
            << hetero::core::describe_strongest_mode(analysis) << '\n'
            << "TMA = " << format_fixed(analysis.tma, 3)
            << ": modest affinity, so MCT's availability-awareness matters "
               "more than per-task machine choice.\n";
  return 0;
}
