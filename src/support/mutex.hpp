// Annotated mutex wrappers: the only locking primitives the tree uses.
//
// support::Mutex wraps std::mutex with (a) clang thread-safety-analysis
// capability annotations, so data protected by a mutex can be declared
// HETERO_GUARDED_BY it and misuse is a compile error under
// -DHETERO_THREAD_SAFETY=ON, and (b) a static lock rank (see
// support/lock_ranks.hpp) checked at runtime in debug builds, so a
// *potential* deadlock — acquiring ranks out of order — is reported even
// on interleavings that happened not to deadlock and that TSan therefore
// cannot flag. Release builds compile the rank checking out entirely;
// the wrapper is then exactly a std::mutex plus two trivially-dead
// members.
//
// tools/lint_determinism.py bans raw std::mutex outside src/support, so
// new concurrent code inherits both checks by construction.
#pragma once

#include <condition_variable>
#include <mutex>

#include "support/lock_rank.hpp"
#include "support/thread_annotations.hpp"

namespace hetero::support {

/// A std::mutex with a capability annotation and a static lock rank.
class HETERO_CAPABILITY("mutex") Mutex {
 public:
  /// `name` appears in rank-violation reports; keep it a string literal
  /// (the Mutex stores the pointer, not a copy).
  explicit Mutex(int rank, const char* name = "") noexcept
      : rank_(rank), name_(name) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() HETERO_ACQUIRE() {
#if HETERO_LOCK_RANK_CHECKS
    // Checked before the acquire so a violation can throw under the test
    // policy without leaving the mutex held.
    lock_rank::note_acquire(this, rank_, name_);
#endif
    m_.lock();
  }

  void unlock() HETERO_RELEASE() {
    m_.unlock();
#if HETERO_LOCK_RANK_CHECKS
    lock_rank::note_release(this);
#endif
  }

  /// Exempt from the rank-order check (a try_lock never blocks, so it
  /// cannot complete a deadlock cycle), but a successful try still joins
  /// the held set so later blocking acquisitions are checked against it.
  bool try_lock() HETERO_TRY_ACQUIRE(true) {
    const bool got = m_.try_lock();
#if HETERO_LOCK_RANK_CHECKS
    if (got) lock_rank::note_acquire_unchecked(this, rank_, name_);
#endif
    return got;
  }

  int rank() const noexcept { return rank_; }
  const char* name() const noexcept { return name_; }

  /// True when this build compiled the rank checker into lock()/unlock().
  static constexpr bool rank_checks_enabled() noexcept {
    return HETERO_LOCK_RANK_CHECKS != 0;
  }

 private:
  std::mutex m_;
  const int rank_;
  const char* const name_;
};

/// Scoped lock for one support::Mutex (the std::scoped_lock of this
/// library). Also satisfies BasicLockable so CondVar can release and
/// re-acquire it across a wait.
class HETERO_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& m) HETERO_ACQUIRE(m) : m_(m) {
    m_.lock();
    held_ = true;
  }

  ~MutexLock() HETERO_RELEASE() {
    if (held_) m_.unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  // BasicLockable surface for CondVar's wait internals only; analysis is
  // disabled because a wait's transient release/re-acquire would otherwise
  // read as losing the scoped capability (callers do hold it again, by the
  // condition-variable contract, whenever wait returns).
  void lock() HETERO_NO_THREAD_SAFETY_ANALYSIS {
    m_.lock();
    held_ = true;
  }
  void unlock() HETERO_NO_THREAD_SAFETY_ANALYSIS {
    held_ = false;
    m_.unlock();
  }

 private:
  Mutex& m_;
  bool held_ = false;
};

/// Condition variable paired with support::Mutex via MutexLock. A thin
/// wrapper over std::condition_variable_any: waits release and re-acquire
/// through MutexLock, so the lock-rank stack stays correct across sleeps.
///
/// Call pattern (the explicit loop keeps every guarded read inside the
/// locked scope, where the thread-safety analysis can verify it):
///
///   support::MutexLock lock(mutex_);
///   while (!ready_) cv_.wait(lock);
class CondVar {
 public:
  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  void wait(MutexLock& lock) { cv_.wait(lock); }

  template <typename Rep, typename Period>
  std::cv_status wait_for(MutexLock& lock,
                          const std::chrono::duration<Rep, Period>& d) {
    return cv_.wait_for(lock, d);
  }

 private:
  std::condition_variable_any cv_;
};

}  // namespace hetero::support
