// Clang thread-safety-analysis macros (no-ops on other compilers).
//
// These wrap the capability attributes understood by clang's
// -Wthread-safety so locking invariants are declared in the type system
// and machine-checked at compile time: a mutex is a CAPABILITY, data it
// protects is GUARDED_BY it, and functions declare what they ACQUIRE,
// RELEASE, REQUIRE, or EXCLUDE. GCC compiles the same sources with the
// macros expanding to nothing, so the annotations cost nothing where the
// analysis is unavailable.
//
// Build with -DHETERO_THREAD_SAFETY=ON (clang only) to turn violations
// into hard errors; see docs/static_analysis.md for the conventions and
// src/support/mutex.hpp for the annotated Mutex/MutexLock wrappers every
// in-tree mutex must use.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define HETERO_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef HETERO_THREAD_ANNOTATION
#define HETERO_THREAD_ANNOTATION(x)  // not clang: annotations vanish
#endif

/// Marks a type as a lockable capability ("mutex" in diagnostics).
#define HETERO_CAPABILITY(x) HETERO_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define HETERO_SCOPED_CAPABILITY HETERO_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding `x`.
#define HETERO_GUARDED_BY(x) HETERO_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is protected by `x` (the pointer itself
/// may be read freely).
#define HETERO_PT_GUARDED_BY(x) HETERO_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function acquires the capability (and did not hold it on entry).
#define HETERO_ACQUIRE(...) \
  HETERO_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability (and held it on entry).
#define HETERO_RELEASE(...) \
  HETERO_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `result`.
#define HETERO_TRY_ACQUIRE(result, ...) \
  HETERO_THREAD_ANNOTATION(try_acquire_capability(result, __VA_ARGS__))

/// Caller must hold the capability across the call.
#define HETERO_REQUIRES(...) \
  HETERO_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (the function acquires it itself;
/// declares deadlock-by-reentry impossible).
#define HETERO_EXCLUDES(...) HETERO_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Documented acquisition order between two capabilities (the static
/// counterpart of the runtime lock-rank checker).
#define HETERO_ACQUIRED_BEFORE(...) \
  HETERO_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define HETERO_ACQUIRED_AFTER(...) \
  HETERO_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Function returns a reference to the named capability.
#define HETERO_RETURN_CAPABILITY(x) HETERO_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch for code the analysis cannot model (condition-variable
/// relock internals). Every use needs a one-line justification comment.
#define HETERO_NO_THREAD_SAFETY_ANALYSIS \
  HETERO_THREAD_ANNOTATION(no_thread_safety_analysis)
