// Runtime lock-rank (lock-order) checking for support::Mutex.
//
// Every support::Mutex carries a static rank from support/lock_ranks.hpp.
// A thread may only acquire a mutex whose rank is strictly greater than
// the rank of every mutex it already holds; acquiring downward or sideways
// (equal rank) is a *potential* deadlock even when this particular
// interleaving did not deadlock — exactly the class of bug TSan cannot
// see, because TSan only reports cycles it actually observes.
//
// The checker keeps a small thread-local stack of held (site, rank)
// pairs. In release builds (NDEBUG, unless HETERO_FORCE_LOCK_RANK_CHECKS
// is defined project-wide) support::Mutex never calls into it, so the
// fast path carries zero overhead; the checker's own entry points stay
// compiled in every build so tests can exercise the detection logic
// directly regardless of build type.
#pragma once

#include <cstddef>

#include "base/error.hpp"

// Whether support::Mutex invokes the checker on every lock/unlock. The
// macro is fixed per build (PUBLIC compile definition / NDEBUG), never per
// translation unit, so all TUs agree on the inline Mutex definitions.
#if defined(HETERO_FORCE_LOCK_RANK_CHECKS)
#define HETERO_LOCK_RANK_CHECKS 1
#elif !defined(NDEBUG)
#define HETERO_LOCK_RANK_CHECKS 1
#else
#define HETERO_LOCK_RANK_CHECKS 0
#endif

namespace hetero::support {

/// Thrown (under RankViolationPolicy::throw_exception) when an acquisition
/// would violate the rank order. Deriving from hetero::Error keeps it
/// catchable at the same boundaries as every other library failure.
class RankViolationError : public Error {
 public:
  using Error::Error;
};

/// What a detected inversion does. `fatal` (the default) prints the held
/// stack to stderr and aborts — a rank inversion is a latent deadlock, and
/// aborting in debug CI is the loudest possible signal. Tests switch to
/// `throw_exception` so the violation is observable without dying.
enum class RankViolationPolicy { fatal, throw_exception };

/// Sets the process-wide policy; returns the previous one. Not intended
/// for concurrent mutation (tests set it once up front).
RankViolationPolicy set_rank_violation_policy(RankViolationPolicy p) noexcept;

namespace lock_rank {

/// Records that the calling thread is about to acquire `site` (the mutex
/// address, used only as an identity token) at `rank`. Called *before* the
/// underlying lock, so a violation can throw without leaving the mutex
/// held. Violations: rank <= the highest rank currently held by this
/// thread, or stack overflow (more than kMaxHeld nested locks).
void note_acquire(const void* site, int rank, const char* name);

/// note_acquire without the ordering check: joins the held set so later
/// blocking acquisitions are checked against it, but does not itself
/// require increasing rank. Used for try_lock, which never blocks and so
/// cannot complete a deadlock cycle. Overflow is still a violation.
void note_acquire_unchecked(const void* site, int rank,
                            const char* name);

/// Records that the calling thread released `site`. Unknown sites are
/// ignored (a Mutex compiled with checks on may be unlocked by code
/// compiled before the stack was pushed — never the case in-tree, but
/// release must not be able to fail).
void note_release(const void* site) noexcept;

/// How many mutexes the calling thread currently holds (test hook).
std::size_t held_count() noexcept;

/// Highest rank the calling thread currently holds, or kNoRank when it
/// holds nothing (test hook).
inline constexpr int kNoRank = -2147483647 - 1;  // INT_MIN without <climits>
int max_held_rank() noexcept;

/// Nesting depth the thread-local stack supports before overflow is
/// reported as a violation. Deep enough for any sane design: the in-tree
/// maximum nesting is 1.
inline constexpr std::size_t kMaxHeld = 32;

}  // namespace lock_rank
}  // namespace hetero::support
