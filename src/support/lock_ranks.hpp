// The lock-rank registry: one static rank per mutex site in the tree.
//
// Ranks encode the only acquisition order the codebase permits: a thread
// holding a mutex may acquire another only if the new rank is strictly
// greater. Ranks follow the request pipeline — admission, then cache,
// then compute — with the response-delivery mutexes above everything, so
// a worker that still held a pipeline lock while delivering (it never
// does today) would stay legal, while delivery code calling back *down*
// into the pipeline (the actual deadlock shape for this architecture)
// inverts the order and is reported.
//
// Gaps of 100 leave room to slot new subsystems (the src/sim event engine,
// cross-process shard forwarding) between existing layers without
// renumbering. When adding a rank: place it by asking "while holding this,
// which existing mutexes may the code legitimately take next?" — they must
// all rank higher — and document the site next to the constant.
#pragma once

namespace hetero::support {

// -- Pipeline layer: locks taken on the request path, in pipeline order.

/// svc::RequestQueue::mutex_ — admission; first lock a request meets.
inline constexpr int kRankRequestQueue = 100;

/// svc::StreamSession::mutex_ — per-connection streaming view state
/// (update/subscribe). Session compute runs entirely under it and takes
/// no further locks; ranked between admission and the cache so a future
/// session path that consulted the cache would stay legal.
inline constexpr int kRankStreamSession = 150;

/// svc::ResultCache::Shard::mutex — one per shard; the cache never holds
/// two shards at once, so all shards share one rank (equal rank forbids
/// shard-to-shard nesting, which is exactly the invariant).
inline constexpr int kRankCacheShard = 200;

// -- Compute layer: the thread pool and its join primitives.

/// par::ThreadPool::mutex_ — the work queue; submitted from the pipeline
/// (hence above the pipeline layer), never while a pool job holds it.
inline constexpr int kRankPoolQueue = 300;

/// parallel_for's per-call ClaimState::mutex — error/join bookkeeping of
/// one parallel range; taken by workers and the calling thread, nested
/// inside nothing.
inline constexpr int kRankParallelForState = 310;

// -- Delivery layer: locks protecting response fan-out. Highest ranks:
//    delivery may be entered from any pipeline stage, but must never call
//    back down into the pipeline while holding one of these.

/// serve_stream's output-stream mutex (serializes response writes).
inline constexpr int kRankStreamOut = 400;

/// serve_stream's in-flight counter mutex (drain bookkeeping). Ranked
/// above the out mutex to match the callback's write-then-count sequence
/// should the two scopes ever merge.
inline constexpr int kRankStreamFlight = 410;

/// serve_tcp's per-connection write mutex (serializes send()).
inline constexpr int kRankConnectionWrite = 420;

/// The event loop's WorkerChannel::mutex — completion handoff from pool
/// workers back to the owning loop thread.
inline constexpr int kRankWorkerChannel = 430;

// -- src/sim: no ranks. The discrete-event simulator (sim::Engine) is
//    single-threaded by construction — one run is a pure function of
//    (scenario, options, scheduler) and owns all of its state, so it
//    takes no locks. Concurrent simulations each get their own Engine;
//    if a shared-state sim variant ever appears, slot its ranks into the
//    200s (it would sit between admission and the compute pool).

}  // namespace hetero::support
