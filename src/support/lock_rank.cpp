#include "support/lock_rank.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace hetero::support {

namespace {

std::atomic<RankViolationPolicy> g_policy{RankViolationPolicy::fatal};

struct Held {
  const void* site = nullptr;
  int rank = 0;
  const char* name = "";
};

// Per-thread acquisition stack. Plain array + count: no heap, no static
// destruction order hazards, trivially async-signal-tolerant reads.
thread_local Held t_held[lock_rank::kMaxHeld];
thread_local std::size_t t_held_count = 0;

[[noreturn]] void report(const std::string& what) {
  if (g_policy.load(std::memory_order_relaxed) ==
      RankViolationPolicy::throw_exception)
    throw RankViolationError(what);
  std::fprintf(stderr, "hetero lock-rank violation: %s\n", what.c_str());
  for (std::size_t i = 0; i < t_held_count; ++i)
    std::fprintf(stderr, "  held[%zu]: rank %d (%s)\n", i, t_held[i].rank,
                 t_held[i].name[0] ? t_held[i].name : "unnamed");
  std::abort();
}

}  // namespace

RankViolationPolicy set_rank_violation_policy(RankViolationPolicy p) noexcept {
  return g_policy.exchange(p, std::memory_order_relaxed);
}

namespace lock_rank {

void note_acquire(const void* site, int rank, const char* name) {
  int worst = kNoRank;
  const char* worst_name = "";
  for (std::size_t i = 0; i < t_held_count; ++i) {
    if (t_held[i].rank >= worst) {
      worst = t_held[i].rank;
      worst_name = t_held[i].name;
    }
    if (t_held[i].site == site)
      report("re-acquisition of non-recursive mutex rank " +
             std::to_string(rank) + " (" + name + ")");
  }
  if (t_held_count > 0 && rank <= worst)
    report("acquiring rank " + std::to_string(rank) + " (" + name +
           ") while holding rank " + std::to_string(worst) + " (" +
           worst_name + "); acquisition order requires strictly "
           "increasing ranks");
  if (t_held_count >= kMaxHeld)
    report("more than " + std::to_string(kMaxHeld) +
           " mutexes held by one thread");
  t_held[t_held_count++] = Held{site, rank, name};
}

void note_acquire_unchecked(const void* site, int rank, const char* name) {
  if (t_held_count >= kMaxHeld)
    report("more than " + std::to_string(kMaxHeld) +
           " mutexes held by one thread");
  t_held[t_held_count++] = Held{site, rank, name};
}

void note_release(const void* site) noexcept {
  // Search from the top: releases are almost always LIFO.
  for (std::size_t i = t_held_count; i-- > 0;) {
    if (t_held[i].site != site) continue;
    for (std::size_t j = i + 1; j < t_held_count; ++j)
      t_held[j - 1] = t_held[j];
    --t_held_count;
    return;
  }
}

std::size_t held_count() noexcept { return t_held_count; }

int max_held_rank() noexcept {
  int worst = kNoRank;
  for (std::size_t i = 0; i < t_held_count; ++i)
    if (t_held[i].rank > worst) worst = t_held[i].rank;
  return worst;
}

}  // namespace lock_rank
}  // namespace hetero::support
