// JSON emission and parsing for machine-readable experiment output and the
// characterization service protocol.
//
// The writer side dumps measure reports, scheduler summaries, and ETC
// matrices that downstream notebooks/scripts can consume without
// screen-scraping the console tables. The parser side is a small
// recursive-descent reader producing a JsonValue tree; it accepts exactly
// the JSON the writers emit (service requests round-trip through it), plus
// standard escapes and surrogate pairs.
//
// NaN/infinity policy: JSON has no representation for them, so the writer
// emits null wherever a non-finite double appears; readers that expect a
// number in such a slot must decide what null means (the ETC reader maps it
// back to +infinity, i.e. "cannot run").
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/etc_matrix.hpp"
#include "core/measures.hpp"
#include "sched/makespan.hpp"

namespace hetero::io {

// ---------------------------------------------------------------------------
// Writer primitives.

/// Escapes a string for inclusion in JSON (quotes, backslashes, control
/// characters).
std::string json_escape(const std::string& s);

/// Renders a double as JSON (finite -> shortest round-trip decimal;
/// infinities/NaN -> null, since JSON has no representation for them).
std::string json_number(double value);

/// {"mph": ..., "tdh": ..., "tma": ...}
std::string to_json(const core::MeasureSet& measures);

/// Full environment report including per-machine/per-task vectors, the
/// alternative measures, and the standard-form diagnostics.
std::string to_json(const core::EnvironmentReport& report,
                    const core::EcsMatrix& ecs);

/// ETC matrix with labels; "cannot run" entries serialize as null.
std::string to_json(const core::EtcMatrix& etc);

/// Scheduler summary: heuristic name, assignment, makespan, machine loads.
std::string to_json(const sched::ScheduleSummary& summary);

// ---------------------------------------------------------------------------
// Parsed JSON tree.

/// One JSON value. Objects preserve member order (so a parse -> write
/// round trip is byte-stable), and numbers are always doubles — the only
/// numeric type the library traffics in.
class JsonValue {
 public:
  enum class Kind { null, boolean, number, string, array, object };
  using Array = std::vector<JsonValue>;
  using Member = std::pair<std::string, JsonValue>;
  using Object = std::vector<Member>;

  /// Default-constructs null.
  JsonValue() = default;

  static JsonValue make_null() { return JsonValue(); }
  static JsonValue make_bool(bool b);
  static JsonValue make_number(double n);
  static JsonValue make_string(std::string s);
  static JsonValue make_array(Array a);
  static JsonValue make_object(Object o);

  Kind kind() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == Kind::null; }
  bool is_bool() const noexcept { return kind_ == Kind::boolean; }
  bool is_number() const noexcept { return kind_ == Kind::number; }
  bool is_string() const noexcept { return kind_ == Kind::string; }
  bool is_array() const noexcept { return kind_ == Kind::array; }
  bool is_object() const noexcept { return kind_ == Kind::object; }

  /// Typed accessors; throw ValueError on a kind mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Object member lookup: nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const noexcept;
  /// Object member lookup; throws ValueError when absent.
  const JsonValue& at(std::string_view key) const;

 private:
  Kind kind_ = Kind::null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage is an error). Throws ValueError with a byte offset on malformed
/// input; nesting beyond 128 levels is rejected.
JsonValue parse_json(std::string_view text);

/// Writes a JsonValue back out (canonical: no whitespace, members in stored
/// order, non-finite numbers as null).
std::string to_json(const JsonValue& value);

// ---------------------------------------------------------------------------
// Resumable NDJSON framing.

/// Incremental newline-delimited frame decoder: the per-connection parse
/// state of the async service front end. feed() accepts arbitrary byte
/// splits (a frame may arrive one byte at a time or many frames in one
/// read) and next() hands back completed lines in arrival order; the scan
/// position is remembered across calls, so decoding a stream is O(bytes)
/// regardless of how the reads were split. Extracting frames from a
/// LineFramer and parsing them yields byte-identical results to splitting
/// the concatenated stream at '\n' — asserted by the svc_equiv tests.
///
/// Oversized lines (no newline within `max_frame_bytes`) are not buffered
/// without bound: the framer switches to discard mode, drops bytes until
/// the next newline, and emits the truncated frame with `oversized` set so
/// the caller can answer with a protocol error and keep the connection —
/// the stream resynchronizes on the newline.
class LineFramer {
 public:
  /// Frames longer than `max_frame_bytes` (excluding the newline) are
  /// truncated and flagged instead of buffered. 0 means unlimited.
  explicit LineFramer(std::size_t max_frame_bytes = 0);

  struct Frame {
    std::string line;      // without the trailing '\n' (a trailing '\r' stays)
    bool oversized = false;  // truncated; the overflow was discarded
  };

  /// Appends a chunk of stream bytes to the parse state.
  void feed(std::string_view bytes);

  /// Extracts the next completed frame, or nullopt when every buffered
  /// byte belongs to a still-incomplete line. Call until nullopt after
  /// each feed().
  std::optional<Frame> next();

  /// Bytes buffered for the current incomplete line (discarded overflow
  /// not included).
  std::size_t pending_bytes() const noexcept { return buffer_.size() - start_; }

  /// True when a partial line is buffered (or being discarded) — i.e. EOF
  /// now would truncate a frame mid-line.
  bool mid_frame() const noexcept {
    return pending_bytes() > 0 || discarding_;
  }

 private:
  std::size_t max_frame_bytes_;
  std::string buffer_;
  std::size_t start_ = 0;      // offset of the current line's first byte
  std::size_t scan_ = 0;       // offset up to which '\n' search is done
  bool discarding_ = false;    // current line exceeded the cap
  bool pending_oversized_ = false;  // next completed frame is the truncated one
  std::string oversize_head_;  // truncated head kept for the error reply
};

// ---------------------------------------------------------------------------
// Readers for the report types the writers above emit.

/// Rebuilds an ETC matrix from to_json(EtcMatrix) output (or from a bare
/// array-of-rows without labels); null entries map back to +infinity.
/// Throws ValueError on shape/type errors.
core::EtcMatrix etc_from_json(const JsonValue& value);

/// Rebuilds a MeasureSet from to_json(MeasureSet) output.
core::MeasureSet measure_set_from_json(const JsonValue& value);

// ---------------------------------------------------------------------------
// Streaming delta parsing (the `update` request of the characterization
// service). Shapes are validated here; value ranges (positivity, matrix
// bounds) are the consumer's contract.

/// One (task, machine, value) triple from {"task":i,"machine":j,<key>:v}.
struct CellUpdate {
  std::size_t task = 0;
  std::size_t machine = 0;
  double value = 0.0;
};

/// Parses an array of {"task","machine",<value_key>} objects. Throws
/// ValueError unless every element is an object with nonnegative-integer
/// "task"/"machine" members and a numeric value member named `value_key`.
std::vector<CellUpdate> cell_updates_from_json(const JsonValue& value,
                                               std::string_view value_key);

/// Parses an array of numeric arrays (structural delta rows/columns).
/// Inner arrays may be empty only if the consumer tolerates it; nulls
/// (JSON's non-finite stand-in) are rejected.
std::vector<std::vector<double>> number_lists_from_json(
    const JsonValue& value);

/// Parses an array of nonnegative integer indices.
std::vector<std::size_t> index_list_from_json(const JsonValue& value);

/// Rebuilds a ScheduleSummary from to_json(ScheduleSummary) output.
sched::ScheduleSummary schedule_summary_from_json(const JsonValue& value);

}  // namespace hetero::io
