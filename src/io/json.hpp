// Minimal JSON emission for machine-readable experiment output.
//
// Only a writer (no parser): benches and the CLI dump measure reports that
// downstream notebooks/scripts can consume without screen-scraping the
// console tables.
#pragma once

#include <string>

#include "core/etc_matrix.hpp"
#include "core/measures.hpp"

namespace hetero::io {

/// Escapes a string for inclusion in JSON (quotes, backslashes, control
/// characters).
std::string json_escape(const std::string& s);

/// Renders a double as JSON (finite -> shortest round-trip decimal;
/// infinities/NaN -> null, since JSON has no representation for them).
std::string json_number(double value);

/// {"mph": ..., "tdh": ..., "tma": ...}
std::string to_json(const core::MeasureSet& measures);

/// Full environment report including per-machine/per-task vectors, the
/// alternative measures, and the standard-form diagnostics.
std::string to_json(const core::EnvironmentReport& report,
                    const core::EcsMatrix& ecs);

/// ETC matrix with labels; "cannot run" entries serialize as null.
std::string to_json(const core::EtcMatrix& etc);

}  // namespace hetero::io
