#include "io/table.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>
#include <utility>

#include "base/error.hpp"

namespace hetero::io {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  detail::require_value(!header_.empty(), "Table: empty header");
}

void Table::add_row(std::vector<std::string> row) {
  detail::require_dims(row.size() == header_.size(),
                       "Table::add_row: arity mismatch");
  rows_.push_back(std::move(row));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << row[c];
      os << std::string(width[c] - row[c].size(), ' ');
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c)
    total += width[c] + (c == 0 ? 0 : 2);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string format_fixed(double value, int decimals) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(decimals);
  os << value;
  return std::move(os).str();
}

std::string format_general(double value, int significant) {
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  std::ostringstream os;
  os.precision(significant);
  os << value;
  return std::move(os).str();
}

void print_matrix(std::ostream& os, const linalg::Matrix& m,
                  const std::vector<std::string>& row_labels,
                  const std::vector<std::string>& col_labels,
                  int decimals) {
  detail::require_dims(row_labels.size() == m.rows() &&
                           col_labels.size() == m.cols(),
                       "print_matrix: label count mismatch");
  std::vector<std::string> header{""};
  header.insert(header.end(), col_labels.begin(), col_labels.end());
  Table t(std::move(header));
  for (std::size_t i = 0; i < m.rows(); ++i) {
    std::vector<std::string> row{row_labels[i]};
    for (std::size_t j = 0; j < m.cols(); ++j) {
      const double v = m(i, j);
      row.push_back(std::isinf(v) ? "inf" : format_fixed(v, decimals));
    }
    t.add_row(std::move(row));
  }
  t.print(os);
}

void print_etc(std::ostream& os, const core::EtcMatrix& etc, int decimals) {
  print_matrix(os, etc.values(), etc.task_names(), etc.machine_names(),
               decimals);
}

void print_ecs(std::ostream& os, const core::EcsMatrix& ecs, int decimals) {
  print_matrix(os, ecs.values(), ecs.task_names(), ecs.machine_names(),
               decimals);
}

}  // namespace hetero::io
