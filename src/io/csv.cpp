#include "io/csv.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <vector>

#include "base/error.hpp"

namespace hetero::io {
namespace {

std::string trim(const std::string& s) {
  const auto notspace = [](unsigned char c) { return !std::isspace(c); };
  const auto b = std::find_if(s.begin(), s.end(), notspace);
  const auto e = std::find_if(s.rbegin(), s.rend(), notspace).base();
  return b < e ? std::string(b, e) : std::string();
}

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::istringstream ss(line);
  while (std::getline(ss, cell, ',')) cells.push_back(trim(cell));
  if (!line.empty() && line.back() == ',') cells.emplace_back();
  return cells;
}

bool parse_double(const std::string& s, double& out) {
  std::string lower = s;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "inf" || lower == "+inf" || lower == "infinity") {
    out = std::numeric_limits<double>::infinity();
    return true;
  }
  const char* first = s.data();
  const char* last = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc{} && ptr == last;
}

}  // namespace

core::EtcMatrix read_etc_csv(std::istream& in) {
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (trim(line).empty()) continue;
    rows.push_back(split_csv_line(line));
  }
  detail::require_value(!rows.empty(), "read_etc_csv: empty input");

  // A header is present when the first row's second cell is not numeric.
  double probe = 0.0;
  const bool has_header =
      rows.front().size() >= 2 && !parse_double(rows.front()[1], probe);

  std::vector<std::string> machine_names;
  std::size_t first_data_row = 0;
  if (has_header) {
    machine_names.assign(rows.front().begin() + 1, rows.front().end());
    first_data_row = 1;
    detail::require_value(rows.size() > 1, "read_etc_csv: header but no data");
  }

  // A label column is present when the first data cell is not numeric.
  const bool has_labels =
      !rows[first_data_row].empty() &&
      !parse_double(rows[first_data_row][0], probe);
  const std::size_t col_offset = has_labels ? 1 : 0;
  const std::size_t machine_count = rows[first_data_row].size() - col_offset;
  detail::require_value(machine_count > 0, "read_etc_csv: no machine columns");
  detail::require_value(
      machine_names.empty() || machine_names.size() == machine_count,
      "read_etc_csv: header width does not match data width");

  const std::size_t task_count = rows.size() - first_data_row;
  linalg::Matrix values(task_count, machine_count);
  std::vector<std::string> task_names;
  for (std::size_t r = first_data_row; r < rows.size(); ++r) {
    const auto& cells = rows[r];
    detail::require_value(cells.size() == machine_count + col_offset,
                          "read_etc_csv: ragged row");
    if (has_labels) task_names.push_back(cells[0]);
    for (std::size_t j = 0; j < machine_count; ++j) {
      double v = 0.0;
      detail::require_value(parse_double(cells[j + col_offset], v),
                            "read_etc_csv: non-numeric cell '" +
                                cells[j + col_offset] + "'");
      values(r - first_data_row, j) = v;
    }
  }
  return core::EtcMatrix(std::move(values), std::move(task_names),
                         std::move(machine_names));
}

core::EtcMatrix read_etc_csv_string(const std::string& text) {
  std::istringstream in(text);
  return read_etc_csv(in);
}

core::EtcMatrix read_etc_csv_file(const std::string& path) {
  std::ifstream in(path);
  detail::require_value(in.good(), "read_etc_csv_file: cannot open " + path);
  return read_etc_csv(in);
}

void write_etc_csv(std::ostream& out, const core::EtcMatrix& etc) {
  out << "task";
  for (const auto& m : etc.machine_names()) out << ',' << m;
  out << '\n';
  out.precision(17);
  for (std::size_t i = 0; i < etc.task_count(); ++i) {
    out << etc.task_names()[i];
    for (std::size_t j = 0; j < etc.machine_count(); ++j) {
      const double v = etc(i, j);
      if (std::isinf(v))
        out << ",inf";
      else
        out << ',' << v;
    }
    out << '\n';
  }
}

std::string write_etc_csv_string(const core::EtcMatrix& etc) {
  std::ostringstream out;
  write_etc_csv(out, etc);
  return out.str();
}

}  // namespace hetero::io
