// Matrix Market (array format) import/export for ETC matrices.
//
// The NIST Matrix Market "array" format is the lingua franca of dense
// matrix exchange in scientific tooling; emitting it lets generated
// environments flow into MATLAB/SciPy/Julia analyses without custom
// parsing. Labels do not fit the format and are carried in comment lines
// (%%task / %%machine), which this reader also understands.
#pragma once

#include <iosfwd>
#include <string>

#include "core/etc_matrix.hpp"

namespace hetero::io {

/// Writes "%%MatrixMarket matrix array real general" with the runtimes in
/// column-major order (the format's requirement); +inf entries are written
/// as "inf". Labels are embedded as %%task/%%machine comments.
void write_etc_matrix_market(std::ostream& out, const core::EtcMatrix& etc);

std::string write_etc_matrix_market_string(const core::EtcMatrix& etc);

/// Reads the array format back (labels restored from the comments when
/// present). Throws ValueError on malformed input or non-array headers.
core::EtcMatrix read_etc_matrix_market(std::istream& in);

core::EtcMatrix read_etc_matrix_market_string(const std::string& text);

}  // namespace hetero::io
