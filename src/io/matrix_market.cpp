#include "io/matrix_market.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <limits>
#include <sstream>
#include <vector>

#include "base/error.hpp"

namespace hetero::io {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

bool parse_value(const std::string& token, double& out) {
  std::string lower = token;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "inf" || lower == "+inf" || lower == "infinity") {
    out = kInf;
    return true;
  }
  const char* first = token.data();
  const char* last = token.data() + token.size();
  const auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc{} && ptr == last;
}

std::vector<std::string> split_ws(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream ss(line);
  std::string tok;
  while (ss >> tok) tokens.push_back(tok);
  return tokens;
}

}  // namespace

void write_etc_matrix_market(std::ostream& out, const core::EtcMatrix& etc) {
  out << "%%MatrixMarket matrix array real general\n";
  for (const auto& t : etc.task_names()) out << "%%task " << t << '\n';
  for (const auto& m : etc.machine_names()) out << "%%machine " << m << '\n';
  out << etc.task_count() << ' ' << etc.machine_count() << '\n';
  out.precision(17);
  // Array format is column-major.
  for (std::size_t j = 0; j < etc.machine_count(); ++j)
    for (std::size_t i = 0; i < etc.task_count(); ++i) {
      const double v = etc(i, j);
      if (std::isinf(v))
        out << "inf\n";
      else
        out << v << '\n';
    }
}

std::string write_etc_matrix_market_string(const core::EtcMatrix& etc) {
  std::ostringstream out;
  write_etc_matrix_market(out, etc);
  return out.str();
}

core::EtcMatrix read_etc_matrix_market(std::istream& in) {
  std::string line;
  detail::require_value(static_cast<bool>(std::getline(in, line)),
                        "matrix_market: empty input");
  {
    std::string header = line;
    std::transform(header.begin(), header.end(), header.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    detail::require_value(
        header.rfind("%%matrixmarket", 0) == 0 &&
            header.find("array") != std::string::npos &&
            header.find("real") != std::string::npos,
        "matrix_market: expected '%%MatrixMarket matrix array real ...'");
  }

  std::vector<std::string> task_names, machine_names;
  std::size_t rows = 0, cols = 0;
  bool have_dims = false;
  std::vector<double> values;

  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '%') {
      if (line.rfind("%%task ", 0) == 0) task_names.push_back(line.substr(7));
      if (line.rfind("%%machine ", 0) == 0)
        machine_names.push_back(line.substr(10));
      continue;
    }
    const auto tokens = split_ws(line);
    if (!have_dims) {
      detail::require_value(tokens.size() == 2,
                            "matrix_market: expected 'rows cols' size line");
      double r = 0, c = 0;
      detail::require_value(parse_value(tokens[0], r) &&
                                parse_value(tokens[1], c) && r > 0 && c > 0,
                            "matrix_market: bad dimensions");
      rows = static_cast<std::size_t>(r);
      cols = static_cast<std::size_t>(c);
      have_dims = true;
      values.reserve(rows * cols);
      continue;
    }
    for (const auto& tok : tokens) {
      double v = 0.0;
      detail::require_value(parse_value(tok, v),
                            "matrix_market: non-numeric entry '" + tok + "'");
      values.push_back(v);
    }
  }
  detail::require_value(have_dims, "matrix_market: missing size line");
  detail::require_value(values.size() == rows * cols,
                        "matrix_market: entry count does not match size");

  // Column-major -> row-major.
  linalg::Matrix m(rows, cols);
  for (std::size_t j = 0; j < cols; ++j)
    for (std::size_t i = 0; i < rows; ++i) m(i, j) = values[j * rows + i];
  if (!task_names.empty())
    detail::require_value(task_names.size() == rows,
                          "matrix_market: %%task count mismatch");
  if (!machine_names.empty())
    detail::require_value(machine_names.size() == cols,
                          "matrix_market: %%machine count mismatch");
  return core::EtcMatrix(std::move(m), std::move(task_names),
                         std::move(machine_names));
}

core::EtcMatrix read_etc_matrix_market_string(const std::string& text) {
  std::istringstream in(text);
  return read_etc_matrix_market(in);
}

}  // namespace hetero::io
