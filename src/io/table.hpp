// Fixed-width console tables for the figure reproducers and examples.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/etc_matrix.hpp"
#include "linalg/matrix.hpp"

namespace hetero::io {

/// Simple fixed-width table: set a header, append rows, print. Column
/// widths adapt to content. Numeric cells should be pre-formatted by the
/// caller (see format_fixed below).
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Renders with a rule under the header.
  void print(std::ostream& os) const;

  std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-point formatting with the given number of decimals ("0.82").
std::string format_fixed(double value, int decimals = 2);

/// Scientific-ish compact formatting for wide-range values.
std::string format_general(double value, int significant = 4);

/// Prints a labeled ETC/ECS matrix (header row of machine names, label
/// column of task names) with the given decimals.
void print_matrix(std::ostream& os, const linalg::Matrix& m,
                  const std::vector<std::string>& row_labels,
                  const std::vector<std::string>& col_labels,
                  int decimals = 2);

void print_etc(std::ostream& os, const core::EtcMatrix& etc, int decimals = 1);
void print_ecs(std::ostream& os, const core::EcsMatrix& ecs, int decimals = 4);

}  // namespace hetero::io
