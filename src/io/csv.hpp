// CSV import/export for ETC matrices.
//
// Format: first row = header with a corner label followed by machine names;
// each following row = task name followed by runtimes. The literal "inf"
// (case-insensitive) marks a task type a machine cannot run. Plain numeric
// matrices without headers are also accepted (labels auto-generated).
#pragma once

#include <iosfwd>
#include <string>

#include "core/etc_matrix.hpp"

namespace hetero::io {

/// Parses an ETC matrix from CSV text. Throws ValueError on malformed
/// input (ragged rows, non-numeric cells, empty payload).
core::EtcMatrix read_etc_csv(std::istream& in);

/// Parses from a string (convenience for tests and embedded data).
core::EtcMatrix read_etc_csv_string(const std::string& text);

/// Reads a file; throws ValueError when the file cannot be opened.
core::EtcMatrix read_etc_csv_file(const std::string& path);

/// Writes an ETC matrix with header row and task-name column.
void write_etc_csv(std::ostream& out, const core::EtcMatrix& etc);

/// Serializes to a string.
std::string write_etc_csv_string(const core::EtcMatrix& etc);

}  // namespace hetero::io
