#include "io/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <utility>

#include "base/error.hpp"

namespace hetero::io {
namespace {

void append_number_array(std::ostringstream& os,
                         const std::vector<double>& values) {
  os << '[';
  for (std::size_t i = 0; i < values.size(); ++i)
    os << (i ? "," : "") << json_number(values[i]);
  os << ']';
}

void append_string_array(std::ostringstream& os,
                         const std::vector<std::string>& values) {
  os << '[';
  for (std::size_t i = 0; i < values.size(); ++i)
    os << (i ? "," : "") << '"' << json_escape(values[i]) << '"';
  os << ']';
}

void append_index_array(std::ostringstream& os,
                        const std::vector<std::size_t>& values) {
  os << '[';
  for (std::size_t i = 0; i < values.size(); ++i)
    os << (i ? "," : "") << values[i];
  os << ']';
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

std::string to_json(const core::MeasureSet& measures) {
  std::ostringstream os;
  os << "{\"mph\":" << json_number(measures.mph)
     << ",\"tdh\":" << json_number(measures.tdh)
     << ",\"tma\":" << json_number(measures.tma) << '}';
  return std::move(os).str();
}

std::string to_json(const core::EnvironmentReport& report,
                    const core::EcsMatrix& ecs) {
  std::ostringstream os;
  os << "{\"measures\":" << to_json(report.measures);
  os << ",\"alternatives\":{\"ratio\":" << json_number(report.mph_alt_ratio)
     << ",\"geometric\":" << json_number(report.mph_alt_geometric)
     << ",\"cov\":" << json_number(report.mph_alt_cov) << '}';
  os << ",\"machines\":";
  append_string_array(os, ecs.machine_names());
  os << ",\"machine_performances\":";
  append_number_array(os, report.machine_performances);
  os << ",\"tasks\":";
  append_string_array(os, ecs.task_names());
  os << ",\"task_difficulties\":";
  append_number_array(os, report.task_difficulties);
  const auto& sf = report.tma_detail.standard_form;
  os << ",\"tma_detail\":{\"used_standard_form\":"
     << (report.tma_detail.used_standard_form ? "true" : "false")
     << ",\"used_blocked_path\":"
     << (report.tma_detail.used_blocked_path ? "true" : "false")
     << ",\"singular_values\":";
  append_number_array(os, report.tma_detail.singular_values);
  os << ",\"sinkhorn_iterations\":" << sf.iterations
     << ",\"converged\":" << (sf.converged ? "true" : "false")
     << ",\"residual\":" << json_number(sf.residual) << "}}";
  return std::move(os).str();
}

std::string to_json(const core::EtcMatrix& etc) {
  std::ostringstream os;
  os << "{\"tasks\":";
  append_string_array(os, etc.task_names());
  os << ",\"machines\":";
  append_string_array(os, etc.machine_names());
  os << ",\"etc\":[";
  for (std::size_t i = 0; i < etc.task_count(); ++i) {
    os << (i ? "," : "") << '[';
    for (std::size_t j = 0; j < etc.machine_count(); ++j)
      os << (j ? "," : "") << json_number(etc(i, j));
    os << ']';
  }
  os << "]}";
  return std::move(os).str();
}

std::string to_json(const sched::ScheduleSummary& summary) {
  std::ostringstream os;
  os << "{\"heuristic\":\"" << json_escape(summary.heuristic)
     << "\",\"makespan\":" << json_number(summary.makespan)
     << ",\"assignment\":";
  append_index_array(os, summary.assignment);
  os << ",\"machine_loads\":";
  append_number_array(os, summary.machine_loads);
  os << '}';
  return std::move(os).str();
}

// ---------------------------------------------------------------------------
// JsonValue.

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::boolean;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::make_number(double n) {
  JsonValue v;
  v.kind_ = Kind::number;
  v.number_ = n;
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::string;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_array(Array a) {
  JsonValue v;
  v.kind_ = Kind::array;
  v.array_ = std::move(a);
  return v;
}

JsonValue JsonValue::make_object(Object o) {
  JsonValue v;
  v.kind_ = Kind::object;
  v.object_ = std::move(o);
  return v;
}

bool JsonValue::as_bool() const {
  detail::require_value(is_bool(), "json: value is not a boolean");
  return bool_;
}

double JsonValue::as_number() const {
  detail::require_value(is_number(), "json: value is not a number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  detail::require_value(is_string(), "json: value is not a string");
  return string_;
}

const JsonValue::Array& JsonValue::as_array() const {
  detail::require_value(is_array(), "json: value is not an array");
  return array_;
}

const JsonValue::Object& JsonValue::as_object() const {
  detail::require_value(is_object(), "json: value is not an object");
  return object_;
}

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : object_)
    if (k == key) return &v;
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* v = find(key);
  detail::require_value(v != nullptr,
                        "json: missing object member \"" + std::string(key) +
                            "\"");
  return *v;
}

// ---------------------------------------------------------------------------
// Recursive-descent parser.

namespace {

constexpr int kMaxDepth = 128;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value(0);
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw ValueError("json parse error at byte " + std::to_string(pos_) +
                     ": " + what);
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_whitespace();
    switch (peek()) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return JsonValue::make_string(parse_string());
      case 't':
        if (!consume_literal("true")) fail("invalid literal");
        return JsonValue::make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("invalid literal");
        return JsonValue::make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("invalid literal");
        return JsonValue::make_null();
      default: return JsonValue::make_number(parse_number());
    }
  }

  JsonValue parse_object(int depth) {
    expect('{');
    JsonValue::Object members;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return JsonValue::make_object(std::move(members));
    }
    while (true) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      members.emplace_back(std::move(key), parse_value(depth + 1));
      skip_whitespace();
      const char c = peek();
      ++pos_;
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}' in object");
    }
    return JsonValue::make_object(std::move(members));
  }

  JsonValue parse_array(int depth) {
    expect('[');
    JsonValue::Array elements;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return JsonValue::make_array(std::move(elements));
    }
    while (true) {
      elements.push_back(parse_value(depth + 1));
      skip_whitespace();
      const char c = peek();
      ++pos_;
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']' in array");
    }
    return JsonValue::make_array(std::move(elements));
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') code |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') code |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') code |= static_cast<unsigned>(c - 'A' + 10);
      else fail("invalid hex digit in \\u escape");
    }
    return code;
  }

  void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("unescaped control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("truncated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: must be followed by \uDC00..\uDFFF.
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u')
              fail("lone high surrogate");
            pos_ += 2;
            const unsigned lo = parse_hex4();
            if (lo < 0xDC00 || lo > 0xDFFF) fail("invalid low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("lone low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: fail("invalid escape character");
      }
    }
    return out;
  }

  double parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    const auto digits = [&] {
      std::size_t n = 0;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        ++n;
      }
      return n;
    };
    const std::size_t int_start = pos_;
    if (digits() == 0) fail("invalid number");
    // JSON forbids leading zeros: "01" is two tokens, not a number.
    if (text_[int_start] == '0' && pos_ - int_start > 1)
      fail("leading zeros are not allowed");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) fail("digits required after decimal point");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      if (digits() == 0) fail("digits required in exponent");
    }
    // The token is a valid JSON number; strtod needs NUL termination, so
    // copy it out (numbers are short).
    char buf[64];
    const std::size_t len = pos_ - start;
    if (len >= sizeof buf) fail("number token too long");
    text_.copy(buf, len, start);
    buf[len] = '\0';
    return std::strtod(buf, nullptr);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void append_json(std::ostringstream& os, const JsonValue& v) {
  switch (v.kind()) {
    case JsonValue::Kind::null: os << "null"; break;
    case JsonValue::Kind::boolean: os << (v.as_bool() ? "true" : "false"); break;
    case JsonValue::Kind::number: os << json_number(v.as_number()); break;
    case JsonValue::Kind::string:
      os << '"' << json_escape(v.as_string()) << '"';
      break;
    case JsonValue::Kind::array: {
      os << '[';
      const auto& a = v.as_array();
      for (std::size_t i = 0; i < a.size(); ++i) {
        if (i) os << ',';
        append_json(os, a[i]);
      }
      os << ']';
      break;
    }
    case JsonValue::Kind::object: {
      os << '{';
      const auto& o = v.as_object();
      for (std::size_t i = 0; i < o.size(); ++i) {
        if (i) os << ',';
        os << '"' << json_escape(o[i].first) << "\":";
        append_json(os, o[i].second);
      }
      os << '}';
      break;
    }
  }
}

std::vector<std::string> string_array(const JsonValue& v, const char* what) {
  std::vector<std::string> out;
  detail::require_value(v.is_array(), what);
  out.reserve(v.as_array().size());
  for (const auto& e : v.as_array()) out.push_back(e.as_string());
  return out;
}

}  // namespace

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

std::string to_json(const JsonValue& value) {
  std::ostringstream os;
  append_json(os, value);
  return std::move(os).str();
}

core::EtcMatrix etc_from_json(const JsonValue& value) {
  const JsonValue* rows = &value;
  std::vector<std::string> task_names, machine_names;
  if (value.is_object()) {
    rows = &value.at("etc");
    if (const JsonValue* t = value.find("tasks"))
      task_names = string_array(*t, "json etc: \"tasks\" must be an array");
    if (const JsonValue* m = value.find("machines"))
      machine_names =
          string_array(*m, "json etc: \"machines\" must be an array");
  }
  detail::require_value(rows->is_array() && !rows->as_array().empty(),
                        "json etc: expected a non-empty array of rows");
  const auto& r = rows->as_array();
  const std::size_t cols =
      r.front().is_array() ? r.front().as_array().size() : 0;
  detail::require_value(cols > 0, "json etc: rows must be non-empty arrays");
  linalg::Matrix values(r.size(), cols);
  for (std::size_t i = 0; i < r.size(); ++i) {
    const auto& row = r[i].as_array();
    detail::require_dims(row.size() == cols, "json etc: ragged rows");
    for (std::size_t j = 0; j < cols; ++j)
      // The writer's NaN/infinity policy: a null entry is "cannot run".
      values(i, j) = row[j].is_null()
                         ? std::numeric_limits<double>::infinity()
                         : row[j].as_number();
  }
  return core::EtcMatrix(std::move(values), std::move(task_names),
                         std::move(machine_names));
}

LineFramer::LineFramer(std::size_t max_frame_bytes)
    : max_frame_bytes_(max_frame_bytes) {}

void LineFramer::feed(std::string_view bytes) {
  // Compact before growing: once the consumed prefix dominates the buffer,
  // shifting the live tail down keeps memory proportional to the unframed
  // remainder instead of the whole stream.
  if (start_ > 0 && start_ >= buffer_.size() / 2) {
    buffer_.erase(0, start_);
    scan_ -= start_;
    start_ = 0;
  }
  if (discarding_) {
    // Only the resync newline matters; nothing before it is kept.
    const std::size_t nl = bytes.find('\n');
    if (nl == std::string_view::npos) return;
    discarding_ = false;
    pending_oversized_ = true;  // report the truncated frame exactly once
    bytes.remove_prefix(nl + 1);
  }
  buffer_.append(bytes);
}

std::optional<LineFramer::Frame> LineFramer::next() {
  if (pending_oversized_) {
    // The discard-mode line just resynchronized; deliver its truncated
    // head (saved when the cap tripped) exactly once.
    pending_oversized_ = false;
    Frame f;
    f.oversized = true;
    f.line = std::move(oversize_head_);
    oversize_head_.clear();
    return f;
  }
  const std::size_t nl = buffer_.find('\n', scan_);
  if (nl == std::string::npos) {
    scan_ = buffer_.size();
    if (max_frame_bytes_ > 0 && buffer_.size() - start_ > max_frame_bytes_) {
      // Cap exceeded mid-line: keep a truncated head for the error reply,
      // drop the rest until the stream resynchronizes on a newline.
      oversize_head_ = buffer_.substr(start_, max_frame_bytes_);
      buffer_.erase(start_);
      scan_ = buffer_.size();
      discarding_ = true;
    }
    return std::nullopt;
  }
  Frame f;
  f.line = buffer_.substr(start_, nl - start_);
  start_ = nl + 1;
  scan_ = start_;
  if (max_frame_bytes_ > 0 && f.line.size() > max_frame_bytes_) {
    // The whole line arrived in-buffer before the cap check ran (one big
    // feed); flag it oversized and truncate like the streaming path.
    f.line.resize(max_frame_bytes_);
    f.oversized = true;
  }
  return f;
}

namespace {

std::size_t index_from_json(const JsonValue& v, const char* what) {
  detail::require_value(v.is_number(), what);
  const double n = v.as_number();
  detail::require_value(n >= 0 && n == std::floor(n) && n <= 1e15, what);
  return static_cast<std::size_t>(n);
}

}  // namespace

std::vector<CellUpdate> cell_updates_from_json(const JsonValue& value,
                                               std::string_view value_key) {
  detail::require_value(value.is_array(),
                        "delta: cell list must be an array");
  std::vector<CellUpdate> out;
  out.reserve(value.as_array().size());
  for (const JsonValue& cell : value.as_array()) {
    detail::require_value(cell.is_object(),
                          "delta: each cell must be an object");
    CellUpdate u;
    u.task = index_from_json(cell.at("task"),
                             "delta: \"task\" must be a nonnegative integer");
    u.machine = index_from_json(
        cell.at("machine"), "delta: \"machine\" must be a nonnegative integer");
    const JsonValue& v = cell.at(value_key);
    detail::require_value(v.is_number(),
                          "delta: cell value must be a number");
    u.value = v.as_number();
    out.push_back(u);
  }
  return out;
}

std::vector<std::vector<double>> number_lists_from_json(
    const JsonValue& value) {
  detail::require_value(value.is_array(),
                        "delta: expected an array of numeric arrays");
  std::vector<std::vector<double>> out;
  out.reserve(value.as_array().size());
  for (const JsonValue& row : value.as_array()) {
    detail::require_value(row.is_array(),
                          "delta: expected an array of numeric arrays");
    std::vector<double> numbers;
    numbers.reserve(row.as_array().size());
    for (const JsonValue& n : row.as_array()) {
      detail::require_value(n.is_number(),
                            "delta: entries must be numbers (null is not "
                            "allowed in streaming deltas)");
      numbers.push_back(n.as_number());
    }
    out.push_back(std::move(numbers));
  }
  return out;
}

std::vector<std::size_t> index_list_from_json(const JsonValue& value) {
  detail::require_value(value.is_array(),
                        "delta: expected an array of indices");
  std::vector<std::size_t> out;
  out.reserve(value.as_array().size());
  for (const JsonValue& v : value.as_array())
    out.push_back(
        index_from_json(v, "delta: indices must be nonnegative integers"));
  return out;
}

core::MeasureSet measure_set_from_json(const JsonValue& value) {
  // Null is the writer's encoding for a non-finite measure (NaN policy);
  // surface it as NaN rather than failing the read.
  const auto number = [](const JsonValue& v) {
    return v.is_null() ? std::numeric_limits<double>::quiet_NaN()
                       : v.as_number();
  };
  core::MeasureSet m;
  m.mph = number(value.at("mph"));
  m.tdh = number(value.at("tdh"));
  m.tma = number(value.at("tma"));
  return m;
}

sched::ScheduleSummary schedule_summary_from_json(const JsonValue& value) {
  sched::ScheduleSummary s;
  s.heuristic = value.at("heuristic").as_string();
  s.makespan = value.at("makespan").is_null()
                   ? std::numeric_limits<double>::infinity()
                   : value.at("makespan").as_number();
  for (const auto& e : value.at("assignment").as_array())
    s.assignment.push_back(static_cast<std::size_t>(e.as_number()));
  // A load of null is an incapable assignment serialized under the
  // NaN/infinity policy; map it back to +infinity like the ETC reader.
  for (const auto& e : value.at("machine_loads").as_array())
    s.machine_loads.push_back(e.is_null()
                                  ? std::numeric_limits<double>::infinity()
                                  : e.as_number());
  return s;
}

}  // namespace hetero::io
