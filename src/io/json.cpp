#include "io/json.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace hetero::io {
namespace {

void append_number_array(std::ostringstream& os,
                         const std::vector<double>& values) {
  os << '[';
  for (std::size_t i = 0; i < values.size(); ++i)
    os << (i ? "," : "") << json_number(values[i]);
  os << ']';
}

void append_string_array(std::ostringstream& os,
                         const std::vector<std::string>& values) {
  os << '[';
  for (std::size_t i = 0; i < values.size(); ++i)
    os << (i ? "," : "") << '"' << json_escape(values[i]) << '"';
  os << ']';
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

std::string to_json(const core::MeasureSet& measures) {
  std::ostringstream os;
  os << "{\"mph\":" << json_number(measures.mph)
     << ",\"tdh\":" << json_number(measures.tdh)
     << ",\"tma\":" << json_number(measures.tma) << '}';
  return os.str();
}

std::string to_json(const core::EnvironmentReport& report,
                    const core::EcsMatrix& ecs) {
  std::ostringstream os;
  os << "{\"measures\":" << to_json(report.measures);
  os << ",\"alternatives\":{\"ratio\":" << json_number(report.mph_alt_ratio)
     << ",\"geometric\":" << json_number(report.mph_alt_geometric)
     << ",\"cov\":" << json_number(report.mph_alt_cov) << '}';
  os << ",\"machines\":";
  append_string_array(os, ecs.machine_names());
  os << ",\"machine_performances\":";
  append_number_array(os, report.machine_performances);
  os << ",\"tasks\":";
  append_string_array(os, ecs.task_names());
  os << ",\"task_difficulties\":";
  append_number_array(os, report.task_difficulties);
  const auto& sf = report.tma_detail.standard_form;
  os << ",\"tma_detail\":{\"used_standard_form\":"
     << (report.tma_detail.used_standard_form ? "true" : "false")
     << ",\"singular_values\":";
  append_number_array(os, report.tma_detail.singular_values);
  os << ",\"sinkhorn_iterations\":" << sf.iterations
     << ",\"converged\":" << (sf.converged ? "true" : "false")
     << ",\"residual\":" << json_number(sf.residual) << "}}";
  return os.str();
}

std::string to_json(const core::EtcMatrix& etc) {
  std::ostringstream os;
  os << "{\"tasks\":";
  append_string_array(os, etc.task_names());
  os << ",\"machines\":";
  append_string_array(os, etc.machine_names());
  os << ",\"etc\":[";
  for (std::size_t i = 0; i < etc.task_count(); ++i) {
    os << (i ? "," : "") << '[';
    for (std::size_t j = 0; j < etc.machine_count(); ++j)
      os << (j ? "," : "") << json_number(etc(i, j));
    os << ']';
  }
  os << "]}";
  return os.str();
}

}  // namespace hetero::io
