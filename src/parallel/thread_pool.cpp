#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

#include "base/error.hpp"

namespace hetero::par {

ThreadPool::ThreadPool(std::size_t thread_count) {
  if (thread_count == 0)
    thread_count = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(thread_count);
  for (std::size_t i = 0; i < thread_count; ++i)
    workers_.emplace_back(
        [this](const std::stop_token& stop) { worker_loop(stop); });
}

ThreadPool::~ThreadPool() {
  for (auto& w : workers_) w.request_stop();
  cv_.notify_all();
  // jthread destructors join; worker_loop drains the queue before exiting.
}

void ThreadPool::worker_loop(const std::stop_token& stop) {
  while (true) {
    std::function<void()> job;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, stop, [this] { return !queue_.empty(); });
      if (queue_.empty()) return;  // stop requested and no work left
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

ThreadPool& shared_pool() {
  static ThreadPool pool;
  return pool;
}

namespace {

// Shared state of one parallel_for call. Stack-allocated in the caller;
// helpers are joined (helpers_running reaches 0 under the mutex) before
// the caller returns, so no helper can outlive it.
struct ClaimState {
  std::atomic<std::size_t> next{0};
  std::size_t end = 0;
  std::size_t grain = 1;
  void (*body)(void*, std::size_t) = nullptr;
  void* ctx = nullptr;

  std::mutex mutex;
  std::condition_variable cv;
  std::size_t helpers_running = 0;
  std::size_t error_index = static_cast<std::size_t>(-1);
  std::exception_ptr error;

  // Claims and runs chunks until the range is exhausted. A throwing
  // iteration aborts its chunk but not the range; the failure with the
  // lowest iteration index is kept for the caller to rethrow.
  void run_chunks() {
    for (;;) {
      const std::size_t lo = next.fetch_add(grain, std::memory_order_relaxed);
      if (lo >= end) return;
      const std::size_t hi = std::min(end, lo + grain);
      std::size_t i = lo;
      try {
        for (; i < hi; ++i) body(ctx, i);
      } catch (...) {
        const std::scoped_lock lock(mutex);
        if (i < error_index) {
          error_index = i;
          error = std::current_exception();
        }
      }
    }
  }
};

}  // namespace

void detail::parallel_for_impl(ThreadPool& pool, std::size_t begin,
                               std::size_t end, std::size_t grain,
                               void (*body)(void*, std::size_t), void* ctx) {
  hetero::detail::require_value(grain > 0,
                                "parallel_for: grain must be positive");
  if (begin >= end) return;

  ClaimState state;
  state.next.store(begin, std::memory_order_relaxed);
  state.end = end;
  state.grain = grain;
  state.body = body;
  state.ctx = ctx;

  // The caller claims chunks too, so at most chunks - 1 helpers are useful.
  const std::size_t chunks = (end - begin + grain - 1) / grain;
  const std::size_t helpers = std::min(pool.thread_count(), chunks - 1);
  state.helpers_running = helpers;
  for (std::size_t w = 0; w < helpers; ++w) {
    pool.submit([&state] {
      state.run_chunks();
      const std::scoped_lock lock(state.mutex);
      if (--state.helpers_running == 0) state.cv.notify_all();
    });
  }

  state.run_chunks();
  if (helpers > 0) {
    std::unique_lock lock(state.mutex);
    state.cv.wait(lock, [&state] { return state.helpers_running == 0; });
  }
  if (state.error) std::rethrow_exception(state.error);
}

}  // namespace hetero::par
