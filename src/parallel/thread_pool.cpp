#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

#include "base/error.hpp"

namespace hetero::par {

ThreadPool::ThreadPool(std::size_t thread_count) {
  if (thread_count == 0)
    thread_count = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(thread_count);
  for (std::size_t i = 0; i < thread_count; ++i)
    workers_.emplace_back(
        [this](const std::stop_token& stop) { worker_loop(stop); });
}

ThreadPool::~ThreadPool() {
  {
    // Stop flags and the wakeup are published under the queue mutex: a
    // worker is either inside the locked predicate check (it will see the
    // flag) or waiting (it will get the notify), so no wakeup is missed.
    const support::MutexLock lock(mutex_);
    for (auto& w : workers_) w.request_stop();
    cv_.notify_all();
  }
  // jthread destructors join; worker_loop drains the queue before exiting.
}

void ThreadPool::worker_loop(const std::stop_token& stop) {
  while (true) {
    std::function<void()> job;
    {
      support::MutexLock lock(mutex_);
      while (queue_.empty() && !stop.stop_requested()) cv_.wait(lock);
      if (queue_.empty()) return;  // stop requested and no work left
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

ThreadPool& shared_pool() {
  static ThreadPool pool;
  return pool;
}

namespace {

// Shared state of one parallel_for call. Stack-allocated in the caller;
// helpers are joined (helpers_running reaches 0 under the mutex) before
// the caller returns, so no helper can outlive it.
struct ClaimState {
  std::atomic<std::size_t> next{0};
  std::size_t end = 0;
  std::size_t grain = 1;
  void (*body)(void*, std::size_t) = nullptr;
  void* ctx = nullptr;

  support::Mutex mutex{support::kRankParallelForState, "parallel-for-state"};
  support::CondVar cv;
  std::size_t helpers_running HETERO_GUARDED_BY(mutex) = 0;
  std::size_t error_index HETERO_GUARDED_BY(mutex) =
      static_cast<std::size_t>(-1);
  std::exception_ptr error HETERO_GUARDED_BY(mutex);

  // Claims and runs chunks until the range is exhausted. A throwing
  // iteration aborts its chunk but not the range; the failure with the
  // lowest iteration index is kept for the caller to rethrow.
  void run_chunks() {
    for (;;) {
      const std::size_t lo = next.fetch_add(grain, std::memory_order_relaxed);
      if (lo >= end) return;
      const std::size_t hi = std::min(end, lo + grain);
      std::size_t i = lo;
      try {
        for (; i < hi; ++i) body(ctx, i);
      } catch (...) {
        const support::MutexLock lock(mutex);
        if (i < error_index) {
          error_index = i;
          error = std::current_exception();
        }
      }
    }
  }

  // One helper's whole job; keeps guarded state out of the submit lambda.
  void run_as_helper() {
    run_chunks();
    const support::MutexLock lock(mutex);
    if (--helpers_running == 0) cv.notify_all();
  }

  void wait_helpers() {
    support::MutexLock lock(mutex);
    while (helpers_running != 0) cv.wait(lock);
  }
};

}  // namespace

void detail::parallel_for_impl(ThreadPool& pool, std::size_t begin,
                               std::size_t end, std::size_t grain,
                               void (*body)(void*, std::size_t), void* ctx) {
  hetero::detail::require_value(grain > 0,
                                "parallel_for: grain must be positive");
  if (begin >= end) return;

  ClaimState state;
  state.next.store(begin, std::memory_order_relaxed);
  state.end = end;
  state.grain = grain;
  state.body = body;
  state.ctx = ctx;

  // The caller claims chunks too, so at most chunks - 1 helpers are useful.
  const std::size_t chunks = (end - begin + grain - 1) / grain;
  const std::size_t helpers = std::min(pool.thread_count(), chunks - 1);
  {
    const support::MutexLock lock(state.mutex);
    state.helpers_running = helpers;
  }
  for (std::size_t w = 0; w < helpers; ++w)
    pool.submit([&state] { state.run_as_helper(); });

  state.run_chunks();
  if (helpers > 0) state.wait_helpers();
  // All helpers joined above, but the lock keeps the read inside the
  // guarded discipline (and publishes any helper's final store).
  std::exception_ptr error;
  {
    const support::MutexLock lock(state.mutex);
    error = std::move(state.error);
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace hetero::par
