#include "parallel/thread_pool.hpp"

#include <algorithm>

#include "base/error.hpp"

namespace hetero::par {

ThreadPool::ThreadPool(std::size_t thread_count) {
  if (thread_count == 0)
    thread_count = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(thread_count);
  for (std::size_t i = 0; i < thread_count; ++i)
    workers_.emplace_back(
        [this](const std::stop_token& stop) { worker_loop(stop); });
}

ThreadPool::~ThreadPool() {
  for (auto& w : workers_) w.request_stop();
  cv_.notify_all();
  // jthread destructors join; worker_loop drains the queue before exiting.
}

void ThreadPool::worker_loop(const std::stop_token& stop) {
  while (true) {
    std::function<void()> job;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, stop, [this] { return !queue_.empty(); });
      if (queue_.empty()) return;  // stop requested and no work left
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& f,
                  std::size_t grain) {
  detail::require_value(grain > 0, "parallel_for: grain must be positive");
  if (begin >= end) return;

  std::vector<std::future<void>> futures;
  futures.reserve((end - begin + grain - 1) / grain);
  for (std::size_t lo = begin; lo < end; lo += grain) {
    const std::size_t hi = std::min(end, lo + grain);
    futures.push_back(pool.submit([&f, lo, hi] {
      for (std::size_t i = lo; i < hi; ++i) f(i);
    }));
  }
  for (auto& fut : futures) fut.get();  // rethrows the first failure
}

}  // namespace hetero::par
