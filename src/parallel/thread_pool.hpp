// Minimal fixed-size thread pool (C++20, std::jthread).
//
// Used by the measure-targeted generator's annealing restarts and the
// Monte-Carlo benches. Follows the CppCoreGuidelines concurrency rules:
// joining threads (jthread), no detach, state shared only through the
// mutex-protected queue, exceptions surfaced to the waiter via futures.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

#include "support/lock_ranks.hpp"
#include "support/mutex.hpp"
#include "support/thread_annotations.hpp"

namespace hetero::par {

/// Fixed-size worker pool. Destruction drains outstanding work (submitted
/// tasks always run) and joins every worker.
class ThreadPool {
 public:
  /// Creates `thread_count` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t thread_count = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool();

  std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Enqueues a callable; the future delivers its result (or exception).
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F&>> {
    using R = std::invoke_result_t<F&>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      const support::MutexLock lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

 private:
  void worker_loop(const std::stop_token& stop);

  support::Mutex mutex_{support::kRankPoolQueue, "pool-queue"};
  support::CondVar cv_;
  std::deque<std::function<void()>> queue_ HETERO_GUARDED_BY(mutex_);
  std::vector<std::jthread> workers_;  // last member: joins before the rest die
};

/// Process-wide shared pool (hardware_concurrency workers), constructed
/// lazily on first use and joined at static destruction. The large-matrix
/// characterization paths fall back to it when the caller does not pass an
/// explicit pool; callers that want a bounded thread budget (or bitwise
/// reproduction of a specific run) construct their own ThreadPool and pass
/// it down instead — results are thread-count-invariant either way.
ThreadPool& shared_pool();

namespace detail {

/// Type-erased core of parallel_for: chunked atomic work claiming with no
/// per-chunk heap allocation. `body(ctx, i)` runs iteration i.
void parallel_for_impl(ThreadPool& pool, std::size_t begin, std::size_t end,
                       std::size_t grain, void (*body)(void*, std::size_t),
                       void* ctx);

}  // namespace detail

/// Runs f(i) for i in [begin, end) and blocks until all iterations finish.
///
/// Fast path: instead of enqueuing one heap-allocated closure per chunk,
/// the range is claimed in `grain`-sized chunks off a shared atomic
/// counter. At most thread_count() helper jobs are enqueued (each a single
/// small allocation), and the calling thread claims chunks too, so the
/// range completes even when the pool is busy. Exceptions from iterations
/// are collected and the one thrown by the lowest iteration index is
/// rethrown after the whole range has been attempted (iterations after a
/// throw within the same chunk are skipped, matching the pre-claiming
/// behavior).
template <typename F>
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  F&& f, std::size_t grain = 1) {
  using Fn = std::remove_reference_t<F>;
  detail::parallel_for_impl(
      pool, begin, end, grain,
      [](void* ctx, std::size_t i) { (*static_cast<Fn*>(ctx))(i); },
      const_cast<void*>(static_cast<const void*>(std::addressof(f))));
}

}  // namespace hetero::par
