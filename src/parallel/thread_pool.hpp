// Minimal fixed-size thread pool (C++20, std::jthread).
//
// Used by the measure-targeted generator's annealing restarts and the
// Monte-Carlo benches. Follows the CppCoreGuidelines concurrency rules:
// joining threads (jthread), no detach, state shared only through the
// mutex-protected queue, exceptions surfaced to the waiter via futures.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace hetero::par {

/// Fixed-size worker pool. Destruction drains outstanding work (submitted
/// tasks always run) and joins every worker.
class ThreadPool {
 public:
  /// Creates `thread_count` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t thread_count = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool();

  std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Enqueues a callable; the future delivers its result (or exception).
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F&>> {
    using R = std::invoke_result_t<F&>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      const std::scoped_lock lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

 private:
  void worker_loop(const std::stop_token& stop);

  std::mutex mutex_;
  std::condition_variable_any cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::jthread> workers_;  // last member: joins before the rest die
};

/// Runs f(i) for i in [begin, end) across the pool, blocking until all
/// iterations finish. Exceptions from any iteration are rethrown (first
/// one wins). `grain` iterations are handed to a worker at a time.
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& f,
                  std::size_t grain = 1);

}  // namespace hetero::par
