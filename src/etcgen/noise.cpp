#include "etcgen/noise.hpp"

#include <cmath>
#include <limits>

#include "base/error.hpp"

namespace hetero::etcgen {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

template <typename FactorFn>
core::EtcMatrix perturb(const core::EtcMatrix& etc, FactorFn&& factor) {
  linalg::Matrix values = etc.values();
  for (double& x : values.data())
    if (std::isfinite(x)) x *= factor();
  return core::EtcMatrix(std::move(values), etc.task_names(),
                         etc.machine_names());
}

}  // namespace

core::EtcMatrix perturb_lognormal(const core::EtcMatrix& etc, double cov,
                                  Rng& rng) {
  detail::require_value(cov >= 0.0, "perturb_lognormal: cov must be >= 0");
  if (cov == 0.0) return etc;
  // Lognormal with sigma chosen so the COV matches: cov^2 = exp(sigma^2)-1.
  const double sigma = std::sqrt(std::log1p(cov * cov));
  return perturb(etc, [&] { return std::exp(normal(rng, 0.0, sigma)); });
}

core::EtcMatrix perturb_uniform(const core::EtcMatrix& etc, double spread,
                                Rng& rng) {
  detail::require_value(spread >= 0.0 && spread < 1.0,
                        "perturb_uniform: spread must be in [0, 1)");
  if (spread == 0.0) return etc;
  return perturb(etc, [&] { return uniform(rng, 1.0 - spread, 1.0 + spread); });
}

double sample_runtime_lognormal(double true_etc, double cov, Rng& rng) {
  detail::require_value(true_etc > 0.0 && std::isfinite(true_etc),
                        "sample_runtime_lognormal: true_etc must be positive "
                        "and finite");
  detail::require_value(cov >= 0.0,
                        "sample_runtime_lognormal: cov must be >= 0");
  if (cov == 0.0) return true_etc;
  const double sigma = std::sqrt(std::log1p(cov * cov));
  return true_etc * std::exp(normal(rng, 0.0, sigma));
}

core::EtcMatrix drop_capabilities(const core::EtcMatrix& etc, double p,
                                  Rng& rng) {
  detail::require_value(p >= 0.0 && p < 1.0,
                        "drop_capabilities: p must be in [0, 1)");
  linalg::Matrix values = etc.values();
  const std::size_t t = values.rows();
  const std::size_t m = values.cols();

  const auto finite_in_row = [&](std::size_t i) {
    std::size_t n = 0;
    for (std::size_t j = 0; j < m; ++j)
      if (std::isfinite(values(i, j))) ++n;
    return n;
  };
  const auto finite_in_col = [&](std::size_t j) {
    std::size_t n = 0;
    for (std::size_t i = 0; i < t; ++i)
      if (std::isfinite(values(i, j))) ++n;
    return n;
  };

  for (std::size_t i = 0; i < t; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      if (!std::isfinite(values(i, j))) continue;
      if (uniform(rng, 0.0, 1.0) >= p) continue;
      if (finite_in_row(i) <= 1 || finite_in_col(j) <= 1) continue;
      values(i, j) = kInf;
    }
  }
  return core::EtcMatrix(std::move(values), etc.task_names(),
                         etc.machine_names());
}

}  // namespace hetero::etcgen
