#include "etcgen/target_measures.hpp"

#include <algorithm>
#include <cmath>

#include "core/standard_form.hpp"
#include "linalg/svd.hpp"

namespace hetero::etcgen {
namespace {

using core::MeasureSet;
using linalg::Matrix;

// Sinkhorn budget for energy evaluations: positive matrices converge
// geometrically, so a modest cap keeps each evaluation cheap.
core::SinkhornOptions energy_sinkhorn() {
  core::SinkhornOptions o;
  o.tolerance = 1e-9;
  o.max_iterations = 500;
  return o;
}

double measure_error(const MeasureSet& a, const TargetMeasures& t) {
  return std::max({std::abs(a.mph - t.mph), std::abs(a.tdh - t.tdh),
                   std::abs(a.tma - t.tma)});
}

void validate(const TargetMeasures& target, const TargetGenOptions& options) {
  hetero::detail::require_value(
      options.tasks > 0 && options.machines > 0,
      "generate_with_measures: need tasks > 0, machines > 0");
  hetero::detail::require_value(
      target.mph > 0.0 && target.mph <= 1.0,
      "generate_with_measures: MPH target must be in (0, 1]");
  hetero::detail::require_value(
      target.tdh > 0.0 && target.tdh <= 1.0,
      "generate_with_measures: TDH target must be in (0, 1]");
  hetero::detail::require_value(
      target.tma >= 0.0 && target.tma < 1.0,
      "generate_with_measures: TMA target must be in [0, 1)");
  hetero::detail::require_value(
      target.tma == 0.0 || (options.tasks >= 2 && options.machines >= 2),
      "generate_with_measures: TMA > 0 needs at least 2 tasks and machines");
  hetero::detail::require_value(
      target.mph == 1.0 || options.machines >= 2,
      "generate_with_measures: MPH < 1 needs at least 2 machines");
  hetero::detail::require_value(
      target.tdh == 1.0 || options.tasks >= 2,
      "generate_with_measures: TDH < 1 needs at least 2 tasks");
  hetero::detail::require_value(options.scale > 0.0,
                                "generate_with_measures: scale must be > 0");
}

struct Attempt {
  Matrix matrix;
  MeasureSet achieved;
  double error = 0.0;
};

Attempt run_restart(const TargetMeasures& target,
                    const TargetGenOptions& options, std::uint64_t seed) {
  Rng rng = make_rng(seed);

  Matrix seed_matrix = rank1_seed(target, options.tasks, options.machines);

  // Inject a cyclic affinity pattern; the boost magnitude grows with the
  // TMA target and is polished by annealing afterwards.
  if (target.tma > 0.0) {
    const double boost = 4.0 * target.tma;
    for (std::size_t i = 0; i < seed_matrix.rows(); ++i)
      for (std::size_t j = 0; j < seed_matrix.cols(); ++j)
        if (i % seed_matrix.cols() == j)
          seed_matrix(i, j) *= 1.0 + boost;
  }
  // Small multiplicative jitter so restarts explore different basins.
  seed_matrix.transform([&](double x) {
    return x * std::exp(normal(rng, 0.0, 0.05));
  });

  const std::function<double(const Matrix&)> energy = [&](const Matrix& m) {
    return measure_error(measure_set_raw(m), target);
  };
  const std::function<Matrix(const Matrix&, double, Rng&)> neighbor =
      [](const Matrix& m, double temp, Rng& r) {
        Matrix out = m;
        // Step size tracks temperature: broad early, fine late.
        const double sigma = 0.02 + 0.5 * std::min(temp, 1.0);
        const std::size_t k = uniform_index(r, out.size());
        out.data()[k] *= std::exp(normal(r, 0.0, sigma));
        return out;
      };

  AnnealOptions anneal_opts;
  anneal_opts.iterations = options.anneal_iterations;
  anneal_opts.t0 = 0.05;
  anneal_opts.t1 = 1e-7;
  anneal_opts.target_energy = options.tolerance * 0.5;

  auto [best, best_e] =
      simulated_annealing<Matrix>(seed_matrix, energy, neighbor, anneal_opts, rng);

  Attempt a;
  a.achieved = measure_set_raw(best);
  a.error = measure_error(a.achieved, target);
  a.matrix = std::move(best);
  return a;
}

}  // namespace

MeasureSet measure_set_raw(const Matrix& ecs) {
  MeasureSet s;
  s.mph = core::adjacent_ratio_homogeneity(ecs.col_sums());
  s.tdh = core::adjacent_ratio_homogeneity(ecs.row_sums());
  const std::size_t r = std::min(ecs.rows(), ecs.cols());
  if (r == 1) {
    s.tma = 0.0;
    return s;
  }
  const auto sf = core::standardize(ecs, energy_sinkhorn());
  const auto sigma = linalg::singular_values(sf.standard);
  double acc = 0.0;
  for (std::size_t i = 1; i < sigma.size(); ++i) acc += sigma[i];
  s.tma = acc / static_cast<double>(sigma.size() - 1);
  return s;
}

Matrix rank1_seed(const TargetMeasures& target, std::size_t tasks,
                  std::size_t machines) {
  // Geometric profiles: adjacent ratios all equal the homogeneity target,
  // so the adjacent-ratio average equals it exactly; the outer product is
  // rank 1, so TMA = 0.
  std::vector<double> row_factor(tasks), col_factor(machines);
  for (std::size_t i = 0; i < tasks; ++i)
    row_factor[i] = std::pow(std::max(target.tdh, 1e-6),
                             static_cast<double>(tasks - 1 - i));
  for (std::size_t j = 0; j < machines; ++j)
    col_factor[j] = std::pow(std::max(target.mph, 1e-6),
                             static_cast<double>(machines - 1 - j));
  Matrix m(tasks, machines);
  for (std::size_t i = 0; i < tasks; ++i)
    for (std::size_t j = 0; j < machines; ++j)
      m(i, j) = row_factor[i] * col_factor[j];
  return m;
}

TargetGenResult generate_with_measures(const TargetMeasures& target,
                                       const TargetGenOptions& options) {
  validate(target, options);

  std::vector<Attempt> attempts(std::max<std::size_t>(1, options.restarts));
  const auto run = [&](std::size_t r) {
    attempts[r] = run_restart(target, options,
                              options.seed + 0x9e3779b97f4a7c15ULL * (r + 1));
  };
  if (options.pool != nullptr && attempts.size() > 1) {
    par::parallel_for(*options.pool, 0, attempts.size(), run);
  } else {
    for (std::size_t r = 0; r < attempts.size(); ++r) run(r);
  }

  auto best = std::min_element(
      attempts.begin(), attempts.end(),
      [](const Attempt& a, const Attempt& b) { return a.error < b.error; });
  if (best->error > options.tolerance)
    throw ConvergenceError(
        "generate_with_measures: no restart reached the tolerance (best "
        "error " +
        std::to_string(best->error) + ")");

  Matrix scaled = best->matrix;
  // Normalize the mean entry to `scale` (scale invariance of the measures).
  scaled *= options.scale * static_cast<double>(scaled.size()) /
            scaled.total();
  TargetGenResult result{core::EcsMatrix(std::move(scaled)), best->achieved,
                         best->error};
  return result;
}

}  // namespace hetero::etcgen
