#include "etcgen/target_measures.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/standard_form.hpp"
#include "linalg/jacobi_eigen.hpp"
#include "linalg/svd.hpp"

namespace hetero::etcgen {
namespace {

using core::MeasureSet;
using linalg::Matrix;

// Replaces one occurrence of `old_value` in the sorted vector `v` with
// `new_value`, keeping it sorted: one erase and one shifted insert, O(n)
// moves and no per-evaluation sort.
void replace_sorted(std::vector<double>& v, double old_value,
                    double new_value) {
  v.erase(std::lower_bound(v.begin(), v.end(), old_value));
  v.insert(std::upper_bound(v.begin(), v.end(), new_value), new_value);
}

double mean_nonmax_singular_value(std::span<const double> sigma) {
  if (sigma.size() <= 1) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 1; i < sigma.size(); ++i) acc += sigma[i];
  return acc / static_cast<double>(sigma.size() - 1);
}

// Sinkhorn budget for reported measures: positive matrices converge
// geometrically, so a modest cap keeps each evaluation cheap.
core::SinkhornOptions energy_sinkhorn() {
  core::SinkhornOptions o;
  o.tolerance = 1e-9;
  o.max_iterations = 500;
  return o;
}


double measure_error(const MeasureSet& a, const TargetMeasures& t) {
  return std::max({std::abs(a.mph - t.mph), std::abs(a.tdh - t.tdh),
                   std::abs(a.tma - t.tma)});
}

void validate(const TargetMeasures& target, const TargetGenOptions& options) {
  hetero::detail::require_value(
      options.tasks > 0 && options.machines > 0,
      "generate_with_measures: need tasks > 0, machines > 0");
  hetero::detail::require_value(
      target.mph > 0.0 && target.mph <= 1.0,
      "generate_with_measures: MPH target must be in (0, 1]");
  hetero::detail::require_value(
      target.tdh > 0.0 && target.tdh <= 1.0,
      "generate_with_measures: TDH target must be in (0, 1]");
  hetero::detail::require_value(
      target.tma >= 0.0 && target.tma < 1.0,
      "generate_with_measures: TMA target must be in [0, 1)");
  hetero::detail::require_value(
      target.tma == 0.0 || (options.tasks >= 2 && options.machines >= 2),
      "generate_with_measures: TMA > 0 needs at least 2 tasks and machines");
  hetero::detail::require_value(
      target.mph == 1.0 || options.machines >= 2,
      "generate_with_measures: MPH < 1 needs at least 2 machines");
  hetero::detail::require_value(
      target.tdh == 1.0 || options.tasks >= 2,
      "generate_with_measures: TDH < 1 needs at least 2 tasks");
  hetero::detail::require_value(options.scale > 0.0,
                                "generate_with_measures: scale must be > 0");
}

struct Attempt {
  Matrix matrix;
  MeasureSet achieved;
  double error = 0.0;
};

Attempt run_restart(const TargetMeasures& target,
                    const TargetGenOptions& options, std::uint64_t seed) {
  Rng rng = make_rng(seed);

  Matrix seed_matrix = rank1_seed(target, options.tasks, options.machines);

  // Inject a cyclic affinity pattern; the boost magnitude grows with the
  // TMA target and is polished by annealing afterwards.
  if (target.tma > 0.0) {
    const double boost = 4.0 * target.tma;
    for (std::size_t i = 0; i < seed_matrix.rows(); ++i)
      for (std::size_t j = 0; j < seed_matrix.cols(); ++j)
        if (i % seed_matrix.cols() == j)
          seed_matrix(i, j) *= 1.0 + boost;
  }
  // Small multiplicative jitter so restarts explore different basins.
  seed_matrix.transform([&](double x) {
    return x * std::exp(normal(rng, 0.0, 0.05));
  });

  AnnealOptions anneal_opts;
  anneal_opts.iterations = options.anneal_iterations;
  anneal_opts.t0 = 0.05;
  anneal_opts.t1 = 1e-7;
  anneal_opts.target_energy = options.tolerance * 0.5;

  // Metropolis loop over single-entry proposals. The incremental evaluator
  // keeps the candidate's measures cheap (no matrix copies, no sort, a
  // warm-started search-grade standardization, and a Gram-path SVD), which
  // is what makes the proposal chain thousands of evaluations long at
  // interactive speed.
  IncrementalMeasures inc(std::move(seed_matrix),
                          search_sinkhorn_options(options.tolerance));
  double current_e = measure_error(inc.current(), target);
  Matrix best = inc.matrix();
  double best_e = current_e;

  for (std::size_t it = 0; it < anneal_opts.iterations; ++it) {
    if (best_e <= anneal_opts.target_energy) break;
    const double temp = anneal_temperature(anneal_opts, it);
    // Step size tracks temperature: broad early, fine late.
    const double sigma = 0.02 + 0.5 * std::min(temp, 1.0);
    const std::size_t k = uniform_index(rng, inc.matrix().size());
    const double value =
        inc.matrix().data()[k] * std::exp(normal(rng, 0.0, sigma));
    const double cand_e = measure_error(inc.propose(k, value), target);
    const double delta = cand_e - current_e;
    if (delta <= 0.0 || uniform(rng, 0.0, 1.0) <
                            std::exp(-delta / std::max(temp, 1e-300))) {
      inc.accept();
      current_e = cand_e;
      if (current_e < best_e) {
        best = inc.matrix();
        best_e = current_e;
      }
    } else {
      inc.reject();
    }
  }

  Attempt a;
  a.achieved = measure_set_raw(best);
  a.error = measure_error(a.achieved, target);
  a.matrix = std::move(best);
  return a;
}

}  // namespace

core::SinkhornOptions search_sinkhorn_options(double generator_tolerance) {
  core::SinkhornOptions o;
  // Proposal energies only need a fraction of the acceptance tolerance:
  // standardize two orders tighter than the generator target, clamped so a
  // loose target never degrades below 1e-4 and a tight one never burns
  // iterations past 1e-8. A Sinkhorn residual of r perturbs TMA by O(r), so
  // the measurement bias stays well under the annealing energy scale; the
  // accepted matrix is always re-measured at full precision for reporting.
  o.tolerance = std::clamp(generator_tolerance * 1e-2, 1e-8, 1e-4);
  o.max_iterations = 500;
  return o;
}

MeasureSet measure_set_raw(const Matrix& ecs) {
  MeasureSet s;
  s.mph = core::adjacent_ratio_homogeneity(ecs.col_sums());
  s.tdh = core::adjacent_ratio_homogeneity(ecs.row_sums());
  const std::size_t r = std::min(ecs.rows(), ecs.cols());
  if (r == 1) {
    s.tma = 0.0;
    return s;
  }
  const auto sf = core::standardize(ecs, energy_sinkhorn());
  s.tma = mean_nonmax_singular_value(linalg::singular_values(sf.standard));
  return s;
}

IncrementalMeasures::IncrementalMeasures(Matrix matrix,
                                         core::SinkhornOptions sinkhorn)
    : matrix_(std::move(matrix)), sinkhorn_(std::move(sinkhorn)) {
  hetero::detail::require_value(!matrix_.empty() && matrix_.all_positive(),
                                "IncrementalMeasures: matrix must be "
                                "non-empty and strictly positive");
  sinkhorn_.warm_row_scale.clear();
  sinkhorn_.warm_col_scale.clear();
  const std::size_t mn = std::min(matrix_.rows(), matrix_.cols());
  gram_ = Matrix(mn, mn, 0.0);
  eigbasis_ = Matrix::identity(mn);
  rebuild();
}

MeasureSet IncrementalMeasures::evaluate() {
  MeasureSet s;
  s.mph = core::adjacent_ratio_homogeneity_sorted(sorted_col_sums_);
  s.tdh = core::adjacent_ratio_homogeneity_sorted(sorted_row_sums_);
  if (std::min(matrix_.rows(), matrix_.cols()) == 1) {
    s.tma = 0.0;
    pending_row_scale_.clear();
    pending_col_scale_.clear();
    return s;
  }
  // warm_*_scale_ hold the incumbent's scalings (empty on the first
  // evaluation): a cold start then, a re-convergence from a near-fixed-point
  // seed on single-entry proposals afterwards. The lean solver skips
  // validation/classification (the matrix is positive by construction) and
  // reuses sf_'s storage. TMA comes from the Gram path
  // (linalg::singular_values_gram semantics, allocation-free): ~1e-8
  // absolute accuracy at worst on tiny singular values — far below any
  // energy difference the annealing acceptance rule acts on.
  sinkhorn_.warm_row_scale = warm_row_scale_;
  sinkhorn_.warm_col_scale = warm_col_scale_;
  core::standardize_positive_into(matrix_, sinkhorn_, sf_);
  linalg::min_gram_into(sf_.standard, gram_);
  // Diagonalize the candidate's Gram in the incumbent's eigenbasis: a
  // single-entry proposal perturbs the Gram only slightly, so the congruence
  // B = V^T G V is already near-diagonal and the Jacobi cleanup converges in
  // one or two sweeps instead of a cold solve. The congruence is an exact
  // similarity, so accuracy is unchanged; 1e-8 on the off-diagonals bounds
  // the eigenvalue error by ~1e-8, orders below the energy scale.
  linalg::JacobiEigenOptions eig_opt;
  eig_opt.tol = 1e-8;
  pending_eigbasis_ = eigbasis_;
  linalg::symmetric_eigenvalues_warm(gram_, pending_eigbasis_, eig_, eig_ws_,
                                     eig_opt);
  double acc = 0.0;
  for (std::size_t i = 1; i < eig_.size(); ++i)
    acc += std::sqrt(std::max(eig_[i], 0.0));
  s.tma = acc / static_cast<double>(eig_.size() - 1);
  pending_row_scale_ = sf_.row_scale;
  pending_col_scale_ = sf_.col_scale;
  return s;
}

void IncrementalMeasures::rebuild() {
  hetero::detail::require_value(!has_pending_,
                                "IncrementalMeasures::rebuild: outstanding "
                                "proposal; accept() or reject() first");
  row_sums_ = matrix_.row_sums();
  col_sums_ = matrix_.col_sums();
  sorted_row_sums_ = row_sums_;
  sorted_col_sums_ = col_sums_;
  std::sort(sorted_row_sums_.begin(), sorted_row_sums_.end());
  std::sort(sorted_col_sums_.begin(), sorted_col_sums_.end());
  if (!gram_.empty()) eigbasis_ = Matrix::identity(gram_.rows());
  current_ = evaluate();
  warm_row_scale_ = std::move(pending_row_scale_);
  warm_col_scale_ = std::move(pending_col_scale_);
  std::swap(eigbasis_, pending_eigbasis_);
}

const MeasureSet& IncrementalMeasures::propose(std::size_t k, double value) {
  hetero::detail::require_value(!has_pending_,
                                "IncrementalMeasures::propose: outstanding "
                                "proposal; accept() or reject() first");
  hetero::detail::require_dims(k < matrix_.size(),
                               "IncrementalMeasures::propose: index out of "
                               "range");
  hetero::detail::require_value(value > 0.0 && std::isfinite(value),
                                "IncrementalMeasures::propose: value must "
                                "be positive and finite");
  const std::size_t i = k / matrix_.cols();
  const std::size_t j = k % matrix_.cols();
  pending_k_ = k;
  pending_old_value_ = matrix_.data()[k];
  matrix_.data()[k] = value;

  const double delta = value - pending_old_value_;
  old_row_sum_ = row_sums_[i];
  new_row_sum_ = old_row_sum_ + delta;
  old_col_sum_ = col_sums_[j];
  new_col_sum_ = old_col_sum_ + delta;
  row_sums_[i] = new_row_sum_;
  col_sums_[j] = new_col_sum_;
  replace_sorted(sorted_row_sums_, old_row_sum_, new_row_sum_);
  replace_sorted(sorted_col_sums_, old_col_sum_, new_col_sum_);

  pending_ = evaluate();
  has_pending_ = true;
  return pending_;
}

void IncrementalMeasures::accept() {
  hetero::detail::require_value(has_pending_,
                                "IncrementalMeasures::accept: no proposal");
  has_pending_ = false;
  current_ = pending_;
  warm_row_scale_ = std::move(pending_row_scale_);
  warm_col_scale_ = std::move(pending_col_scale_);
  std::swap(eigbasis_, pending_eigbasis_);
  if (++commits_ % rebuild_interval == 0) rebuild();
}

void IncrementalMeasures::reject() {
  hetero::detail::require_value(has_pending_,
                                "IncrementalMeasures::reject: no proposal");
  has_pending_ = false;
  matrix_.data()[pending_k_] = pending_old_value_;
  const std::size_t i = pending_k_ / matrix_.cols();
  const std::size_t j = pending_k_ % matrix_.cols();
  row_sums_[i] = old_row_sum_;
  col_sums_[j] = old_col_sum_;
  replace_sorted(sorted_row_sums_, new_row_sum_, old_row_sum_);
  replace_sorted(sorted_col_sums_, new_col_sum_, old_col_sum_);
}

Matrix rank1_seed(const TargetMeasures& target, std::size_t tasks,
                  std::size_t machines) {
  // Geometric profiles: adjacent ratios all equal the homogeneity target,
  // so the adjacent-ratio average equals it exactly; the outer product is
  // rank 1, so TMA = 0.
  std::vector<double> row_factor(tasks), col_factor(machines);
  for (std::size_t i = 0; i < tasks; ++i)
    row_factor[i] = std::pow(std::max(target.tdh, 1e-6),
                             static_cast<double>(tasks - 1 - i));
  for (std::size_t j = 0; j < machines; ++j)
    col_factor[j] = std::pow(std::max(target.mph, 1e-6),
                             static_cast<double>(machines - 1 - j));
  Matrix m(tasks, machines);
  for (std::size_t i = 0; i < tasks; ++i)
    for (std::size_t j = 0; j < machines; ++j)
      m(i, j) = row_factor[i] * col_factor[j];
  return m;
}

TargetGenResult generate_with_measures(const TargetMeasures& target,
                                       const TargetGenOptions& options) {
  validate(target, options);

  std::vector<Attempt> attempts(std::max<std::size_t>(1, options.restarts));
  const auto run = [&](std::size_t r) {
    attempts[r] = run_restart(target, options,
                              options.seed + 0x9e3779b97f4a7c15ULL * (r + 1));
  };
  if (options.pool != nullptr && attempts.size() > 1) {
    par::parallel_for(*options.pool, 0, attempts.size(), run);
  } else {
    for (std::size_t r = 0; r < attempts.size(); ++r) run(r);
  }

  auto best = std::min_element(
      attempts.begin(), attempts.end(),
      [](const Attempt& a, const Attempt& b) { return a.error < b.error; });
  if (best->error > options.tolerance)
    throw ConvergenceError(
        "generate_with_measures: no restart reached the tolerance (best "
        "error " +
        std::to_string(best->error) + ")");

  Matrix scaled = best->matrix;
  // Normalize the mean entry to `scale` (scale invariance of the measures).
  scaled *= options.scale * static_cast<double>(scaled.size()) /
            scaled.total();
  TargetGenResult result{core::EcsMatrix(std::move(scaled)), best->achieved,
                         best->error};
  return result;
}

}  // namespace hetero::etcgen
