// Generic simulated annealing over a user-supplied state.
//
// Used by the measure-targeted generator (and by the SA task mapper in
// sched/). The algorithm is the textbook Metropolis scheme with a geometric
// temperature schedule.
#pragma once

#include <cmath>
#include <cstddef>
#include <functional>
#include <utility>

#include "etcgen/rng.hpp"

namespace hetero::etcgen {

struct AnnealOptions {
  std::size_t iterations = 20000;
  /// Initial and final temperatures of the geometric schedule (t0 > t1 > 0).
  double t0 = 1.0;
  double t1 = 1e-6;
  /// Stop early when the energy drops to or below this target.
  double target_energy = 0.0;
};

/// Geometric temperature at step `it` of `total`.
double anneal_temperature(const AnnealOptions& options, std::size_t it);

/// Minimizes `energy` over states of type S.
///
/// `neighbor(state, temperature, rng)` returns a perturbed candidate;
/// `energy(state)` scores it (lower is better). Returns the best state seen
/// together with its energy.
template <typename S>
std::pair<S, double> simulated_annealing(
    S initial, const std::function<double(const S&)>& energy,
    const std::function<S(const S&, double, Rng&)>& neighbor,
    const AnnealOptions& options, Rng& rng) {
  S current = initial;
  double current_e = energy(current);
  S best = current;
  double best_e = current_e;

  for (std::size_t it = 0; it < options.iterations; ++it) {
    if (best_e <= options.target_energy) break;
    const double temp = anneal_temperature(options, it);
    S candidate = neighbor(current, temp, rng);
    const double cand_e = energy(candidate);
    const double delta = cand_e - current_e;
    if (delta <= 0.0 ||
        uniform(rng, 0.0, 1.0) < std::exp(-delta / std::max(temp, 1e-300))) {
      current = std::move(candidate);
      current_e = cand_e;
      if (current_e < best_e) {
        best = current;
        best_e = current_e;
      }
    }
  }
  return {std::move(best), best_e};
}

}  // namespace hetero::etcgen
