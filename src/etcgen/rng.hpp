// Seeded random-number helpers for reproducible matrix generation.
#pragma once

#include <cstdint>
#include <random>

namespace hetero::etcgen {

/// The library's generator type; all etcgen functions take one of these so
/// every experiment is reproducible from a single seed.
using Rng = std::mt19937_64;

inline Rng make_rng(std::uint64_t seed) { return Rng{seed}; }

/// U(lo, hi).
inline double uniform(Rng& rng, double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(rng);
}

/// Gamma with the given shape and scale.
inline double gamma(Rng& rng, double shape, double scale) {
  return std::gamma_distribution<double>(shape, scale)(rng);
}

/// N(mean, stddev).
inline double normal(Rng& rng, double mean, double stddev) {
  return std::normal_distribution<double>(mean, stddev)(rng);
}

/// Uniform integer in [0, n).
inline std::size_t uniform_index(Rng& rng, std::size_t n) {
  return std::uniform_int_distribution<std::size_t>(0, n - 1)(rng);
}

}  // namespace hetero::etcgen
