// Correlation-controlled ETC generation (Canon & Philippe lineage:
// "Controlling and Assessing Correlations of Cost Matrices in
// Heterogeneous Scheduling").
//
// Post-2011 work characterizes ETC matrices by the average Pearson
// correlation between machine columns instead of range/COV parameters.
// This generator dials that correlation directly: entries combine a shared
// per-task component with independent noise,
//
//   ETC(i, j) = mu * (w * u_i + (1 - w) * e_ij),   u, e ~ U(0, 1) iid,
//
// where the mixing weight w is solved from the target correlation
// r = w^2 / (w^2 + (1 - w)^2). Column correlation is the *opposite* axis
// to TMA: perfectly correlated columns are proportional (no affinity),
// uncorrelated ones are specialized — bench/app_correlation_vs_tma maps
// the relation.
#pragma once

#include <cstddef>

#include "core/etc_matrix.hpp"
#include "etcgen/rng.hpp"

namespace hetero::etcgen {

struct CorrelationOptions {
  std::size_t tasks = 0;
  std::size_t machines = 0;
  /// Target mean pairwise column correlation in [0, 1).
  double column_correlation = 0.5;
  /// Mean runtime scale (> 0).
  double mean_runtime = 500.0;
};

/// Generates an ETC matrix whose expected mean pairwise column Pearson
/// correlation equals `column_correlation`.
core::EtcMatrix generate_correlated(const CorrelationOptions& options,
                                    Rng& rng);

/// Measured mean pairwise Pearson correlation between machine columns of an
/// ETC matrix (the statistic the generator targets). Requires at least two
/// machines and two tasks.
double mean_column_correlation(const core::EtcMatrix& etc);

/// Mean pairwise correlation between task rows.
double mean_row_correlation(const core::EtcMatrix& etc);

}  // namespace hetero::etcgen
