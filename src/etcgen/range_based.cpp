#include "etcgen/range_based.hpp"

#include <algorithm>
#include <vector>

#include "base/error.hpp"

namespace hetero::etcgen {

core::EtcMatrix generate_range_based(const RangeBasedOptions& options,
                                     Rng& rng) {
  detail::require_value(options.tasks > 0 && options.machines > 0,
                        "generate_range_based: need tasks > 0, machines > 0");
  detail::require_value(options.task_range >= 1.0 &&
                            options.machine_range >= 1.0,
                        "generate_range_based: ranges must be >= 1");

  linalg::Matrix etc(options.tasks, options.machines);
  for (std::size_t i = 0; i < options.tasks; ++i) {
    const double q = uniform(rng, 1.0, options.task_range);
    for (std::size_t j = 0; j < options.machines; ++j)
      etc(i, j) = q * uniform(rng, 1.0, options.machine_range);
  }
  core::EtcMatrix result{std::move(etc)};
  switch (options.consistency) {
    case Consistency::inconsistent:
      return result;
    case Consistency::consistent:
      return make_consistent(result);
    case Consistency::semi_consistent:
      return make_semi_consistent(result, options.semi_fraction, rng);
  }
  return result;
}

core::EtcMatrix make_consistent(const core::EtcMatrix& etc) {
  linalg::Matrix values = etc.values();
  for (std::size_t i = 0; i < values.rows(); ++i) {
    auto row = values.row(i);
    std::sort(row.begin(), row.end());
  }
  return core::EtcMatrix(std::move(values), etc.task_names(),
                         etc.machine_names());
}

core::EtcMatrix make_semi_consistent(const core::EtcMatrix& etc,
                                     double fraction, Rng& rng) {
  detail::require_value(fraction >= 0.0 && fraction <= 1.0,
                        "make_semi_consistent: fraction must be in [0, 1]");
  const std::size_t m = etc.machine_count();
  const auto chosen_count =
      static_cast<std::size_t>(fraction * static_cast<double>(m));
  std::vector<std::size_t> cols(m);
  for (std::size_t j = 0; j < m; ++j) cols[j] = j;
  std::shuffle(cols.begin(), cols.end(), rng);
  cols.resize(chosen_count);
  std::sort(cols.begin(), cols.end());

  linalg::Matrix values = etc.values();
  std::vector<double> buf(chosen_count);
  for (std::size_t i = 0; i < values.rows(); ++i) {
    for (std::size_t k = 0; k < chosen_count; ++k) buf[k] = values(i, cols[k]);
    std::sort(buf.begin(), buf.end());
    for (std::size_t k = 0; k < chosen_count; ++k) values(i, cols[k]) = buf[k];
  }
  return core::EtcMatrix(std::move(values), etc.task_names(),
                         etc.machine_names());
}

}  // namespace hetero::etcgen
