#include "etcgen/anneal.hpp"

#include "base/error.hpp"

namespace hetero::etcgen {

double anneal_temperature(const AnnealOptions& options, std::size_t it) {
  detail::require_value(options.t0 > 0.0 && options.t1 > 0.0 &&
                            options.t0 >= options.t1,
                        "anneal_temperature: need t0 >= t1 > 0");
  if (options.iterations <= 1) return options.t0;
  const double frac = static_cast<double>(it) /
                      static_cast<double>(options.iterations - 1);
  // Geometric interpolation t0 -> t1.
  return options.t0 * std::pow(options.t1 / options.t0, frac);
}

}  // namespace hetero::etcgen
