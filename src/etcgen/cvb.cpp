#include "etcgen/cvb.hpp"

#include <algorithm>

#include "base/error.hpp"

namespace hetero::etcgen {

core::EtcMatrix generate_cvb(const CvbOptions& options, Rng& rng) {
  detail::require_value(options.tasks > 0 && options.machines > 0,
                        "generate_cvb: need tasks > 0, machines > 0");
  detail::require_value(options.task_mean > 0.0,
                        "generate_cvb: task_mean must be positive");
  detail::require_value(options.task_cov > 0.0 && options.machine_cov > 0.0,
                        "generate_cvb: coefficients of variation must be > 0");

  const double alpha_task = 1.0 / (options.task_cov * options.task_cov);
  const double beta_task = options.task_mean / alpha_task;
  const double alpha_mach = 1.0 / (options.machine_cov * options.machine_cov);

  linalg::Matrix etc(options.tasks, options.machines);
  for (std::size_t i = 0; i < options.tasks; ++i) {
    double q = gamma(rng, alpha_task, beta_task);
    // Gamma can produce values arbitrarily close to zero; ETC entries must
    // stay positive, so clamp to a sane floor relative to the mean.
    q = std::max(q, options.task_mean * 1e-9);
    const double beta_mach = q / alpha_mach;
    for (std::size_t j = 0; j < options.machines; ++j)
      etc(i, j) = std::max(gamma(rng, alpha_mach, beta_mach), q * 1e-9);
  }
  core::EtcMatrix result{std::move(etc)};
  switch (options.consistency) {
    case Consistency::inconsistent:
      return result;
    case Consistency::consistent:
      return make_consistent(result);
    case Consistency::semi_consistent:
      return make_semi_consistent(result, options.semi_fraction, rng);
  }
  return result;
}

}  // namespace hetero::etcgen
