// Measure-targeted ECS generation: produce an environment whose
// (MPH, TDH, TMA) hit prescribed values.
//
// This is the application the paper motivates in Section I(d): "generating
// ETC matrices for simulation studies that span the entire range of
// heterogeneities [2]". The construction seeds with a rank-1 matrix whose
// geometric row/column profiles achieve the MPH and TDH targets exactly
// (rank-1 means TMA = 0), injects a cyclic affinity pattern to approach the
// TMA target, and polishes with simulated annealing on the log-entries.
//
// The same machinery calibrates the embedded SPEC-like datasets
// (tools/calibrate_spec.cpp).
#pragma once

#include <cstdint>
#include <optional>

#include "core/etc_matrix.hpp"
#include "core/measures.hpp"
#include "etcgen/anneal.hpp"
#include "linalg/jacobi_eigen.hpp"
#include "parallel/thread_pool.hpp"

namespace hetero::etcgen {

struct TargetMeasures {
  double mph = 1.0;  // in (0, 1]
  double tdh = 1.0;  // in (0, 1]
  double tma = 0.0;  // in [0, 1)
};

struct TargetGenOptions {
  std::size_t tasks = 0;
  std::size_t machines = 0;
  std::uint64_t seed = 1;
  /// Multiplies the final matrix (measures are scale-invariant; this only
  /// sets physical units).
  double scale = 1.0;
  /// Annealing budget per restart.
  std::size_t anneal_iterations = 30000;
  /// Acceptable max per-measure deviation.
  double tolerance = 1e-3;
  /// Independent annealing restarts (best result wins).
  std::size_t restarts = 4;
  /// Optional pool: restarts run concurrently when provided.
  par::ThreadPool* pool = nullptr;
};

struct TargetGenResult {
  core::EcsMatrix ecs;
  core::MeasureSet achieved;
  /// Max abs deviation over the three measures.
  double error = 0.0;
};

/// Measures of a raw positive matrix treated as an ECS matrix (no labels).
core::MeasureSet measure_set_raw(const linalg::Matrix& ecs);

/// The Sinkhorn budget the annealing search applies to proposal
/// evaluations: tolerance two orders tighter than the generator tolerance,
/// clamped to [1e-8, 1e-4]. Proposal energies only need a fraction of the
/// acceptance tolerance; the accepted matrix is re-measured at full
/// precision for reporting. Exposed for benchmarks and tests.
core::SinkhornOptions search_sinkhorn_options(double generator_tolerance);

/// Stateful (MPH, TDH, TMA) evaluator for single-entry proposal chains —
/// the annealing hot path, where thousands of candidates each differ from
/// the incumbent in exactly one entry.
///
/// Instead of recomputing everything per candidate, it maintains:
///   - row and column sums, updated by the single entry's delta;
///   - sorted copies of both sum vectors, resorted by one O(n) erase/insert,
///     so MPH/TDH need no per-evaluation sort;
///   - the incumbent's Sinkhorn scalings, used to warm-start the TMA
///     standardization (a one-entry perturbation restarts the iteration
///     near its fixed point, skipping the cold ramp-in);
///   - the eigenbasis of the incumbent's Gram matrix: each candidate's Gram
///     is diagonalized by congruence into that basis, where it is already
///     near-diagonal, so the Jacobi cleanup takes one or two sweeps instead
///     of a cold solve.
///
/// TMA singular values come from the Gram path
/// (linalg::singular_values_gram semantics): exact to ~1e-8 absolute at
/// worst, far below any energy difference the annealing acceptance rule
/// acts on.
///
/// Usage: propose() evaluates a candidate in place; exactly one of accept()
/// or reject() must follow before the next propose(). accept() rebuilds all
/// maintained state from scratch every `rebuild_interval` commits, bounding
/// floating-point drift of the incremental sums.
class IncrementalMeasures {
 public:
  /// `matrix` must be strictly positive with at least one entry. `sinkhorn`
  /// is the budget applied to every TMA standardization; its warm-start
  /// fields are overwritten internally.
  explicit IncrementalMeasures(linalg::Matrix matrix,
                               core::SinkhornOptions sinkhorn = {});

  /// The incumbent matrix — or, between propose() and accept()/reject(),
  /// the candidate.
  const linalg::Matrix& matrix() const noexcept { return matrix_; }

  /// Measures of the last committed state.
  const core::MeasureSet& current() const noexcept { return current_; }

  /// Evaluates the matrix with flat entry `k` replaced by `value` (> 0).
  /// The change is applied tentatively; accept() keeps it, reject() reverts.
  const core::MeasureSet& propose(std::size_t k, double value);

  void accept();
  void reject();

  /// Recomputes sums, sorted copies, and measures from scratch — the drift
  /// guard. Called automatically by accept() every `rebuild_interval`
  /// commits; callable any time there is no outstanding proposal.
  void rebuild();

  /// Commits between automatic rebuilds; chosen so accumulated sum drift
  /// stays orders of magnitude below measure tolerances.
  static constexpr std::size_t rebuild_interval = 256;

 private:
  core::MeasureSet evaluate();

  linalg::Matrix matrix_;
  core::SinkhornOptions sinkhorn_;
  std::vector<double> row_sums_, col_sums_;
  std::vector<double> sorted_row_sums_, sorted_col_sums_;
  // Committed scalings used as the warm-start seed for candidate TMA
  // standardizations; the scalings each evaluate() produces are staged in
  // pending_*_scale_ and adopted on accept().
  std::vector<double> warm_row_scale_, warm_col_scale_;
  std::vector<double> pending_row_scale_, pending_col_scale_;
  // Reused per-evaluation workspace: the standardization result, the
  // min-dimension Gram matrix, and its eigenvalues. Heap blocks survive
  // across proposals, so the steady-state hot path allocates nothing.
  core::StandardFormResult sf_;
  linalg::Matrix gram_;
  std::vector<double> eig_;
  // Eigenbasis of the incumbent's Gram matrix, the warm start for candidate
  // eigensolves; the refined basis each evaluate() produces is staged in
  // pending_eigbasis_ and adopted on accept(). rebuild() resets the basis to
  // the identity (a cold accumulate), bounding orthogonality drift.
  linalg::Matrix eigbasis_, pending_eigbasis_;
  linalg::WarmEigenWorkspace eig_ws_;
  core::MeasureSet current_{}, pending_{};
  std::size_t pending_k_ = 0;
  double pending_old_value_ = 0.0;
  double old_row_sum_ = 0.0, new_row_sum_ = 0.0;
  double old_col_sum_ = 0.0, new_col_sum_ = 0.0;
  std::size_t commits_ = 0;
  bool has_pending_ = false;
};

/// The rank-1 seed with exact MPH/TDH and TMA = 0.
linalg::Matrix rank1_seed(const TargetMeasures& target, std::size_t tasks,
                          std::size_t machines);

/// Generates a positive ECS matrix whose measures approximate `target`.
/// Throws ValueError for out-of-range targets or degenerate dimensions
/// (TMA > 0 needs tasks >= 2 and machines >= 2; MPH < 1 needs machines >= 2;
/// TDH < 1 needs tasks >= 2). Throws ConvergenceError when no restart
/// reaches `tolerance`.
TargetGenResult generate_with_measures(const TargetMeasures& target,
                                       const TargetGenOptions& options);

}  // namespace hetero::etcgen
