// Measure-targeted ECS generation: produce an environment whose
// (MPH, TDH, TMA) hit prescribed values.
//
// This is the application the paper motivates in Section I(d): "generating
// ETC matrices for simulation studies that span the entire range of
// heterogeneities [2]". The construction seeds with a rank-1 matrix whose
// geometric row/column profiles achieve the MPH and TDH targets exactly
// (rank-1 means TMA = 0), injects a cyclic affinity pattern to approach the
// TMA target, and polishes with simulated annealing on the log-entries.
//
// The same machinery calibrates the embedded SPEC-like datasets
// (tools/calibrate_spec.cpp).
#pragma once

#include <cstdint>
#include <optional>

#include "core/etc_matrix.hpp"
#include "core/measures.hpp"
#include "etcgen/anneal.hpp"
#include "parallel/thread_pool.hpp"

namespace hetero::etcgen {

struct TargetMeasures {
  double mph = 1.0;  // in (0, 1]
  double tdh = 1.0;  // in (0, 1]
  double tma = 0.0;  // in [0, 1)
};

struct TargetGenOptions {
  std::size_t tasks = 0;
  std::size_t machines = 0;
  std::uint64_t seed = 1;
  /// Multiplies the final matrix (measures are scale-invariant; this only
  /// sets physical units).
  double scale = 1.0;
  /// Annealing budget per restart.
  std::size_t anneal_iterations = 30000;
  /// Acceptable max per-measure deviation.
  double tolerance = 1e-3;
  /// Independent annealing restarts (best result wins).
  std::size_t restarts = 4;
  /// Optional pool: restarts run concurrently when provided.
  par::ThreadPool* pool = nullptr;
};

struct TargetGenResult {
  core::EcsMatrix ecs;
  core::MeasureSet achieved;
  /// Max abs deviation over the three measures.
  double error = 0.0;
};

/// Measures of a raw positive matrix treated as an ECS matrix (no labels).
core::MeasureSet measure_set_raw(const linalg::Matrix& ecs);

/// The rank-1 seed with exact MPH/TDH and TMA = 0.
linalg::Matrix rank1_seed(const TargetMeasures& target, std::size_t tasks,
                          std::size_t machines);

/// Generates a positive ECS matrix whose measures approximate `target`.
/// Throws ValueError for out-of-range targets or degenerate dimensions
/// (TMA > 0 needs tasks >= 2 and machines >= 2; MPH < 1 needs machines >= 2;
/// TDH < 1 needs tasks >= 2). Throws ConvergenceError when no restart
/// reaches `tolerance`.
TargetGenResult generate_with_measures(const TargetMeasures& target,
                                       const TargetGenOptions& options);

}  // namespace hetero::etcgen
