// ETC estimation-error models.
//
// ETC values are *estimates* (user-supplied, profiled, or benchmarked —
// paper Section I), so any measure computed from them inherits estimation
// error. These perturbation models let studies quantify how robust
// MPH/TDH/TMA are to realistic estimate noise (bench/ablation_noise).
#pragma once

#include "core/etc_matrix.hpp"
#include "etcgen/rng.hpp"

namespace hetero::etcgen {

/// Multiplies every finite entry by an independent lognormal factor with
/// unit median and the given coefficient of variation. Infinite entries
/// ("cannot run") are preserved.
core::EtcMatrix perturb_lognormal(const core::EtcMatrix& etc, double cov,
                                  Rng& rng);

/// Multiplies every finite entry by an independent U(1 - spread, 1 + spread)
/// factor, spread in [0, 1). Infinite entries are preserved.
core::EtcMatrix perturb_uniform(const core::EtcMatrix& etc, double spread,
                                Rng& rng);

/// One observed runtime for a task whose true ETC is `true_etc`: the entry
/// times an independent unit-median lognormal factor with the given
/// coefficient of variation — a single draw of the perturb_lognormal factor
/// model. This is the forward model whose inverse problem
/// core::EtcEstimator solves when it ingests runtime observations.
double sample_runtime_lognormal(double true_etc, double cov, Rng& rng);

/// Sets each finite entry to +infinity ("machine loses the capability")
/// with probability p, skipping changes that would violate the EtcMatrix
/// invariants (each task must keep one machine, each machine one task).
core::EtcMatrix drop_capabilities(const core::EtcMatrix& etc, double p,
                                  Rng& rng);

}  // namespace hetero::etcgen
