#include "etcgen/correlation.hpp"

#include <cmath>

#include "base/error.hpp"

namespace hetero::etcgen {
namespace {

double pearson(const std::vector<double>& x, const std::vector<double>& y) {
  const auto n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    syy += y[i] * y[i];
    sxy += x[i] * y[i];
  }
  const double cov = sxy / n - (sx / n) * (sy / n);
  const double vx = sxx / n - (sx / n) * (sx / n);
  const double vy = syy / n - (sy / n) * (sy / n);
  if (vx <= 0.0 || vy <= 0.0) return 0.0;
  return cov / std::sqrt(vx * vy);
}

double mean_pairwise_column_correlation(const linalg::Matrix& m) {
  detail::require_value(m.cols() >= 2 && m.rows() >= 2,
                        "column correlation: need at least 2x2");
  double acc = 0.0;
  std::size_t pairs = 0;
  for (std::size_t a = 0; a < m.cols(); ++a)
    for (std::size_t b = a + 1; b < m.cols(); ++b) {
      acc += pearson(m.col(a), m.col(b));
      ++pairs;
    }
  return acc / static_cast<double>(pairs);
}

}  // namespace

core::EtcMatrix generate_correlated(const CorrelationOptions& options,
                                    Rng& rng) {
  detail::require_value(options.tasks >= 2 && options.machines >= 2,
                        "generate_correlated: need at least 2 tasks and "
                        "2 machines");
  detail::require_value(options.column_correlation >= 0.0 &&
                            options.column_correlation < 1.0,
                        "generate_correlated: correlation must be in [0, 1)");
  detail::require_value(options.mean_runtime > 0.0,
                        "generate_correlated: mean_runtime must be positive");

  // Solve r = w^2 / (w^2 + (1-w)^2) for w in [0, 1).
  const double r = options.column_correlation;
  const double w = std::sqrt(r) / (std::sqrt(r) + std::sqrt(1.0 - r));

  linalg::Matrix etc(options.tasks, options.machines);
  for (std::size_t i = 0; i < options.tasks; ++i) {
    const double shared = uniform(rng, 0.0, 1.0);
    for (std::size_t j = 0; j < options.machines; ++j) {
      const double noise = uniform(rng, 0.0, 1.0);
      // Mixture mean is 1/2; scale so the expected entry is mean_runtime.
      // A small floor keeps entries strictly positive.
      const double mix = w * shared + (1.0 - w) * noise;
      etc(i, j) = std::max(2.0 * options.mean_runtime * mix,
                           options.mean_runtime * 1e-6);
    }
  }
  return core::EtcMatrix(std::move(etc));
}

double mean_column_correlation(const core::EtcMatrix& etc) {
  detail::require_value(!etc.values().has_nonfinite(),
                        "mean_column_correlation: infinite entries");
  return mean_pairwise_column_correlation(etc.values());
}

double mean_row_correlation(const core::EtcMatrix& etc) {
  detail::require_value(!etc.values().has_nonfinite(),
                        "mean_row_correlation: infinite entries");
  return mean_pairwise_column_correlation(etc.values().transposed());
}

}  // namespace hetero::etcgen
