// Range-based ETC matrix generation (Ali, Siegel, Maheswaran, Hensgen, Ali
// [4]; used by Braun et al. [6] and many follow-ups — the method the paper
// contrasts its characterization against).
//
// A task-heterogeneity vector q_i ~ U(1, R_task) is drawn per task type;
// entry ETC(i, j) = q_i * U(1, R_mach). R_task and R_mach control task and
// machine heterogeneity. Consistency describes whether a machine that is
// faster for one task type is faster for all: a *consistent* matrix sorts
// each row, an *inconsistent* one leaves entries random, and a
// *semi-consistent* one sorts a random subset of columns within each row.
#pragma once

#include <cstddef>

#include "core/etc_matrix.hpp"
#include "etcgen/rng.hpp"

namespace hetero::etcgen {

enum class Consistency { consistent, semi_consistent, inconsistent };

struct RangeBasedOptions {
  std::size_t tasks = 0;
  std::size_t machines = 0;
  /// Task heterogeneity range R_task (>= 1).
  double task_range = 100.0;
  /// Machine heterogeneity range R_mach (>= 1).
  double machine_range = 10.0;
  Consistency consistency = Consistency::inconsistent;
  /// Fraction of columns sorted per row for semi_consistent (default: the
  /// customary one half).
  double semi_fraction = 0.5;
};

/// Generates an ETC matrix with the range-based method.
core::EtcMatrix generate_range_based(const RangeBasedOptions& options, Rng& rng);

/// Sorts each row descending-speed left-to-right (ascending ETC), producing
/// a consistent matrix from any ETC matrix.
core::EtcMatrix make_consistent(const core::EtcMatrix& etc);

/// Sorts a random subset of `fraction` of the columns within every row,
/// producing a semi-consistent matrix. The chosen column subset is the same
/// for all rows (per [4]).
core::EtcMatrix make_semi_consistent(const core::EtcMatrix& etc,
                                     double fraction, Rng& rng);

}  // namespace hetero::etcgen
