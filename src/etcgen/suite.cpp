#include "etcgen/suite.hpp"

#include "base/error.hpp"

namespace hetero::etcgen {
namespace {

const char* consistency_name(Consistency c) {
  switch (c) {
    case Consistency::consistent: return "consistent";
    case Consistency::semi_consistent: return "semi-consistent";
    case Consistency::inconsistent: return "inconsistent";
  }
  return "?";
}

}  // namespace

std::vector<SuiteCase> braun_suite(const BraunSuiteOptions& options) {
  detail::require_value(options.tasks > 0 && options.machines > 0,
                        "braun_suite: need tasks > 0, machines > 0");
  Rng rng = make_rng(options.seed);
  std::vector<SuiteCase> suite;
  suite.reserve(12);

  for (const bool hi_task : {true, false}) {
    for (const bool hi_machine : {true, false}) {
      for (const Consistency consistency :
           {Consistency::consistent, Consistency::semi_consistent,
            Consistency::inconsistent}) {
        RangeBasedOptions gen;
        gen.tasks = options.tasks;
        gen.machines = options.machines;
        gen.task_range =
            hi_task ? options.task_range_high : options.task_range_low;
        gen.machine_range = hi_machine ? options.machine_range_high
                                       : options.machine_range_low;
        gen.consistency = consistency;

        SuiteCase entry{
            std::string(hi_task ? "hi" : "lo") + "-" +
                (hi_machine ? "hi" : "lo") + "-" +
                consistency_name(consistency),
            hi_task, hi_machine, consistency,
            generate_range_based(gen, rng)};
        suite.push_back(std::move(entry));
      }
    }
  }
  return suite;
}

}  // namespace hetero::etcgen
