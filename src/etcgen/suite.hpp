// The canonical 12-category ETC benchmark suite of Braun et al. [6].
//
// Simulation studies since 2001 evaluate mapping heuristics on twelve ETC
// classes: {high, low} task heterogeneity x {high, low} machine
// heterogeneity x {consistent, semi-consistent, inconsistent}. This module
// generates that suite with the range-based method, so the paper's measures
// can be laid over the classic taxonomy (bench/app_braun_taxonomy) and
// heuristic studies can sweep the standard cases.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "etcgen/range_based.hpp"

namespace hetero::etcgen {

/// One generated suite entry.
struct SuiteCase {
  std::string name;  // e.g. "hi-hi-consistent"
  bool high_task_heterogeneity = false;
  bool high_machine_heterogeneity = false;
  Consistency consistency = Consistency::inconsistent;
  core::EtcMatrix etc;
};

struct BraunSuiteOptions {
  std::size_t tasks = 512;
  std::size_t machines = 16;
  std::uint64_t seed = 1;
  /// The customary range parameters of [6]: task 1e5 (hi) / 100 (lo),
  /// machine 100 (hi) / 10 (lo).
  double task_range_high = 1e5;
  double task_range_low = 100.0;
  double machine_range_high = 100.0;
  double machine_range_low = 10.0;
};

/// Generates all 12 categories in the conventional order (hi-hi, hi-lo,
/// lo-hi, lo-lo) x (consistent, semi-consistent, inconsistent).
std::vector<SuiteCase> braun_suite(const BraunSuiteOptions& options = {});

}  // namespace hetero::etcgen
