// Coefficient-of-variation-based (CVB) ETC generation (Ali et al. [4]).
//
// Heterogeneity is controlled by coefficients of variation instead of
// ranges: a task weight q_i ~ Gamma(alpha_task, beta_task) with
// alpha_task = 1 / V_task^2 and beta_task = mu_task / alpha_task, then
// ETC(i, j) ~ Gamma(alpha_mach, q_i / alpha_mach) with
// alpha_mach = 1 / V_mach^2. Larger V -> more heterogeneous.
#pragma once

#include <cstddef>

#include "core/etc_matrix.hpp"
#include "etcgen/range_based.hpp"
#include "etcgen/rng.hpp"

namespace hetero::etcgen {

struct CvbOptions {
  std::size_t tasks = 0;
  std::size_t machines = 0;
  /// Mean task execution time mu_task (> 0).
  double task_mean = 1000.0;
  /// Task-heterogeneity coefficient of variation V_task (> 0).
  double task_cov = 0.5;
  /// Machine-heterogeneity coefficient of variation V_mach (> 0).
  double machine_cov = 0.5;
  Consistency consistency = Consistency::inconsistent;
  double semi_fraction = 0.5;
};

/// Generates an ETC matrix with the CVB method.
core::EtcMatrix generate_cvb(const CvbOptions& options, Rng& rng);

}  // namespace hetero::etcgen
