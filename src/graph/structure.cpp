#include "graph/structure.hpp"

#include <algorithm>
#include <numeric>

#include "base/error.hpp"
#include "graph/bipartite_matching.hpp"
#include "graph/scc.hpp"

namespace hetero::graph {
namespace {

using linalg::Matrix;

BipartiteGraph pattern_graph(const Matrix& m) {
  BipartiteGraph g(m.rows(), m.cols());
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t j = 0; j < m.cols(); ++j)
      if (m(i, j) > 0.0) g.add_edge(i, j);
  return g;
}

void require_square(const Matrix& m, const char* who) {
  detail::require_value(m.rows() == m.cols(),
                        std::string(who) + ": matrix must be square");
  detail::require_value(m.all_nonnegative(),
                        std::string(who) + ": matrix must be nonnegative");
}

// Digraph over rows induced by a perfect matching sigma (row -> column):
// edge u -> v iff m(u, sigma[v]) > 0, u != v. Cycles of this digraph are
// exactly the alternating cycles that exchange matched edges, so an entry
// m(i, sigma[v]) lies on a positive diagonal iff i == v or i and v share a
// strongly connected component.
Digraph matching_digraph(const Matrix& m, const std::vector<std::size_t>& sigma) {
  Digraph d(m.rows());
  for (std::size_t u = 0; u < m.rows(); ++u)
    for (std::size_t v = 0; v < m.rows(); ++v)
      if (u != v && m(u, sigma[v]) > 0.0) d.add_edge(u, v);
  return d;
}

// Boolean mask of entries lying on some positive diagonal of a square
// matrix; nullopt when there is no positive diagonal at all.
std::optional<std::vector<bool>> on_diagonal_mask(const Matrix& m) {
  const auto sigma = perfect_matching(pattern_graph(m));
  if (!sigma) return std::nullopt;
  const SccResult scc =
      strongly_connected_components(matching_digraph(m, *sigma));
  std::vector<std::size_t> row_of_col(m.cols());
  for (std::size_t i = 0; i < m.rows(); ++i) row_of_col[(*sigma)[i]] = i;

  std::vector<bool> mask(m.rows() * m.cols(), false);
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t j = 0; j < m.cols(); ++j) {
      if (m(i, j) <= 0.0) continue;
      const std::size_t v = row_of_col[j];
      mask[i * m.cols() + j] =
          (i == v) || scc.component[i] == scc.component[v];
    }
  return mask;
}

// Appendix-A tiling of a T x M matrix into an lcm(T, M) square.
Matrix lcm_tiling(const Matrix& m) {
  const std::size_t t = m.rows();
  const std::size_t mm = m.cols();
  const std::size_t l = std::lcm(t, mm);
  detail::require_value(l <= 4096, "lcm tiling: lcm(T, M) too large");
  Matrix tiled(l, l, 0.0);
  for (std::size_t bi = 0; bi < l / t; ++bi)
    for (std::size_t bj = 0; bj < l / mm; ++bj)
      for (std::size_t i = 0; i < t; ++i)
        for (std::size_t j = 0; j < mm; ++j)
          tiled(bi * t + i, bj * mm + j) = m(i, j);
  return tiled;
}

}  // namespace

bool has_support(const Matrix& m) {
  require_square(m, "has_support");
  if (m.rows() == 0) return true;
  return perfect_matching(pattern_graph(m)).has_value();
}

bool has_total_support(const Matrix& m) {
  require_square(m, "has_total_support");
  if (m.rows() == 0) return true;
  const auto sigma = perfect_matching(pattern_graph(m));
  if (!sigma) return false;

  const SccResult scc = strongly_connected_components(matching_digraph(m, *sigma));
  // Row matched to column j.
  std::vector<std::size_t> row_of_col(m.cols());
  for (std::size_t i = 0; i < m.rows(); ++i) row_of_col[(*sigma)[i]] = i;

  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) {
      if (m(i, j) <= 0.0) continue;
      const std::size_t v = row_of_col[j];
      if (i != v && scc.component[i] != scc.component[v]) return false;
    }
  }
  return true;
}

bool is_fully_indecomposable(const Matrix& m) {
  require_square(m, "is_fully_indecomposable");
  if (m.rows() == 0) return true;
  if (m.rows() == 1) return m(0, 0) > 0.0;
  const auto sigma = perfect_matching(pattern_graph(m));
  if (!sigma) return false;
  // With a positive diagonal (after permuting columns by sigma), full
  // indecomposability is equivalent to irreducibility, i.e. strong
  // connectivity of the matching digraph.
  return is_strongly_connected(matching_digraph(m, *sigma));
}

bool is_fully_indecomposable_rect(const Matrix& m,
                                  std::size_t max_combinations) {
  detail::require_value(m.all_nonnegative(),
                        "is_fully_indecomposable_rect: matrix must be nonnegative");
  if (m.rows() == m.cols()) return is_fully_indecomposable(m);
  const Matrix b = m.rows() < m.cols() ? m : m.transposed();
  const std::size_t r = b.rows();
  const std::size_t n = b.cols();

  // Count C(n, r) with overflow-free early exit against the guard.
  double combos = 1.0;
  for (std::size_t k = 1; k <= r; ++k)
    combos *= static_cast<double>(n - r + k) / static_cast<double>(k);
  detail::require_value(combos <= static_cast<double>(max_combinations),
                        "is_fully_indecomposable_rect: too many submatrices");

  // Enumerate r-subsets of columns in lexicographic order.
  std::vector<std::size_t> pick(r);
  std::iota(pick.begin(), pick.end(), std::size_t{0});
  const std::vector<std::size_t> all_rows = [&] {
    std::vector<std::size_t> v(r);
    std::iota(v.begin(), v.end(), std::size_t{0});
    return v;
  }();
  while (true) {
    if (!is_fully_indecomposable(b.submatrix(all_rows, pick))) return false;
    // Advance combination.
    std::size_t i = r;
    while (i > 0) {
      --i;
      if (pick[i] != i + n - r) break;
      if (i == 0) return true;
    }
    if (pick[i] == i + n - r) return true;
    ++pick[i];
    for (std::size_t j = i + 1; j < r; ++j) pick[j] = pick[j - 1] + 1;
  }
}

bool is_sinkhorn_normalizable(const Matrix& m) {
  detail::require_value(m.all_nonnegative(),
                        "is_sinkhorn_normalizable: matrix must be nonnegative");
  detail::require_value(!m.empty(), "is_sinkhorn_normalizable: empty matrix");
  if (m.all_positive()) return true;
  if (m.rows() == m.cols()) return has_total_support(m);

  // Appendix A construction: tile copies of the T x M matrix into an
  // lcm(T, M) square block matrix; the rectangular scaling exists iff the
  // square tiling has total support.
  return has_total_support(lcm_tiling(m));
}

std::optional<Matrix> support_core(const Matrix& m) {
  detail::require_value(m.all_nonnegative(),
                        "support_core: matrix must be nonnegative");
  detail::require_value(!m.empty(), "support_core: empty matrix");

  if (m.rows() == m.cols()) {
    const auto mask = on_diagonal_mask(m);
    if (!mask) return std::nullopt;
    Matrix core = m;
    for (std::size_t i = 0; i < m.rows(); ++i)
      for (std::size_t j = 0; j < m.cols(); ++j)
        if (!(*mask)[i * m.cols() + j]) core(i, j) = 0.0;
    return core;
  }

  const Matrix tiled = lcm_tiling(m);
  const auto mask = on_diagonal_mask(tiled);
  if (!mask) return std::nullopt;
  const std::size_t l = tiled.rows();
  const std::size_t t = m.rows();
  const std::size_t mm = m.cols();
  Matrix core = m;
  // Keep an entry only if every tiled copy of it lies on a positive diagonal.
  for (std::size_t i = 0; i < t; ++i)
    for (std::size_t j = 0; j < mm; ++j) {
      bool keep = m(i, j) > 0.0;
      for (std::size_t bi = 0; keep && bi < l / t; ++bi)
        for (std::size_t bj = 0; keep && bj < l / mm; ++bj)
          keep = (*mask)[(bi * t + i) * l + (bj * mm + j)];
      if (!keep) core(i, j) = 0.0;
    }
  return core;
}

std::optional<BlockTriangularForm> block_triangular_form(const Matrix& m) {
  require_square(m, "block_triangular_form");
  if (m.rows() == 0) return BlockTriangularForm{};
  const auto sigma = perfect_matching(pattern_graph(m));
  if (!sigma) return std::nullopt;

  const SccResult scc = strongly_connected_components(matching_digraph(m, *sigma));

  // Order rows by *descending* component id. Component ids are a topological
  // order of the condensation (edges low -> high), so descending order puts
  // every edge's source at or below its target: block lower-triangular.
  std::vector<std::size_t> rows(m.rows());
  std::iota(rows.begin(), rows.end(), std::size_t{0});
  std::stable_sort(rows.begin(), rows.end(), [&](std::size_t a, std::size_t b) {
    return scc.component[a] > scc.component[b];
  });

  BlockTriangularForm form;
  form.row_perm = rows;
  form.col_perm.resize(m.cols());
  for (std::size_t k = 0; k < rows.size(); ++k)
    form.col_perm[k] = (*sigma)[rows[k]];

  std::size_t run = 0;
  for (std::size_t k = 0; k < rows.size(); ++k) {
    ++run;
    const bool last = k + 1 == rows.size();
    if (last || scc.component[rows[k + 1]] != scc.component[rows[k]]) {
      form.block_sizes.push_back(run);
      run = 0;
    }
  }
  return form;
}

}  // namespace hetero::graph
