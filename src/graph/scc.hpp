// Strongly connected components (Tarjan, iterative).
//
// Full indecomposability of a square zero pattern with a positive diagonal is
// equivalent to strong connectivity of its associated digraph; SCCs also give
// the block-triangular (Frobenius normal form) decomposition of Section VI.
#pragma once

#include <cstddef>
#include <vector>

namespace hetero::graph {

/// Simple directed graph as adjacency lists.
class Digraph {
 public:
  explicit Digraph(std::size_t vertex_count) : adj_(vertex_count) {}

  /// Adds edge u -> v. Throws DimensionError for out-of-range vertices.
  void add_edge(std::size_t u, std::size_t v);

  std::size_t vertex_count() const noexcept { return adj_.size(); }
  const std::vector<std::size_t>& neighbors(std::size_t u) const {
    return adj_[u];
  }

 private:
  std::vector<std::vector<std::size_t>> adj_;
};

/// SCC decomposition: component[v] is the component id of vertex v.
/// Component ids are assigned in reverse topological order of the
/// condensation (i.e. component 0 has no incoming edges from other
/// components ... actually Tarjan emits sinks first; we re-number so that
/// ids are a valid topological order of the condensation: edges go from
/// lower ids to higher ids).
struct SccResult {
  std::vector<std::size_t> component;
  std::size_t component_count = 0;
};

/// Tarjan's algorithm, iterative (no recursion-depth limits).
SccResult strongly_connected_components(const Digraph& g);

/// True when the whole graph is one strongly connected component.
/// An empty graph and a single vertex (even without a self-loop) count as
/// strongly connected.
bool is_strongly_connected(const Digraph& g);

}  // namespace hetero::graph
