// Zero-pattern structure analysis of nonnegative matrices (paper Section VI).
//
// Whether an ECS matrix with zero entries can be converted to standard form
// (equal row sums and equal column sums) by diagonal scaling is a purely
// combinatorial property of its zero pattern:
//
//  * support        — a positive diagonal exists (perfect matching between
//                     rows and columns through positive entries);
//  * total support  — every positive entry lies on some positive diagonal;
//                     this is exactly the condition for the Sinkhorn
//                     iteration (eq. 9) to converge [Sinkhorn & Knopp 1967];
//  * full indecomposability — no permutations P, Q put the matrix in the
//                     block-triangular form of eq. 11; a *sufficient*
//                     condition for normalizability [Marshall & Olkin, 20].
//
// For rectangular T x M matrices the paper (Appendix A) reduces to the
// square case by tiling copies of the matrix into an lcm(T, M)-sized square
// block matrix; full indecomposability is defined via square submatrices.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "linalg/matrix.hpp"

namespace hetero::graph {

/// True if the square matrix has *support*: some permutation sigma with
/// m(i, sigma(i)) > 0 for all i. Throws ValueError if not square.
bool has_support(const linalg::Matrix& m);

/// True if the square matrix has *total support*: every positive entry lies
/// on a positive diagonal. (The zero matrix is defined to have total
/// support vacuously only if it has no positive entries, but it lacks
/// support.) Throws ValueError if not square.
bool has_total_support(const linalg::Matrix& m);

/// True if the square matrix is fully indecomposable: there are no
/// permutation matrices P, Q such that PMQ has the 2x2 block-triangular form
/// of paper eq. 11. Uses the classical characterization: a matrix with a
/// positive diagonal is fully indecomposable iff its digraph is strongly
/// connected. Throws ValueError if not square.
bool is_fully_indecomposable(const linalg::Matrix& m);

/// Rectangular full indecomposability as defined in the paper (Section VI):
/// an m x n matrix with m < n is fully indecomposable if every m x m
/// submatrix is. Square inputs defer to is_fully_indecomposable; for
/// m > n the transpose is analyzed. Brute-force over submatrices — throws
/// ValueError when C(max(m,n), min(m,n)) exceeds `max_combinations`.
bool is_fully_indecomposable_rect(const linalg::Matrix& m,
                                  std::size_t max_combinations = 200000);

/// True if the (square or rectangular) nonnegative matrix can be scaled by
/// positive diagonal matrices D1, D2 to have equal row sums and equal column
/// sums (i.e. the Sinkhorn iteration converges to a standard ECS matrix).
/// Rectangular inputs are tiled to an lcm(T, M) square block matrix per the
/// paper's Appendix A and checked for total support.
bool is_sinkhorn_normalizable(const linalg::Matrix& m);

/// Block-triangular (Frobenius normal form) exposure of a decomposable
/// square matrix: permutations such that m.permuted(row_perm, col_perm) is
/// block lower-triangular with square, fully indecomposable diagonal blocks.
struct BlockTriangularForm {
  std::vector<std::size_t> row_perm;
  std::vector<std::size_t> col_perm;
  /// Sizes of the diagonal blocks, in order; size() == 1 means the matrix is
  /// fully indecomposable (no nontrivial decomposition).
  std::vector<std::size_t> block_sizes;
};

/// Computes a block-triangular form for a square matrix with support.
/// Returns nullopt when the matrix has no support (no positive diagonal, so
/// the construction below does not apply).
std::optional<BlockTriangularForm> block_triangular_form(
    const linalg::Matrix& m);

/// The *total-support core*: a copy of the (square or rectangular) matrix
/// with every positive entry that lies on no positive diagonal zeroed out.
/// The Sinkhorn iteration's limit on the original matrix equals its limit on
/// the core, but on the core (which has total support) convergence is
/// geometric instead of O(1/k). Rectangular matrices are analyzed through
/// the Appendix-A lcm tiling. Returns nullopt when the matrix has no
/// support (and the limit does not exist at all).
std::optional<linalg::Matrix> support_core(const linalg::Matrix& m);

}  // namespace hetero::graph
