#include "graph/scc.hpp"

#include <algorithm>
#include <limits>

#include "base/error.hpp"

namespace hetero::graph {

void Digraph::add_edge(std::size_t u, std::size_t v) {
  detail::require_dims(u < adj_.size() && v < adj_.size(),
                       "Digraph::add_edge: vertex out of range");
  adj_[u].push_back(v);
}

SccResult strongly_connected_components(const Digraph& g) {
  const std::size_t n = g.vertex_count();
  constexpr std::size_t kUnvisited = std::numeric_limits<std::size_t>::max();

  std::vector<std::size_t> index(n, kUnvisited), lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<std::size_t> stack;
  std::vector<std::size_t> component(n, kUnvisited);
  std::size_t next_index = 0;
  std::size_t component_count = 0;

  // Explicit DFS stack of (vertex, next-neighbor-offset).
  struct Frame {
    std::size_t v;
    std::size_t edge = 0;
  };
  std::vector<Frame> dfs;

  for (std::size_t root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    dfs.push_back({root});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;

    while (!dfs.empty()) {
      Frame& f = dfs.back();
      const auto& nbrs = g.neighbors(f.v);
      if (f.edge < nbrs.size()) {
        const std::size_t w = nbrs[f.edge++];
        if (index[w] == kUnvisited) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          dfs.push_back({w});
        } else if (on_stack[w]) {
          lowlink[f.v] = std::min(lowlink[f.v], index[w]);
        }
      } else {
        const std::size_t v = f.v;
        dfs.pop_back();
        if (!dfs.empty())
          lowlink[dfs.back().v] = std::min(lowlink[dfs.back().v], lowlink[v]);
        if (lowlink[v] == index[v]) {
          // Pop one complete component (Tarjan emits sinks first).
          while (true) {
            const std::size_t w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            component[w] = component_count;
            if (w == v) break;
          }
          ++component_count;
        }
      }
    }
  }

  // Tarjan assigns sink components the smallest ids; flip so ids form a
  // topological order of the condensation (edges low id -> high id).
  for (std::size_t v = 0; v < n; ++v)
    component[v] = component_count - 1 - component[v];

  return SccResult{std::move(component), component_count};
}

bool is_strongly_connected(const Digraph& g) {
  if (g.vertex_count() <= 1) return true;
  return strongly_connected_components(g).component_count == 1;
}

}  // namespace hetero::graph
