// Maximum bipartite matching (Hopcroft–Karp).
//
// Zero-pattern analysis of ECS matrices (paper Section VI) reduces to
// matching questions: a square matrix has *support* iff its bipartite
// row-column graph has a perfect matching (a positive diagonal), and *total
// support* iff every edge lies on some perfect matching.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

namespace hetero::graph {

/// Bipartite graph with `left` and `right` vertex sets, edges from left to
/// right stored as adjacency lists.
class BipartiteGraph {
 public:
  BipartiteGraph(std::size_t left_count, std::size_t right_count);

  /// Adds an edge (u in left, v in right). Duplicate edges are allowed and
  /// harmless. Throws DimensionError for out-of-range vertices.
  void add_edge(std::size_t u, std::size_t v);

  std::size_t left_count() const noexcept { return adj_.size(); }
  std::size_t right_count() const noexcept { return right_count_; }
  const std::vector<std::size_t>& neighbors(std::size_t u) const {
    return adj_[u];
  }

 private:
  std::size_t right_count_;
  std::vector<std::vector<std::size_t>> adj_;
};

/// Result of a maximum matching: match_left[u] is the right vertex matched
/// to u or npos, and symmetrically for match_right.
struct MatchingResult {
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::vector<std::size_t> match_left;
  std::vector<std::size_t> match_right;
  std::size_t size = 0;
};

/// Hopcroft–Karp maximum matching in O(E sqrt(V)).
MatchingResult maximum_matching(const BipartiteGraph& g);

/// Perfect matching of a square bipartite graph (left_count == right_count),
/// or nullopt if none exists. The returned vector maps each left vertex to
/// its matched right vertex.
std::optional<std::vector<std::size_t>> perfect_matching(
    const BipartiteGraph& g);

}  // namespace hetero::graph
