#include "graph/bipartite_matching.hpp"

#include <limits>
#include <queue>

#include "base/error.hpp"

namespace hetero::graph {

BipartiteGraph::BipartiteGraph(std::size_t left_count, std::size_t right_count)
    : right_count_(right_count), adj_(left_count) {}

void BipartiteGraph::add_edge(std::size_t u, std::size_t v) {
  detail::require_dims(u < adj_.size() && v < right_count_,
                       "BipartiteGraph::add_edge: vertex out of range");
  adj_[u].push_back(v);
}

namespace {

constexpr std::size_t kNpos = MatchingResult::npos;
constexpr std::size_t kInf = std::numeric_limits<std::size_t>::max();

struct HopcroftKarp {
  const BipartiteGraph& g;
  std::vector<std::size_t> match_l, match_r, dist;

  explicit HopcroftKarp(const BipartiteGraph& graph)
      : g(graph),
        match_l(graph.left_count(), kNpos),
        match_r(graph.right_count(), kNpos),
        dist(graph.left_count(), kInf) {}

  bool bfs() {
    std::queue<std::size_t> q;
    bool reachable_free = false;
    for (std::size_t u = 0; u < g.left_count(); ++u) {
      if (match_l[u] == kNpos) {
        dist[u] = 0;
        q.push(u);
      } else {
        dist[u] = kInf;
      }
    }
    while (!q.empty()) {
      const std::size_t u = q.front();
      q.pop();
      for (std::size_t v : g.neighbors(u)) {
        const std::size_t w = match_r[v];
        if (w == kNpos) {
          reachable_free = true;
        } else if (dist[w] == kInf) {
          dist[w] = dist[u] + 1;
          q.push(w);
        }
      }
    }
    return reachable_free;
  }

  bool dfs(std::size_t u) {
    for (std::size_t v : g.neighbors(u)) {
      const std::size_t w = match_r[v];
      if (w == kNpos || (dist[w] == dist[u] + 1 && dfs(w))) {
        match_l[u] = v;
        match_r[v] = u;
        return true;
      }
    }
    dist[u] = kInf;
    return false;
  }

  std::size_t run() {
    std::size_t matched = 0;
    while (bfs()) {
      for (std::size_t u = 0; u < g.left_count(); ++u)
        if (match_l[u] == kNpos && dfs(u)) ++matched;
    }
    return matched;
  }
};

}  // namespace

MatchingResult maximum_matching(const BipartiteGraph& g) {
  HopcroftKarp hk(g);
  MatchingResult r;
  r.size = hk.run();
  r.match_left = std::move(hk.match_l);
  r.match_right = std::move(hk.match_r);
  return r;
}

std::optional<std::vector<std::size_t>> perfect_matching(
    const BipartiteGraph& g) {
  if (g.left_count() != g.right_count()) return std::nullopt;
  MatchingResult r = maximum_matching(g);
  if (r.size != g.left_count()) return std::nullopt;
  return std::move(r.match_left);
}

}  // namespace hetero::graph
