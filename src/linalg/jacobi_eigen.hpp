// Symmetric eigensolver via classical (two-sided) Jacobi rotations.
//
// Used as an independent cross-check of the SVD: the squared singular values
// of A must equal the eigenvalues of A^T A. Also generally useful for
// spectral analysis of Gram matrices of ECS columns (column correlation, the
// quantity TMA abstracts).
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace hetero::linalg {

/// Eigendecomposition A = V * diag(values) * V^T of a symmetric matrix,
/// eigenvalues sorted descending; V columns are the eigenvectors.
struct EigenResult {
  std::vector<double> values;
  Matrix vectors;
};

struct JacobiEigenOptions {
  /// Stop when the largest off-diagonal magnitude falls below
  /// tol * frobenius_norm(A).
  double tol = 1e-13;
  std::size_t max_sweeps = 60;
};

/// Eigendecomposition of a symmetric matrix. Throws ValueError if the input
/// is not square or not symmetric (to 1e-10 relative), ConvergenceError on
/// sweep exhaustion.
EigenResult jacobi_eigen(const Matrix& a, const JacobiEigenOptions& options = {});

/// Eigenvalues only, sorted descending.
std::vector<double> symmetric_eigenvalues(const Matrix& a,
                                          const JacobiEigenOptions& options = {});

}  // namespace hetero::linalg
