// Symmetric eigensolver via classical (two-sided) Jacobi rotations.
//
// Used as an independent cross-check of the SVD: the squared singular values
// of A must equal the eigenvalues of A^T A. Also generally useful for
// spectral analysis of Gram matrices of ECS columns (column correlation, the
// quantity TMA abstracts).
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace hetero::linalg {

/// Eigendecomposition A = V * diag(values) * V^T of a symmetric matrix,
/// eigenvalues sorted descending; V columns are the eigenvectors.
struct EigenResult {
  std::vector<double> values;
  Matrix vectors;
};

struct JacobiEigenOptions {
  /// Stop when the largest off-diagonal magnitude falls below
  /// tol * frobenius_norm(A).
  double tol = 1e-13;
  std::size_t max_sweeps = 60;
};

/// Eigendecomposition of a symmetric matrix. Throws ValueError if the input
/// is not square or not symmetric (to 1e-10 relative), ConvergenceError on
/// sweep exhaustion.
EigenResult jacobi_eigen(const Matrix& a, const JacobiEigenOptions& options = {});

/// Eigenvalues only, sorted descending.
std::vector<double> symmetric_eigenvalues(const Matrix& a,
                                          const JacobiEigenOptions& options = {});

/// Allocation-free eigenvalues for hot loops: diagonalizes `a` IN PLACE (no
/// eigenvector accumulation, `a` is destroyed) and fills `values` with the
/// eigenvalues sorted descending, reusing its capacity. Same rotations,
/// convergence rule, and results as symmetric_eigenvalues(), but symmetry
/// of `a` is the caller's responsibility (only squareness is checked).
void symmetric_eigenvalues_into(Matrix& a, std::vector<double>& values,
                                const JacobiEigenOptions& options = {});

/// Scratch buffers for symmetric_eigenvalues_warm; reuse one instance across
/// calls to keep the hot path allocation-free.
struct WarmEigenWorkspace {
  Matrix congruence;
  Matrix product;
};

/// Warm-started eigenvalues for slowly-drifting matrices (proposal chains).
/// `basis` must be an orthogonal matrix whose columns approximately
/// diagonalize `a` — typically the eigenbasis of a nearby matrix, or the
/// identity for a cold start. Forms B = basis^T a basis (an exact orthogonal
/// similarity, so the spectrum is untouched), finishes diagonalizing B with
/// Jacobi sweeps — one or two when the basis is close — applies the same
/// rotations to `basis` so it exits as an eigenbasis of `a`, and fills
/// `values` with the eigenvalues sorted descending. `a` is read-only.
/// Symmetry of `a` and orthogonality of `basis` are the caller's
/// responsibility (only shapes are checked).
void symmetric_eigenvalues_warm(const Matrix& a, Matrix& basis,
                                std::vector<double>& values,
                                WarmEigenWorkspace& workspace,
                                const JacobiEigenOptions& options = {});

}  // namespace hetero::linalg
