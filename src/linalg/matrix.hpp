// Dense row-major matrix of doubles.
//
// This is the numeric substrate for the whole library. The matrices in scope
// (ETC/ECS matrices, their normalized forms, Gram matrices) are small dense
// rectangular matrices, so a simple contiguous row-major layout with value
// semantics is the right tool; no external linear-algebra dependency is used.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <span>
#include <vector>

#include "base/error.hpp"

namespace hetero::linalg {

/// Dense row-major matrix of double with value semantics.
///
/// Indexing is `m(i, j)` with `0 <= i < rows()`, `0 <= j < cols()`.
/// Bounds are checked in debug builds only (operator()); `at(i, j)` always
/// checks. An empty matrix (0x0) is a valid value.
class Matrix {
 public:
  /// Creates an empty 0x0 matrix.
  Matrix() = default;

  /// Creates a rows x cols matrix with every entry set to `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Creates a matrix from nested initializer lists; all rows must have the
  /// same length. Example: Matrix{{1, 2}, {3, 4}}.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  /// Builds a rows x cols matrix from a flat row-major buffer.
  static Matrix from_row_major(std::size_t rows, std::size_t cols,
                               std::span<const double> data);

  /// The n x n identity matrix.
  static Matrix identity(std::size_t n);

  /// Matrix with the given vector on the diagonal (rectangular allowed via
  /// rows/cols >= diag.size()); defaults to square.
  static Matrix diagonal(std::span<const double> diag);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }

  double& operator()(std::size_t i, std::size_t j) noexcept {
    return data_[i * cols_ + j];
  }
  double operator()(std::size_t i, std::size_t j) const noexcept {
    return data_[i * cols_ + j];
  }

  /// Bounds-checked element access.
  double& at(std::size_t i, std::size_t j);
  double at(std::size_t i, std::size_t j) const;

  /// Contiguous row-major storage.
  std::span<double> data() noexcept { return data_; }
  std::span<const double> data() const noexcept { return data_; }

  /// View of row i as a contiguous span.
  std::span<double> row(std::size_t i);
  std::span<const double> row(std::size_t i) const;

  /// Copy of column j (columns are strided, so a copy is returned).
  std::vector<double> col(std::size_t j) const;

  /// Sum of row i / column j.
  double row_sum(std::size_t i) const;
  double col_sum(std::size_t j) const;

  /// All row sums / column sums.
  std::vector<double> row_sums() const;
  std::vector<double> col_sums() const;

  /// Sum of all entries.
  double total() const;

  /// Smallest / largest entry. Throws ValueError on an empty matrix.
  double min() const;
  double max() const;

  /// Transposed copy.
  Matrix transposed() const;

  /// Returns the submatrix selecting `row_idx` rows and `col_idx` columns
  /// in the given order (indices may repeat).
  Matrix submatrix(std::span<const std::size_t> row_idx,
                   std::span<const std::size_t> col_idx) const;

  /// Applies row/column permutations: result(i, j) = (*this)(rp[i], cp[j]).
  Matrix permuted(std::span<const std::size_t> row_perm,
                  std::span<const std::size_t> col_perm) const;

  /// Entrywise map in place.
  template <typename F>
  void transform(F&& f) {
    for (double& x : data_) x = f(x);
  }

  /// Scales row i by s / column j by s, in place.
  void scale_row(std::size_t i, double s);
  void scale_col(std::size_t j, double s);

  /// True if every entry is strictly positive / nonnegative.
  bool all_positive() const;
  bool all_nonnegative() const;

  /// True if any entry is not finite (NaN or +-inf).
  bool has_nonfinite() const;

  /// Count of exactly-zero entries.
  std::size_t zero_count() const;

  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix& operator*=(double s);
  Matrix& operator/=(double s);

  friend bool operator==(const Matrix& a, const Matrix& b) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

Matrix operator+(Matrix a, const Matrix& b);
Matrix operator-(Matrix a, const Matrix& b);
Matrix operator*(Matrix a, double s);
Matrix operator*(double s, Matrix a);
Matrix operator/(Matrix a, double s);

/// Matrix product (throws DimensionError on mismatch).
Matrix matmul(const Matrix& a, const Matrix& b);

/// y = A x (throws DimensionError on mismatch).
std::vector<double> matvec(const Matrix& a, std::span<const double> x);

/// A^T A, computed without forming the transpose.
Matrix gram(const Matrix& a);

/// Gram matrix of the smaller dimension of `a` (A^T A when tall, A A^T when
/// wide), written into the presized min x min buffer `g`. Allocation-free
/// core of the Gram-path singular value evaluators; `g` must already be
/// min(rows, cols) square (throws DimensionError otherwise).
void min_gram_into(const Matrix& a, Matrix& g);

/// Max over entries of |a - b|. Throws DimensionError on shape mismatch.
double max_abs_diff(const Matrix& a, const Matrix& b);

/// True when the two matrices have equal shape and entries within `tol`.
bool approx_equal(const Matrix& a, const Matrix& b, double tol);

/// Frobenius norm.
double frobenius_norm(const Matrix& a);

/// Streams a human-readable rendering (for debugging and gtest messages).
std::ostream& operator<<(std::ostream& os, const Matrix& m);

}  // namespace hetero::linalg
