#include "linalg/vector_ops.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "base/error.hpp"
#include "simd/simd.hpp"

namespace hetero::linalg {

double dot(std::span<const double> a, std::span<const double> b) {
  detail::require_dims(a.size() == b.size(), "dot: length mismatch");
  return simd::kernels().dot(a.data(), b.data(), a.size());
}

double norm2(std::span<const double> v) { return std::sqrt(dot(v, v)); }

double sum(std::span<const double> v) {
  return simd::kernels().sum(v.data(), v.size());
}

double mean(std::span<const double> v) {
  detail::require_value(!v.empty(), "mean: empty input");
  return sum(v) / static_cast<double>(v.size());
}

double stddev_population(std::span<const double> v) {
  const double mu = mean(v);
  double acc = 0.0;
  for (double x : v) acc += (x - mu) * (x - mu);
  return std::sqrt(acc / static_cast<double>(v.size()));
}

double stddev_sample(std::span<const double> v) {
  detail::require_value(v.size() >= 2, "stddev_sample: need at least 2 values");
  const double mu = mean(v);
  double acc = 0.0;
  for (double x : v) acc += (x - mu) * (x - mu);
  return std::sqrt(acc / static_cast<double>(v.size() - 1));
}

double geometric_mean(std::span<const double> v) {
  detail::require_value(!v.empty(), "geometric_mean: empty input");
  double log_sum = 0.0;
  for (double x : v) {
    detail::require_value(x > 0.0, "geometric_mean: non-positive entry");
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(v.size()));
}

double coefficient_of_variation(std::span<const double> v) {
  const double mu = mean(v);
  detail::require_value(mu != 0.0, "coefficient_of_variation: zero mean");
  return stddev_population(v) / mu;
}

std::vector<std::size_t> ascending_order(std::span<const double> v) {
  std::vector<std::size_t> idx(v.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::stable_sort(idx.begin(), idx.end(),
                   [&](std::size_t a, std::size_t b) { return v[a] < v[b]; });
  return idx;
}

std::vector<double> sorted_ascending(std::span<const double> v) {
  std::vector<double> out(v.begin(), v.end());
  std::sort(out.begin(), out.end());
  return out;
}

bool is_ascending(std::span<const double> v) {
  return std::is_sorted(v.begin(), v.end());
}

std::vector<std::size_t> identity_permutation(std::size_t n) {
  std::vector<std::size_t> p(n);
  std::iota(p.begin(), p.end(), std::size_t{0});
  return p;
}

bool is_permutation_vector(std::span<const std::size_t> p) {
  std::vector<bool> seen(p.size(), false);
  for (std::size_t x : p) {
    if (x >= p.size() || seen[x]) return false;
    seen[x] = true;
  }
  return true;
}

std::vector<std::size_t> inverse_permutation(std::span<const std::size_t> p) {
  detail::require_value(is_permutation_vector(p),
                        "inverse_permutation: not a permutation");
  std::vector<std::size_t> inv(p.size());
  for (std::size_t i = 0; i < p.size(); ++i) inv[p[i]] = i;
  return inv;
}

}  // namespace hetero::linalg
