#include "linalg/svd.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "base/error.hpp"
#include "linalg/jacobi_eigen.hpp"
#include "simd/simd.hpp"

namespace hetero::linalg {
namespace {

// Contiguous column-major working storage for the Jacobi kernel. The Matrix
// type is row-major, so its columns are strided; one-sided Jacobi touches
// nothing but columns, so the rotation loops run on a transposed copy where
// every column is a contiguous span and vectorizes cleanly.
struct ColMajor {
  std::vector<double> data;
  std::size_t rows = 0;

  explicit ColMajor(const Matrix& m) : data(m.rows() * m.cols()), rows(m.rows()) {
    for (std::size_t i = 0; i < m.rows(); ++i) {
      const auto r = m.row(i);
      for (std::size_t j = 0; j < m.cols(); ++j) data[j * rows + i] = r[j];
    }
  }

  double* col(std::size_t j) noexcept { return data.data() + j * rows; }
  const double* col(std::size_t j) const noexcept {
    return data.data() + j * rows;
  }

  void copy_back(Matrix& m) const {
    for (std::size_t i = 0; i < m.rows(); ++i) {
      auto r = m.row(i);
      for (std::size_t j = 0; j < m.cols(); ++j) r[j] = data[j * rows + i];
    }
  }
};

double dot(const double* a, const double* b, std::size_t n) {
  return simd::kernels().dot(a, b, n);
}

// One-sided Jacobi on the columns of `w` (m x n, m >= n is not required but
// improves behavior; callers transpose when m < n). Rotations are accumulated
// into `v` (n x n). On return the columns of `w` are mutually orthogonal and
// their norms are the singular values.
//
// Squared column norms (the alpha/beta of each rotation) are maintained
// incrementally across rotations via the Jacobi identities
//   alpha' = alpha - t * gamma,   beta' = beta + t * gamma
// (t = tan of the rotation angle), so each (p, q) pair costs one dot product
// (gamma) instead of three. The maintained values accumulate rounding drift
// of order eps per rotation, so they are recomputed exactly at the start of
// every sweep; within a sweep the drift is far below the rotation threshold.
void one_sided_jacobi(Matrix& w, Matrix& v, const SvdOptions& opt) {
  const std::size_t m = w.rows();
  const std::size_t n = w.cols();
  if (n < 2) return;

  ColMajor cw(w);
  ColMajor cv(v);
  std::vector<double> sqnorm(n);

  // Absolute column-norm floor: rotating an exactly dependent pair leaves a
  // round-off-level residual column whose direction re-correlates with the
  // rest every sweep, so a purely relative threshold never terminates on
  // rank-deficient input. Columns below the floor are flushed to exact
  // zero; this only affects singular values below ~1e-14 * sigma_max, which
  // carry no relative accuracy anyway.
  double max_col2 = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    sqnorm[j] = dot(cw.col(j), cw.col(j), m);
    max_col2 = std::max(max_col2, sqnorm[j]);
  }
  const double floor2 = max_col2 * 1e-28;

  const auto flush_if_negligible = [&](std::size_t j) {
    const double norm2 = sqnorm[j];
    if (norm2 > floor2 || norm2 == 0.0) return false;
    std::fill_n(cw.col(j), m, 0.0);
    sqnorm[j] = 0.0;
    return true;
  };

  for (std::size_t sweep = 0; sweep < opt.max_sweeps; ++sweep) {
    if (sweep > 0)
      for (std::size_t j = 0; j < n; ++j)
        sqnorm[j] = dot(cw.col(j), cw.col(j), m);

    bool rotated = false;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        flush_if_negligible(p);
        flush_if_negligible(q);
        const double alpha = sqnorm[p];
        const double beta = sqnorm[q];
        if (alpha == 0.0 || beta == 0.0) continue;
        double* wp = cw.col(p);
        double* wq = cw.col(q);
        const double gamma = dot(wp, wq, m);
        if (std::abs(gamma) <= opt.tol * std::sqrt(alpha * beta)) continue;
        rotated = true;

        // Classical Jacobi rotation zeroing the (p, q) Gram entry.
        const double zeta = (beta - alpha) / (2.0 * gamma);
        const double t = std::copysign(
            1.0 / (std::abs(zeta) + std::sqrt(1.0 + zeta * zeta)), zeta);
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;

        const auto& K = simd::kernels();
        K.rotate_pair(wp, wq, m, c, s);
        K.rotate_pair(cv.col(p), cv.col(q), n, c, s);
        sqnorm[p] = std::max(alpha - t * gamma, 0.0);
        sqnorm[q] = beta + t * gamma;
      }
    }
    if (!rotated) {
      cw.copy_back(w);
      cv.copy_back(v);
      return;
    }
  }
  throw ConvergenceError("svd: one-sided Jacobi did not converge");
}

// The pre-optimization kernel: three dot products per (p, q) pair, rotations
// applied to the strided row-major columns in place. Kept verbatim for the
// equivalence tests and the before/after perf benchmarks.
void one_sided_jacobi_reference(Matrix& w, Matrix& v, const SvdOptions& opt) {
  const std::size_t m = w.rows();
  const std::size_t n = w.cols();
  if (n < 2) return;

  double max_col2 = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    double s = 0.0;
    for (std::size_t i = 0; i < m; ++i) s += w(i, j) * w(i, j);
    max_col2 = std::max(max_col2, s);
  }
  const double floor2 = max_col2 * 1e-28;

  const auto flush_if_negligible = [&](std::size_t j, double norm2) {
    if (norm2 > floor2 || norm2 == 0.0) return false;
    for (std::size_t i = 0; i < m; ++i) w(i, j) = 0.0;
    return true;
  };

  for (std::size_t sweep = 0; sweep < opt.max_sweeps; ++sweep) {
    bool rotated = false;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        double alpha = 0.0, beta = 0.0, gamma = 0.0;
        for (std::size_t i = 0; i < m; ++i) {
          const double wip = w(i, p);
          const double wiq = w(i, q);
          alpha += wip * wip;
          beta += wiq * wiq;
          gamma += wip * wiq;
        }
        if (flush_if_negligible(p, alpha)) alpha = 0.0;
        if (flush_if_negligible(q, beta)) beta = 0.0;
        if (alpha == 0.0 || beta == 0.0) continue;
        if (std::abs(gamma) <= opt.tol * std::sqrt(alpha * beta)) continue;
        rotated = true;

        const double zeta = (beta - alpha) / (2.0 * gamma);
        const double t = std::copysign(
            1.0 / (std::abs(zeta) + std::sqrt(1.0 + zeta * zeta)), zeta);
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;

        for (std::size_t i = 0; i < m; ++i) {
          const double wip = w(i, p);
          const double wiq = w(i, q);
          w(i, p) = c * wip - s * wiq;
          w(i, q) = s * wip + c * wiq;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const double vip = v(i, p);
          const double viq = v(i, q);
          v(i, p) = c * vip - s * viq;
          v(i, q) = s * vip + c * viq;
        }
      }
    }
    if (!rotated) return;
  }
  throw ConvergenceError("svd: one-sided Jacobi did not converge");
}

SvdResult svd_tall(const Matrix& a, const SvdOptions& opt) {
  const std::size_t n = a.cols();
  Matrix w = a;
  Matrix v = Matrix::identity(n);
  one_sided_jacobi(w, v, opt);

  // Column norms are the singular values; sort descending.
  std::vector<double> sigma(n);
  for (std::size_t j = 0; j < n; ++j) {
    double s = 0.0;
    for (std::size_t i = 0; i < w.rows(); ++i) s += w(i, j) * w(i, j);
    sigma[j] = std::sqrt(s);
  }
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return sigma[x] > sigma[y];
  });

  SvdResult r;
  r.singular_values.resize(n);
  r.u = Matrix(w.rows(), n, 0.0);
  r.v = Matrix(n, n, 0.0);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t j = order[k];
    r.singular_values[k] = sigma[j];
    if (sigma[j] > 0.0) {
      const double inv = 1.0 / sigma[j];
      for (std::size_t i = 0; i < w.rows(); ++i) r.u(i, k) = w(i, j) * inv;
    }
    for (std::size_t i = 0; i < n; ++i) r.v(i, k) = v(i, j);
  }
  return r;
}

std::vector<double> singular_values_impl(const Matrix& a,
                                         const SvdOptions& options,
                                         bool reference) {
  detail::require_dims(!a.empty(), "singular_values: empty matrix");
  detail::require_value(!a.has_nonfinite(),
                        "singular_values: non-finite entries");
  Matrix w = a.rows() >= a.cols() ? a : a.transposed();
  Matrix v = Matrix::identity(w.cols());
  if (reference)
    one_sided_jacobi_reference(w, v, options);
  else
    one_sided_jacobi(w, v, options);
  std::vector<double> sigma(w.cols());
  for (std::size_t j = 0; j < w.cols(); ++j) {
    double s = 0.0;
    for (std::size_t i = 0; i < w.rows(); ++i) s += w(i, j) * w(i, j);
    sigma[j] = std::sqrt(s);
  }
  std::sort(sigma.begin(), sigma.end(), std::greater<>());
  return sigma;
}

}  // namespace

SvdResult svd(const Matrix& a, const SvdOptions& options) {
  detail::require_dims(!a.empty(), "svd: empty matrix");
  detail::require_value(!a.has_nonfinite(), "svd: non-finite entries");
  if (a.rows() >= a.cols()) return svd_tall(a, options);
  // For wide matrices decompose the transpose and swap U and V.
  SvdResult t = svd_tall(a.transposed(), options);
  return SvdResult{std::move(t.v), std::move(t.singular_values),
                   std::move(t.u)};
}

std::vector<double> singular_values(const Matrix& a, const SvdOptions& options) {
  return singular_values_impl(a, options, /*reference=*/false);
}

std::vector<double> singular_values_reference(const Matrix& a,
                                              const SvdOptions& options) {
  return singular_values_impl(a, options, /*reference=*/true);
}

std::vector<double> singular_values_gram(const Matrix& a) {
  detail::require_dims(!a.empty(), "singular_values_gram: empty matrix");
  detail::require_value(!a.has_nonfinite(),
                        "singular_values_gram: non-finite entries");
  const Matrix g = a.rows() >= a.cols() ? gram(a) : gram(a.transposed());
  auto sigma = symmetric_eigenvalues(g);  // descending
  for (double& s : sigma) s = std::sqrt(std::max(s, 0.0));
  return sigma;
}

std::size_t numerical_rank(const Matrix& a, double rel_tol) {
  const auto sigma = singular_values(a);
  if (sigma.empty() || sigma.front() == 0.0) return 0;
  const double cutoff = rel_tol * sigma.front();
  return static_cast<std::size_t>(
      std::count_if(sigma.begin(), sigma.end(),
                    [cutoff](double s) { return s > cutoff; }));
}

double spectral_norm(const Matrix& a) { return singular_values(a).front(); }

}  // namespace hetero::linalg
