#include "linalg/jacobi_eigen.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <numeric>

#include "base/error.hpp"
#include "simd/simd.hpp"

namespace hetero::linalg {
namespace {

// Largest |a(i, j)| above the diagonal: each row's off-diagonal tail is
// contiguous, so the scan is one reduce_max_abs per row.
double max_offdiag_abs(const Matrix& a) {
  const std::size_t n = a.rows();
  const auto& K = simd::kernels();
  double off = 0.0;
  for (std::size_t i = 0; i + 1 < n; ++i)
    off = std::max(off, K.reduce_max_abs(a.row(i).data() + i + 1, n - i - 1));
  return off;
}

void check_symmetric(const Matrix& a) {
  detail::require_value(a.rows() == a.cols(), "jacobi_eigen: not square");
  double scale = std::max(1.0, frobenius_norm(a));
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = i + 1; j < a.cols(); ++j)
      detail::require_value(std::abs(a(i, j) - a(j, i)) <= 1e-10 * scale,
                            "jacobi_eigen: not symmetric");
}

}  // namespace

EigenResult jacobi_eigen(const Matrix& a, const JacobiEigenOptions& opt) {
  check_symmetric(a);
  const std::size_t n = a.rows();
  Matrix d = a;
  Matrix v = Matrix::identity(n);
  const double stop = opt.tol * std::max(frobenius_norm(a), 1e-300);

  for (std::size_t sweep = 0; sweep < opt.max_sweeps; ++sweep) {
    const double off = max_offdiag_abs(d);
    if (off <= stop) {
      EigenResult r;
      r.values.resize(n);
      std::vector<std::size_t> order(n);
      std::iota(order.begin(), order.end(), std::size_t{0});
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t x, std::size_t y) {
                         return d(x, x) > d(y, y);
                       });
      r.vectors = Matrix(n, n, 0.0);
      for (std::size_t k = 0; k < n; ++k) {
        r.values[k] = d(order[k], order[k]);
        for (std::size_t i = 0; i < n; ++i) r.vectors(i, k) = v(i, order[k]);
      }
      return r;
    }

    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = d(p, q);
        if (std::abs(apq) <= stop * 1e-3) continue;
        const double app = d(p, p);
        const double aqq = d(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = std::copysign(
            1.0 / (std::abs(theta) + std::sqrt(1.0 + theta * theta)), theta);
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;

        // Columns are strided in the row-major storage, so the (·, p)/(·, q)
        // updates stay scalar; the row updates are contiguous rotate_pairs.
        for (std::size_t k = 0; k < n; ++k) {
          const double dkp = d(k, p);
          const double dkq = d(k, q);
          d(k, p) = c * dkp - s * dkq;
          d(k, q) = s * dkp + c * dkq;
        }
        simd::kernels().rotate_pair(d.row(p).data(), d.row(q).data(), n, c, s);
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }
  throw ConvergenceError("jacobi_eigen: did not converge");
}

std::vector<double> symmetric_eigenvalues(const Matrix& a,
                                          const JacobiEigenOptions& options) {
  check_symmetric(a);
  Matrix d = a;
  std::vector<double> values;
  symmetric_eigenvalues_into(d, values, options);
  return values;
}

void symmetric_eigenvalues_into(Matrix& a, std::vector<double>& values,
                                const JacobiEigenOptions& opt) {
  detail::require_value(a.rows() == a.cols(), "jacobi_eigen: not square");
  const std::size_t n = a.rows();
  const double stop = opt.tol * std::max(frobenius_norm(a), 1e-300);

  for (std::size_t sweep = 0; sweep < opt.max_sweeps; ++sweep) {
    const double off = max_offdiag_abs(a);
    if (off <= stop) {
      values.resize(n);
      for (std::size_t i = 0; i < n; ++i) values[i] = a(i, i);
      std::sort(values.begin(), values.end(), std::greater<>());
      return;
    }

    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (std::abs(apq) <= stop * 1e-3) continue;
        const double app = a(p, p);
        const double aqq = a(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = std::copysign(
            1.0 / (std::abs(theta) + std::sqrt(1.0 + theta * theta)), theta);
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;

        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a(k, p);
          const double akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        simd::kernels().rotate_pair(a.row(p).data(), a.row(q).data(), n, c, s);
      }
    }
  }
  throw ConvergenceError("jacobi_eigen: did not converge");
}

void symmetric_eigenvalues_warm(const Matrix& a, Matrix& basis,
                                std::vector<double>& values,
                                WarmEigenWorkspace& ws,
                                const JacobiEigenOptions& opt) {
  detail::require_value(a.rows() == a.cols(), "jacobi_eigen: not square");
  detail::require_value(basis.rows() == a.rows() && basis.cols() == a.cols(),
                        "jacobi_eigen: basis shape mismatch");
  const std::size_t n = a.rows();
  if (ws.product.rows() != n || ws.product.cols() != n) {
    ws.product = Matrix(n, n, 0.0);
    ws.congruence = Matrix(n, n, 0.0);
  } else {
    std::fill(ws.product.data().begin(), ws.product.data().end(), 0.0);
    std::fill(ws.congruence.data().begin(), ws.congruence.data().end(), 0.0);
  }
  Matrix& t = ws.product;
  Matrix& b = ws.congruence;
  const auto& K = simd::kernels();
  // T = A * V with i-k-j loop order: every inner access is row-contiguous,
  // so each inner loop is one axpy over the dispatched kernels.
  for (std::size_t i = 0; i < n; ++i) {
    const auto arow = a.row(i);
    const auto trow = t.row(i);
    for (std::size_t k = 0; k < n; ++k)
      K.axpy(trow.data(), basis.row(k).data(), n, arow[k]);
  }
  // B = V^T * T, k-outer for the same reason.
  for (std::size_t k = 0; k < n; ++k) {
    const auto vrow = basis.row(k);
    const auto trow = t.row(k);
    for (std::size_t i = 0; i < n; ++i)
      K.axpy(b.row(i).data(), trow.data(), n, vrow[i]);
  }
  // B is symmetric in exact arithmetic; average away the rounding skew so
  // the two-sided rotations see a truly symmetric matrix.
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) {
      const double mean = 0.5 * (b(i, j) + b(j, i));
      b(i, j) = mean;
      b(j, i) = mean;
    }

  const double stop = opt.tol * std::max(frobenius_norm(b), 1e-300);
  for (std::size_t sweep = 0; sweep < opt.max_sweeps; ++sweep) {
    const double off = max_offdiag_abs(b);
    if (off <= stop) {
      values.resize(n);
      for (std::size_t i = 0; i < n; ++i) values[i] = b(i, i);
      std::sort(values.begin(), values.end(), std::greater<>());
      return;
    }

    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double bpq = b(p, q);
        // Entries already below half the stopping threshold cannot block
        // convergence and shift eigenvalues only quadratically below it;
        // skipping them leaves the cleanup sweep touching just the pairs
        // the perturbation actually excited.
        if (std::abs(bpq) <= stop * 0.5) continue;
        const double bpp = b(p, p);
        const double bqq = b(q, q);
        const double theta = (bqq - bpp) / (2.0 * bpq);
        const double tt = std::copysign(
            1.0 / (std::abs(theta) + std::sqrt(1.0 + theta * theta)), theta);
        const double c = 1.0 / std::sqrt(1.0 + tt * tt);
        const double s = c * tt;

        for (std::size_t k = 0; k < n; ++k) {
          const double bkp = b(k, p);
          const double bkq = b(k, q);
          b(k, p) = c * bkp - s * bkq;
          b(k, q) = s * bkp + c * bkq;
        }
        K.rotate_pair(b.row(p).data(), b.row(q).data(), n, c, s);
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = basis(k, p);
          const double vkq = basis(k, q);
          basis(k, p) = c * vkp - s * vkq;
          basis(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }
  throw ConvergenceError("jacobi_eigen: did not converge");
}

}  // namespace hetero::linalg
