#include "linalg/jacobi_eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "base/error.hpp"

namespace hetero::linalg {
namespace {

void check_symmetric(const Matrix& a) {
  detail::require_value(a.rows() == a.cols(), "jacobi_eigen: not square");
  double scale = std::max(1.0, frobenius_norm(a));
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = i + 1; j < a.cols(); ++j)
      detail::require_value(std::abs(a(i, j) - a(j, i)) <= 1e-10 * scale,
                            "jacobi_eigen: not symmetric");
}

}  // namespace

EigenResult jacobi_eigen(const Matrix& a, const JacobiEigenOptions& opt) {
  check_symmetric(a);
  const std::size_t n = a.rows();
  Matrix d = a;
  Matrix v = Matrix::identity(n);
  const double stop = opt.tol * std::max(frobenius_norm(a), 1e-300);

  for (std::size_t sweep = 0; sweep < opt.max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j)
        off = std::max(off, std::abs(d(i, j)));
    if (off <= stop) {
      EigenResult r;
      r.values.resize(n);
      std::vector<std::size_t> order(n);
      std::iota(order.begin(), order.end(), std::size_t{0});
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t x, std::size_t y) {
                         return d(x, x) > d(y, y);
                       });
      r.vectors = Matrix(n, n, 0.0);
      for (std::size_t k = 0; k < n; ++k) {
        r.values[k] = d(order[k], order[k]);
        for (std::size_t i = 0; i < n; ++i) r.vectors(i, k) = v(i, order[k]);
      }
      return r;
    }

    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = d(p, q);
        if (std::abs(apq) <= stop * 1e-3) continue;
        const double app = d(p, p);
        const double aqq = d(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = std::copysign(
            1.0 / (std::abs(theta) + std::sqrt(1.0 + theta * theta)), theta);
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;

        for (std::size_t k = 0; k < n; ++k) {
          const double dkp = d(k, p);
          const double dkq = d(k, q);
          d(k, p) = c * dkp - s * dkq;
          d(k, q) = s * dkp + c * dkq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double dpk = d(p, k);
          const double dqk = d(q, k);
          d(p, k) = c * dpk - s * dqk;
          d(q, k) = s * dpk + c * dqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }
  throw ConvergenceError("jacobi_eigen: did not converge");
}

std::vector<double> symmetric_eigenvalues(const Matrix& a,
                                          const JacobiEigenOptions& options) {
  return jacobi_eigen(a, options).values;
}

}  // namespace hetero::linalg
