// Small vector utilities shared across the library: norms, statistics,
// sorting permutations. These underpin the heterogeneity measures (which are
// statistics over machine-performance / task-difficulty vectors).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace hetero::linalg {

/// Dot product. Throws DimensionError on length mismatch.
double dot(std::span<const double> a, std::span<const double> b);

/// Euclidean (2-) norm.
double norm2(std::span<const double> v);

/// Sum of entries.
double sum(std::span<const double> v);

/// Arithmetic mean. Throws ValueError on empty input.
double mean(std::span<const double> v);

/// Population standard deviation (divides by n, matching the paper's COV
/// values in Figure 2). Throws ValueError on empty input.
double stddev_population(std::span<const double> v);

/// Sample standard deviation (divides by n-1). Throws ValueError if n < 2.
double stddev_sample(std::span<const double> v);

/// Geometric mean. All entries must be positive.
double geometric_mean(std::span<const double> v);

/// Coefficient of variation: population stddev / mean. Mean must be nonzero.
double coefficient_of_variation(std::span<const double> v);

/// Indices that sort `v` ascending (stable).
std::vector<std::size_t> ascending_order(std::span<const double> v);

/// Returns v sorted ascending.
std::vector<double> sorted_ascending(std::span<const double> v);

/// True if v is sorted ascending (non-strict).
bool is_ascending(std::span<const double> v);

/// The identity permutation [0, 1, ..., n-1].
std::vector<std::size_t> identity_permutation(std::size_t n);

/// Inverse of a permutation. Throws ValueError if p is not a permutation.
std::vector<std::size_t> inverse_permutation(std::span<const std::size_t> p);

/// True if p is a permutation of [0, n).
bool is_permutation_vector(std::span<const std::size_t> p);

}  // namespace hetero::linalg
