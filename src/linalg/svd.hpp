// Singular value decomposition via one-sided Jacobi rotations.
//
// The TMA measure (paper eq. 5 / eq. 8) is defined from the singular values
// of the (column-normalized or standard-form) ECS matrix. ECS matrices are
// small dense rectangular matrices, for which one-sided Jacobi is simple,
// unconditionally convergent, and computes small singular values to high
// relative accuracy — exactly what eq. 8's averaging of *non-maximum*
// singular values needs.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace hetero::linalg {

/// Thin SVD A = U * diag(S) * V^T with singular values sorted descending.
///
/// For an m x n input with r = min(m, n): U is m x r with orthonormal
/// columns (columns for zero singular values are zero-filled), S has r
/// entries, V is n x r with orthonormal columns.
struct SvdResult {
  Matrix u;
  std::vector<double> singular_values;
  Matrix v;
};

struct SvdOptions {
  /// Convergence threshold on the cosine of the angle between column pairs.
  double tol = 1e-13;
  /// Maximum number of sweeps over all column pairs.
  std::size_t max_sweeps = 60;
};

/// Full (thin) SVD. Throws ConvergenceError if the sweep budget is exhausted
/// (does not happen for finite inputs at the default settings).
SvdResult svd(const Matrix& a, const SvdOptions& options = {});

/// Singular values only, sorted descending. Cheaper than svd() because no
/// basis accumulation is required.
std::vector<double> singular_values(const Matrix& a,
                                    const SvdOptions& options = {});

/// Singular values via the pre-optimization Jacobi kernel (three dot
/// products per column pair, strided row-major access). Kept for the
/// equivalence tests and before/after perf benchmarks; prefer
/// singular_values() everywhere else.
std::vector<double> singular_values_reference(const Matrix& a,
                                              const SvdOptions& options = {});

/// Singular values via the eigenvalues of the min-dimension Gram matrix,
/// sorted descending. Costs one min^2 * max Gram build plus a min-sized
/// symmetric Jacobi solve — far cheaper than one-sided Jacobi on the full
/// matrix when one dimension is small. Squaring the condition number halves
/// the attainable accuracy: singular values below ~sqrt(eps) * sigma_max
/// come back with absolute error up to ~1e-8 * sigma_max. Intended for
/// search loops that tolerate that (the annealing energy evaluator); use
/// singular_values() for reported measures.
std::vector<double> singular_values_gram(const Matrix& a);

/// Numerical rank: number of singular values > rel_tol * sigma_max.
std::size_t numerical_rank(const Matrix& a, double rel_tol = 1e-10);

/// 2-norm (largest singular value).
double spectral_norm(const Matrix& a);

}  // namespace hetero::linalg
