#include "linalg/rsvd.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <utility>

#include "base/error.hpp"
#include "linalg/qr.hpp"
#include "linalg/svd.hpp"
#include "parallel/thread_pool.hpp"
#include "simd/simd.hpp"

namespace hetero::linalg {
namespace {

par::ThreadPool& resolve_pool(par::ThreadPool* pool) {
  return pool ? *pool : par::shared_pool();
}

// Cache-blocked transpose: the naive loop strides one full row length per
// element on the write side, which at frontier sizes (rows in the tens of
// thousands) misses cache on every store.
Matrix transposed_blocked(const Matrix& a) {
  constexpr std::size_t kB = 32;
  Matrix t(a.cols(), a.rows(), 0.0);
  for (std::size_t i0 = 0; i0 < a.rows(); i0 += kB) {
    const std::size_t i1 = std::min(a.rows(), i0 + kB);
    for (std::size_t j0 = 0; j0 < a.cols(); j0 += kB) {
      const std::size_t j1 = std::min(a.cols(), j0 + kB);
      for (std::size_t i = i0; i < i1; ++i)
        for (std::size_t j = j0; j < j1; ++j) t(j, i) = a(i, j);
    }
  }
  return t;
}

// ---------------------------------------------------------------------------
// Deterministic counter-based Gaussian sketch entries.

std::uint64_t splitmix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

double uniform01(std::uint64_t bits) {
  // 53 mantissa bits; the +0.5 keeps the value strictly inside (0, 1) so
  // the Box-Muller log below never sees zero.
  return (static_cast<double>(bits >> 11) + 0.5) * 0x1.0p-53;
}

// Standard normal keyed on (seed, index): a pure function of its
// arguments, so any thread can produce any sketch entry with no shared
// generator state — the root of the cross-thread-count determinism.
double gaussian_at(std::uint64_t seed, std::uint64_t index) {
  const double u1 = uniform01(splitmix(seed + 2 * index));
  const double u2 = uniform01(splitmix(seed + 2 * index + 1));
  constexpr double kTwoPi = 6.28318530717958647692;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
}

// ---------------------------------------------------------------------------
// Deterministic pool-parallel products.

// out = a * s for a tall a (rows x n) and small s (n x l): each output row
// is accumulated independently in fixed column order (axpy2 over column
// pairs), so the result does not depend on how rows land on threads.
Matrix matmul_rows_parallel(const Matrix& a, const Matrix& s,
                            par::ThreadPool& pool) {
  const std::size_t n = a.cols();
  const std::size_t l = s.cols();
  Matrix out(a.rows(), l, 0.0);
  par::parallel_for(
      pool, 0, a.rows(),
      [&](std::size_t i) {
        const auto& K = simd::kernels();
        const double* ar = a.row(i).data();
        double* yr = out.row(i).data();
        std::size_t j = 0;
        for (; j + 2 <= n; j += 2)
          K.axpy2(yr, s.row(j).data(), s.row(j + 1).data(), l, ar[j],
                  ar[j + 1]);
        for (; j < n; ++j) K.axpy(yr, s.row(j).data(), l, ar[j]);
      },
      16);
  return out;
}

// c = x^T y for row-major x (m x p) and y (m x r): row tiles accumulate
// tile-local partials that are folded in ascending tile order afterwards,
// so the summation order is a function of tile_rows alone — never of the
// thread count. Tile size is fixed by the caller for the same reason.
Matrix matmul_at_b_tiled(const Matrix& x, const Matrix& y,
                         par::ThreadPool& pool, std::size_t tile_rows) {
  const std::size_t m = x.rows();
  const std::size_t p = x.cols();
  const std::size_t r = y.cols();
  const std::size_t tiles = (m + tile_rows - 1) / tile_rows;
  std::vector<Matrix> partial(tiles);
  par::parallel_for(pool, 0, tiles, [&](std::size_t t) {
    const auto& K = simd::kernels();
    Matrix acc(p, r, 0.0);
    const std::size_t i0 = t * tile_rows;
    const std::size_t i1 = std::min(m, i0 + tile_rows);
    std::size_t i = i0;
    for (; i + 2 <= i1; i += 2) {
      const double* xr0 = x.row(i).data();
      const double* xr1 = x.row(i + 1).data();
      const double* yr0 = y.row(i).data();
      const double* yr1 = y.row(i + 1).data();
      for (std::size_t c = 0; c < p; ++c)
        K.axpy2(acc.row(c).data(), yr0, yr1, r, xr0[c], xr1[c]);
    }
    for (; i < i1; ++i) {
      const double* xr = x.row(i).data();
      const double* yr = y.row(i).data();
      for (std::size_t c = 0; c < p; ++c)
        K.axpy(acc.row(c).data(), yr, r, xr[c]);
    }
    partial[t] = std::move(acc);
  });
  Matrix c(p, r, 0.0);
  const auto& K = simd::kernels();
  for (std::size_t t = 0; t < tiles; ++t)
    K.add_into(partial[t].data().data(), c.data().data(), p * r);
  return c;
}

// b = x x^T for row-contiguous x (n x m): upper-triangle block pairs in
// parallel (each entry is one fixed-order kernel dot, so thread placement
// cannot change a single bit), mirrored to the lower triangle afterwards.
Matrix gram_rows_blocked(const Matrix& x, par::ThreadPool& pool,
                         std::size_t block) {
  const std::size_t n = x.rows();
  const std::size_t m = x.cols();
  Matrix b(n, n, 0.0);
  const std::size_t nb = (n + block - 1) / block;
  std::vector<std::pair<std::size_t, std::size_t>> blocks;
  blocks.reserve(nb * (nb + 1) / 2);
  for (std::size_t bi = 0; bi < nb; ++bi)
    for (std::size_t bj = bi; bj < nb; ++bj) blocks.emplace_back(bi, bj);
  par::parallel_for(pool, 0, blocks.size(), [&](std::size_t idx) {
    const auto& K = simd::kernels();
    const std::size_t bi = blocks[idx].first;
    const std::size_t bj = blocks[idx].second;
    const std::size_t i1 = std::min(n, (bi + 1) * block);
    const std::size_t j1 = std::min(n, (bj + 1) * block);
    for (std::size_t i = bi * block; i < i1; ++i) {
      const double* ri = x.row(i).data();
      std::size_t j = std::max(i, bj * block);
      for (; j + 2 <= j1; j += 2)
        K.dot2(ri, x.row(j).data(), x.row(j + 1).data(), m, &b(i, j),
               &b(i, j + 1));
      for (; j < j1; ++j) b(i, j) = K.dot(ri, x.row(j).data(), m);
    }
  });
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) b(j, i) = b(i, j);
  return b;
}

// ---------------------------------------------------------------------------
// Symmetric eigenvalues: Householder tridiagonalization + implicit QL.

// Reduces symmetric b (destroyed) to tridiagonal (d, e) with e[k] the
// subdiagonal between k and k+1. Eigenvalues only: the orthogonal factor
// is never accumulated. The rank-2 trailing update and the symmetric
// matvec are pool-parallel per row — each row's result is a fixed-order
// kernel reduction, so the factorization is thread-count-invariant.
void tridiagonalize(Matrix& b, par::ThreadPool& pool, std::vector<double>& d,
                    std::vector<double>& e) {
  const std::size_t n = b.rows();
  d.assign(n, 0.0);
  e.assign(n, 0.0);
  std::vector<double> v(n, 0.0);
  std::vector<double> w(n, 0.0);
  const auto& K = simd::kernels();
  for (std::size_t k = 0; k + 2 < n; ++k) {
    const std::size_t off = k + 1;
    const std::size_t len = n - off;
    // Row k beyond the diagonal is the (contiguous) column to annihilate.
    const double* xk = b.row(k).data() + off;
    const double norm = std::sqrt(K.dot(xk, xk, len));
    if (norm == 0.0) continue;
    const double alpha = xk[0] >= 0.0 ? -norm : norm;
    e[k] = alpha;
    for (std::size_t t = 0; t < len; ++t) v[t] = xk[t];
    v[0] -= alpha;
    const double beta = 2.0 / K.dot(v.data(), v.data(), len);
    // p = beta * B22 v, then w = p - (beta/2)(p.v) v; B22 -= v w^T + w v^T.
    par::parallel_for(
        pool, 0, len,
        [&](std::size_t t) {
          w[t] = beta * K.dot(b.row(off + t).data() + off, v.data(), len);
        },
        16);
    const double half = 0.5 * beta * K.dot(w.data(), v.data(), len);
    for (std::size_t t = 0; t < len; ++t) w[t] -= half * v[t];
    par::parallel_for(
        pool, 0, len,
        [&](std::size_t t) {
          K.axpy2(b.row(off + t).data() + off, w.data(), v.data(), len,
                  -v[t], -w[t]);
        },
        8);
  }
  for (std::size_t i = 0; i < n; ++i) d[i] = b(i, i);
  if (n >= 2) e[n - 2] = b(n - 2, n - 1);
}

// Implicit-shift QL on a symmetric tridiagonal (d, e): classic EISPACK
// tql-style sweep, eigenvalues only, O(n^2) total. d returns the
// eigenvalues in no particular order.
void ql_implicit(std::vector<double>& d, std::vector<double>& e) {
  const std::size_t n = d.size();
  if (n <= 1) return;
  constexpr double eps = std::numeric_limits<double>::epsilon();
  for (std::size_t l = 0; l < n; ++l) {
    std::size_t iter = 0;
    std::size_t split;
    do {
      // Smallest index >= l where the subdiagonal is negligible.
      for (split = l; split + 1 < n; ++split) {
        const double scale = std::abs(d[split]) + std::abs(d[split + 1]);
        if (std::abs(e[split]) <= eps * scale) break;
      }
      if (split == l) break;
      if (iter++ == 64)
        throw ConvergenceError(
            "blocked_singular_values: implicit QL sweep exceeded its "
            "iteration budget");
      // Wilkinson shift from the leading 2x2, then one implicit QL sweep
      // of plane rotations chased from `split` down to l.
      double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
      double r = std::hypot(g, 1.0);
      g = d[split] - d[l] + e[l] / (g + std::copysign(r, g));
      double s = 1.0;
      double c = 1.0;
      double p = 0.0;
      bool deflated = false;
      for (std::size_t i = split; i-- > l;) {
        double f = s * e[i];
        const double h = c * e[i];
        r = std::hypot(f, g);
        e[i + 1] = r;
        if (r == 0.0) {  // rotation underflow: deflate and restart
          d[i + 1] -= p;
          e[split] = 0.0;
          deflated = true;
          break;
        }
        s = f / r;
        c = g / r;
        g = d[i + 1] - p;
        r = (d[i] - g) * s + 2.0 * c * h;
        p = s * r;
        d[i + 1] = g + p;
        g = c * r - h;
      }
      if (deflated) continue;
      d[l] -= p;
      e[l] = g;
      e[split] = 0.0;
    } while (split != l);
  }
}

}  // namespace

RsvdResult rsvd(const Matrix& a, const RsvdOptions& options) {
  detail::require_value(!a.empty(), "rsvd: empty matrix");
  detail::require_value(!a.has_nonfinite(), "rsvd: non-finite entries");
  detail::require_value(options.rank > 0, "rsvd: rank must be positive");
  detail::require_value(options.tile_rows > 0,
                        "rsvd: tile_rows must be positive");
  if (a.rows() < a.cols()) {
    // Work in the tall orientation (the sketch compresses the short
    // dimension); swap the factors back for the caller.
    RsvdResult t = rsvd(transposed_blocked(a), options);
    std::swap(t.u, t.v);
    return t;
  }
  par::ThreadPool& pool = resolve_pool(options.pool);
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  const std::size_t k = std::min(options.rank, n);
  const std::size_t l = std::min(n, k + options.oversample);

  // Gaussian sketch: omega(j, p) is a pure function of (seed, j*l + p).
  Matrix omega(n, l, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    const auto row = omega.row(j);
    for (std::size_t p = 0; p < l; ++p)
      row[p] =
          gaussian_at(options.seed, static_cast<std::uint64_t>(j * l + p));
  }

  // Range capture + power iteration, re-orthogonalized after every
  // application so the small singular values of the projected matrix do
  // not drown in the dominant direction.
  Matrix q = thin_qr(matmul_rows_parallel(a, omega, pool)).q;  // m x l
  for (std::size_t it = 0; it < options.power_iterations; ++it) {
    const Matrix z =
        thin_qr(matmul_at_b_tiled(a, q, pool, options.tile_rows)).q;  // n x l
    q = thin_qr(matmul_rows_parallel(a, z, pool)).q;
  }

  // Project to l x n, solve exactly there, lift the left factor through Q.
  const SvdResult small =
      svd(matmul_at_b_tiled(q, a, pool, options.tile_rows));
  const std::size_t keep = std::min(k, small.singular_values.size());

  RsvdResult out;
  out.singular_values.assign(
      small.singular_values.begin(),
      small.singular_values.begin() + static_cast<std::ptrdiff_t>(keep));
  const Matrix ut = small.u.transposed();  // needed rows contiguous
  out.u = Matrix(m, keep, 0.0);
  par::parallel_for(
      pool, 0, m,
      [&](std::size_t i) {
        const auto& K = simd::kernels();
        const double* qi = q.row(i).data();
        const auto row = out.u.row(i);
        for (std::size_t c = 0; c < keep; ++c)
          row[c] = K.dot(qi, ut.row(c).data(), l);
      },
      64);
  out.v = Matrix(n, keep, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    const auto src = small.v.row(j);
    const auto dst = out.v.row(j);
    for (std::size_t c = 0; c < keep; ++c) dst[c] = src[c];
  }
  return out;
}

std::vector<double> blocked_singular_values(
    const Matrix& a, const BlockedSpectrumOptions& options) {
  detail::require_value(!a.empty(), "blocked_singular_values: empty matrix");
  detail::require_value(!a.has_nonfinite(),
                        "blocked_singular_values: non-finite entries");
  detail::require_value(options.block > 0,
                        "blocked_singular_values: block must be positive");
  par::ThreadPool& pool = resolve_pool(options.pool);

  // Gram on the short dimension, with its rows made contiguous first.
  Matrix t_storage;
  const Matrix* short_rows = &a;
  if (a.rows() > a.cols()) {
    t_storage = transposed_blocked(a);
    short_rows = &t_storage;
  }
  Matrix b = gram_rows_blocked(*short_rows, pool, options.block);
  t_storage = Matrix();  // release before the O(n^2) eigen stage

  std::vector<double> d;
  std::vector<double> e;
  tridiagonalize(b, pool, d, e);
  b = Matrix();
  ql_implicit(d, e);

  std::vector<double> sigma(d.size(), 0.0);
  for (std::size_t i = 0; i < d.size(); ++i)
    sigma[i] = d[i] > 0.0 ? std::sqrt(d[i]) : 0.0;
  std::sort(sigma.begin(), sigma.end(), std::greater<>());
  return sigma;
}

}  // namespace hetero::linalg
