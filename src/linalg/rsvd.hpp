// Large-matrix spectral kernels for the size-frontier characterization
// path (HEET-style scalable heterogeneity scoring; Halko, Martinsson &
// Tropp randomized range finding).
//
// Two entry points:
//
//  - rsvd(): randomized top-k SVD. A seeded Gaussian sketch compresses the
//    matrix onto k + oversample directions, power/subspace iteration with
//    thin-QR re-orthogonalization sharpens the captured range, and an
//    exact one-sided-Jacobi SVD of the small projected matrix delivers the
//    head triplets. Every sketch entry is a pure function of (seed, entry
//    index) — a counter-based splitmix64 + Box-Muller generator — and
//    every pool-parallel product folds its tile partials in ascending tile
//    order, so results are bit-identical across thread counts and runs.
//
//  - blocked_singular_values(): the FULL singular spectrum via a tiled,
//    pool-parallel Gram build on the short dimension, Householder
//    tridiagonalization (rank-2 updates through the axpy2 kernel), and an
//    implicit-shift QL eigenvalue sweep. TMA averages the whole
//    non-maximum spectrum, so a top-k head plus a tail estimate cannot
//    bound its relative error on the Marchenko-Pastur-like bulk of
//    standardized matrices; this path keeps the average exact while
//    replacing the dense twin's O(min^2 * max) Jacobi sweeps with an
//    O(min * max) data pass plus an O(min^3) eigenvalue solve.
//
// Accuracy: squaring through the Gram matrix halves the attainable
// precision exactly like singular_values_gram — absolute eigenvalue error
// ~eps * sigma_max^2 maps to a singular-value error ~eps * sigma_max^2 /
// (2 sigma). On standard forms (sigma_max = 1 by Theorem 2, bulk sigmas
// far above sqrt(eps)) this sits orders of magnitude inside the 1e-6
// budget the rsvd_equiv test label pins down.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "linalg/matrix.hpp"

namespace hetero::par {
class ThreadPool;
}

namespace hetero::linalg {

struct RsvdOptions {
  /// Number of singular triplets to return (clamped to min(rows, cols)).
  std::size_t rank = 16;
  /// Extra sketch columns beyond `rank`; the classic +5..+10 oversampling
  /// makes the captured range robust without measurable cost.
  std::size_t oversample = 8;
  /// Power (subspace) iterations; each sharpens the spectral decay seen by
  /// the sketch at the cost of two extra passes over the matrix. Two is
  /// plenty for the standard-form spectra this library meets.
  std::size_t power_iterations = 2;
  /// Sketch seed. The Gaussian test matrix is generated counter-based from
  /// this value alone, so equal seeds reproduce bitwise-equal results on
  /// any thread count.
  std::uint64_t seed = 0x243f6a8885a308d3ull;
  /// Row-tile height of the pool-parallel products.
  std::size_t tile_rows = 256;
  /// Worker pool; nullptr uses par::shared_pool().
  par::ThreadPool* pool = nullptr;
};

/// Top-k thin SVD approximation A ~= U diag(S) V^T with S descending:
/// U is rows x k, V is cols x k, both with orthonormal columns.
struct RsvdResult {
  Matrix u;
  std::vector<double> singular_values;
  Matrix v;
};

/// Randomized top-k SVD (see file comment). When the sketch spans the full
/// short dimension (rank + oversample >= min(rows, cols)) the result is an
/// exact SVD up to roundoff. Throws ValueError on empty or non-finite
/// input.
RsvdResult rsvd(const Matrix& a, const RsvdOptions& options = {});

struct BlockedSpectrumOptions {
  /// Row/column block edge of the tiled Gram build.
  std::size_t block = 48;
  /// Worker pool; nullptr uses par::shared_pool().
  par::ThreadPool* pool = nullptr;
};

/// Full singular spectrum, sorted descending, via the blocked Gram +
/// tridiagonalization + implicit-QL path (see file comment). Results are
/// bit-identical across thread counts. Throws ValueError on empty or
/// non-finite input, ConvergenceError if the QL sweep stalls (does not
/// happen for finite inputs).
std::vector<double> blocked_singular_values(
    const Matrix& a, const BlockedSpectrumOptions& options = {});

}  // namespace hetero::linalg
