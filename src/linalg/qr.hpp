// Householder QR and least squares.
//
// Used by the application studies to regress scheduling outcomes on the
// heterogeneity measures (multiple linear regression), and generally
// useful alongside the SVD for analysis on top of ECS matrices.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace hetero::linalg {

/// Thin QR of an m x n matrix with m >= n: A = Q R, Q m x n with
/// orthonormal columns, R n x n upper triangular.
struct QrResult {
  Matrix q;
  Matrix r;
};

/// Householder QR. Throws ValueError when m < n or entries are non-finite.
QrResult qr(const Matrix& a);

/// Householder QR that never materializes the full m x m orthogonal
/// factor: the reflectors are accumulated backward into an m x n Q
/// directly, so memory stays O(m n) instead of O(m^2). This is the
/// re-orthogonalization step of the randomized SVD's subspace iteration,
/// where m reaches tens of thousands while n is a few dozen sketch
/// columns (qr()'s identity(m) scratch alone would be gigabytes there).
/// Internally works on a column-major copy so every reflector touches
/// contiguous memory through the kernel layer. Results match qr() up to
/// roundoff; exact column-rank deficiency degrades the same way (zero R
/// diagonal, unreflected Q column). Throws like qr().
QrResult thin_qr(const Matrix& a);

/// Least-squares solution of min_x ||A x - b||_2 for m >= n with full
/// column rank. Throws ValueError on rank deficiency (tiny R diagonal).
std::vector<double> least_squares(const Matrix& a, std::span<const double> b);

/// Ordinary least-squares fit with an intercept: y ~ b0 + b1 x1 + ...
/// Returns the coefficient vector [b0, b1, ..., bk] and the R^2 of the fit.
struct LinearFit {
  std::vector<double> coefficients;
  double r_squared = 0.0;
};

/// `predictors` is an n_samples x k matrix; `response` has n_samples
/// entries. Requires n_samples > k + 1.
LinearFit fit_linear(const Matrix& predictors, std::span<const double> response);

/// 2-norm condition number sigma_max / sigma_min (infinity when singular).
double condition_number(const Matrix& a);

/// Moore-Penrose pseudoinverse via the SVD; singular values below
/// rel_tol * sigma_max are treated as zero.
Matrix pseudo_inverse(const Matrix& a, double rel_tol = 1e-12);

}  // namespace hetero::linalg
