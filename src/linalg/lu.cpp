#include "linalg/lu.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "base/error.hpp"

namespace hetero::linalg {

LuDecomposition::LuDecomposition(const Matrix& a) : lu_(a) {
  detail::require_value(a.rows() == a.cols(), "lu: matrix must be square");
  detail::require_value(!a.has_nonfinite(), "lu: non-finite entries");
  const std::size_t n = a.rows();
  piv_.resize(n);
  std::iota(piv_.begin(), piv_.end(), std::size_t{0});

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot: largest magnitude in column k at or below the diagonal.
    std::size_t p = k;
    for (std::size_t i = k + 1; i < n; ++i)
      if (std::abs(lu_(i, k)) > std::abs(lu_(p, k))) p = i;
    if (p != k) {
      for (std::size_t j = 0; j < n; ++j) std::swap(lu_(p, j), lu_(k, j));
      std::swap(piv_[p], piv_[k]);
      pivot_sign_ = -pivot_sign_;
    }
    const double pivot = lu_(k, k);
    if (pivot == 0.0) {
      singular_ = true;
      continue;
    }
    for (std::size_t i = k + 1; i < n; ++i) {
      lu_(i, k) /= pivot;
      const double lik = lu_(i, k);
      if (lik == 0.0) continue;
      for (std::size_t j = k + 1; j < n; ++j) lu_(i, j) -= lik * lu_(k, j);
    }
  }
}

double LuDecomposition::determinant() const {
  if (singular_) return 0.0;
  double det = pivot_sign_;
  for (std::size_t k = 0; k < lu_.rows(); ++k) det *= lu_(k, k);
  return det;
}

std::vector<double> LuDecomposition::solve(std::span<const double> b) const {
  detail::require_value(!singular_, "lu::solve: singular matrix");
  detail::require_dims(b.size() == lu_.rows(), "lu::solve: size mismatch");
  const std::size_t n = lu_.rows();
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = b[piv_[i]];
  // Forward substitution (L has unit diagonal).
  for (std::size_t i = 1; i < n; ++i)
    for (std::size_t j = 0; j < i; ++j) x[i] -= lu_(i, j) * x[j];
  // Back substitution.
  for (std::size_t ii = n; ii-- > 0;) {
    for (std::size_t j = ii + 1; j < n; ++j) x[ii] -= lu_(ii, j) * x[j];
    x[ii] /= lu_(ii, ii);
  }
  return x;
}

Matrix LuDecomposition::solve(const Matrix& b) const {
  detail::require_dims(b.rows() == lu_.rows(), "lu::solve: row mismatch");
  Matrix x(b.rows(), b.cols());
  std::vector<double> col(b.rows());
  for (std::size_t j = 0; j < b.cols(); ++j) {
    for (std::size_t i = 0; i < b.rows(); ++i) col[i] = b(i, j);
    const auto xj = solve(col);
    for (std::size_t i = 0; i < b.rows(); ++i) x(i, j) = xj[i];
  }
  return x;
}

Matrix LuDecomposition::inverse() const {
  return solve(Matrix::identity(lu_.rows()));
}

std::vector<double> solve(const Matrix& a, std::span<const double> b) {
  return LuDecomposition(a).solve(b);
}

double determinant(const Matrix& a) { return LuDecomposition(a).determinant(); }

Matrix inverse(const Matrix& a) { return LuDecomposition(a).inverse(); }

}  // namespace hetero::linalg
