#include "linalg/qr.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "base/error.hpp"
#include "linalg/svd.hpp"
#include "linalg/vector_ops.hpp"
#include "simd/simd.hpp"

namespace hetero::linalg {

QrResult qr(const Matrix& a) {
  detail::require_value(a.rows() >= a.cols() && !a.empty(),
                        "qr: need rows >= cols > 0");
  detail::require_value(!a.has_nonfinite(), "qr: non-finite entries");
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();

  Matrix work = a;
  Matrix q = Matrix::identity(m);  // full Q accumulated, trimmed at the end

  for (std::size_t k = 0; k < n; ++k) {
    double norm = 0.0;
    for (std::size_t i = k; i < m; ++i) norm += work(i, k) * work(i, k);
    norm = std::sqrt(norm);
    if (norm == 0.0) continue;
    const double alpha = work(k, k) >= 0 ? -norm : norm;
    std::vector<double> v(m, 0.0);
    v[k] = work(k, k) - alpha;
    for (std::size_t i = k + 1; i < m; ++i) v[i] = work(i, k);
    double vnorm2 = 0.0;
    for (std::size_t i = k; i < m; ++i) vnorm2 += v[i] * v[i];
    if (vnorm2 == 0.0) continue;
    const double beta = 2.0 / vnorm2;

    // work = (I - beta v v^T) work
    for (std::size_t j = k; j < n; ++j) {
      double d = 0.0;
      for (std::size_t i = k; i < m; ++i) d += v[i] * work(i, j);
      const double s = beta * d;
      for (std::size_t i = k; i < m; ++i) work(i, j) -= s * v[i];
    }
    // q = q (I - beta v v^T)
    for (std::size_t i = 0; i < m; ++i) {
      double d = 0.0;
      for (std::size_t l = k; l < m; ++l) d += q(i, l) * v[l];
      const double s = beta * d;
      for (std::size_t l = k; l < m; ++l) q(i, l) -= s * v[l];
    }
  }

  QrResult result;
  result.r = Matrix(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i; j < n; ++j) result.r(i, j) = work(i, j);
  result.q = Matrix(m, n, 0.0);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) result.q(i, j) = q(i, j);
  return result;
}

QrResult thin_qr(const Matrix& a) {
  detail::require_value(a.rows() >= a.cols() && !a.empty(),
                        "thin_qr: need rows >= cols > 0");
  detail::require_value(!a.has_nonfinite(), "thin_qr: non-finite entries");
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  const auto& K = simd::kernels();

  // Column-major working copy: every Householder step reads and updates
  // whole columns, which the row-major layout would turn into strided
  // walks with one cache line per element at sketch-path sizes.
  std::vector<double> w(m * n);
  for (std::size_t i = 0; i < m; ++i) {
    const auto row = a.row(i);
    for (std::size_t j = 0; j < n; ++j) w[j * m + i] = row[j];
  }

  // Factor: column k keeps R(0..k, k) above the pivot and the Householder
  // vector v_k in rows k..m; the pivot value alpha_k = R(k, k) and the
  // reflector coefficient beta_k live in side arrays.
  std::vector<double> beta(n, 0.0);
  std::vector<double> alpha(n, 0.0);
  for (std::size_t k = 0; k < n; ++k) {
    double* ck = w.data() + k * m;
    const double norm = std::sqrt(K.dot(ck + k, ck + k, m - k));
    if (norm == 0.0) continue;  // zero column: no reflector, R(k, k) = 0
    alpha[k] = ck[k] >= 0.0 ? -norm : norm;
    ck[k] -= alpha[k];
    const double vnorm2 = K.dot(ck + k, ck + k, m - k);
    beta[k] = 2.0 / vnorm2;
    for (std::size_t j = k + 1; j < n; ++j) {
      double* cj = w.data() + j * m;
      const double s = beta[k] * K.dot(ck + k, cj + k, m - k);
      K.axpy(cj + k, ck + k, m - k, -s);
    }
  }

  // Backward accumulation of Q = H_0 ... H_{n-1} applied to the first n
  // identity columns. After H_{n-1}..H_{k+1} are applied, column j <= k
  // still equals e_j (its support lies above every later reflector), so
  // H_k only touches columns k..n-1.
  std::vector<double> q(m * n, 0.0);
  for (std::size_t j = 0; j < n; ++j) q[j * m + j] = 1.0;
  for (std::size_t k = n; k-- > 0;) {
    if (beta[k] == 0.0) continue;
    const double* vk = w.data() + k * m;
    for (std::size_t j = k; j < n; ++j) {
      double* cj = q.data() + j * m;
      const double s = beta[k] * K.dot(vk + k, cj + k, m - k);
      K.axpy(cj + k, vk + k, m - k, -s);
    }
  }

  QrResult result;
  result.q = Matrix(m, n, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    const auto row = result.q.row(i);
    for (std::size_t j = 0; j < n; ++j) row[j] = q[j * m + i];
  }
  result.r = Matrix(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    result.r(i, i) = alpha[i] != 0.0 ? alpha[i] : w[i * m + i];
    for (std::size_t j = i + 1; j < n; ++j) result.r(i, j) = w[j * m + i];
  }
  return result;
}

std::vector<double> least_squares(const Matrix& a, std::span<const double> b) {
  detail::require_dims(b.size() == a.rows(), "least_squares: size mismatch");
  const QrResult f = qr(a);
  const std::size_t n = a.cols();
  // Rank check on R's diagonal.
  double rmax = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    rmax = std::max(rmax, std::abs(f.r(i, i)));
  for (std::size_t i = 0; i < n; ++i)
    detail::require_value(std::abs(f.r(i, i)) > 1e-12 * std::max(rmax, 1.0),
                          "least_squares: rank-deficient system");
  // x = R^{-1} Q^T b.
  std::vector<double> qtb(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    double s = 0.0;
    for (std::size_t i = 0; i < a.rows(); ++i) s += f.q(i, j) * b[i];
    qtb[j] = s;
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = qtb[ii];
    for (std::size_t j = ii + 1; j < n; ++j) s -= f.r(ii, j) * x[j];
    x[ii] = s / f.r(ii, ii);
  }
  return x;
}

LinearFit fit_linear(const Matrix& predictors, std::span<const double> response) {
  const std::size_t n = predictors.rows();
  const std::size_t k = predictors.cols();
  detail::require_dims(response.size() == n, "fit_linear: size mismatch");
  detail::require_value(n > k + 1, "fit_linear: need more samples than terms");

  Matrix design(n, k + 1, 1.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < k; ++j) design(i, j + 1) = predictors(i, j);

  LinearFit fit;
  fit.coefficients = least_squares(design, response);

  const double y_mean = mean(response);
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double pred = fit.coefficients[0];
    for (std::size_t j = 0; j < k; ++j)
      pred += fit.coefficients[j + 1] * predictors(i, j);
    ss_res += (response[i] - pred) * (response[i] - pred);
    ss_tot += (response[i] - y_mean) * (response[i] - y_mean);
  }
  fit.r_squared = ss_tot == 0.0 ? 1.0 : 1.0 - ss_res / ss_tot;
  return fit;
}

double condition_number(const Matrix& a) {
  const auto sigma = singular_values(a);
  if (sigma.back() == 0.0) return std::numeric_limits<double>::infinity();
  return sigma.front() / sigma.back();
}

Matrix pseudo_inverse(const Matrix& a, double rel_tol) {
  const SvdResult f = svd(a);
  const double cutoff =
      rel_tol * (f.singular_values.empty() ? 0.0 : f.singular_values.front());
  // pinv = V diag(1/sigma) U^T over significant singular values.
  Matrix vs = f.v;
  for (std::size_t j = 0; j < f.singular_values.size(); ++j) {
    const double s = f.singular_values[j];
    vs.scale_col(j, s > cutoff && s > 0.0 ? 1.0 / s : 0.0);
  }
  return matmul(vs, f.u.transposed());
}

}  // namespace hetero::linalg
