#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <ostream>
#include <string>

#include "simd/simd.hpp"

namespace hetero::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {
  detail::require_dims((rows == 0) == (cols == 0),
                       "Matrix: one dimension is zero but not the other");
}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    detail::require_dims(r.size() == cols_,
                         "Matrix: ragged initializer list");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::from_row_major(std::size_t rows, std::size_t cols,
                              std::span<const double> data) {
  detail::require_dims(data.size() == rows * cols,
                       "from_row_major: buffer size != rows*cols");
  Matrix m(rows, cols);
  std::copy(data.begin(), data.end(), m.data_.begin());
  return m;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::diagonal(std::span<const double> diag) {
  Matrix m(diag.size(), diag.size(), 0.0);
  for (std::size_t i = 0; i < diag.size(); ++i) m(i, i) = diag[i];
  return m;
}

double& Matrix::at(std::size_t i, std::size_t j) {
  detail::require_dims(i < rows_ && j < cols_, "Matrix::at: index out of range");
  return (*this)(i, j);
}

double Matrix::at(std::size_t i, std::size_t j) const {
  detail::require_dims(i < rows_ && j < cols_, "Matrix::at: index out of range");
  return (*this)(i, j);
}

std::span<double> Matrix::row(std::size_t i) {
  detail::require_dims(i < rows_, "Matrix::row: index out of range");
  return {data_.data() + i * cols_, cols_};
}

std::span<const double> Matrix::row(std::size_t i) const {
  detail::require_dims(i < rows_, "Matrix::row: index out of range");
  return {data_.data() + i * cols_, cols_};
}

std::vector<double> Matrix::col(std::size_t j) const {
  detail::require_dims(j < cols_, "Matrix::col: index out of range");
  std::vector<double> out(rows_);
  for (std::size_t i = 0; i < rows_; ++i) out[i] = (*this)(i, j);
  return out;
}

double Matrix::row_sum(std::size_t i) const {
  const auto r = row(i);
  return simd::kernels().sum(r.data(), r.size());
}

double Matrix::col_sum(std::size_t j) const {
  detail::require_dims(j < cols_, "Matrix::col_sum: index out of range");
  // A single column is inherently strided; walk it with one running pointer
  // instead of re-deriving i * cols_ + j every step.
  double s = 0.0;
  const double* p = data_.data() + j;
  for (std::size_t i = 0; i < rows_; ++i, p += cols_) s += *p;
  return s;
}

std::vector<double> Matrix::row_sums() const {
  std::vector<double> out(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) out[i] = row_sum(i);
  return out;
}

std::vector<double> Matrix::col_sums() const {
  // One row-major pass scatter-accumulating into the (small, cache-resident)
  // output vector — never traverses a strided column. Per-column additions
  // still happen in ascending row order, so sums are bit-identical to
  // repeated col_sum calls.
  std::vector<double> out(cols_, 0.0);
  const auto& k = simd::kernels();
  for (std::size_t i = 0; i < rows_; ++i)
    k.add_into(data_.data() + i * cols_, out.data(), cols_);
  return out;
}

double Matrix::total() const {
  return simd::kernels().sum(data_.data(), data_.size());
}

double Matrix::min() const {
  detail::require_value(!empty(), "Matrix::min: empty matrix");
  return simd::kernels().reduce_min(data_.data(), data_.size());
}

double Matrix::max() const {
  detail::require_value(!empty(), "Matrix::max: empty matrix");
  return simd::kernels().reduce_max(data_.data(), data_.size());
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
  return t;
}

Matrix Matrix::submatrix(std::span<const std::size_t> row_idx,
                         std::span<const std::size_t> col_idx) const {
  Matrix s(row_idx.size(), col_idx.size());
  for (std::size_t i = 0; i < row_idx.size(); ++i) {
    detail::require_dims(row_idx[i] < rows_, "submatrix: row index out of range");
    for (std::size_t j = 0; j < col_idx.size(); ++j) {
      detail::require_dims(col_idx[j] < cols_,
                           "submatrix: column index out of range");
      s(i, j) = (*this)(row_idx[i], col_idx[j]);
    }
  }
  return s;
}

Matrix Matrix::permuted(std::span<const std::size_t> row_perm,
                        std::span<const std::size_t> col_perm) const {
  detail::require_dims(row_perm.size() == rows_ && col_perm.size() == cols_,
                       "permuted: permutation size mismatch");
  return submatrix(row_perm, col_perm);
}

void Matrix::scale_row(std::size_t i, double s) {
  const auto r = row(i);
  simd::kernels().scale(r.data(), r.size(), s);
}

void Matrix::scale_col(std::size_t j, double s) {
  detail::require_dims(j < cols_, "scale_col: index out of range");
  for (std::size_t i = 0; i < rows_; ++i) (*this)(i, j) *= s;
}

bool Matrix::all_positive() const {
  return std::all_of(data_.begin(), data_.end(),
                     [](double x) { return x > 0.0; });
}

bool Matrix::all_nonnegative() const {
  return std::all_of(data_.begin(), data_.end(),
                     [](double x) { return x >= 0.0; });
}

bool Matrix::has_nonfinite() const {
  return std::any_of(data_.begin(), data_.end(),
                     [](double x) { return !std::isfinite(x); });
}

std::size_t Matrix::zero_count() const {
  return static_cast<std::size_t>(
      std::count(data_.begin(), data_.end(), 0.0));
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  detail::require_dims(rows_ == rhs.rows_ && cols_ == rhs.cols_,
                       "operator+=: shape mismatch");
  simd::kernels().add_into(rhs.data_.data(), data_.data(), data_.size());
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  detail::require_dims(rows_ == rhs.rows_ && cols_ == rhs.cols_,
                       "operator-=: shape mismatch");
  for (std::size_t k = 0; k < data_.size(); ++k) data_[k] -= rhs.data_[k];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  simd::kernels().scale(data_.data(), data_.size(), s);
  return *this;
}

Matrix& Matrix::operator/=(double s) {
  detail::require_value(s != 0.0, "operator/=: division by zero");
  return *this *= 1.0 / s;
}

Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
Matrix operator*(Matrix a, double s) { return a *= s; }
Matrix operator*(double s, Matrix a) { return a *= s; }
Matrix operator/(Matrix a, double s) { return a /= s; }

Matrix matmul(const Matrix& a, const Matrix& b) {
  detail::require_dims(a.cols() == b.rows(), "matmul: inner dimension mismatch");
  Matrix c(a.rows(), b.cols(), 0.0);
  // ikj loop order: streams through b and c rows contiguously, each row
  // update a single axpy over the dispatched kernels.
  const auto& kn = simd::kernels();
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const auto ci = c.row(i);
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      kn.axpy(ci.data(), b.row(k).data(), b.cols(), aik);
    }
  }
  return c;
}

std::vector<double> matvec(const Matrix& a, std::span<const double> x) {
  detail::require_dims(a.cols() == x.size(), "matvec: dimension mismatch");
  std::vector<double> y(a.rows(), 0.0);
  const auto& k = simd::kernels();
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const auto r = a.row(i);
    y[i] = k.dot(r.data(), x.data(), x.size());
  }
  return y;
}

Matrix gram(const Matrix& a) {
  Matrix g(a.cols(), a.cols(), 0.0);
  const auto& kn = simd::kernels();
  for (std::size_t k = 0; k < a.rows(); ++k) {
    const auto r = a.row(k);
    for (std::size_t i = 0; i < a.cols(); ++i) {
      const double rki = r[i];
      if (rki == 0.0) continue;
      kn.axpy(&g(i, i), r.data() + i, a.cols() - i, rki);
    }
  }
  for (std::size_t i = 0; i < a.cols(); ++i)
    for (std::size_t j = 0; j < i; ++j) g(i, j) = g(j, i);
  return g;
}

void min_gram_into(const Matrix& a, Matrix& g) {
  const std::size_t n = std::min(a.rows(), a.cols());
  detail::require_dims(g.rows() == n && g.cols() == n,
                       "min_gram_into: buffer must be min-dim square");
  std::fill(g.data().begin(), g.data().end(), 0.0);
  if (a.rows() >= a.cols()) {
    // Rank-1 row accumulation through the rank1_upper kernel: identical
    // unfused multiply-adds in identical order to the scalar reference
    // (bit-identical across backends), one dispatch per matrix row.
    const auto& kernels = simd::kernels();
    for (std::size_t k = 0; k < a.rows(); ++k)
      kernels.rank1_upper(g.row(0).data(), g.cols(), a.row(k).data(), n);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < i; ++j) g(i, j) = g(j, i);
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      const auto ri = a.row(i);
      for (std::size_t j = i; j < n; ++j) {
        const auto rj = a.row(j);
        double s = 0.0;
        for (std::size_t k = 0; k < ri.size(); ++k) s += ri[k] * rj[k];
        g(i, j) = s;
        g(j, i) = s;
      }
    }
  }
}

double max_abs_diff(const Matrix& a, const Matrix& b) {
  detail::require_dims(a.rows() == b.rows() && a.cols() == b.cols(),
                       "max_abs_diff: shape mismatch");
  double d = 0.0;
  for (std::size_t k = 0; k < a.data().size(); ++k)
    d = std::max(d, std::abs(a.data()[k] - b.data()[k]));
  return d;
}

bool approx_equal(const Matrix& a, const Matrix& b, double tol) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  return max_abs_diff(a, b) <= tol;
}

double frobenius_norm(const Matrix& a) {
  const double* p = a.data().data();
  return std::sqrt(simd::kernels().dot(p, p, a.data().size()));
}

std::ostream& operator<<(std::ostream& os, const Matrix& m) {
  os << "Matrix(" << m.rows() << "x" << m.cols() << ")[";
  for (std::size_t i = 0; i < m.rows(); ++i) {
    os << (i == 0 ? "[" : " [");
    for (std::size_t j = 0; j < m.cols(); ++j)
      os << m(i, j) << (j + 1 < m.cols() ? ", " : "");
    os << "]" << (i + 1 < m.rows() ? "\n" : "");
  }
  return os << "]";
}

}  // namespace hetero::linalg
