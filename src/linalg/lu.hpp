// LU factorization with partial pivoting: linear solves, determinants, and
// inverses for the small dense systems that appear in regression and
// analysis workflows built on the library.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace hetero::linalg {

/// PA = LU factorization of a square matrix (partial pivoting).
class LuDecomposition {
 public:
  /// Factorizes `a`. Throws ValueError if `a` is not square or contains
  /// non-finite entries. Singularity is detected lazily: `is_singular()`
  /// reports it, and solve()/inverse() throw on singular systems.
  explicit LuDecomposition(const Matrix& a);

  bool is_singular() const noexcept { return singular_; }

  /// det(A) (0 for singular inputs). Sign accounts for row swaps.
  double determinant() const;

  /// Solves A x = b. Throws DimensionError on size mismatch, ValueError if
  /// singular.
  std::vector<double> solve(std::span<const double> b) const;

  /// Solves A X = B column-by-column.
  Matrix solve(const Matrix& b) const;

  /// A^{-1}. Throws ValueError if singular.
  Matrix inverse() const;

 private:
  Matrix lu_;                     // packed L (unit diag) and U
  std::vector<std::size_t> piv_;  // row permutation
  int pivot_sign_ = 1;
  bool singular_ = false;
};

/// Convenience: solve A x = b in one call.
std::vector<double> solve(const Matrix& a, std::span<const double> b);

/// Convenience: det(A).
double determinant(const Matrix& a);

/// Convenience: A^{-1}.
Matrix inverse(const Matrix& a);

}  // namespace hetero::linalg
