#include "sched/robustness.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "base/error.hpp"
#include "linalg/vector_ops.hpp"

namespace hetero::sched {

RobustnessResult makespan_robustness(const core::EtcMatrix& etc,
                                     const TaskList& tasks,
                                     const Assignment& assignment,
                                     double tau) {
  const auto loads = machine_loads(etc, tasks, assignment);
  const double ms = *std::max_element(loads.begin(), loads.end());
  detail::require_value(std::isfinite(ms),
                        "makespan_robustness: infinite makespan (task on "
                        "incapable machine)");
  detail::require_value(tau > ms,
                        "makespan_robustness: tau must exceed the estimated "
                        "makespan");

  std::vector<std::size_t> task_count(etc.machine_count(), 0);
  for (std::size_t k = 0; k < assignment.size(); ++k)
    ++task_count[assignment[k]];

  RobustnessResult r;
  r.radius.resize(etc.machine_count());
  for (std::size_t j = 0; j < etc.machine_count(); ++j) {
    r.radius[j] =
        task_count[j] == 0
            ? tau
            : (tau - loads[j]) / std::sqrt(static_cast<double>(task_count[j]));
  }
  const auto it = std::min_element(r.radius.begin(), r.radius.end());
  r.critical_machine = static_cast<std::size_t>(it - r.radius.begin());
  r.metric = *it;
  return r;
}

double tau_with_slack(const core::EtcMatrix& etc, const TaskList& tasks,
                      const Assignment& assignment, double slack) {
  detail::require_value(slack > 0.0, "tau_with_slack: slack must be > 0");
  return makespan(etc, tasks, assignment) * (1.0 + slack);
}

double utilization(const core::EtcMatrix& etc, const TaskList& tasks,
                   const Assignment& assignment) {
  const auto loads = machine_loads(etc, tasks, assignment);
  const double ms = *std::max_element(loads.begin(), loads.end());
  detail::require_value(ms > 0.0 && std::isfinite(ms),
                        "utilization: undefined makespan");
  return linalg::sum(loads) /
         (static_cast<double>(loads.size()) * ms);
}

double load_imbalance(const core::EtcMatrix& etc, const TaskList& tasks,
                      const Assignment& assignment) {
  const auto loads = machine_loads(etc, tasks, assignment);
  const double mean_load = linalg::mean(loads);
  detail::require_value(mean_load > 0.0 && std::isfinite(mean_load),
                        "load_imbalance: undefined loads");
  const double max_load = *std::max_element(loads.begin(), loads.end());
  return (max_load - mean_load) / mean_load;
}

Assignment map_max_robustness(const core::EtcMatrix& etc,
                              const TaskList& tasks, double tau) {
  detail::require_value(tau > 0.0 && std::isfinite(tau),
                        "map_max_robustness: tau must be positive and finite");
  const std::size_t m = etc.machine_count();
  std::vector<double> load(m, 0.0);
  std::vector<std::size_t> count(m, 0);
  Assignment assignment(tasks.size(), 0);

  // Largest-minimum-execution-time first: long tasks have the fewest
  // placements that preserve slack.
  std::vector<std::size_t> order(tasks.size());
  std::vector<double> key(tasks.size(), 0.0);
  for (std::size_t k = 0; k < tasks.size(); ++k) {
    detail::require_dims(tasks[k] < etc.task_count(),
                         "map_max_robustness: task index out of range");
    double fastest = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < m; ++j)
      fastest = std::min(fastest, etc(tasks[k], j));
    key[k] = fastest;
    order[k] = k;
  }
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return key[a] > key[b];
  });

  for (const std::size_t k : order) {
    double best_metric = -std::numeric_limits<double>::infinity();
    std::size_t best_machine = m;
    for (std::size_t j = 0; j < m; ++j) {
      const double e = etc(tasks[k], j);
      if (std::isinf(e) || load[j] + e > tau) continue;
      // Post-assignment robustness metric: min over machines of
      // (tau - load) / sqrt(count), with this task placed on j.
      double metric = std::numeric_limits<double>::infinity();
      for (std::size_t jj = 0; jj < m; ++jj) {
        const double l = jj == j ? load[jj] + e : load[jj];
        const std::size_t c = (jj == j ? count[jj] + 1 : count[jj]);
        const double radius =
            c == 0 ? tau : (tau - l) / std::sqrt(static_cast<double>(c));
        metric = std::min(metric, radius);
      }
      if (metric > best_metric) {
        best_metric = metric;
        best_machine = j;
      }
    }
    detail::require_value(best_machine < m,
                          "map_max_robustness: no machine can take a task "
                          "without exceeding tau");
    assignment[k] = best_machine;
    load[best_machine] += etc(tasks[k], best_machine);
    ++count[best_machine];
  }
  return assignment;
}

}  // namespace hetero::sched
