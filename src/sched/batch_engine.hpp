// Incremental batch-mode mapping engine shared by the static heuristics
// (Min-Min, Max-Min, Sufferage) and the dynamic batch-mode simulator.
//
// The classic batch-mode greedy re-evaluates every unmapped task against
// every machine in every round — O(T^2 * M). This engine caches, per task
// slot, the best machine / best completion time / second-best completion
// time against the current ready vector, and after committing a task to
// machine j re-evaluates only the slots whose cached decision could involve
// j (the "affected set" R): cost drops toward O(T*M + T^2 + R*M). Cached
// values are produced by the same left-to-right strict-minimum scan the
// reference implementations use, so assignments — including every
// tie-break — are bit-identical to the O(T^2 * M) twins retained in
// heuristics.cpp and dynamic.cpp (asserted by the `sched_equiv` test
// label).
//
// Why the affected set is sufficient: ready times only grow, and only on
// the committed machine j. A slot whose cached best machine is not j keeps
// a valid best (j's completion time was strictly worse, or tied at a higher
// index, and grew); its second-best completion time can change only if j
// attained it, i.e. only if j's pre-commit completion time was <= the
// cached second-best. Both conditions are O(1) per slot, and a conservative
// rescan is always exact.
//
// The epoch interface extends the same invariant across the events of the
// dynamic simulator: begin_epoch() diffs the new base ready vector against
// the previous epoch's and rescans only slots whose cached epoch-start
// entry involves a changed machine, so successive remaps warm-start from
// the previous epoch instead of running cold.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "sched/makespan.hpp"

namespace hetero::sched {

/// Batch-mode priority rule: which unmapped task is "most critical".
enum class BatchPolicy {
  min_min,    // smallest best completion time first
  max_min,    // largest best completion time first
  sufferage,  // largest (second-best - best) completion-time gap first
};

class BatchEngine {
 public:
  /// The engine keeps a reference to `etc`; it must outlive the engine.
  BatchEngine(const core::EtcMatrix& etc, BatchPolicy policy);

  /// One-shot static mapping: slot k runs task type tasks[k], machine loads
  /// start at zero. Bit-identical to the reference batch_mode greedy.
  Assignment map_static(const TaskList& tasks);

  // --- incremental epoch interface (dynamic batch-mode simulation) ---

  /// Registers a task slot (dynamic: an arrival index). Slots are scanned
  /// in registration order, matching the reference's pending-queue order.
  void add_slot(std::size_t slot, std::size_t type);

  /// Unregisters a slot (dynamic: the task started executing).
  void remove_slot(std::size_t slot);

  std::size_t active_count() const noexcept { return active_.size(); }

  /// Starts a planning epoch against `base_ready` (one entry per machine).
  /// Cached epoch-start entries are revalidated against the previous
  /// epoch's base: only slots whose decision involves a machine whose ready
  /// time changed are rescanned. Ready times are expected to be
  /// non-decreasing across epochs; a decrease triggers a full (still
  /// correct) rebuild.
  void begin_epoch(const std::vector<double>& base_ready);

  /// Greedily commits every active slot against the epoch's ready vector,
  /// invoking commit(slot, machine) in commit order. Slots stay registered
  /// (the dynamic simulator re-plans them until they start). Requires
  /// begin_epoch() first.
  void plan(const std::function<void(std::size_t, std::size_t)>& commit);

 private:
  // Recomputes a task type's cached decision against `ready`: the first
  // machine attaining the strict minimum completion time (the reference
  // scan's tie-break) and the second-smallest completion time in multiset
  // order.
  void rescan(std::size_t type, const std::vector<double>& ready,
              double& best_ct, double& second_ct, std::size_t& best_j) const;
  double priority_of(double best_ct, double second_ct) const;
  // Could a cached decision involve machine j, whose ready time was
  // `ready_before` prior to an increase?
  bool involves(std::size_t type, std::size_t j, double ready_before,
                std::size_t best_j, double second_ct) const;
  void rescan_pending(std::size_t i);

  const core::EtcMatrix& etc_;
  BatchPolicy policy_;

  std::vector<std::size_t> active_;  // slot ids in registration order
  // Per-slot-id state (vectors grow to the largest registered id + 1):
  // the epoch-start cache, valid against base_ready_.
  std::vector<std::size_t> type_;
  std::vector<double> base_best_ct_, base_second_ct_;
  std::vector<std::size_t> base_best_j_;
  std::vector<char> has_base_;

  // plan() scratch: the unplanned slots in registration order, as parallel
  // compact arrays so the two hot scans — the priority max-scan (pend_prio_
  // only) and the affected-set filter (pend_best_j_ and, for sufferage,
  // pend_second_ct_) — each stream one flat vector with no per-slot
  // indirection. 32-bit ids halve the scan and erase bandwidth (slot and
  // machine counts are nowhere near 2^32). pend_prio_ mirrors
  // priority_of(best, second) so the max-scan never recomputes the policy
  // switch.
  std::vector<std::uint32_t> pend_slot_, pend_type_, pend_best_j_;
  std::vector<double> pend_prio_, pend_second_ct_;
  // Min-Min/Max-Min affected-set index: bucket_[j] holds the pending
  // indices whose cached best machine is j, so a commit to j rescans
  // exactly its bucket instead of filtering every pending slot. (Sufferage
  // decisions also depend on the second-best completion time, which buckets
  // cannot capture — it keeps the linear involves() filter.)
  std::vector<std::vector<std::uint32_t>> bucket_;
  std::vector<std::uint32_t> scratch_bucket_;

  std::vector<double> base_ready_;  // previous epoch's base
  std::vector<double> ready_;       // working ready vector during plan()
  std::vector<std::size_t> changed_;
  bool have_epoch_ = false;
};

}  // namespace hetero::sched
