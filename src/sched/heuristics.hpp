// Classic static-mapping heuristics for independent tasks (Braun et al. [6]).
//
//  OLB        — assign each task (arrival order) to the machine that becomes
//               available earliest, ignoring execution time.
//  MET        — assign each task to its minimum-execution-time machine,
//               ignoring machine availability.
//  MCT        — assign each task (arrival order) to the machine giving the
//               minimum completion time.
//  Min-Min    — repeatedly map the unmapped task whose best completion time
//               is smallest, to that machine.
//  Max-Min    — repeatedly map the unmapped task whose best completion time
//               is largest, to that machine.
//  Sufferage  — repeatedly map the task that would "suffer" most (largest
//               gap between best and second-best completion time).
//  Duplex     — the better of Min-Min and Max-Min.
//
// All heuristics treat an infinite ETC entry as "machine cannot run the
// task" and never assign to it (the EtcMatrix invariant guarantees each
// task has at least one finite entry).
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "etcgen/rng.hpp"
#include "sched/makespan.hpp"

namespace hetero::sched {

Assignment map_olb(const core::EtcMatrix& etc, const TaskList& tasks);
Assignment map_met(const core::EtcMatrix& etc, const TaskList& tasks);
Assignment map_mct(const core::EtcMatrix& etc, const TaskList& tasks);
Assignment map_min_min(const core::EtcMatrix& etc, const TaskList& tasks);
Assignment map_max_min(const core::EtcMatrix& etc, const TaskList& tasks);
Assignment map_sufferage(const core::EtcMatrix& etc, const TaskList& tasks);
Assignment map_duplex(const core::EtcMatrix& etc, const TaskList& tasks);

/// Pre-optimization O(T^2 * M) implementations of the three batch-mode
/// heuristics, retained verbatim as the equivalence yardstick for the
/// incremental engine (sched/batch_engine.hpp): the fast paths above must
/// produce bit-identical assignments, tie-breaks included (asserted by the
/// `sched_equiv` test label; measured by bench/perf_heuristics).
Assignment map_min_min_reference(const core::EtcMatrix& etc,
                                 const TaskList& tasks);
Assignment map_max_min_reference(const core::EtcMatrix& etc,
                                 const TaskList& tasks);
Assignment map_sufferage_reference(const core::EtcMatrix& etc,
                                   const TaskList& tasks);

/// OLB pick over raw values: the earliest-available (lowest current load)
/// machine with a finite ETC entry for task `t`. Throws ValueError when the
/// task runs on no machine — the EtcMatrix invariant normally rules that
/// out, but the guard replaces a latent out-of-bounds write (the old code
/// indexed load[machine_count()]) for raw-matrix callers.
std::size_t olb_earliest_capable(const linalg::Matrix& etc,
                                 const std::vector<double>& load,
                                 std::size_t t);

/// MET pick over raw values: the minimum-execution-time machine for task
/// `t`. Throws ValueError when the task runs on no machine.
std::size_t met_fastest_machine(const linalg::Matrix& etc, std::size_t t);

/// Uniform random valid assignment (baseline).
Assignment map_random(const core::EtcMatrix& etc, const TaskList& tasks,
                      etcgen::Rng& rng);

/// Registry of the deterministic heuristics, for sweeps and tables.
struct Heuristic {
  std::string name;
  std::function<Assignment(const core::EtcMatrix&, const TaskList&)> map;
};

/// OLB, MET, MCT, Min-Min, Max-Min, Sufferage, Duplex in that order.
const std::vector<Heuristic>& standard_heuristics();

/// Looks up a deterministic heuristic by protocol token ("olb", "met",
/// "mct", "min_min", "max_min", "sufferage", "duplex" — the display names
/// above are also accepted). Returns nullptr for an unknown token. The
/// registry is immutable after first use, so concurrent lookups are safe.
const Heuristic* find_heuristic(std::string_view token);

}  // namespace hetero::sched
