#include "sched/workload.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <sstream>

#include "base/error.hpp"
#include "linalg/vector_ops.hpp"

namespace hetero::sched {
namespace {

void validate(const core::EtcMatrix& etc, const WorkloadOptions& o) {
  detail::require_value(o.base_rate > 0.0,
                        "workload: base_rate must be positive");
  detail::require_value(o.diurnal_amplitude >= 0.0 &&
                            o.diurnal_amplitude < 1.0,
                        "workload: diurnal_amplitude must be in [0, 1)");
  detail::require_value(o.diurnal_period > 0.0,
                        "workload: diurnal_period must be positive");
  detail::require_value(o.burst_factor >= 1.0,
                        "workload: burst_factor must be >= 1");
  detail::require_value(o.mean_normal_duration > 0.0 &&
                            o.mean_burst_duration > 0.0,
                        "workload: state durations must be positive");
  if (!o.task_mix.empty()) {
    detail::require_dims(o.task_mix.size() == etc.task_count(),
                         "workload: task_mix size != task count");
    double total = 0.0;
    for (double p : o.task_mix) {
      detail::require_value(p >= 0.0, "workload: negative mix weight");
      total += p;
    }
    detail::require_value(total > 0.0, "workload: mix weights sum to zero");
  }
}

// Draws a task type from the mix (uniform when empty).
std::size_t draw_type(const core::EtcMatrix& etc, const WorkloadOptions& o,
                      etcgen::Rng& rng) {
  if (o.task_mix.empty()) return etcgen::uniform_index(rng, etc.task_count());
  const double total = hetero::linalg::sum(o.task_mix);
  double x = etcgen::uniform(rng, 0.0, total);
  for (std::size_t i = 0; i < o.task_mix.size(); ++i) {
    x -= o.task_mix[i];
    if (x <= 0.0) return i;
  }
  return o.task_mix.size() - 1;
}

}  // namespace

std::vector<Arrival> generate_workload(const core::EtcMatrix& etc,
                                       const WorkloadOptions& options,
                                       std::size_t count, etcgen::Rng& rng) {
  validate(etc, options);
  std::vector<Arrival> arrivals;
  arrivals.reserve(count);

  double t = 0.0;
  // Bursty state machine.
  bool bursting = false;
  double state_until =
      -options.mean_normal_duration * std::log(etcgen::uniform(rng, 1e-12, 1.0));

  // The envelope rate dominates the instantaneous rate for thinning.
  const double envelope =
      options.shape == RateShape::bursty
          ? options.base_rate * options.burst_factor
          : options.base_rate * (1.0 + options.diurnal_amplitude);

  while (arrivals.size() < count) {
    // Candidate event from the homogeneous envelope process.
    t += -std::log(etcgen::uniform(rng, 1e-300, 1.0)) / envelope;

    double rate = options.base_rate;
    switch (options.shape) {
      case RateShape::constant:
        break;
      case RateShape::diurnal:
        rate *= 1.0 + options.diurnal_amplitude *
                          std::sin(2.0 * std::numbers::pi * t /
                                   options.diurnal_period);
        break;
      case RateShape::bursty:
        while (t > state_until) {
          bursting = !bursting;
          const double mean = bursting ? options.mean_burst_duration
                                       : options.mean_normal_duration;
          state_until += -mean * std::log(etcgen::uniform(rng, 1e-12, 1.0));
        }
        if (bursting) rate *= options.burst_factor;
        break;
    }
    // Thinning: accept with probability rate / envelope.
    if (etcgen::uniform(rng, 0.0, 1.0) * envelope > rate) continue;
    arrivals.push_back({t, draw_type(etc, options, rng)});
  }
  return arrivals;
}

void write_trace_csv(std::ostream& out, const core::EtcMatrix& etc,
                     const std::vector<Arrival>& arrivals) {
  out << "time,task\n";
  out.precision(17);
  for (const Arrival& a : arrivals) {
    detail::require_dims(a.type < etc.task_count(),
                         "write_trace_csv: task index out of range");
    out << a.time << ',' << etc.task_names()[a.type] << '\n';
  }
}

std::string write_trace_csv_string(const core::EtcMatrix& etc,
                                   const std::vector<Arrival>& arrivals) {
  std::ostringstream out;
  write_trace_csv(out, etc, arrivals);
  return out.str();
}

std::vector<Arrival> read_trace_csv(std::istream& in,
                                    const core::EtcMatrix& etc) {
  std::vector<Arrival> arrivals;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto comma = line.find(',');
    detail::require_value(comma != std::string::npos,
                          "read_trace_csv: expected 'time,task'");
    const std::string time_str = line.substr(0, comma);
    const std::string task_str = line.substr(comma + 1);
    if (first) {
      first = false;
      if (time_str == "time") continue;  // header
    }
    Arrival a;
    try {
      a.time = std::stod(time_str);
    } catch (const std::exception&) {
      throw ValueError("read_trace_csv: bad time '" + time_str + "'");
    }
    detail::require_value(a.time >= 0.0, "read_trace_csv: negative time");
    // Numeric index or task name.
    const bool numeric =
        !task_str.empty() &&
        std::all_of(task_str.begin(), task_str.end(),
                    [](unsigned char c) { return std::isdigit(c); });
    a.type = numeric ? std::stoul(task_str) : etc.task_index(task_str);
    detail::require_dims(a.type < etc.task_count(),
                         "read_trace_csv: task index out of range");
    arrivals.push_back(a);
  }
  return arrivals;
}

std::vector<Arrival> read_trace_csv_string(const std::string& text,
                                           const core::EtcMatrix& etc) {
  std::istringstream in(text);
  return read_trace_csv(in, etc);
}

}  // namespace hetero::sched
