#include "sched/heuristics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "base/error.hpp"
#include "sched/batch_engine.hpp"
#include "simd/simd.hpp"

namespace hetero::sched {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

void check_tasks(const core::EtcMatrix& etc, const TaskList& tasks) {
  for (std::size_t t : tasks)
    detail::require_dims(t < etc.task_count(),
                         "heuristic: task index out of range");
}

// Machine minimizing completion time load[j] + etc(t, j); infinite entries
// yield infinite completion times, which never win the strict scan (every
// task has a finite entry by invariant).
std::size_t best_machine(const core::EtcMatrix& etc,
                         const std::vector<double>& load, std::size_t t) {
  double best_ct = kInf, second_ct = kInf;
  std::size_t best = 0;
  simd::kernels().best_second_scan(etc.values().row(t).data(), load.data(),
                                   etc.machine_count(), &best_ct, &second_ct,
                                   &best);
  return best;
}

// Pre-optimization O(T^2 M) batch-mode skeleton shared by the reference
// twins of Min-Min, Max-Min, and Sufferage: repeatedly pick the "most
// critical" unmapped task per `priority` (higher wins) and commit it to its
// best machine. Retained verbatim as the equivalence yardstick for the
// incremental BatchEngine (the fast paths must match it bit for bit).
template <typename PriorityFn>
Assignment batch_mode(const core::EtcMatrix& etc, const TaskList& tasks,
                      PriorityFn&& priority) {
  std::vector<double> load(etc.machine_count(), 0.0);
  Assignment assignment(tasks.size(), 0);
  std::vector<bool> mapped(tasks.size(), false);

  for (std::size_t round = 0; round < tasks.size(); ++round) {
    double best_priority = -kInf;
    std::size_t chosen = 0;
    std::size_t chosen_machine = 0;
    for (std::size_t k = 0; k < tasks.size(); ++k) {
      if (mapped[k]) continue;
      const std::size_t j = best_machine(etc, load, tasks[k]);
      const double p = priority(tasks[k], j, load);
      if (p > best_priority) {
        best_priority = p;
        chosen = k;
        chosen_machine = j;
      }
    }
    assignment[chosen] = chosen_machine;
    load[chosen_machine] += etc(tasks[chosen], chosen_machine);
    mapped[chosen] = true;
  }
  return assignment;
}

}  // namespace

std::size_t olb_earliest_capable(const linalg::Matrix& etc,
                                 const std::vector<double>& load,
                                 std::size_t t) {
  // First strict minimum of load over capable machines; incapable entries
  // (infinite ETC) are masked out inside the kernel scan.
  double min_load = kInf;
  std::size_t best = 0;
  simd::kernels().argmin_masked_first(load.data(), etc.row(t).data(),
                                      etc.cols(), &min_load, &best);
  detail::require_value(std::isfinite(min_load),
                        "map_olb: task runs on no machine");
  return best;
}

std::size_t met_fastest_machine(const linalg::Matrix& etc, std::size_t t) {
  double best_e = kInf;
  std::size_t best = 0;
  simd::kernels().argmin_first(etc.row(t).data(), etc.cols(), &best_e, &best);
  detail::require_value(std::isfinite(best_e),
                        "map_met: task runs on no machine");
  return best;
}

Assignment map_olb(const core::EtcMatrix& etc, const TaskList& tasks) {
  check_tasks(etc, tasks);
  std::vector<double> load(etc.machine_count(), 0.0);
  Assignment assignment(tasks.size(), 0);
  for (std::size_t k = 0; k < tasks.size(); ++k) {
    const std::size_t best = olb_earliest_capable(etc.values(), load, tasks[k]);
    assignment[k] = best;
    load[best] += etc(tasks[k], best);
  }
  return assignment;
}

Assignment map_met(const core::EtcMatrix& etc, const TaskList& tasks) {
  check_tasks(etc, tasks);
  Assignment assignment(tasks.size(), 0);
  for (std::size_t k = 0; k < tasks.size(); ++k)
    assignment[k] = met_fastest_machine(etc.values(), tasks[k]);
  return assignment;
}

Assignment map_mct(const core::EtcMatrix& etc, const TaskList& tasks) {
  check_tasks(etc, tasks);
  std::vector<double> load(etc.machine_count(), 0.0);
  Assignment assignment(tasks.size(), 0);
  for (std::size_t k = 0; k < tasks.size(); ++k) {
    const std::size_t j = best_machine(etc, load, tasks[k]);
    assignment[k] = j;
    load[j] += etc(tasks[k], j);
  }
  return assignment;
}

Assignment map_min_min(const core::EtcMatrix& etc, const TaskList& tasks) {
  check_tasks(etc, tasks);
  return BatchEngine(etc, BatchPolicy::min_min).map_static(tasks);
}

Assignment map_max_min(const core::EtcMatrix& etc, const TaskList& tasks) {
  check_tasks(etc, tasks);
  return BatchEngine(etc, BatchPolicy::max_min).map_static(tasks);
}

Assignment map_sufferage(const core::EtcMatrix& etc, const TaskList& tasks) {
  check_tasks(etc, tasks);
  return BatchEngine(etc, BatchPolicy::sufferage).map_static(tasks);
}

Assignment map_min_min_reference(const core::EtcMatrix& etc,
                                 const TaskList& tasks) {
  check_tasks(etc, tasks);
  return batch_mode(etc, tasks,
                    [&](std::size_t t, std::size_t j,
                        const std::vector<double>& load) {
                      return -(load[j] + etc(t, j));  // smallest CT first
                    });
}

Assignment map_max_min_reference(const core::EtcMatrix& etc,
                                 const TaskList& tasks) {
  check_tasks(etc, tasks);
  return batch_mode(etc, tasks,
                    [&](std::size_t t, std::size_t j,
                        const std::vector<double>& load) {
                      return load[j] + etc(t, j);  // largest CT first
                    });
}

Assignment map_sufferage_reference(const core::EtcMatrix& etc,
                                   const TaskList& tasks) {
  check_tasks(etc, tasks);
  return batch_mode(
      etc, tasks,
      [&](std::size_t t, std::size_t /*best_j*/,
          const std::vector<double>& load) {
        // Sufferage = second-best CT minus best CT.
        double best_ct = kInf, second_ct = kInf;
        for (std::size_t j = 0; j < etc.machine_count(); ++j) {
          if (std::isinf(etc(t, j))) continue;
          const double ct = load[j] + etc(t, j);
          if (ct < best_ct) {
            second_ct = best_ct;
            best_ct = ct;
          } else {
            second_ct = std::min(second_ct, ct);
          }
        }
        return std::isinf(second_ct) ? kInf : second_ct - best_ct;
      });
}

Assignment map_duplex(const core::EtcMatrix& etc, const TaskList& tasks) {
  Assignment a = map_min_min(etc, tasks);
  Assignment b = map_max_min(etc, tasks);
  return makespan(etc, tasks, a) <= makespan(etc, tasks, b) ? a : b;
}

Assignment map_random(const core::EtcMatrix& etc, const TaskList& tasks,
                      etcgen::Rng& rng) {
  check_tasks(etc, tasks);
  Assignment assignment(tasks.size(), 0);
  for (std::size_t k = 0; k < tasks.size(); ++k) {
    std::size_t j = 0;
    do {
      j = etcgen::uniform_index(rng, etc.machine_count());
    } while (std::isinf(etc(tasks[k], j)));
    assignment[k] = j;
  }
  return assignment;
}

const std::vector<Heuristic>& standard_heuristics() {
  static const std::vector<Heuristic> heuristics = {
      {"OLB", map_olb},           {"MET", map_met},
      {"MCT", map_mct},           {"Min-Min", map_min_min},
      {"Max-Min", map_max_min},   {"Sufferage", map_sufferage},
      {"Duplex", map_duplex},
  };
  return heuristics;
}

const Heuristic* find_heuristic(std::string_view token) {
  static constexpr std::string_view kTokens[] = {
      "olb", "met", "mct", "min_min", "max_min", "sufferage", "duplex"};
  const auto& registry = standard_heuristics();
  for (std::size_t i = 0; i < registry.size(); ++i)
    if (token == kTokens[i] || token == registry[i].name) return &registry[i];
  return nullptr;
}

}  // namespace hetero::sched
