// Search-based mappers from Braun et al. [6]: simulated annealing and a
// genetic algorithm. Slower than the list heuristics but typically closer
// to optimal; used as the quality yardstick in the application benches.
#pragma once

#include <cstdint>

#include "etcgen/rng.hpp"
#include "sched/makespan.hpp"

namespace hetero::par {
class ThreadPool;
}

namespace hetero::sched {

struct SaMapperOptions {
  std::size_t iterations = 20000;
  std::uint64_t seed = 1;
  /// Start from Min-Min (true) or from a random assignment (false).
  bool seed_with_min_min = true;
};

/// Simulated-annealing mapper: neighbor = move one task to another machine.
Assignment map_simulated_annealing(const core::EtcMatrix& etc,
                                   const TaskList& tasks,
                                   const SaMapperOptions& options = {});

struct GaMapperOptions {
  std::size_t population = 100;
  std::size_t generations = 200;
  double crossover_rate = 0.6;
  double mutation_rate = 0.05;
  std::uint64_t seed = 1;
  /// Seed one chromosome with the Min-Min solution (elitist seeding, as in
  /// Braun et al.).
  bool seed_with_min_min = true;
  /// Optional worker pool: breeding and fitness evaluation fan out across
  /// it. Each child chromosome is bred from its own RNG substream seeded by
  /// (seed, generation, population slot), so the result is bit-identical
  /// for any thread count — including the serial path (pool == nullptr).
  par::ThreadPool* pool = nullptr;
};

/// Generational GA with tournament selection, single-point crossover,
/// per-gene mutation, and elitism of the best chromosome.
Assignment map_genetic(const core::EtcMatrix& etc, const TaskList& tasks,
                       const GaMapperOptions& options = {});

}  // namespace hetero::sched
