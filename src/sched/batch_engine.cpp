#include "sched/batch_engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "base/error.hpp"
#include "simd/simd.hpp"

namespace hetero::sched {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr std::uint32_t kPlanned = static_cast<std::uint32_t>(-1);

// First index attaining the maximum of v, with NaN entries skipped (NaN
// compares false). The dispatched kernel runs the 4-lane first-max-wins
// scan this engine introduced (lane k owns index % 4 == k, tail extends
// lane 0, first global attainment = minimum recorded index among lanes
// attaining the maximum) — an exact reassociation of the reference's
// strict `>` scan, now vectorized.
std::size_t argmax_first(const std::vector<double>& v) {
  const std::size_t at = simd::kernels().argmax_first(v.data(), v.size());
  if (at != static_cast<std::size_t>(-1)) return at;
  // Every remaining priority is -inf (tasks with no capable machine —
  // excluded by the EtcMatrix invariant): the strict `>` never fires, so
  // degrade deterministically to the first non-NaN (unplanned) slot.
  std::size_t i = 0;
  while (std::isnan(v[i])) ++i;
  return i;
}

}  // namespace

BatchEngine::BatchEngine(const core::EtcMatrix& etc, BatchPolicy policy)
    : etc_(etc),
      policy_(policy),
      base_ready_(etc.machine_count(), 0.0),
      ready_(etc.machine_count(), 0.0) {}

void BatchEngine::rescan(std::size_t type, const std::vector<double>& ready,
                         double& best_ct, double& second_ct,
                         std::size_t& best_j) const {
  // Single fused pass: best machine (first strict minimum, as in the
  // reference scans) and the second-smallest completion time together.
  // Incapable (+inf) entries yield +inf completion times, which lose every
  // strict compare — exactly the reference's skip — so the kernel scan can
  // let them participate and still match bit for bit.
  simd::kernels().best_second_scan(etc_.values().row(type).data(),
                                   ready.data(), etc_.machine_count(),
                                   &best_ct, &second_ct, &best_j);
}

double BatchEngine::priority_of(double best_ct, double second_ct) const {
  switch (policy_) {
    case BatchPolicy::min_min:
      return -best_ct;
    case BatchPolicy::max_min:
      return best_ct;
    case BatchPolicy::sufferage:
      return std::isinf(second_ct) ? kInf : second_ct - best_ct;
  }
  return -kInf;  // unreachable
}

bool BatchEngine::involves(std::size_t type, std::size_t j,
                           double ready_before, std::size_t best_j,
                           double second_ct) const {
  if (best_j == j) return true;
  if (policy_ != BatchPolicy::sufferage) return false;  // only best matters
  // j was not the best, so its completion time sat at or above the cached
  // second-best; it contributed to the decision only when it attained it.
  const double x = etc_(type, j);
  return !std::isinf(x) && ready_before + x <= second_ct;
}

void BatchEngine::rescan_pending(std::size_t i) {
  double best_ct = kInf, second_ct = kInf;
  std::size_t best_j = 0;
  rescan(pend_type_[i], ready_, best_ct, second_ct, best_j);
  pend_best_j_[i] = static_cast<std::uint32_t>(best_j);
  pend_second_ct_[i] = second_ct;
  pend_prio_[i] = priority_of(best_ct, second_ct);
}

void BatchEngine::add_slot(std::size_t slot, std::size_t type) {
  detail::require_dims(type < etc_.task_count(),
                       "BatchEngine: task type out of range");
  if (slot >= type_.size()) {
    const std::size_t n = slot + 1;
    type_.resize(n, 0);
    base_best_ct_.resize(n, kInf);
    base_second_ct_.resize(n, kInf);
    base_best_j_.resize(n, 0);
    has_base_.resize(n, 0);
  }
  type_[slot] = type;
  has_base_[slot] = 0;
  active_.push_back(slot);
}

void BatchEngine::remove_slot(std::size_t slot) {
  const auto it = std::find(active_.begin(), active_.end(), slot);
  detail::require_value(it != active_.end(),
                        "BatchEngine: removing an unregistered slot");
  active_.erase(it);
  if (slot < has_base_.size()) has_base_[slot] = 0;
}

void BatchEngine::begin_epoch(const std::vector<double>& base_ready) {
  detail::require_dims(base_ready.size() == etc_.machine_count(),
                       "BatchEngine: ready vector size mismatch");
  // Diff against the previous epoch's base. Ready times are non-decreasing
  // in the dynamic simulator; a decrease (API misuse or a reset) falls back
  // to a full rebuild, which is always correct.
  changed_.clear();
  bool rebuild = !have_epoch_;
  if (!rebuild) {
    for (std::size_t j = 0; j < base_ready.size(); ++j) {
      if (base_ready[j] != base_ready_[j]) {
        changed_.push_back(j);
        if (base_ready[j] < base_ready_[j]) rebuild = true;
      }
    }
  }

  for (const std::size_t s : active_) {
    if (rebuild || !has_base_[s]) {
      rescan(type_[s], base_ready, base_best_ct_[s], base_second_ct_[s],
             base_best_j_[s]);
      has_base_[s] = 1;
      continue;
    }
    for (const std::size_t j : changed_) {
      if (involves(type_[s], j, base_ready_[j], base_best_j_[s],
                   base_second_ct_[s])) {
        rescan(type_[s], base_ready, base_best_ct_[s], base_second_ct_[s],
               base_best_j_[s]);
        break;
      }
    }
  }

  base_ready_ = base_ready;
  ready_ = base_ready;
  have_epoch_ = true;
}

void BatchEngine::plan(
    const std::function<void(std::size_t, std::size_t)>& commit) {
  detail::require_value(have_epoch_,
                        "BatchEngine: plan() before begin_epoch()");
  // Seed the compact pending arrays from the epoch-start cache; the
  // epoch-start entries stay untouched for the next begin_epoch() diff.
  const std::size_t n = active_.size();
  pend_slot_.resize(n);
  pend_type_.resize(n);
  pend_best_j_.resize(n);
  pend_prio_.resize(n);
  pend_second_ct_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t s = active_[i];
    pend_slot_[i] = static_cast<std::uint32_t>(s);
    pend_type_[i] = static_cast<std::uint32_t>(type_[s]);
    pend_best_j_[i] = static_cast<std::uint32_t>(base_best_j_[s]);
    pend_second_ct_[i] = base_second_ct_[s];
    pend_prio_[i] = priority_of(base_best_ct_[s], base_second_ct_[s]);
  }

  const bool sufferage = policy_ == BatchPolicy::sufferage;
  if (!sufferage) {
    bucket_.resize(etc_.machine_count());
    for (auto& b : bucket_) b.clear();
    for (std::size_t i = 0; i < n; ++i)
      bucket_[pend_best_j_[i]].push_back(static_cast<std::uint32_t>(i));
  }

  for (std::size_t round = 0; round < n; ++round) {
    // Pick the highest-priority unplanned slot, first-max-wins in
    // registration order (the reference's strict `>` scan). Planned slots
    // carry NaN priorities, which compare false everywhere, so the flat
    // argmax over the pending arrays — still in registration order —
    // reproduces the reference tie-break with no per-round compaction.
    const std::size_t chosen_at = argmax_first(pend_prio_);
    const std::size_t chosen = pend_slot_[chosen_at];
    const std::size_t ctype = pend_type_[chosen_at];
    const std::size_t jstar = pend_best_j_[chosen_at];
    // Mark planned: NaN/kPlanned sentinels fall through every scan below.
    pend_prio_[chosen_at] = kNan;
    pend_second_ct_[chosen_at] = kNan;
    pend_best_j_[chosen_at] = kPlanned;

    commit(chosen, jstar);
    const double before = ready_[jstar];
    ready_[jstar] += etc_(ctype, jstar);

    // Affected-set recomputation: only slots whose cached decision could
    // involve jstar can have changed.
    if (sufferage) {
      for (std::size_t i = 0; i < n; ++i)
        if (involves(pend_type_[i], jstar, before, pend_best_j_[i],
                     pend_second_ct_[i]))
          rescan_pending(i);
    } else {
      // Exactly bucket_[jstar]: rescan each member and rebucket it (its
      // new best may land anywhere, including jstar again). The chosen
      // slot sits in this bucket too; its kPlanned mark skips it.
      scratch_bucket_.swap(bucket_[jstar]);
      bucket_[jstar].clear();
      for (const std::uint32_t i : scratch_bucket_) {
        if (pend_best_j_[i] == kPlanned) continue;
        rescan_pending(i);
        bucket_[pend_best_j_[i]].push_back(i);
      }
      scratch_bucket_.clear();
    }
  }
}

Assignment BatchEngine::map_static(const TaskList& tasks) {
  active_.clear();
  have_epoch_ = false;
  for (std::size_t k = 0; k < tasks.size(); ++k) add_slot(k, tasks[k]);
  begin_epoch(std::vector<double>(etc_.machine_count(), 0.0));
  Assignment assignment(tasks.size(), 0);
  plan([&assignment](std::size_t slot, std::size_t j) {
    assignment[slot] = j;
  });
  active_.clear();
  have_epoch_ = false;
  return assignment;
}

}  // namespace hetero::sched
