// Static mapping of independent tasks onto heterogeneous machines:
// assignment representation and makespan evaluation.
//
// This substrate supports the paper's application (b): selecting an
// appropriate mapping heuristic for an HC environment based on its
// heterogeneity (ref [3]); the heuristics themselves are the classic set
// evaluated by Braun et al. [6].
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/etc_matrix.hpp"

namespace hetero::sched {

/// assignment[i] = machine executing task instance i.
using Assignment = std::vector<std::size_t>;

/// Workload: one task instance per row of the ETC matrix by default, or an
/// explicit multiset of task-type indices.
using TaskList = std::vector<std::size_t>;

/// One instance of every task type, in row order.
TaskList one_of_each(const core::EtcMatrix& etc);

/// Per-machine total execution time under `assignment` for `tasks`.
/// Throws DimensionError on size mismatch or out-of-range machine indices;
/// an assignment to a machine that cannot run the task yields +infinity
/// load on that machine.
std::vector<double> machine_loads(const core::EtcMatrix& etc,
                                  const TaskList& tasks,
                                  const Assignment& assignment);

/// Maximum machine load (the completion time of the whole batch).
double makespan(const core::EtcMatrix& etc, const TaskList& tasks,
                const Assignment& assignment);

/// As makespan(), but accumulates the per-machine loads into caller-owned
/// scratch storage instead of allocating — for evaluation loops (e.g. GA
/// fitness) that compute thousands of makespans.
double makespan_into(const core::EtcMatrix& etc, const TaskList& tasks,
                     const Assignment& assignment,
                     std::vector<double>& scratch_loads);

/// Lower bound on makespan: max over tasks of the fastest execution time
/// and total-work / machine-count style bounds. Useful for normalizing
/// heuristic comparisons across environments.
double makespan_lower_bound(const core::EtcMatrix& etc, const TaskList& tasks);

/// Self-contained record of one static mapping run — what the service layer
/// returns for a `schedule` request and the JSON writer serializes.
struct ScheduleSummary {
  std::string heuristic;  // token, e.g. "min_min"
  Assignment assignment;
  double makespan = 0.0;
  std::vector<double> machine_loads;
};

/// Evaluates `assignment` (loads + makespan) and packages it. Pure function
/// of its arguments — safe to call concurrently from service workers.
ScheduleSummary summarize_schedule(const core::EtcMatrix& etc,
                                   const TaskList& tasks,
                                   std::string heuristic,
                                   Assignment assignment);

}  // namespace hetero::sched
