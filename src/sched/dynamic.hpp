// Dynamic (arrival-driven) mapping simulator.
//
// The static heuristics of heuristics.hpp map a known batch; real HC
// systems map tasks as they arrive (Maheswaran et al.'s immediate mode vs
// batch mode). This event-driven simulator exercises the same ETC
// environments under online arrival processes, so heterogeneity/heuristic
// interactions can be studied for dynamic workloads too (the application
// benches use it to extend the paper's application (b)).
//
// Model: machines execute their queues FIFO and never idle while work is
// queued. Immediate mode assigns each task at its arrival instant; batch
// mode re-runs Min-Min over all not-yet-started tasks at every scheduling
// event (task arrival), allowing queued work to be remapped.
#pragma once

#include <cstddef>
#include <vector>

#include "etcgen/rng.hpp"
#include "sched/makespan.hpp"

namespace hetero::sched {

/// One dynamically arriving task instance.
struct Arrival {
  double time = 0.0;       // arrival instant (>= 0)
  std::size_t type = 0;    // ETC row
};

/// Poisson arrival process over uniformly-random task types: `count` tasks
/// with exponential(rate) inter-arrival times.
std::vector<Arrival> poisson_arrivals(const core::EtcMatrix& etc, double rate,
                                      std::size_t count, etcgen::Rng& rng);

/// Immediate-mode heuristics (assign-on-arrival).
enum class ImmediateMode {
  olb,        // earliest-available machine, execution-time blind
  met,        // minimum execution time, availability blind
  mct,        // minimum completion time
  kpb,        // k-percent best: MCT restricted to the best k% machines by ETC
  switching,  // Maheswaran et al.'s Switching Algorithm: alternate MET/MCT
              // driven by the load-balance index (min ready / max ready)
};

struct DynamicOptions {
  /// KPB machine fraction in (0, 1]; 0.5 keeps the better half.
  double kpb_fraction = 0.5;
  /// Switching thresholds on the balance index min(ready)/max(ready):
  /// switch to MET when balance rises above `switch_high` (system balanced,
  /// exploit raw speed), back to MCT when it falls below `switch_low`.
  /// Requires 0 <= switch_low < switch_high <= 1.
  double switch_low = 0.3;
  double switch_high = 0.7;
};

/// Per-run outcomes.
struct DynamicResult {
  double makespan = 0.0;        // completion time of the last task
  double mean_flow_time = 0.0;  // mean of (completion - arrival)
  double max_flow_time = 0.0;
  std::vector<std::size_t> assignment;  // machine per arrival (input order)
};

/// Simulates immediate-mode mapping. Arrivals need not be sorted; they are
/// processed in time order. Throws ValueError on negative times or bad
/// task types.
DynamicResult simulate_immediate(const core::EtcMatrix& etc,
                                 const std::vector<Arrival>& arrivals,
                                 ImmediateMode mode,
                                 const DynamicOptions& options = {});

/// Batch-mode mapping heuristics (applied to the pending set at every
/// scheduling event).
enum class BatchHeuristic { min_min, sufferage };

/// Simulates batch-mode mapping: at each arrival, all tasks that have not
/// yet *started* are remapped with the chosen heuristic against current
/// machine ready times (a standard batch-mode regime). Each remap
/// warm-starts from the previous scheduling event through the incremental
/// BatchEngine (sched/batch_engine.hpp) and reuses the ready/plan buffers
/// across events; results are bit-identical to the cold reference below.
DynamicResult simulate_batch(const core::EtcMatrix& etc,
                             const std::vector<Arrival>& arrivals,
                             BatchHeuristic heuristic);

/// Pre-optimization batch-mode simulator: re-runs the heuristic cold (full
/// O(U^2 * M) greedy over the pending set) at every arrival. Retained as
/// the equivalence yardstick for the warm-started engine above (asserted
/// under the `sched_equiv` test label; measured by bench/perf_dynamic).
DynamicResult simulate_batch_reference(const core::EtcMatrix& etc,
                                       const std::vector<Arrival>& arrivals,
                                       BatchHeuristic heuristic);

/// Convenience wrapper for BatchHeuristic::min_min.
DynamicResult simulate_batch_min_min(const core::EtcMatrix& etc,
                                     const std::vector<Arrival>& arrivals);

}  // namespace hetero::sched
