// Robustness of a resource allocation against ETC estimation error
// (FePIA-style analysis from the authors' robustness line of work,
// paper refs [7, 11]).
//
// Setting: a static assignment must keep the makespan below a constraint
// tau even though the actual execution times may differ from the ETC
// estimates. The *robustness radius* of machine j is the smallest
// (Euclidean, over that machine's tasks) perturbation of its execution
// times that pushes its finish time to tau; because the finish time is the
// sum of its tasks' times, that distance is
//
//     r_j = (tau - F_j) / sqrt(n_j)
//
// with F_j the estimated finish time and n_j the number of tasks mapped to
// j. The *robustness metric* of the allocation is min_j r_j — the smallest
// collective estimation error that can violate the constraint.
#pragma once

#include <cstddef>
#include <vector>

#include "sched/makespan.hpp"

namespace hetero::sched {

struct RobustnessResult {
  /// min over machines of the robustness radius (the robustness metric).
  double metric = 0.0;
  /// Radius per machine; machines with no tasks have radius tau (they
  /// cannot violate the constraint through their own tasks).
  std::vector<double> radius;
  /// argmin machine (the robustness bottleneck).
  std::size_t critical_machine = 0;
};

/// Robustness of `assignment` against the makespan constraint `tau`.
/// Throws ValueError when tau is not greater than the estimated makespan
/// (the allocation already violates the constraint) or when the makespan
/// is infinite (a task mapped to an incapable machine).
RobustnessResult makespan_robustness(const core::EtcMatrix& etc,
                                     const TaskList& tasks,
                                     const Assignment& assignment, double tau);

/// Convenience tau: estimated makespan inflated by `slack` (e.g. 0.2 for
/// "the system tolerates 20% slippage").
double tau_with_slack(const core::EtcMatrix& etc, const TaskList& tasks,
                      const Assignment& assignment, double slack);

/// Machine utilization: total executed work / (machine count * makespan).
/// In (0, 1]; 1 means perfectly balanced machines that all finish together.
double utilization(const core::EtcMatrix& etc, const TaskList& tasks,
                   const Assignment& assignment);

/// Load imbalance: (max load - mean load) / mean load; 0 when perfectly
/// balanced.
double load_imbalance(const core::EtcMatrix& etc, const TaskList& tasks,
                      const Assignment& assignment);

/// Robustness-greedy mapper: maps tasks one at a time (largest minimum
/// execution time first), each to the machine that keeps the *minimum
/// post-assignment robustness radius* largest for the given constraint
/// tau. Produces allocations that trade a little makespan for slack
/// against ETC estimation error (the design goal of the authors'
/// robust-allocation line [7]). Throws ValueError when no machine can
/// receive some task without exceeding tau.
Assignment map_max_robustness(const core::EtcMatrix& etc,
                              const TaskList& tasks, double tau);

}  // namespace hetero::sched
