#include "sched/dynamic.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <functional>
#include <limits>
#include <numeric>

#include "base/error.hpp"
#include "sched/batch_engine.hpp"

namespace hetero::sched {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

void validate_arrivals(const core::EtcMatrix& etc,
                       const std::vector<Arrival>& arrivals) {
  for (const Arrival& a : arrivals) {
    detail::require_value(a.time >= 0.0 && std::isfinite(a.time),
                          "dynamic: arrival time must be finite and >= 0");
    detail::require_dims(a.type < etc.task_count(),
                         "dynamic: task type out of range");
  }
}

// Indices of arrivals sorted by time (stable: ties keep input order).
std::vector<std::size_t> time_order(const std::vector<Arrival>& arrivals) {
  std::vector<std::size_t> order(arrivals.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return arrivals[a].time < arrivals[b].time;
                   });
  return order;
}

DynamicResult finish(const std::vector<Arrival>& arrivals,
                     std::vector<double> completion,
                     std::vector<std::size_t> assignment) {
  DynamicResult r;
  r.assignment = std::move(assignment);
  if (arrivals.empty()) return r;
  double flow_sum = 0.0;
  for (std::size_t k = 0; k < arrivals.size(); ++k) {
    r.makespan = std::max(r.makespan, completion[k]);
    const double flow = completion[k] - arrivals[k].time;
    flow_sum += flow;
    r.max_flow_time = std::max(r.max_flow_time, flow);
  }
  r.mean_flow_time = flow_sum / static_cast<double>(arrivals.size());
  return r;
}

}  // namespace

std::vector<Arrival> poisson_arrivals(const core::EtcMatrix& etc, double rate,
                                      std::size_t count, etcgen::Rng& rng) {
  detail::require_value(rate > 0.0, "poisson_arrivals: rate must be positive");
  std::exponential_distribution<double> gap(rate);
  std::vector<Arrival> arrivals;
  arrivals.reserve(count);
  double t = 0.0;
  for (std::size_t k = 0; k < count; ++k) {
    t += gap(rng);
    arrivals.push_back({t, etcgen::uniform_index(rng, etc.task_count())});
  }
  return arrivals;
}

DynamicResult simulate_immediate(const core::EtcMatrix& etc,
                                 const std::vector<Arrival>& arrivals,
                                 ImmediateMode mode,
                                 const DynamicOptions& options) {
  validate_arrivals(etc, arrivals);
  detail::require_value(options.kpb_fraction > 0.0 &&
                            options.kpb_fraction <= 1.0,
                        "dynamic: kpb_fraction must be in (0, 1]");
  detail::require_value(options.switch_low >= 0.0 &&
                            options.switch_low < options.switch_high &&
                            options.switch_high <= 1.0,
                        "dynamic: need 0 <= switch_low < switch_high <= 1");

  const std::size_t m = etc.machine_count();
  std::vector<double> ready(m, 0.0);
  std::vector<double> completion(arrivals.size(), 0.0);
  std::vector<std::size_t> assignment(arrivals.size(), 0);
  // Switching-algorithm state: begin in MCT (balances an empty system).
  bool switching_in_met = false;

  for (const std::size_t k : time_order(arrivals)) {
    const Arrival& a = arrivals[k];

    ImmediateMode effective = mode;
    if (mode == ImmediateMode::switching) {
      // Balance index at this arrival: 1 = perfectly balanced queues.
      double lo = kInf, hi = 0.0;
      for (std::size_t j = 0; j < m; ++j) {
        const double backlog = std::max(ready[j] - a.time, 0.0);
        lo = std::min(lo, backlog);
        hi = std::max(hi, backlog);
      }
      const double balance = hi == 0.0 ? 1.0 : lo / hi;
      if (balance > options.switch_high) switching_in_met = true;
      if (balance < options.switch_low) switching_in_met = false;
      effective = switching_in_met ? ImmediateMode::met : ImmediateMode::mct;
    }

    // Runnable machines, optionally restricted to the k-percent best by ETC.
    std::vector<std::size_t> candidates;
    for (std::size_t j = 0; j < m; ++j)
      if (!std::isinf(etc(a.type, j))) candidates.push_back(j);
    if (mode == ImmediateMode::kpb && candidates.size() > 1) {
      std::sort(candidates.begin(), candidates.end(),
                [&](std::size_t x, std::size_t y) {
                  return etc(a.type, x) < etc(a.type, y);
                });
      const auto keep = std::max<std::size_t>(
          1, static_cast<std::size_t>(std::ceil(
                 options.kpb_fraction *
                 static_cast<double>(candidates.size()))));
      candidates.resize(keep);
    }

    std::size_t best = candidates.front();
    double best_key = kInf;
    for (const std::size_t j : candidates) {
      double key = 0.0;
      switch (effective) {
        case ImmediateMode::olb:
          key = std::max(a.time, ready[j]);
          break;
        case ImmediateMode::met:
          key = etc(a.type, j);
          break;
        case ImmediateMode::mct:
        case ImmediateMode::kpb:
        case ImmediateMode::switching:  // resolved to met/mct above
          key = std::max(a.time, ready[j]) + etc(a.type, j);
          break;
      }
      if (key < best_key) {
        best_key = key;
        best = j;
      }
    }

    const double start = std::max(a.time, ready[best]);
    ready[best] = start + etc(a.type, best);
    completion[k] = ready[best];
    assignment[k] = best;
  }
  return finish(arrivals, std::move(completion), std::move(assignment));
}

DynamicResult simulate_batch(const core::EtcMatrix& etc,
                             const std::vector<Arrival>& arrivals,
                             BatchHeuristic heuristic) {
  validate_arrivals(etc, arrivals);
  const std::size_t m = etc.machine_count();

  BatchEngine engine(etc, heuristic == BatchHeuristic::min_min
                              ? BatchPolicy::min_min
                              : BatchPolicy::sufferage);

  // committed[j]: the time machine j finishes all *started* work.
  std::vector<double> committed(m, 0.0);
  // Planned queues from the last remap: arrival indices per machine.
  std::vector<std::deque<std::size_t>> plan(m);
  std::vector<double> completion(arrivals.size(), 0.0);
  std::vector<std::size_t> assignment(arrivals.size(), 0);
  std::vector<double> base_ready(m, 0.0);  // reused across events

  const auto advance_to = [&](double now) {
    // Start planned work whose start instant falls strictly before `now`;
    // started tasks leave the engine's pending set.
    for (std::size_t j = 0; j < m; ++j) {
      while (!plan[j].empty()) {
        const std::size_t k = plan[j].front();
        const double start = std::max(committed[j], arrivals[k].time);
        if (start >= now) break;
        plan[j].pop_front();
        committed[j] = start + etc(arrivals[k].type, j);
        completion[k] = committed[j];
        assignment[k] = j;
        engine.remove_slot(k);
      }
    }
  };

  const std::function<void(std::size_t, std::size_t)> enqueue =
      [&plan](std::size_t k, std::size_t j) { plan[j].push_back(k); };

  for (const std::size_t k : time_order(arrivals)) {
    const double now = arrivals[k].time;
    advance_to(now);
    engine.add_slot(k, arrivals[k].type);
    for (std::size_t j = 0; j < m; ++j) {
      base_ready[j] = std::max(committed[j], now);
      plan[j].clear();
    }
    engine.begin_epoch(base_ready);
    engine.plan(enqueue);
  }
  advance_to(kInf);  // drain everything
  return finish(arrivals, std::move(completion), std::move(assignment));
}

DynamicResult simulate_batch_reference(const core::EtcMatrix& etc,
                                       const std::vector<Arrival>& arrivals,
                                       BatchHeuristic heuristic) {
  validate_arrivals(etc, arrivals);
  const std::size_t m = etc.machine_count();

  // committed[j]: the time machine j finishes all *started* work.
  std::vector<double> committed(m, 0.0);
  // Planned queues from the last Min-Min pass: arrival indices per machine.
  std::vector<std::deque<std::size_t>> plan(m);
  std::vector<double> completion(arrivals.size(), 0.0);
  std::vector<std::size_t> assignment(arrivals.size(), 0);
  std::vector<std::size_t> pending;  // arrived, not started

  const auto advance_to = [&](double now) {
    // Start planned work whose start instant falls strictly before `now`.
    for (std::size_t j = 0; j < m; ++j) {
      while (!plan[j].empty()) {
        const std::size_t k = plan[j].front();
        const double start = std::max(committed[j], arrivals[k].time);
        if (start >= now) break;
        plan[j].pop_front();
        committed[j] = start + etc(arrivals[k].type, j);
        completion[k] = committed[j];
        assignment[k] = j;
        pending.erase(std::find(pending.begin(), pending.end(), k));
      }
    }
  };

  const auto remap = [&](double now) {
    for (auto& q : plan) q.clear();
    std::vector<double> ready = committed;
    for (double& r : ready) r = std::max(r, now);
    std::vector<std::size_t> unmapped = pending;
    while (!unmapped.empty()) {
      // Priority of a candidate: Min-Min wants the smallest best completion
      // time; Sufferage wants the largest gap between best and second-best.
      double best_priority = -kInf;
      std::size_t best_pos = 0, best_machine = 0;
      for (std::size_t pos = 0; pos < unmapped.size(); ++pos) {
        const std::size_t type = arrivals[unmapped[pos]].type;
        double ct1 = kInf, ct2 = kInf;
        std::size_t machine1 = 0;
        for (std::size_t j = 0; j < m; ++j) {
          const double e = etc(type, j);
          if (std::isinf(e)) continue;
          const double ct = ready[j] + e;
          if (ct < ct1) {
            ct2 = ct1;
            ct1 = ct;
            machine1 = j;
          } else {
            ct2 = std::min(ct2, ct);
          }
        }
        const double priority =
            heuristic == BatchHeuristic::min_min
                ? -ct1
                : (std::isinf(ct2) ? kInf : ct2 - ct1);
        if (priority > best_priority) {
          best_priority = priority;
          best_pos = pos;
          best_machine = machine1;
        }
      }
      const std::size_t k = unmapped[best_pos];
      plan[best_machine].push_back(k);
      ready[best_machine] += etc(arrivals[k].type, best_machine);
      unmapped.erase(unmapped.begin() + static_cast<std::ptrdiff_t>(best_pos));
    }
  };

  for (const std::size_t k : time_order(arrivals)) {
    const double now = arrivals[k].time;
    advance_to(now);
    pending.push_back(k);
    remap(now);
  }
  advance_to(kInf);  // drain everything
  return finish(arrivals, std::move(completion), std::move(assignment));
}

DynamicResult simulate_batch_min_min(const core::EtcMatrix& etc,
                                     const std::vector<Arrival>& arrivals) {
  return simulate_batch(etc, arrivals, BatchHeuristic::min_min);
}

}  // namespace hetero::sched
