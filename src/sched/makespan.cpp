#include "sched/makespan.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "base/error.hpp"
#include "simd/simd.hpp"

namespace hetero::sched {

TaskList one_of_each(const core::EtcMatrix& etc) {
  TaskList tasks(etc.task_count());
  std::iota(tasks.begin(), tasks.end(), std::size_t{0});
  return tasks;
}

std::vector<double> machine_loads(const core::EtcMatrix& etc,
                                  const TaskList& tasks,
                                  const Assignment& assignment) {
  detail::require_dims(assignment.size() == tasks.size(),
                       "machine_loads: assignment/task size mismatch");
  std::vector<double> loads(etc.machine_count(), 0.0);
  for (std::size_t k = 0; k < tasks.size(); ++k) {
    detail::require_dims(tasks[k] < etc.task_count(),
                         "machine_loads: task index out of range");
    detail::require_dims(assignment[k] < etc.machine_count(),
                         "machine_loads: machine index out of range");
    loads[assignment[k]] += etc(tasks[k], assignment[k]);
  }
  return loads;
}

double makespan(const core::EtcMatrix& etc, const TaskList& tasks,
                const Assignment& assignment) {
  const auto loads = machine_loads(etc, tasks, assignment);
  return simd::kernels().reduce_max(loads.data(), loads.size());
}

double makespan_into(const core::EtcMatrix& etc, const TaskList& tasks,
                     const Assignment& assignment,
                     std::vector<double>& scratch_loads) {
  detail::require_dims(assignment.size() == tasks.size(),
                       "makespan_into: assignment/task size mismatch");
  scratch_loads.assign(etc.machine_count(), 0.0);
  for (std::size_t k = 0; k < tasks.size(); ++k) {
    detail::require_dims(tasks[k] < etc.task_count(),
                         "makespan_into: task index out of range");
    detail::require_dims(assignment[k] < etc.machine_count(),
                         "makespan_into: machine index out of range");
    scratch_loads[assignment[k]] += etc(tasks[k], assignment[k]);
  }
  return simd::kernels().reduce_max(scratch_loads.data(),
                                    scratch_loads.size());
}

ScheduleSummary summarize_schedule(const core::EtcMatrix& etc,
                                   const TaskList& tasks,
                                   std::string heuristic,
                                   Assignment assignment) {
  ScheduleSummary s;
  s.heuristic = std::move(heuristic);
  s.machine_loads = machine_loads(etc, tasks, assignment);
  s.makespan =
      simd::kernels().reduce_max(s.machine_loads.data(), s.machine_loads.size());
  s.assignment = std::move(assignment);
  return s;
}

double makespan_lower_bound(const core::EtcMatrix& etc, const TaskList& tasks) {
  // Bound 1: every task needs at least its fastest execution time.
  double max_fastest = 0.0;
  double total_fastest_work = 0.0;
  const auto& K = simd::kernels();
  for (std::size_t t : tasks) {
    const double fastest =
        K.reduce_min(etc.values().row(t).data(), etc.machine_count());
    max_fastest = std::max(max_fastest, fastest);
    total_fastest_work += fastest;
  }
  // Bound 2: even perfectly balanced, the fastest-possible work divides
  // over machine_count machines.
  const double balanced =
      total_fastest_work / static_cast<double>(etc.machine_count());
  return std::max(max_fastest, balanced);
}

}  // namespace hetero::sched
