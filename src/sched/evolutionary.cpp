#include "sched/evolutionary.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

#include "etcgen/anneal.hpp"
#include "sched/heuristics.hpp"

namespace hetero::sched {
namespace {

// Random machine able to run the task.
std::size_t random_valid_machine(const core::EtcMatrix& etc, std::size_t task,
                                 etcgen::Rng& rng) {
  std::size_t j = 0;
  do {
    j = etcgen::uniform_index(rng, etc.machine_count());
  } while (std::isinf(etc(task, j)));
  return j;
}

}  // namespace

Assignment map_simulated_annealing(const core::EtcMatrix& etc,
                                   const TaskList& tasks,
                                   const SaMapperOptions& options) {
  etcgen::Rng rng = etcgen::make_rng(options.seed);
  Assignment initial;
  if (options.seed_with_min_min) {
    initial = map_min_min(etc, tasks);
  } else {
    initial = map_random(etc, tasks, rng);
  }
  if (tasks.empty()) return initial;

  const double scale = std::max(makespan(etc, tasks, initial), 1e-12);
  const std::function<double(const Assignment&)> energy =
      [&](const Assignment& a) { return makespan(etc, tasks, a) / scale; };
  const std::function<Assignment(const Assignment&, double, etcgen::Rng&)>
      neighbor = [&](const Assignment& a, double /*temp*/, etcgen::Rng& r) {
        Assignment out = a;
        const std::size_t k = etcgen::uniform_index(r, out.size());
        out[k] = random_valid_machine(etc, tasks[k], r);
        return out;
      };

  etcgen::AnnealOptions anneal;
  anneal.iterations = options.iterations;
  anneal.t0 = 0.1;
  anneal.t1 = 1e-6;
  return etcgen::simulated_annealing<Assignment>(initial, energy, neighbor,
                                                 anneal, rng)
      .first;
}

Assignment map_genetic(const core::EtcMatrix& etc, const TaskList& tasks,
                       const GaMapperOptions& options) {
  etcgen::Rng rng = etcgen::make_rng(options.seed);
  if (tasks.empty()) return {};

  const std::size_t pop_size = std::max<std::size_t>(4, options.population);
  std::vector<Assignment> population;
  population.reserve(pop_size);
  if (options.seed_with_min_min) population.push_back(map_min_min(etc, tasks));
  while (population.size() < pop_size)
    population.push_back(map_random(etc, tasks, rng));

  const auto fitness = [&](const Assignment& a) {
    return makespan(etc, tasks, a);
  };
  std::vector<double> score(pop_size);
  for (std::size_t i = 0; i < pop_size; ++i) score[i] = fitness(population[i]);

  const auto tournament = [&]() -> const Assignment& {
    const std::size_t a = etcgen::uniform_index(rng, pop_size);
    const std::size_t b = etcgen::uniform_index(rng, pop_size);
    return score[a] <= score[b] ? population[a] : population[b];
  };

  for (std::size_t gen = 0; gen < options.generations; ++gen) {
    std::vector<Assignment> next;
    next.reserve(pop_size);
    // Elitism: carry the best chromosome over unchanged.
    const std::size_t best_idx = static_cast<std::size_t>(
        std::min_element(score.begin(), score.end()) - score.begin());
    next.push_back(population[best_idx]);

    while (next.size() < pop_size) {
      Assignment child = tournament();
      if (etcgen::uniform(rng, 0.0, 1.0) < options.crossover_rate) {
        const Assignment& other = tournament();
        const std::size_t cut = etcgen::uniform_index(rng, child.size());
        for (std::size_t k = cut; k < child.size(); ++k) child[k] = other[k];
      }
      for (std::size_t k = 0; k < child.size(); ++k)
        if (etcgen::uniform(rng, 0.0, 1.0) < options.mutation_rate)
          child[k] = random_valid_machine(etc, tasks[k], rng);
      next.push_back(std::move(child));
    }
    population = std::move(next);
    for (std::size_t i = 0; i < pop_size; ++i) score[i] = fitness(population[i]);
  }

  const std::size_t best_idx = static_cast<std::size_t>(
      std::min_element(score.begin(), score.end()) - score.begin());
  return population[best_idx];
}

}  // namespace hetero::sched
