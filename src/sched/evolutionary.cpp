#include "sched/evolutionary.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>

#include "etcgen/anneal.hpp"
#include "parallel/thread_pool.hpp"
#include "sched/heuristics.hpp"

namespace hetero::sched {
namespace {

// Random machine able to run the task.
std::size_t random_valid_machine(const core::EtcMatrix& etc, std::size_t task,
                                 etcgen::Rng& rng) {
  std::size_t j = 0;
  do {
    j = etcgen::uniform_index(rng, etc.machine_count());
  } while (std::isinf(etc(task, j)));
  return j;
}

// Substream seed for the chromosome bred into slot `slot` of generation
// `gen`: a SplitMix64 finalizer decorrelates the (seed, gen, slot) lattice.
// Seeding per slot — not per thread — is what makes the parallel GA
// bit-identical to the serial one for any thread count.
std::uint64_t substream_seed(std::uint64_t seed, std::uint64_t gen,
                             std::uint64_t slot, std::uint64_t slots) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (gen * slots + slot + 1);
  z ^= z >> 30;
  z *= 0xbf58476d1ce4e5b9ULL;
  z ^= z >> 27;
  z *= 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Assignment map_simulated_annealing(const core::EtcMatrix& etc,
                                   const TaskList& tasks,
                                   const SaMapperOptions& options) {
  etcgen::Rng rng = etcgen::make_rng(options.seed);
  Assignment initial;
  if (options.seed_with_min_min) {
    initial = map_min_min(etc, tasks);
  } else {
    initial = map_random(etc, tasks, rng);
  }
  if (tasks.empty()) return initial;

  const double scale = std::max(makespan(etc, tasks, initial), 1e-12);
  const std::function<double(const Assignment&)> energy =
      [&](const Assignment& a) {
        thread_local std::vector<double> scratch_loads;
        return makespan_into(etc, tasks, a, scratch_loads) / scale;
      };
  const std::function<Assignment(const Assignment&, double, etcgen::Rng&)>
      neighbor = [&](const Assignment& a, double /*temp*/, etcgen::Rng& r) {
        Assignment out = a;
        const std::size_t k = etcgen::uniform_index(r, out.size());
        out[k] = random_valid_machine(etc, tasks[k], r);
        return out;
      };

  etcgen::AnnealOptions anneal;
  anneal.iterations = options.iterations;
  anneal.t0 = 0.1;
  anneal.t1 = 1e-6;
  return etcgen::simulated_annealing<Assignment>(initial, energy, neighbor,
                                                 anneal, rng)
      .first;
}

Assignment map_genetic(const core::EtcMatrix& etc, const TaskList& tasks,
                       const GaMapperOptions& options) {
  etcgen::Rng rng = etcgen::make_rng(options.seed);
  if (tasks.empty()) return {};

  const std::size_t pop_size = std::max<std::size_t>(4, options.population);
  std::vector<Assignment> population;
  population.reserve(pop_size);
  if (options.seed_with_min_min) population.push_back(map_min_min(etc, tasks));
  while (population.size() < pop_size)
    population.push_back(map_random(etc, tasks, rng));

  const auto fitness = [&](const Assignment& a) {
    // Fitness runs thousands of times per generation, possibly from pool
    // threads; per-thread scratch keeps it allocation-free and the results
    // identical to makespan() (same accumulation, same reduce_max kernel).
    thread_local std::vector<double> scratch_loads;
    return makespan_into(etc, tasks, a, scratch_loads);
  };
  // Runs body(i) for i in [begin, end) — across the pool when one is given,
  // serially otherwise. Bodies only write state owned by slot i, so the
  // parallel and serial paths compute identical results.
  const auto for_slots = [&](std::size_t begin, std::size_t end,
                             const auto& body) {
    if (options.pool != nullptr)
      par::parallel_for(*options.pool, begin, end, body);
    else
      for (std::size_t i = begin; i < end; ++i) body(i);
  };

  std::vector<double> score(pop_size);
  for_slots(0, pop_size,
            [&](std::size_t i) { score[i] = fitness(population[i]); });

  std::vector<Assignment> next(pop_size);
  std::vector<double> next_score(pop_size);
  for (std::size_t gen = 0; gen < options.generations; ++gen) {
    // Elitism: carry the best chromosome over unchanged.
    const std::size_t best_idx = static_cast<std::size_t>(
        std::min_element(score.begin(), score.end()) - score.begin());
    next[0] = population[best_idx];
    next_score[0] = score[best_idx];

    // Breed slots 1..pop-1 independently, each from its own substream; the
    // previous generation's population and scores are read-only here.
    for_slots(1, pop_size, [&](std::size_t i) {
      etcgen::Rng r = etcgen::make_rng(
          substream_seed(options.seed, gen, i, pop_size));
      const auto tournament = [&]() -> const Assignment& {
        const std::size_t a = etcgen::uniform_index(r, pop_size);
        const std::size_t b = etcgen::uniform_index(r, pop_size);
        return score[a] <= score[b] ? population[a] : population[b];
      };
      Assignment child = tournament();
      if (etcgen::uniform(r, 0.0, 1.0) < options.crossover_rate) {
        const Assignment& other = tournament();
        const std::size_t cut = etcgen::uniform_index(r, child.size());
        for (std::size_t k = cut; k < child.size(); ++k) child[k] = other[k];
      }
      for (std::size_t k = 0; k < child.size(); ++k)
        if (etcgen::uniform(r, 0.0, 1.0) < options.mutation_rate)
          child[k] = random_valid_machine(etc, tasks[k], r);
      next_score[i] = fitness(child);
      next[i] = std::move(child);
    });
    population.swap(next);
    score.swap(next_score);
  }

  const std::size_t best_idx = static_cast<std::size_t>(
      std::min_element(score.begin(), score.end()) - score.begin());
  return population[best_idx];
}

}  // namespace hetero::sched
