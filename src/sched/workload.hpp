// Workload models for the dynamic simulator.
//
// Real HC workloads are neither uniform over task types nor homogeneous in
// time. This module generates arrival traces with a task-type *mix*
// (probability per type, the execution-frequency interpretation of the
// paper's task weights w_t) and time-varying rates: diurnal (sinusoidal)
// modulation and two-state bursty (Markov-modulated Poisson) processes.
// Traces round-trip through CSV so external workloads can be replayed.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "etcgen/rng.hpp"
#include "sched/dynamic.hpp"

namespace hetero::sched {

/// Time-variation of the arrival rate.
enum class RateShape {
  constant,  // homogeneous Poisson at base_rate
  diurnal,   // rate(t) = base_rate * (1 + amplitude * sin(2 pi t / period))
  bursty,    // two-state MMPP: base_rate or base_rate * burst_factor
};

struct WorkloadOptions {
  double base_rate = 1.0;  // mean arrivals per unit time (> 0)
  RateShape shape = RateShape::constant;

  /// diurnal: relative amplitude in [0, 1) and period (> 0).
  double diurnal_amplitude = 0.5;
  double diurnal_period = 100.0;

  /// bursty: rate multiplier while bursting (>= 1) and the mean sojourn
  /// times of the normal/burst states (> 0).
  double burst_factor = 5.0;
  double mean_normal_duration = 50.0;
  double mean_burst_duration = 10.0;

  /// Task-type mix: probability weights per ETC row (empty = uniform).
  /// Values must be nonnegative with a positive sum.
  std::vector<double> task_mix;
};

/// Generates `count` arrivals from the model. Throws ValueError for
/// malformed options.
std::vector<Arrival> generate_workload(const core::EtcMatrix& etc,
                                       const WorkloadOptions& options,
                                       std::size_t count, etcgen::Rng& rng);

/// Writes a trace as "time,task_name" CSV rows (header included).
void write_trace_csv(std::ostream& out, const core::EtcMatrix& etc,
                     const std::vector<Arrival>& arrivals);

std::string write_trace_csv_string(const core::EtcMatrix& etc,
                                   const std::vector<Arrival>& arrivals);

/// Reads a trace back; task names must exist in the ETC matrix. Numeric
/// task indices are also accepted in place of names.
std::vector<Arrival> read_trace_csv(std::istream& in,
                                    const core::EtcMatrix& etc);

std::vector<Arrival> read_trace_csv_string(const std::string& text,
                                           const core::EtcMatrix& etc);

}  // namespace hetero::sched
