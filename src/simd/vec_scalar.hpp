// Scalar backend of the 4-lane virtual vector: four doubles in an array,
// every op spelled out lane by lane. This is the reference twin every
// dispatched backend must match bit for bit, so the ops here define the
// semantics: quiet compares produce full-width (all-ones / all-zeros) masks
// and blend is a bitwise select, exactly what the vector instructions do.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>

namespace hetero::simd {

struct VecScalar {
  struct v {
    double l[4];
  };

  static v zero() { return {{0.0, 0.0, 0.0, 0.0}}; }
  static v bcast(double x) { return {{x, x, x, x}}; }
  static v load(const double* p) { return {{p[0], p[1], p[2], p[3]}}; }
  static void store(double* p, v a) {
    p[0] = a.l[0];
    p[1] = a.l[1];
    p[2] = a.l[2];
    p[3] = a.l[3];
  }
  static void lanes(v a, double out[4]) { store(out, a); }

  static v add(v a, v b) {
    return {{a.l[0] + b.l[0], a.l[1] + b.l[1], a.l[2] + b.l[2],
             a.l[3] + b.l[3]}};
  }
  static v sub(v a, v b) {
    return {{a.l[0] - b.l[0], a.l[1] - b.l[1], a.l[2] - b.l[2],
             a.l[3] - b.l[3]}};
  }
  static v mul(v a, v b) {
    return {{a.l[0] * b.l[0], a.l[1] * b.l[1], a.l[2] * b.l[2],
             a.l[3] * b.l[3]}};
  }
  static v div(v a, v b) {
    return {{a.l[0] / b.l[0], a.l[1] / b.l[1], a.l[2] / b.l[2],
             a.l[3] / b.l[3]}};
  }
  static v abs(v a) {
    return {{std::fabs(a.l[0]), std::fabs(a.l[1]), std::fabs(a.l[2]),
             std::fabs(a.l[3])}};
  }

  static constexpr double kTrue =
      std::bit_cast<double>(~std::uint64_t{0});

  static v lt(v a, v b) {
    return {{a.l[0] < b.l[0] ? kTrue : 0.0, a.l[1] < b.l[1] ? kTrue : 0.0,
             a.l[2] < b.l[2] ? kTrue : 0.0, a.l[3] < b.l[3] ? kTrue : 0.0}};
  }
  static v gt(v a, v b) {
    return {{a.l[0] > b.l[0] ? kTrue : 0.0, a.l[1] > b.l[1] ? kTrue : 0.0,
             a.l[2] > b.l[2] ? kTrue : 0.0, a.l[3] > b.l[3] ? kTrue : 0.0}};
  }

  // mask ? b : a, as a bitwise select (masks are all-ones or all-zeros).
  static v blend(v a, v b, v m) {
    v r;
    for (int i = 0; i < 4; ++i) {
      const auto ai = std::bit_cast<std::uint64_t>(a.l[i]);
      const auto bi = std::bit_cast<std::uint64_t>(b.l[i]);
      const auto mi = std::bit_cast<std::uint64_t>(m.l[i]);
      r.l[i] = std::bit_cast<double>((ai & ~mi) | (bi & mi));
    }
    return r;
  }
};

}  // namespace hetero::simd
