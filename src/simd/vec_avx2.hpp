// AVX2 backend of the 4-lane virtual vector: one __m256d per vector. Quiet
// (non-signalling) ordered compares produce the same full-width masks as the
// scalar twin, and blendv keys on the mask sign bit, which agrees with the
// bitwise select for all-ones / all-zeros masks.
#pragma once

#include <immintrin.h>

namespace hetero::simd {

struct VecAvx2 {
  using v = __m256d;

  static v zero() { return _mm256_setzero_pd(); }
  static v bcast(double x) { return _mm256_set1_pd(x); }
  static v load(const double* p) { return _mm256_loadu_pd(p); }
  static void store(double* p, v a) { _mm256_storeu_pd(p, a); }
  static void lanes(v a, double out[4]) { _mm256_storeu_pd(out, a); }

  static v add(v a, v b) { return _mm256_add_pd(a, b); }
  static v sub(v a, v b) { return _mm256_sub_pd(a, b); }
  static v mul(v a, v b) { return _mm256_mul_pd(a, b); }
  static v div(v a, v b) { return _mm256_div_pd(a, b); }
  static v abs(v a) {
    return _mm256_andnot_pd(_mm256_set1_pd(-0.0), a);
  }

  static v lt(v a, v b) { return _mm256_cmp_pd(a, b, _CMP_LT_OQ); }
  static v gt(v a, v b) { return _mm256_cmp_pd(a, b, _CMP_GT_OQ); }

  static v blend(v a, v b, v m) { return _mm256_blendv_pd(a, b, m); }
};

}  // namespace hetero::simd
