// The one implementation of every dispatched kernel, templated on a 4-lane
// virtual-vector backend (VecScalar / VecAvx2 / VecNeon). Each backend .cpp
// includes this header with its own Vec type, so all backends execute the
// same IEEE operations in the same order and produce bit-identical results.
//
// Conventions shared by every kernel:
//  - Reductions: lane k accumulates elements with (index % 4) == k within
//    full 4-wide blocks; the <=3 trailing elements extend lanes 0..2 (one
//    element per lane, in order); lanes combine as (l0 + l2) + (l1 + l3).
//  - First-min / first-max scans: each lane tracks the first element of its
//    own index stream winning a strict compare; the global winner is the
//    smallest index among the lanes attaining the global extremum. Because
//    every element belongs to exactly one stream and strict compares record
//    first attainment, this equals the sequential strict scan's answer.
//  - No hardware FMA anywhere (backend sources compile with
//    -ffp-contract=off), so mul/add sequences stay two rounded operations on
//    every backend.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

#include "simd/simd.hpp"

namespace hetero::simd::detail {

inline constexpr double kInf = std::numeric_limits<double>::infinity();

template <class V>
struct KernelsImpl {
  using v = typename V::v;

  static v iota() {
    alignas(32) static const double k[4] = {0.0, 1.0, 2.0, 3.0};
    return V::load(k);
  }

  // Compare-and-select min/max: identical across backends (native min/max
  // instructions disagree on NaN and signed-zero ties between ISAs).
  static v vmin(v a, v b) { return V::blend(b, a, V::lt(a, b)); }
  static v vmax(v a, v b) { return V::blend(b, a, V::gt(a, b)); }

  static double combine_sum(const double l[4]) {
    return (l[0] + l[2]) + (l[1] + l[3]);
  }

  // ---- reductions ----

  static double sum(const double* x, std::size_t n) {
    v acc = V::zero();
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) acc = V::add(acc, V::load(x + i));
    double l[4];
    V::lanes(acc, l);
    for (std::size_t t = 0; i + t < n; ++t) l[t] += x[i + t];
    return combine_sum(l);
  }

  static double dot(const double* a, const double* b, std::size_t n) {
    v acc = V::zero();
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4)
      acc = V::add(acc, V::mul(V::load(a + i), V::load(b + i)));
    double l[4];
    V::lanes(acc, l);
    for (std::size_t t = 0; i + t < n; ++t) l[t] += a[i + t] * b[i + t];
    return combine_sum(l);
  }

  static void dot2(const double* a, const double* b0, const double* b1,
                   std::size_t n, double* out0, double* out1) {
    v acc0 = V::zero();
    v acc1 = V::zero();
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      const v av = V::load(a + i);
      acc0 = V::add(acc0, V::mul(av, V::load(b0 + i)));
      acc1 = V::add(acc1, V::mul(av, V::load(b1 + i)));
    }
    double l0[4];
    double l1[4];
    V::lanes(acc0, l0);
    V::lanes(acc1, l1);
    for (std::size_t t = 0; i + t < n; ++t) {
      l0[t] += a[i + t] * b0[i + t];
      l1[t] += a[i + t] * b1[i + t];
    }
    *out0 = combine_sum(l0);
    *out1 = combine_sum(l1);
  }

  static double reduce_min(const double* x, std::size_t n) {
    v acc = V::bcast(kInf);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) acc = vmin(acc, V::load(x + i));
    double l[4];
    V::lanes(acc, l);
    for (std::size_t t = 0; i + t < n; ++t)
      l[t] = x[i + t] < l[t] ? x[i + t] : l[t];
    double r = l[0];
    for (int k = 1; k < 4; ++k) r = l[k] < r ? l[k] : r;
    return r;
  }

  static double reduce_max(const double* x, std::size_t n) {
    v acc = V::bcast(-kInf);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) acc = vmax(acc, V::load(x + i));
    double l[4];
    V::lanes(acc, l);
    for (std::size_t t = 0; i + t < n; ++t)
      l[t] = x[i + t] > l[t] ? x[i + t] : l[t];
    double r = l[0];
    for (int k = 1; k < 4; ++k) r = l[k] > r ? l[k] : r;
    return r;
  }

  static double reduce_max_abs(const double* x, std::size_t n) {
    v acc = V::zero();
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) acc = vmax(acc, V::abs(V::load(x + i)));
    double l[4];
    V::lanes(acc, l);
    for (std::size_t t = 0; i + t < n; ++t) {
      const double a = x[i + t] < 0.0 ? -x[i + t] : x[i + t];
      l[t] = a > l[t] ? a : l[t];
    }
    double r = l[0];
    for (int k = 1; k < 4; ++k) r = l[k] > r ? l[k] : r;
    return r;
  }

  // ---- elementwise transforms ----

  static void scale(double* x, std::size_t n, double f) {
    const v fv = V::bcast(f);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) V::store(x + i, V::mul(V::load(x + i), fv));
    for (; i < n; ++i) x[i] *= f;
  }

  static void add_into(const double* x, double* acc, std::size_t n) {
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4)
      V::store(acc + i, V::add(V::load(acc + i), V::load(x + i)));
    for (; i < n; ++i) acc[i] += x[i];
  }

  static void axpy(double* acc, const double* x, std::size_t n, double a) {
    const v av = V::bcast(a);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4)
      V::store(acc + i,
               V::add(V::load(acc + i), V::mul(av, V::load(x + i))));
    for (; i < n; ++i) acc[i] += a * x[i];
  }

  static void rank1_upper(double* g, std::size_t stride, const double* r,
                          std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      double* grow = g + i * stride + i;
      const double* x = r + i;
      const std::size_t m = n - i;
      const v av = V::bcast(r[i]);
      std::size_t j = 0;
      for (; j + 4 <= m; j += 4)
        V::store(grow + j,
                 V::add(V::load(grow + j), V::mul(av, V::load(x + j))));
      for (; j < m; ++j) grow[j] += r[i] * x[j];
    }
  }

  static void axpy2(double* acc, const double* x0, const double* x1,
                    std::size_t n, double a0, double a1) {
    const v a0v = V::bcast(a0);
    const v a1v = V::bcast(a1);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      // (acc + a0*x0) + a1*x1 — same association as two axpy() calls.
      const v t0 = V::add(V::load(acc + i), V::mul(a0v, V::load(x0 + i)));
      V::store(acc + i, V::add(t0, V::mul(a1v, V::load(x1 + i))));
    }
    for (; i < n; ++i) acc[i] = (acc[i] + a0 * x0[i]) + a1 * x1[i];
  }

  static void rotate_pair(double* x, double* y, std::size_t n, double c,
                          double s) {
    const v cv = V::bcast(c);
    const v sv = V::bcast(s);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      const v xv = V::load(x + i);
      const v yv = V::load(y + i);
      V::store(x + i, V::sub(V::mul(cv, xv), V::mul(sv, yv)));
      V::store(y + i, V::add(V::mul(sv, xv), V::mul(cv, yv)));
    }
    for (; i < n; ++i) {
      const double xi = x[i];
      const double yi = y[i];
      x[i] = c * xi - s * yi;
      y[i] = s * xi + c * yi;
    }
  }

  static void reciprocal_or_zero(const double* x, double* out, std::size_t n) {
    const v one = V::bcast(1.0);
    const v inf = V::bcast(kInf);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      const v xv = V::load(x + i);
      const v finite = V::lt(V::abs(xv), inf);  // false for inf and NaN
      V::store(out + i, V::blend(V::zero(), V::div(one, xv), finite));
    }
    for (; i < n; ++i) {
      const double a = x[i] < 0.0 ? -x[i] : x[i];
      out[i] = a < kInf ? 1.0 / x[i] : 0.0;
    }
  }

  static void reciprocal_or_inf(const double* x, double* out, std::size_t n) {
    const v one = V::bcast(1.0);
    const v inf = V::bcast(kInf);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      const v xv = V::load(x + i);
      const v pos = V::gt(xv, V::zero());
      V::store(out + i, V::blend(inf, V::div(one, xv), pos));
    }
    for (; i < n; ++i) out[i] = x[i] > 0.0 ? 1.0 / x[i] : kInf;
  }

  // ---- fused Sinkhorn sweep kernels ----

  static double scale_accum(double* row, std::size_t n, double f,
                            double* acc) {
    const v fv = V::bcast(f);
    v s = V::zero();
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      const v r = V::mul(V::load(row + i), fv);
      V::store(row + i, r);
      s = V::add(s, r);
      V::store(acc + i, V::add(V::load(acc + i), r));
    }
    double l[4];
    V::lanes(s, l);
    for (std::size_t t = 0; i + t < n; ++t) {
      row[i + t] *= f;
      l[t] += row[i + t];
      acc[i + t] += row[i + t];
    }
    return combine_sum(l);
  }

  static double scale_vec_accum(double* row, const double* f, std::size_t n,
                                double* acc) {
    v s = V::zero();
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      const v r = V::mul(V::load(row + i), V::load(f + i));
      V::store(row + i, r);
      s = V::add(s, r);
      V::store(acc + i, V::add(V::load(acc + i), r));
    }
    double l[4];
    V::lanes(s, l);
    for (std::size_t t = 0; i + t < n; ++t) {
      row[i + t] *= f[i + t];
      l[t] += row[i + t];
      acc[i + t] += row[i + t];
    }
    return combine_sum(l);
  }

  static double copy_accum(const double* src, double* dst, std::size_t n,
                           double* acc) {
    v s = V::zero();
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      const v r = V::load(src + i);
      V::store(dst + i, r);
      s = V::add(s, r);
      V::store(acc + i, V::add(V::load(acc + i), r));
    }
    double l[4];
    V::lanes(s, l);
    for (std::size_t t = 0; i + t < n; ++t) {
      dst[i + t] = src[i + t];
      l[t] += src[i + t];
      acc[i + t] += src[i + t];
    }
    return combine_sum(l);
  }

  static double copy_scale_accum(const double* src, double* dst,
                                 std::size_t n, double row_f,
                                 const double* col_f, double* acc) {
    const v rf = V::bcast(row_f);
    v s = V::zero();
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      // src * (row_f * col_f[j]) — same association as the scalar twin.
      const v r = V::mul(V::load(src + i), V::mul(rf, V::load(col_f + i)));
      V::store(dst + i, r);
      s = V::add(s, r);
      V::store(acc + i, V::add(V::load(acc + i), r));
    }
    double l[4];
    V::lanes(s, l);
    for (std::size_t t = 0; i + t < n; ++t) {
      const double r = src[i + t] * (row_f * col_f[i + t]);
      dst[i + t] = r;
      l[t] += r;
      acc[i + t] += r;
    }
    return combine_sum(l);
  }

  // ---- scheduler scans ----

  // Shared lane combine for first-min scans: global minimum, then the
  // smallest recorded index among lanes attaining it; the second order
  // statistic is the chosen lane's second or another lane's best.
  static void combine_first_min(const double b[4], const double s2[4],
                                const double id[4], double* best_out,
                                double* second_out, std::size_t* at_out) {
    double gb = b[0];
    for (int k = 1; k < 4; ++k) gb = b[k] < gb ? b[k] : gb;
    int chosen = 0;
    double best_id = kInf;
    for (int k = 0; k < 4; ++k)
      if (b[k] == gb && id[k] < best_id) {
        best_id = id[k];
        chosen = k;
      }
    double gs = s2[chosen];
    for (int k = 0; k < 4; ++k)
      if (k != chosen && b[k] < gs) gs = b[k];
    *best_out = gb;
    *second_out = gs;
    // All-infinite scans never fire a strict compare; lanes keep index 0,
    // matching the sequential scan's untouched best-index of 0.
    *at_out = gb == kInf ? 0 : static_cast<std::size_t>(best_id);
  }

  static void best_second_scan(const double* etc_row, const double* ready,
                               std::size_t n, double* best_ct,
                               double* second_ct, std::size_t* best_j) {
    double b[4] = {kInf, kInf, kInf, kInf};
    double s2[4] = {kInf, kInf, kInf, kInf};
    double id[4] = {0.0, 0.0, 0.0, 0.0};
    std::size_t i = 0;
    if (n >= 4) {
      v best = V::bcast(kInf);
      v second = V::bcast(kInf);
      v idx = V::zero();
      v cur = iota();
      const v four = V::bcast(4.0);
      for (; i + 4 <= n; i += 4) {
        const v ct = V::add(V::load(ready + i), V::load(etc_row + i));
        const v win = V::lt(ct, best);
        second = V::blend(vmin(second, ct), best, win);
        best = V::blend(best, ct, win);
        idx = V::blend(idx, cur, win);
        cur = V::add(cur, four);
      }
      V::lanes(best, b);
      V::lanes(second, s2);
      V::lanes(idx, id);
    }
    for (std::size_t t = 0; i + t < n; ++t) {
      const double ct = ready[i + t] + etc_row[i + t];
      if (ct < b[t]) {
        s2[t] = b[t];
        b[t] = ct;
        id[t] = static_cast<double>(i + t);
      } else if (ct < s2[t]) {
        s2[t] = ct;
      }
    }
    combine_first_min(b, s2, id, best_ct, second_ct, best_j);
  }

  static void argmin_first(const double* x, std::size_t n, double* min_out,
                           std::size_t* at_out) {
    double b[4] = {kInf, kInf, kInf, kInf};
    double s2[4] = {kInf, kInf, kInf, kInf};
    double id[4] = {0.0, 0.0, 0.0, 0.0};
    std::size_t i = 0;
    if (n >= 4) {
      v best = V::bcast(kInf);
      v idx = V::zero();
      v cur = iota();
      const v four = V::bcast(4.0);
      for (; i + 4 <= n; i += 4) {
        const v xv = V::load(x + i);
        const v win = V::lt(xv, best);
        best = V::blend(best, xv, win);
        idx = V::blend(idx, cur, win);
        cur = V::add(cur, four);
      }
      V::lanes(best, b);
      V::lanes(idx, id);
    }
    for (std::size_t t = 0; i + t < n; ++t)
      if (x[i + t] < b[t]) {
        b[t] = x[i + t];
        id[t] = static_cast<double>(i + t);
      }
    double second_unused;
    combine_first_min(b, s2, id, min_out, &second_unused, at_out);
  }

  static void argmin_masked_first(const double* x, const double* mask_src,
                                  std::size_t n, double* min_out,
                                  std::size_t* at_out) {
    double b[4] = {kInf, kInf, kInf, kInf};
    double s2[4] = {kInf, kInf, kInf, kInf};
    double id[4] = {0.0, 0.0, 0.0, 0.0};
    std::size_t i = 0;
    if (n >= 4) {
      v best = V::bcast(kInf);
      v idx = V::zero();
      v cur = iota();
      const v four = V::bcast(4.0);
      const v inf = V::bcast(kInf);
      for (; i + 4 <= n; i += 4) {
        const v capable = V::lt(V::abs(V::load(mask_src + i)), inf);
        const v cand = V::blend(inf, V::load(x + i), capable);
        const v win = V::lt(cand, best);
        best = V::blend(best, cand, win);
        idx = V::blend(idx, cur, win);
        cur = V::add(cur, four);
      }
      V::lanes(best, b);
      V::lanes(idx, id);
    }
    for (std::size_t t = 0; i + t < n; ++t) {
      const double m = mask_src[i + t] < 0.0 ? -mask_src[i + t]
                                             : mask_src[i + t];
      const double cand = m < kInf ? x[i + t] : kInf;
      if (cand < b[t]) {
        b[t] = cand;
        id[t] = static_cast<double>(i + t);
      }
    }
    double second_unused;
    combine_first_min(b, s2, id, min_out, &second_unused, at_out);
  }

  static std::size_t argmax_first(const double* x, std::size_t n) {
    // Mirrors the 4-lane first-max convention the scheduler introduced: the
    // blocked loop feeds lanes 0..3 and the scalar tail extends lane 0. NaN
    // entries lose every strict compare (quiet predicate) and are skipped.
    double m[4] = {-kInf, -kInf, -kInf, -kInf};
    double id[4] = {0.0, 0.0, 0.0, 0.0};
    std::size_t i = 0;
    if (n >= 4) {
      v best = V::bcast(-kInf);
      v idx = V::zero();
      v cur = iota();
      const v four = V::bcast(4.0);
      for (; i + 4 <= n; i += 4) {
        const v xv = V::load(x + i);
        const v win = V::gt(xv, best);
        best = V::blend(best, xv, win);
        idx = V::blend(idx, cur, win);
        cur = V::add(cur, four);
      }
      V::lanes(best, m);
      V::lanes(idx, id);
    }
    for (; i < n; ++i)
      if (x[i] > m[0]) {
        m[0] = x[i];
        id[0] = static_cast<double>(i);
      }
    double best = m[0];
    if (m[1] > best) best = m[1];
    if (m[2] > best) best = m[2];
    if (m[3] > best) best = m[3];
    if (best == -kInf) return static_cast<std::size_t>(-1);
    std::size_t at = static_cast<std::size_t>(-1);
    for (int k = 0; k < 4; ++k)
      if (m[k] == best) {
        const auto cand = static_cast<std::size_t>(id[k]);
        if (cand < at) at = cand;
      }
    return at;
  }

  static Kernels table() {
    Kernels k;
    k.sum = &sum;
    k.dot = &dot;
    k.dot2 = &dot2;
    k.reduce_min = &reduce_min;
    k.reduce_max = &reduce_max;
    k.reduce_max_abs = &reduce_max_abs;
    k.scale = &scale;
    k.add_into = &add_into;
    k.axpy = &axpy;
    k.rank1_upper = &rank1_upper;
    k.axpy2 = &axpy2;
    k.rotate_pair = &rotate_pair;
    k.reciprocal_or_zero = &reciprocal_or_zero;
    k.reciprocal_or_inf = &reciprocal_or_inf;
    k.scale_accum = &scale_accum;
    k.scale_vec_accum = &scale_vec_accum;
    k.copy_accum = &copy_accum;
    k.copy_scale_accum = &copy_scale_accum;
    k.best_second_scan = &best_second_scan;
    k.argmin_first = &argmin_first;
    k.argmin_masked_first = &argmin_masked_first;
    k.argmax_first = &argmax_first;
    return k;
  }
};

}  // namespace hetero::simd::detail
