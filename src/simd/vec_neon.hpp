// NEON backend of the 4-lane virtual vector: a pair of float64x2_t holding
// lanes {0,1} and {2,3}. Compares produce full-width masks via the u64
// compare results, blend is vbsl (a true bitwise select), so semantics match
// the scalar twin exactly.
#pragma once

#include <arm_neon.h>

namespace hetero::simd {

struct VecNeon {
  struct v {
    float64x2_t lo;  // lanes 0, 1
    float64x2_t hi;  // lanes 2, 3
  };

  static v zero() { return {vdupq_n_f64(0.0), vdupq_n_f64(0.0)}; }
  static v bcast(double x) { return {vdupq_n_f64(x), vdupq_n_f64(x)}; }
  static v load(const double* p) { return {vld1q_f64(p), vld1q_f64(p + 2)}; }
  static void store(double* p, v a) {
    vst1q_f64(p, a.lo);
    vst1q_f64(p + 2, a.hi);
  }
  static void lanes(v a, double out[4]) { store(out, a); }

  static v add(v a, v b) {
    return {vaddq_f64(a.lo, b.lo), vaddq_f64(a.hi, b.hi)};
  }
  static v sub(v a, v b) {
    return {vsubq_f64(a.lo, b.lo), vsubq_f64(a.hi, b.hi)};
  }
  static v mul(v a, v b) {
    return {vmulq_f64(a.lo, b.lo), vmulq_f64(a.hi, b.hi)};
  }
  static v div(v a, v b) {
    return {vdivq_f64(a.lo, b.lo), vdivq_f64(a.hi, b.hi)};
  }
  static v abs(v a) { return {vabsq_f64(a.lo), vabsq_f64(a.hi)}; }

  static v lt(v a, v b) {
    return {vreinterpretq_f64_u64(vcltq_f64(a.lo, b.lo)),
            vreinterpretq_f64_u64(vcltq_f64(a.hi, b.hi))};
  }
  static v gt(v a, v b) {
    return {vreinterpretq_f64_u64(vcgtq_f64(a.lo, b.lo)),
            vreinterpretq_f64_u64(vcgtq_f64(a.hi, b.hi))};
  }

  // mask ? b : a (vbsl selects from its second operand where mask bits set).
  static v blend(v a, v b, v m) {
    return {vbslq_f64(vreinterpretq_u64_f64(m.lo), b.lo, a.lo),
            vbslq_f64(vreinterpretq_u64_f64(m.hi), b.hi, a.hi)};
  }
};

}  // namespace hetero::simd
