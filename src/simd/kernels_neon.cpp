// NEON instantiation of the shared kernel bodies. AArch64 makes NEON part of
// the baseline ISA, so no extra flags are needed; on other architectures this
// collapses to a nullptr stub.
#include "simd/simd.hpp"

#if defined(__aarch64__) && defined(__ARM_NEON)

#include "simd/kernels_impl.hpp"
#include "simd/vec_neon.hpp"

namespace hetero::simd::detail {

const Kernels* neon_kernels() {
  static const Kernels k = KernelsImpl<VecNeon>::table();
  return &k;
}

}  // namespace hetero::simd::detail

#else

namespace hetero::simd::detail {

const Kernels* neon_kernels() { return nullptr; }

}  // namespace hetero::simd::detail

#endif
