// AVX2 instantiation of the shared kernel bodies. This translation unit is
// the only one compiled with -mavx2 (and only on x86 builds); everything else
// in the library stays at the baseline ISA, so merely linking the table is
// safe on CPUs without AVX2 — the dispatcher consults the runtime probe
// before ever calling through it.
#include "simd/simd.hpp"

#if defined(__AVX2__)

#include "simd/kernels_impl.hpp"
#include "simd/vec_avx2.hpp"

namespace hetero::simd::detail {

const Kernels* avx2_kernels() {
  static const Kernels k = KernelsImpl<VecAvx2>::table();
  return &k;
}

}  // namespace hetero::simd::detail

#else

namespace hetero::simd::detail {

const Kernels* avx2_kernels() { return nullptr; }

}  // namespace hetero::simd::detail

#endif
