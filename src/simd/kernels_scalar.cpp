// Scalar instantiation of the shared kernel bodies — the reference twin every
// dispatched backend must match bit for bit. Built with -ffp-contract=off so
// the compiler cannot fuse the mul/add sequences the other backends keep
// separate.
#include "simd/kernels_impl.hpp"
#include "simd/vec_scalar.hpp"

namespace hetero::simd::detail {

const Kernels* scalar_kernels() {
  static const Kernels k = KernelsImpl<VecScalar>::table();
  return &k;
}

}  // namespace hetero::simd::detail
