// Portable fixed-width SIMD kernel layer with one-time runtime dispatch.
//
// Every dense hot loop in the library (Sinkhorn sweeps, Jacobi rotations,
// completion-time scans, reciprocal conversions) funnels through the kernel
// table returned by kernels(). The table is resolved once per process from a
// CPU feature probe, overridable with HETERO_SIMD=scalar|avx2|neon for
// testing; an unavailable forced backend falls back to scalar with a warning
// on stderr.
//
// Determinism contract: every kernel is written once against a 4-lane
// "virtual vector" abstraction (src/simd/kernels_impl.hpp) and compiled per
// backend, so all backends execute the same IEEE operations in the same
// order. Reductions use a fixed 4-lane accumulation order — lane k owns
// elements with index % 4 == k within full blocks, trailing elements extend
// lanes 0..2, and lanes combine as (l0 + l2) + (l1 + l3), matching the
// AVX2 extract-low/high + horizontal-add sequence. First-min/first-max scans
// keep one candidate per lane and resolve ties toward the smallest index,
// which reproduces a sequential strict-compare scan exactly. Kernels never
// use hardware FMA (backend sources build with -ffp-contract=off), so
// dispatched results are bit-identical to the scalar reference twin — the
// property the `simd_equiv` ctest label asserts.
#pragma once

#include <cstddef>

namespace hetero::simd {

enum class Backend { scalar = 0, avx2 = 1, neon = 2 };

/// Function-pointer table of the dispatched kernels. All span arguments are
/// contiguous; `n` counts doubles. See kernels_impl.hpp for the semantics of
/// each kernel (every backend shares that single implementation).
struct Kernels {
  // --- reductions (fixed 4-lane accumulation order) ---
  double (*sum)(const double* x, std::size_t n);
  double (*dot)(const double* a, const double* b, std::size_t n);
  // Two dot products sharing one streamed operand: *out0 = a . b0 and
  // *out1 = a . b1, each with the same 4-lane accumulation order as dot()
  // (bit-identical to two separate dot() calls). The blocked Gram build
  // streams each row of the short-dimension matrix once against two
  // partner rows, halving its memory traffic.
  void (*dot2)(const double* a, const double* b0, const double* b1,
               std::size_t n, double* out0, double* out1);
  // min/max/max-abs are order-independent for non-NaN data but are still
  // computed with the shared lane structure so every backend agrees bitwise
  // (including on signed zeros, which resolve by compare-and-select).
  double (*reduce_min)(const double* x, std::size_t n);  // +inf when n == 0
  double (*reduce_max)(const double* x, std::size_t n);  // -inf when n == 0
  double (*reduce_max_abs)(const double* x, std::size_t n);  // 0 when n == 0

  // --- elementwise transforms ---
  void (*scale)(double* x, std::size_t n, double f);        // x[i] *= f
  void (*add_into)(const double* x, double* acc, std::size_t n);  // acc += x
  void (*axpy)(double* acc, const double* x, std::size_t n, double a);
  // Upper-triangular rank-1 accumulation g[i][j] += r[i] * r[j] for
  // j >= i, with g row-major at `stride` doubles per row. Each element
  // update is the same unfused multiply-add the scalar reference performs,
  // in the same order, so every backend agrees bitwise. One call
  // accumulates one matrix row into the tall-case Gram build
  // (linalg::min_gram_into), keeping kernel-dispatch overhead off the
  // per-element path.
  void (*rank1_upper)(double* g, std::size_t stride, const double* r,
                      std::size_t n);
  // acc[i] = (acc[i] + a0*x0[i]) + a1*x1[i]: two fused axpy updates that
  // stream acc once, bit-identical to axpy(a0, x0) followed by axpy(a1,
  // x1). Backbone of the rank-2 tridiagonalization update and the tiled
  // sketch products in the large-matrix path.
  void (*axpy2)(double* acc, const double* x0, const double* x1,
                std::size_t n, double a0, double a1);
  // Plane rotation: x' = c*x - s*y, y' = s*x + c*y (mul/add, never fused).
  void (*rotate_pair)(double* x, double* y, std::size_t n, double c, double s);
  // ETC <-> ECS conversions: entrywise reciprocal with the incapable-entry
  // convention (+inf <-> 0) applied branchlessly.
  void (*reciprocal_or_zero)(const double* x, double* out, std::size_t n);
  void (*reciprocal_or_inf)(const double* x, double* out, std::size_t n);

  // --- fused Sinkhorn sweep kernels; each returns the 4-lane sum of the
  // row it just produced and accumulates it elementwise into acc ---
  double (*scale_accum)(double* row, std::size_t n, double f, double* acc);
  double (*scale_vec_accum)(double* row, const double* f, std::size_t n,
                            double* acc);
  double (*copy_accum)(const double* src, double* dst, std::size_t n,
                       double* acc);
  double (*copy_scale_accum)(const double* src, double* dst, std::size_t n,
                             double row_f, const double* col_f, double* acc);

  // --- scheduler scans (first-win semantics of a sequential strict scan) ---
  // Fused completion-time scan: best = min over j of ready[j] + etc_row[j],
  // best_j = first index attaining it, second = second order statistic
  // (duplicates counted). Infinite etc entries never win and leave second
  // infinite when fewer than two finite completion times exist — identical
  // to a sequential scan that skips them.
  void (*best_second_scan)(const double* etc_row, const double* ready,
                           std::size_t n, double* best_ct, double* second_ct,
                           std::size_t* best_j);
  // First index attaining the strict minimum of x (+inf entries lose).
  void (*argmin_first)(const double* x, std::size_t n, double* min_out,
                       std::size_t* at_out);
  // As argmin_first over x, but entries whose mask_src value is infinite are
  // excluded (the OLB capability filter). min_out stays +inf when every
  // entry is excluded.
  void (*argmin_masked_first)(const double* x, const double* mask_src,
                              std::size_t n, double* min_out,
                              std::size_t* at_out);
  // First index attaining the maximum with NaN entries skipped (they compare
  // false). Returns SIZE_MAX when no entry ever wins a strict compare (all
  // remaining entries -inf or NaN); callers choose the degradation policy.
  std::size_t (*argmax_first)(const double* x, std::size_t n);
};

/// Human-readable backend name ("scalar", "avx2", "neon").
const char* backend_name(Backend b);

/// True when the backend is compiled in AND the running CPU supports it.
bool backend_available(Backend b);

/// Kernel table for a specific backend, or nullptr when unavailable. Lets
/// tests compare every available backend against the scalar twin in one
/// process, without environment forcing.
const Kernels* kernels_for(Backend b);

/// The backend selected at first use: HETERO_SIMD env override when set and
/// available, otherwise the best available (avx2 > neon > scalar).
Backend active_backend();

/// The active kernel table. Resolved once; cheap to call afterwards, but hot
/// loops should still hoist `const auto& k = simd::kernels();` out.
const Kernels& kernels();

}  // namespace hetero::simd
