// Runtime backend selection. The decision is made once, on first call to
// active_backend()/kernels(): honor a HETERO_SIMD=scalar|avx2|neon override
// when that backend is compiled in and supported by the running CPU (warning
// on stderr + scalar fallback otherwise), else pick the best available.
#include "simd/simd.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace hetero::simd {

namespace detail {
const Kernels* scalar_kernels();
const Kernels* avx2_kernels();
const Kernels* neon_kernels();
}  // namespace detail

const char* backend_name(Backend b) {
  switch (b) {
    case Backend::scalar:
      return "scalar";
    case Backend::avx2:
      return "avx2";
    case Backend::neon:
      return "neon";
  }
  return "unknown";
}

bool backend_available(Backend b) {
  switch (b) {
    case Backend::scalar:
      return true;
    case Backend::avx2:
#if defined(__x86_64__) || defined(__i386__)
      return detail::avx2_kernels() != nullptr &&
             __builtin_cpu_supports("avx2");
#else
      return false;
#endif
    case Backend::neon:
      // NEON is baseline on AArch64; the table exists iff we built for it.
      return detail::neon_kernels() != nullptr;
  }
  return false;
}

const Kernels* kernels_for(Backend b) {
  if (!backend_available(b)) return nullptr;
  switch (b) {
    case Backend::scalar:
      return detail::scalar_kernels();
    case Backend::avx2:
      return detail::avx2_kernels();
    case Backend::neon:
      return detail::neon_kernels();
  }
  return nullptr;
}

namespace {

Backend select_backend() {
  // det-waiver: wall-clock -- startup-only backend override; every backend
  // produces bit-identical results, so the choice cannot change any output
  //
  // NOLINTNEXTLINE(concurrency-mt-unsafe): runs once under the dispatch
  // table's static initializer, before any worker thread exists; nothing
  // in the process calls setenv.
  if (const char* env = std::getenv("HETERO_SIMD")) {
    Backend forced = Backend::scalar;
    bool known = true;
    if (std::strcmp(env, "scalar") == 0) {
      forced = Backend::scalar;
    } else if (std::strcmp(env, "avx2") == 0) {
      forced = Backend::avx2;
    } else if (std::strcmp(env, "neon") == 0) {
      forced = Backend::neon;
    } else {
      known = false;
      std::fprintf(stderr,
                   "heterolib: unknown HETERO_SIMD value '%s' "
                   "(expected scalar|avx2|neon); using runtime detection\n",
                   env);
    }
    if (known) {
      if (backend_available(forced)) return forced;
      std::fprintf(stderr,
                   "heterolib: HETERO_SIMD=%s requested but unavailable on "
                   "this CPU/build; falling back to scalar\n",
                   env);
      return Backend::scalar;
    }
  }
  if (backend_available(Backend::avx2)) return Backend::avx2;
  if (backend_available(Backend::neon)) return Backend::neon;
  return Backend::scalar;
}

}  // namespace

Backend active_backend() {
  static const Backend b = select_backend();
  return b;
}

const Kernels& kernels() {
  static const Kernels* const k = kernels_for(active_backend());
  return *k;
}

}  // namespace hetero::simd
