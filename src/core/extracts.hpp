// Extreme sub-environment discovery (automating paper Figure 8).
//
// Section V shows two hand-picked 2x2 ETC extracts whose measures sit at
// opposite extremes of the full environments'. This module automates the
// search: enumerate (or sample) r x c sub-environments and report the ones
// minimizing / maximizing each measure — useful for spotting which machine
// and task subsets drive an environment's heterogeneity.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/etc_matrix.hpp"
#include "core/measures.hpp"

namespace hetero::core {

/// One scored sub-environment.
struct Extract {
  std::vector<std::size_t> tasks;     // row indices into the parent
  std::vector<std::size_t> machines;  // column indices into the parent
  MeasureSet measures;
};

struct ExtractAtlasOptions {
  std::size_t tasks = 2;     // extract height
  std::size_t machines = 2;  // extract width
  /// Exhaustive enumeration is used while C(T, r) * C(M, c) stays at or
  /// below this cap; beyond it, `samples` random extracts are scored
  /// (seeded, reproducible).
  std::size_t max_exhaustive = 100000;
  std::size_t samples = 20000;
  std::uint64_t seed = 1;
};

/// The extremes over all (enumerated or sampled) extracts.
struct ExtractAtlas {
  Extract min_mph, max_mph;
  Extract min_tdh, max_tdh;
  Extract min_tma, max_tma;
  /// How many extracts were scored.
  std::size_t scored = 0;
  /// True when the enumeration was exhaustive.
  bool exhaustive = false;
};

/// Scores sub-environments of `ecs` and returns the per-measure extremes.
/// Extracts whose submatrix violates the EcsMatrix invariants (all-zero
/// line) are skipped. Throws ValueError when the requested extract shape
/// does not fit in the parent.
ExtractAtlas extract_atlas(const EcsMatrix& ecs,
                           const ExtractAtlasOptions& options = {});

/// Measures of one specific extract (convenience).
Extract score_extract(const EcsMatrix& ecs, std::vector<std::size_t> tasks,
                      std::vector<std::size_t> machines);

}  // namespace hetero::core
