#include "core/statistics.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/vector_ops.hpp"

namespace hetero::core {
namespace {

// COV over the finite entries of a range; 0 when fewer than two remain.
double finite_cov(const std::vector<double>& values) {
  std::vector<double> finite;
  finite.reserve(values.size());
  for (double v : values)
    if (std::isfinite(v)) finite.push_back(v);
  if (finite.size() < 2) return 0.0;
  return linalg::coefficient_of_variation(finite);
}

}  // namespace

std::vector<double> task_heterogeneity_per_machine(const EtcMatrix& etc) {
  std::vector<double> out(etc.machine_count(), 0.0);
  for (std::size_t j = 0; j < etc.machine_count(); ++j) {
    std::vector<double> column(etc.task_count());
    for (std::size_t i = 0; i < etc.task_count(); ++i) column[i] = etc(i, j);
    out[j] = finite_cov(column);
  }
  return out;
}

std::vector<double> machine_heterogeneity_per_task(const EtcMatrix& etc) {
  std::vector<double> out(etc.task_count(), 0.0);
  for (std::size_t i = 0; i < etc.task_count(); ++i) {
    std::vector<double> row(etc.machine_count());
    for (std::size_t j = 0; j < etc.machine_count(); ++j) row[j] = etc(i, j);
    out[i] = finite_cov(row);
  }
  return out;
}

double consistency_index(const EtcMatrix& etc) {
  const std::size_t m = etc.machine_count();
  if (m < 2) return 1.0;
  double agreement_sum = 0.0;
  std::size_t pair_count = 0;
  for (std::size_t j = 0; j < m; ++j) {
    for (std::size_t k = j + 1; k < m; ++k) {
      std::size_t votes = 0, j_wins = 0;
      for (std::size_t i = 0; i < etc.task_count(); ++i) {
        const double a = etc(i, j);
        const double b = etc(i, k);
        if (!std::isfinite(a) || !std::isfinite(b)) continue;
        ++votes;
        if (a <= b) ++j_wins;
      }
      if (votes == 0) continue;
      const double f = static_cast<double>(j_wins) / static_cast<double>(votes);
      agreement_sum += std::max(f, 1.0 - f);
      ++pair_count;
    }
  }
  if (pair_count == 0) return 1.0;
  const double mean_agreement =
      agreement_sum / static_cast<double>(pair_count);
  return 2.0 * (mean_agreement - 0.5);
}

bool is_consistent(const EtcMatrix& etc) {
  const std::size_t m = etc.machine_count();
  for (std::size_t j = 0; j < m; ++j) {
    for (std::size_t k = 0; k < m; ++k) {
      if (j == k) continue;
      // Does j dominate k on the first comparable task? Then it must on all.
      bool j_le_k_everywhere = true;
      for (std::size_t i = 0; i < etc.task_count(); ++i) {
        const double a = etc(i, j);
        const double b = etc(i, k);
        if (!std::isfinite(a) || !std::isfinite(b)) continue;
        if (a > b) {
          j_le_k_everywhere = false;
          break;
        }
      }
      if (j_le_k_everywhere) continue;
      bool k_le_j_everywhere = true;
      for (std::size_t i = 0; i < etc.task_count(); ++i) {
        const double a = etc(i, j);
        const double b = etc(i, k);
        if (!std::isfinite(a) || !std::isfinite(b)) continue;
        if (b > a) {
          k_le_j_everywhere = false;
          break;
        }
      }
      if (!k_le_j_everywhere) return false;  // neither order holds
    }
  }
  return true;
}

EtcStatistics etc_statistics(const EtcMatrix& etc) {
  EtcStatistics s;
  const auto task_h = task_heterogeneity_per_machine(etc);
  const auto mach_h = machine_heterogeneity_per_task(etc);
  s.mean_task_heterogeneity = linalg::mean(task_h);
  s.mean_machine_heterogeneity = linalg::mean(mach_h);
  s.consistency = consistency_index(etc);
  return s;
}

}  // namespace hetero::core
