#include "core/confidence.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "etcgen/noise.hpp"
#include "linalg/vector_ops.hpp"

namespace hetero::core {
namespace {

MeasureInterval summarize(double point, std::vector<double> samples,
                          double coverage) {
  MeasureInterval interval;
  interval.point = point;
  interval.mean = linalg::mean(samples);
  interval.stddev = samples.size() > 1 ? linalg::stddev_sample(samples) : 0.0;
  std::sort(samples.begin(), samples.end());
  const double tail = (1.0 - coverage) / 2.0;
  const auto at = [&](double q) {
    const double pos = q * static_cast<double>(samples.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, samples.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return samples[lo] * (1.0 - frac) + samples[hi] * frac;
  };
  interval.lower = at(tail);
  interval.upper = at(1.0 - tail);
  return interval;
}

}  // namespace

MeasureConfidence measure_confidence(const EtcMatrix& etc,
                                     const ConfidenceOptions& options) {
  detail::require_value(options.noise_cov >= 0.0,
                        "measure_confidence: noise_cov must be >= 0");
  detail::require_value(options.replications >= 2,
                        "measure_confidence: need at least 2 replications");
  detail::require_value(options.coverage > 0.0 && options.coverage < 1.0,
                        "measure_confidence: coverage must be in (0, 1)");

  const MeasureSet point = measure_set(etc.to_ecs());
  etcgen::Rng rng = etcgen::make_rng(options.seed);

  std::vector<double> mph_samples, tdh_samples, tma_samples;
  mph_samples.reserve(options.replications);
  tdh_samples.reserve(options.replications);
  tma_samples.reserve(options.replications);
  for (std::size_t rep = 0; rep < options.replications; ++rep) {
    const auto noisy = etcgen::perturb_lognormal(etc, options.noise_cov, rng);
    const MeasureSet m = measure_set(noisy.to_ecs());
    mph_samples.push_back(m.mph);
    tdh_samples.push_back(m.tdh);
    tma_samples.push_back(m.tma);
  }

  MeasureConfidence out;
  out.replications = options.replications;
  out.mph = summarize(point.mph, std::move(mph_samples), options.coverage);
  out.tdh = summarize(point.tdh, std::move(tdh_samples), options.coverage);
  out.tma = summarize(point.tma, std::move(tma_samples), options.coverage);
  return out;
}

}  // namespace hetero::core
