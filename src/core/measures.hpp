// The three heterogeneity measures (paper Sections II-C/E, III) plus the
// rejected alternatives the paper compares against (Section II-D, Fig. 2).
//
//   MPH — machine performance homogeneity (eq. 3 / weighted eq. 4)
//   TDH — task type difficulty homogeneity (eq. 7 / weighted eq. 6)
//   TMA — task-machine affinity: mean non-maximum singular value of the
//         standard-form ECS matrix (eq. 8), falling back to the
//         column-normalized form of [2] (eq. 5) when no standard form
//         exists (Section VI).
//
// MPH and TDH lie in (0, 1]; TMA lies in [0, 1]. All three are invariant to
// scaling the ECS matrix by a positive factor, and the standard form makes
// them mutually independent (the paper's three required properties).
#pragma once

#include <span>
#include <vector>

#include "core/etc_matrix.hpp"
#include "core/standard_form.hpp"
#include "core/weights.hpp"

namespace hetero::par {
class ThreadPool;
}

namespace hetero::core {

// ---------------------------------------------------------------------------
// Homogeneity of a positive value vector (shared by MPH and TDH).

/// Mean of v_(i) / v_(i+1) over the ascending-sorted values (eqs. 3 and 7).
/// A single value is perfectly homogeneous (returns 1). All values must be
/// positive.
double adjacent_ratio_homogeneity(std::span<const double> values);

/// Same measure for values that are already sorted ascending (the
/// incremental annealing path maintains sorted sum vectors and skips the
/// per-evaluation sort). Precondition: ascending order, positive values.
double adjacent_ratio_homogeneity_sorted(std::span<const double> ascending);

/// Alternative homogeneity measures the paper evaluates and rejects
/// (Section II-D): they miss the spread of intermediate values (R, G) or
/// fail to match intuition (COV).
double min_max_ratio(std::span<const double> values);                // R
double adjacent_ratio_geometric_mean(std::span<const double> values); // G
double value_cov(std::span<const double> values);                    // COV

// ---------------------------------------------------------------------------
// The paper's measures.

/// Machine performance homogeneity (eq. 3, weighted via eq. 4).
double mph(const EcsMatrix& ecs, const Weights& w = {});

/// Task type difficulty homogeneity (eq. 7, weighted via eq. 6).
double tdh(const EcsMatrix& ecs, const Weights& w = {});

/// Dispatch knobs for the blocked large-matrix path: above the element
/// threshold, TMA standardizes with the tiled pool-parallel Sinkhorn
/// sweeps and takes the spectrum from the blocked Gram route
/// (linalg::blocked_singular_values) instead of the dense one-sided-Jacobi
/// twin. Both paths compute the same full non-maximum spectrum average;
/// the rsvd_equiv tests bound the drift between them (TMA relative error
/// well under 1e-3, typically ~1e-9) and pin bitwise reproducibility
/// across thread counts.
struct LargePathOptions {
  /// Switch to the blocked path when task_count * machine_count reaches
  /// this many entries; 0 disables it entirely (dense twin everywhere).
  /// The default, 2^20 (a 4096 x 256 environment), is where the dense
  /// Jacobi sweeps start dominating end-to-end characterization time.
  std::size_t min_elements = std::size_t{1} << 20;
  /// Row-tile height of the pool-parallel Sinkhorn passes.
  std::size_t sinkhorn_tile_rows = 64;
  /// Row/column block edge of the tiled Gram build in the spectrum path.
  std::size_t gram_block = 48;
  /// Worker pool; nullptr uses par::shared_pool().
  par::ThreadPool* pool = nullptr;
};

struct TmaOptions {
  SinkhornOptions sinkhorn;
  /// When the standard form does not exist / does not converge, fall back to
  /// the column-normalized TMA of [2] (eq. 5) instead of throwing.
  bool allow_column_normalized_fallback = true;
  /// Large-matrix dispatch (see LargePathOptions).
  LargePathOptions large;
};

/// Full TMA computation record.
struct TmaResult {
  double value = 0.0;
  /// True when eq. 8 on the standard form was used; false when the eq. 5
  /// column-normalized fallback was taken.
  bool used_standard_form = true;
  /// True when the blocked large-matrix path (tiled Sinkhorn + blocked
  /// Gram spectrum) produced this result instead of the dense Jacobi twin.
  bool used_blocked_path = false;
  /// Singular values of the matrix the measure was computed from, sorted
  /// descending (sigma_1 ~= 1 in the standard-form case, Theorem 2).
  std::vector<double> singular_values;
  /// The Sinkhorn record (meaningful when a standard form was attempted).
  StandardFormResult standard_form;
};

/// Task-machine affinity with full diagnostics.
TmaResult tma_detailed(const EcsMatrix& ecs, const Weights& w = {},
                       const TmaOptions& options = {});

/// Task-machine affinity (eq. 8; eq. 5 fallback for non-normalizable
/// patterns).
double tma(const EcsMatrix& ecs, const Weights& w = {});

/// The original column-normalized TMA of [2] (eq. 5): columns are scaled to
/// unit 1-norm (no row normalization), and TMA = mean(sigma_i / sigma_1,
/// i >= 2).
double tma_column_normalized(const EcsMatrix& ecs, const Weights& w = {});

// ---------------------------------------------------------------------------
// Aggregate characterization.

/// The (MPH, TDH, TMA) triple.
struct MeasureSet {
  double mph = 0.0;
  double tdh = 0.0;
  double tma = 0.0;
};

MeasureSet measure_set(const EcsMatrix& ecs, const Weights& w = {});

/// Everything an analyst wants about one environment in a single pass.
struct EnvironmentReport {
  MeasureSet measures;
  std::vector<double> machine_performances;  // MP_j, original machine order
  std::vector<double> task_difficulties;     // TD_i, original task order
  double mph_alt_ratio = 0.0;                // R on MPs
  double mph_alt_geometric = 0.0;            // G on MPs
  double mph_alt_cov = 0.0;                  // COV on MPs
  TmaResult tma_detail;
};

EnvironmentReport characterize(const EcsMatrix& ecs, const Weights& w = {},
                               const TmaOptions& options = {});

}  // namespace hetero::core
