// Task-type and machine weighting factors (paper eqs. 4 and 6).
//
// w_t[i] can encode task-type importance, execution frequency, or execution
// probability; w_m[j] can encode machine characteristics such as security
// level. All measures consume the weighted view diag(w_t) * ECS * diag(w_m).
#pragma once

#include <cstddef>
#include <vector>

#include "base/error.hpp"

namespace hetero::core {

/// Positive weighting factors for task types and machines. An empty vector
/// means "all ones" for that dimension.
struct Weights {
  std::vector<double> task;
  std::vector<double> machine;

  /// Unweighted (all ones).
  static Weights uniform() { return {}; }

  /// Validates against a T x M environment: sizes must match (or be empty)
  /// and every weight must be positive. Throws DimensionError/ValueError.
  void validate(std::size_t task_count, std::size_t machine_count) const {
    detail::require_dims(task.empty() || task.size() == task_count,
                         "Weights: task weight count mismatch");
    detail::require_dims(machine.empty() || machine.size() == machine_count,
                         "Weights: machine weight count mismatch");
    for (double w : task)
      detail::require_value(w > 0.0, "Weights: task weight must be positive");
    for (double w : machine)
      detail::require_value(w > 0.0, "Weights: machine weight must be positive");
  }

  /// Task weight for row i (1.0 when unweighted).
  double task_weight(std::size_t i) const {
    return task.empty() ? 1.0 : task[i];
  }

  /// Machine weight for column j (1.0 when unweighted).
  double machine_weight(std::size_t j) const {
    return machine.empty() ? 1.0 : machine[j];
  }

  bool is_uniform() const { return task.empty() && machine.empty(); }
};

}  // namespace hetero::core
