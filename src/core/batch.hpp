// Parallel batch front end for the measure pipeline.
//
// HEET-style inventory scoring and interactive sweeps over generated ETC
// suites both evaluate the (MPH, TDH, TMA) triple for many matrices at
// once; each evaluation is independent, so the batch maps perfectly onto
// the thread pool. One call amortizes pool dispatch over the whole batch
// and returns results in input order.
#pragma once

#include <span>
#include <vector>

#include "core/measures.hpp"
#include "parallel/thread_pool.hpp"

namespace hetero::core {

struct BatchOptions {
  /// TMA configuration applied to every matrix in the batch.
  TmaOptions tma;
  /// Matrices handed to a worker at a time. The default of 1 is right for
  /// measure-sized work (each item is thousands of flops); raise it only
  /// for very large batches of very small matrices. A grain of 0 is
  /// treated as 1 (it would otherwise violate parallel_for's contract).
  std::size_t grain = 1;
};

/// (MPH, TDH, TMA) for each input, computed across the pool in input order.
/// An invalid input (empty, non-positive, ...) rethrows that input's error.
std::vector<MeasureSet> batch_measures(std::span<const linalg::Matrix> inputs,
                                       par::ThreadPool& pool,
                                       const BatchOptions& options = {});
std::vector<MeasureSet> batch_measures(std::span<const EcsMatrix> inputs,
                                       par::ThreadPool& pool,
                                       const BatchOptions& options = {});

/// Full EnvironmentReport for each input, computed across the pool.
std::vector<EnvironmentReport> batch_characterize(
    std::span<const EcsMatrix> inputs, par::ThreadPool& pool,
    const BatchOptions& options = {});

}  // namespace hetero::core
