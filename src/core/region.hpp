// Heterogeneity-region classification and heuristic recommendation.
//
// The applications the paper motivates (Section I(b), ref [3]) boil down
// to: discretize the (MPH, TDH, TMA) space into named regions and attach
// policy to each. This module provides that discretization plus a mapping
// from region to a recommended scheduling heuristic, distilled from the
// library's own application study (bench/app_heuristic_selection):
// homogeneous environments tolerate cheap availability-based mapping;
// heterogeneous and high-affinity ones need completion-time-aware batch
// heuristics.
#pragma once

#include <string>

#include "core/measures.hpp"

namespace hetero::core {

enum class Level { low, medium, high };

/// Thresholds splitting each measure into low/medium/high. Defaults: the
/// homogeneity measures split at 0.45/0.8 (low MPH = very heterogeneous);
/// TMA splits at 0.1/0.35.
struct RegionThresholds {
  double homogeneity_low = 0.45;
  double homogeneity_high = 0.80;
  double tma_low = 0.10;
  double tma_high = 0.35;
};

struct HeterogeneityRegion {
  Level mph = Level::high;
  Level tdh = Level::high;
  Level tma = Level::low;
};

/// Classifies a measure set into a region.
HeterogeneityRegion classify_region(const MeasureSet& measures,
                                    const RegionThresholds& thresholds = {});

/// "high MPH / medium TDH / low TMA"-style rendering.
std::string region_name(const HeterogeneityRegion& region);

/// Recommended static mapping heuristic for the region, with a one-line
/// rationale. The mapping encodes the shape observed in
/// bench/app_heuristic_selection: MCT when machines are near-homogeneous,
/// Sufferage for significant affinity, Min-Min otherwise.
struct HeuristicRecommendation {
  std::string heuristic;
  std::string rationale;
};

HeuristicRecommendation recommend_heuristic(const HeterogeneityRegion& region);

/// Convenience: classify + recommend straight from an environment.
HeuristicRecommendation recommend_heuristic(const EcsMatrix& ecs,
                                            const Weights& w = {});

}  // namespace hetero::core
