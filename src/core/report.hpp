// One-call markdown report for an environment: measures, alternatives,
// region + heuristic recommendation, affinity modes, machine classes,
// extreme extracts, and bootstrap confidence — everything an analyst would
// paste into a ticket. Used by `hetero_cli report`.
#pragma once

#include <string>

#include "core/etc_matrix.hpp"

namespace hetero::core {

struct ReportOptions {
  /// Title line of the document.
  std::string title = "Environment characterization";
  /// Include the bootstrap confidence section (costs ~200 measure
  /// evaluations).
  bool with_confidence = true;
  /// Include the extreme-extract atlas (costs an exhaustive/sampled scan).
  bool with_atlas = true;
  /// Machine classes to report (0 disables the clustering section).
  std::size_t machine_classes = 2;
};

/// Renders a markdown report of the environment. All sections degrade
/// gracefully (e.g. the affinity section notes when no standard form
/// exists instead of failing).
std::string markdown_report(const EtcMatrix& etc,
                            const ReportOptions& options = {});

}  // namespace hetero::core
