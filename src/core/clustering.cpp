#include "core/clustering.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "linalg/vector_ops.hpp"

namespace hetero::core {
namespace {

using linalg::Matrix;

// Cosine-similarity matrix between the columns of `values`.
Matrix column_cosines(const Matrix& values) {
  const std::size_t n = values.cols();
  Matrix cos(n, n, 1.0);
  std::vector<std::vector<double>> cols(n);
  std::vector<double> norms(n);
  for (std::size_t j = 0; j < n; ++j) {
    cols[j] = values.col(j);
    norms[j] = linalg::norm2(cols[j]);
  }
  for (std::size_t a = 0; a < n; ++a)
    for (std::size_t b = a + 1; b < n; ++b) {
      const double c =
          linalg::dot(cols[a], cols[b]) / (norms[a] * norms[b]);
      cos(a, b) = cos(b, a) = c;
    }
  return cos;
}

// Average-linkage agglomeration down to k clusters on distance 1 - cosine.
std::vector<std::size_t> agglomerate(const Matrix& cosine, std::size_t k) {
  const std::size_t n = cosine.rows();
  std::vector<std::vector<std::size_t>> clusters(n);
  for (std::size_t j = 0; j < n; ++j) clusters[j] = {j};

  const auto linkage = [&](const std::vector<std::size_t>& a,
                           const std::vector<std::size_t>& b) {
    double acc = 0.0;
    for (std::size_t x : a)
      for (std::size_t y : b) acc += 1.0 - cosine(x, y);
    return acc / static_cast<double>(a.size() * b.size());
  };

  while (clusters.size() > k) {
    double best = std::numeric_limits<double>::infinity();
    std::size_t ba = 0, bb = 1;
    for (std::size_t a = 0; a < clusters.size(); ++a)
      for (std::size_t b = a + 1; b < clusters.size(); ++b) {
        const double d = linkage(clusters[a], clusters[b]);
        if (d < best) {
          best = d;
          ba = a;
          bb = b;
        }
      }
    clusters[ba].insert(clusters[ba].end(), clusters[bb].begin(),
                        clusters[bb].end());
    clusters.erase(clusters.begin() + static_cast<std::ptrdiff_t>(bb));
  }

  std::vector<std::size_t> labels(n, 0);
  for (std::size_t c = 0; c < clusters.size(); ++c)
    for (std::size_t j : clusters[c]) labels[j] = c;
  return labels;
}

MachineClustering cluster_columns(const Matrix& values, std::size_t k) {
  detail::require_value(k >= 1 && k <= values.cols(),
                        "cluster: k must be in [1, count]");
  const Matrix cosine = column_cosines(values);
  MachineClustering out;
  out.cluster = agglomerate(cosine, k);
  out.cluster_count = k;

  double within = 0.0, between = 0.0;
  std::size_t within_pairs = 0, between_pairs = 0;
  for (std::size_t a = 0; a < values.cols(); ++a)
    for (std::size_t b = a + 1; b < values.cols(); ++b) {
      if (out.cluster[a] == out.cluster[b]) {
        within += cosine(a, b);
        ++within_pairs;
      } else {
        between += cosine(a, b);
        ++between_pairs;
      }
    }
  out.within_cosine = within_pairs ? within / static_cast<double>(within_pairs)
                                   : 1.0;
  out.between_cosine =
      between_pairs ? between / static_cast<double>(between_pairs) : 1.0;
  return out;
}

}  // namespace

MachineClustering cluster_machines(const EcsMatrix& ecs, std::size_t k,
                                   const Weights& w) {
  return cluster_columns(ecs.weighted_values(w), k);
}

MachineClustering cluster_tasks(const EcsMatrix& ecs, std::size_t k,
                                const Weights& w) {
  return cluster_columns(ecs.weighted_values(w).transposed(), k);
}

}  // namespace hetero::core
