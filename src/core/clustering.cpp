#include "core/clustering.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "linalg/vector_ops.hpp"
#include "simd/simd.hpp"

namespace hetero::core {
namespace {

using linalg::Matrix;

// Cosine-similarity matrix between the rows of `values`. Rows are contiguous
// in the row-major storage, so every pair is one kernel dot product — no
// per-entity column copies (callers clustering columns transpose once).
Matrix row_cosines(const Matrix& values) {
  const std::size_t n = values.rows();
  const std::size_t dim = values.cols();
  Matrix cos(n, n, 1.0);
  const auto& K = simd::kernels();
  std::vector<double> norms(n);
  for (std::size_t j = 0; j < n; ++j) {
    const double* r = values.row(j).data();
    norms[j] = std::sqrt(K.dot(r, r, dim));
  }
  for (std::size_t a = 0; a < n; ++a) {
    const double* ra = values.row(a).data();
    for (std::size_t b = a + 1; b < n; ++b) {
      const double c =
          K.dot(ra, values.row(b).data(), dim) / (norms[a] * norms[b]);
      cos(a, b) = cos(b, a) = c;
    }
  }
  return cos;
}

// Average-linkage agglomeration down to k clusters on distance 1 - cosine.
std::vector<std::size_t> agglomerate(const Matrix& cosine, std::size_t k) {
  const std::size_t n = cosine.rows();
  std::vector<std::vector<std::size_t>> clusters(n);
  for (std::size_t j = 0; j < n; ++j) clusters[j] = {j};

  const auto linkage = [&](const std::vector<std::size_t>& a,
                           const std::vector<std::size_t>& b) {
    double acc = 0.0;
    for (std::size_t x : a)
      for (std::size_t y : b) acc += 1.0 - cosine(x, y);
    return acc / static_cast<double>(a.size() * b.size());
  };

  while (clusters.size() > k) {
    double best = std::numeric_limits<double>::infinity();
    std::size_t ba = 0, bb = 1;
    for (std::size_t a = 0; a < clusters.size(); ++a)
      for (std::size_t b = a + 1; b < clusters.size(); ++b) {
        const double d = linkage(clusters[a], clusters[b]);
        if (d < best) {
          best = d;
          ba = a;
          bb = b;
        }
      }
    clusters[ba].insert(clusters[ba].end(), clusters[bb].begin(),
                        clusters[bb].end());
    clusters.erase(clusters.begin() + static_cast<std::ptrdiff_t>(bb));
  }

  std::vector<std::size_t> labels(n, 0);
  for (std::size_t c = 0; c < clusters.size(); ++c)
    for (std::size_t j : clusters[c]) labels[j] = c;
  return labels;
}

// Clusters the ROWS of `values` (entities contiguous in memory).
MachineClustering cluster_rows(const Matrix& values, std::size_t k) {
  detail::require_value(k >= 1 && k <= values.rows(),
                        "cluster: k must be in [1, count]");
  const Matrix cosine = row_cosines(values);
  MachineClustering out;
  out.cluster = agglomerate(cosine, k);
  out.cluster_count = k;

  double within = 0.0, between = 0.0;
  std::size_t within_pairs = 0, between_pairs = 0;
  for (std::size_t a = 0; a < values.rows(); ++a)
    for (std::size_t b = a + 1; b < values.rows(); ++b) {
      if (out.cluster[a] == out.cluster[b]) {
        within += cosine(a, b);
        ++within_pairs;
      } else {
        between += cosine(a, b);
        ++between_pairs;
      }
    }
  out.within_cosine = within_pairs ? within / static_cast<double>(within_pairs)
                                   : 1.0;
  out.between_cosine =
      between_pairs ? between / static_cast<double>(between_pairs) : 1.0;
  return out;
}

}  // namespace

MachineClustering cluster_machines(const EcsMatrix& ecs, std::size_t k,
                                   const Weights& w) {
  // Machines are columns; one transpose makes each machine a contiguous row.
  return cluster_rows(ecs.weighted_values(w).transposed(), k);
}

MachineClustering cluster_tasks(const EcsMatrix& ecs, std::size_t k,
                                const Weights& w) {
  // Tasks are already rows — no transpose at all (the old column-based path
  // transposed first and then copied every column back out).
  return cluster_rows(ecs.weighted_values(w), k);
}

}  // namespace hetero::core
