#include "core/standard_form.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "graph/structure.hpp"
#include "parallel/thread_pool.hpp"
#include "simd/simd.hpp"

namespace hetero::core {
namespace {

using linalg::Matrix;

// Scale factors on huge ill-conditioned inputs can escape double range: a
// tiny-but-positive sum maps to an overflowing factor (whose next product
// is inf, then 0 * inf = NaN), and entries near DBL_MAX push the sums
// themselves to infinity. A huge-but-finite factor is recoverable — it is
// clamped, the pass rescales the dimension to a sane magnitude, and the
// next pass resumes from there (Sinkhorn's fixed point is invariant to the
// intermediate per-pass scaling) — so the clamp caps factors at
// sqrt(DBL_MAX), keeping any product of two consecutive factors finite. A
// non-finite or non-positive sum means the matrix itself has already left
// the representable range: that surfaces as ScaleOverflowError instead of
// silent NaN propagation. For well-scaled inputs neither branch fires and
// the computed factors are unchanged, preserving the bit-identity
// contracts between the fused and reference paths.
constexpr double kMaxScaleFactor = 1.34078079299425956e154;  // sqrt(DBL_MAX)

double checked_scale_factor(double target, double sum) {
  if (!(sum > 0.0) || sum > std::numeric_limits<double>::max())
    throw ScaleOverflowError(
        "standardize: a row/column sum overflowed or vanished; the input "
        "is too ill-conditioned to scale in double precision");
  const double f = target / sum;
  return f > kMaxScaleFactor ? kMaxScaleFactor : f;
}

void validate_input(const Matrix& m) {
  detail::require_value(!m.empty(), "standardize: empty matrix");
  detail::require_value(!m.has_nonfinite(), "standardize: non-finite entries");
  detail::require_value(m.all_nonnegative(),
                        "standardize: entries must be nonnegative");
  for (std::size_t i = 0; i < m.rows(); ++i)
    detail::require_value(m.row_sum(i) > 0.0, "standardize: all-zero row");
  const auto cs = m.col_sums();
  for (std::size_t j = 0; j < m.cols(); ++j)
    detail::require_value(cs[j] > 0.0, "standardize: all-zero column");
}

void validate_warm_scale(const std::vector<double>& scale, std::size_t dim,
                         const char* which) {
  if (scale.empty()) return;
  // Diagnostic strings are built only on failure: require_* takes its
  // message eagerly, which would put a heap-allocating concatenation per
  // entry on the warm-started hot path.
  if (scale.size() != dim)
    throw DimensionError(std::string("standardize: ") + which +
                         " size does not match the input");
  bool ok = true;
  for (double s : scale) ok = ok && s > 0.0 && std::isfinite(s);
  if (!ok)
    throw ValueError(std::string("standardize: ") + which +
                     " entries must be positive and finite");
}

// Common setup shared by the fused and reference implementations: targets,
// pattern diagnosis, working copy (core-projected when limit_only) and the
// warm-start seed folded into the working matrix and the scale vectors.
void prepare(const Matrix& ecs, const SinkhornOptions& options,
             StandardFormResult& result, Matrix& work) {
  validate_input(ecs);
  validate_warm_scale(options.warm_row_scale, ecs.rows(), "warm_row_scale");
  validate_warm_scale(options.warm_col_scale, ecs.cols(), "warm_col_scale");
  const auto t = static_cast<double>(ecs.rows());
  const auto m = static_cast<double>(ecs.cols());

  result.target_row_sum = std::sqrt(m / t);  // Mk with k = 1/sqrt(TM)
  result.target_col_sum = std::sqrt(t / m);  // Tk
  result.pattern = classify_pattern(ecs);
  result.row_scale.assign(ecs.rows(), 1.0);
  result.col_scale.assign(ecs.cols(), 1.0);

  work = ecs;
  if (result.pattern == NormalizabilityClass::limit_only) {
    // Entries off every positive diagonal decay to zero in the Sinkhorn
    // limit but only at rate O(1/k); dropping them up front leaves the
    // limit unchanged and restores geometric convergence.
    work = *graph::support_core(ecs);
    result.projected_to_core = true;
  }

  if (!options.warm_row_scale.empty() || !options.warm_col_scale.empty()) {
    if (!options.warm_row_scale.empty())
      result.row_scale = options.warm_row_scale;
    if (!options.warm_col_scale.empty())
      result.col_scale = options.warm_col_scale;
    for (std::size_t i = 0; i < work.rows(); ++i) {
      const double ri = result.row_scale[i];
      auto row = work.row(i);
      for (std::size_t j = 0; j < work.cols(); ++j)
        row[j] *= ri * result.col_scale[j];
    }
  }
}

}  // namespace

NormalizabilityClass classify_pattern(const Matrix& ecs) {
  if (ecs.all_positive()) return NormalizabilityClass::positive;
  if (graph::is_sinkhorn_normalizable(ecs))
    return NormalizabilityClass::normalizable_pattern;
  if (graph::support_core(ecs).has_value())
    return NormalizabilityClass::limit_only;
  return NormalizabilityClass::not_normalizable;
}

double standard_form_residual(const Matrix& m, double row_target,
                              double col_target) {
  double r = 0.0;
  for (std::size_t i = 0; i < m.rows(); ++i)
    r = std::max(r, std::abs(m.row_sum(i) - row_target));
  const auto cs = m.col_sums();
  for (std::size_t j = 0; j < m.cols(); ++j)
    r = std::max(r, std::abs(cs[j] - col_target));
  return r;
}

namespace {

// The fused eq. 9 loop shared by standardize() and
// standardize_positive_into(). `work` must already carry the warm seed and
// `result` the targets and seeded scale vectors; the scratch vectors are
// (re)sized here so callers can reuse their heap blocks across calls.
//
// Incremental state: each pass consumes the sums of its own dimension and
// produces fresh sums of the opposite dimension as a side effect of the
// row-major application sweep, so the per-column strided recomputation and
// the separate residual pass of the reference implementation disappear.
// Per-column additions happen in increasing row order (elementwise over
// the row, which never reorders within a column) and per-row sums use the
// kernel layer's fixed 4-lane order — exactly how the reference's
// col_sum/row_sum scans accumulate — so every scale factor (and therefore
// the result) is bit-identical to the reference path.
// When `sums_primed` is true the caller has already filled `row_sums` and
// `col_sums` with the sums of `work` in the reference scan order (fused with
// its own setup pass); otherwise they are computed here.
void run_fused(Matrix& work, const SinkhornOptions& options,
               StandardFormResult& result, std::vector<double>& row_sums,
               std::vector<double>& col_sums, std::vector<double>& factor,
               bool sums_primed) {
  const std::size_t rows = work.rows();
  const std::size_t cols = work.cols();
  const double rt = result.target_row_sum;
  const double ct = result.target_col_sum;
  const auto& K = simd::kernels();

  factor.assign(cols, 0.0);  // per-column factors, column pass

  if (!sums_primed) {
    row_sums.assign(rows, 0.0);
    col_sums.assign(cols, 0.0);
    if (options.row_first) {
      for (std::size_t i = 0; i < rows; ++i) row_sums[i] = work.row_sum(i);
    } else {
      // Same row-major accumulation order as Matrix::col_sums(), minus its
      // return-by-value allocation.
      for (std::size_t i = 0; i < rows; ++i)
        K.add_into(work.row(i).data(), col_sums.data(), cols);
    }
  }

  // Scales rows to `rt` using the current row_sums, refilling col_sums with
  // the sums of the scaled matrix; returns the max row-sum deviation of the
  // scaled matrix (floating-point noise only, but the reference measures it,
  // so the fused path measures it identically).
  const auto row_pass = [&] {
    std::fill(col_sums.begin(), col_sums.end(), 0.0);
    double err = 0.0;
    for (std::size_t i = 0; i < rows; ++i) {
      const double f = checked_scale_factor(rt, row_sums[i]);
      result.row_scale[i] *= f;
      const double s =
          K.scale_accum(work.row(i).data(), cols, f, col_sums.data());
      err = std::max(err, std::abs(s - rt));
    }
    return err;
  };
  // Scales columns to `ct` using the current col_sums, refilling row_sums;
  // returns the max column-sum deviation of the scaled matrix.
  const auto column_pass = [&] {
    for (std::size_t j = 0; j < cols; ++j) {
      const double f = checked_scale_factor(ct, col_sums[j]);
      factor[j] = f;
      result.col_scale[j] *= f;
    }
    std::fill(col_sums.begin(), col_sums.end(), 0.0);
    for (std::size_t i = 0; i < rows; ++i)
      row_sums[i] = K.scale_vec_accum(work.row(i).data(), factor.data(), cols,
                                      col_sums.data());
    double err = 0.0;
    for (std::size_t j = 0; j < cols; ++j)
      err = std::max(err, std::abs(col_sums[j] - ct));
    return err;
  };

  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    // Eq. 9: one column pass and one row pass per iteration (column first
    // unless the ordering ablation flips it). The second pass leaves its own
    // dimension within floating-point noise of the target, and the first
    // pass's dimension carries the true residual, already accumulated.
    double first_err = 0.0, second_err = 0.0;
    if (options.row_first) {
      first_err = row_pass();
      second_err = column_pass();
      // column_pass refilled row_sums with the final matrix's row sums.
      first_err = 0.0;
      for (std::size_t i = 0; i < rows; ++i)
        first_err = std::max(first_err, std::abs(row_sums[i] - rt));
    } else {
      first_err = column_pass();
      second_err = row_pass();
      // row_pass refilled col_sums with the final matrix's column sums.
      first_err = 0.0;
      for (std::size_t j = 0; j < cols; ++j)
        first_err = std::max(first_err, std::abs(col_sums[j] - ct));
    }
    result.iterations = it + 1;
    result.residual = std::max(first_err, second_err);
    if (result.residual < options.tolerance) {
      result.converged = true;
      break;
    }
  }
}

}  // namespace

StandardFormResult standardize(const Matrix& ecs,
                               const SinkhornOptions& options) {
  StandardFormResult result;
  Matrix work;
  prepare(ecs, options, result, work);
  std::vector<double> row_sums, col_sums, factor;
  run_fused(work, options, result, row_sums, col_sums, factor, false);

  result.standard = std::move(work);
  if (!result.converged && options.throw_on_failure)
    throw ConvergenceError(
        "standardize: Sinkhorn iteration did not reach tolerance (pattern "
        "may be decomposable; see Section VI)");
  return result;
}

void standardize_positive_into(const Matrix& ecs,
                               const SinkhornOptions& options,
                               StandardFormResult& out) {
  detail::require_dims(!ecs.empty(), "standardize: empty matrix");
  validate_warm_scale(options.warm_row_scale, ecs.rows(), "warm_row_scale");
  validate_warm_scale(options.warm_col_scale, ecs.cols(), "warm_col_scale");
  const std::size_t rows = ecs.rows();
  const std::size_t cols = ecs.cols();

  if (out.standard.rows() != rows || out.standard.cols() != cols)
    out.standard = Matrix(rows, cols, 0.0);
  out.row_scale.assign(rows, 1.0);
  out.col_scale.assign(cols, 1.0);
  out.iterations = 0;
  out.converged = false;
  out.residual = 0.0;
  out.pattern = NormalizabilityClass::positive;
  out.projected_to_core = false;
  out.target_row_sum =
      std::sqrt(static_cast<double>(cols) / static_cast<double>(rows));
  out.target_col_sum =
      std::sqrt(static_cast<double>(rows) / static_cast<double>(cols));

  // One fused setup pass replaces the matrix copy, the warm-seed
  // application, and run_fused's sum priming: each source entry is loaded
  // once, seeded, stored, and accumulated into both sum vectors in the
  // reference scan order, so the seeded matrix and the primed sums are
  // bit-identical to the layered path in standardize().
  const bool seeded =
      !options.warm_row_scale.empty() || !options.warm_col_scale.empty();
  if (!options.warm_row_scale.empty()) out.row_scale = options.warm_row_scale;
  if (!options.warm_col_scale.empty()) out.col_scale = options.warm_col_scale;
  thread_local std::vector<double> row_sums, col_sums, factor;
  row_sums.assign(rows, 0.0);
  col_sums.assign(cols, 0.0);
  const auto& K = simd::kernels();
  for (std::size_t i = 0; i < rows; ++i) {
    const auto src = ecs.row(i);
    const auto dst = out.standard.row(i);
    row_sums[i] =
        seeded ? K.copy_scale_accum(src.data(), dst.data(), cols,
                                    out.row_scale[i], out.col_scale.data(),
                                    col_sums.data())
               : K.copy_accum(src.data(), dst.data(), cols, col_sums.data());
  }

  run_fused(out.standard, options, out, row_sums, col_sums, factor, true);
  if (!out.converged && options.throw_on_failure)
    throw ConvergenceError(
        "standardize: Sinkhorn iteration did not reach tolerance (pattern "
        "may be decomposable; see Section VI)");
}

StandardFormResult standardize_reference(const Matrix& ecs,
                                         const SinkhornOptions& options) {
  StandardFormResult result;
  Matrix work;
  prepare(ecs, options, result, work);

  const auto column_pass = [&] {
    for (std::size_t j = 0; j < work.cols(); ++j) {
      const double f =
          checked_scale_factor(result.target_col_sum, work.col_sum(j));
      work.scale_col(j, f);
      result.col_scale[j] *= f;
    }
  };
  const auto row_pass = [&] {
    for (std::size_t i = 0; i < work.rows(); ++i) {
      const double f =
          checked_scale_factor(result.target_row_sum, work.row_sum(i));
      work.scale_row(i, f);
      result.row_scale[i] *= f;
    }
  };

  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    if (options.row_first) {
      row_pass();
      column_pass();
    } else {
      column_pass();
      row_pass();
    }
    result.iterations = it + 1;
    result.residual = standard_form_residual(work, result.target_row_sum,
                                             result.target_col_sum);
    if (result.residual < options.tolerance) {
      result.converged = true;
      break;
    }
  }

  result.standard = std::move(work);
  if (!result.converged && options.throw_on_failure)
    throw ConvergenceError(
        "standardize: Sinkhorn iteration did not reach tolerance (pattern "
        "may be decomposable; see Section VI)");
  return result;
}

StandardFormResult standardize_tiled(const Matrix& ecs,
                                     const SinkhornOptions& options,
                                     par::ThreadPool& pool,
                                     std::size_t tile_rows) {
  detail::require_value(tile_rows > 0,
                        "standardize_tiled: tile_rows must be positive");
  StandardFormResult result;
  Matrix work;
  prepare(ecs, options, result, work);
  const std::size_t rows = work.rows();
  const std::size_t cols = work.cols();
  const double rt = result.target_row_sum;
  const double ct = result.target_col_sum;
  const std::size_t tiles = (rows + tile_rows - 1) / tile_rows;

  std::vector<double> row_sums(rows, 0.0);
  std::vector<double> col_sums(cols, 0.0);
  std::vector<double> row_factor(rows, 0.0);
  std::vector<double> col_factor(cols, 0.0);
  // Tile-local column accumulators and per-tile row-residual maxima. The
  // accumulators fold into col_sums in ascending tile order, so the
  // summation order depends only on tile_rows — never on how tiles land on
  // threads — which makes the whole iteration bit-identical across thread
  // counts.
  std::vector<std::vector<double>> tile_cols(tiles,
                                             std::vector<double>(cols, 0.0));
  std::vector<double> tile_err(tiles, 0.0);

  const auto tile_range = [&](std::size_t t) {
    const std::size_t i0 = t * tile_rows;
    return std::pair{i0, std::min(rows, i0 + tile_rows)};
  };
  const auto fold_cols = [&] {
    std::fill(col_sums.begin(), col_sums.end(), 0.0);
    const auto& K = simd::kernels();
    for (std::size_t t = 0; t < tiles; ++t)
      K.add_into(tile_cols[t].data(), col_sums.data(), cols);
  };

  // Prime the sums of the first pass's dimension.
  if (options.row_first) {
    par::parallel_for(pool, 0, tiles, [&](std::size_t t) {
      const auto [i0, i1] = tile_range(t);
      for (std::size_t i = i0; i < i1; ++i) row_sums[i] = work.row_sum(i);
    });
  } else {
    par::parallel_for(pool, 0, tiles, [&](std::size_t t) {
      const auto [i0, i1] = tile_range(t);
      const auto& K = simd::kernels();
      auto& acc = tile_cols[t];
      std::fill(acc.begin(), acc.end(), 0.0);
      for (std::size_t i = i0; i < i1; ++i)
        K.add_into(work.row(i).data(), acc.data(), cols);
    });
    fold_cols();
  }

  // Same pass structure as run_fused, with the row-major application sweep
  // split over tiles: scale factors first (serial, guarded), then the
  // fused scale+accumulate kernels per tile, then the ordered fold.
  const auto row_pass = [&] {
    for (std::size_t i = 0; i < rows; ++i) {
      row_factor[i] = checked_scale_factor(rt, row_sums[i]);
      result.row_scale[i] *= row_factor[i];
    }
    par::parallel_for(pool, 0, tiles, [&](std::size_t t) {
      const auto [i0, i1] = tile_range(t);
      const auto& K = simd::kernels();
      auto& acc = tile_cols[t];
      std::fill(acc.begin(), acc.end(), 0.0);
      double err = 0.0;
      for (std::size_t i = i0; i < i1; ++i) {
        const double s =
            K.scale_accum(work.row(i).data(), cols, row_factor[i], acc.data());
        err = std::max(err, std::abs(s - rt));
      }
      tile_err[t] = err;
    });
    fold_cols();
    double err = 0.0;
    for (std::size_t t = 0; t < tiles; ++t) err = std::max(err, tile_err[t]);
    return err;
  };
  const auto column_pass = [&] {
    for (std::size_t j = 0; j < cols; ++j) {
      col_factor[j] = checked_scale_factor(ct, col_sums[j]);
      result.col_scale[j] *= col_factor[j];
    }
    par::parallel_for(pool, 0, tiles, [&](std::size_t t) {
      const auto [i0, i1] = tile_range(t);
      const auto& K = simd::kernels();
      auto& acc = tile_cols[t];
      std::fill(acc.begin(), acc.end(), 0.0);
      for (std::size_t i = i0; i < i1; ++i)
        row_sums[i] = K.scale_vec_accum(work.row(i).data(), col_factor.data(),
                                        cols, acc.data());
    });
    fold_cols();
    double err = 0.0;
    for (std::size_t j = 0; j < cols; ++j)
      err = std::max(err, std::abs(col_sums[j] - ct));
    return err;
  };

  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    double first_err = 0.0;
    double second_err = 0.0;
    if (options.row_first) {
      first_err = row_pass();
      second_err = column_pass();
      // column_pass refilled row_sums with the final matrix's row sums.
      first_err = 0.0;
      for (std::size_t i = 0; i < rows; ++i)
        first_err = std::max(first_err, std::abs(row_sums[i] - rt));
    } else {
      first_err = column_pass();
      second_err = row_pass();
      // row_pass refolded col_sums with the final matrix's column sums.
      first_err = 0.0;
      for (std::size_t j = 0; j < cols; ++j)
        first_err = std::max(first_err, std::abs(col_sums[j] - ct));
    }
    result.iterations = it + 1;
    result.residual = std::max(first_err, second_err);
    if (result.residual < options.tolerance) {
      result.converged = true;
      break;
    }
  }

  result.standard = std::move(work);
  if (!result.converged && options.throw_on_failure)
    throw ConvergenceError(
        "standardize: Sinkhorn iteration did not reach tolerance (pattern "
        "may be decomposable; see Section VI)");
  return result;
}

StandardFormResult standardize(const EcsMatrix& ecs, const Weights& w,
                               const SinkhornOptions& options) {
  return standardize(ecs.weighted_values(w), options);
}

}  // namespace hetero::core
