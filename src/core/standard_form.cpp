#include "core/standard_form.hpp"

#include <algorithm>
#include <cmath>

#include "graph/structure.hpp"

namespace hetero::core {
namespace {

using linalg::Matrix;

void validate_input(const Matrix& m) {
  detail::require_value(!m.empty(), "standardize: empty matrix");
  detail::require_value(!m.has_nonfinite(), "standardize: non-finite entries");
  detail::require_value(m.all_nonnegative(),
                        "standardize: entries must be nonnegative");
  for (std::size_t i = 0; i < m.rows(); ++i)
    detail::require_value(m.row_sum(i) > 0.0, "standardize: all-zero row");
  for (std::size_t j = 0; j < m.cols(); ++j)
    detail::require_value(m.col_sum(j) > 0.0, "standardize: all-zero column");
}

}  // namespace

NormalizabilityClass classify_pattern(const Matrix& ecs) {
  if (ecs.all_positive()) return NormalizabilityClass::positive;
  if (graph::is_sinkhorn_normalizable(ecs))
    return NormalizabilityClass::normalizable_pattern;
  if (graph::support_core(ecs).has_value())
    return NormalizabilityClass::limit_only;
  return NormalizabilityClass::not_normalizable;
}

double standard_form_residual(const Matrix& m, double row_target,
                              double col_target) {
  double r = 0.0;
  for (std::size_t i = 0; i < m.rows(); ++i)
    r = std::max(r, std::abs(m.row_sum(i) - row_target));
  for (std::size_t j = 0; j < m.cols(); ++j)
    r = std::max(r, std::abs(m.col_sum(j) - col_target));
  return r;
}

StandardFormResult standardize(const Matrix& ecs,
                               const SinkhornOptions& options) {
  validate_input(ecs);
  const auto t = static_cast<double>(ecs.rows());
  const auto m = static_cast<double>(ecs.cols());

  StandardFormResult result;
  result.target_row_sum = std::sqrt(m / t);  // Mk with k = 1/sqrt(TM)
  result.target_col_sum = std::sqrt(t / m);  // Tk
  result.pattern = classify_pattern(ecs);
  result.row_scale.assign(ecs.rows(), 1.0);
  result.col_scale.assign(ecs.cols(), 1.0);

  Matrix work = ecs;
  if (result.pattern == NormalizabilityClass::limit_only) {
    // Entries off every positive diagonal decay to zero in the Sinkhorn
    // limit but only at rate O(1/k); dropping them up front leaves the
    // limit unchanged and restores geometric convergence.
    work = *graph::support_core(ecs);
    result.projected_to_core = true;
  }

  const auto column_pass = [&] {
    for (std::size_t j = 0; j < work.cols(); ++j) {
      const double s = work.col_sum(j);
      const double f = result.target_col_sum / s;
      work.scale_col(j, f);
      result.col_scale[j] *= f;
    }
  };
  const auto row_pass = [&] {
    for (std::size_t i = 0; i < work.rows(); ++i) {
      const double s = work.row_sum(i);
      const double f = result.target_row_sum / s;
      work.scale_row(i, f);
      result.row_scale[i] *= f;
    }
  };

  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    // Eq. 9: one column pass and one row pass per iteration (column first
    // unless the ordering ablation flips it).
    if (options.row_first) {
      row_pass();
      column_pass();
    } else {
      column_pass();
      row_pass();
    }
    result.iterations = it + 1;
    result.residual = standard_form_residual(work, result.target_row_sum,
                                             result.target_col_sum);
    if (result.residual < options.tolerance) {
      result.converged = true;
      break;
    }
  }

  result.standard = std::move(work);
  if (!result.converged && options.throw_on_failure)
    throw ConvergenceError(
        "standardize: Sinkhorn iteration did not reach tolerance (pattern "
        "may be decomposable; see Section VI)");
  return result;
}

StandardFormResult standardize(const EcsMatrix& ecs, const Weights& w,
                               const SinkhornOptions& options) {
  return standardize(ecs.weighted_values(w), options);
}

}  // namespace hetero::core
