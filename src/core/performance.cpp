#include "core/performance.hpp"

#include "linalg/vector_ops.hpp"

namespace hetero::core {

std::vector<double> machine_performances(const EcsMatrix& ecs,
                                         const Weights& w) {
  w.validate(ecs.task_count(), ecs.machine_count());
  std::vector<double> mp(ecs.machine_count(), 0.0);
  for (std::size_t j = 0; j < ecs.machine_count(); ++j) {
    double s = 0.0;
    for (std::size_t i = 0; i < ecs.task_count(); ++i)
      s += w.task_weight(i) * ecs(i, j);
    mp[j] = w.machine_weight(j) * s;
  }
  return mp;
}

std::vector<double> task_difficulties(const EcsMatrix& ecs, const Weights& w) {
  w.validate(ecs.task_count(), ecs.machine_count());
  std::vector<double> td(ecs.task_count(), 0.0);
  for (std::size_t i = 0; i < ecs.task_count(); ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < ecs.machine_count(); ++j)
      s += w.machine_weight(j) * ecs(i, j);
    td[i] = w.task_weight(i) * s;
  }
  return td;
}

double machine_performance(const EcsMatrix& ecs, std::size_t machine,
                           const Weights& w) {
  detail::require_dims(machine < ecs.machine_count(),
                       "machine_performance: index out of range");
  return machine_performances(ecs, w)[machine];
}

double task_difficulty(const EcsMatrix& ecs, std::size_t task,
                       const Weights& w) {
  detail::require_dims(task < ecs.task_count(),
                       "task_difficulty: index out of range");
  return task_difficulties(ecs, w)[task];
}

CanonicalForm canonical_form(const EcsMatrix& ecs, const Weights& w) {
  const auto mp = machine_performances(ecs, w);
  const auto td = task_difficulties(ecs, w);
  auto task_order = linalg::ascending_order(td);
  auto machine_order = linalg::ascending_order(mp);
  EcsMatrix canonical = ecs.permuted(task_order, machine_order);
  return CanonicalForm{std::move(canonical), std::move(task_order),
                       std::move(machine_order)};
}

bool is_canonical(const EcsMatrix& ecs, const Weights& w) {
  return linalg::is_ascending(machine_performances(ecs, w)) &&
         linalg::is_ascending(task_difficulties(ecs, w));
}

}  // namespace hetero::core
