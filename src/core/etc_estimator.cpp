#include "core/etc_estimator.hpp"

#include <cmath>

#include "base/error.hpp"

namespace hetero::core {
namespace {

void require_cell_values(std::span<const double> values, const char* what) {
  for (double v : values)
    hetero::detail::require_value(v > 0.0 && std::isfinite(v), what);
}

}  // namespace

EtcEstimator::EtcEstimator(const linalg::Matrix& initial_etc,
                           EtcEstimatorOptions options)
    : options_(options),
      tasks_(initial_etc.rows()),
      machines_(initial_etc.cols()) {
  hetero::detail::require_value(
      options_.alpha > 0.0 && options_.alpha <= 1.0,
      "EtcEstimator: alpha must be in (0, 1]");
  hetero::detail::require_value(
      options_.min_rel_change >= 0.0 &&
          std::isfinite(options_.min_rel_change),
      "EtcEstimator: min_rel_change must be >= 0 and finite");
  hetero::detail::require_value(
      !initial_etc.empty() && initial_etc.all_positive() &&
          !initial_etc.has_nonfinite(),
      "EtcEstimator: initial ETC must be non-empty, strictly positive, and "
      "finite");
  const auto d = initial_etc.data();
  mean_.assign(d.begin(), d.end());
  last_fed_ = mean_;
  count_.assign(mean_.size(), 0);
}

std::size_t EtcEstimator::flat(std::size_t task, std::size_t machine) const {
  hetero::detail::require_dims(task < tasks_ && machine < machines_,
                               "EtcEstimator: cell index out of range");
  return task * machines_ + machine;
}

std::optional<double> EtcEstimator::observe(std::size_t task,
                                            std::size_t machine,
                                            double runtime) {
  hetero::detail::require_value(runtime > 0.0 && std::isfinite(runtime),
                                "EtcEstimator::observe: runtime must be "
                                "positive and finite");
  const std::size_t k = flat(task, machine);
  mean_[k] = options_.alpha * runtime + (1.0 - options_.alpha) * mean_[k];
  ++count_[k];
  ++observations_;
  if (std::abs(mean_[k] - last_fed_[k]) <
      options_.min_rel_change * last_fed_[k])
    return std::nullopt;
  last_fed_[k] = mean_[k];
  return mean_[k];
}

void EtcEstimator::set(std::size_t task, std::size_t machine, double etc) {
  hetero::detail::require_value(etc > 0.0 && std::isfinite(etc),
                                "EtcEstimator::set: value must be positive "
                                "and finite");
  const std::size_t k = flat(task, machine);
  mean_[k] = etc;
  last_fed_[k] = etc;
  count_[k] = 0;
}

double EtcEstimator::mean(std::size_t task, std::size_t machine) const {
  return mean_[flat(task, machine)];
}

double EtcEstimator::last_fed(std::size_t task, std::size_t machine) const {
  return last_fed_[flat(task, machine)];
}

std::uint64_t EtcEstimator::count(std::size_t task,
                                  std::size_t machine) const {
  return count_[flat(task, machine)];
}

void EtcEstimator::add_task(std::span<const double> initial_etc_row) {
  hetero::detail::require_dims(initial_etc_row.size() == machines_,
                               "EtcEstimator::add_task: row length must "
                               "equal machines()");
  require_cell_values(initial_etc_row,
                      "EtcEstimator::add_task: values must be positive and "
                      "finite");
  mean_.insert(mean_.end(), initial_etc_row.begin(), initial_etc_row.end());
  last_fed_.insert(last_fed_.end(), initial_etc_row.begin(),
                   initial_etc_row.end());
  count_.insert(count_.end(), machines_, 0);
  ++tasks_;
}

void EtcEstimator::add_machine(std::span<const double> initial_etc_col) {
  hetero::detail::require_dims(initial_etc_col.size() == tasks_,
                               "EtcEstimator::add_machine: column length "
                               "must equal tasks()");
  require_cell_values(initial_etc_col,
                      "EtcEstimator::add_machine: values must be positive "
                      "and finite");
  std::vector<double> mean(tasks_ * (machines_ + 1));
  std::vector<double> fed(mean.size());
  std::vector<std::uint64_t> count(mean.size());
  for (std::size_t i = 0; i < tasks_; ++i) {
    for (std::size_t j = 0; j < machines_; ++j) {
      const std::size_t src = i * machines_ + j;
      const std::size_t dst = i * (machines_ + 1) + j;
      mean[dst] = mean_[src];
      fed[dst] = last_fed_[src];
      count[dst] = count_[src];
    }
    const std::size_t dst = i * (machines_ + 1) + machines_;
    mean[dst] = initial_etc_col[i];
    fed[dst] = initial_etc_col[i];
  }
  mean_ = std::move(mean);
  last_fed_ = std::move(fed);
  count_ = std::move(count);
  ++machines_;
}

void EtcEstimator::remove_task(std::size_t task) {
  hetero::detail::require_dims(task < tasks_,
                               "EtcEstimator::remove_task: index out of "
                               "range");
  hetero::detail::require_value(tasks_ > 1,
                                "EtcEstimator::remove_task: cannot remove "
                                "the last task type");
  const auto first = static_cast<std::ptrdiff_t>(task * machines_);
  const auto last = static_cast<std::ptrdiff_t>((task + 1) * machines_);
  mean_.erase(mean_.begin() + first, mean_.begin() + last);
  last_fed_.erase(last_fed_.begin() + first, last_fed_.begin() + last);
  count_.erase(count_.begin() + first, count_.begin() + last);
  --tasks_;
}

void EtcEstimator::remove_machine(std::size_t machine) {
  hetero::detail::require_dims(machine < machines_,
                               "EtcEstimator::remove_machine: index out of "
                               "range");
  hetero::detail::require_value(machines_ > 1,
                                "EtcEstimator::remove_machine: cannot "
                                "remove the last machine");
  std::vector<double> mean(tasks_ * (machines_ - 1));
  std::vector<double> fed(mean.size());
  std::vector<std::uint64_t> count(mean.size());
  for (std::size_t i = 0; i < tasks_; ++i) {
    for (std::size_t j = 0, o = 0; j < machines_; ++j) {
      if (j == machine) continue;
      const std::size_t src = i * machines_ + j;
      const std::size_t dst = i * (machines_ - 1) + o++;
      mean[dst] = mean_[src];
      fed[dst] = last_fed_[src];
      count[dst] = count_[src];
    }
  }
  mean_ = std::move(mean);
  last_fed_ = std::move(fed);
  count_ = std::move(count);
  --machines_;
}

}  // namespace hetero::core
