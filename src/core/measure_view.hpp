// Streaming characterization: MPH/TDH/TMA as a continuously-maintained view.
//
// Production fleets drift — machines join and leave, task types appear, and
// observed runtimes revise ETC entries — yet the paper's measures are global
// functions of the whole ECS matrix. MeasureView keeps them current under a
// stream of deltas without paying a full standardize+SVD recompute per
// change, by promoting the annealing warm-start machinery
// (etcgen::IncrementalMeasures) into a first-class online API:
//
//   - row and column sums are maintained incrementally (sorted copies
//     resorted by O(n) erase/insert), so MPH/TDH never re-sort;
//   - the TMA standardization is warm-started from the previous Sinkhorn
//     scale vectors (a small perturbation restarts the iteration near its
//     fixed point);
//   - the Gram eigensolve is warm-started from the previous eigenbasis
//     (the congruence is near-diagonal, so Jacobi cleans up in a sweep or
//     two instead of a cold solve).
//
// Every warm update charges a bounded drift increment against a configurable
// error budget; when the accumulated charge would exceed the budget (or a
// hard update-count cap), the view performs an automatic cold refresh —
// recompute everything from scratch — which is bit-identical to
// cold_measures() on the same matrix (the retained equivalence twin,
// verified under the `stream_equiv` ctest label).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/measures.hpp"
#include "core/standard_form.hpp"
#include "linalg/jacobi_eigen.hpp"
#include "linalg/matrix.hpp"

namespace hetero::core {

/// One entry revision in ECS domain (value must be positive and finite).
struct CellDelta {
  std::size_t task = 0;
  std::size_t machine = 0;
  double value = 0.0;
};

struct MeasureViewOptions {
  /// Budget applied to every TMA standardization; warm-start fields are
  /// managed internally and any caller-provided seeds are ignored.
  SinkhornOptions sinkhorn;
  /// Accumulated warm-update drift allowed before an automatic cold
  /// refresh. Each warm update charges drift_charge(); a budget of
  /// N * drift_charge() therefore allows exactly N warm updates between
  /// refreshes. Non-positive budgets make every update a cold refresh.
  double error_budget = 1e-5;
  /// Hard cap on updates between cold refreshes regardless of budget,
  /// bounding floating-point drift of the incremental sums (mirrors
  /// IncrementalMeasures::rebuild_interval).
  std::size_t max_updates_between_refresh = 256;
};

/// Online MPH/TDH/TMA view over a held positive ECS matrix.
///
/// All mutators provide the strong exception guarantee: when an update
/// throws (out-of-range index, non-positive value, ScaleOverflowError from
/// a sum driven past the scale guard), the matrix, sums, and published
/// measures are exactly as before the call, and the view remains usable.
///
/// Not thread-safe; callers serialize access (the service wraps each
/// session's view in a ranked mutex).
class MeasureView {
 public:
  struct Stats {
    /// Successful update operations applied since construction.
    std::uint64_t version = 0;
    std::uint64_t warm_updates = 0;
    /// Automatic + forced cold refreshes (the initial build is not
    /// counted).
    std::uint64_t cold_refreshes = 0;
    /// Drift charged since the last cold refresh.
    double accumulated_drift = 0.0;
    /// True when the most recent update went through a cold refresh.
    bool last_update_cold = false;
  };

  /// `ecs` must be non-empty, strictly positive, and finite.
  explicit MeasureView(linalg::Matrix ecs, MeasureViewOptions options = {});

  const linalg::Matrix& ecs() const noexcept { return matrix_; }
  const MeasureSet& current() const noexcept { return current_; }
  std::size_t tasks() const noexcept { return matrix_.rows(); }
  std::size_t machines() const noexcept { return matrix_.cols(); }
  const Stats& stats() const noexcept { return stats_; }
  const MeasureViewOptions& options() const noexcept { return options_; }

  /// Revises one cell; equivalent to set_entries of a single delta.
  const MeasureSet& set_entry(std::size_t task, std::size_t machine,
                              double ecs_value);

  /// Applies a batch of cell revisions and re-evaluates once (one drift
  /// charge for the whole batch). Duplicate cells apply in order.
  const MeasureSet& set_entries(std::span<const CellDelta> deltas);

  /// Appends a task type (row of `machines()` positive finite ECS values).
  const MeasureSet& add_task(std::span<const double> ecs_row);

  /// Appends a machine (column of `tasks()` positive finite ECS values).
  const MeasureSet& add_machine(std::span<const double> ecs_col);

  /// Removes a task type. Throws ValueError when it is the last one.
  const MeasureSet& remove_task(std::size_t task);

  /// Removes a machine. Throws ValueError when it is the last one.
  const MeasureSet& remove_machine(std::size_t machine);

  /// Forced cold refresh: recomputes sums, scalings, eigenbasis, and
  /// measures from scratch and zeroes the accumulated drift. The result is
  /// bit-identical to cold_measures(ecs(), options().sinkhorn).
  const MeasureSet& refresh();

  /// Drift charged per warm update: the Sinkhorn tolerance (a residual of r
  /// perturbs TMA by O(r)) plus the eigensolve tolerance.
  double drift_charge() const noexcept;

  /// The equivalence twin: measures of `ecs` computed from scratch through
  /// the same pipeline a cold refresh uses. A freshly refreshed view
  /// publishes exactly these bits.
  static MeasureSet cold_measures(const linalg::Matrix& ecs,
                                  const SinkhornOptions& sinkhorn = {});

 private:
  // Evaluates the current matrix using the maintained sorted sums, warm
  // scales, and eigenbasis; stages refined scales/basis in pending_*.
  MeasureSet evaluate();
  // Adopts pending scales/basis after a successful evaluation.
  void commit_pending();
  // Resets sums, warm state, and spectral workspace from the matrix and
  // recomputes (the cold path). Does not touch version counters.
  void rebuild_from_matrix();
  // Records one successful update: charges drift or performs the automatic
  // cold refresh, and bumps counters.
  const MeasureSet& finish_update(bool forced_cold);
  // True when the next update must take the cold path.
  bool next_update_cold() const noexcept;
  // Shared commit/rollback path for add/remove task/machine. `row_side`
  // selects which warm scale vector gains (`erase` false, seeded with
  // `seed`) or loses (`erase` true, at `index`) an entry.
  const MeasureSet& apply_structural(linalg::Matrix next, bool row_side,
                                     double seed, bool erase,
                                     std::size_t index);
  // Resizes gram_/eigbasis_ for the current matrix shape.
  void resize_spectral();

  linalg::Matrix matrix_;
  MeasureViewOptions options_;
  SinkhornOptions sinkhorn_;
  std::vector<double> row_sums_, col_sums_;
  std::vector<double> sorted_row_sums_, sorted_col_sums_;
  std::vector<double> warm_row_scale_, warm_col_scale_;
  std::vector<double> pending_row_scale_, pending_col_scale_;
  StandardFormResult sf_;
  linalg::Matrix gram_;
  std::vector<double> eig_;
  linalg::Matrix eigbasis_, pending_eigbasis_;
  linalg::WarmEigenWorkspace eig_ws_;
  MeasureSet current_{};
  Stats stats_{};
  std::size_t updates_since_refresh_ = 0;
  // Rollback scratch for the strong exception guarantee on entry batches.
  std::vector<double> saved_row_sums_, saved_col_sums_;
  std::vector<double> saved_sorted_row_sums_, saved_sorted_col_sums_;
  std::vector<double> saved_cell_values_;
};

}  // namespace hetero::core
