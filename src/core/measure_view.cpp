#include "core/measure_view.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "base/error.hpp"

namespace hetero::core {
namespace {

using linalg::Matrix;

// Replaces one occurrence of `old_value` in the sorted vector `v` with
// `new_value`, keeping it sorted: one erase and one shifted insert, O(n)
// moves and no per-update sort (same scheme as etcgen::IncrementalMeasures).
void replace_sorted(std::vector<double>& v, double old_value,
                    double new_value) {
  v.erase(std::lower_bound(v.begin(), v.end(), old_value));
  v.insert(std::upper_bound(v.begin(), v.end(), new_value), new_value);
}

void require_positive_finite(std::span<const double> values,
                             const char* what) {
  for (double v : values)
    hetero::detail::require_value(v > 0.0 && std::isfinite(v), what);
}

}  // namespace

MeasureView::MeasureView(Matrix ecs, MeasureViewOptions options)
    : matrix_(std::move(ecs)),
      options_(std::move(options)),
      sinkhorn_(options_.sinkhorn) {
  hetero::detail::require_value(
      !matrix_.empty() && matrix_.all_positive() && !matrix_.has_nonfinite(),
      "MeasureView: ECS matrix must be non-empty, strictly positive, and "
      "finite");
  sinkhorn_.warm_row_scale.clear();
  sinkhorn_.warm_col_scale.clear();
  rebuild_from_matrix();
}

double MeasureView::drift_charge() const noexcept {
  // A Sinkhorn residual of r perturbs TMA by O(r); the warm eigensolve adds
  // its own 1e-8 off-diagonal tolerance. MPH/TDH incremental-sum drift is
  // orders below either and is covered by the update-count cap.
  return sinkhorn_.tolerance + 1e-8;
}

bool MeasureView::next_update_cold() const noexcept {
  if (options_.error_budget <= 0.0) return true;
  if (updates_since_refresh_ + 1 > options_.max_updates_between_refresh)
    return true;
  return stats_.accumulated_drift + drift_charge() > options_.error_budget;
}

MeasureSet MeasureView::evaluate() {
  MeasureSet s;
  s.mph = adjacent_ratio_homogeneity_sorted(sorted_col_sums_);
  s.tdh = adjacent_ratio_homogeneity_sorted(sorted_row_sums_);
  if (std::min(matrix_.rows(), matrix_.cols()) == 1) {
    s.tma = 0.0;
    pending_row_scale_.clear();
    pending_col_scale_.clear();
    pending_eigbasis_ = eigbasis_;
    return s;
  }
  // Identical numerics to etcgen::IncrementalMeasures::evaluate(): warm
  // Sinkhorn from the committed scalings (empty right after a cold refresh,
  // making that evaluation exactly the cold pipeline), TMA via the
  // allocation-free Gram path, and a congruence-warm Jacobi eigensolve in
  // the committed eigenbasis.
  sinkhorn_.warm_row_scale = warm_row_scale_;
  sinkhorn_.warm_col_scale = warm_col_scale_;
  standardize_positive_into(matrix_, sinkhorn_, sf_);
  linalg::min_gram_into(sf_.standard, gram_);
  linalg::JacobiEigenOptions eig_opt;
  eig_opt.tol = 1e-8;
  pending_eigbasis_ = eigbasis_;
  linalg::symmetric_eigenvalues_warm(gram_, pending_eigbasis_, eig_, eig_ws_,
                                     eig_opt);
  double acc = 0.0;
  for (std::size_t i = 1; i < eig_.size(); ++i)
    acc += std::sqrt(std::max(eig_[i], 0.0));
  s.tma = acc / static_cast<double>(eig_.size() - 1);
  pending_row_scale_ = sf_.row_scale;
  pending_col_scale_ = sf_.col_scale;
  return s;
}

void MeasureView::commit_pending() {
  warm_row_scale_ = std::move(pending_row_scale_);
  warm_col_scale_ = std::move(pending_col_scale_);
  std::swap(eigbasis_, pending_eigbasis_);
}

void MeasureView::resize_spectral() {
  const std::size_t mn = std::min(matrix_.rows(), matrix_.cols());
  gram_ = Matrix(mn, mn, 0.0);
  eigbasis_ = Matrix::identity(mn);
}

void MeasureView::rebuild_from_matrix() {
  row_sums_ = matrix_.row_sums();
  col_sums_ = matrix_.col_sums();
  sorted_row_sums_ = row_sums_;
  sorted_col_sums_ = col_sums_;
  std::sort(sorted_row_sums_.begin(), sorted_row_sums_.end());
  std::sort(sorted_col_sums_.begin(), sorted_col_sums_.end());
  warm_row_scale_.clear();
  warm_col_scale_.clear();
  resize_spectral();
  current_ = evaluate();
  commit_pending();
  stats_.accumulated_drift = 0.0;
  updates_since_refresh_ = 0;
}

const MeasureSet& MeasureView::finish_update(bool cold) {
  if (cold) {
    ++stats_.cold_refreshes;
    stats_.last_update_cold = true;
  } else {
    stats_.accumulated_drift += drift_charge();
    ++updates_since_refresh_;
    ++stats_.warm_updates;
    stats_.last_update_cold = false;
  }
  ++stats_.version;
  return current_;
}

const MeasureSet& MeasureView::set_entry(std::size_t task, std::size_t machine,
                                         double ecs_value) {
  const CellDelta d{task, machine, ecs_value};
  return set_entries(std::span<const CellDelta>(&d, 1));
}

const MeasureSet& MeasureView::set_entries(std::span<const CellDelta> deltas) {
  for (const CellDelta& d : deltas) {
    hetero::detail::require_dims(
        d.task < matrix_.rows() && d.machine < matrix_.cols(),
        "MeasureView::set_entries: cell index out of range");
    hetero::detail::require_value(
        d.value > 0.0 && std::isfinite(d.value),
        "MeasureView::set_entries: value must be positive and finite");
  }
  if (deltas.empty()) return current_;
  const bool cold = next_update_cold();
  saved_row_sums_ = row_sums_;
  saved_col_sums_ = col_sums_;
  saved_sorted_row_sums_ = sorted_row_sums_;
  saved_sorted_col_sums_ = sorted_col_sums_;
  // Per-delta sorted maintenance is O(n) memmove per cell; past a small
  // batch it is cheaper to re-sort the final sums once. Both produce the
  // ascending ordering of the same incrementally-updated sums, so the
  // published measures are bit-identical either way.
  const bool resort = deltas.size() > 16;
  saved_cell_values_.clear();
  for (const CellDelta& d : deltas) {
    const double old = matrix_(d.task, d.machine);
    saved_cell_values_.push_back(old);
    matrix_(d.task, d.machine) = d.value;
    const double delta = d.value - old;
    const double old_rs = row_sums_[d.task];
    const double new_rs = old_rs + delta;
    row_sums_[d.task] = new_rs;
    if (!resort) replace_sorted(sorted_row_sums_, old_rs, new_rs);
    const double old_cs = col_sums_[d.machine];
    const double new_cs = old_cs + delta;
    col_sums_[d.machine] = new_cs;
    if (!resort) replace_sorted(sorted_col_sums_, old_cs, new_cs);
  }
  if (resort) {
    sorted_row_sums_.assign(row_sums_.begin(), row_sums_.end());
    std::sort(sorted_row_sums_.begin(), sorted_row_sums_.end());
    sorted_col_sums_.assign(col_sums_.begin(), col_sums_.end());
    std::sort(sorted_col_sums_.begin(), sorted_col_sums_.end());
  }
  try {
    if (cold) {
      rebuild_from_matrix();
    } else {
      MeasureSet s = evaluate();
      current_ = s;
      commit_pending();
    }
  } catch (...) {
    for (std::size_t i = deltas.size(); i-- > 0;)
      matrix_(deltas[i].task, deltas[i].machine) = saved_cell_values_[i];
    row_sums_.swap(saved_row_sums_);
    col_sums_.swap(saved_col_sums_);
    sorted_row_sums_.swap(saved_sorted_row_sums_);
    sorted_col_sums_.swap(saved_sorted_col_sums_);
    throw;
  }
  return finish_update(cold);
}

const MeasureSet& MeasureView::add_task(std::span<const double> ecs_row) {
  hetero::detail::require_dims(ecs_row.size() == matrix_.cols(),
                               "MeasureView::add_task: row length must equal "
                               "machines()");
  require_positive_finite(ecs_row,
                          "MeasureView::add_task: values must be positive "
                          "and finite");
  Matrix next(matrix_.rows() + 1, matrix_.cols());
  std::copy(matrix_.data().begin(), matrix_.data().end(),
            next.data().begin());
  std::copy(ecs_row.begin(), ecs_row.end(),
            next.data().begin() + static_cast<std::ptrdiff_t>(matrix_.size()));
  // Seed the new row's warm scale at its least-squares guess so the warm
  // Sinkhorn restart stays near the fixed point; the iteration is globally
  // convergent, so a poor guess only costs iterations.
  double seed = 1.0;
  if (!warm_row_scale_.empty() && !warm_col_scale_.empty()) {
    double s = 0.0;
    for (std::size_t j = 0; j < ecs_row.size(); ++j)
      s += ecs_row[j] * warm_col_scale_[j];
    const double target = std::sqrt(static_cast<double>(next.cols()) /
                                    static_cast<double>(next.rows()));
    const double guess = target / s;
    if (guess > 0.0 && std::isfinite(guess)) seed = guess;
  }
  return apply_structural(std::move(next), /*row_insert=*/true, seed,
                          /*erase=*/false, 0);
}

const MeasureSet& MeasureView::add_machine(std::span<const double> ecs_col) {
  hetero::detail::require_dims(ecs_col.size() == matrix_.rows(),
                               "MeasureView::add_machine: column length must "
                               "equal tasks()");
  require_positive_finite(ecs_col,
                          "MeasureView::add_machine: values must be positive "
                          "and finite");
  Matrix next(matrix_.rows(), matrix_.cols() + 1);
  for (std::size_t i = 0; i < matrix_.rows(); ++i) {
    const auto r = matrix_.row(i);
    std::copy(r.begin(), r.end(), &next(i, 0));
    next(i, matrix_.cols()) = ecs_col[i];
  }
  double seed = 1.0;
  if (!warm_row_scale_.empty() && !warm_col_scale_.empty()) {
    double s = 0.0;
    for (std::size_t i = 0; i < ecs_col.size(); ++i)
      s += ecs_col[i] * warm_row_scale_[i];
    const double target = std::sqrt(static_cast<double>(next.rows()) /
                                    static_cast<double>(next.cols()));
    const double guess = target / s;
    if (guess > 0.0 && std::isfinite(guess)) seed = guess;
  }
  return apply_structural(std::move(next), /*row_insert=*/false, seed,
                          /*erase=*/false, 0);
}

const MeasureSet& MeasureView::remove_task(std::size_t task) {
  hetero::detail::require_dims(task < matrix_.rows(),
                               "MeasureView::remove_task: index out of range");
  hetero::detail::require_value(matrix_.rows() > 1,
                                "MeasureView::remove_task: cannot remove the "
                                "last task type");
  Matrix next(matrix_.rows() - 1, matrix_.cols());
  for (std::size_t i = 0, o = 0; i < matrix_.rows(); ++i) {
    if (i == task) continue;
    const auto r = matrix_.row(i);
    std::copy(r.begin(), r.end(), &next(o++, 0));
  }
  return apply_structural(std::move(next), /*row_insert=*/true, 1.0,
                          /*erase=*/true, task);
}

const MeasureSet& MeasureView::remove_machine(std::size_t machine) {
  hetero::detail::require_dims(
      machine < matrix_.cols(),
      "MeasureView::remove_machine: index out of range");
  hetero::detail::require_value(matrix_.cols() > 1,
                                "MeasureView::remove_machine: cannot remove "
                                "the last machine");
  Matrix next(matrix_.rows(), matrix_.cols() - 1);
  for (std::size_t i = 0; i < matrix_.rows(); ++i) {
    const auto r = matrix_.row(i);
    for (std::size_t j = 0, o = 0; j < matrix_.cols(); ++j) {
      if (j == machine) continue;
      next(i, o++) = r[j];
    }
  }
  return apply_structural(std::move(next), /*row_insert=*/false, 1.0,
                          /*erase=*/true, machine);
}

const MeasureSet& MeasureView::apply_structural(Matrix next, bool row_side,
                                                double seed, bool erase,
                                                std::size_t index) {
  const std::size_t old_min = std::min(matrix_.rows(), matrix_.cols());
  const std::size_t new_min = std::min(next.rows(), next.cols());
  const bool cold = next_update_cold();
  Matrix old_matrix = std::move(matrix_);
  matrix_ = std::move(next);
  saved_row_sums_.swap(row_sums_);
  saved_col_sums_.swap(col_sums_);
  saved_sorted_row_sums_.swap(sorted_row_sums_);
  saved_sorted_col_sums_.swap(sorted_col_sums_);
  std::vector<double> old_warm_row = warm_row_scale_;
  std::vector<double> old_warm_col = warm_col_scale_;
  row_sums_ = matrix_.row_sums();
  col_sums_ = matrix_.col_sums();
  sorted_row_sums_ = row_sums_;
  sorted_col_sums_ = col_sums_;
  std::sort(sorted_row_sums_.begin(), sorted_row_sums_.end());
  std::sort(sorted_col_sums_.begin(), sorted_col_sums_.end());
  if (!cold) {
    std::vector<double>& scale = row_side ? warm_row_scale_ : warm_col_scale_;
    if (!scale.empty()) {
      if (erase)
        scale.erase(scale.begin() + static_cast<std::ptrdiff_t>(index));
      else
        scale.push_back(seed);
    }
    if (new_min != old_min) resize_spectral();
  }
  try {
    if (cold) {
      rebuild_from_matrix();
    } else {
      MeasureSet s = evaluate();
      current_ = s;
      commit_pending();
    }
  } catch (...) {
    matrix_ = std::move(old_matrix);
    row_sums_.swap(saved_row_sums_);
    col_sums_.swap(saved_col_sums_);
    sorted_row_sums_.swap(saved_sorted_row_sums_);
    sorted_col_sums_.swap(saved_sorted_col_sums_);
    warm_row_scale_ = std::move(old_warm_row);
    warm_col_scale_ = std::move(old_warm_col);
    if (new_min != old_min) resize_spectral();
    throw;
  }
  return finish_update(cold);
}

const MeasureSet& MeasureView::refresh() {
  rebuild_from_matrix();
  ++stats_.cold_refreshes;
  stats_.last_update_cold = true;
  return current_;
}

MeasureSet MeasureView::cold_measures(const Matrix& ecs,
                                      const SinkhornOptions& sinkhorn) {
  MeasureViewOptions o;
  o.sinkhorn = sinkhorn;
  return MeasureView(ecs, std::move(o)).current();
}

}  // namespace hetero::core
