// Online ETC estimation from noisy runtime observations.
//
// ETC entries are estimates; in a live fleet the freshest evidence is the
// stream of observed runtimes, each one draw of the etcgen/noise forward
// model (etcgen::sample_runtime_lognormal). EtcEstimator solves the inverse
// problem with an exponentially-weighted per-cell mean — the standard
// fixed-gain tracker for a drifting level — and acts as a materiality
// filter in front of MeasureView: it reports a revised ETC estimate only
// when a cell's tracked mean has moved by at least `min_rel_change`
// relative to the value last fed downstream, so a noisy-but-stationary
// cell costs zero measure re-evaluations.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace hetero::core {

struct EtcEstimatorOptions {
  /// Exponential weight of each new observation, in (0, 1]:
  /// mean <- alpha * runtime + (1 - alpha) * mean. Higher alpha tracks
  /// drift faster but passes more observation noise through.
  double alpha = 0.2;
  /// Minimum relative move |mean - last_fed| / last_fed before a revised
  /// estimate is emitted. Zero emits on every observation.
  double min_rel_change = 0.01;
};

/// Per-cell exponentially-weighted runtime means over a task x machine
/// grid, seeded from an initial ETC matrix and kept shape-aligned with the
/// MeasureView it feeds. Not thread-safe; callers serialize access.
class EtcEstimator {
 public:
  /// `initial_etc` must be non-empty with strictly positive finite entries;
  /// it seeds the means and the last-fed values.
  explicit EtcEstimator(const linalg::Matrix& initial_etc,
                        EtcEstimatorOptions options = {});

  std::size_t tasks() const noexcept { return tasks_; }
  std::size_t machines() const noexcept { return machines_; }
  std::uint64_t observations() const noexcept { return observations_; }
  const EtcEstimatorOptions& options() const noexcept { return options_; }

  /// Folds one observed runtime (positive, finite) into the cell's mean.
  /// Returns the new ETC estimate when the mean has moved materially since
  /// the estimate last fed downstream (and marks it fed), nullopt when the
  /// move is immaterial.
  std::optional<double> observe(std::size_t task, std::size_t machine,
                                double runtime);

  /// Authoritative ETC revision for one cell (a profiled/benchmarked value
  /// replacing the tracked history): resets the mean, the last-fed value,
  /// and the observation count.
  void set(std::size_t task, std::size_t machine, double etc);

  /// Current tracked mean for one cell.
  double mean(std::size_t task, std::size_t machine) const;

  /// Estimate most recently fed downstream for one cell.
  double last_fed(std::size_t task, std::size_t machine) const;

  /// Observations folded into one cell.
  std::uint64_t count(std::size_t task, std::size_t machine) const;

  /// Shape maintenance, mirroring MeasureView's structural deltas. New
  /// cells are seeded from the provided initial ETC values.
  void add_task(std::span<const double> initial_etc_row);
  void add_machine(std::span<const double> initial_etc_col);
  void remove_task(std::size_t task);
  void remove_machine(std::size_t machine);

 private:
  std::size_t flat(std::size_t task, std::size_t machine) const;

  EtcEstimatorOptions options_;
  std::size_t tasks_ = 0;
  std::size_t machines_ = 0;
  std::uint64_t observations_ = 0;
  // Dense row-major per-cell state: tracked mean, the value last emitted
  // downstream, and the observation count.
  std::vector<double> mean_;
  std::vector<double> last_fed_;
  std::vector<std::uint64_t> count_;
};

}  // namespace hetero::core
