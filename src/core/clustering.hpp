// Affinity-based machine clustering.
//
// TMA > 0 means machine columns point in different directions — there are
// *classes* of machines specialized to classes of tasks. This module
// recovers those classes explicitly: agglomerative (average-linkage)
// clustering of machines under cosine distance between ECS columns, the
// same column-angle geometry the paper uses to motivate TMA (Section II-E).
#pragma once

#include <cstddef>
#include <vector>

#include "core/etc_matrix.hpp"
#include "core/weights.hpp"

namespace hetero::core {

struct MachineClustering {
  /// cluster[j] = cluster id of machine j, ids in [0, cluster_count).
  std::vector<std::size_t> cluster;
  std::size_t cluster_count = 0;
  /// Mean within-cluster pairwise cosine similarity (1 when every cluster
  /// is internally parallel; singleton clusters contribute 1).
  double within_cosine = 1.0;
  /// Mean between-cluster pairwise cosine similarity (lower = better
  /// separated).
  double between_cosine = 1.0;
};

/// Groups machines into `k` clusters by average-linkage agglomeration on
/// cosine distance (1 - cosine similarity) between weighted ECS columns.
/// Throws ValueError unless 1 <= k <= machine_count.
MachineClustering cluster_machines(const EcsMatrix& ecs, std::size_t k,
                                   const Weights& w = {});

/// Task-side clustering: identical procedure on ECS rows.
MachineClustering cluster_tasks(const EcsMatrix& ecs, std::size_t k,
                                const Weights& w = {});

}  // namespace hetero::core
