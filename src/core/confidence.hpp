// Bootstrap confidence intervals for the heterogeneity measures.
//
// ETC entries are estimates; a point value of MPH/TDH/TMA hides how
// sensitive it is to estimation error. Given a noise model (coefficient of
// variation of the entry estimates), this module replays the measurement
// under resampled noise and reports per-measure mean, standard deviation,
// and central quantile intervals.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/etc_matrix.hpp"
#include "core/measures.hpp"

namespace hetero::core {

/// Summary of one measure's bootstrap distribution.
struct MeasureInterval {
  double point = 0.0;   // measure of the unperturbed environment
  double mean = 0.0;    // bootstrap mean
  double stddev = 0.0;  // bootstrap standard deviation
  double lower = 0.0;   // central-interval lower quantile
  double upper = 0.0;   // central-interval upper quantile
};

struct MeasureConfidence {
  MeasureInterval mph;
  MeasureInterval tdh;
  MeasureInterval tma;
  std::size_t replications = 0;
};

struct ConfidenceOptions {
  /// Lognormal estimation-noise COV applied to every finite ETC entry.
  double noise_cov = 0.1;
  std::size_t replications = 200;
  /// Central-interval coverage, e.g. 0.95 gives the 2.5%/97.5% quantiles.
  double coverage = 0.95;
  std::uint64_t seed = 1;
};

/// Bootstraps the three measures of an ETC environment under the noise
/// model. Throws ValueError for bad options.
MeasureConfidence measure_confidence(const EtcMatrix& etc,
                                     const ConfidenceOptions& options = {});

}  // namespace hetero::core
