// Spectral analysis of task-machine affinity structure.
//
// The TMA measure compresses the non-maximum singular values of the
// standard-form ECS matrix into one number (eq. 8). The underlying SVD
// carries more: each non-maximum singular triplet is an *affinity mode* — a
// pattern of task types that run disproportionately well on a pattern of
// machines. This module exposes those modes with their labels, plus the
// column-angle view the paper uses to build intuition ("column correlation,
// which is quantified by the angle between the column vectors ...
// represents task-machine affinity", Section II-E).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/etc_matrix.hpp"
#include "core/measures.hpp"
#include "core/standard_form.hpp"
#include "core/weights.hpp"
#include "linalg/matrix.hpp"

namespace hetero::core {

/// One affinity mode: the k-th singular triplet (k >= 2) of the standard
/// form. Positive task components paired with positive machine components
/// (and negative with negative) mark "runs better than average" affinity.
struct AffinityMode {
  double sigma = 0.0;
  /// Component per task type (input order), with labels.
  std::vector<double> task_component;
  /// Component per machine (input order), with labels.
  std::vector<double> machine_component;
};

struct AffinityAnalysis {
  /// Modes 2..min(T, M) of the standard form, strongest first. Mode 1 (the
  /// uniform vector, Theorem 2) is excluded: it carries no affinity.
  std::vector<AffinityMode> modes;
  /// The TMA value (mean of the mode sigmas).
  double tma = 0.0;
  /// Labels carried through from the input.
  std::vector<std::string> task_names;
  std::vector<std::string> machine_names;
};

/// Computes the affinity modes of an environment. `max_modes` truncates the
/// list (0 = all). Throws ConvergenceError when no standard form exists
/// (analyze classify_pattern first for such inputs).
///
/// Above `large.min_elements` entries the blocked path takes over: tiled
/// pool-parallel Sinkhorn, the TMA average from the full blocked-Gram
/// spectrum, and the mode bases from the randomized top-k SVD
/// (linalg::rsvd) with a deterministic seeded sketch. Because extracting
/// every basis vector would cost as much as the dense twin, `max_modes == 0`
/// keeps the strongest 16 modes there instead of all of them (the TMA value
/// still averages the whole spectrum).
AffinityAnalysis affinity_analysis(const EcsMatrix& ecs, const Weights& w = {},
                                   std::size_t max_modes = 0,
                                   const SinkhornOptions& options = {},
                                   const LargePathOptions& large = {});

/// Cosine similarity between every pair of machine columns of the ECS
/// matrix: entry (j, k) = cos(angle between columns j and k). 1 on the
/// diagonal; 1 everywhere means zero affinity (paper Fig. 3(a)).
linalg::Matrix machine_column_cosines(const EcsMatrix& ecs,
                                      const Weights& w = {});

/// Smallest pairwise column angle complement: the largest angle (radians)
/// between any two machine columns. 0 means perfectly correlated machines.
double max_column_angle(const EcsMatrix& ecs, const Weights& w = {});

/// Human-readable report of the strongest affinity mode: which task types
/// prefer which machines. Intended for CLI/examples.
std::string describe_strongest_mode(const AffinityAnalysis& analysis,
                                    std::size_t top_k = 3);

}  // namespace hetero::core
