// Machine performance, task difficulty, and the canonical ECS form
// (paper Sections II-C, III-A/B).
//
// MP_j = w_mj * sum_i w_ti * ECS(i, j)   (eq. 4; eq. 2 when unweighted)
// TD_i = w_ti * sum_j w_mj * ECS(i, j)   (eq. 6)
//
// The canonical form sorts machines by ascending MP and task types by
// ascending TD, which is the ordering MPH/TDH's adjacent-ratio averages are
// defined over.
#pragma once

#include <vector>

#include "core/etc_matrix.hpp"
#include "core/weights.hpp"

namespace hetero::core {

/// MP_j for every machine (eq. 4).
std::vector<double> machine_performances(const EcsMatrix& ecs,
                                         const Weights& w = {});

/// TD_i for every task type (eq. 6).
std::vector<double> task_difficulties(const EcsMatrix& ecs,
                                      const Weights& w = {});

/// MP of one machine / TD of one task type.
double machine_performance(const EcsMatrix& ecs, std::size_t machine,
                           const Weights& w = {});
double task_difficulty(const EcsMatrix& ecs, std::size_t task,
                       const Weights& w = {});

/// Canonical ECS form: machines sorted by ascending MP, tasks by ascending
/// TD, plus the permutations that were applied (canonical.values()(i, j) ==
/// original(task_order[i], machine_order[j])).
struct CanonicalForm {
  EcsMatrix matrix;
  std::vector<std::size_t> task_order;
  std::vector<std::size_t> machine_order;
};

CanonicalForm canonical_form(const EcsMatrix& ecs, const Weights& w = {});

/// True if machines are sorted by ascending MP and tasks by ascending TD.
bool is_canonical(const EcsMatrix& ecs, const Weights& w = {});

}  // namespace hetero::core
