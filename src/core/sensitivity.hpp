// Entry-level sensitivity of the measures.
//
// Which runtime estimate matters most? This module computes the
// finite-difference elasticity of each measure with respect to each ETC
// entry: d(measure) / d(log ETC(i, j)), i.e. the measure change per 1%
// relative change of one runtime. High-|elasticity| entries are the ones
// worth re-benchmarking first, and the TMA map highlights the task-machine
// pairs that *create* the affinity.
#pragma once

#include <cstddef>

#include "core/etc_matrix.hpp"
#include "core/measures.hpp"
#include "linalg/matrix.hpp"

namespace hetero::core {

struct SensitivityOptions {
  /// Relative perturbation step for the central difference (e.g. 0.01 = 1%).
  double relative_step = 0.01;
};

/// Per-entry elasticities of the three measures: matrix (i, j) holds
/// d(measure)/d(log ETC(i, j)) estimated by a central difference.
/// Infinite ("cannot run") entries get elasticity 0.
struct SensitivityMap {
  linalg::Matrix mph;
  linalg::Matrix tdh;
  linalg::Matrix tma;
};

/// Computes all three maps (2*T*M measure evaluations; fine for the
/// paper-scale matrices). Throws ValueError for a non-positive step.
SensitivityMap measure_sensitivity(const EtcMatrix& etc,
                                   const SensitivityOptions& options = {});

/// The (task, machine, elasticity) entry with the largest |elasticity| in
/// a sensitivity matrix.
struct MostSensitiveEntry {
  std::size_t task = 0;
  std::size_t machine = 0;
  double elasticity = 0.0;
};

MostSensitiveEntry most_sensitive(const linalg::Matrix& sensitivity);

}  // namespace hetero::core
