// Standard ECS form via iterative row/column normalization (paper eq. 9,
// Theorem 1, Theorem 2; Sinkhorn [21], Marshall & Olkin [20]).
//
// A *standard* ECS matrix has every row summing to sqrt(M/T) and every
// column summing to sqrt(T/M) (Theorem 1 with k = 1/sqrt(TM)); by Theorem 2
// its largest singular value is exactly 1, which reduces the TMA measure to
// the mean of the non-maximum singular values (eq. 8). The standard form is
// computed by alternating column and row normalization until the maximum
// row/column-sum error drops below the tolerance (the paper stops at 1e-8).
//
// For matrices with zero entries the iteration is not guaranteed to
// converge (Section VI); StandardFormResult reports convergence, iteration
// count, residual, and the zero-pattern diagnosis.
#pragma once

#include <cstddef>
#include <vector>

#include "core/etc_matrix.hpp"
#include "core/weights.hpp"
#include "linalg/matrix.hpp"

namespace hetero::core {

struct SinkhornOptions {
  /// Stop when every row sum is within `tolerance` of sqrt(M/T) and every
  /// column sum within `tolerance` of sqrt(T/M) (paper: 1e-8).
  double tolerance = 1e-8;
  /// One iteration = one column normalization followed by one row
  /// normalization (paper Section V).
  std::size_t max_iterations = 10000;
  /// When true, a non-convergent input throws ConvergenceError instead of
  /// returning converged == false.
  bool throw_on_failure = false;
  /// Normalization order within one iteration: the paper's eq. 9 does the
  /// column pass first (default). Row-first converges to the same standard
  /// form (the scaling is unique up to a scalar); exposed for the ordering
  /// ablation.
  bool row_first = false;
};

/// Zero-pattern diagnosis attached to non-convergent inputs (Section VI).
enum class NormalizabilityClass {
  /// All entries positive: Theorem 1 guarantees a standard form.
  positive,
  /// Zeros present, but the pattern has total support (square case) or its
  /// Appendix-A square tiling does: an exact standard form exists.
  normalizable_pattern,
  /// The limit of the iteration exists but only as a limit: some entries
  /// decay to zero and the scaling diverges (support without total
  /// support). TMA of the limit matrix is still well defined.
  limit_only,
  /// No support: the iteration cannot even approach equal sums.
  not_normalizable,
};

struct StandardFormResult {
  /// The (approximately) standard matrix after the final iteration.
  linalg::Matrix standard;
  /// Accumulated diagonal scalings: standard ~= diag(row_scale) * input *
  /// diag(col_scale). Exact when the pattern is normalizable; divergent
  /// (but still the applied scaling) in the limit_only case.
  std::vector<double> row_scale;
  std::vector<double> col_scale;
  std::size_t iterations = 0;
  bool converged = false;
  /// Final max row/column-sum error.
  double residual = 0.0;
  NormalizabilityClass pattern = NormalizabilityClass::positive;
  /// True when the input was projected onto its total-support core before
  /// iterating (limit_only patterns): the Sinkhorn limit is unchanged but
  /// convergence becomes geometric instead of O(1/k).
  bool projected_to_core = false;

  /// Target sums for the standard form.
  double target_row_sum = 0.0;
  double target_col_sum = 0.0;
};

/// Runs eq. 9 on a raw nonnegative matrix (no all-zero rows/columns).
StandardFormResult standardize(const linalg::Matrix& ecs,
                               const SinkhornOptions& options = {});

/// Runs eq. 9 on the weighted view of an ECS matrix.
StandardFormResult standardize(const EcsMatrix& ecs, const Weights& w = {},
                               const SinkhornOptions& options = {});

/// Classifies the zero pattern without iterating (Section VI analysis).
NormalizabilityClass classify_pattern(const linalg::Matrix& ecs);

/// Max deviation of row sums from `row_target` and column sums from
/// `col_target` (the convergence residual).
double standard_form_residual(const linalg::Matrix& m, double row_target,
                              double col_target);

}  // namespace hetero::core
