// Standard ECS form via iterative row/column normalization (paper eq. 9,
// Theorem 1, Theorem 2; Sinkhorn [21], Marshall & Olkin [20]).
//
// A *standard* ECS matrix has every row summing to sqrt(M/T) and every
// column summing to sqrt(T/M) (Theorem 1 with k = 1/sqrt(TM)); by Theorem 2
// its largest singular value is exactly 1, which reduces the TMA measure to
// the mean of the non-maximum singular values (eq. 8). The standard form is
// computed by alternating column and row normalization until the maximum
// row/column-sum error drops below the tolerance (the paper stops at 1e-8).
//
// For matrices with zero entries the iteration is not guaranteed to
// converge (Section VI); StandardFormResult reports convergence, iteration
// count, residual, and the zero-pattern diagnosis.
#pragma once

#include <cstddef>
#include <vector>

#include "core/etc_matrix.hpp"
#include "core/weights.hpp"
#include "linalg/matrix.hpp"

namespace hetero::par {
class ThreadPool;
}

namespace hetero::core {

struct SinkhornOptions {
  /// Stop when every row sum is within `tolerance` of sqrt(M/T) and every
  /// column sum within `tolerance` of sqrt(T/M) (paper: 1e-8).
  double tolerance = 1e-8;
  /// One iteration = one column normalization followed by one row
  /// normalization (paper Section V).
  std::size_t max_iterations = 10000;
  /// When true, a non-convergent input throws ConvergenceError instead of
  /// returning converged == false.
  bool throw_on_failure = false;
  /// Normalization order within one iteration: the paper's eq. 9 does the
  /// column pass first (default). Row-first converges to the same standard
  /// form (the scaling is unique up to a scalar); exposed for the ordering
  /// ablation.
  bool row_first = false;
  /// Warm start: when non-empty, the iteration begins from
  /// diag(warm_row_scale) * input * diag(warm_col_scale) instead of the
  /// input itself. Sizes must match the input (or be empty, meaning all
  /// ones); entries must be positive and finite. The seed scalings are
  /// folded into the reported row_scale/col_scale, so the result contract
  /// (standard ~= diag(row_scale) * input * diag(col_scale)) is unchanged.
  /// Seeding with the scalings of a previous result for a nearby matrix
  /// (e.g. a single perturbed entry) starts the iteration near its fixed
  /// point and skips the cold ramp-in; an arbitrary seed is safe (the
  /// iteration is globally convergent) but may not help. At least one
  /// iteration always runs, so a warm start never skips convergence
  /// verification.
  std::vector<double> warm_row_scale;
  std::vector<double> warm_col_scale;
};

/// Zero-pattern diagnosis attached to non-convergent inputs (Section VI).
enum class NormalizabilityClass {
  /// All entries positive: Theorem 1 guarantees a standard form.
  positive,
  /// Zeros present, but the pattern has total support (square case) or its
  /// Appendix-A square tiling does: an exact standard form exists.
  normalizable_pattern,
  /// The limit of the iteration exists but only as a limit: some entries
  /// decay to zero and the scaling diverges (support without total
  /// support). TMA of the limit matrix is still well defined.
  limit_only,
  /// No support: the iteration cannot even approach equal sums.
  not_normalizable,
};

struct StandardFormResult {
  /// The (approximately) standard matrix after the final iteration.
  linalg::Matrix standard;
  /// Accumulated diagonal scalings: standard ~= diag(row_scale) * input *
  /// diag(col_scale). Exact when the pattern is normalizable; divergent
  /// (but still the applied scaling) in the limit_only case.
  std::vector<double> row_scale;
  std::vector<double> col_scale;
  std::size_t iterations = 0;
  bool converged = false;
  /// Final max row/column-sum error.
  double residual = 0.0;
  NormalizabilityClass pattern = NormalizabilityClass::positive;
  /// True when the input was projected onto its total-support core before
  /// iterating (limit_only patterns): the Sinkhorn limit is unchanged but
  /// convergence becomes geometric instead of O(1/k).
  bool projected_to_core = false;

  /// Target sums for the standard form.
  double target_row_sum = 0.0;
  double target_col_sum = 0.0;
};

/// Runs eq. 9 on a raw nonnegative matrix (no all-zero rows/columns).
///
/// The iteration is fused: each normalization pass streams the matrix once
/// in row-major order, updating the scale vectors and accumulating the
/// opposite dimension's sums (and the convergence residual) as it goes, so
/// no strided column traversals or separate residual passes are needed.
/// Summation order matches the unfused reference exactly, so results are
/// bit-identical to standardize_reference for empty warm-start seeds.
StandardFormResult standardize(const linalg::Matrix& ecs,
                               const SinkhornOptions& options = {});

/// Allocation-lean fused solver for trusted hot loops (the annealing
/// evaluator standardizes thousands of single-entry perturbations per
/// second): `ecs` MUST be strictly positive — positivity, finiteness, and
/// pattern classification are all skipped. Reuses `out`'s storage (the
/// matrix and scale vectors keep their heap blocks across same-shape calls)
/// plus thread-local iteration scratch. Results are bit-identical to
/// standardize() on the same positive input and options.
void standardize_positive_into(const linalg::Matrix& ecs,
                               const SinkhornOptions& options,
                               StandardFormResult& out);

/// Cache-blocked, pool-parallel variant of standardize() for large
/// matrices (the size-frontier characterization path). Each pass computes
/// its scale factors serially (O(rows + cols)) and applies them tile by
/// tile on the pool through the fused Sinkhorn kernels; every tile
/// accumulates the opposite dimension's sums into a tile-local buffer, and
/// the buffers fold in ascending tile order afterwards. The summation
/// order is therefore a function of `tile_rows` alone, so results are
/// bit-identical across thread counts (including a 1-thread pool). They
/// are NOT bit-identical to the serial standardize() twin — its single
/// row-major accumulator associates column additions differently — but
/// both converge to the same unique standard form, and the rsvd_equiv
/// tests pin the agreement down to the Sinkhorn tolerance.
StandardFormResult standardize_tiled(const linalg::Matrix& ecs,
                                     const SinkhornOptions& options,
                                     par::ThreadPool& pool,
                                     std::size_t tile_rows = 64);

/// Unfused baseline implementation (per-column strided sums, separate
/// residual pass). Kept for equivalence tests and before/after perf
/// benchmarks; prefer standardize() everywhere else.
StandardFormResult standardize_reference(const linalg::Matrix& ecs,
                                         const SinkhornOptions& options = {});

/// Runs eq. 9 on the weighted view of an ECS matrix.
StandardFormResult standardize(const EcsMatrix& ecs, const Weights& w = {},
                               const SinkhornOptions& options = {});

/// Classifies the zero pattern without iterating (Section VI analysis).
NormalizabilityClass classify_pattern(const linalg::Matrix& ecs);

/// Max deviation of row sums from `row_target` and column sums from
/// `col_target` (the convergence residual).
double standard_form_residual(const linalg::Matrix& m, double row_target,
                              double col_target);

}  // namespace hetero::core
