#include "core/region.hpp"

#include "base/error.hpp"

namespace hetero::core {
namespace {

Level split(double value, double low, double high) {
  if (value < low) return Level::low;
  if (value < high) return Level::medium;
  return Level::high;
}

const char* level_name(Level level) {
  switch (level) {
    case Level::low: return "low";
    case Level::medium: return "medium";
    case Level::high: return "high";
  }
  return "?";
}

}  // namespace

HeterogeneityRegion classify_region(const MeasureSet& measures,
                                    const RegionThresholds& t) {
  detail::require_value(t.homogeneity_low < t.homogeneity_high &&
                            t.tma_low < t.tma_high,
                        "classify_region: thresholds must be increasing");
  HeterogeneityRegion region;
  region.mph = split(measures.mph, t.homogeneity_low, t.homogeneity_high);
  region.tdh = split(measures.tdh, t.homogeneity_low, t.homogeneity_high);
  region.tma = split(measures.tma, t.tma_low, t.tma_high);
  return region;
}

std::string region_name(const HeterogeneityRegion& region) {
  return std::string(level_name(region.mph)) + " MPH / " +
         level_name(region.tdh) + " TDH / " + level_name(region.tma) +
         " TMA";
}

HeuristicRecommendation recommend_heuristic(const HeterogeneityRegion& region) {
  // Distilled from app_heuristic_selection: affinity first, then machine
  // heterogeneity.
  if (region.tma == Level::high) {
    return {"Sufferage",
            "high task-machine affinity: tasks losing their preferred "
            "machine suffer most, so map by sufferage"};
  }
  if (region.mph == Level::high) {
    if (region.tma == Level::low)
      return {"MCT",
              "near-homogeneous machines with little affinity: cheap "
              "completion-time greed is within a few percent of batch "
              "heuristics"};
    return {"Sufferage",
            "homogeneous machines but non-trivial affinity: protect the "
            "tasks with strong machine preferences"};
  }
  if (region.mph == Level::low) {
    return {"Min-Min (check Duplex)",
            "strongly heterogeneous machines: batch-mode mapping is "
            "essential; Min-Min leads, and Duplex hedges against "
            "long-task-starvation cases where Max-Min wins"};
  }
  return {"Min-Min",
          "moderately heterogeneous machines: batch-mode Min-Min "
          "dominates the load-blind heuristics"};
}

HeuristicRecommendation recommend_heuristic(const EcsMatrix& ecs,
                                            const Weights& w) {
  return recommend_heuristic(classify_region(measure_set(ecs, w)));
}

}  // namespace hetero::core
