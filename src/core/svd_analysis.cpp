#include "core/svd_analysis.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "linalg/rsvd.hpp"
#include "linalg/svd.hpp"
#include "linalg/vector_ops.hpp"
#include "parallel/thread_pool.hpp"
#include "simd/simd.hpp"

namespace hetero::core {
namespace {

// Default mode count for the blocked path when the caller asked for "all":
// every extra mode costs another sketch column through the whole power
// iteration, and the interpretive value of modes past the strongest few is
// nil — analysts wanting more pass max_modes explicitly.
constexpr std::size_t kLargeDefaultModes = 16;

// Blocked twin of the dense analysis below: tiled Sinkhorn, the TMA
// average from the full blocked-Gram spectrum, mode bases and sigmas from
// the randomized top-k SVD (deterministic seeded sketch, so re-running on
// any thread count reproduces the report bitwise).
AffinityAnalysis affinity_analysis_blocked(const EcsMatrix& ecs,
                                           const Weights& w,
                                           std::size_t max_modes,
                                           const SinkhornOptions& options,
                                           const LargePathOptions& large) {
  par::ThreadPool& pool = large.pool ? *large.pool : par::shared_pool();
  const StandardFormResult sf = standardize_tiled(
      ecs.weighted_values(w), options, pool, large.sinkhorn_tile_rows);

  AffinityAnalysis out;
  out.task_names = ecs.task_names();
  out.machine_names = ecs.machine_names();

  const std::vector<double> sigma = linalg::blocked_singular_values(
      sf.standard, {large.gram_block, &pool});
  const std::size_t r = sigma.size();
  const std::size_t mode_count = r > 1 ? r - 1 : 0;
  const std::size_t keep =
      std::min(max_modes == 0 ? kLargeDefaultModes : max_modes, mode_count);

  double sigma_sum = 0.0;
  for (std::size_t k = 1; k < r; ++k) sigma_sum += sigma[k];
  out.tma =
      mode_count == 0 ? 0.0 : sigma_sum / static_cast<double>(mode_count);
  if (keep == 0) return out;

  linalg::RsvdOptions ro;
  ro.rank = keep + 1;  // mode k is singular triplet k + 1
  ro.pool = &pool;
  const linalg::RsvdResult rs = linalg::rsvd(sf.standard, ro);
  const std::size_t have = rs.singular_values.size();
  for (std::size_t k = 1; k < have && k <= keep; ++k) {
    AffinityMode mode;
    mode.sigma = rs.singular_values[k];
    mode.task_component.resize(ecs.task_count());
    for (std::size_t i = 0; i < ecs.task_count(); ++i)
      mode.task_component[i] = rs.u(i, k);
    mode.machine_component.resize(ecs.machine_count());
    for (std::size_t j = 0; j < ecs.machine_count(); ++j)
      mode.machine_component[j] = rs.v(j, k);
    out.modes.push_back(std::move(mode));
  }
  return out;
}

}  // namespace

AffinityAnalysis affinity_analysis(const EcsMatrix& ecs, const Weights& w,
                                   std::size_t max_modes,
                                   const SinkhornOptions& options,
                                   const LargePathOptions& large) {
  SinkhornOptions opts = options;
  opts.throw_on_failure = true;
  if (large.min_elements > 0 &&
      ecs.task_count() * ecs.machine_count() >= large.min_elements)
    return affinity_analysis_blocked(ecs, w, max_modes, opts, large);

  const StandardFormResult sf = standardize(ecs, w, opts);
  const linalg::SvdResult svd = linalg::svd(sf.standard);

  AffinityAnalysis out;
  out.task_names = ecs.task_names();
  out.machine_names = ecs.machine_names();

  const std::size_t r = svd.singular_values.size();
  const std::size_t mode_count = r > 1 ? r - 1 : 0;
  const std::size_t keep =
      max_modes == 0 ? mode_count : std::min(max_modes, mode_count);

  double sigma_sum = 0.0;
  for (std::size_t k = 1; k < r; ++k) sigma_sum += svd.singular_values[k];
  out.tma = mode_count == 0
                ? 0.0
                : sigma_sum / static_cast<double>(mode_count);

  for (std::size_t k = 1; k <= keep; ++k) {
    AffinityMode mode;
    mode.sigma = svd.singular_values[k];
    mode.task_component.resize(ecs.task_count());
    for (std::size_t i = 0; i < ecs.task_count(); ++i)
      mode.task_component[i] = svd.u(i, k);
    mode.machine_component.resize(ecs.machine_count());
    for (std::size_t j = 0; j < ecs.machine_count(); ++j)
      mode.machine_component[j] = svd.v(j, k);
    out.modes.push_back(std::move(mode));
  }
  return out;
}

linalg::Matrix machine_column_cosines(const EcsMatrix& ecs, const Weights& w) {
  // One transpose makes every machine a contiguous row, replacing the m
  // strided column copies with direct kernel dot products.
  const linalg::Matrix by_machine = ecs.weighted_values(w).transposed();
  const std::size_t m = by_machine.rows();
  const std::size_t t = by_machine.cols();
  linalg::Matrix cos(m, m, 1.0);
  const auto& K = simd::kernels();
  std::vector<double> norms(m);
  for (std::size_t j = 0; j < m; ++j) {
    const double* r = by_machine.row(j).data();
    norms[j] = std::sqrt(K.dot(r, r, t));
  }
  for (std::size_t j = 0; j < m; ++j) {
    const double* rj = by_machine.row(j).data();
    for (std::size_t k = j + 1; k < m; ++k) {
      const double c =
          K.dot(rj, by_machine.row(k).data(), t) / (norms[j] * norms[k]);
      cos(j, k) = cos(k, j) = c;
    }
  }
  return cos;
}

double max_column_angle(const EcsMatrix& ecs, const Weights& w) {
  const linalg::Matrix cos = machine_column_cosines(ecs, w);
  double min_cos = 1.0;
  for (std::size_t j = 0; j < cos.rows(); ++j)
    for (std::size_t k = j + 1; k < cos.cols(); ++k)
      min_cos = std::min(min_cos, cos(j, k));
  return std::acos(std::clamp(min_cos, -1.0, 1.0));
}

std::string describe_strongest_mode(const AffinityAnalysis& analysis,
                                    std::size_t top_k) {
  if (analysis.modes.empty()) return "no affinity modes (TMA = 0 regime)";
  const AffinityMode& mode = analysis.modes.front();

  // Orient so the largest-magnitude machine component is positive.
  double orient = 1.0;
  double best_mag = 0.0;
  for (double v : mode.machine_component)
    if (std::abs(v) > best_mag) {
      best_mag = std::abs(v);
      orient = v >= 0 ? 1.0 : -1.0;
    }

  const auto top_indices = [&](const std::vector<double>& comp, bool positive) {
    std::vector<std::size_t> idx(comp.size());
    for (std::size_t i = 0; i < comp.size(); ++i) idx[i] = i;
    std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
      return orient * comp[a] * (positive ? 1 : -1) >
             orient * comp[b] * (positive ? 1 : -1);
    });
    idx.resize(std::min(top_k, idx.size()));
    return idx;
  };

  std::ostringstream os;
  os << "strongest affinity mode (sigma = " << mode.sigma << "): tasks {";
  bool first = true;
  for (std::size_t i : top_indices(mode.task_component, true)) {
    if (orient * mode.task_component[i] <= 0) continue;
    os << (first ? "" : ", ") << analysis.task_names[i];
    first = false;
  }
  os << "} run disproportionately well on machines {";
  first = true;
  for (std::size_t j : top_indices(mode.machine_component, true)) {
    if (orient * mode.machine_component[j] <= 0) continue;
    os << (first ? "" : ", ") << analysis.machine_names[j];
    first = false;
  }
  os << "}";
  return std::move(os).str();
}

}  // namespace hetero::core
