// What-if studies (paper Section I, application c): the effect of adding or
// removing task types or machines on the environment's heterogeneity.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/etc_matrix.hpp"
#include "core/measures.hpp"

namespace hetero::core {

/// ECS with task row `task` removed. Throws ValueError if it was the last
/// task or removal would leave an all-zero column.
EcsMatrix remove_task(const EcsMatrix& ecs, std::size_t task);

/// ECS with machine column `machine` removed. Throws ValueError if it was
/// the last machine or removal would leave an all-zero row (a task only
/// that machine could run).
EcsMatrix remove_machine(const EcsMatrix& ecs, std::size_t machine);

/// ECS with a new task row appended (speeds per machine; 0 = cannot run).
EcsMatrix add_task(const EcsMatrix& ecs, std::span<const double> speeds,
                   std::string name = {});

/// ECS with a new machine column appended (speeds per task; 0 = cannot run).
EcsMatrix add_machine(const EcsMatrix& ecs, std::span<const double> speeds,
                      std::string name = {});

/// Before/after record for one hypothetical change.
struct WhatIfDelta {
  std::string description;
  MeasureSet before;
  MeasureSet after;

  double mph_delta() const { return after.mph - before.mph; }
  double tdh_delta() const { return after.tdh - before.tdh; }
  double tma_delta() const { return after.tma - before.tma; }
};

/// Measures before and after removing each machine in turn (machines whose
/// removal would invalidate the matrix are skipped).
std::vector<WhatIfDelta> whatif_remove_each_machine(const EcsMatrix& ecs,
                                                    const Weights& w = {});

/// Measures before and after removing each task type in turn (tasks whose
/// removal would invalidate the matrix are skipped).
std::vector<WhatIfDelta> whatif_remove_each_task(const EcsMatrix& ecs,
                                                 const Weights& w = {});

/// Greedy homogenization: repeatedly removes the machine whose removal
/// raises MPH the most, until `removals` machines are gone (or no legal
/// removal improves MPH further). Returns the indices (into the original
/// environment) of the removed machines in removal order, plus the final
/// environment. A decision-support tool for "which machines make this
/// system heterogeneous?".
struct HomogenizationResult {
  std::vector<std::size_t> removed_machines;  // original indices, in order
  EcsMatrix result;
  double mph_before = 0.0;
  double mph_after = 0.0;
};

HomogenizationResult greedy_homogenize(const EcsMatrix& ecs,
                                       std::size_t removals,
                                       const Weights& w = {});

}  // namespace hetero::core
