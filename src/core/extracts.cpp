#include "core/extracts.hpp"

#include <algorithm>
#include <cmath>
#include <random>

#include "base/error.hpp"

namespace hetero::core {
namespace {

// Count of r-subsets of n, saturating at `cap + 1` to avoid overflow.
double binomial_capped(std::size_t n, std::size_t r, double cap) {
  double c = 1.0;
  for (std::size_t k = 1; k <= r; ++k) {
    c *= static_cast<double>(n - r + k) / static_cast<double>(k);
    if (c > cap) return cap + 1.0;
  }
  return c;
}

// Lexicographic next combination; false when exhausted.
bool next_combination(std::vector<std::size_t>& pick, std::size_t n) {
  const std::size_t r = pick.size();
  std::size_t i = r;
  while (i-- > 0) {
    if (pick[i] != i + n - r) {
      ++pick[i];
      for (std::size_t j = i + 1; j < r; ++j) pick[j] = pick[j - 1] + 1;
      return true;
    }
  }
  return false;
}

std::vector<std::size_t> first_combination(std::size_t r) {
  std::vector<std::size_t> pick(r);
  for (std::size_t i = 0; i < r; ++i) pick[i] = i;
  return pick;
}

std::vector<std::size_t> random_subset(std::size_t n, std::size_t r,
                                       std::mt19937_64& rng) {
  std::vector<std::size_t> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = i;
  std::shuffle(all.begin(), all.end(), rng);
  all.resize(r);
  std::sort(all.begin(), all.end());
  return all;
}

}  // namespace

Extract score_extract(const EcsMatrix& ecs, std::vector<std::size_t> tasks,
                      std::vector<std::size_t> machines) {
  Extract e;
  e.measures = measure_set(ecs.submatrix(tasks, machines));
  e.tasks = std::move(tasks);
  e.machines = std::move(machines);
  return e;
}

ExtractAtlas extract_atlas(const EcsMatrix& ecs,
                           const ExtractAtlasOptions& options) {
  detail::require_value(
      options.tasks >= 1 && options.tasks <= ecs.task_count() &&
          options.machines >= 1 && options.machines <= ecs.machine_count(),
      "extract_atlas: extract shape does not fit the environment");

  ExtractAtlas atlas;
  bool first = true;
  const auto consider = [&](const std::vector<std::size_t>& tasks,
                            const std::vector<std::size_t>& machines) {
    Extract e;
    try {
      e = score_extract(ecs, tasks, machines);
    } catch (const Error&) {
      return;  // invalid sub-environment (all-zero row/column)
    }
    ++atlas.scored;
    if (first) {
      atlas.min_mph = atlas.max_mph = atlas.min_tdh = atlas.max_tdh =
          atlas.min_tma = atlas.max_tma = e;
      first = false;
      return;
    }
    if (e.measures.mph < atlas.min_mph.measures.mph) atlas.min_mph = e;
    if (e.measures.mph > atlas.max_mph.measures.mph) atlas.max_mph = e;
    if (e.measures.tdh < atlas.min_tdh.measures.tdh) atlas.min_tdh = e;
    if (e.measures.tdh > atlas.max_tdh.measures.tdh) atlas.max_tdh = e;
    if (e.measures.tma < atlas.min_tma.measures.tma) atlas.min_tma = e;
    if (e.measures.tma > atlas.max_tma.measures.tma) atlas.max_tma = e;
  };

  const double cap = static_cast<double>(options.max_exhaustive);
  const double total =
      binomial_capped(ecs.task_count(), options.tasks, cap) *
      binomial_capped(ecs.machine_count(), options.machines, cap);
  if (total <= cap) {
    atlas.exhaustive = true;
    auto task_pick = first_combination(options.tasks);
    do {
      auto machine_pick = first_combination(options.machines);
      do {
        consider(task_pick, machine_pick);
      } while (next_combination(machine_pick, ecs.machine_count()));
    } while (next_combination(task_pick, ecs.task_count()));
  } else {
    std::mt19937_64 rng(options.seed);
    for (std::size_t s = 0; s < options.samples; ++s)
      consider(random_subset(ecs.task_count(), options.tasks, rng),
               random_subset(ecs.machine_count(), options.machines, rng));
  }
  detail::require_value(atlas.scored > 0,
                        "extract_atlas: no valid extract found");
  return atlas;
}

}  // namespace hetero::core
