#include "core/report.hpp"

#include <sstream>
#include <utility>

#include "core/clustering.hpp"
#include "core/confidence.hpp"
#include "core/extracts.hpp"
#include "core/measures.hpp"
#include "core/region.hpp"
#include "core/svd_analysis.hpp"
#include "io/table.hpp"

namespace hetero::core {
namespace {

std::string fixed(double v, int decimals = 3) {
  return io::format_fixed(v, decimals);
}

std::string extract_label(const EcsMatrix& ecs, const Extract& e) {
  std::string s = "{";
  for (std::size_t i = 0; i < e.tasks.size(); ++i)
    s += (i ? ", " : "") + ecs.task_names()[e.tasks[i]];
  s += "} × {";
  for (std::size_t j = 0; j < e.machines.size(); ++j)
    s += (j ? ", " : "") + ecs.machine_names()[e.machines[j]];
  return s + "}";
}

}  // namespace

std::string markdown_report(const EtcMatrix& etc, const ReportOptions& opt) {
  const EcsMatrix ecs = etc.to_ecs();
  const EnvironmentReport env = characterize(ecs);
  std::ostringstream os;

  os << "# " << opt.title << "\n\n";
  os << etc.task_count() << " task types × " << etc.machine_count()
     << " machines\n\n";

  os << "## Measures\n\n"
     << "| measure | value |\n|---|---|\n"
     << "| MPH (machine performance homogeneity) | "
     << fixed(env.measures.mph) << " |\n"
     << "| TDH (task difficulty homogeneity) | " << fixed(env.measures.tdh)
     << " |\n"
     << "| TMA (task-machine affinity) | " << fixed(env.measures.tma)
     << " |\n"
     << "| alternatives on MP: R / G / COV | " << fixed(env.mph_alt_ratio)
     << " / " << fixed(env.mph_alt_geometric) << " / "
     << fixed(env.mph_alt_cov) << " |\n\n";

  const auto& sf = env.tma_detail.standard_form;
  if (env.tma_detail.used_standard_form) {
    os << "Standard form (eq. 9): " << sf.iterations
       << " Sinkhorn iterations to residual "
       << io::format_general(sf.residual) << "; σ₁ = "
       << fixed(env.tma_detail.singular_values.front(), 6)
       << " (Theorem 2 predicts 1).\n\n";
  } else {
    os << "No standard form exists for this zero pattern (Section VI); TMA "
          "uses the eq. 5 column-normalized fallback.\n\n";
  }

  const auto region = classify_region(env.measures);
  const auto rec = recommend_heuristic(region);
  os << "## Region and mapping advice\n\n"
     << "Region: **" << region_name(region) << "**\n\n"
     << "Recommended heuristic: **" << rec.heuristic << "** — "
     << rec.rationale << ".\n\n";

  if (env.measures.tma > 1e-9 && env.tma_detail.used_standard_form) {
    os << "## Affinity structure\n\n";
    try {
      const auto analysis = affinity_analysis(ecs, {}, 1);
      os << describe_strongest_mode(analysis) << "\n\n";
    } catch (const Error&) {
      os << "(affinity mode analysis unavailable for this pattern)\n\n";
    }
  }

  if (opt.machine_classes >= 2 &&
      opt.machine_classes <= etc.machine_count()) {
    const auto clusters = cluster_machines(ecs, opt.machine_classes);
    os << "## Machine classes (k = " << opt.machine_classes << ")\n\n";
    for (std::size_t c = 0; c < clusters.cluster_count; ++c) {
      os << "- class " << c << ":";
      for (std::size_t j = 0; j < ecs.machine_count(); ++j)
        if (clusters.cluster[j] == c) os << ' ' << ecs.machine_names()[j];
      os << '\n';
    }
    os << "\nwithin-class cosine " << fixed(clusters.within_cosine)
       << ", between-class " << fixed(clusters.between_cosine) << ".\n\n";
  }

  if (opt.with_atlas && etc.task_count() >= 2 && etc.machine_count() >= 2) {
    const auto atlas = extract_atlas(ecs);
    os << "## Extreme 2×2 sub-environments (" << atlas.scored << " scored)\n\n"
       << "| extreme | value | extract |\n|---|---|---|\n"
       << "| max TMA | " << fixed(atlas.max_tma.measures.tma) << " | "
       << extract_label(ecs, atlas.max_tma) << " |\n"
       << "| min MPH | " << fixed(atlas.min_mph.measures.mph) << " | "
       << extract_label(ecs, atlas.min_mph) << " |\n"
       << "| min TDH | " << fixed(atlas.min_tdh.measures.tdh) << " | "
       << extract_label(ecs, atlas.min_tdh) << " |\n\n";
  }

  if (opt.with_confidence) {
    const auto conf = measure_confidence(etc);
    os << "## Stability under 10% estimate noise\n\n"
       << "| measure | point | 95% interval |\n|---|---|---|\n"
       << "| MPH | " << fixed(conf.mph.point) << " | [" << fixed(conf.mph.lower)
       << ", " << fixed(conf.mph.upper) << "] |\n"
       << "| TDH | " << fixed(conf.tdh.point) << " | [" << fixed(conf.tdh.lower)
       << ", " << fixed(conf.tdh.upper) << "] |\n"
       << "| TMA | " << fixed(conf.tma.point) << " | [" << fixed(conf.tma.lower)
       << ", " << fixed(conf.tma.upper) << "] |\n";
  }
  return std::move(os).str();
}

}  // namespace hetero::core
