#include "core/etc_matrix.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "linalg/vector_ops.hpp"
#include "simd/simd.hpp"

namespace hetero::core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::vector<std::string> resolve_labels(std::vector<std::string> given,
                                        std::size_t count, char prefix) {
  if (given.empty()) return default_labels(count, prefix);
  detail::require_dims(given.size() == count,
                       "EtcMatrix/EcsMatrix: label count mismatch");
  return given;
}

std::size_t find_label(const std::vector<std::string>& labels,
                       const std::string& name, const char* kind) {
  const auto it = std::find(labels.begin(), labels.end(), name);
  detail::require_value(it != labels.end(),
                        std::string("unknown ") + kind + " name: " + name);
  return static_cast<std::size_t>(it - labels.begin());
}

}  // namespace

std::vector<std::string> default_labels(std::size_t count, char prefix) {
  std::vector<std::string> labels;
  labels.reserve(count);
  for (std::size_t i = 1; i <= count; ++i)
    labels.push_back(std::string(1, prefix) + std::to_string(i));
  return labels;
}

EtcMatrix::EtcMatrix(linalg::Matrix values, std::vector<std::string> task_names,
                     std::vector<std::string> machine_names)
    : values_(std::move(values)),
      task_names_(resolve_labels(std::move(task_names), values_.rows(), 't')),
      machine_names_(
          resolve_labels(std::move(machine_names), values_.cols(), 'm')) {
  detail::require_dims(!values_.empty(), "EtcMatrix: empty matrix");
  for (std::size_t i = 0; i < values_.rows(); ++i)
    for (std::size_t j = 0; j < values_.cols(); ++j) {
      const double x = values_(i, j);
      detail::require_value(x > 0.0 && !std::isnan(x),
                            "EtcMatrix: entries must be positive or +inf");
    }
  for (std::size_t i = 0; i < values_.rows(); ++i) {
    bool runnable = false;
    for (std::size_t j = 0; j < values_.cols(); ++j)
      if (std::isfinite(values_(i, j))) runnable = true;
    detail::require_value(runnable, "EtcMatrix: task runs on no machine");
  }
  for (std::size_t j = 0; j < values_.cols(); ++j) {
    bool useful = false;
    for (std::size_t i = 0; i < values_.rows(); ++i)
      if (std::isfinite(values_(i, j))) useful = true;
    detail::require_value(useful, "EtcMatrix: machine runs no task");
  }
}

EcsMatrix EtcMatrix::to_ecs() const {
  linalg::Matrix ecs(values_.rows(), values_.cols());
  // Entrywise reciprocal over the whole contiguous buffer; incapable (+inf)
  // entries map to speed 0.
  simd::kernels().reciprocal_or_zero(values_.data().data(),
                                     ecs.data().data(), ecs.size());
  return EcsMatrix(std::move(ecs), task_names_, machine_names_);
}

EtcMatrix EtcMatrix::submatrix(std::span<const std::size_t> tasks,
                               std::span<const std::size_t> machines) const {
  std::vector<std::string> tn, mn;
  for (std::size_t i : tasks) tn.push_back(task_names_.at(i));
  for (std::size_t j : machines) mn.push_back(machine_names_.at(j));
  return EtcMatrix(values_.submatrix(tasks, machines), std::move(tn),
                   std::move(mn));
}

std::size_t EtcMatrix::task_index(const std::string& name) const {
  return find_label(task_names_, name, "task");
}

std::size_t EtcMatrix::machine_index(const std::string& name) const {
  return find_label(machine_names_, name, "machine");
}

EcsMatrix::EcsMatrix(linalg::Matrix values, std::vector<std::string> task_names,
                     std::vector<std::string> machine_names)
    : values_(std::move(values)),
      task_names_(resolve_labels(std::move(task_names), values_.rows(), 't')),
      machine_names_(
          resolve_labels(std::move(machine_names), values_.cols(), 'm')) {
  detail::require_dims(!values_.empty(), "EcsMatrix: empty matrix");
  detail::require_value(!values_.has_nonfinite(),
                        "EcsMatrix: entries must be finite");
  detail::require_value(values_.all_nonnegative(),
                        "EcsMatrix: entries must be nonnegative");
  for (std::size_t i = 0; i < values_.rows(); ++i)
    detail::require_value(values_.row_sum(i) > 0.0,
                          "EcsMatrix: all-zero row (task runs on no machine)");
  for (std::size_t j = 0; j < values_.cols(); ++j)
    detail::require_value(values_.col_sum(j) > 0.0,
                          "EcsMatrix: all-zero column (machine runs no task)");
}

EtcMatrix EcsMatrix::to_etc() const {
  linalg::Matrix etc(values_.rows(), values_.cols());
  // Reverse conversion: zero speed (incapable) maps back to +inf time.
  simd::kernels().reciprocal_or_inf(values_.data().data(),
                                    etc.data().data(), etc.size());
  return EtcMatrix(std::move(etc), task_names_, machine_names_);
}

linalg::Matrix EcsMatrix::weighted_values(const Weights& w) const {
  w.validate(task_count(), machine_count());
  if (w.is_uniform()) return values_;
  linalg::Matrix out = values_;
  for (std::size_t i = 0; i < out.rows(); ++i)
    for (std::size_t j = 0; j < out.cols(); ++j)
      out(i, j) *= w.task_weight(i) * w.machine_weight(j);
  return out;
}

EcsMatrix EcsMatrix::submatrix(std::span<const std::size_t> tasks,
                               std::span<const std::size_t> machines) const {
  std::vector<std::string> tn, mn;
  for (std::size_t i : tasks) tn.push_back(task_names_.at(i));
  for (std::size_t j : machines) mn.push_back(machine_names_.at(j));
  return EcsMatrix(values_.submatrix(tasks, machines), std::move(tn),
                   std::move(mn));
}

EcsMatrix EcsMatrix::permuted(std::span<const std::size_t> task_perm,
                              std::span<const std::size_t> machine_perm) const {
  detail::require_value(linalg::is_permutation_vector(task_perm) &&
                            task_perm.size() == task_count(),
                        "EcsMatrix::permuted: bad task permutation");
  detail::require_value(linalg::is_permutation_vector(machine_perm) &&
                            machine_perm.size() == machine_count(),
                        "EcsMatrix::permuted: bad machine permutation");
  return submatrix(task_perm, machine_perm);
}

std::size_t EcsMatrix::task_index(const std::string& name) const {
  return find_label(task_names_, name, "task");
}

std::size_t EcsMatrix::machine_index(const std::string& name) const {
  return find_label(machine_names_, name, "machine");
}

}  // namespace hetero::core
