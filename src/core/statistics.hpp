// Classical statistical heterogeneity measures on ETC matrices.
//
// Before this paper's MPH/TDH/TMA, heterogeneity was usually described by
// coefficient-of-variation statistics (Ali et al. [4]; Al-Qawasmeh et al.
// [3], "Statistical measures for quantifying task and machine
// heterogeneity") and by the matrix's *consistency* class. These measures
// are implemented here both for comparison studies (the library's ablation
// benches pit them against MPH/TDH/TMA) and because simulation papers still
// report them.
//
// Conventions ([3, 4]):
//   task heterogeneity    — variability among execution times of different
//                           task types on one machine: COV of an ETC column;
//   machine heterogeneity — variability of one task type's execution time
//                           across machines: COV of an ETC row.
#pragma once

#include <vector>

#include "core/etc_matrix.hpp"

namespace hetero::core {

/// COV of each ETC column (task heterogeneity seen by each machine).
/// Infinite entries ("cannot run") are excluded from the statistics; a
/// column needs at least two finite entries, else its COV is 0.
std::vector<double> task_heterogeneity_per_machine(const EtcMatrix& etc);

/// COV of each ETC row (machine heterogeneity seen by each task type).
std::vector<double> machine_heterogeneity_per_task(const EtcMatrix& etc);

/// Aggregate statistics of an ETC matrix.
struct EtcStatistics {
  /// Mean over machines of the column COVs.
  double mean_task_heterogeneity = 0.0;
  /// Mean over task types of the row COVs.
  double mean_machine_heterogeneity = 0.0;
  /// Consistency index in [0, 1]: 1 means fully consistent (machine
  /// orderings agree for every task type), 0 means orderings are as mixed
  /// as a coin flip. See consistency_index() below.
  double consistency = 0.0;
};

EtcStatistics etc_statistics(const EtcMatrix& etc);

/// Consistency index: for every machine pair (j, k), the fraction of task
/// types on which j is at least as fast as k is computed; the pair's
/// agreement is max(f, 1 - f), which is 1 when all task types agree and 1/2
/// when they split evenly. The index rescales the mean agreement from
/// [1/2, 1] to [0, 1]. A single machine yields 1 (vacuously consistent).
/// Pairs where either entry is infinite are skipped per task type.
double consistency_index(const EtcMatrix& etc);

/// True when every row orders the machines identically (the strict
/// consistency class of Braun et al. [6]); ties are allowed.
bool is_consistent(const EtcMatrix& etc);

}  // namespace hetero::core
