#include "core/batch.hpp"

namespace hetero::core {
namespace {

MeasureSet one_measure_set(const EcsMatrix& ecs, const TmaOptions& options) {
  MeasureSet s;
  s.mph = mph(ecs);
  s.tdh = tdh(ecs);
  s.tma = tma_detailed(ecs, {}, options).value;
  return s;
}

// A grain of 0 would make the chunked claiming loop spin without ever
// claiming work; treat it as the smallest legal chunk instead.
std::size_t effective_grain(const BatchOptions& options) {
  return options.grain == 0 ? 1 : options.grain;
}

}  // namespace

std::vector<MeasureSet> batch_measures(std::span<const linalg::Matrix> inputs,
                                       par::ThreadPool& pool,
                                       const BatchOptions& options) {
  std::vector<MeasureSet> out(inputs.size());
  par::parallel_for(
      pool, 0, inputs.size(),
      [&](std::size_t i) {
        out[i] = one_measure_set(EcsMatrix(inputs[i]), options.tma);
      },
      effective_grain(options));
  return out;
}

std::vector<MeasureSet> batch_measures(std::span<const EcsMatrix> inputs,
                                       par::ThreadPool& pool,
                                       const BatchOptions& options) {
  std::vector<MeasureSet> out(inputs.size());
  par::parallel_for(
      pool, 0, inputs.size(),
      [&](std::size_t i) { out[i] = one_measure_set(inputs[i], options.tma); },
      effective_grain(options));
  return out;
}

std::vector<EnvironmentReport> batch_characterize(
    std::span<const EcsMatrix> inputs, par::ThreadPool& pool,
    const BatchOptions& options) {
  std::vector<EnvironmentReport> out(inputs.size());
  par::parallel_for(
      pool, 0, inputs.size(),
      [&](std::size_t i) { out[i] = characterize(inputs[i], {}, options.tma); },
      effective_grain(options));
  return out;
}

}  // namespace hetero::core
