#include "core/sensitivity.hpp"

#include <cmath>

namespace hetero::core {

SensitivityMap measure_sensitivity(const EtcMatrix& etc,
                                   const SensitivityOptions& options) {
  detail::require_value(options.relative_step > 0.0 &&
                            options.relative_step < 1.0,
                        "measure_sensitivity: step must be in (0, 1)");
  const std::size_t t = etc.task_count();
  const std::size_t m = etc.machine_count();
  SensitivityMap map{linalg::Matrix(t, m, 0.0), linalg::Matrix(t, m, 0.0),
                     linalg::Matrix(t, m, 0.0)};

  const double up = 1.0 + options.relative_step;
  const double down = 1.0 - options.relative_step;
  // d measure / d log(etc) ~ (f(up) - f(down)) / (log(up) - log(down)).
  const double dlog = std::log(up) - std::log(down);

  linalg::Matrix values = etc.values();
  for (std::size_t i = 0; i < t; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      const double original = values(i, j);
      if (!std::isfinite(original)) continue;
      values(i, j) = original * up;
      const MeasureSet high = measure_set(
          EtcMatrix(values, etc.task_names(), etc.machine_names()).to_ecs());
      values(i, j) = original * down;
      const MeasureSet low = measure_set(
          EtcMatrix(values, etc.task_names(), etc.machine_names()).to_ecs());
      values(i, j) = original;

      map.mph(i, j) = (high.mph - low.mph) / dlog;
      map.tdh(i, j) = (high.tdh - low.tdh) / dlog;
      map.tma(i, j) = (high.tma - low.tma) / dlog;
    }
  }
  return map;
}

MostSensitiveEntry most_sensitive(const linalg::Matrix& sensitivity) {
  MostSensitiveEntry best;
  for (std::size_t i = 0; i < sensitivity.rows(); ++i)
    for (std::size_t j = 0; j < sensitivity.cols(); ++j)
      if (std::abs(sensitivity(i, j)) > std::abs(best.elasticity)) {
        best.task = i;
        best.machine = j;
        best.elasticity = sensitivity(i, j);
      }
  return best;
}

}  // namespace hetero::core
