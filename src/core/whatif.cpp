#include "core/whatif.hpp"

#include <numeric>

#include "core/measures.hpp"

namespace hetero::core {
namespace {

std::vector<std::size_t> indices_without(std::size_t count, std::size_t skip) {
  std::vector<std::size_t> idx;
  idx.reserve(count - 1);
  for (std::size_t i = 0; i < count; ++i)
    if (i != skip) idx.push_back(i);
  return idx;
}

std::vector<std::size_t> all_indices(std::size_t count) {
  std::vector<std::size_t> idx(count);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  return idx;
}

}  // namespace

EcsMatrix remove_task(const EcsMatrix& ecs, std::size_t task) {
  detail::require_dims(task < ecs.task_count(), "remove_task: index out of range");
  detail::require_value(ecs.task_count() > 1, "remove_task: last task type");
  return ecs.submatrix(indices_without(ecs.task_count(), task),
                       all_indices(ecs.machine_count()));
}

EcsMatrix remove_machine(const EcsMatrix& ecs, std::size_t machine) {
  detail::require_dims(machine < ecs.machine_count(),
                       "remove_machine: index out of range");
  detail::require_value(ecs.machine_count() > 1, "remove_machine: last machine");
  return ecs.submatrix(all_indices(ecs.task_count()),
                       indices_without(ecs.machine_count(), machine));
}

EcsMatrix add_task(const EcsMatrix& ecs, std::span<const double> speeds,
                   std::string name) {
  detail::require_dims(speeds.size() == ecs.machine_count(),
                       "add_task: speed count != machine count");
  linalg::Matrix values(ecs.task_count() + 1, ecs.machine_count());
  for (std::size_t i = 0; i < ecs.task_count(); ++i)
    for (std::size_t j = 0; j < ecs.machine_count(); ++j)
      values(i, j) = ecs(i, j);
  for (std::size_t j = 0; j < ecs.machine_count(); ++j)
    values(ecs.task_count(), j) = speeds[j];
  auto task_names = ecs.task_names();
  task_names.push_back(name.empty()
                           ? "t" + std::to_string(ecs.task_count() + 1)
                           : std::move(name));
  return EcsMatrix(std::move(values), std::move(task_names),
                   ecs.machine_names());
}

EcsMatrix add_machine(const EcsMatrix& ecs, std::span<const double> speeds,
                      std::string name) {
  detail::require_dims(speeds.size() == ecs.task_count(),
                       "add_machine: speed count != task count");
  linalg::Matrix values(ecs.task_count(), ecs.machine_count() + 1);
  for (std::size_t i = 0; i < ecs.task_count(); ++i) {
    for (std::size_t j = 0; j < ecs.machine_count(); ++j)
      values(i, j) = ecs(i, j);
    values(i, ecs.machine_count()) = speeds[i];
  }
  auto machine_names = ecs.machine_names();
  machine_names.push_back(name.empty()
                              ? "m" + std::to_string(ecs.machine_count() + 1)
                              : std::move(name));
  return EcsMatrix(std::move(values), ecs.task_names(),
                   std::move(machine_names));
}

namespace {

// Weight vector with the entry for a removed row/column dropped.
std::vector<double> weights_without(const std::vector<double>& w,
                                    std::size_t skip) {
  if (w.empty()) return {};
  std::vector<double> out;
  out.reserve(w.size() - 1);
  for (std::size_t i = 0; i < w.size(); ++i)
    if (i != skip) out.push_back(w[i]);
  return out;
}

}  // namespace

std::vector<WhatIfDelta> whatif_remove_each_machine(const EcsMatrix& ecs,
                                                    const Weights& w) {
  w.validate(ecs.task_count(), ecs.machine_count());
  const MeasureSet before = measure_set(ecs, w);
  std::vector<WhatIfDelta> deltas;
  for (std::size_t j = 0; j < ecs.machine_count(); ++j) {
    WhatIfDelta d;
    d.description = "remove machine " + ecs.machine_names()[j];
    d.before = before;
    const Weights sliced{w.task, weights_without(w.machine, j)};
    try {
      d.after = measure_set(remove_machine(ecs, j), sliced);
    } catch (const Error&) {
      continue;  // removal would invalidate the environment
    }
    deltas.push_back(std::move(d));
  }
  return deltas;
}

std::vector<WhatIfDelta> whatif_remove_each_task(const EcsMatrix& ecs,
                                                 const Weights& w) {
  w.validate(ecs.task_count(), ecs.machine_count());
  const MeasureSet before = measure_set(ecs, w);
  std::vector<WhatIfDelta> deltas;
  for (std::size_t i = 0; i < ecs.task_count(); ++i) {
    WhatIfDelta d;
    d.description = "remove task " + ecs.task_names()[i];
    d.before = before;
    const Weights sliced{weights_without(w.task, i), w.machine};
    try {
      d.after = measure_set(remove_task(ecs, i), sliced);
    } catch (const Error&) {
      continue;
    }
    deltas.push_back(std::move(d));
  }
  return deltas;
}

HomogenizationResult greedy_homogenize(const EcsMatrix& ecs,
                                       std::size_t removals,
                                       const Weights& w) {
  w.validate(ecs.task_count(), ecs.machine_count());
  detail::require_value(removals < ecs.machine_count(),
                        "greedy_homogenize: cannot remove every machine");

  EcsMatrix current = ecs;
  Weights current_w = w;
  // original_index[j] maps current column j back to the input environment.
  std::vector<std::size_t> original_index(ecs.machine_count());
  std::iota(original_index.begin(), original_index.end(), std::size_t{0});

  HomogenizationResult out{
      {}, current, mph(current, current_w), mph(current, current_w)};

  for (std::size_t round = 0; round < removals; ++round) {
    double best_mph = out.mph_after;
    std::size_t best_machine = current.machine_count();
    for (std::size_t j = 0; j < current.machine_count(); ++j) {
      const Weights sliced{current_w.task,
                           weights_without(current_w.machine, j)};
      try {
        const double candidate = mph(remove_machine(current, j), sliced);
        if (candidate > best_mph) {
          best_mph = candidate;
          best_machine = j;
        }
      } catch (const Error&) {
        continue;  // removal would invalidate the environment
      }
    }
    if (best_machine == current.machine_count()) break;  // no improvement
    out.removed_machines.push_back(original_index[best_machine]);
    current_w =
        Weights{current_w.task, weights_without(current_w.machine, best_machine)};
    current = remove_machine(current, best_machine);
    original_index.erase(original_index.begin() +
                         static_cast<std::ptrdiff_t>(best_machine));
    out.mph_after = best_mph;
  }
  out.result = std::move(current);
  return out;
}

}  // namespace hetero::core
