// ETC and ECS matrix types (paper Sections I and II-B).
//
// An ETC (estimated time to compute) matrix has entry (i, j) = estimated
// runtime of task type i on machine j when run alone; an entry of +infinity
// means machine j cannot run task type i. The ECS (estimated computation
// speed) matrix is the entrywise reciprocal (eq. 1), with 0 in place of
// +infinity. Both carry task-type and machine labels so SPEC-derived
// environments keep their benchmark/machine names through every analysis.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/weights.hpp"
#include "linalg/matrix.hpp"

namespace hetero::core {

class EcsMatrix;

/// Estimated-time-to-compute matrix: T task types (rows) x M machines
/// (columns). Invariants: entries are positive (possibly +infinity); no row
/// is all-infinite (a task no machine can run) and no column is all-infinite
/// (a machine that can run nothing).
class EtcMatrix {
 public:
  /// Validates and takes ownership. Labels may be empty (auto-generated as
  /// "t1".."tT" / "m1".."mM"); if given, sizes must match.
  explicit EtcMatrix(linalg::Matrix values,
                     std::vector<std::string> task_names = {},
                     std::vector<std::string> machine_names = {});

  std::size_t task_count() const noexcept { return values_.rows(); }
  std::size_t machine_count() const noexcept { return values_.cols(); }

  const linalg::Matrix& values() const noexcept { return values_; }
  double operator()(std::size_t i, std::size_t j) const {
    return values_(i, j);
  }

  const std::vector<std::string>& task_names() const noexcept {
    return task_names_;
  }
  const std::vector<std::string>& machine_names() const noexcept {
    return machine_names_;
  }

  /// Reciprocal conversion (eq. 1); +infinity entries become 0.
  EcsMatrix to_ecs() const;

  /// Submatrix selecting the given task rows and machine columns, keeping
  /// labels. Indices may not repeat requirements are not enforced, but the
  /// result must satisfy the EtcMatrix invariants.
  EtcMatrix submatrix(std::span<const std::size_t> tasks,
                      std::span<const std::size_t> machines) const;

  /// Index of the named task/machine. Throws ValueError when absent.
  std::size_t task_index(const std::string& name) const;
  std::size_t machine_index(const std::string& name) const;

 private:
  linalg::Matrix values_;
  std::vector<std::string> task_names_;
  std::vector<std::string> machine_names_;
};

/// Estimated-computation-speed matrix: entry (i, j) is the amount of task
/// type i completed per unit time on machine j; 0 means "cannot run".
/// Invariants: entries are finite and nonnegative; no all-zero row or
/// column (paper Section II-B).
class EcsMatrix {
 public:
  explicit EcsMatrix(linalg::Matrix values,
                     std::vector<std::string> task_names = {},
                     std::vector<std::string> machine_names = {});

  std::size_t task_count() const noexcept { return values_.rows(); }
  std::size_t machine_count() const noexcept { return values_.cols(); }

  const linalg::Matrix& values() const noexcept { return values_; }
  double operator()(std::size_t i, std::size_t j) const {
    return values_(i, j);
  }

  const std::vector<std::string>& task_names() const noexcept {
    return task_names_;
  }
  const std::vector<std::string>& machine_names() const noexcept {
    return machine_names_;
  }

  /// Reciprocal conversion back to runtimes; 0 entries become +infinity.
  EtcMatrix to_etc() const;

  /// The weighted view diag(w_t) * ECS * diag(w_m) consumed by all measures
  /// (paper eqs. 4 and 6 fold the weights into MP/TD; applying them as a
  /// diagonal congruence gives the same MP/TD and extends them to TMA).
  linalg::Matrix weighted_values(const Weights& w) const;

  /// Submatrix selecting the given task rows and machine columns (keeps
  /// labels); the result must satisfy the EcsMatrix invariants.
  EcsMatrix submatrix(std::span<const std::size_t> tasks,
                      std::span<const std::size_t> machines) const;

  /// Row/column permuted copy (labels follow).
  EcsMatrix permuted(std::span<const std::size_t> task_perm,
                     std::span<const std::size_t> machine_perm) const;

  std::size_t task_index(const std::string& name) const;
  std::size_t machine_index(const std::string& name) const;

 private:
  linalg::Matrix values_;
  std::vector<std::string> task_names_;
  std::vector<std::string> machine_names_;
};

/// Convenience: default task labels "t1".."tT" or machine labels "m1".."mM".
std::vector<std::string> default_labels(std::size_t count, char prefix);

}  // namespace hetero::core
